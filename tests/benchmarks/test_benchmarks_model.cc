/**
 * Model-mode behavior: the qualitative facts the paper reports must
 * hold in the machine model (who wins where, and why).
 */
#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "benchmarks/backend_util.h"
#include "benchmarks/blackscholes.h"
#include "benchmarks/convolution.h"
#include "benchmarks/poisson.h"
#include "benchmarks/sort.h"
#include "benchmarks/strassen.h"
#include "benchmarks/svd.h"
#include "benchmarks/tridiagonal.h"

namespace petabricks {
namespace apps {
namespace {

const sim::MachineProfile kDesktop = sim::MachineProfile::desktop();
const sim::MachineProfile kServer = sim::MachineProfile::server();
const sim::MachineProfile kLaptop = sim::MachineProfile::laptop();

TEST(ModelBlackScholes, GpuDominatesOnDesktop)
{
    BlackScholesBenchmark bench;
    tuner::Config gpu = bench.seedConfig();
    gpu.selector("BlackScholes.backend").setAlgorithm(0, backendAlg(compiler::Backend::OpenClGlobal));
    tuner::Config cpu = BlackScholesBenchmark::cpuOnlyConfig();
    int64_t n = bench.testingInputSize();
    // "OpenCL performance ... is an order of magnitude better than the
    // CPU performance on the Desktop".
    EXPECT_GT(bench.evaluate(cpu, n, kDesktop) /
                  bench.evaluate(gpu, n, kDesktop),
              8.0);
}

TEST(ModelBlackScholes, LaptopPrefersSplit)
{
    BlackScholesBenchmark bench;
    int64_t n = bench.testingInputSize();
    tuner::Config gpuOnly = bench.seedConfig();
    gpuOnly.selector("BlackScholes.backend")
        .setAlgorithm(0, backendAlg(compiler::Backend::OpenClGlobal));
    tuner::Config split = gpuOnly;
    split.tunable("BlackScholes.ratio").value = 6; // 75/25
    double tGpu = bench.evaluate(gpuOnly, n, kLaptop);
    double tSplit = bench.evaluate(split, n, kLaptop);
    EXPECT_LT(tSplit, tGpu); // the split wins on Laptop...
    double tGpuDesktop = bench.evaluate(gpuOnly, n, kDesktop);
    double tSplitDesktop = bench.evaluate(split, n, kDesktop);
    EXPECT_GT(tSplitDesktop, 2.0 * tGpuDesktop); // ...and loses badly
                                                 // on Desktop
}

TEST(ModelConvolution, EachMappingWinsSomewhere)
{
    // Figure 2: each of the four mappings is optimal for at least one
    // machine / kernel-width combination.
    std::set<std::pair<bool, bool>> winners;
    for (const auto &machine : {kDesktop, kServer, kLaptop}) {
        for (int64_t kw : {3, 7, 11, 17}) {
            ConvolutionBenchmark bench(kw);
            double best = std::numeric_limits<double>::infinity();
            std::pair<bool, bool> bestMapping{false, false};
            for (bool separable : {false, true}) {
                for (bool local : {false, true}) {
                    auto config = ConvolutionBenchmark::fixedMapping(
                        separable, local);
                    double t = bench.evaluate(config, 3520, machine);
                    if (t < best) {
                        best = t;
                        bestMapping = {separable, local};
                    }
                }
            }
            winners.insert(bestMapping);
        }
    }
    EXPECT_GE(winners.size(), 3u);
}

TEST(ModelConvolution, SeparableWinsForWideKernels)
{
    ConvolutionBenchmark wide(17);
    auto sep = ConvolutionBenchmark::fixedMapping(true, true);
    auto full = ConvolutionBenchmark::fixedMapping(false, true);
    EXPECT_LT(wide.evaluate(sep, 3520, kDesktop),
              wide.evaluate(full, 3520, kDesktop));
}

TEST(ModelConvolution, LocalMemoryHurtsOnServer)
{
    ConvolutionBenchmark bench(7);
    auto noLocal = ConvolutionBenchmark::fixedMapping(true, false);
    auto local = ConvolutionBenchmark::fixedMapping(true, true);
    EXPECT_LT(bench.evaluate(noLocal, 3520, kServer),
              bench.evaluate(local, 3520, kServer));
}

TEST(ModelSort, CpuPolyAlgorithmBeatsBitonicGpu)
{
    SortBenchmark bench;
    int64_t n = bench.testingInputSize();
    tuner::Config cpu = bench.seedConfig();
    tuner::Selector &s = cpu.selector("Sort.algorithm");
    s.setAlgorithm(0, kSortInsertion);
    s.insertLevel(341, kSortMerge4);
    s.insertLevel(64294, kSortQuick);
    s.insertLevel(174762, kSortMerge2);
    tuner::Config gpu = SortBenchmark::gpuOnlyConfig();
    for (const auto &machine : {kDesktop, kServer, kLaptop}) {
        EXPECT_LT(bench.evaluate(cpu, n, machine),
                  bench.evaluate(gpu, n, machine))
            << machine.name;
    }
}

TEST(ModelSort, InsertionOnlyGoodForTinyInputs)
{
    SortBenchmark bench;
    tuner::Config insertion = bench.seedConfig(); // IS everywhere
    tuner::Config merge = bench.seedConfig();
    merge.selector("Sort.algorithm").setAlgorithm(0, kSortMerge2);
    EXPECT_LT(bench.evaluate(insertion, 64, kDesktop),
              bench.evaluate(merge, 64, kDesktop));
    EXPECT_GT(bench.evaluate(insertion, 1 << 16, kDesktop),
              bench.evaluate(merge, 1 << 16, kDesktop));
}

TEST(ModelStrassen, GpuWinsOnDesktopLapackOnLaptop)
{
    StrassenBenchmark bench;
    int64_t n = bench.testingInputSize();
    tuner::Config gpu = bench.seedConfig();
    gpu.selector("Strassen.mm.algorithm").setAlgorithm(0, kMmOpenCl);
    tuner::Config lapack = bench.seedConfig();
    lapack.selector("Strassen.mm.algorithm").setAlgorithm(0, kMmLapack);
    EXPECT_LT(bench.evaluate(gpu, n, kDesktop),
              bench.evaluate(lapack, n, kDesktop));
    EXPECT_LT(bench.evaluate(lapack, n, kLaptop),
              bench.evaluate(gpu, n, kLaptop));
}

TEST(ModelStrassen, ServerPrefersParallelDecompositionOverLapack)
{
    StrassenBenchmark bench;
    int64_t n = bench.testingInputSize();
    tuner::Config lapack = bench.seedConfig();
    lapack.selector("Strassen.mm.algorithm").setAlgorithm(0, kMmLapack);
    // 8-way decomposition down to LAPACK leaves below 512.
    tuner::Config decomp = bench.seedConfig();
    tuner::Selector &s = decomp.selector("Strassen.mm.algorithm");
    s.setAlgorithm(0, kMmLapack);
    s.insertLevel(512, kMmRecursive8);
    EXPECT_LT(bench.evaluate(decomp, n, kServer),
              bench.evaluate(lapack, n, kServer));
    // On Laptop (2 cores) the direct call is better.
    EXPECT_LT(bench.evaluate(lapack, n, kLaptop),
              bench.evaluate(decomp, n, kLaptop));
}

TEST(ModelStrassen, CrossMachineMigrationIsExpensive)
{
    // The headline: running the Laptop's config (direct LAPACK) on
    // Desktop instead of Desktop's GPU config costs many x.
    StrassenBenchmark bench;
    int64_t n = bench.testingInputSize();
    tuner::Config gpu = bench.seedConfig();
    gpu.selector("Strassen.mm.algorithm").setAlgorithm(0, kMmOpenCl);
    tuner::Config lapack = bench.seedConfig();
    lapack.selector("Strassen.mm.algorithm").setAlgorithm(0, kMmLapack);
    double slowdown = bench.evaluate(lapack, n, kDesktop) /
                      bench.evaluate(gpu, n, kDesktop);
    EXPECT_GT(slowdown, 6.0);
}

TEST(ModelPoisson, DesktopIteratesOnGpuServerOnCpu)
{
    PoissonBenchmark bench;
    int64_t n = bench.testingInputSize();
    auto mk = [&](int splitAlg, int iterAlg) {
        tuner::Config c = bench.seedConfig();
        c.selector("Poisson.split.backend").setAlgorithm(0, splitAlg);
        c.selector("Poisson.iterate.backend").setAlgorithm(0, iterAlg);
        return c;
    };
    // Desktop: split on CPU, iterate on GPU beats all-CPU.
    EXPECT_LT(bench.evaluate(mk(backendAlg(compiler::Backend::Cpu), backendAlg(compiler::Backend::OpenClLocal)), n,
                             kDesktop),
              bench.evaluate(mk(backendAlg(compiler::Backend::Cpu), backendAlg(compiler::Backend::Cpu)), n, kDesktop));
    // Server: iterating on the CPU beats iterating on CPU-OpenCL with
    // the local-memory variant (prefetch is wasted work there).
    EXPECT_LT(
        bench.evaluate(mk(backendAlg(compiler::Backend::OpenClGlobal), backendAlg(compiler::Backend::Cpu)), n, kServer),
        bench.evaluate(mk(backendAlg(compiler::Backend::OpenClGlobal), backendAlg(compiler::Backend::OpenClLocal)), n,
                       kServer));
}

TEST(ModelTridiag, AlgorithmChoiceFollowsThePaper)
{
    TridiagBenchmark bench;
    int64_t n = bench.testingInputSize();
    auto mk = [&](int alg) {
        tuner::Config c = bench.seedConfig();
        c.selector("Tridiag.algorithm").setAlgorithm(0, alg);
        return c;
    };
    // Desktop: cyclic reduction on the GPU wins.
    EXPECT_LT(bench.evaluate(mk(kTriCyclicGpu), n, kDesktop),
              bench.evaluate(mk(kTriThomas), n, kDesktop));
    // Server and Laptop: the sequential direct solve wins.
    EXPECT_LT(bench.evaluate(mk(kTriThomas), n, kServer),
              bench.evaluate(mk(kTriCyclicGpu), n, kServer));
    EXPECT_LT(bench.evaluate(mk(kTriThomas), n, kLaptop),
              bench.evaluate(mk(kTriCyclicGpu), n, kLaptop));
}

TEST(ModelSvd, AccuracyTargetGatesConfigs)
{
    SvdBenchmark bench(0.30);
    tuner::Config tooCoarse = bench.seedConfig();
    tooCoarse.tunable("SVD.k8").value = 1;
    EXPECT_TRUE(std::isinf(
        bench.evaluate(tooCoarse, 256, kDesktop)));
    tuner::Config fine = bench.seedConfig();
    EXPECT_TRUE(std::isfinite(bench.evaluate(fine, 256, kDesktop)));
}

TEST(ModelSvd, TaskParallelPhase1HelpsOnDesktopOnly)
{
    SvdBenchmark bench;
    int64_t n = bench.testingInputSize();
    auto mk = [&](int phase1) {
        tuner::Config c = bench.seedConfig();
        c.selector("SVD.phase1").setAlgorithm(0, phase1);
        // A sensible CPU matmul so phase-1 differences show.
        c.selector("SVD.mm.algorithm").setAlgorithm(0, kMmLapack);
        return c;
    };
    double cpuDesktop =
        bench.evaluate(mk(kSvdPhase1Cpu), n, kDesktop);
    double parDesktop =
        bench.evaluate(mk(kSvdPhase1TaskParallel), n, kDesktop);
    EXPECT_LT(parDesktop, cpuDesktop);
    double cpuLaptop = bench.evaluate(mk(kSvdPhase1Cpu), n, kLaptop);
    double parLaptop =
        bench.evaluate(mk(kSvdPhase1TaskParallel), n, kLaptop);
    EXPECT_GT(parLaptop / cpuLaptop, 0.95); // no real win on Laptop
}

TEST(ModelRegistry, SevenBenchmarksEvaluateEverywhere)
{
    for (const auto &bench : allBenchmarks()) {
        tuner::Config seed = bench->seedConfig();
        for (const auto &machine : {kDesktop, kServer, kLaptop}) {
            double t = bench->evaluate(seed, bench->testingInputSize(),
                                       machine);
            EXPECT_TRUE(std::isfinite(t))
                << bench->name() << " on " << machine.name;
            EXPECT_GT(t, 0.0);
        }
        EXPECT_GT(bench->openclKernelCount(), 0) << bench->name();
        EXPECT_FALSE(bench->describeConfig(seed,
                                           bench->testingInputSize())
                         .empty());
    }
}

TEST(ModelRegistry, ConfigSpacesAreAstronomical)
{
    // Figure 8 reports 10^130 .. 10^2435 possible configs.
    for (const auto &bench : allBenchmarks()) {
        double log10 = bench->seedConfig().log10SpaceSize(
            bench->testingInputSize());
        EXPECT_GT(log10, 20.0) << bench->name();
    }
}

} // namespace
} // namespace apps
} // namespace petabricks
