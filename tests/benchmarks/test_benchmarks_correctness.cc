/**
 * Real-mode correctness of every benchmark's algorithmic choices: all
 * choices must produce the same (reference) answer.
 */
#include <gtest/gtest.h>

#include "benchmarks/backend_util.h"
#include "benchmarks/blackscholes.h"
#include "blas/blas.h"
#include "benchmarks/convolution.h"
#include "benchmarks/poisson.h"
#include "benchmarks/sort.h"
#include "benchmarks/strassen.h"
#include "benchmarks/svd.h"
#include "benchmarks/tridiagonal.h"
#include "compiler/executor.h"

namespace petabricks {
namespace apps {
namespace {

// (residuals use apps::maxAbsDiff from benchmark.h)

// ---- Black-Scholes -----------------------------------------------------

TEST(BlackScholesReal, FormulaSanity)
{
    // Deep in-the-money call is worth ~ S - K e^{-rT}.
    double price = blackScholesCall(200.0, 100.0, 1.0, 0.05, 0.2);
    EXPECT_NEAR(price, 200.0 - 100.0 * std::exp(-0.05), 0.2);
    // Far out-of-the-money call is nearly worthless.
    EXPECT_LT(blackScholesCall(10.0, 100.0, 0.5, 0.05, 0.2), 1e-6);
}

TEST(BlackScholesReal, ExecutorMatchesReferenceOnCpuAndGpu)
{
    BlackScholesBenchmark bench;
    Rng rng(3);
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    runtime::Runtime rt(2, &device);
    compiler::TransformExecutor exec(rt);

    for (compiler::Backend backend :
         {compiler::Backend::Cpu, compiler::Backend::OpenClGlobal}) {
        lang::Binding binding = bench.makeBinding(900, rng);
        tuner::Config config = bench.seedConfig();
        config.selector("BlackScholes.backend")
            .setAlgorithm(0, backendAlg(backend));
        exec.execute(bench.transform(), binding,
                     bench.planFor(config, 900));
        exec.syncOutputs(bench.transform(), binding);
        MatrixD ref = BlackScholesBenchmark::reference(binding);
        EXPECT_LT(maxAbsDiff(binding.matrix("Price"), ref), 1e-9)
            << compiler::backendName(backend);
    }
}

TEST(BlackScholesReal, SplitRatioMatchesReference)
{
    BlackScholesBenchmark bench;
    Rng rng(4);
    ocl::Device device(sim::MachineProfile::laptop().ocl);
    runtime::Runtime rt(2, &device);
    compiler::TransformExecutor exec(rt);
    lang::Binding binding = bench.makeBinding(640, rng);
    tuner::Config config = bench.seedConfig();
    config.selector("BlackScholes.backend")
        .setAlgorithm(0, backendAlg(compiler::Backend::OpenClGlobal));
    config.tunable("BlackScholes.ratio").value = 6; // 75% GPU, 25% CPU
    exec.execute(bench.transform(), binding, bench.planFor(config, 640));
    exec.syncOutputs(bench.transform(), binding);
    EXPECT_LT(maxAbsDiff(binding.matrix("Price"),
                         BlackScholesBenchmark::reference(binding)),
              1e-9);
}

// ---- Convolution -------------------------------------------------------

TEST(ConvolutionReal, AllMappingsMatchReference)
{
    ConvolutionBenchmark bench(5);
    Rng rng(5);
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    runtime::Runtime rt(2, &device);
    compiler::TransformExecutor exec(rt);

    struct Case
    {
        bool separable;
        bool local;
    };
    for (Case c : {Case{false, false}, Case{false, true},
                   Case{true, false}, Case{true, true}}) {
        lang::Binding binding = bench.makeBinding(48, rng);
        tuner::Config config =
            ConvolutionBenchmark::fixedMapping(c.separable, c.local);
        exec.execute(bench.transform(), binding,
                     bench.planFor(config, 48));
        exec.syncOutputs(bench.transform(), binding);
        MatrixD ref = ConvolutionBenchmark::reference(binding, 5);
        EXPECT_LT(maxAbsDiff(binding.matrix("Out"), ref), 1e-9)
            << (c.separable ? "separable" : "2d")
            << (c.local ? "+local" : "");
    }
}

// ---- Poisson -----------------------------------------------------------

TEST(PoissonReal, PackedSorMatchesDirectSor)
{
    PoissonBenchmark bench(4);
    Rng rng(7);
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    runtime::Runtime rt(2, &device);
    compiler::TransformExecutor exec(rt);

    lang::Binding binding = bench.makeBinding(32, rng);
    MatrixD initial = binding.matrix("In").clone();
    tuner::Config config = PoissonBenchmark::cpuOnlyConfig();
    exec.execute(bench.transform(), binding, bench.planFor(config, 32));
    exec.syncOutputs(bench.transform(), binding);
    MatrixD got = bench.unpackResult(binding);
    MatrixD ref = PoissonBenchmark::reference(initial, 4,
                                              PoissonBenchmark::kOmega);
    EXPECT_LT(maxAbsDiff(got, ref), 1e-9);
}

TEST(PoissonReal, GpuIterationMatchesCpu)
{
    PoissonBenchmark bench(3);
    Rng rng(9);
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    runtime::Runtime rt(2, &device);
    compiler::TransformExecutor exec(rt);

    lang::Binding binding = bench.makeBinding(24, rng);
    MatrixD initial = binding.matrix("In").clone();
    tuner::Config config = bench.seedConfig();
    config.selector("Poisson.split.backend").setAlgorithm(0, backendAlg(compiler::Backend::Cpu));
    config.selector("Poisson.iterate.backend")
        .setAlgorithm(0, backendAlg(compiler::Backend::OpenClLocal));
    exec.execute(bench.transform(), binding, bench.planFor(config, 24));
    exec.syncOutputs(bench.transform(), binding);
    MatrixD ref = PoissonBenchmark::reference(initial, 3,
                                              PoissonBenchmark::kOmega);
    EXPECT_LT(maxAbsDiff(bench.unpackResult(binding), ref), 1e-9);
}

// ---- Sort --------------------------------------------------------------

TEST(SortReal, EveryAlgorithmSorts)
{
    Rng rng(11);
    for (int alg = 0; alg < kSortAlgCount; ++alg) {
        SortBenchmark bench;
        tuner::Config config = bench.seedConfig();
        config.selector("Sort.algorithm").setAlgorithm(0, alg);
        std::vector<double> data(alg <= kSortSelection ? 500 : 5000);
        for (double &d : data)
            d = rng.uniformReal(-1e6, 1e6);
        std::vector<double> expect = data;
        std::sort(expect.begin(), expect.end());
        SortBenchmark::sortWithConfig(config, data);
        EXPECT_EQ(data, expect) << "algorithm " << alg;
    }
}

TEST(SortReal, PolyAlgorithmSorts)
{
    // The paper's Desktop-style config: 2MS at the top, QS in the
    // middle, 4MS lower, IS at the base.
    SortBenchmark bench;
    tuner::Config config = bench.seedConfig();
    tuner::Selector &s = config.selector("Sort.algorithm");
    s.setAlgorithm(0, kSortInsertion);
    s.insertLevel(64, kSortMerge4);
    s.insertLevel(2048, kSortQuick);
    s.insertLevel(1 << 15, kSortMerge2);
    Rng rng(13);
    std::vector<double> data(100000);
    for (double &d : data)
        d = rng.uniformReal(-1e9, 1e9);
    std::vector<double> expect = data;
    std::sort(expect.begin(), expect.end());
    SortBenchmark::sortWithConfig(config, data);
    EXPECT_EQ(data, expect);
}

TEST(SortReal, RadixHandlesNegativesAndDuplicates)
{
    SortBenchmark bench;
    tuner::Config config = bench.seedConfig();
    config.selector("Sort.algorithm").setAlgorithm(0, kSortRadix);
    std::vector<double> data{3.5, -2.0, 0.0, -2.0, 1e300, -1e300,
                             0.25, -0.0, 7.0, 3.5};
    std::vector<double> expect = data;
    std::sort(expect.begin(), expect.end());
    SortBenchmark::sortWithConfig(config, data);
    EXPECT_EQ(data, expect);
}

TEST(SortReal, BitonicGpuSortsNonPowerOfTwo)
{
    SortBenchmark bench;
    tuner::Config config = SortBenchmark::gpuOnlyConfig();
    Rng rng(17);
    std::vector<double> data(1000); // padded to 1024 internally
    for (double &d : data)
        d = rng.uniformReal(-50.0, 50.0);
    std::vector<double> expect = data;
    std::sort(expect.begin(), expect.end());
    SortBenchmark::sortWithConfig(config, data);
    EXPECT_EQ(data, expect);
}

// ---- Strassen ----------------------------------------------------------

TEST(StrassenReal, AllAlgorithmsMatchNaive)
{
    Rng rng(19);
    const int64_t n = 64;
    MatrixD a(n, n), b(n, n);
    for (int64_t i = 0; i < a.size(); ++i) {
        a[i] = rng.uniformReal(-1.0, 1.0);
        b[i] = rng.uniformReal(-1.0, 1.0);
    }
    StrassenBenchmark bench;
    tuner::Config naiveCfg = bench.seedConfig();
    naiveCfg.selector("Strassen.mm.algorithm").setAlgorithm(0, kMmNaive);
    MatrixD ref(n, n);
    runMatmul(naiveCfg, "Strassen", a, b, ref);

    for (int alg = 0; alg < kMmAlgCount; ++alg) {
        tuner::Config config = bench.seedConfig();
        config.selector("Strassen.mm.algorithm").setAlgorithm(0, alg);
        MatrixD c(n, n);
        runMatmul(config, "Strassen", a, b, c);
        EXPECT_LT(maxAbsDiff(c, ref), 1e-9) << "algorithm " << alg;
    }
}

TEST(StrassenReal, PolyAlgorithmRecursion)
{
    // Strassen at the top, 8-way in the middle, LAPACK leaves — the
    // recursion consults the selector at every level.
    Rng rng(23);
    const int64_t n = 128;
    MatrixD a(n, n), b(n, n);
    for (int64_t i = 0; i < a.size(); ++i) {
        a[i] = rng.uniformReal(-1.0, 1.0);
        b[i] = rng.uniformReal(-1.0, 1.0);
    }
    StrassenBenchmark bench;
    tuner::Config config = bench.seedConfig();
    tuner::Selector &s = config.selector("Strassen.mm.algorithm");
    s.setAlgorithm(0, kMmLapack);
    s.insertLevel(48, kMmRecursive8);
    s.insertLevel(96, kMmStrassen);
    MatrixD c(n, n), ref(n, n);
    runMatmul(config, "Strassen", a, b, c);
    blas::gemm(a, b, ref);
    EXPECT_LT(maxAbsDiff(c, ref), 1e-8);
}

// ---- SVD ---------------------------------------------------------------

TEST(SvdReal, FullRankReconstructsExactly)
{
    Rng rng(29);
    const int64_t n = 24;
    MatrixD a(n, n);
    for (int64_t i = 0; i < a.size(); ++i)
        a[i] = rng.uniformReal(-1.0, 1.0);
    SvdBenchmark bench;
    tuner::Config config = bench.seedConfig(); // k8 = 8: full rank
    double err = 1.0;
    bench.approximate(config, a, &err);
    EXPECT_LT(err, 1e-6);
}

TEST(SvdReal, ErrorDecreasesWithRank)
{
    Rng rng(31);
    const int64_t n = 32;
    // Build a matrix with decaying spectrum so truncation matters.
    MatrixD a(n, n);
    for (int64_t i = 0; i < a.size(); ++i)
        a[i] = rng.uniformReal(-1.0, 1.0);
    for (int64_t y = 0; y < n; ++y)
        for (int64_t x = 0; x < n; ++x)
            a.at(x, y) += (x == y ? 5.0 * std::exp(-0.2 * x) : 0.0);
    SvdBenchmark bench;
    double prev = 2.0;
    for (int k8 : {2, 4, 8}) {
        tuner::Config config = bench.seedConfig();
        config.tunable("SVD.k8").value = k8;
        double err = 0.0;
        bench.approximate(config, a, &err);
        EXPECT_LE(err, prev + 1e-9) << "k8=" << k8;
        prev = err;
    }
    EXPECT_LT(prev, 1e-6); // full rank at the end
}

TEST(SvdReal, JacobiEigenDecomposesSymmetricMatrix)
{
    Rng rng(37);
    const int64_t n = 16;
    MatrixD m(n, n);
    for (int64_t y = 0; y < n; ++y)
        for (int64_t x = 0; x <= y; ++x) {
            double v = rng.uniformReal(-1.0, 1.0);
            m.at(x, y) = v;
            m.at(y, x) = v;
        }
    MatrixD b = m.clone();
    MatrixD v;
    jacobiEigen(b, v);
    // Check M * v_i = lambda_i * v_i for every eigenpair.
    for (int64_t i = 0; i < n; ++i) {
        double lambda = b.at(i, i);
        for (int64_t r = 0; r < n; ++r) {
            double mv = 0.0;
            for (int64_t c = 0; c < n; ++c)
                mv += m.at(c, r) * v.at(i, c);
            EXPECT_NEAR(mv, lambda * v.at(i, r), 1e-8);
        }
    }
}

// ---- Tridiagonal -------------------------------------------------------

TEST(TridiagReal, ThomasSolvesSystems)
{
    Rng rng(41);
    auto p = TridiagBenchmark::makeProblem(32, rng);
    MatrixD x = TridiagBenchmark::referenceSolve(p);
    // Verify residual A x = d per system.
    for (int64_t sys = 0; sys < p.systems(); ++sys) {
        for (int64_t i = 0; i < p.unknowns(); ++i) {
            double ax = p.diag.at(i, sys) * x.at(i, sys);
            if (i > 0)
                ax += p.lower.at(i, sys) * x.at(i - 1, sys);
            if (i + 1 < p.unknowns())
                ax += p.upper.at(i, sys) * x.at(i + 1, sys);
            EXPECT_NEAR(ax, p.rhs.at(i, sys), 1e-8);
        }
    }
}

TEST(TridiagReal, AllAlgorithmsAgree)
{
    Rng rng(43);
    auto p = TridiagBenchmark::makeProblem(64, rng);
    MatrixD ref = TridiagBenchmark::referenceSolve(p);
    TridiagBenchmark bench;
    for (int alg : {kTriCyclicCpu, kTriCyclicGpu}) {
        tuner::Config config = bench.seedConfig();
        config.selector("Tridiag.algorithm").setAlgorithm(0, alg);
        MatrixD x = TridiagBenchmark::solveWithConfig(config, p);
        EXPECT_LT(maxAbsDiff(x, ref), 1e-7) << "algorithm " << alg;
    }
}

} // namespace
} // namespace apps
} // namespace petabricks
