/**
 * @file
 * SessionTable behavior: hosted searches match in-process ones,
 * checkpoint-backed eviction is transparent (the satellite's eviction
 * round-trip), the resident cap holds, the sweeper GCs idle and
 * abandoned sessions, and restart + resume picks searches back up.
 */

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>

#include "service/session_table.h"
#include "sim/machine.h"
#include "support/error.h"

using namespace petabricks;
using namespace petabricks::service;

namespace {

namespace fs = std::filesystem;

/** Fresh per-test spool directory. */
std::string
spoolDir(const char *name)
{
    std::string path = std::string(::testing::TempDir()) +
                       "pb_session_table_" + name;
    fs::remove_all(path);
    return path;
}

/** A spec small enough that a full search is milliseconds. */
SessionSpec
tinySpec(uint64_t seed = 42, const std::string &benchmark = "Sort")
{
    KvFile kv;
    kv.set("benchmark", benchmark);
    kv.setInt("seed", static_cast<int64_t>(seed));
    kv.setInt("populationSize", 4);
    kv.setInt("generationsPerSize", 3);
    kv.setInt("minInputSize", 64);
    kv.setInt("maxInputSize", 256);
    return SessionSpec::fromCreateRequest(kv);
}

/** Champion body must carry exactly the reference search's config. */
void
expectChampionMatches(const KvFile &champion,
                      const tuner::TuningResult &reference)
{
    KvFile expected = reference.best.toKv();
    for (const std::string &key : expected.keys())
        EXPECT_EQ(champion.get(key), expected.get(key)) << key;
    EXPECT_EQ(champion.getDouble("champion.seconds"),
              reference.bestSeconds);
    EXPECT_EQ(champion.getInt("champion.done"), 1);
}

} // namespace

TEST(SessionTable, HostedSearchMatchesInProcessRun)
{
    SessionTableOptions options;
    options.spoolDir = spoolDir("basic");
    SessionTable table(options);

    SessionSpec spec = tinySpec();
    tuner::TuningResult reference = runSpecLocally(spec);

    std::string id = table.create(spec);
    tuner::SessionIntrospection view = table.status(id);
    EXPECT_FALSE(view.done);
    EXPECT_EQ(view.completedSteps, 0);
    EXPECT_GT(view.totalSteps, 0);

    // Step in uneven chunks; the cursor advances exactly as requested.
    EXPECT_EQ(table.step(id, 1), 1);
    EXPECT_EQ(table.status(id).completedSteps, 1);
    table.step(id, 1000); // clamped at completion
    view = table.status(id);
    EXPECT_TRUE(view.done);
    EXPECT_EQ(view.completedSteps, view.totalSteps);
    EXPECT_EQ(table.step(id, 1), 0); // stepping a done session: no-op

    expectChampionMatches(table.champion(id), reference);
}

TEST(SessionTable, EvictionRoundTripIsTransparent)
{
    SessionTableOptions options;
    options.spoolDir = spoolDir("evict");
    options.residentCap = 2;
    SessionTable table(options);

    SessionSpec spec = tinySpec(7);
    tuner::TuningResult reference = runSpecLocally(spec);

    // s1 runs half its search, then goes cold while s2/s3 fill the
    // table past the cap — the LRU (s1) is evicted to the spool.
    std::string id = table.create(spec);
    int half = table.status(id).totalSteps / 2;
    table.step(id, half);
    table.create(tinySpec(8));
    table.create(tinySpec(9));
    SessionTableStats stats = table.stats();
    EXPECT_GE(stats.evictions, 1);
    EXPECT_LE(stats.resident, 2u);
    EXPECT_TRUE(fs::exists(table.checkpointPath(id)));

    // status of a cold session answers from the eviction snapshot
    // without rehydrating it...
    EXPECT_EQ(table.status(id).completedSteps, half);
    EXPECT_EQ(table.stats().resident, stats.resident);

    // ...but a touch (step) transparently rehydrates, and the finished
    // search is bit-identical to the one that never left memory.
    table.step(id, 1000);
    EXPECT_GT(table.stats().rehydrations, 0);
    expectChampionMatches(table.champion(id), reference);
}

TEST(SessionTable, ResidentCountNeverExceedsCap)
{
    SessionTableOptions options;
    options.spoolDir = spoolDir("cap");
    options.residentCap = 2;
    SessionTable table(options);

    std::vector<std::string> ids;
    for (int i = 0; i < 6; ++i)
        ids.push_back(table.create(tinySpec(100 + i)));
    for (const std::string &id : ids)
        table.step(id, 2);
    SessionTableStats stats = table.stats();
    EXPECT_EQ(stats.peakResident, 2u);
    EXPECT_EQ(stats.total, 6u);
    EXPECT_GE(stats.evictions, 4);
}

TEST(SessionTable, ConcurrentSteppersUnderCapPressureSerialize)
{
    // Regression: acquiring a session must check idle AND resident as
    // one atomic predicate. With residentCap exhausted, a stepper
    // waits for room with the table mutex dropped; a second stepper on
    // the same session could previously pass the busy check in that
    // window and both would run stepMany() on one HostedSession.
    // Here two threads race step(a) while a third keeps the cap
    // contended with b, forcing constant evict/rehydrate waits; the
    // searches must still finish on their deterministic trajectories.
    SessionTableOptions options;
    options.spoolDir = spoolDir("race");
    options.residentCap = 1;
    SessionTable table(options);

    SessionSpec specA = tinySpec(61);
    SessionSpec specB = tinySpec(62);
    tuner::TuningResult referenceA = runSpecLocally(specA);
    tuner::TuningResult referenceB = runSpecLocally(specB);
    std::string a = table.create(specA);
    std::string b = table.create(specB);

    auto stepUntilDone = [&table](const std::string &id) {
        while (table.step(id, 1) > 0) {
        }
    };
    std::thread racer1([&] { stepUntilDone(a); });
    std::thread racer2([&] { stepUntilDone(a); });
    std::thread contender([&] { stepUntilDone(b); });
    racer1.join();
    racer2.join();
    contender.join();

    EXPECT_TRUE(table.status(a).done);
    EXPECT_TRUE(table.status(b).done);
    EXPECT_EQ(table.stats().peakResident, 1u);
    expectChampionMatches(table.champion(a), referenceA);
    expectChampionMatches(table.champion(b), referenceB);
}

TEST(SessionTable, ResumeAfterRestartFinishesIdentically)
{
    SessionTableOptions options;
    options.spoolDir = spoolDir("restart");
    SessionSpec spec = tinySpec(21);
    tuner::TuningResult reference = runSpecLocally(spec);

    std::string id;
    {
        SessionTable table(options);
        id = table.create(spec);
        table.step(id, 2);
    } // daemon "restart": the table (and all live sessions) vanish

    SessionTable table(options);
    EXPECT_THROW(table.status(id), FatalError); // not yet resumed
    EXPECT_EQ(table.resume(id), id);
    EXPECT_EQ(table.status(id).completedSteps, 2);
    table.step(id, 1000);
    expectChampionMatches(table.champion(id), reference);

    // Fresh ids must not collide with spooled ones from the past life.
    std::string fresh = table.create(tinySpec(22));
    EXPECT_NE(fresh, id);
}

TEST(SessionTable, SweeperEvictsIdleAndExpiresAbandoned)
{
    SessionTableOptions options;
    options.spoolDir = spoolDir("sweep");
    options.idleEvictSeconds = 10;
    options.expireSeconds = 100;
    SessionTable table(options);

    std::string id = table.create(tinySpec(33));
    table.step(id, 1);
    EXPECT_EQ(table.stats().resident, 1u);

    auto now = std::chrono::steady_clock::now();
    table.sweep(now); // nothing is idle yet
    EXPECT_EQ(table.stats().resident, 1u);

    table.sweep(now + std::chrono::seconds(30)); // idle > 10s: evict
    EXPECT_EQ(table.stats().resident, 0u);
    EXPECT_EQ(table.stats().evictions, 1);
    EXPECT_TRUE(fs::exists(table.metaPath(id)));

    table.sweep(now + std::chrono::seconds(200)); // idle > 100s: GC
    EXPECT_EQ(table.stats().expired, 1);
    EXPECT_EQ(table.stats().total, 0u);
    EXPECT_FALSE(fs::exists(table.metaPath(id)));
    EXPECT_THROW(table.status(id), FatalError);
}

TEST(SessionTable, StopDeletesLiveStateAndSpool)
{
    SessionTableOptions options;
    options.spoolDir = spoolDir("stop");
    SessionTable table(options);
    std::string id = table.create(tinySpec(5));
    table.step(id, 1);
    EXPECT_TRUE(fs::exists(table.checkpointPath(id)));

    table.stop(id);
    EXPECT_THROW(table.status(id), FatalError);
    EXPECT_THROW(table.step(id, 1), FatalError);
    EXPECT_FALSE(fs::exists(table.checkpointPath(id)));
    EXPECT_FALSE(fs::exists(table.metaPath(id)));
    EXPECT_EQ(table.stats().resident, 0u);
    EXPECT_THROW(table.resume(id), FatalError); // spool is gone too
}

TEST(SessionTable, UnknownIdsRaiseCleanErrors)
{
    SessionTableOptions options;
    options.spoolDir = spoolDir("unknown");
    SessionTable table(options);
    EXPECT_THROW(table.status("s999"), FatalError);
    EXPECT_THROW(table.step("s999", 1), FatalError);
    EXPECT_THROW(table.champion("s999"), FatalError);
    EXPECT_THROW(table.stop("s999"), FatalError);
    EXPECT_THROW(table.resume("s999"), FatalError);
}

TEST(SessionSpec, CreateRequestResolvesAndRoundTrips)
{
    KvFile request;
    request.set("benchmark", "sort"); // case-insensitive lookup
    request.set("machine", "Server");
    request.setInt("seed", 99);
    SessionSpec spec = SessionSpec::fromCreateRequest(request);
    EXPECT_EQ(spec.benchmark, "Sort"); // canonicalized
    EXPECT_EQ(spec.machine, "Server");
    EXPECT_EQ(spec.tuner.seed, 99u);
    // Machine-derived compile model resolved at create time.
    EXPECT_EQ(spec.tuner.kernelCompileSeconds,
              sim::MachineProfile::server().kernelCompileSeconds);

    SessionSpec reloaded = SessionSpec::fromKv(spec.toKv());
    EXPECT_EQ(reloaded.toKv(), spec.toKv());

    KvFile bad;
    bad.set("benchmark", "NoSuchBenchmark");
    EXPECT_THROW(SessionSpec::fromCreateRequest(bad), FatalError);
    KvFile empty;
    EXPECT_THROW(SessionSpec::fromCreateRequest(empty), FatalError);
}

TEST(SessionTable, SpoolFsckQuarantinesCorruptPairsAndKeepsHealthyOnes)
{
    std::string spool = spoolDir("fsck");

    // A healthy session, written by a first daemon life.
    std::string healthyId;
    {
        SessionTableOptions options;
        options.spoolDir = spool;
        SessionTable table(options);
        healthyId = table.create(tinySpec(7));
        table.step(healthyId, 2);
    }

    // Corruption a crash could leave behind: a torn .meta, a torn
    // .ckpt under a valid .meta, and an orphan .ckpt with no spec.
    auto write = [&](const std::string &name, const std::string &text) {
        std::ofstream out(spool + "/" + name);
        out << text;
    };
    write("s90.meta", "spec.benchmark = Sort\ntrunca");
    tinySpec(8).toKv().save(spool + "/s91.meta");
    write("s91.ckpt", "not a checkpoint at all");
    write("s92.ckpt", "orphan checkpoint");

    // Boot on the damaged spool: the fsck must set the corrupt trio
    // aside (renamed, not deleted) and keep serving the healthy one.
    SessionTableOptions options;
    options.spoolDir = spool;
    SessionTable table(options);

    EXPECT_EQ(table.stats().spoolQuarantined, 3);
    EXPECT_TRUE(fs::exists(spool + "/s90.meta.quarantine"));
    EXPECT_TRUE(fs::exists(spool + "/s91.meta.quarantine"));
    EXPECT_TRUE(fs::exists(spool + "/s91.ckpt.quarantine"));
    EXPECT_TRUE(fs::exists(spool + "/s92.ckpt.quarantine"));
    EXPECT_FALSE(fs::exists(spool + "/s90.meta"));
    EXPECT_FALSE(fs::exists(spool + "/s91.meta"));

    // Quarantined ids are invisible: not resumable, and their numbers
    // can be re-issued without tripping over leftover files.
    EXPECT_THROW(table.resume("s90"), FatalError);
    EXPECT_THROW(table.resume("s91"), FatalError);

    // The healthy session survived fsck intact and resumes mid-search.
    table.resume(healthyId);
    EXPECT_EQ(table.status(healthyId).completedSteps, 2);
    while (!table.status(healthyId).done)
        table.step(healthyId, 8);
    expectChampionMatches(table.champion(healthyId),
                          runSpecLocally(tinySpec(7)));
}

TEST(SessionTable, FsckCanBeDisabled)
{
    std::string spool = spoolDir("nofsck");
    {
        SessionTableOptions bootstrap;
        bootstrap.spoolDir = spool;
        SessionTable ignored(bootstrap);
    }
    std::ofstream(spool + "/s50.meta") << "spec.benchmark = Sort\ntorn";

    SessionTableOptions options;
    options.spoolDir = spool;
    options.fsckSpool = false;
    SessionTable table(options);
    EXPECT_EQ(table.stats().spoolQuarantined, 0);
    EXPECT_TRUE(fs::exists(spool + "/s50.meta")); // untouched
}

TEST(SessionTable, CheckpointAllFlushesEveryResidentSession)
{
    SessionTableOptions options;
    options.spoolDir = spoolDir("ckptall");
    options.checkpointEachStep = false; // only explicit saves
    SessionTable table(options);

    std::string a = table.create(tinySpec(1));
    std::string b = table.create(tinySpec(2));
    table.step(a, 2);
    table.step(b, 3);
    // step() saved once per step command; remove those to isolate what
    // checkpointAll() itself writes.
    fs::remove(table.checkpointPath(a));
    fs::remove(table.checkpointPath(b));

    table.checkpointAll();
    EXPECT_TRUE(fs::exists(table.checkpointPath(a)));
    EXPECT_TRUE(fs::exists(table.checkpointPath(b)));

    // A fresh table on the same spool resumes both at the flushed
    // cursor — the drain-then-restart contract.
    SessionTableOptions reopened;
    reopened.spoolDir = options.spoolDir;
    SessionTable restarted(reopened);
    restarted.resume(a);
    restarted.resume(b);
    EXPECT_EQ(restarted.status(a).completedSteps, 2);
    EXPECT_EQ(restarted.status(b).completedSteps, 3);
}
