/**
 * @file
 * The crash matrix: for EVERY registered crash point, fork a child
 * that runs the matching persistence workload with a kill scheduled at
 * that point, verify the child died exactly there (exit code
 * crashpoint::kCrashExitCode), then recover over the same directories
 * in the parent and assert the recovery invariant:
 *
 *   1. boot fsck never throws;
 *   2. at most the in-flight artifact is lost or quarantined — every
 *      previously persisted artifact is byte-intact;
 *   3. a resumed session replays to a champion byte-identical to an
 *      uninterrupted run.
 *
 * Fork safety: everything here runs with engineParallelism = 1, and
 * ThreadPool(1) spawns zero worker threads, so the gtest process is
 * single-threaded at every fork() (no TuningServer is ever started —
 * the matrix drives SessionTable and the stores directly).
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "cache/shared_cache.h"
#include "portfolio/portfolio.h"
#include "service/hosted_session.h"
#include "service/session_table.h"
#include "support/crashpoint.h"
#include "support/error.h"
#include "support/fsck.h"
#include "support/kvfile.h"

using namespace petabricks;
using namespace petabricks::service;

namespace {

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_crash_matrix_" + name;
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

size_t
countQuarantined(const std::string &dir)
{
    size_t n = 0;
    for (const fsck::ScanEntry &entry : fsck::scan(dir))
        if (entry.kind == fsck::FileKind::Quarantine)
            ++n;
    return n;
}

KvFile
tinyCreate(uint64_t seed = 42)
{
    KvFile kv;
    kv.set("benchmark", "Sort");
    kv.setInt("seed", static_cast<int64_t>(seed));
    kv.setInt("populationSize", 4);
    kv.setInt("generationsPerSize", 3);
    kv.setInt("minInputSize", 64);
    kv.setInt("maxInputSize", 256);
    return kv;
}

SessionTableOptions
tableOptions(const std::string &spool)
{
    SessionTableOptions options;
    options.spoolDir = spool;
    options.residentCap = 4;
    return options;
}

cache::SharedCacheOptions
cacheOptions(const std::string &dir)
{
    cache::SharedCacheOptions options;
    options.dir = dir;
    options.flushEveryPublishes = 0; // flush() drives segment writes
    return options;
}

portfolio::ChampionRecord
championRecord(int64_t n)
{
    portfolio::ChampionRecord record;
    record.benchmark = "Sort";
    record.machineName = "Desktop";
    record.machineFingerprint = 0xc0ffee00c0ffee00ull;
    record.inputSize = n;
    record.seconds = 0.001 * static_cast<double>(n);
    record.config = apps::findBenchmark("Sort")->seedConfig();
    return record;
}

/**
 * The per-prefix workload, run inside the forked child with a kill
 * armed. Each traverses its crash-point family at least twice so the
 * scheduled hit lands *after* one artifact is already safely on disk —
 * that prior artifact is what recovery must find intact.
 */
void
runWorkload(const std::string &prefix, const std::string &spool,
            const std::string &cacheDir, const std::string &champDir)
{
    if (prefix == "spool.meta") {
        // Meta save #1 (create A) succeeds; step A checkpoints; meta
        // save #2 (create B) hits the armed point.
        SessionTable table(tableOptions(spool));
        table.create(SessionSpec::fromCreateRequest(tinyCreate()));
        table.step("s1", 1);
        table.create(SessionSpec::fromCreateRequest(tinyCreate(43)));
    } else if (prefix == "spool.ckpt") {
        // Checkpoint saves fire per step; the kill is scheduled at
        // hit 3, so two on-trajectory checkpoints are already good.
        SessionTable table(tableOptions(spool));
        const std::string id =
            table.create(SessionSpec::fromCreateRequest(tinyCreate()));
        for (int i = 0; i < 8; ++i)
            table.step(id, 1);
    } else if (prefix == "cache.seg") {
        // Segment #1 flushes clean; segment #2 hits the armed point.
        cache::SharedEvaluationCache sharedCache(cacheOptions(cacheDir));
        for (int i = 0; i < 4; ++i)
            sharedCache.publish(0x5eedull, 64, 0x1000u + i,
                                0.5 + 0.01 * i, 1);
        sharedCache.flush();
        for (int i = 0; i < 4; ++i)
            sharedCache.publish(0x5eedull, 128, 0x2000u + i,
                                0.7 + 0.01 * i, 1);
        sharedCache.flush();
    } else if (prefix == "portfolio.champ") {
        // Champion #1 persists clean; champion #2 hits the armed point.
        portfolio::ChampionPortfolio portfolio(champDir, true);
        portfolio.put(championRecord(64));
        portfolio.put(championRecord(128));
    } else {
        FAIL() << "workload missing for prefix " << prefix;
    }
}

/** Scheduled hit for the kill: late enough that prior artifacts exist. */
int
killHit(const std::string &prefix)
{
    return prefix == "spool.ckpt" ? 3 : 2;
}

/**
 * Scheduled hit for the torn-write sweep: the LAST traversal the
 * workload makes. Checkpoints reuse one filename (s1.ckpt), so a torn
 * write anywhere earlier would just be overwritten by the next good
 * checkpoint — the torn file must be the final state on disk for the
 * next boot's fsck to have anything to quarantine. The tiny session
 * runs exactly 6 steps (two sizes, 64 and 256 at growth 4, times 3
 * generations), so its 6th checkpoint write is the last.
 */
int
tornHit(const std::string &prefix)
{
    return prefix == "spool.ckpt" ? 6 : 2;
}

void
recoverAndCheck(const std::string &point, const std::string &prefix,
                const std::string &spool, const std::string &cacheDir,
                const std::string &champDir)
{
    // Recovery must never see an armed schedule.
    crashpoint::clearSchedule();

    if (prefix == "spool.meta" || prefix == "spool.ckpt") {
        // Boot fsck over the wreckage must not throw, and session s1
        // (created before the kill) must resume and replay to the
        // exact champion an uninterrupted run produces.
        SessionTable table(tableOptions(spool));
        EXPECT_LE(table.stats().spoolQuarantined, 1) << point;
        table.resume("s1");
        while (!table.status("s1").done)
            table.step("s1", 4);
        KvFile champion = table.champion("s1");

        // Same spec every time — run the uninterrupted reference once.
        static const tuner::TuningResult reference = runSpecLocally(
            SessionSpec::fromCreateRequest(tinyCreate()));
        KvFile expected = reference.best.toKv();
        for (const std::string &key : expected.keys())
            EXPECT_EQ(champion.get(key), expected.get(key))
                << point << ": config key " << key;
        EXPECT_EQ(champion.getDouble("champion.seconds"),
                  reference.bestSeconds)
            << point;
    } else if (prefix == "cache.seg") {
        // Warm start must not throw; the first flushed segment's four
        // records must all come back; at most the in-flight segment is
        // quarantined (a kill mid-sequence normally just leaves temp
        // debris, which is not wreckage).
        cache::SharedEvaluationCache reborn(cacheOptions(cacheDir));
        EXPECT_LE(reborn.stats().segmentsQuarantined, 1) << point;
        for (int i = 0; i < 4; ++i) {
            auto hit = reborn.lookup(0x5eedull, 64, 0x1000u + i, 2);
            ASSERT_TRUE(hit.has_value()) << point << " record " << i;
            EXPECT_EQ(*hit, 0.5 + 0.01 * i) << point;
        }
    } else if (prefix == "portfolio.champ") {
        portfolio::ChampionPortfolio reborn(champDir, true);
        EXPECT_LE(reborn.stats().quarantined, 1) << point;
        auto record =
            reborn.exact("Sort", 0xc0ffee00c0ffee00ull, 64);
        ASSERT_TRUE(record.has_value()) << point;
        EXPECT_EQ(record->seconds, 0.001 * 64) << point;
        EXPECT_EQ(record->config.valueFingerprint(),
                  championRecord(64).config.valueFingerprint())
            << point;
    }
}

TEST(CrashMatrix, EveryRegisteredPointRecovers)
{
    std::vector<std::string> points = crashpoint::catalog();
    ASSERT_GE(points.size(), 16u);

    for (const std::string &point : points) {
        const std::string prefix =
            point.substr(0, point.rfind('.'));
        SCOPED_TRACE(point);

        const std::string slug = [&] {
            std::string s = point;
            for (char &c : s)
                if (c == '.')
                    c = '_';
            return s;
        }();
        const std::string spool = freshDir(slug + "_spool");
        const std::string cacheDir = freshDir(slug + "_cache");
        const std::string champDir = freshDir(slug + "_champ");

        // Buffered output duplicated into the child would garble the
        // gtest log; flush before forking.
        std::fflush(stdout);
        std::fflush(stderr);
        pid_t pid = fork();
        ASSERT_GE(pid, 0) << "fork failed";
        if (pid == 0) {
            crashpoint::setSchedule(
                point + "@" + std::to_string(killHit(prefix)) + "=kill");
            runWorkload(prefix, spool, cacheDir, champDir);
            // Reached only if the scheduled kill never fired.
            _exit(66);
        }

        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status))
            << point << ": child did not exit (status " << status << ")";
        ASSERT_EQ(WEXITSTATUS(status), crashpoint::kCrashExitCode)
            << point << ": child exited " << WEXITSTATUS(status)
            << " instead of dying at the crash point";

        recoverAndCheck(point, prefix, spool, cacheDir, champDir);

        // The recovery boot already consumed (or ignored) the
        // wreckage; a SECOND boot over the same dirs must be clean —
        // fsck converges instead of re-quarantining forever.
        recoverAndCheck(point, prefix, spool, cacheDir, champDir);
    }
}

/**
 * Non-kill injection sweep: `torn` at every .write point lands a
 * truncated live file; the next boot must quarantine exactly that
 * artifact and keep everything older byte-intact.
 */
TEST(CrashMatrix, TornWritesAreQuarantinedOnNextBoot)
{
    for (const std::string &prefix :
         {std::string("spool.ckpt"), std::string("cache.seg"),
          std::string("portfolio.champ")}) {
        SCOPED_TRACE(prefix);
        std::string slug = prefix;
        for (char &c : slug)
            if (c == '.')
                c = '_';
        const std::string spool = freshDir(slug + "_torn_spool");
        const std::string cacheDir = freshDir(slug + "_torn_cache");
        const std::string champDir = freshDir(slug + "_torn_champ");

        std::fflush(stdout);
        std::fflush(stderr);
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Torn write at the LAST traversal: the workload completes
            // (torn continues the sequence) and exits normally, with a
            // truncated live file on disk.
            crashpoint::setSchedule(
                prefix + ".write@" +
                std::to_string(tornHit(prefix)) + "=torn");
            runWorkload(prefix, spool, cacheDir, champDir);
            _exit(0);
        }
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0)
            << prefix << ": torn workload should complete";

        const std::string point = prefix + ".write(torn)";
        if (prefix == "spool.ckpt") {
            // A torn checkpoint is indistinguishable from a tampered
            // one, so the spool fsck quarantines the whole session
            // (meta + ckpt) rather than resuming from a half-written
            // state — the established SessionTable policy. The boot
            // must not throw and the table must still do real work.
            crashpoint::clearSchedule();
            SessionTable table(tableOptions(spool));
            EXPECT_GE(table.stats().spoolQuarantined, 1);
            EXPECT_THROW(table.resume("s1"), FatalError);
            const std::string id =
                table.create(SessionSpec::fromCreateRequest(tinyCreate()));
            EXPECT_EQ(table.step(id, 1), 1);
        } else {
            recoverAndCheck(point, prefix, spool, cacheDir, champDir);
        }

        // The torn artifact really was set aside.
        const std::string dir = prefix == "cache.seg" ? cacheDir
                                : prefix == "portfolio.champ"
                                    ? champDir
                                    : spool;
        EXPECT_GE(countQuarantined(dir), 1u) << prefix;
    }
}

} // namespace
