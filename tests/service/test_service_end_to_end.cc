/**
 * @file
 * End-to-end service tests: a real TuningServer on an ephemeral port,
 * driven over real sockets by service::Client. Covers the full command
 * lifecycle, detached stepping, error mapping, the stats endpoint, and
 * resume across a server restart on the same spool directory.
 */

#include <chrono>
#include <filesystem>
#include <gtest/gtest.h>
#include <thread>

#include "service/client.h"
#include "service/server.h"
#include "support/error.h"

using namespace petabricks;
using namespace petabricks::service;

namespace {

namespace fs = std::filesystem;

std::string
spoolDir(const char *name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_service_e2e_" + name;
    fs::remove_all(path);
    return path;
}

ServerOptions
serverOptions(const std::string &spool)
{
    ServerOptions options;
    options.port = 0; // ephemeral
    options.workers = 2;
    options.table.spoolDir = spool;
    return options;
}

KvFile
tinyCreate(uint64_t seed = 42)
{
    KvFile kv;
    kv.set("benchmark", "Sort");
    kv.setInt("seed", static_cast<int64_t>(seed));
    kv.setInt("populationSize", 4);
    kv.setInt("generationsPerSize", 3);
    kv.setInt("minInputSize", 64);
    kv.setInt("maxInputSize", 256);
    return kv;
}

/** The same search run in-process — the determinism reference. */
tuner::TuningResult
referenceRun(uint64_t seed = 42)
{
    return runSpecLocally(SessionSpec::fromCreateRequest(tinyCreate(seed)));
}

void
expectChampionMatches(const KvFile &champion,
                      const tuner::TuningResult &reference)
{
    KvFile expected = reference.best.toKv();
    for (const std::string &key : expected.keys())
        EXPECT_EQ(champion.get(key), expected.get(key)) << key;
    EXPECT_EQ(champion.getDouble("champion.seconds"),
              reference.bestSeconds);
    EXPECT_EQ(champion.getInt("champion.done"), 1);
}

} // namespace

TEST(ServiceEndToEnd, FullLifecycleOverRealSockets)
{
    TuningServer server(serverOptions(spoolDir("lifecycle")));
    server.start();
    Client client("127.0.0.1", server.port());
    client.ping();

    std::string id = client.create(tinyCreate());
    EXPECT_FALSE(id.empty());
    tuner::SessionIntrospection view = client.introspect(id);
    EXPECT_FALSE(view.done);
    EXPECT_EQ(view.completedSteps, 0);

    EXPECT_EQ(client.step(id, 2), 2);
    EXPECT_EQ(client.introspect(id).completedSteps, 2);

    KvFile champion = client.runToCompletion(id);
    expectChampionMatches(champion, referenceRun());

    client.stopSession(id);
    EXPECT_THROW(client.status(id), FatalError);
    server.stop();
}

TEST(ServiceEndToEnd, DetachedStepCompletesInBackground)
{
    TuningServer server(serverOptions(spoolDir("detached")));
    server.start();
    Client client("127.0.0.1", server.port());

    std::string id = client.create(tinyCreate(7));
    // wait=0: the daemon answers 202 before the stepping lands.
    EXPECT_EQ(client.step(id, 1000, /*wait=*/false), 0);
    for (int i = 0; i < 600 && !client.introspect(id).done; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(client.introspect(id).done);
    expectChampionMatches(client.champion(id), referenceRun(7));
    server.stop();
}

TEST(ServiceEndToEnd, TwoClientsTuneConcurrently)
{
    TuningServer server(serverOptions(spoolDir("concurrent")));
    server.start();

    // Two sessions stepped from two threads through two connections;
    // each must land exactly its own deterministic champion.
    auto tuneOne = [&](uint64_t seed, KvFile &championOut) {
        Client client("127.0.0.1", server.port());
        std::string id = client.create(tinyCreate(seed));
        championOut = client.runToCompletion(id, 2);
    };
    KvFile championA, championB;
    std::thread threadA(tuneOne, 101, std::ref(championA));
    std::thread threadB(tuneOne, 202, std::ref(championB));
    threadA.join();
    threadB.join();
    expectChampionMatches(championA, referenceRun(101));
    expectChampionMatches(championB, referenceRun(202));
    server.stop();
}

TEST(ServiceEndToEnd, ErrorsMapToCleanHttpFailures)
{
    TuningServer server(serverOptions(spoolDir("errors")));
    server.start();
    Client client("127.0.0.1", server.port());

    // Unknown session -> 404 with the server's message.
    try {
        client.status("s999");
        FAIL() << "unknown session did not throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("unknown session"),
                  std::string::npos);
    }

    // Bad create (no benchmark) -> 400.
    EXPECT_THROW(client.create(KvFile()), FatalError);
    KvFile bogus;
    bogus.set("benchmark", "NoSuchBenchmark");
    EXPECT_THROW(client.create(bogus), FatalError);

    // Unknown endpoint -> error, connection stays usable after.
    EXPECT_THROW(client.command("GET", "/no-such-endpoint"), FatalError);
    client.ping();

    // The failures were counted, and the server survived all of them.
    KvFile stats = client.stats();
    EXPECT_GE(stats.getInt("command.status.errors"), 1);
    EXPECT_GE(stats.getInt("command.create.errors"), 2);
    server.stop();
}

TEST(ServiceEndToEnd, StatsEndpointCountsCommands)
{
    TuningServer server(serverOptions(spoolDir("stats")));
    server.start();
    Client client("127.0.0.1", server.port());

    std::string id = client.create(tinyCreate());
    client.step(id, 2);
    client.status(id);
    client.status(id);

    KvFile stats = client.stats();
    EXPECT_EQ(stats.getInt("command.create.count"), 1);
    EXPECT_EQ(stats.getInt("command.step.count"), 1);
    EXPECT_EQ(stats.getInt("command.status.count"), 2);
    EXPECT_GE(stats.getDouble("command.step.meanMicros"), 0.0);
    EXPECT_GE(stats.getInt("server.requests"), 5);
    EXPECT_GE(stats.getInt("server.connectionsAccepted"), 1);
    EXPECT_EQ(stats.getInt("table.resident"), 1);
    server.stop();
}

TEST(ServiceEndToEnd, ResumeAfterServerRestartMatchesReference)
{
    const std::string spool = spoolDir("restart");
    std::string id;
    {
        TuningServer server(serverOptions(spool));
        server.start();
        Client client("127.0.0.1", server.port());
        id = client.create(tinyCreate(55));
        client.step(id, 2);
        server.stop();
    } // per-generation checkpoints leave the search on disk

    TuningServer server(serverOptions(spool));
    server.start();
    Client client("127.0.0.1", server.port());
    EXPECT_THROW(client.status(id), FatalError); // needs resume first
    client.resume(id);
    EXPECT_EQ(client.introspect(id).completedSteps, 2);
    expectChampionMatches(client.runToCompletion(id), referenceRun(55));
    server.stop();
}

TEST(ServiceEndToEnd, ShutdownEndpointFlagsTheHostLoop)
{
    TuningServer server(serverOptions(spoolDir("shutdown")));
    server.start();
    Client client("127.0.0.1", server.port());
    EXPECT_FALSE(server.shutdownRequested());
    client.shutdownServer();
    EXPECT_TRUE(server.shutdownRequested());
    server.stop();
}
