/**
 * @file
 * End-to-end service tests: a real TuningServer on an ephemeral port,
 * driven over real sockets by service::Client. Covers the full command
 * lifecycle, detached stepping, error mapping, the stats endpoint, and
 * resume across a server restart on the same spool directory.
 */

#include <chrono>
#include <filesystem>
#include <gtest/gtest.h>
#include <thread>

#include "service/client.h"
#include "service/server.h"
#include "support/error.h"

using namespace petabricks;
using namespace petabricks::service;

namespace {

namespace fs = std::filesystem;

std::string
spoolDir(const char *name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_service_e2e_" + name;
    fs::remove_all(path);
    return path;
}

ServerOptions
serverOptions(const std::string &spool)
{
    ServerOptions options;
    options.port = 0; // ephemeral
    options.workers = 2;
    options.table.spoolDir = spool;
    return options;
}

KvFile
tinyCreate(uint64_t seed = 42)
{
    KvFile kv;
    kv.set("benchmark", "Sort");
    kv.setInt("seed", static_cast<int64_t>(seed));
    kv.setInt("populationSize", 4);
    kv.setInt("generationsPerSize", 3);
    kv.setInt("minInputSize", 64);
    kv.setInt("maxInputSize", 256);
    return kv;
}

/** The same search run in-process — the determinism reference. */
tuner::TuningResult
referenceRun(uint64_t seed = 42)
{
    return runSpecLocally(SessionSpec::fromCreateRequest(tinyCreate(seed)));
}

void
expectChampionMatches(const KvFile &champion,
                      const tuner::TuningResult &reference)
{
    KvFile expected = reference.best.toKv();
    for (const std::string &key : expected.keys())
        EXPECT_EQ(champion.get(key), expected.get(key)) << key;
    EXPECT_EQ(champion.getDouble("champion.seconds"),
              reference.bestSeconds);
    EXPECT_EQ(champion.getInt("champion.done"), 1);
}

} // namespace

TEST(ServiceEndToEnd, FullLifecycleOverRealSockets)
{
    TuningServer server(serverOptions(spoolDir("lifecycle")));
    server.start();
    Client client("127.0.0.1", server.port());
    client.ping();

    std::string id = client.create(tinyCreate());
    EXPECT_FALSE(id.empty());
    tuner::SessionIntrospection view = client.introspect(id);
    EXPECT_FALSE(view.done);
    EXPECT_EQ(view.completedSteps, 0);

    EXPECT_EQ(client.step(id, 2), 2);
    EXPECT_EQ(client.introspect(id).completedSteps, 2);

    KvFile champion = client.runToCompletion(id);
    expectChampionMatches(champion, referenceRun());

    client.stopSession(id);
    EXPECT_THROW(client.status(id), FatalError);
    server.stop();
}

TEST(ServiceEndToEnd, DetachedStepCompletesInBackground)
{
    TuningServer server(serverOptions(spoolDir("detached")));
    server.start();
    Client client("127.0.0.1", server.port());

    std::string id = client.create(tinyCreate(7));
    // wait=0: the daemon answers 202 before the stepping lands.
    EXPECT_EQ(client.step(id, 1000, /*wait=*/false), 0);
    for (int i = 0; i < 600 && !client.introspect(id).done; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(client.introspect(id).done);
    expectChampionMatches(client.champion(id), referenceRun(7));
    server.stop();
}

TEST(ServiceEndToEnd, TwoClientsTuneConcurrently)
{
    TuningServer server(serverOptions(spoolDir("concurrent")));
    server.start();

    // Two sessions stepped from two threads through two connections;
    // each must land exactly its own deterministic champion.
    auto tuneOne = [&](uint64_t seed, KvFile &championOut) {
        Client client("127.0.0.1", server.port());
        std::string id = client.create(tinyCreate(seed));
        championOut = client.runToCompletion(id, 2);
    };
    KvFile championA, championB;
    std::thread threadA(tuneOne, 101, std::ref(championA));
    std::thread threadB(tuneOne, 202, std::ref(championB));
    threadA.join();
    threadB.join();
    expectChampionMatches(championA, referenceRun(101));
    expectChampionMatches(championB, referenceRun(202));
    server.stop();
}

TEST(ServiceEndToEnd, ErrorsMapToCleanHttpFailures)
{
    TuningServer server(serverOptions(spoolDir("errors")));
    server.start();
    Client client("127.0.0.1", server.port());

    // Unknown session -> 404 with the server's message.
    try {
        client.status("s999");
        FAIL() << "unknown session did not throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("unknown session"),
                  std::string::npos);
    }

    // Bad create (no benchmark) -> 400.
    EXPECT_THROW(client.create(KvFile()), FatalError);
    KvFile bogus;
    bogus.set("benchmark", "NoSuchBenchmark");
    EXPECT_THROW(client.create(bogus), FatalError);

    // Unknown endpoint -> error, connection stays usable after.
    EXPECT_THROW(client.command("GET", "/no-such-endpoint"), FatalError);
    client.ping();

    // The failures were counted, and the server survived all of them.
    KvFile stats = client.stats();
    EXPECT_GE(stats.getInt("command.status.errors"), 1);
    EXPECT_GE(stats.getInt("command.create.errors"), 2);
    server.stop();
}

TEST(ServiceEndToEnd, StatsEndpointCountsCommands)
{
    TuningServer server(serverOptions(spoolDir("stats")));
    server.start();
    Client client("127.0.0.1", server.port());

    std::string id = client.create(tinyCreate());
    client.step(id, 2);
    client.status(id);
    client.status(id);

    KvFile stats = client.stats();
    EXPECT_EQ(stats.getInt("command.create.count"), 1);
    EXPECT_EQ(stats.getInt("command.step.count"), 1);
    EXPECT_EQ(stats.getInt("command.status.count"), 2);
    EXPECT_GE(stats.getDouble("command.step.meanMicros"), 0.0);
    EXPECT_GE(stats.getInt("server.requests"), 5);
    EXPECT_GE(stats.getInt("server.connectionsAccepted"), 1);
    EXPECT_EQ(stats.getInt("table.resident"), 1);
    server.stop();
}

TEST(ServiceEndToEnd, ResumeAfterServerRestartMatchesReference)
{
    const std::string spool = spoolDir("restart");
    std::string id;
    {
        TuningServer server(serverOptions(spool));
        server.start();
        Client client("127.0.0.1", server.port());
        id = client.create(tinyCreate(55));
        client.step(id, 2);
        server.stop();
    } // per-generation checkpoints leave the search on disk

    TuningServer server(serverOptions(spool));
    server.start();
    Client client("127.0.0.1", server.port());
    EXPECT_THROW(client.status(id), FatalError); // needs resume first
    client.resume(id);
    EXPECT_EQ(client.introspect(id).completedSteps, 2);
    expectChampionMatches(client.runToCompletion(id), referenceRun(55));
    server.stop();
}

TEST(ServiceEndToEnd, ShutdownEndpointFlagsTheHostLoop)
{
    TuningServer server(serverOptions(spoolDir("shutdown")));
    server.start();
    Client client("127.0.0.1", server.port());
    EXPECT_FALSE(server.shutdownRequested());
    client.shutdownServer();
    EXPECT_TRUE(server.shutdownRequested());
    server.stop();
}

TEST(ServiceEndToEnd, HealthzAnswersInlineWithLoadCounters)
{
    TuningServer server(serverOptions(spoolDir("healthz")));
    server.start();
    Client client("127.0.0.1", server.port());

    std::string id = client.create(tinyCreate());
    KvFile health = client.command("GET", "/healthz");
    EXPECT_EQ(health.getInt("health.ok"), 1);
    EXPECT_EQ(health.getInt("health.draining"), 0);
    EXPECT_EQ(health.getInt("health.residentSessions"), 1);
    EXPECT_EQ(health.getInt("health.totalSessions"), 1);
    EXPECT_EQ(health.getInt("health.spoolQuarantined"), 0);
    EXPECT_EQ(health.getInt("health.evaluationFailures"), 0);
    EXPECT_GE(health.getInt("health.maxQueueDepth"), 1);
    EXPECT_GE(health.getInt("health.queueDepth"), 0);
    EXPECT_GE(health.getInt("health.busyWorkers"), 0);

    // The hardened counters also ride the stats endpoint.
    KvFile stats = client.stats();
    EXPECT_EQ(stats.getInt("server.draining"), 0);
    EXPECT_EQ(stats.getInt("server.backpressureRejections"), 0);
    EXPECT_EQ(stats.getInt("server.deadlineRejections"), 0);
    EXPECT_EQ(stats.getInt("table.spoolQuarantined"), 0);
    server.stop();
}

TEST(ServiceEndToEnd, FullQueueShedsLoadAsRetryableBackpressure)
{
    // maxQueueDepth = 0 makes every worker-routed command overflow the
    // queue, deterministically: each must come back 503 + Retry-After,
    // which the client surfaces as TransientError (retryable), never
    // as a hard failure. Inline commands keep answering throughout.
    ServerOptions options = serverOptions(spoolDir("backpressure"));
    options.maxQueueDepth = 0;
    TuningServer server(options);
    server.start();
    Client client("127.0.0.1", server.port());

    client.ping(); // inline: unaffected by the full queue
    EXPECT_THROW(client.create(tinyCreate()), TransientError);
    client.ping(); // the connection survived the 503

    KvFile health = client.command("GET", "/healthz");
    EXPECT_GE(health.getInt("health.backpressureRejections"), 1);
    EXPECT_EQ(health.getInt("health.totalSessions"), 0); // never ran
    server.stop();
}

TEST(ServiceEndToEnd, DrainCheckpointsEverySessionForARestart)
{
    const std::string spool = spoolDir("drain");
    tuner::TuningResult reference = referenceRun(77);
    std::string idA, idB;
    {
        ServerOptions options = serverOptions(spool);
        options.table.checkpointEachStep = false;
        TuningServer server(options);
        server.start();
        Client client("127.0.0.1", server.port());
        idA = client.create(tinyCreate(77));
        idB = client.create(tinyCreate(88));
        client.step(idA, 2);
        // Kick off detached work, then drain: the drain must wait for
        // the in-flight stepping to finish before checkpointing.
        client.step(idA, 1000, /*wait=*/false);
        server.drain();
        EXPECT_TRUE(server.draining());
    }

    // The drained spool resumes every session exactly where the drain
    // flushed it: A ran to completion (the detached step), B never
    // stepped at all — both states survived.
    TuningServer server(serverOptions(spool));
    server.start();
    Client client("127.0.0.1", server.port());
    client.resume(idA);
    client.resume(idB);
    EXPECT_TRUE(client.introspect(idA).done);
    expectChampionMatches(client.champion(idA), reference);
    EXPECT_EQ(client.introspect(idB).completedSteps, 0);
    expectChampionMatches(client.runToCompletion(idB), referenceRun(88));
    server.stop();
}

TEST(ServiceEndToEnd, ClientConnectTimeoutIsTransient)
{
    // Nothing listens on the reserved discard port: the bounded
    // connect must fail fast as TransientError (retryable), not hang
    // and not surface as a config-style fatal.
    EXPECT_THROW(Client("127.0.0.1", 9, /*timeoutMillis=*/250),
                 TransientError);
}
