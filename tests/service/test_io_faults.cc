/**
 * @file
 * IO-error hardening: injected ENOSPC/EIO on every persistence path
 * must degrade to a warning plus a counter — never corrupt previously
 * persisted state, never take the daemon down. Also covers the
 * triple-torn boot (wreckage in spool + cache + portfolio at once),
 * the new /stats surface (io.writeFailures, server.uptimeSeconds,
 * server.restartCount), and the client's Retry-After-driven retry.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "cache/shared_cache.h"
#include "portfolio/portfolio.h"
#include "service/client.h"
#include "service/server.h"
#include "support/crashpoint.h"
#include "support/error.h"

using namespace petabricks;
using namespace petabricks::service;

namespace {

namespace fs = std::filesystem;

class IoFaultTest : public ::testing::Test
{
  protected:
    // Injection schedules are process-global; never leak one into the
    // next test.
    void SetUp() override { crashpoint::clearSchedule(); }
    void TearDown() override { crashpoint::clearSchedule(); }

    std::string
    freshDir(const char *name)
    {
        std::string path =
            std::string(::testing::TempDir()) + "pb_io_faults_" + name;
        fs::remove_all(path);
        fs::create_directories(path);
        return path;
    }

    KvFile
    tinyCreate(uint64_t seed = 42)
    {
        KvFile kv;
        kv.set("benchmark", "Sort");
        kv.setInt("seed", static_cast<int64_t>(seed));
        kv.setInt("populationSize", 4);
        kv.setInt("generationsPerSize", 3);
        kv.setInt("minInputSize", 64);
        kv.setInt("maxInputSize", 256);
        return kv;
    }

    ServerOptions
    serverOptions(const std::string &spool)
    {
        ServerOptions options;
        options.port = 0;
        options.workers = 2;
        options.table.spoolDir = spool;
        return options;
    }
};

/**
 * ENOSPC on every checkpoint write: stepping keeps succeeding (the
 * in-memory search is intact), the failures are counted, and once the
 * disk "recovers" the session still runs to the exact champion an
 * undisturbed run produces.
 */
TEST_F(IoFaultTest, EnospcCheckpointsNeverKillTheDaemon)
{
    TuningServer server(serverOptions(freshDir("enospc_spool")));
    server.start();
    Client client("127.0.0.1", server.port());

    const std::string id = client.create(tinyCreate());
    // One arm per point name, so inject one checkpoint failure per
    // step and re-arm in between (re-arming resets the hit counter).
    crashpoint::setSchedule("spool.ckpt.write=enospc");
    EXPECT_EQ(client.step(id, 1), 1); // checkpoint write failed
    crashpoint::setSchedule("spool.ckpt.write=enospc");
    EXPECT_EQ(client.step(id, 1), 1); // and again
    crashpoint::clearSchedule();

    KvFile stats = client.stats();
    EXPECT_EQ(stats.getInt("table.spoolWriteFailures"), 2);
    EXPECT_GE(stats.getInt("io.writeFailures"), 2);

    // Disk is "back": the run completes and the champion is
    // byte-identical to the uninterrupted reference.
    KvFile champion = client.runToCompletion(id);
    tuner::TuningResult reference =
        runSpecLocally(SessionSpec::fromCreateRequest(tinyCreate()));
    KvFile expected = reference.best.toKv();
    for (const std::string &key : expected.keys())
        EXPECT_EQ(champion.get(key), expected.get(key)) << key;
    EXPECT_EQ(champion.getDouble("champion.seconds"),
              reference.bestSeconds);
    server.stop();
}

/**
 * A failed segment flush re-queues the batch: nothing is lost, the
 * failure is counted, and the next healthy flush persists every
 * record.
 */
TEST_F(IoFaultTest, CacheFlushFailureRequeuesAndRetries)
{
    const std::string dir = freshDir("cache_retry");
    cache::SharedCacheOptions options;
    options.dir = dir;
    options.flushEveryPublishes = 0;

    {
        cache::SharedEvaluationCache sharedCache(options);
        for (int i = 0; i < 3; ++i)
            sharedCache.publish(0xabcull, 64, 0x100u + i, 1.0 + i, 1);

        crashpoint::setSchedule("cache.seg.write=enospc");
        sharedCache.flush(); // must not throw
        EXPECT_EQ(sharedCache.stats().writeFailures, 1);
        EXPECT_EQ(sharedCache.stats().flushes, 0);
        crashpoint::clearSchedule();

        sharedCache.flush();
        EXPECT_EQ(sharedCache.stats().flushes, 1);
    }

    // Every record survived the failed attempt and landed on disk.
    cache::SharedEvaluationCache reborn(options);
    for (int i = 0; i < 3; ++i) {
        auto hit = reborn.lookup(0xabcull, 64, 0x100u + i, 2);
        ASSERT_TRUE(hit.has_value()) << i;
        EXPECT_EQ(*hit, 1.0 + i);
    }
}

/**
 * A champion whose publish write fails stays served from memory; the
 * next healthy put persists normally.
 */
TEST_F(IoFaultTest, PortfolioWriteFailureKeepsServingFromMemory)
{
    const std::string dir = freshDir("portfolio_degrade");
    portfolio::ChampionRecord record;
    record.benchmark = "Sort";
    record.machineName = "Desktop";
    record.machineFingerprint = 0xfeedull;
    record.inputSize = 64;
    record.seconds = 0.25;
    record.config = apps::findBenchmark("Sort")->seedConfig();

    {
        portfolio::ChampionPortfolio portfolio(dir, true);
        crashpoint::setSchedule("portfolio.champ.write=eio");
        portfolio.put(record); // must not throw
        crashpoint::clearSchedule();
        EXPECT_EQ(portfolio.stats().writeFailures, 1);

        // Still served from memory within this daemon lifetime.
        auto hit = portfolio.exact("Sort", 0xfeedull, 64);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->seconds, 0.25);

        portfolio::ChampionRecord second = record;
        second.inputSize = 128;
        portfolio.put(second); // healthy again
    }

    // Only the healthy put survived the restart — degradation, not
    // corruption.
    portfolio::ChampionPortfolio reborn(dir, true);
    EXPECT_EQ(reborn.stats().quarantined, 0);
    EXPECT_FALSE(reborn.exact("Sort", 0xfeedull, 64).has_value());
    EXPECT_TRUE(reborn.exact("Sort", 0xfeedull, 128).has_value());
}

/**
 * Satellite: a daemon booted over torn files in ALL THREE stores at
 * once quarantines all three and serves requests normally.
 */
TEST_F(IoFaultTest, TripleTornBootQuarantinesEveryStoreAndServes)
{
    const std::string spool = freshDir("triple_spool");
    const std::string cacheDir = freshDir("triple_cache");
    const std::string champDir = freshDir("triple_champ");
    auto plant = [](const std::string &path) {
        std::ofstream out(path);
        out << "torn mid-write, not a valid kv file";
    };
    plant(spool + "/s90.meta");
    plant(cacheDir + "/seg-00000000.kv");
    plant(champDir + "/champ-sort-0000000000000000-64.kv");

    ServerOptions options = serverOptions(spool);
    options.cache.dir = cacheDir;
    options.portfolioDir = champDir;
    TuningServer server(options); // boot fsck must not throw
    server.start();
    Client client("127.0.0.1", server.port());
    client.ping();

    KvFile stats = client.stats();
    EXPECT_EQ(stats.getInt("table.spoolQuarantined"), 1);
    EXPECT_EQ(stats.getInt("cache.segmentsQuarantined"), 1);
    EXPECT_EQ(stats.getInt("portfolio.quarantined"), 1);
    EXPECT_TRUE(fs::exists(spool + "/s90.meta.quarantine"));
    EXPECT_TRUE(fs::exists(cacheDir + "/seg-00000000.kv.quarantine"));
    EXPECT_TRUE(fs::exists(
        champDir + "/champ-sort-0000000000000000-64.kv.quarantine"));

    // Not merely alive: the daemon does real work over the wreckage.
    const std::string id = client.create(tinyCreate());
    EXPECT_EQ(client.step(id, 2), 2);
    server.stop();
}

TEST_F(IoFaultTest, StatsExposeUptimeAndRestartCount)
{
    ServerOptions options = serverOptions(freshDir("stats_spool"));
    options.restartCount = 3;
    TuningServer server(options);
    server.start();
    Client client("127.0.0.1", server.port());

    KvFile stats = client.stats();
    EXPECT_TRUE(stats.has("server.uptimeSeconds"));
    EXPECT_GE(stats.getInt("server.uptimeSeconds"), 0);
    EXPECT_EQ(stats.getInt("server.restartCount"), 3);
    EXPECT_EQ(stats.getInt("io.writeFailures"), 0);
    server.stop();
}

/**
 * The client honors the daemon's Retry-After hint on 503 — but capped
 * by policy, so a hint cannot wedge a client: two retries against a
 * permanently full queue with a 1-second hint and a 50 ms cap must
 * finish well under the 2 s the uncapped hint would cost.
 */
TEST_F(IoFaultTest, RetryAfterHintIsHonoredWithCap)
{
    ServerOptions options = serverOptions(freshDir("retry_spool"));
    options.maxQueueDepth = 0; // every worker-routed command → 503
    TuningServer server(options);
    server.start();
    Client client("127.0.0.1", server.port());

    ClientRetryPolicy policy;
    policy.attempts = 2;
    policy.maxSleepMillis = 50;
    policy.jitterCapMillis = 10;
    client.setRetryPolicy(policy);

    auto begin = std::chrono::steady_clock::now();
    EXPECT_THROW(client.create(tinyCreate()), TransientError);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - begin)
                       .count();

    // The hint was seen (the daemon's backpressure 503 carries
    // "Retry-After: 1")...
    EXPECT_EQ(client.lastRetryAfterSeconds(), 1);
    // ...the client really slept between attempts...
    EXPECT_GE(elapsed, 50);
    // ...but the cap kept the two retries far under 2 * 1 s.
    EXPECT_LT(elapsed, 1000);

    client.ping(); // connection healthy after the retries
    server.stop();
}

} // namespace
