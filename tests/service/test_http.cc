/**
 * @file
 * Units for the service's HTTP framing: incremental request parsing,
 * query decoding, body handling, limits, and response serialization.
 */

#include <gtest/gtest.h>

#include "service/http.h"
#include "support/error.h"

using namespace petabricks;
using namespace petabricks::service;

TEST(HttpParser, ParsesSimpleGet)
{
    HttpParser parser;
    const std::string wire =
        "GET /status?session=s1 HTTP/1.1\r\nHost: x\r\n\r\n";
    parser.feed(wire.data(), wire.size());
    auto request = parser.next();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->method, "GET");
    EXPECT_EQ(request->path, "/status");
    EXPECT_EQ(request->param("session"), "s1");
    EXPECT_EQ(request->headers.at("host"), "x");
    EXPECT_TRUE(request->body.empty());
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_FALSE(parser.failed());
}

TEST(HttpParser, IncrementalFeedAcrossBoundaries)
{
    HttpParser parser;
    const std::string wire = "POST /create HTTP/1.1\r\n"
                             "Content-Length: 16\r\n\r\n"
                             "benchmark = Sort";
    // One byte at a time: no prefix may yield a request early.
    for (size_t i = 0; i < wire.size(); ++i) {
        parser.feed(wire.data() + i, 1);
        if (i + 1 < wire.size()) {
            ASSERT_FALSE(parser.next().has_value()) << "at byte " << i;
        }
    }
    auto request = parser.next();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->method, "POST");
    EXPECT_EQ(request->body, "benchmark = Sort");
}

TEST(HttpParser, PipelinedRequestsPopInOrder)
{
    HttpParser parser;
    const std::string wire = "GET /a HTTP/1.1\r\n\r\n"
                             "GET /b HTTP/1.1\r\n\r\n";
    parser.feed(wire.data(), wire.size());
    auto first = parser.next();
    auto second = parser.next();
    ASSERT_TRUE(first && second);
    EXPECT_EQ(first->path, "/a");
    EXPECT_EQ(second->path, "/b");
    EXPECT_FALSE(parser.next().has_value());
}

TEST(HttpParser, QueryDecoding)
{
    HttpParser parser;
    const std::string wire =
        "GET /x?a=1&b=hello%20world&c=x%2By&flag HTTP/1.1\r\n\r\n";
    parser.feed(wire.data(), wire.size());
    auto request = parser.next();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->param("a"), "1");
    EXPECT_EQ(request->intParam("a", -1), 1);
    EXPECT_EQ(request->param("b"), "hello world");
    EXPECT_EQ(request->param("c"), "x+y");
    EXPECT_TRUE(request->query.count("flag"));
    EXPECT_EQ(request->param("missing", "dflt"), "dflt");
    EXPECT_EQ(request->intParam("missing", 7), 7);
    EXPECT_THROW(request->intParam("b", 0), FatalError);
}

TEST(HttpParser, MalformedRequestLineFails)
{
    HttpParser parser;
    const std::string wire = "BOGUS\r\n\r\n";
    parser.feed(wire.data(), wire.size());
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, BadContentLengthFails)
{
    HttpParser parser;
    const std::string wire =
        "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
    parser.feed(wire.data(), wire.size());
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, OversizedBodyFails)
{
    HttpParser parser(128);
    const std::string wire =
        "POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
    parser.feed(wire.data(), wire.size());
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, OversizedHeadersFailEvenWhenComplete)
{
    // The whole oversized request arrives in one burst, terminator
    // included: the per-request header cap must still apply.
    HttpParser parser(64);
    const std::string wire = "GET /x HTTP/1.1\r\nX-Pad: " +
                             std::string(200, 'a') + "\r\n\r\n";
    parser.feed(wire.data(), wire.size());
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, PipelinedBurstLargerThanCapIsLegal)
{
    // Several requests, each within the per-request limit, arriving in
    // one read burst that together far exceeds it: all must parse —
    // the limit is per request, not per buffered burst.
    HttpParser parser(256);
    const std::string body(200, 'b');
    std::string wire;
    for (int i = 0; i < 8; ++i)
        wire += "POST /create HTTP/1.1\r\nContent-Length: " +
                std::to_string(body.size()) + "\r\n\r\n" + body;
    ASSERT_GT(wire.size(), 256u * 2);
    parser.feed(wire.data(), wire.size());
    for (int i = 0; i < 8; ++i) {
        auto request = parser.next();
        ASSERT_TRUE(request.has_value()) << "request " << i;
        EXPECT_EQ(request->body, body);
    }
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_FALSE(parser.failed());
}

TEST(HttpResponse, SerializeRoundTripsThroughAClientParse)
{
    HttpResponse response = HttpResponse::ok("x = 1\n");
    std::string wire = response.serialize();
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\nx = 1\n"), std::string::npos);

    HttpResponse error = HttpResponse::error(404, "unknown session 's9'");
    std::string errorWire = error.serialize();
    EXPECT_NE(errorWire.find("HTTP/1.1 404 Not Found\r\n"),
              std::string::npos);
    EXPECT_NE(errorWire.find("error = unknown session 's9'\n"),
              std::string::npos);
}

TEST(Http, ParseQueryHandlesEdgeCases)
{
    auto params = parseQuery("");
    EXPECT_TRUE(params.empty());
    params = parseQuery("a=&b=2&&c");
    EXPECT_EQ(params.at("a"), "");
    EXPECT_EQ(params.at("b"), "2");
    EXPECT_EQ(params.at("c"), "");
    EXPECT_EQ(urlDecode("%41%7a+%25"), "Az %");
    EXPECT_EQ(urlDecode("%GG"), "%GG"); // bad escape passes through
}
