/**
 * @file
 * The service acceptance soak: 64 sessions hosted under a resident cap
 * of 8, stepped round-robin from several threads so every session is
 * evicted and rehydrated many times mid-search. All 64 must complete,
 * every champion must be bit-identical to the same search run
 * in-process, and the resident count must never exceed the cap.
 */

#include <atomic>
#include <filesystem>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "service/session_table.h"

using namespace petabricks;
using namespace petabricks::service;

namespace {

constexpr int kSessions = 64;
constexpr size_t kCap = 8;
constexpr int kThreads = 4;

SessionSpec
soakSpec(int i)
{
    KvFile kv;
    kv.set("benchmark", "Sort");
    kv.setInt("seed", 1000 + i); // distinct searches, not 64 clones
    kv.setInt("populationSize", 4);
    kv.setInt("generationsPerSize", 3);
    kv.setInt("minInputSize", 64);
    kv.setInt("maxInputSize", 256);
    return SessionSpec::fromCreateRequest(kv);
}

} // namespace

TEST(ServiceSoak, SixtyFourSessionsUnderCapEightFinishIdentically)
{
    std::string spool = std::string(::testing::TempDir()) + "pb_soak";
    std::filesystem::remove_all(spool);

    SessionTableOptions options;
    options.spoolDir = spool;
    options.residentCap = kCap;
    SessionTable table(options);

    std::vector<SessionSpec> specs;
    std::vector<std::string> ids;
    for (int i = 0; i < kSessions; ++i) {
        specs.push_back(soakSpec(i));
        ids.push_back(table.create(specs.back()));
    }
    const int stepsPerSession = table.status(ids[0]).totalSteps;
    ASSERT_GT(stepsPerSession, 0);

    // Round-robin one generation at a time across all 64 sessions from
    // kThreads workers: every session cycles resident -> evicted ->
    // rehydrated repeatedly, and concurrent touches of the same session
    // exercise the per-entry busy serialization.
    const int totalSteps = kSessions * stepsPerSession;
    std::atomic<int> cursor{0};
    std::atomic<int> advanced{0};
    auto worker = [&] {
        for (;;) {
            int j = cursor.fetch_add(1);
            if (j >= totalSteps)
                return;
            advanced += table.step(ids[j % kSessions], 1);
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();

    // Exactly the full search ran: round-robin hands each session its
    // own step budget, so nothing is skipped or double-stepped.
    EXPECT_EQ(advanced.load(), totalSteps);

    SessionTableStats stats = table.stats();
    EXPECT_LE(stats.peakResident, kCap);
    EXPECT_EQ(stats.total, static_cast<size_t>(kSessions));
    // With 64 sessions squeezed through 8 slots the churn must be real.
    EXPECT_GT(stats.evictions, kSessions);

    for (int i = 0; i < kSessions; ++i) {
        ASSERT_TRUE(table.status(ids[i]).done) << ids[i];
        tuner::TuningResult reference = runSpecLocally(specs[i]);
        KvFile champion = table.champion(ids[i]);
        KvFile expected = reference.best.toKv();
        for (const std::string &key : expected.keys())
            ASSERT_EQ(champion.get(key), expected.get(key))
                << ids[i] << " " << key;
        ASSERT_EQ(champion.getDouble("champion.seconds"),
                  reference.bestSeconds)
            << ids[i];
    }
}
