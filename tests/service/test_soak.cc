/**
 * @file
 * The service acceptance soak: 64 sessions hosted under a resident cap
 * of 8, stepped round-robin from several threads so every session is
 * evicted and rehydrated many times mid-search. All 64 must complete,
 * every champion must be bit-identical to the same search run
 * in-process, and the resident count must never exceed the cap.
 */

#include <atomic>
#include <filesystem>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "cache/shared_cache.h"
#include "service/session_table.h"

using namespace petabricks;
using namespace petabricks::service;

namespace {

constexpr int kSessions = 64;
constexpr size_t kCap = 8;
constexpr int kThreads = 4;

SessionSpec
soakSpec(int i, double faultRate = 0.0)
{
    KvFile kv;
    kv.set("benchmark", "Sort");
    kv.setInt("seed", 1000 + i); // distinct searches, not 64 clones
    kv.setInt("populationSize", 4);
    kv.setInt("generationsPerSize", 3);
    kv.setInt("minInputSize", 64);
    kv.setInt("maxInputSize", 256);
    if (faultRate > 0.0) {
        kv.setDouble("faultRate", faultRate);
        kv.setInt("faultSeed", 7000 + i);
    }
    return SessionSpec::fromCreateRequest(kv);
}

/** Drive @p table's sessions round-robin from kThreads workers so
 * every session is evicted and rehydrated many times mid-search. */
int
stepRoundRobin(SessionTable &table, const std::vector<std::string> &ids,
               int totalSteps)
{
    std::atomic<int> cursor{0};
    std::atomic<int> advanced{0};
    auto worker = [&] {
        for (;;) {
            int j = cursor.fetch_add(1);
            if (j >= totalSteps)
                return;
            advanced += table.step(ids[j % ids.size()], 1);
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();
    return advanced.load();
}

} // namespace

TEST(ServiceSoak, SixtyFourSessionsUnderCapEightFinishIdentically)
{
    std::string spool = std::string(::testing::TempDir()) + "pb_soak";
    std::filesystem::remove_all(spool);

    SessionTableOptions options;
    options.spoolDir = spool;
    options.residentCap = kCap;
    SessionTable table(options);

    std::vector<SessionSpec> specs;
    std::vector<std::string> ids;
    for (int i = 0; i < kSessions; ++i) {
        specs.push_back(soakSpec(i));
        ids.push_back(table.create(specs.back()));
    }
    const int stepsPerSession = table.status(ids[0]).totalSteps;
    ASSERT_GT(stepsPerSession, 0);

    // Round-robin one generation at a time across all 64 sessions from
    // kThreads workers: every session cycles resident -> evicted ->
    // rehydrated repeatedly, and concurrent touches of the same session
    // exercise the per-entry busy serialization.
    const int totalSteps = kSessions * stepsPerSession;
    int advanced = stepRoundRobin(table, ids, totalSteps);

    // Exactly the full search ran: round-robin hands each session its
    // own step budget, so nothing is skipped or double-stepped.
    EXPECT_EQ(advanced, totalSteps);

    SessionTableStats stats = table.stats();
    EXPECT_LE(stats.peakResident, kCap);
    EXPECT_EQ(stats.total, static_cast<size_t>(kSessions));
    // With 64 sessions squeezed through 8 slots the churn must be real.
    EXPECT_GT(stats.evictions, kSessions);

    for (int i = 0; i < kSessions; ++i) {
        ASSERT_TRUE(table.status(ids[i]).done) << ids[i];
        tuner::TuningResult reference = runSpecLocally(specs[i]);
        KvFile champion = table.champion(ids[i]);
        KvFile expected = reference.best.toKv();
        for (const std::string &key : expected.keys())
            ASSERT_EQ(champion.get(key), expected.get(key))
                << ids[i] << " " << key;
        ASSERT_EQ(champion.getDouble("champion.seconds"),
                  reference.bestSeconds)
            << ids[i];
    }
}

TEST(ServiceSoak, FaultInjectedSessionsReachTheCleanChampions)
{
    // The same 64-sessions-under-cap-8 churn, with every session's
    // engine injecting deterministic transient faults on ~10% of its
    // evaluation keys. Each fault recovers within the retry budget
    // (FaultPlan::faultsPerKey = 1 on the hosted path), so every
    // champion must be byte-identical to the *clean* in-process run of
    // the same search — and no injected fault may ever surface as an
    // evaluation failure or a cached cost.
    std::string spool = std::string(::testing::TempDir()) + "pb_soak_fault";
    std::filesystem::remove_all(spool);

    SessionTableOptions options;
    options.spoolDir = spool;
    options.residentCap = kCap;
    SessionTable table(options);

    std::vector<std::string> ids;
    for (int i = 0; i < kSessions; ++i)
        ids.push_back(table.create(soakSpec(i, 0.1)));
    const int stepsPerSession = table.status(ids[0]).totalSteps;
    ASSERT_GT(stepsPerSession, 0);

    // The fault knobs round-tripped into the hosted spec (and thus the
    // spool: an evicted faulty session rehydrates as a faulty session).
    ASSERT_DOUBLE_EQ(table.spec(ids[0]).faultRate, 0.1);
    ASSERT_EQ(table.spec(ids[5]).faultSeed, 7005);

    const int totalSteps = kSessions * stepsPerSession;
    EXPECT_EQ(stepRoundRobin(table, ids, totalSteps), totalSteps);

    SessionTableStats stats = table.stats();
    EXPECT_LE(stats.peakResident, kCap);
    EXPECT_GT(stats.evictions, kSessions);
    // Every injected fault recovered inside the retry budget: none may
    // be reported as an exhausted-retries failure.
    EXPECT_EQ(stats.evaluationFailures, 0);

    for (int i = 0; i < kSessions; ++i) {
        ASSERT_TRUE(table.status(ids[i]).done) << ids[i];
        // The reference search is CLEAN — no fault injection — so this
        // comparison proves the faults were absorbed invisibly.
        tuner::TuningResult reference = runSpecLocally(soakSpec(i));
        KvFile champion = table.champion(ids[i]);
        KvFile expected = reference.best.toKv();
        for (const std::string &key : expected.keys())
            ASSERT_EQ(champion.get(key), expected.get(key))
                << ids[i] << " " << key;
        ASSERT_EQ(champion.getDouble("champion.seconds"),
                  reference.bestSeconds)
            << ids[i];
        ASSERT_EQ(table.status(ids[i]).evaluationFailures, 0) << ids[i];
    }
}

TEST(ServiceSoak, SharedCacheSoakSharesWorkAndKeepsChampions)
{
    // The same 64-sessions-under-cap-8 churn with a process-wide L2
    // attached to the table. All sessions tune the same benchmark on
    // the same machine (same cache scope), so they hammer overlapping
    // keys from kThreads workers while eviction and rehydration cycle
    // the owners. The acceptance bar: real cross-session sharing
    // happened, and every champion is still byte-identical to the
    // private-cache in-process run — the L2 changes accounting, never
    // the search.
    std::string spool = std::string(::testing::TempDir()) + "pb_soak_shared";
    std::filesystem::remove_all(spool);

    cache::SharedCacheOptions cacheOptions;
    cacheOptions.maxBytes = 8u << 20;
    cache::SharedEvaluationCache shared(cacheOptions);

    SessionTableOptions options;
    options.spoolDir = spool;
    options.residentCap = kCap;
    options.sharedCache = &shared;
    SessionTable table(options);

    std::vector<SessionSpec> specs;
    std::vector<std::string> ids;
    for (int i = 0; i < kSessions; ++i) {
        specs.push_back(soakSpec(i));
        ids.push_back(table.create(specs.back()));
    }
    const int stepsPerSession = table.status(ids[0]).totalSteps;
    ASSERT_GT(stepsPerSession, 0);

    const int totalSteps = kSessions * stepsPerSession;
    EXPECT_EQ(stepRoundRobin(table, ids, totalSteps), totalSteps);

    SessionTableStats stats = table.stats();
    EXPECT_LE(stats.peakResident, kCap);
    EXPECT_GT(stats.evictions, kSessions);

    // The proof of sharing: sessions were served results that other
    // sessions published, and nothing non-finite ever got in.
    cache::SharedCacheStats cacheStats = shared.stats();
    EXPECT_GT(cacheStats.crossSessionHits, 0);
    EXPECT_GT(cacheStats.insertions, 0);
    EXPECT_EQ(cacheStats.rejectedNonFinite, 0);
    EXPECT_GT(cacheStats.hits + cacheStats.misses, 0);

    for (int i = 0; i < kSessions; ++i) {
        ASSERT_TRUE(table.status(ids[i]).done) << ids[i];
        tuner::TuningResult reference = runSpecLocally(specs[i]);
        KvFile champion = table.champion(ids[i]);
        KvFile expected = reference.best.toKv();
        for (const std::string &key : expected.keys())
            ASSERT_EQ(champion.get(key), expected.get(key))
                << ids[i] << " " << key;
        ASSERT_EQ(champion.getDouble("champion.seconds"),
                  reference.bestSeconds)
            << ids[i];
    }
}
