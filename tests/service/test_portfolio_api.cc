/**
 * @file
 * The portfolio surface of the service API, over real sockets:
 * /machines inventory, tune-then-dispatch end to end, byte-identical
 * champions across a daemon restart on the same portfolio directory,
 * and error mapping for unknown names.
 */

#include <cstdio>
#include <filesystem>
#include <gtest/gtest.h>

#include "service/client.h"
#include "service/server.h"
#include "sim/machine.h"
#include "support/error.h"

using namespace petabricks;
using namespace petabricks::service;

namespace {

namespace fs = std::filesystem;

std::string
freshDir(const char *name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_portfolio_api_" + name;
    fs::remove_all(path);
    return path;
}

ServerOptions
portfolioServerOptions(const char *name)
{
    ServerOptions options;
    options.port = 0;
    options.workers = 2;
    options.table.spoolDir = freshDir(name) + "/spool";
    options.portfolioDir = freshDir(name) + "/portfolio";
    return options;
}

KvFile
tinyTuneBody()
{
    KvFile kv;
    kv.set("benchmark", "Black-Scholes");
    kv.set("machine", "Desktop");
    kv.setIntList("sizes", {1024, 4096});
    kv.setInt("population", 4);
    kv.setInt("generations", 2);
    return kv;
}

} // namespace

TEST(PortfolioApi, MachinesEndpointListsEveryProfileWithFingerprint)
{
    TuningServer server(portfolioServerOptions("machines"));
    server.start();
    Client client("127.0.0.1", server.port());

    KvFile kv = client.machines();
    std::vector<sim::MachineProfile> machines =
        sim::MachineProfile::all();
    ASSERT_EQ(kv.getInt("machines"),
              static_cast<int64_t>(machines.size()));
    ASSERT_GE(machines.size(), 5u);
    for (size_t i = 0; i < machines.size(); ++i) {
        const std::string prefix = "machine." + std::to_string(i) + ".";
        EXPECT_EQ(kv.get(prefix + "name"), machines[i].name);
        char expected[17];
        std::snprintf(expected, sizeof(expected), "%016llx",
                      static_cast<unsigned long long>(
                          machines[i].fingerprint()));
        EXPECT_EQ(kv.get(prefix + "fingerprint"), expected);
    }
    server.stop();
}

TEST(PortfolioApi, TuneThenDispatchEndToEnd)
{
    TuningServer server(portfolioServerOptions("tune"));
    server.start();
    Client client("127.0.0.1", server.port());

    KvFile tuned = client.portfolioTune(tinyTuneBody());
    EXPECT_EQ(tuned.getInt("tune.rungs"), 2);
    EXPECT_EQ(tuned.get("tune.machine"), "Desktop");

    // Exact hit at a tuned rung serves the stored champion verbatim.
    KvFile served =
        client.portfolioChampion("Black-Scholes", "Desktop", 4096);
    EXPECT_EQ(served.get("dispatch.policy"), "exact");
    EXPECT_EQ(served.getInt("champion.inputSize"), 4096);
    EXPECT_EQ(served.get("champion.configFingerprint"),
              tuned.get("rung.1.configFingerprint"));
    EXPECT_EQ(served.get("champion.secondsBits"),
              tuned.get("rung.1.secondsBits"));

    // Between rungs the dispatcher prices candidates instead.
    KvFile between =
        client.portfolioChampion("Black-Scholes", "Desktop", 2000);
    EXPECT_EQ(between.get("dispatch.policy"), "priced");

    // The listing and the stats both see the stored champions.
    KvFile listing = client.portfolio();
    EXPECT_EQ(listing.getInt("portfolio.entries"), 2);
    EXPECT_EQ(listing.getInt("portfolio.stored"), 2);
    KvFile stats = client.stats();
    EXPECT_EQ(stats.getInt("portfolio.entries"), 2);
    EXPECT_EQ(stats.getInt("portfolio.persistent"), 1);
    server.stop();
}

TEST(PortfolioApi, ChampionIsByteIdenticalAcrossRestart)
{
    ServerOptions options = portfolioServerOptions("restart");
    std::string before;
    {
        TuningServer server(options);
        server.start();
        Client client("127.0.0.1", server.port());
        client.portfolioTune(tinyTuneBody());
        before = client
                     .portfolioChampion("Black-Scholes", "Desktop", 4096)
                     .toString();
        server.stop();
    }
    // A fresh daemon on the same portfolio directory serves the
    // champion loaded from disk — byte-identical, config and cost bits
    // included.
    TuningServer restarted(options);
    restarted.start();
    Client client("127.0.0.1", restarted.port());
    std::string after =
        client.portfolioChampion("Black-Scholes", "Desktop", 4096)
            .toString();
    EXPECT_EQ(before, after);
    KvFile stats = client.stats();
    EXPECT_EQ(stats.getInt("portfolio.loaded"), 2);
    EXPECT_EQ(stats.getInt("portfolio.quarantined"), 0);
    restarted.stop();
}

TEST(PortfolioApi, UnknownNamesMapToClientErrors)
{
    TuningServer server(portfolioServerOptions("errors"));
    server.start();
    Client client("127.0.0.1", server.port());

    // Unknown machine profile: byName's FatalError (listing the known
    // profiles) surfaces as a 400 with the message intact.
    try {
        client.portfolioChampion("Black-Scholes", "Phone", 1024);
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("Phone"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("BigLittle"),
                  std::string::npos);
    }
    EXPECT_THROW(client.portfolioChampion("NoSuchBenchmark", "Desktop",
                                          1024),
                 FatalError);
    // Tuning requires both names in the body.
    KvFile body;
    body.set("benchmark", "Black-Scholes");
    EXPECT_THROW(client.portfolioTune(body), FatalError);
    server.stop();
}
