/**
 * @file
 * Input-adaptive dispatch: exact hits, determinism of the served
 * config identity across Dispatcher instances and portfolio reloads,
 * the neighbor bound for sizes between rungs, foreign fallback, and
 * cross-machine pricing.
 */

#include <filesystem>
#include <gtest/gtest.h>
#include <limits>

#include "benchmarks/registry.h"
#include "portfolio/dispatcher.h"
#include "portfolio/portfolio.h"
#include "sim/machine.h"
#include "support/error.h"
#include "tuner/portfolio_tuner.h"

using namespace petabricks;
using namespace petabricks::portfolio;

namespace {

namespace fs = std::filesystem;

std::string
freshDir(const char *name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_dispatch_" + name;
    fs::remove_all(path);
    return path;
}

/** Tune a small real ladder for Black-Scholes on @p machine. */
void
tuneLadder(ChampionPortfolio &portfolio,
           const sim::MachineProfile &machine)
{
    tuner::PortfolioTuner tuner(portfolio);
    tuner::PortfolioTunerOptions options;
    options.sizes = {4096, 16384, 65536};
    options.tuner.populationSize = 4;
    options.tuner.generationsPerSize = 2;
    tuner.tune(*apps::findBenchmark("Black-Scholes"), machine, options);
}

} // namespace

TEST(Dispatcher, ExactHitServesTheStoredChampion)
{
    ChampionPortfolio portfolio;
    tuneLadder(portfolio, sim::MachineProfile::desktop());
    Dispatcher dispatcher(portfolio);
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");

    DispatchDecision decision = dispatcher.dispatch(
        *benchmark, 16384, sim::MachineProfile::desktop());
    EXPECT_EQ(decision.policy, "exact");
    EXPECT_EQ(decision.champion.inputSize, 16384);
    auto stored = portfolio.exact(
        "Black-Scholes", sim::MachineProfile::desktop().fingerprint(),
        16384);
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(decision.champion.configFingerprint,
              stored->configFingerprint);
    EXPECT_EQ(decision.pricedSeconds, stored->seconds);
}

TEST(Dispatcher, DeterministicAcrossInstancesAndReload)
{
    std::string dir = freshDir("determinism");
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");
    const sim::MachineProfile machine = sim::MachineProfile::desktop();

    uint64_t firstFingerprint = 0;
    double firstSeconds = 0.0;
    {
        ChampionPortfolio portfolio(dir);
        tuneLadder(portfolio, machine);
        Dispatcher dispatcher(portfolio);
        // 30000 sits between the 16384 and 65536 rungs: the priced
        // path, not an exact hit.
        DispatchDecision a =
            dispatcher.dispatch(*benchmark, 30000, machine);
        DispatchDecision b =
            dispatcher.dispatch(*benchmark, 30000, machine);
        EXPECT_EQ(a.champion.configFingerprint,
                  b.champion.configFingerprint);
        EXPECT_EQ(a.pricedSeconds, b.pricedSeconds);
        EXPECT_EQ(a.policy, "priced");
        firstFingerprint = a.champion.configFingerprint;
        firstSeconds = a.pricedSeconds;
    }
    // A fresh portfolio instance loaded from disk (the restart case)
    // serves the identical config identity and the identical price.
    ChampionPortfolio reloaded(dir);
    Dispatcher dispatcher(reloaded);
    DispatchDecision after =
        dispatcher.dispatch(*benchmark, 30000, machine);
    EXPECT_EQ(after.champion.configFingerprint, firstFingerprint);
    EXPECT_EQ(after.pricedSeconds, firstSeconds);
}

TEST(Dispatcher, UnseenSizeNeverWorseThanEitherNeighbor)
{
    ChampionPortfolio portfolio;
    const sim::MachineProfile machine = sim::MachineProfile::desktop();
    tuneLadder(portfolio, machine);
    Dispatcher dispatcher(portfolio);
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");

    const int64_t n = 30000; // strictly between two rungs
    DispatchDecision decision =
        dispatcher.dispatch(*benchmark, n, machine);

    // Price both ladder neighbors' champions at n; the dispatched
    // config must be at least as good as the worse of the two (it
    // prices both, so in fact it is at least as good as the better).
    apps::EvalContextPtr ctx = benchmark->makeEvalContext(n, machine);
    for (int64_t rung : {16384, 65536}) {
        auto neighbor = portfolio.exact("Black-Scholes",
                                        machine.fingerprint(), rung);
        ASSERT_TRUE(neighbor.has_value());
        double neighborSeconds = benchmark->evaluate(
            neighbor->config, n, machine, ctx.get());
        EXPECT_LE(decision.pricedSeconds, neighborSeconds)
            << "dispatch lost to the rung-" << rung << " champion";
    }
}

TEST(Dispatcher, ForeignFallbackWhenMachineHasNoChampions)
{
    ChampionPortfolio portfolio;
    tuneLadder(portfolio, sim::MachineProfile::desktop());
    Dispatcher dispatcher(portfolio);
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");

    // The laptop has no champions: dispatch borrows desktop's, priced
    // on the laptop, and labels the decision foreign.
    DispatchDecision decision = dispatcher.dispatch(
        *benchmark, 16384, sim::MachineProfile::laptop());
    EXPECT_EQ(decision.policy, "foreign");
    EXPECT_EQ(decision.champion.machineName, "Desktop");
    EXPECT_TRUE(std::isfinite(decision.pricedSeconds));
}

TEST(Dispatcher, CrossMachinePricesEveryCandidate)
{
    ChampionPortfolio portfolio;
    const sim::MachineProfile desktop = sim::MachineProfile::desktop();
    tuneLadder(portfolio, desktop);
    tuneLadder(portfolio, sim::MachineProfile::laptop());
    Dispatcher dispatcher(portfolio);
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");

    DispatchOptions options;
    options.crossMachine = true;
    options.topK = 1000;
    DispatchDecision decision =
        dispatcher.dispatch(*benchmark, 16384, desktop, options);
    // Must beat (or match) every stored champion priced on desktop.
    apps::EvalContextPtr ctx =
        benchmark->makeEvalContext(16384, desktop);
    for (const ChampionRecord &candidate :
         portfolio.allFor("Black-Scholes")) {
        double seconds;
        try {
            seconds = benchmark->evaluate(candidate.config, 16384,
                                          desktop, ctx.get());
        } catch (const FatalError &) {
            continue;
        }
        EXPECT_LE(decision.pricedSeconds, seconds);
    }
}

TEST(Dispatcher, UnknownBenchmarkIsFatal)
{
    ChampionPortfolio portfolio; // empty
    Dispatcher dispatcher(portfolio);
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");
    EXPECT_THROW(dispatcher.dispatch(*benchmark, 1024,
                                     sim::MachineProfile::desktop()),
                 FatalError);
}
