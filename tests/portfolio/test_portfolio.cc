/**
 * @file
 * ChampionPortfolio persistence: bit-exact cost round-trips, replace
 * semantics, reload across instances, and the crash-safety contract —
 * torn or edited champion files are quarantined (or skipped) at load,
 * never fatal.
 */

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

#include "benchmarks/registry.h"
#include "portfolio/portfolio.h"
#include "sim/machine.h"

using namespace petabricks;
using namespace petabricks::portfolio;

namespace {

namespace fs = std::filesystem;

std::string
freshDir(const char *name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_portfolio_" + name;
    fs::remove_all(path);
    return path;
}

ChampionRecord
makeRecord(int64_t n, double seconds, int64_t splitValue = 16)
{
    ChampionRecord record;
    record.benchmark = "Black-Scholes";
    record.machineName = "Desktop";
    record.machineFingerprint =
        sim::MachineProfile::desktop().fingerprint();
    record.inputSize = n;
    record.seconds = seconds;
    record.config =
        apps::findBenchmark("Black-Scholes")->seedConfig();
    record.config.tunable("BlackScholes.split").value = splitValue;
    return record;
}

std::vector<std::string>
championFiles(const std::string &dir)
{
    std::vector<std::string> out;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".kv")
            out.push_back(entry.path().string());
    return out;
}

} // namespace

TEST(Portfolio, MemoryOnlyStoreAndLookup)
{
    ChampionPortfolio portfolio; // no directory
    portfolio.put(makeRecord(256, 0.5));
    portfolio.put(makeRecord(1024, 0.9));

    auto hit = portfolio.exact(
        "Black-Scholes", sim::MachineProfile::desktop().fingerprint(),
        256);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->seconds, 0.5);
    EXPECT_EQ(hit->configFingerprint, hit->config.valueFingerprint());
    EXPECT_FALSE(portfolio
                     .exact("Black-Scholes",
                            sim::MachineProfile::desktop().fingerprint(),
                            512)
                     .has_value());
    EXPECT_EQ(portfolio.size(), 2u);
    EXPECT_EQ(portfolio.stats().stored, 2);
    EXPECT_EQ(portfolio.stats().loaded, 0);
}

TEST(Portfolio, PutReplacesTheSameKey)
{
    ChampionPortfolio portfolio;
    portfolio.put(makeRecord(256, 0.5, 16));
    portfolio.put(makeRecord(256, 0.25, 64));
    EXPECT_EQ(portfolio.size(), 1u);
    auto hit = portfolio.exact(
        "Black-Scholes", sim::MachineProfile::desktop().fingerprint(),
        256);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->seconds, 0.25);
    EXPECT_EQ(hit->config.tunableValue("BlackScholes.split"), 64);
}

TEST(Portfolio, ChampionsForAscendingBySize)
{
    ChampionPortfolio portfolio;
    portfolio.put(makeRecord(4096, 1.5));
    portfolio.put(makeRecord(64, 0.1));
    portfolio.put(makeRecord(1024, 0.8));
    std::vector<ChampionRecord> champs = portfolio.championsFor(
        "Black-Scholes", sim::MachineProfile::desktop().fingerprint());
    ASSERT_EQ(champs.size(), 3u);
    EXPECT_EQ(champs[0].inputSize, 64);
    EXPECT_EQ(champs[1].inputSize, 1024);
    EXPECT_EQ(champs[2].inputSize, 4096);
}

TEST(Portfolio, SecondsRoundTripBitExactly)
{
    // Values a decimal round-trip would mangle: non-terminating
    // fractions, denormals, the largest finite double, and a value one
    // ulp away from a short decimal.
    const std::vector<double> awkward = {
        1.0 / 3.0,
        0.1,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::nextafter(2.5e-3, 3.0),
        6.283185307179586,
    };
    std::string dir = freshDir("bits");
    {
        ChampionPortfolio portfolio(dir);
        for (size_t i = 0; i < awkward.size(); ++i)
            portfolio.put(makeRecord(64 << i, awkward[i]));
    }
    ChampionPortfolio reloaded(dir);
    EXPECT_EQ(reloaded.stats().loaded,
              static_cast<int64_t>(awkward.size()));
    for (size_t i = 0; i < awkward.size(); ++i) {
        auto hit = reloaded.exact(
            "Black-Scholes",
            sim::MachineProfile::desktop().fingerprint(), 64 << i);
        ASSERT_TRUE(hit.has_value()) << "n=" << (64 << i);
        EXPECT_EQ(std::bit_cast<uint64_t>(hit->seconds),
                  std::bit_cast<uint64_t>(awkward[i]))
            << "seconds not bit-identical for n=" << (64 << i);
    }
}

TEST(Portfolio, PersistsFullRecordAcrossInstances)
{
    std::string dir = freshDir("reload");
    ChampionRecord original = makeRecord(512, 0.0625, 32);
    {
        ChampionPortfolio portfolio(dir);
        portfolio.put(original);
    }
    ChampionPortfolio reloaded(dir);
    auto hit = reloaded.exact(
        "Black-Scholes", sim::MachineProfile::desktop().fingerprint(),
        512);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->benchmark, original.benchmark);
    EXPECT_EQ(hit->machineName, original.machineName);
    EXPECT_EQ(hit->machineFingerprint, original.machineFingerprint);
    EXPECT_EQ(hit->inputSize, original.inputSize);
    EXPECT_EQ(hit->seconds, original.seconds);
    EXPECT_EQ(hit->config, original.config);
    EXPECT_EQ(hit->configFingerprint,
              original.config.valueFingerprint());
    // The serialized form is byte-stable: rewriting the same record
    // reproduces the identical file.
    std::vector<std::string> files = championFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    std::ifstream in(files[0]);
    std::string before((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    reloaded.put(original);
    std::ifstream in2(files[0]);
    std::string after((std::istreambuf_iterator<char>(in2)),
                      std::istreambuf_iterator<char>());
    EXPECT_EQ(before, after);
}

TEST(Portfolio, TornFileIsQuarantinedNotFatal)
{
    std::string dir = freshDir("torn");
    {
        ChampionPortfolio portfolio(dir);
        portfolio.put(makeRecord(256, 0.5));
        portfolio.put(makeRecord(1024, 0.9));
    }
    // Tear one champion mid-file, as a crashed non-atomic writer would.
    std::vector<std::string> files = championFiles(dir);
    ASSERT_EQ(files.size(), 2u);
    fs::resize_file(files[0], fs::file_size(files[0]) / 2);

    ChampionPortfolio reloaded(dir); // must not throw
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_EQ(reloaded.stats().loaded, 1);
    EXPECT_EQ(reloaded.stats().quarantined, 1);
    EXPECT_FALSE(fs::exists(files[0]));
    EXPECT_TRUE(fs::exists(files[0] + ".quarantine"));
}

TEST(Portfolio, EditedValueFailsChecksumAndQuarantines)
{
    std::string dir = freshDir("edited");
    {
        ChampionPortfolio portfolio(dir);
        portfolio.put(makeRecord(256, 0.5));
    }
    std::vector<std::string> files = championFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    // Flip one byte of the stored input size; the content checksum
    // must catch it even though the file still parses as a KvFile.
    std::ifstream in(files[0]);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    size_t pos = text.find("256");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = '9';
    std::ofstream(files[0]) << text;

    ChampionPortfolio reloaded(dir);
    EXPECT_EQ(reloaded.size(), 0u);
    EXPECT_EQ(reloaded.stats().quarantined, 1);
    EXPECT_TRUE(fs::exists(files[0] + ".quarantine"));
}

TEST(Portfolio, GarbageFileIsQuarantined)
{
    std::string dir = freshDir("garbage");
    fs::create_directories(dir);
    std::ofstream(dir + "/champ-bogus-0000000000000000-1.kv")
        << "not a champion at all\n";
    ChampionPortfolio portfolio(dir); // must not throw
    EXPECT_EQ(portfolio.size(), 0u);
    EXPECT_EQ(portfolio.stats().quarantined, 1);
}

TEST(Portfolio, FsckOffSkipsBadFilesWithoutRenaming)
{
    std::string dir = freshDir("nofsck");
    {
        ChampionPortfolio portfolio(dir);
        portfolio.put(makeRecord(256, 0.5));
        portfolio.put(makeRecord(1024, 0.9));
    }
    std::vector<std::string> files = championFiles(dir);
    ASSERT_EQ(files.size(), 2u);
    fs::resize_file(files[1], 7);

    ChampionPortfolio reloaded(dir, /*fsck=*/false);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_EQ(reloaded.stats().quarantined, 0);
    EXPECT_TRUE(fs::exists(files[1])); // left in place for inspection
    EXPECT_FALSE(fs::exists(files[1] + ".quarantine"));
}

TEST(Portfolio, PutRecomputesStaleConfigFingerprint)
{
    ChampionPortfolio portfolio;
    ChampionRecord record = makeRecord(256, 0.5);
    record.configFingerprint = 0xdeadbeef; // deliberately wrong
    portfolio.put(record);
    auto hit = portfolio.exact(
        "Black-Scholes", sim::MachineProfile::desktop().fingerprint(),
        256);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->configFingerprint, hit->config.valueFingerprint());
}
