#include <gtest/gtest.h>

#include "blas/blas.h"
#include "support/rng.h"

namespace petabricks {
namespace blas {
namespace {

MatrixD
randomMatrix(int64_t w, int64_t h, Rng &rng)
{
    MatrixD m(w, h);
    for (int64_t i = 0; i < m.size(); ++i)
        m[i] = rng.uniformReal(-1.0, 1.0);
    return m;
}

MatrixD
naiveGemm(const MatrixD &a, const MatrixD &b)
{
    MatrixD c(b.width(), a.height());
    for (int64_t i = 0; i < a.height(); ++i)
        for (int64_t j = 0; j < b.width(); ++j) {
            double sum = 0.0;
            for (int64_t p = 0; p < a.width(); ++p)
                sum += a.at(p, i) * b.at(j, p);
            c.at(j, i) = sum;
        }
    return c;
}

TEST(Blas, GemmMatchesNaive)
{
    Rng rng(1);
    MatrixD a = randomMatrix(37, 29, rng);
    MatrixD b = randomMatrix(41, 37, rng);
    MatrixD c(41, 29);
    gemm(a, b, c);
    MatrixD ref = naiveGemm(a, b);
    EXPECT_LT(frobeniusDiff(c, ref), 1e-10);
}

TEST(Blas, GemmBlockBoundary)
{
    // Sizes straddling the 64-wide cache block.
    Rng rng(2);
    for (int64_t n : {63, 64, 65, 130}) {
        MatrixD a = randomMatrix(n, n, rng);
        MatrixD b = randomMatrix(n, n, rng);
        MatrixD c(n, n);
        gemm(a, b, c);
        EXPECT_LT(frobeniusDiff(c, naiveGemm(a, b)), 1e-9) << n;
    }
}

TEST(Blas, GemmIntoWritesSubRegion)
{
    Rng rng(3);
    MatrixD a = randomMatrix(8, 8, rng);
    MatrixD b = randomMatrix(8, 8, rng);
    MatrixD big(20, 20);
    big.at(0, 0) = 99.0;
    gemmInto(a, b, big, 10, 12);
    MatrixD ref = naiveGemm(a, b);
    for (int64_t y = 0; y < 8; ++y)
        for (int64_t x = 0; x < 8; ++x)
            EXPECT_NEAR(big.at(10 + x, 12 + y), ref.at(x, y), 1e-10);
    EXPECT_EQ(big.at(0, 0), 99.0); // untouched outside the region
}

TEST(Blas, GemmAccumulate)
{
    Rng rng(4);
    MatrixD a = randomMatrix(16, 16, rng);
    MatrixD b = randomMatrix(16, 16, rng);
    MatrixD c(16, 16);
    gemm(a, b, c);
    MatrixD acc = c.clone();
    gemmAccumulate(a, b, acc);
    for (int64_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(acc[i], 2.0 * c[i], 1e-10);
}

TEST(Blas, Transpose)
{
    Rng rng(5);
    MatrixD a = randomMatrix(7, 4, rng);
    MatrixD t(4, 7);
    transpose(a, t);
    for (int64_t y = 0; y < 4; ++y)
        for (int64_t x = 0; x < 7; ++x)
            EXPECT_EQ(t.at(y, x), a.at(x, y));
}

TEST(Blas, GemvMatchesGemm)
{
    Rng rng(6);
    MatrixD a = randomMatrix(12, 9, rng);
    MatrixD x = randomMatrix(12, 1, rng);
    MatrixD y = MatrixD::vector(9);
    gemv(a, x, y);
    for (int64_t i = 0; i < 9; ++i) {
        double sum = 0.0;
        for (int64_t j = 0; j < 12; ++j)
            sum += a.at(j, i) * x[j];
        EXPECT_NEAR(y[i], sum, 1e-12);
    }
}

TEST(Blas, VectorOps)
{
    MatrixD x = MatrixD::vector(3);
    x[0] = 3.0;
    x[1] = 0.0;
    x[2] = 4.0;
    EXPECT_DOUBLE_EQ(norm2(x), 5.0);
    MatrixD y = x.clone();
    axpy(2.0, x, y);
    EXPECT_DOUBLE_EQ(y[2], 12.0);
    scale(y, 0.5);
    EXPECT_DOUBLE_EQ(y[0], 4.5);
    EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
}

TEST(Blas, ShapeMismatchesPanic)
{
    MatrixD a(4, 4), b(3, 3), c(4, 4);
    EXPECT_THROW(gemm(a, b, c), PanicError);
    MatrixD t(3, 3);
    EXPECT_THROW(transpose(a, t), PanicError);
}

TEST(Blas, GemmCostReflectsLibrarySpeedup)
{
    auto cost = gemmCost(128, 128, 128);
    double realFlops = 2.0 * 128.0 * 128.0 * 128.0;
    EXPECT_DOUBLE_EQ(cost.flops, realFlops / kLibraryFlopSpeedup);
    EXPECT_DOUBLE_EQ(cost.sequentialFraction, 1.0); // single-threaded
}

} // namespace
} // namespace blas
} // namespace petabricks
