#include <gtest/gtest.h>

#include "compiler/executor.h"
#include "conv_fixture.h"
#include "sim/machine.h"

namespace petabricks {
namespace compiler {
namespace {

struct ExecutorFixture : ::testing::Test
{
    ExecutorFixture()
        : device(sim::MachineProfile::desktop().ocl), rt(4, &device),
          exec(rt), rng(11)
    {}

    void
    expectMatchesReference(lang::Binding &binding, int64_t kw)
    {
        MatrixD ref = testfix::referenceConv(binding, kw);
        const MatrixD &out = binding.matrix("Out");
        ASSERT_EQ(out.width(), ref.width());
        for (int64_t y = 0; y < ref.height(); ++y)
            for (int64_t x = 0; x < ref.width(); ++x)
                ASSERT_NEAR(out.at(x, y), ref.at(x, y), 1e-12)
                    << "(" << x << "," << y << ")";
    }

    TransformConfig
    config(size_t choice, std::vector<StageConfig> stages)
    {
        TransformConfig c;
        c.choiceIndex = choice;
        c.stages = std::move(stages);
        return c;
    }

    StageConfig
    stage(Backend backend, int ratio = 8, int lws = 16, int split = 4)
    {
        StageConfig s;
        s.backend = backend;
        s.gpuRatioEighths = ratio;
        s.localWorkSize = lws;
        s.cpuSplit = split;
        return s;
    }

    ocl::Device device;
    runtime::Runtime rt;
    TransformExecutor exec;
    Rng rng;
};

TEST_F(ExecutorFixture, CpuOnly2d)
{
    const int64_t n = 32, kw = 5;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    exec.execute(*t, binding, config(0, {stage(Backend::Cpu)}));
    expectMatchesReference(binding, kw);
}

TEST_F(ExecutorFixture, CpuOnlySeparable)
{
    const int64_t n = 32, kw = 5;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    exec.execute(*t, binding,
                 config(1, {stage(Backend::Cpu), stage(Backend::Cpu)}));
    expectMatchesReference(binding, kw);
}

TEST_F(ExecutorFixture, GpuGlobal2d)
{
    const int64_t n = 32, kw = 5;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    exec.execute(*t, binding,
                 config(0, {stage(Backend::OpenClGlobal)}));
    exec.syncOutputs(*t, binding); // lazy may-copy-out check
    expectMatchesReference(binding, kw);
}

TEST_F(ExecutorFixture, GpuLocal2d)
{
    const int64_t n = 32, kw = 5;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    exec.execute(*t, binding, config(0, {stage(Backend::OpenClLocal)}));
    exec.syncOutputs(*t, binding);
    expectMatchesReference(binding, kw);
}

TEST_F(ExecutorFixture, GpuSeparableBothStages)
{
    const int64_t n = 36, kw = 7;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    exec.execute(*t, binding,
                 config(1, {stage(Backend::OpenClGlobal),
                            stage(Backend::OpenClLocal)}));
    exec.syncOutputs(*t, binding);
    expectMatchesReference(binding, kw);
    // The intermediate stayed on the GPU (reused, no eager copy-out).
    auto stats = rt.gpuMemory().statsSnapshot();
    EXPECT_EQ(stats.eagerCopyOuts, 0);
    EXPECT_GT(stats.lazyCopyOuts, 0); // Out fetched by syncOutputs
}

TEST_F(ExecutorFixture, GpuProducerCpuConsumerEagerCopy)
{
    const int64_t n = 36, kw = 7;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    exec.execute(*t, binding,
                 config(1, {stage(Backend::OpenClGlobal),
                            stage(Backend::Cpu)}));
    expectMatchesReference(binding, kw);
    // buffer was eagerly copied out for the CPU columns pass.
    auto stats = rt.gpuMemory().statsSnapshot();
    EXPECT_GE(stats.eagerCopyOuts, 1);
}

TEST_F(ExecutorFixture, SplitGpuCpuRatio)
{
    // 3/8 of the rows on the GPU, the rest chunked over CPU workers.
    const int64_t n = 40, kw = 5;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    exec.execute(*t, binding,
                 config(0, {stage(Backend::OpenClGlobal, 3)}));
    exec.syncOutputs(*t, binding);
    expectMatchesReference(binding, kw);
}

TEST_F(ExecutorFixture, SplitSeparablePipeline)
{
    const int64_t n = 48, kw = 5;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    exec.execute(*t, binding,
                 config(1, {stage(Backend::OpenClGlobal, 5),
                            stage(Backend::OpenClGlobal, 3)}));
    exec.syncOutputs(*t, binding);
    expectMatchesReference(binding, kw);
}

TEST_F(ExecutorFixture, CopyInDedupAcrossStages)
{
    // Running the same config twice: second run's copy-ins of the
    // unchanged inputs are deduplicated by the memory table.
    const int64_t n = 32, kw = 3;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    auto cfg = config(0, {stage(Backend::OpenClGlobal)});
    exec.execute(*t, binding, cfg);
    auto before = rt.gpuMemory().statsSnapshot();
    exec.execute(*t, binding, cfg);
    auto after = rt.gpuMemory().statsSnapshot();
    EXPECT_GT(after.copyInsSkipped, before.copyInsSkipped);
    exec.syncOutputs(*t, binding);
    expectMatchesReference(binding, kw);
}

TEST_F(ExecutorFixture, RegionRuleRunsNatively)
{
    lang::Transform t("scale");
    t.slot("In", lang::SlotRole::Input);
    t.slot("Out", lang::SlotRole::Output);
    t.choice("c", {lang::RuleDef::makeRegion(
                      "scale2", "Out", {"In"},
                      [](lang::RuleDef::RegionRunArgs &args) {
                          for (int64_t y = 0; y < args.region.h; ++y)
                              for (int64_t x = 0; x < args.region.w; ++x)
                                  args.output.at(x, y) =
                                      2.0 * args.inputs[0].at(x, y);
                      },
                      [](const Region &r, const lang::ParamEnv &) {
                          sim::CostReport c;
                          c.flops = static_cast<double>(r.area());
                          return c;
                      })});
    lang::Binding binding;
    MatrixD in(8, 8);
    for (int64_t i = 0; i < 64; ++i)
        in[i] = static_cast<double>(i);
    binding.matrices.emplace("In", in);
    binding.matrices.emplace("Out", MatrixD(8, 8));
    TransformConfig cfg;
    cfg.choiceIndex = 0;
    cfg.stages = {StageConfig{}};
    exec.execute(t, binding, cfg);
    EXPECT_DOUBLE_EQ(binding.matrix("Out").at(3, 2), 2.0 * 19.0);
}

TEST_F(ExecutorFixture, CpuOnlyRuntimeStillWorks)
{
    runtime::Runtime cpuRt(2);
    TransformExecutor cpuExec(cpuRt);
    const int64_t n = 24, kw = 3;
    auto t = testfix::makeConvTransform(kw);
    auto binding = testfix::makeConvBinding(n, kw, rng);
    cpuExec.execute(*t, binding,
                    config(1, {stage(Backend::Cpu), stage(Backend::Cpu)}));
    cpuExec.syncOutputs(*t, binding); // no-op without a GPU
    expectMatchesReference(binding, kw);
}

} // namespace
} // namespace compiler
} // namespace petabricks
