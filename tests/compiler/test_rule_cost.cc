#include <gtest/gtest.h>

#include "compiler/rule_cost.h"
#include "conv_fixture.h"
#include "sim/machine.h"

namespace petabricks {
namespace compiler {
namespace {

SlotExtents
convExtents(int64_t n, int64_t kw)
{
    SlotExtents e;
    e.inputs = {{n, n}, {kw, 1}};
    e.outputW = n - kw + 1;
    e.outputH = n - kw + 1;
    return e;
}

TEST(InputRegionFor, WindowAccessAddsHalo)
{
    lang::AccessPattern access{"In", lang::DimAccess::window(0, 5),
                               lang::DimAccess::window(0, 5)};
    Region out(0, 0, 60, 28);
    Region needed = inputRegionFor(access, out, 64, 64);
    EXPECT_EQ(needed, Region(0, 0, 64, 32));
}

TEST(InputRegionFor, NegativeOffsetsClampedAtZero)
{
    lang::AccessPattern access{"In", lang::DimAccess::window(-2, 5),
                               lang::DimAccess::window(-2, 5)};
    Region out(0, 0, 10, 10);
    Region needed = inputRegionFor(access, out, 32, 32);
    EXPECT_EQ(needed, Region(0, 0, 12, 12));
}

TEST(InputRegionFor, FullDimSpansInput)
{
    lang::AccessPattern access{"A", lang::DimAccess::all(),
                               lang::DimAccess::window(0, 1)};
    Region out(0, 4, 16, 8);
    Region needed = inputRegionFor(access, out, 100, 100);
    EXPECT_EQ(needed, Region(0, 4, 100, 8));
}

TEST(InputRegionFor, OffsetBandForSplitRegion)
{
    // The CPU part of a split output needs only its own input band.
    lang::AccessPattern access{"In", lang::DimAccess::window(0, 3),
                               lang::DimAccess::window(0, 3)};
    Region out(0, 50, 62, 12);
    Region needed = inputRegionFor(access, out, 64, 64);
    EXPECT_EQ(needed, Region(0, 50, 64, 14));
}

TEST(RuleCost, FlopsScaleWithAreaAndKernelWidth)
{
    auto rule = testfix::convolve2dRule(5);
    Region out(0, 0, 60, 60);
    ocl::NDRange range(60, 60, 64, 1);
    auto c5 = pointRuleGlobalCost(*rule, out, convExtents(64, 5), {5},
                                  range);
    EXPECT_DOUBLE_EQ(c5.flops, 60.0 * 60.0 * 3.0 * 25.0);

    auto rule9 = testfix::convolve2dRule(9);
    auto c9 = pointRuleGlobalCost(*rule9, Region(0, 0, 56, 56),
                                  convExtents(64, 9), {9},
                                  ocl::NDRange(56, 56, 64, 1));
    EXPECT_GT(c9.flops, c5.flops);
}

TEST(RuleCost, GlobalVariantChargesRedundantReads)
{
    auto rule = testfix::convolve2dRule(9);
    Region out(0, 0, 56, 56);
    ocl::NDRange range(56, 56, 64, 1);
    SlotExtents ext = convExtents(64, 9);
    auto cost = pointRuleGlobalCost(*rule, out, ext, {9}, range);
    // More than the unique input footprint, less than the full
    // 81-reads-per-point worst case (hardware caches absorb most).
    double unique = 64.0 * 64.0 * 8.0;
    double total = 56.0 * 56.0 * 81.0 * 8.0;
    EXPECT_GT(cost.globalBytesRead, unique);
    EXPECT_LT(cost.globalBytesRead, total);
}

TEST(RuleCost, LocalVariantTradesGlobalForLocalTraffic)
{
    auto rule = testfix::convolve2dRule(9);
    Region out(0, 0, 56, 56);
    ocl::NDRange range(56, 56, 64, 1);
    SlotExtents ext = convExtents(64, 9);
    auto global = pointRuleGlobalCost(*rule, out, ext, {9}, range);
    auto local = pointRuleLocalCost(*rule, out, ext, {9}, range);
    EXPECT_LT(local.globalBytesRead, global.globalBytesRead);
    EXPECT_GT(local.localBytes, 0.0);
    EXPECT_GT(local.barriers, 0.0);
    EXPECT_DOUBLE_EQ(local.flops, global.flops);
}

TEST(RuleCost, LocalBeatsGlobalOnGpuForWideKernels)
{
    // The Figure 2 effect, priced on the Desktop GPU.
    auto gpu = sim::MachineProfile::desktop().ocl;
    auto rule = testfix::convolve2dRule(17);
    int64_t n = 512;
    Region out(0, 0, n - 16, n - 16);
    ocl::NDRange range(n - 16, n - 16, 64, 1);
    SlotExtents ext = convExtents(n, 17);
    double tGlobal = sim::CostModel::kernelSeconds(
        gpu, pointRuleGlobalCost(*rule, out, ext, {17}, range), 64);
    double tLocal = sim::CostModel::kernelSeconds(
        gpu, pointRuleLocalCost(*rule, out, ext, {17}, range), 64);
    EXPECT_LT(tLocal, tGlobal);
}

TEST(RuleCost, LocalLosesOnCpuOpenCL)
{
    // On the Server's CPU OpenCL runtime the staging traffic rides the
    // normal memory path: prefetching is wasted work (Section 2.2).
    auto cpuOcl = sim::MachineProfile::server().ocl;
    auto rule = testfix::convolve2dRule(7);
    int64_t n = 512;
    Region out(0, 0, n - 6, n - 6);
    ocl::NDRange range(n - 6, n - 6, 64, 1);
    SlotExtents ext = convExtents(n, 7);
    double tGlobal = sim::CostModel::kernelSeconds(
        cpuOcl, pointRuleGlobalCost(*rule, out, ext, {7}, range), 64);
    double tLocal = sim::CostModel::kernelSeconds(
        cpuOcl, pointRuleLocalCost(*rule, out, ext, {7}, range), 64);
    EXPECT_GT(tLocal, tGlobal);
}

TEST(RuleCost, CpuCostUsesCacheFriendlyTraffic)
{
    auto rule = testfix::convolve2dRule(9);
    Region out(0, 0, 56, 56);
    SlotExtents ext = convExtents(64, 9);
    auto cost = pointRuleCpuCost(*rule, out, ext, {9});
    // CPU caches absorb all window redundancy: traffic = unique bytes.
    double unique = (64.0 * 64.0 + 9.0) * 8.0;
    EXPECT_DOUBLE_EQ(cost.globalBytesRead, unique);
}

TEST(RuleCost, LocalMemElems)
{
    auto rule = testfix::convolve2dRule(5);
    ocl::NDRange range(60, 60, 16, 1);
    // Tile: (16+4) x (1+4) = 100 elements for In; Kernel not staged.
    EXPECT_EQ(localMemElemsFor(*rule, range), 100);
}

TEST(RuleCost, SeparableDoesAsymptoticallyLessWork)
{
    // 2*O(k) per point for two passes vs O(k^2) for the 2-D pass.
    int64_t n = 256, kw = 17;
    auto rule2d = testfix::convolve2dRule(kw);
    auto rows = testfix::convolveRowsRule(kw);
    auto cols = testfix::convolveColumnsRule(kw);
    int64_t ow = n - kw + 1;
    double flops2d =
        pointRuleCpuCost(*rule2d, Region(0, 0, ow, ow),
                         convExtents(n, kw), {kw})
            .flops;
    SlotExtents rowsExt;
    rowsExt.inputs = {{n, n}, {kw, 1}};
    rowsExt.outputW = ow;
    rowsExt.outputH = n;
    SlotExtents colsExt;
    colsExt.inputs = {{ow, n}, {kw, 1}};
    colsExt.outputW = ow;
    colsExt.outputH = ow;
    double flopsSep =
        pointRuleCpuCost(*rows, Region(0, 0, ow, n), rowsExt, {kw})
            .flops +
        pointRuleCpuCost(*cols, Region(0, 0, ow, ow), colsExt, {kw})
            .flops;
    EXPECT_LT(flopsSep, flops2d / 3.0);
}

} // namespace
} // namespace compiler
} // namespace petabricks
