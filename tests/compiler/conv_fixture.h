/**
 * @file
 * Test fixture: the paper's SeparableConvolution transform (Figure 1),
 * expressed in the embedded rule IR. Used by the lang and compiler
 * tests; the shipped benchmark version lives in src/benchmarks.
 *
 * Slots: In (w x h), Kernel (KWIDTH x 1), Out, buffer (intermediate).
 * Params: params[0] = KWIDTH.
 * Choice 0 "2d":        Convolve2D: In, Kernel -> Out
 * Choice 1 "separable": ConvolveRows: In, Kernel -> buffer;
 *                       ConvolveColumns: buffer, Kernel -> Out
 */

#ifndef PETABRICKS_TESTS_CONV_FIXTURE_H
#define PETABRICKS_TESTS_CONV_FIXTURE_H

#include <memory>

#include "lang/transform.h"
#include "support/rng.h"

namespace petabricks {
namespace testfix {

/** The single-pass 2-D convolution rule (KWIDTH x KWIDTH window). */
inline lang::RulePtr
convolve2dRule(int64_t kwidth)
{
    using namespace lang;
    return RuleDef::makePoint(
        "Convolve2D", "Out",
        {AccessPattern{"In", DimAccess::window(0, kwidth),
                       DimAccess::window(0, kwidth)},
         AccessPattern{"Kernel", DimAccess::all(),
                       DimAccess::window(0, 1)}},
        [](const PointArgs &pt) {
            int64_t kw = pt.param(0);
            double sum = 0.0;
            for (int64_t j = 0; j < kw; ++j)
                for (int64_t i = 0; i < kw; ++i)
                    sum += pt.input(0).at(pt.x + i, pt.y + j) *
                           pt.input(1).at(i, 0) * pt.input(1).at(j, 0);
            return sum;
        },
        [](const ParamEnv &params) {
            double kw = static_cast<double>(params[0]);
            return 3.0 * kw * kw;
        });
}

inline lang::RulePtr
convolveRowsRule(int64_t kwidth)
{
    using namespace lang;
    return RuleDef::makePoint(
        "ConvolveRows", "buffer",
        {AccessPattern{"In", DimAccess::window(0, kwidth),
                       DimAccess::window(0, 1)},
         AccessPattern{"Kernel", DimAccess::all(),
                       DimAccess::window(0, 1)}},
        [](const PointArgs &pt) {
            int64_t kw = pt.param(0);
            double sum = 0.0;
            for (int64_t i = 0; i < kw; ++i)
                sum += pt.input(0).at(pt.x + i, pt.y) *
                       pt.input(1).at(i, 0);
            return sum;
        },
        [](const ParamEnv &params) {
            return 2.0 * static_cast<double>(params[0]);
        });
}

inline lang::RulePtr
convolveColumnsRule(int64_t kwidth)
{
    using namespace lang;
    return RuleDef::makePoint(
        "ConvolveColumns", "Out",
        {AccessPattern{"buffer", DimAccess::window(0, 1),
                       DimAccess::window(0, kwidth)},
         AccessPattern{"Kernel", DimAccess::all(),
                       DimAccess::window(0, 1)}},
        [](const PointArgs &pt) {
            int64_t kw = pt.param(0);
            double sum = 0.0;
            for (int64_t i = 0; i < kw; ++i)
                sum += pt.input(0).at(pt.x, pt.y + i) *
                       pt.input(1).at(i, 0);
            return sum;
        },
        [](const ParamEnv &params) {
            return 2.0 * static_cast<double>(params[0]);
        });
}

/** The full SeparableConvolution transform with both choices. */
inline std::shared_ptr<lang::Transform>
makeConvTransform(int64_t kwidth)
{
    auto t = std::make_shared<lang::Transform>("SeparableConvolution");
    t->slot("In", lang::SlotRole::Input)
        .slot("Kernel", lang::SlotRole::Input)
        .slot("Out", lang::SlotRole::Output)
        .slot("buffer", lang::SlotRole::Intermediate);
    t->choice("2d", {convolve2dRule(kwidth)});
    t->choice("separable",
              {convolveRowsRule(kwidth), convolveColumnsRule(kwidth)});
    return t;
}

/** Bind matrices for an n x n input with kernel width kwidth. */
inline lang::Binding
makeConvBinding(int64_t n, int64_t kwidth, Rng &rng)
{
    lang::Binding binding;
    MatrixD in(n, n);
    for (int64_t y = 0; y < n; ++y)
        for (int64_t x = 0; x < n; ++x)
            in.at(x, y) = rng.uniformReal(-1.0, 1.0);
    MatrixD kernel = MatrixD::vector(kwidth);
    for (int64_t i = 0; i < kwidth; ++i)
        kernel.at(i, 0) = rng.uniformReal(0.0, 1.0);
    binding.matrices.emplace("In", in);
    binding.matrices.emplace("Kernel", kernel);
    binding.matrices.emplace("Out",
                             MatrixD(n - kwidth + 1, n - kwidth + 1));
    binding.matrices.emplace("buffer", MatrixD(n - kwidth + 1, n));
    binding.params = {kwidth};
    return binding;
}

/** Reference 2-D convolution computed directly. */
inline MatrixD
referenceConv(const lang::Binding &binding, int64_t kwidth)
{
    const MatrixD &in = binding.matrix("In");
    const MatrixD &kernel = binding.matrix("Kernel");
    int64_t ow = in.width() - kwidth + 1;
    int64_t oh = in.height() - kwidth + 1;
    MatrixD out(ow, oh);
    for (int64_t y = 0; y < oh; ++y)
        for (int64_t x = 0; x < ow; ++x) {
            double sum = 0.0;
            for (int64_t j = 0; j < kwidth; ++j)
                for (int64_t i = 0; i < kwidth; ++i)
                    sum += in.at(x + i, y + j) * kernel.at(i, 0) *
                           kernel.at(j, 0);
            out.at(x, y) = sum;
        }
    return out;
}

} // namespace testfix
} // namespace petabricks

#endif // PETABRICKS_TESTS_CONV_FIXTURE_H
