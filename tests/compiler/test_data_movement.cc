#include <gtest/gtest.h>

#include "compiler/data_movement.h"
#include "conv_fixture.h"

namespace petabricks {
namespace compiler {
namespace {

SlotSizes
convSizes(int64_t n, int64_t kw)
{
    return {{"In", {n, n}},
            {"Kernel", {kw, 1}},
            {"Out", {n - kw + 1, n - kw + 1}},
            {"buffer", {n - kw + 1, n}}};
}

TransformConfig
sepConfig(Backend rows, Backend cols, int rowsRatio = 8,
          int colsRatio = 8)
{
    TransformConfig config;
    config.choiceIndex = 1;
    StageConfig r;
    r.backend = rows;
    r.gpuRatioEighths = rowsRatio;
    StageConfig c;
    c.backend = cols;
    c.gpuRatioEighths = colsRatio;
    config.stages = {r, c};
    return config;
}

TEST(DataMovement, AllCpuHasNoCopyOut)
{
    auto t = testfix::makeConvTransform(5);
    auto plans = planStages(*t, sepConfig(Backend::Cpu, Backend::Cpu),
                            convSizes(64, 5));
    ASSERT_EQ(plans.size(), 2u);
    EXPECT_EQ(plans[0].copyOut, CopyOutPolicy::None);
    EXPECT_EQ(plans[1].copyOut, CopyOutPolicy::None);
    EXPECT_FALSE(plans[0].hasGpuPart());
    EXPECT_TRUE(plans[0].hasCpuPart());
}

TEST(DataMovement, GpuToGpuIntermediateIsReused)
{
    // buffer produced on GPU, consumed by a GPU stage: stays resident.
    auto t = testfix::makeConvTransform(5);
    auto plans = planStages(
        *t, sepConfig(Backend::OpenClGlobal, Backend::OpenClGlobal),
        convSizes(64, 5));
    EXPECT_EQ(plans[0].copyOut, CopyOutPolicy::Reused);
    // Out is a transform output: dynamic consumer, lazy copy-out.
    EXPECT_EQ(plans[1].copyOut, CopyOutPolicy::MayCopyOut);
}

TEST(DataMovement, GpuToCpuIntermediateMustCopyOut)
{
    auto t = testfix::makeConvTransform(5);
    auto plans = planStages(
        *t, sepConfig(Backend::OpenClGlobal, Backend::Cpu),
        convSizes(64, 5));
    EXPECT_EQ(plans[0].copyOut, CopyOutPolicy::MustCopyOut);
    EXPECT_EQ(plans[1].copyOut, CopyOutPolicy::None);
}

TEST(DataMovement, SplitConsumerForcesEagerCopyOut)
{
    // The consumer has a CPU part (ratio < 8/8), so the producer's GPU
    // output must be copied back eagerly.
    auto t = testfix::makeConvTransform(5);
    auto plans = planStages(
        *t,
        sepConfig(Backend::OpenClGlobal, Backend::OpenClGlobal, 8, 4),
        convSizes(64, 5));
    EXPECT_EQ(plans[0].copyOut, CopyOutPolicy::MustCopyOut);
}

TEST(DataMovement, RatioSplitsRows)
{
    auto t = testfix::makeConvTransform(5);
    auto plans = planStages(
        *t, sepConfig(Backend::OpenClGlobal, Backend::OpenClGlobal, 2, 8),
        convSizes(64, 5));
    // buffer is 60 wide x 64 high; 2/8 of 64 = 16 rows on the GPU.
    EXPECT_EQ(plans[0].gpuRows, 16);
    EXPECT_TRUE(plans[0].hasGpuPart());
    EXPECT_TRUE(plans[0].hasCpuPart());
    EXPECT_EQ(plans[0].gpuRegion(), Region(0, 0, 60, 16));
    EXPECT_EQ(plans[0].cpuRegion(), Region(0, 16, 60, 48));
}

TEST(DataMovement, ZeroRatioMeansNoGpuPart)
{
    auto t = testfix::makeConvTransform(5);
    auto plans = planStages(
        *t, sepConfig(Backend::OpenClGlobal, Backend::Cpu, 0, 8),
        convSizes(64, 5));
    EXPECT_FALSE(plans[0].hasGpuPart());
    EXPECT_EQ(plans[0].copyOut, CopyOutPolicy::None);
}

TEST(DataMovement, SinglePass2dOutputIsLazy)
{
    auto t = testfix::makeConvTransform(5);
    TransformConfig config;
    config.choiceIndex = 0;
    StageConfig s;
    s.backend = Backend::OpenClLocal;
    config.stages = {s};
    auto plans = planStages(*t, config, convSizes(64, 5));
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_EQ(plans[0].copyOut, CopyOutPolicy::MayCopyOut);
}

TEST(DataMovement, InadmissibleOpenClPlacementIsFatal)
{
    lang::Transform t("native");
    t.slot("In", lang::SlotRole::Input);
    t.slot("Out", lang::SlotRole::Output);
    t.choice("c", {lang::RuleDef::makeRegion(
                      "native", "Out", {"In"},
                      [](lang::RuleDef::RegionRunArgs &) {},
                      [](const Region &, const lang::ParamEnv &) {
                          return sim::CostReport{};
                      })});
    TransformConfig config;
    StageConfig s;
    s.backend = Backend::OpenClGlobal;
    config.stages = {s};
    SlotSizes sizes{{"In", {8, 8}}, {"Out", {8, 8}}};
    EXPECT_THROW(planStages(t, config, sizes), FatalError);
}

TEST(DataMovement, LocalBackendRequiresLocalVariant)
{
    lang::Transform t("bs");
    t.slot("In", lang::SlotRole::Input);
    t.slot("Out", lang::SlotRole::Output);
    t.choice("c",
             {lang::RuleDef::makePoint(
                 "bs", "Out", {lang::AccessPattern::point("In")},
                 [](const lang::PointArgs &pt) {
                     return pt.input(0).at(pt.x, pt.y);
                 },
                 [](const lang::ParamEnv &) { return 1.0; })});
    TransformConfig config;
    StageConfig s;
    s.backend = Backend::OpenClLocal; // bbox == 1: no local variant
    config.stages = {s};
    SlotSizes sizes{{"In", {8, 8}}, {"Out", {8, 8}}};
    EXPECT_THROW(planStages(t, config, sizes), FatalError);
}

TEST(DataMovement, PolicyNames)
{
    EXPECT_STREQ(copyOutPolicyName(CopyOutPolicy::None), "none");
    EXPECT_STREQ(copyOutPolicyName(CopyOutPolicy::Reused), "reused");
    EXPECT_STREQ(copyOutPolicyName(CopyOutPolicy::MustCopyOut),
                 "must-copy-out");
    EXPECT_STREQ(copyOutPolicyName(CopyOutPolicy::MayCopyOut),
                 "may-copy-out");
}

} // namespace
} // namespace compiler
} // namespace petabricks
