#include <gtest/gtest.h>

#include "compiler/kernel_synth.h"
#include "compiler/rule_cost.h"
#include "conv_fixture.h"
#include "ocl/device.h"
#include "sim/machine.h"

namespace petabricks {
namespace compiler {
namespace {

struct SynthFixture : ::testing::Test
{
    SynthFixture() : device(sim::MachineProfile::desktop().ocl), rng(7) {}

    /** Upload a host matrix into a fresh full-size buffer. */
    ocl::BufferPtr
    upload(const MatrixD &m)
    {
        auto buf = std::make_shared<ocl::Buffer>(m.bytes());
        std::memcpy(buf->raw(), m.data(),
                    static_cast<size_t>(m.bytes()));
        return buf;
    }

    /** Run a synthesized kernel over @p region of the output. */
    void
    runKernel(const ocl::KernelPtr &kernel, const lang::RulePtr &rule,
              lang::Binding &binding, MatrixD &out, const Region &region,
              int lws)
    {
        std::vector<ocl::BufferPtr> inputBufs;
        std::vector<std::pair<int64_t, int64_t>> extents;
        for (const std::string &slot : rule->inputSlots()) {
            const MatrixD &in = binding.matrix(slot);
            inputBufs.push_back(upload(in));
            extents.emplace_back(in.width(), in.height());
        }
        auto outBuf = std::make_shared<ocl::Buffer>(out.bytes());
        ocl::KernelArgs args = makeKernelArgs(
            *rule, outBuf, std::move(inputBufs), out.width(),
            out.height(), region, extents, binding.params);
        device.launch(*kernel, args,
                      ocl::NDRange(region.w, region.h, lws, 1));
        std::memcpy(out.data(), outBuf->raw(),
                    static_cast<size_t>(out.bytes()));
    }

    ocl::Device device;
    Rng rng;
};

TEST_F(SynthFixture, GlobalVariantMatchesReference)
{
    const int64_t n = 40, kw = 5;
    auto rule = testfix::convolve2dRule(kw);
    auto kernels = synthesizeKernels(rule);
    ASSERT_NE(kernels.global, nullptr);

    lang::Binding binding = testfix::makeConvBinding(n, kw, rng);
    MatrixD ref = testfix::referenceConv(binding, kw);
    MatrixD out(n - kw + 1, n - kw + 1);
    runKernel(kernels.global, rule, binding, out, out.fullRegion(), 16);
    for (int64_t y = 0; y < out.height(); ++y)
        for (int64_t x = 0; x < out.width(); ++x)
            EXPECT_NEAR(out.at(x, y), ref.at(x, y), 1e-12)
                << x << "," << y;
}

TEST_F(SynthFixture, LocalVariantMatchesReference)
{
    const int64_t n = 40, kw = 5;
    auto rule = testfix::convolve2dRule(kw);
    auto kernels = synthesizeKernels(rule);
    ASSERT_NE(kernels.local, nullptr);

    lang::Binding binding = testfix::makeConvBinding(n, kw, rng);
    MatrixD ref = testfix::referenceConv(binding, kw);
    MatrixD out(n - kw + 1, n - kw + 1);
    runKernel(kernels.local, rule, binding, out, out.fullRegion(), 16);
    for (int64_t y = 0; y < out.height(); ++y)
        for (int64_t x = 0; x < out.width(); ++x)
            EXPECT_NEAR(out.at(x, y), ref.at(x, y), 1e-12)
                << x << "," << y;
}

TEST_F(SynthFixture, LocalVariantUsesLocalMemoryAndBarriers)
{
    const int64_t n = 24, kw = 3;
    auto rule = testfix::convolve2dRule(kw);
    auto kernels = synthesizeKernels(rule);
    lang::Binding binding = testfix::makeConvBinding(n, kw, rng);
    MatrixD out(n - kw + 1, n - kw + 1);
    runKernel(kernels.local, rule, binding, out, out.fullRegion(), 8);
    EXPECT_GT(device.stats().barriersExecuted, 0);
    EXPECT_TRUE(kernels.local->usesLocalMem());
    EXPECT_FALSE(kernels.global->usesLocalMem());
}

TEST_F(SynthFixture, PartialRegionLaunchOnlyWritesThatBand)
{
    // The GPU-CPU ratio split launches the kernel over only the first
    // rows of the output.
    const int64_t n = 32, kw = 3;
    auto rule = testfix::convolve2dRule(kw);
    auto kernels = synthesizeKernels(rule);
    lang::Binding binding = testfix::makeConvBinding(n, kw, rng);
    MatrixD ref = testfix::referenceConv(binding, kw);
    MatrixD out(n - kw + 1, n - kw + 1);
    Region top(0, 0, out.width(), out.height() / 2);
    runKernel(kernels.global, rule, binding, out, top, 16);
    for (int64_t y = 0; y < top.h; ++y)
        for (int64_t x = 0; x < out.width(); ++x)
            EXPECT_NEAR(out.at(x, y), ref.at(x, y), 1e-12);
    // Rows below the band were never touched.
    for (int64_t y = top.h; y < out.height(); ++y)
        for (int64_t x = 0; x < out.width(); ++x)
            EXPECT_EQ(out.at(x, y), 0.0);
}

TEST_F(SynthFixture, SeparablePipelineMatchesReference)
{
    const int64_t n = 36, kw = 7;
    auto rows = testfix::convolveRowsRule(kw);
    auto cols = testfix::convolveColumnsRule(kw);
    auto rowsK = synthesizeKernels(rows);
    auto colsK = synthesizeKernels(cols);
    ASSERT_NE(rowsK.local, nullptr); // 1x7 window is a constant bbox
    ASSERT_NE(colsK.local, nullptr);

    lang::Binding binding = testfix::makeConvBinding(n, kw, rng);
    MatrixD ref = testfix::referenceConv(binding, kw);
    MatrixD &buffer = binding.matrix("buffer");
    runKernel(rowsK.global, rows, binding, buffer, buffer.fullRegion(),
              16);
    MatrixD out(n - kw + 1, n - kw + 1);
    runKernel(colsK.local, cols, binding, out, out.fullRegion(), 16);
    for (int64_t y = 0; y < out.height(); ++y)
        for (int64_t x = 0; x < out.width(); ++x)
            EXPECT_NEAR(out.at(x, y), ref.at(x, y), 1e-12);
}

TEST_F(SynthFixture, NoLocalVariantForPointwiseRule)
{
    auto rule = lang::RuleDef::makePoint(
        "scale", "Out", {lang::AccessPattern::point("In")},
        [](const lang::PointArgs &pt) {
            return 2.0 * pt.input(0).at(pt.x, pt.y);
        },
        [](const lang::ParamEnv &) { return 1.0; });
    auto kernels = synthesizeKernels(rule);
    EXPECT_NE(kernels.global, nullptr);
    EXPECT_EQ(kernels.local, nullptr);
}

TEST_F(SynthFixture, KernelSourcesAreDistinct)
{
    auto rule = testfix::convolve2dRule(5);
    auto kernels = synthesizeKernels(rule);
    EXPECT_NE(kernels.global->source(), kernels.local->source());
    EXPECT_NE(kernels.global->source().find("Convolve2D"),
              std::string::npos);
}

TEST_F(SynthFixture, CostFunctionsMatchRuleCostHelpers)
{
    // The synthesized kernels' cost functions must agree with the
    // analytic helpers the simulator uses.
    const int64_t n = 64, kw = 5;
    auto rule = testfix::convolve2dRule(kw);
    auto kernels = synthesizeKernels(rule);
    lang::Binding binding = testfix::makeConvBinding(n, kw, rng);
    MatrixD out(n - kw + 1, n - kw + 1);

    std::vector<ocl::BufferPtr> inputBufs;
    std::vector<std::pair<int64_t, int64_t>> extents;
    for (const std::string &slot : rule->inputSlots()) {
        const MatrixD &in = binding.matrix(slot);
        inputBufs.push_back(upload(in));
        extents.emplace_back(in.width(), in.height());
    }
    auto outBuf = std::make_shared<ocl::Buffer>(out.bytes());
    Region region = out.fullRegion();
    ocl::KernelArgs args =
        makeKernelArgs(*rule, outBuf, inputBufs, out.width(),
                       out.height(), region, extents, binding.params);
    ocl::NDRange range(region.w, region.h, 32, 1);

    SlotExtents ext;
    ext.inputs = extents;
    ext.outputW = out.width();
    ext.outputH = out.height();
    auto fromKernel = kernels.global->cost(args, range);
    auto fromHelper =
        pointRuleGlobalCost(*rule, region, ext, binding.params, range);
    EXPECT_DOUBLE_EQ(fromKernel.flops, fromHelper.flops);
    EXPECT_DOUBLE_EQ(fromKernel.globalBytesRead,
                     fromHelper.globalBytesRead);
}

} // namespace
} // namespace compiler
} // namespace petabricks
