#include <gtest/gtest.h>

#include "compiler/simulator.h"
#include "conv_fixture.h"

namespace petabricks {
namespace compiler {
namespace {

SlotSizes
convSizes(int64_t n, int64_t kw)
{
    return {{"In", {n, n}},
            {"Kernel", {kw, 1}},
            {"Out", {n - kw + 1, n - kw + 1}},
            {"buffer", {n - kw + 1, n}}};
}

TransformConfig
cfg2d(Backend backend, int ratio = 8, int lws = 64)
{
    TransformConfig c;
    c.choiceIndex = 0;
    StageConfig s;
    s.backend = backend;
    s.gpuRatioEighths = ratio;
    s.localWorkSize = lws;
    c.stages = {s};
    return c;
}

TransformConfig
cfgSep(Backend rows, Backend cols, int lws = 64)
{
    TransformConfig c;
    c.choiceIndex = 1;
    StageConfig r;
    r.backend = rows;
    r.localWorkSize = lws;
    StageConfig s;
    s.backend = cols;
    s.localWorkSize = lws;
    c.stages = {r, s};
    return c;
}

TEST(Simulator, ProducesPositiveTime)
{
    auto t = testfix::makeConvTransform(5);
    auto out = simulateTransform(*t, cfg2d(Backend::Cpu),
                                 convSizes(512, 5), {5},
                                 sim::MachineProfile::desktop());
    EXPECT_GT(out.seconds, 0.0);
    EXPECT_EQ(out.kernelLaunches, 0);
}

TEST(Simulator, GpuRunIncludesTransfersBothWays)
{
    auto t = testfix::makeConvTransform(5);
    auto out = simulateTransform(*t, cfg2d(Backend::OpenClGlobal),
                                 convSizes(512, 5), {5},
                                 sim::MachineProfile::desktop());
    EXPECT_EQ(out.kernelLaunches, 1);
    EXPECT_GT(out.bytesToDevice, 0.0);
    // Lazy copy-out of the output is included (the paper's
    // measurements account for copy-back, unlike most baselines).
    EXPECT_GT(out.bytesFromDevice, 0.0);
}

TEST(Simulator, BiggerProblemsTakeLonger)
{
    auto t = testfix::makeConvTransform(5);
    auto small = simulateTransform(*t, cfg2d(Backend::Cpu),
                                   convSizes(256, 5), {5},
                                   sim::MachineProfile::desktop());
    auto large = simulateTransform(*t, cfg2d(Backend::Cpu),
                                   convSizes(1024, 5), {5},
                                   sim::MachineProfile::desktop());
    EXPECT_GT(large.seconds, small.seconds * 4);
}

TEST(Simulator, ReusedIntermediateSkipsTransfer)
{
    auto t = testfix::makeConvTransform(5);
    int64_t n = 1024;
    auto allGpu = simulateTransform(
        *t, cfgSep(Backend::OpenClGlobal, Backend::OpenClGlobal),
        convSizes(n, 5), {5}, sim::MachineProfile::desktop());
    auto mixed = simulateTransform(
        *t, cfgSep(Backend::OpenClGlobal, Backend::Cpu), convSizes(n, 5),
        {5}, sim::MachineProfile::desktop());
    // The GPU->GPU pipeline never moves the intermediate across PCIe;
    // the GPU->CPU pipeline must copy it out eagerly.
    EXPECT_LT(allGpu.bytesFromDevice, mixed.bytesFromDevice);
}

TEST(Simulator, ServerTransfersAreFree)
{
    auto t = testfix::makeConvTransform(5);
    auto out = simulateTransform(
        *t, cfgSep(Backend::OpenClGlobal, Backend::OpenClGlobal),
        convSizes(512, 5), {5}, sim::MachineProfile::server());
    EXPECT_GT(out.bytesToDevice, 0.0);
    EXPECT_GT(out.seconds, 0.0);
}

TEST(Simulator, DesktopGpuBeatsItsCpuOnBigConvolution)
{
    auto t = testfix::makeConvTransform(9);
    int64_t n = 2048;
    auto cpu = simulateTransform(*t, cfg2d(Backend::Cpu),
                                 convSizes(n, 9), {9},
                                 sim::MachineProfile::desktop());
    auto gpu = simulateTransform(*t, cfg2d(Backend::OpenClGlobal),
                                 convSizes(n, 9), {9},
                                 sim::MachineProfile::desktop());
    EXPECT_LT(gpu.seconds, cpu.seconds);
}

TEST(Simulator, LaptopGpuAdvantageSmallerThanDesktops)
{
    auto t = testfix::makeConvTransform(9);
    int64_t n = 2048;
    auto ratioOn = [&](const sim::MachineProfile &m) {
        auto cpu = simulateTransform(*t, cfg2d(Backend::Cpu),
                                     convSizes(n, 9), {9}, m);
        auto gpu = simulateTransform(*t, cfg2d(Backend::OpenClGlobal),
                                     convSizes(n, 9), {9}, m);
        return cpu.seconds / gpu.seconds;
    };
    EXPECT_GT(ratioOn(sim::MachineProfile::desktop()),
              ratioOn(sim::MachineProfile::laptop()));
}

TEST(Simulator, LocalMemoryWinsOnDesktopGpuForWideKernel)
{
    auto t = testfix::makeConvTransform(17);
    int64_t n = 2048;
    auto global = simulateTransform(*t, cfg2d(Backend::OpenClGlobal),
                                    convSizes(n, 17), {17},
                                    sim::MachineProfile::desktop());
    auto local = simulateTransform(*t, cfg2d(Backend::OpenClLocal),
                                   convSizes(n, 17), {17},
                                   sim::MachineProfile::desktop());
    EXPECT_LT(local.seconds, global.seconds);
}

TEST(Simulator, LocalMemoryLosesOnServerCpuOpenCL)
{
    auto t = testfix::makeConvTransform(7);
    int64_t n = 2048;
    auto global = simulateTransform(*t, cfg2d(Backend::OpenClGlobal),
                                    convSizes(n, 7), {7},
                                    sim::MachineProfile::server());
    auto local = simulateTransform(*t, cfg2d(Backend::OpenClLocal),
                                   convSizes(n, 7), {7},
                                   sim::MachineProfile::server());
    EXPECT_GT(local.seconds, global.seconds);
}

TEST(Simulator, SplitUsesBothResources)
{
    auto t = testfix::makeConvTransform(5);
    auto out = simulateTransform(*t, cfg2d(Backend::OpenClGlobal, 4),
                                 convSizes(1024, 5), {5},
                                 sim::MachineProfile::laptop());
    EXPECT_GT(out.gpuBusySeconds, 0.0);
    EXPECT_GT(out.cpuBusySeconds, 0.0);
}

TEST(Simulator, OpenClOnMachineWithoutItIsInfeasible)
{
    // FatalError, not PanicError: a GPU placement on a machine with no
    // OpenCL runtime is an infeasible *configuration* (the engines
    // price it +inf), which real machine profiles (BigLittle) and
    // cross-machine champion dispatch exercise routinely.
    auto t = testfix::makeConvTransform(5);
    sim::MachineProfile noOcl = sim::MachineProfile::desktop();
    noOcl.hasOpenCL = false;
    EXPECT_THROW(simulateTransform(*t, cfg2d(Backend::OpenClGlobal),
                                   convSizes(128, 5), {5}, noOcl),
                 FatalError);
}

TEST(Simulator, DeterministicAcrossCalls)
{
    auto t = testfix::makeConvTransform(5);
    auto a = simulateTransform(*t, cfg2d(Backend::OpenClGlobal),
                               convSizes(512, 5), {5},
                               sim::MachineProfile::desktop());
    auto b = simulateTransform(*t, cfg2d(Backend::OpenClGlobal),
                               convSizes(512, 5), {5},
                               sim::MachineProfile::desktop());
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

} // namespace
} // namespace compiler
} // namespace petabricks
