#include <gtest/gtest.h>

#include "compiler/admissibility.h"
#include "conv_fixture.h"

namespace petabricks {
namespace compiler {
namespace {

using lang::AccessPattern;
using lang::ChoiceDependencyGraph;
using lang::DimAccess;
using lang::ParamEnv;
using lang::PointArgs;
using lang::RuleDef;
using lang::SlotRole;
using lang::Transform;

std::shared_ptr<RuleDef>
simplePoint(const std::string &name, const std::string &out,
            std::vector<AccessPattern> accesses)
{
    return RuleDef::makePoint(
        name, out, std::move(accesses),
        [](const PointArgs &) { return 0.0; },
        [](const ParamEnv &) { return 1.0; });
}

TEST(Admissibility, DataParallelPointRuleConvertible)
{
    auto t = testfix::makeConvTransform(5);
    ChoiceDependencyGraph g(*t, 0);
    Admissibility adm = analyzeRule(g, 0);
    EXPECT_TRUE(adm.convertible);
    EXPECT_TRUE(adm.localMemCandidate); // 5x5 window
}

TEST(Admissibility, SeparablePassesBothConvertible)
{
    auto t = testfix::makeConvTransform(7);
    ChoiceDependencyGraph g(*t, 1);
    for (size_t i = 0; i < 2; ++i) {
        Admissibility adm = analyzeRule(g, i);
        EXPECT_TRUE(adm.convertible) << i;
        EXPECT_TRUE(adm.localMemCandidate) << i; // 1x7 / 7x1 windows
    }
}

TEST(Admissibility, PointAccessHasNoLocalVariant)
{
    // Bounding box of one: threads never share data, so no local
    // memory version is generated (Section 3.1 phase 3).
    Transform t("bs");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    t.choice("c", {simplePoint("bs", "Out",
                               {AccessPattern::point("In")})});
    ChoiceDependencyGraph g(t, 0);
    Admissibility adm = analyzeRule(g, 0);
    EXPECT_TRUE(adm.convertible);
    EXPECT_FALSE(adm.localMemCandidate);
}

TEST(Admissibility, FullExtentAccessHasNoLocalVariant)
{
    // Matmul-style full-row access: bounding box is not a constant.
    Transform t("mm");
    t.slot("A", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    t.choice("c",
             {simplePoint("mm", "Out",
                          {AccessPattern{"A", DimAccess::all(),
                                         DimAccess::window(0, 1)}})});
    ChoiceDependencyGraph g(t, 0);
    Admissibility adm = analyzeRule(g, 0);
    EXPECT_TRUE(adm.convertible);
    EXPECT_FALSE(adm.localMemCandidate);
}

TEST(Admissibility, WavefrontRejected)
{
    Transform t("wf");
    t.slot("Out", SlotRole::Output);
    auto wf = simplePoint(
        "wf", "Out",
        {AccessPattern{"Out", DimAccess::window(-1, 1),
                       DimAccess::window(0, 1)},
         AccessPattern{"Out", DimAccess::window(0, 1),
                       DimAccess::window(-1, 1)}});
    t.choice("c", {wf});
    ChoiceDependencyGraph g(t, 0);
    Admissibility adm = analyzeRule(g, 0);
    EXPECT_FALSE(adm.convertible);
    EXPECT_NE(adm.reason.find("wavefront"), std::string::npos);
}

TEST(Admissibility, ExternalLibraryRejected)
{
    Transform t("lapack");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    auto rule = simplePoint("lapack", "Out",
                            {AccessPattern::point("In")});
    rule->setCallsExternalLibrary(true);
    t.choice("c", {rule});
    ChoiceDependencyGraph g(t, 0);
    Admissibility adm = analyzeRule(g, 0);
    EXPECT_FALSE(adm.convertible);
    EXPECT_NE(adm.reason.find("external library"), std::string::npos);
}

TEST(Admissibility, RegionRuleRejected)
{
    Transform t("native");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    auto rule = RuleDef::makeRegion(
        "native", "Out", {"In"}, [](RuleDef::RegionRunArgs &) {},
        [](const Region &, const ParamEnv &) {
            return sim::CostReport{};
        });
    t.choice("c", {rule});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_FALSE(analyzeRule(g, 0).convertible);
}

TEST(Admissibility, TrialCompileFailureRejected)
{
    // The paper detects some OpenCL-implementation-specific constructs
    // only by attempting to compile and rejecting failures.
    Transform t("tricky");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    auto rule = simplePoint("tricky", "Out",
                            {AccessPattern::point("In")});
    rule->setOpenclCompileFails(true);
    t.choice("c", {rule});
    ChoiceDependencyGraph g(t, 0);
    Admissibility adm = analyzeRule(g, 0);
    EXPECT_FALSE(adm.convertible);
    EXPECT_NE(adm.reason.find("trial"), std::string::npos);
}

TEST(Admissibility, SequentialScanStillConvertible)
{
    // Sequential patterns can be mapped (run as a 1-item scan kernel).
    Transform t("scan");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    auto scan = simplePoint(
        "scan", "Out",
        {AccessPattern::point("In"),
         AccessPattern{"Out", DimAccess::window(0, 1),
                       DimAccess::window(-1, 1)}});
    t.choice("c", {scan});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_TRUE(analyzeRule(g, 0).convertible);
}

TEST(Admissibility, KernelCountForConvolution)
{
    // Conv: 3 distinct rules, all convertible, all local candidates
    // -> 6 synthetic kernels.
    auto t = testfix::makeConvTransform(5);
    EXPECT_EQ(countSynthesizedKernels(*t), 6);
}

} // namespace
} // namespace compiler
} // namespace petabricks
