// Golden-equality suite for the model-mode evaluation fast path.
//
// The EvaluationContext path (interned slot ids, coalescing residency,
// memoized stage costs, precomputed analytic constants, the reusable
// scheduler) must be *bit-identical* to the reference path — the
// per-call from-scratch implementation kept as the executable spec. No
// tolerance comparisons here: any divergence, however small, means the
// fast path changed the model.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "engine/execution_engine.h"
#include "support/rng.h"
#include "tuner/mutators.h"
#include "tuner/session.h"

namespace petabricks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Reference-path evaluation; +inf for infeasible placements. */
double
evalReference(const apps::Benchmark &benchmark,
              const tuner::Config &config, int64_t n,
              const sim::MachineProfile &machine)
{
    try {
        return benchmark.evaluate(config, n, machine);
    } catch (const FatalError &) {
        return kInf;
    }
}

double
evalFast(const apps::Benchmark &benchmark, const tuner::Config &config,
         int64_t n, const sim::MachineProfile &machine,
         const apps::EvalContext *ctx)
{
    try {
        return benchmark.evaluate(config, n, machine, ctx);
    } catch (const FatalError &) {
        return kInf;
    }
}

std::vector<tuner::Config>
mutatedPopulation(const apps::Benchmark &benchmark, int64_t n,
                  int count, uint64_t seed)
{
    tuner::Config base = benchmark.seedConfig();
    std::vector<tuner::MutatorPtr> mutators =
        tuner::generateMutators(base);
    Rng rng(seed);
    std::vector<tuner::Config> configs{base};
    while (configs.size() < static_cast<size_t>(count)) {
        tuner::Config config = base;
        int64_t edits = rng.uniformInt(1, 5);
        for (int64_t e = 0; e < edits; ++e) {
            size_t m = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(mutators.size()) - 1));
            mutators[m]->apply(config, rng, n);
        }
        configs.push_back(std::move(config));
    }
    return configs;
}

/** Fast == reference, bit for bit, on every machine profile. */
void
expectGoldenEquality(const apps::Benchmark &benchmark, int64_t n)
{
    for (const sim::MachineProfile &machine :
         sim::MachineProfile::all()) {
        apps::EvalContextPtr ctx =
            benchmark.makeEvalContext(n, machine);
        std::vector<tuner::Config> configs = mutatedPopulation(
            benchmark, n, 30,
            0xFA57 ^ static_cast<uint64_t>(n) ^
                std::hash<std::string>()(machine.name));
        for (const tuner::Config &config : configs) {
            double ref = evalReference(benchmark, config, n, machine);
            double fast =
                evalFast(benchmark, config, n, machine, ctx.get());
            if (std::isinf(ref))
                EXPECT_TRUE(std::isinf(fast))
                    << benchmark.name() << " n=" << n << " on "
                    << machine.name;
            else
                EXPECT_EQ(ref, fast) << benchmark.name() << " n=" << n
                                     << " on " << machine.name;

            // The count-only path must agree with the source list.
            EXPECT_EQ(benchmark.kernelCount(config, n),
                      static_cast<int>(
                          benchmark.kernelSources(config, n).size()))
                << benchmark.name() << " n=" << n;
        }
    }
}

TEST(EvalFastPath, BitIdenticalCostsAllBenchmarksTwoSizes)
{
    for (const apps::BenchmarkPtr &benchmark : apps::allBenchmarks()) {
        expectGoldenEquality(*benchmark, benchmark->minTuningSize());
        expectGoldenEquality(*benchmark, benchmark->testingInputSize());
    }
}

TEST(EvalFastPath, NullContextFallsBackToReference)
{
    auto benchmarks = apps::allBenchmarks();
    sim::MachineProfile machine = sim::MachineProfile::desktop();
    for (const apps::BenchmarkPtr &benchmark : benchmarks) {
        int64_t n = benchmark->minTuningSize();
        tuner::Config config = benchmark->seedConfig();
        EXPECT_EQ(evalReference(*benchmark, config, n, machine),
                  evalFast(*benchmark, config, n, machine, nullptr));
    }
}

/** Reference-path tuner evaluator: by-name, context-free evaluation. */
class ReferenceEvaluator : public tuner::Evaluator
{
  public:
    ReferenceEvaluator(const apps::Benchmark &benchmark,
                       const sim::MachineProfile &machine)
        : benchmark_(benchmark), machine_(machine)
    {}

    double
    evaluate(const tuner::Config &config, int64_t inputSize) override
    {
        return evalReference(benchmark_, config, inputSize, machine_);
    }

    std::vector<std::string>
    kernelSources(const tuner::Config &config,
                  int64_t inputSize) override
    {
        return benchmark_.kernelSources(config, inputSize);
    }

  private:
    const apps::Benchmark &benchmark_;
    const sim::MachineProfile &machine_;
};

/** A whole search over the fast path lands on the identical champion
 * (and identical accounting) as the reference path. */
TEST(EvalFastPath, TuningSessionChampionsMatchReferencePath)
{
    sim::MachineProfile machine = sim::MachineProfile::desktop();
    for (const apps::BenchmarkPtr &benchmark : apps::allBenchmarks()) {
        tuner::TunerOptions options;
        options.seed = 0x600D;
        options.populationSize = 6;
        options.generationsPerSize = 3;
        options.minInputSize = benchmark->minTuningSize();
        options.maxInputSize = benchmark->testingInputSize();
        options.kernelCompileSeconds = machine.kernelCompileSeconds;
        options.irCacheSavings = machine.irCacheSavings;

        // Fast path: ModelEngine threads an EvaluationContext through
        // every batched generation.
        engine::ModelEngine engine(machine, /*parallelism=*/2);
        tuner::TuningResult fast =
            apps::tuneWithEngine(*benchmark, engine, options);

        ReferenceEvaluator reference(*benchmark, machine);
        tuner::TuningSession session(reference,
                                     benchmark->seedConfig(), options);
        tuner::TuningResult ref = session.run();

        EXPECT_EQ(fast.best.valueFingerprint(),
                  ref.best.valueFingerprint())
            << benchmark->name();
        EXPECT_EQ(fast.bestSeconds, ref.bestSeconds)
            << benchmark->name();
        EXPECT_EQ(fast.evaluations, ref.evaluations)
            << benchmark->name();
    }
}

} // namespace
} // namespace petabricks
