#include <gtest/gtest.h>

#include "lang/rule.h"
#include "support/error.h"

namespace petabricks {
namespace lang {
namespace {

TEST(CellReader, OriginTranslation)
{
    double data[6] = {0, 1, 2, 3, 4, 5}; // 3x2, row-major
    CellReader plain(data, 3);
    EXPECT_EQ(plain.at(2, 1), 5.0);

    // A tile whose top-left corner sits at absolute (10, 20).
    CellReader tile(data, 3, 10, 20);
    EXPECT_EQ(tile.at(10, 20), 0.0);
    EXPECT_EQ(tile.at(12, 21), 5.0);
}

TEST(DimAccess, Factories)
{
    DimAccess w = DimAccess::window(-1, 3);
    EXPECT_FALSE(w.full);
    EXPECT_EQ(w.offset, -1);
    EXPECT_EQ(w.extent, 3);
    EXPECT_TRUE(DimAccess::all().full);
}

TEST(AccessPattern, ConstantBoundingBox)
{
    AccessPattern window{"In", DimAccess::window(0, 3),
                         DimAccess::window(0, 3)};
    EXPECT_EQ(window.constantBoundingBoxArea(), 9);

    AccessPattern row{"A", DimAccess::all(), DimAccess::window(0, 1)};
    EXPECT_EQ(row.constantBoundingBoxArea(), 0); // not a constant

    AccessPattern point = AccessPattern::point("B");
    EXPECT_EQ(point.constantBoundingBoxArea(), 1);
}

TEST(RuleDef, PointRuleBasics)
{
    auto rule = RuleDef::makePoint(
        "double", "Out", {AccessPattern::point("In")},
        [](const PointArgs &pt) { return 2.0 * pt.input(0).at(pt.x, pt.y); },
        [](const ParamEnv &) { return 1.0; });
    EXPECT_TRUE(rule->isPointRule());
    EXPECT_EQ(rule->outputSlot(), "Out");
    ASSERT_EQ(rule->inputSlots().size(), 1u);
    EXPECT_EQ(rule->inputSlots()[0], "In");
    EXPECT_DOUBLE_EQ(rule->flopsPerPoint({}), 1.0);
    EXPECT_FALSE(rule->hasInlineNativeCode());
}

TEST(RuleDef, PointBodyEvaluates)
{
    auto rule = RuleDef::makePoint(
        "sum3", "Out",
        {AccessPattern{"In", DimAccess::window(0, 3),
                       DimAccess::window(0, 1)}},
        [](const PointArgs &pt) {
            return pt.input(0).at(pt.x, pt.y) +
                   pt.input(0).at(pt.x + 1, pt.y) +
                   pt.input(0).at(pt.x + 2, pt.y);
        },
        [](const ParamEnv &) { return 2.0; });
    double data[5] = {1, 2, 3, 4, 5};
    std::vector<CellReader> readers{CellReader(data, 5)};
    ParamEnv params;
    PointArgs pt;
    pt.x = 1;
    pt.y = 0;
    pt.inputs = &readers;
    pt.params = &params;
    EXPECT_DOUBLE_EQ(rule->pointBody()(pt), 9.0);
}

TEST(RuleDef, RegionRuleIsNative)
{
    auto rule = RuleDef::makeRegion(
        "native", "Out", {"In"},
        [](RuleDef::RegionRunArgs &) {},
        [](const Region &r, const ParamEnv &) {
            sim::CostReport c;
            c.flops = static_cast<double>(r.area());
            return c;
        });
    EXPECT_FALSE(rule->isPointRule());
    EXPECT_TRUE(rule->hasInlineNativeCode());
    EXPECT_THROW(rule->accesses(), PanicError);
    EXPECT_THROW(rule->flopsPerPoint({}), PanicError);
    EXPECT_DOUBLE_EQ(rule->regionCost(Region(0, 0, 4, 4), {}).flops, 16.0);
}

TEST(RuleDef, FlagSetters)
{
    auto rule = RuleDef::makePoint(
        "r", "Out", {AccessPattern::point("In")},
        [](const PointArgs &) { return 0.0; },
        [](const ParamEnv &) { return 1.0; });
    rule->setCallsExternalLibrary(true);
    rule->setOpenclCompileFails(true);
    EXPECT_TRUE(rule->callsExternalLibrary());
    EXPECT_TRUE(rule->openclCompileFails());
}

TEST(PointArgs, ParamAccess)
{
    ParamEnv params{7, 9};
    PointArgs pt;
    pt.params = &params;
    EXPECT_EQ(pt.param(0), 7);
    EXPECT_EQ(pt.param(1), 9);
    EXPECT_THROW(pt.param(2), PanicError);
}

TEST(DependencyPatternNames, AllNamed)
{
    EXPECT_STREQ(dependencyPatternName(DependencyPattern::DataParallel),
                 "data-parallel");
    EXPECT_STREQ(dependencyPatternName(DependencyPattern::Sequential),
                 "sequential");
    EXPECT_STREQ(dependencyPatternName(DependencyPattern::Wavefront),
                 "wavefront");
}

} // namespace
} // namespace lang
} // namespace petabricks
