#include <gtest/gtest.h>

#include "../compiler/conv_fixture.h"
#include "lang/choice_graph.h"
#include "support/error.h"

namespace petabricks {
namespace lang {
namespace {

RulePtr
simplePoint(const std::string &name, const std::string &out,
            std::vector<AccessPattern> accesses)
{
    return RuleDef::makePoint(
        std::move(name), out, std::move(accesses),
        [](const PointArgs &) { return 0.0; },
        [](const ParamEnv &) { return 1.0; });
}

TEST(Transform, SlotAndChoiceRegistration)
{
    auto t = testfix::makeConvTransform(3);
    EXPECT_EQ(t->name(), "SeparableConvolution");
    EXPECT_EQ(t->slots().size(), 4u);
    EXPECT_EQ(t->choices().size(), 2u);
    EXPECT_EQ(t->choiceAt(0).name, "2d");
    EXPECT_EQ(t->choiceAt(1).rules.size(), 2u);
    EXPECT_TRUE(t->hasSlot("buffer"));
    EXPECT_FALSE(t->hasSlot("nope"));
    EXPECT_EQ(t->slotRole("Out"), SlotRole::Output);
    EXPECT_EQ(t->slotRole("buffer"), SlotRole::Intermediate);
}

TEST(Transform, DuplicateSlotRejected)
{
    Transform t("t");
    t.slot("A", SlotRole::Input);
    EXPECT_THROW(t.slot("A", SlotRole::Output), PanicError);
}

TEST(Transform, ChoiceWithUnknownSlotRejected)
{
    Transform t("t");
    t.slot("A", SlotRole::Input);
    t.slot("B", SlotRole::Output);
    auto bad = simplePoint("r", "C", {AccessPattern::point("A")});
    EXPECT_THROW(t.choice("c", {bad}), PanicError);
}

TEST(Transform, BindingValidation)
{
    auto t = testfix::makeConvTransform(3);
    Rng rng(1);
    Binding ok = testfix::makeConvBinding(16, 3, rng);
    EXPECT_NO_THROW(t->validateBinding(ok));
    Binding missing;
    EXPECT_THROW(t->validateBinding(missing), PanicError);
}

TEST(ChoiceGraph, VerticesAndEdges)
{
    auto t = testfix::makeConvTransform(3);
    ChoiceDependencyGraph g(*t, 1); // separable
    EXPECT_EQ(g.edges().size(), 2u);
    // Vertices: buffer, In, Kernel, Out (order of first touch).
    EXPECT_EQ(g.vertices().size(), 4u);
    EXPECT_EQ(g.edges()[0].sink, "buffer");
    EXPECT_EQ(g.edges()[1].sink, "Out");
}

TEST(ChoiceGraph, ProducerLookup)
{
    auto t = testfix::makeConvTransform(3);
    ChoiceDependencyGraph g(*t, 1);
    EXPECT_EQ(g.producerOf("buffer"), 0);
    EXPECT_EQ(g.producerOf("Out"), 1);
    EXPECT_EQ(g.producerOf("In"), -1); // transform input
}

TEST(ChoiceGraph, ExecutionOrderRespectsDataflow)
{
    auto t = testfix::makeConvTransform(3);
    ChoiceDependencyGraph g(*t, 1);
    auto order = g.executionOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0u); // rows before columns
    EXPECT_EQ(order[1], 1u);
    EXPECT_TRUE(g.isAcyclic());
}

TEST(ChoiceGraph, DataParallelPattern)
{
    auto t = testfix::makeConvTransform(3);
    ChoiceDependencyGraph g2d(*t, 0);
    EXPECT_EQ(g2d.pattern(0), DependencyPattern::DataParallel);
    ChoiceDependencyGraph gsep(*t, 1);
    EXPECT_EQ(gsep.pattern(0), DependencyPattern::DataParallel);
    EXPECT_EQ(gsep.pattern(1), DependencyPattern::DataParallel);
}

TEST(ChoiceGraph, SequentialScanDetected)
{
    // Out[x,y] reads Out[x, y-1]: a row scan over its own output.
    Transform t("scan");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    auto scan = simplePoint(
        "scan", "Out",
        {AccessPattern::point("In"),
         AccessPattern{"Out", DimAccess::window(0, 1),
                       DimAccess::window(-1, 1)}});
    t.choice("c", {scan});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_EQ(g.pattern(0), DependencyPattern::Sequential);
}

TEST(ChoiceGraph, LeftNeighborScanIsSequential)
{
    Transform t("scanx");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    auto scan = simplePoint(
        "scanx", "Out",
        {AccessPattern::point("In"),
         AccessPattern{"Out", DimAccess::window(-1, 1),
                       DimAccess::window(0, 1)}});
    t.choice("c", {scan});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_EQ(g.pattern(0), DependencyPattern::Sequential);
}

TEST(ChoiceGraph, WavefrontDetected)
{
    // Reads up-neighbor and left-neighbor of its own output: the
    // classic diagonal wavefront (e.g. in-place Gauss-Seidel).
    Transform t("wf");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    auto wf = simplePoint(
        "wf", "Out",
        {AccessPattern::point("In"),
         AccessPattern{"Out", DimAccess::window(-1, 1),
                       DimAccess::window(0, 1)},
         AccessPattern{"Out", DimAccess::window(0, 1),
                       DimAccess::window(-1, 1)}});
    t.choice("c", {wf});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_EQ(g.pattern(0), DependencyPattern::Wavefront);
}

TEST(ChoiceGraph, ForwardSelfReadIsWavefront)
{
    Transform t("fw");
    t.slot("Out", SlotRole::Output);
    auto fw = simplePoint("fw", "Out",
                          {AccessPattern{"Out", DimAccess::window(1, 1),
                                         DimAccess::window(0, 1)}});
    t.choice("c", {fw});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_EQ(g.pattern(0), DependencyPattern::Wavefront);
}

TEST(ChoiceGraph, FullSelfReadIsWavefront)
{
    Transform t("full");
    t.slot("Out", SlotRole::Output);
    auto full = simplePoint("full", "Out",
                            {AccessPattern{"Out", DimAccess::all(),
                                           DimAccess::window(0, 1)}});
    t.choice("c", {full});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_EQ(g.pattern(0), DependencyPattern::Wavefront);
}

TEST(ChoiceGraph, InPlacePointReadIsDataParallel)
{
    // Reading only your own cell (in-place update) is data parallel.
    Transform t("inplace");
    t.slot("Out", SlotRole::Output);
    auto r = simplePoint("inplace", "Out",
                         {AccessPattern::point("Out")});
    t.choice("c", {r});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_EQ(g.pattern(0), DependencyPattern::DataParallel);
}

TEST(ChoiceGraph, RegionRuleTreatedSequential)
{
    Transform t("native");
    t.slot("In", SlotRole::Input);
    t.slot("Out", SlotRole::Output);
    auto r = RuleDef::makeRegion(
        "native", "Out", {"In"}, [](RuleDef::RegionRunArgs &) {},
        [](const Region &, const ParamEnv &) {
            return sim::CostReport{};
        });
    t.choice("c", {r});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_EQ(g.pattern(0), DependencyPattern::Sequential);
}

TEST(ChoiceGraph, CyclicChoiceDetected)
{
    // Two rules each consuming the other's output: cyclic.
    Transform t("cyc");
    t.slot("A", SlotRole::Output);
    t.slot("B", SlotRole::Output);
    auto r1 = simplePoint("r1", "A", {AccessPattern::point("B")});
    auto r2 = simplePoint("r2", "B", {AccessPattern::point("A")});
    t.choice("c", {r1, r2});
    ChoiceDependencyGraph g(t, 0);
    EXPECT_FALSE(g.isAcyclic());
    EXPECT_THROW(g.executionOrder(), FatalError);
}

} // namespace
} // namespace lang
} // namespace petabricks
