/**
 * Batched evaluation across the engine layer: runBatch/measureBatch
 * defaults, ModelEngine's parallel batches (order-preserving, so
 * bit-identical to serial), EnginePool fan-out across RuntimeEngine
 * instances, and the concurrency gates that keep function-style
 * benchmarks (shared ChoiceFile) off the parallel path.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/convolution.h"
#include "benchmarks/sort.h"
#include "engine/engine_pool.h"
#include "engine/execution_engine.h"
#include "support/error.h"

namespace petabricks {
namespace engine {
namespace {

/** Model-only benchmark: cost = lws, throws for lws == 13, +inf for
 * lws > 500. */
class SyntheticBenchmark : public apps::Benchmark
{
  public:
    std::string name() const override { return "Synthetic"; }

    tuner::Config
    seedConfig() const override
    {
        tuner::Config config;
        config.addTunable({"lws", 1, 1024, 1, false});
        return config;
    }

    double
    evaluate(const tuner::Config &config, int64_t,
             const sim::MachineProfile &) const override
    {
        int64_t lws = config.tunableValue("lws");
        if (lws == 13)
            PB_FATAL("unlucky configuration");
        if (lws > 500)
            return std::numeric_limits<double>::infinity();
        return static_cast<double>(lws);
    }

    int64_t testingInputSize() const override { return 64; }
    int openclKernelCount() const override { return 0; }
    std::string
    describeConfig(const tuner::Config &, int64_t) const override
    {
        return "n/a";
    }
};

std::vector<tuner::Config>
syntheticBatch(const SyntheticBenchmark &bench,
               std::initializer_list<int64_t> values)
{
    std::vector<tuner::Config> configs;
    for (int64_t lws : values) {
        tuner::Config config = bench.seedConfig();
        config.tunable("lws").value = lws;
        configs.push_back(config);
    }
    return configs;
}

std::vector<tuner::Config>
convolutionBatch()
{
    std::vector<tuner::Config> configs;
    for (bool separable : {false, true})
        for (bool local : {false, true})
            configs.push_back(apps::ConvolutionBenchmark::fixedMapping(
                separable, local));
    return configs;
}

TEST(RunBatch, ParallelModelBatchMatchesSerialExactly)
{
    SyntheticBenchmark bench;
    auto configs = syntheticBatch(bench, {5, 1, 9, 700, 3, 8, 2, 44});

    ModelEngine serial(sim::MachineProfile::desktop(), 1);
    ModelEngine parallel(sim::MachineProfile::desktop(), 8);

    std::vector<double> a = serial.measureBatch(bench, configs, 64);
    std::vector<double> b = parallel.measureBatch(bench, configs, 64);
    ASSERT_EQ(a.size(), configs.size());
    ASSERT_EQ(b.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        if (std::isinf(a[i]))
            EXPECT_TRUE(std::isinf(b[i])) << i;
        else
            EXPECT_DOUBLE_EQ(a[i], b[i]) << i;
    }

    std::vector<RunResult> runs = parallel.runBatch(
        bench, syntheticBatch(bench, {5, 1, 9}), 64);
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_DOUBLE_EQ(runs[0].seconds, 5.0);
    EXPECT_DOUBLE_EQ(runs[1].seconds, 1.0);
    EXPECT_DOUBLE_EQ(runs[2].seconds, 9.0);
}

TEST(RunBatch, MeasureBatchPricesInfeasibleAsInfinityInsteadOfThrowing)
{
    SyntheticBenchmark bench;
    ModelEngine engine(sim::MachineProfile::desktop(), 4);
    auto configs = syntheticBatch(bench, {5, 13, 9});
    std::vector<double> seconds = engine.measureBatch(bench, configs, 64);
    ASSERT_EQ(seconds.size(), 3u);
    EXPECT_DOUBLE_EQ(seconds[0], 5.0);
    EXPECT_TRUE(std::isinf(seconds[1])); // FatalError -> +inf
    EXPECT_DOUBLE_EQ(seconds[2], 9.0);
}

TEST(RunBatch, RunBatchPropagatesTheFirstExceptionByIndex)
{
    SyntheticBenchmark bench;
    ModelEngine engine(sim::MachineProfile::desktop(), 4);
    auto configs = syntheticBatch(bench, {5, 13, 9});
    EXPECT_THROW(engine.runBatch(bench, configs, 64), FatalError);
}

TEST(RunBatch, DefaultImplementationLoopsOverRun)
{
    // RuntimeEngine does not override runBatch: the base-class loop
    // must execute every config serially on the one engine.
    apps::ConvolutionBenchmark conv(5);
    RuntimeEngine engine;
    auto configs = convolutionBatch();
    std::vector<RunResult> results = engine.runBatch(conv, configs, 48);
    ASSERT_EQ(results.size(), configs.size());
    for (const RunResult &result : results) {
        EXPECT_LE(result.maxError, conv.realModeTolerance());
        EXPECT_GT(result.seconds, 0.0);
    }
}

TEST(ConcurrencyGates, FunctionStyleBenchmarksRefuseConcurrentInstances)
{
    apps::ConvolutionBenchmark conv(5); // transform-style: safe
    apps::SortBenchmark sort;           // function-style: shared ChoiceFile
    EXPECT_TRUE(conv.realModeConcurrencySafe());
    EXPECT_FALSE(sort.realModeConcurrencySafe());

    RuntimeEngine runtime;
    EXPECT_TRUE(runtime.concurrentInstancesSafe(conv));
    EXPECT_FALSE(runtime.concurrentInstancesSafe(sort));

    ModelEngine model(sim::MachineProfile::desktop());
    EXPECT_TRUE(model.concurrentInstancesSafe(sort)); // model mode is pure
}

TEST(EnginePool, FansBatchAcrossRuntimeInstances)
{
    apps::ConvolutionBenchmark conv(5);
    EnginePool pool([] { return std::make_unique<RuntimeEngine>(); }, 3);
    EXPECT_EQ(pool.engineCount(), 3);
    EXPECT_TRUE(pool.supports(conv));

    auto configs = convolutionBatch();
    std::vector<RunResult> results = pool.runBatch(conv, configs, 48);
    ASSERT_EQ(results.size(), configs.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_LE(results[i].maxError, conv.realModeTolerance()) << i;
        EXPECT_GT(results[i].seconds, 0.0) << i;
    }
    // All three engines' devices saw kernel launches: the batch really
    // fanned out (4 configs round-robin over 3 engines).
    for (int e = 0; e < pool.engineCount(); ++e) {
        auto *runtimeEngine =
            dynamic_cast<RuntimeEngine *>(&pool.engineAt(e));
        ASSERT_NE(runtimeEngine, nullptr);
        EXPECT_GT(runtimeEngine->device()->stats().launches, 0) << e;
    }
}

TEST(EnginePool, SerializesUnsafeBenchmarksInsteadOfRacing)
{
    // Sort shares an armed ChoiceFile: the pool must degrade to a
    // serial loop on one engine and still return correct results.
    apps::SortBenchmark sort;
    EnginePool pool([] { return std::make_unique<RuntimeEngine>(); }, 2);
    EXPECT_FALSE(pool.concurrentInstancesSafe(sort));

    std::vector<tuner::Config> configs(3, sort.seedConfig());
    std::vector<RunResult> results = pool.runBatch(sort, configs, 512);
    ASSERT_EQ(results.size(), 3u);
    for (const RunResult &result : results)
        EXPECT_LE(result.maxError, sort.realModeTolerance());
}

TEST(EnginePool, ModelPoolMatchesSingleEngine)
{
    SyntheticBenchmark bench;
    auto configs = syntheticBatch(bench, {7, 700, 2, 13, 41});

    ModelEngine reference(sim::MachineProfile::desktop(), 1);
    EnginePool pool(
        [] {
            return std::make_unique<ModelEngine>(
                sim::MachineProfile::desktop(), 1);
        },
        4);

    std::vector<double> a =
        reference.measureBatch(bench, configs, 64);
    std::vector<double> b = pool.measureBatch(bench, configs, 64);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::isinf(a[i]))
            EXPECT_TRUE(std::isinf(b[i])) << i;
        else
            EXPECT_DOUBLE_EQ(a[i], b[i]) << i;
    }

    // Single-config entry points delegate to the first engine.
    EXPECT_DOUBLE_EQ(pool.measure(bench, configs[0], 64), 7.0);
    EXPECT_DOUBLE_EQ(pool.run(bench, configs[2], 64).seconds, 2.0);
    EXPECT_EQ(pool.name().rfind("pool[4]:", 0), 0u);
}

TEST(EnginePool, ConfiguresTunerLikeItsEngines)
{
    sim::MachineProfile laptop = sim::MachineProfile::laptop();
    EnginePool pool(
        [&] { return std::make_unique<ModelEngine>(laptop); }, 2);
    tuner::TunerOptions options;
    pool.configureTuner(options);
    EXPECT_DOUBLE_EQ(options.kernelCompileSeconds,
                     laptop.kernelCompileSeconds);
    EXPECT_DOUBLE_EQ(options.irCacheSavings, laptop.irCacheSavings);
}

} // namespace
} // namespace engine
} // namespace petabricks
