/**
 * The fault-tolerance layer: deterministic fault injection, the
 * engine-level retry/backoff budget, the pool's quarantine and
 * watchdog machinery, and the tuner's never-cache-a-failure policy.
 * Every expectation here is exact — the injection schedule is a pure
 * hash of (config fingerprint, input size, seed), so there are no
 * flaky sleeps or probabilistic assertions.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "benchmarks/convolution.h"
#include "engine/engine_pool.h"
#include "engine/execution_engine.h"
#include "engine/fault_injection.h"
#include "support/error.h"
#include "tuner/session.h"

namespace petabricks {
namespace engine {
namespace {

/** Model-only benchmark: cost = lws, throws for lws == 13, +inf for
 * lws > 500 (mirrors the engine-pool test fixture). */
class SyntheticBenchmark : public apps::Benchmark
{
  public:
    std::string name() const override { return "Synthetic"; }

    tuner::Config
    seedConfig() const override
    {
        tuner::Config config;
        config.addTunable({"lws", 1, 1024, 1, false});
        return config;
    }

    double
    evaluate(const tuner::Config &config, int64_t,
             const sim::MachineProfile &) const override
    {
        int64_t lws = config.tunableValue("lws");
        if (lws == 13)
            PB_FATAL("unlucky configuration");
        if (lws > 500)
            return std::numeric_limits<double>::infinity();
        return static_cast<double>(lws);
    }

    int64_t testingInputSize() const override { return 64; }
    int openclKernelCount() const override { return 0; }
    std::string
    describeConfig(const tuner::Config &, int64_t) const override
    {
        return "n/a";
    }
};

std::vector<tuner::Config>
syntheticBatch(const SyntheticBenchmark &bench,
               std::initializer_list<int64_t> values)
{
    std::vector<tuner::Config> configs;
    for (int64_t lws : values) {
        tuner::Config config = bench.seedConfig();
        config.tunable("lws").value = lws;
        configs.push_back(config);
    }
    return configs;
}

std::unique_ptr<FaultInjectingEngine>
faultyModelEngine(FaultPlan plan)
{
    return std::make_unique<FaultInjectingEngine>(
        std::make_unique<ModelEngine>(sim::MachineProfile::desktop(), 1),
        plan);
}

TEST(FaultInjection, ScheduleIsDeterministicAcrossEngines)
{
    SyntheticBenchmark bench;
    auto configs =
        syntheticBatch(bench, {5, 1, 9, 3, 8, 2, 44, 17, 23, 99});

    FaultPlan plan;
    plan.transientRate = 0.5;
    plan.faultsPerKey = 1;

    auto a = faultyModelEngine(plan);
    auto b = faultyModelEngine(plan);
    std::vector<double> ra = a->measureBatch(bench, configs, 64);
    std::vector<double> rb = b->measureBatch(bench, configs, 64);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i)
        EXPECT_DOUBLE_EQ(ra[i], rb[i]) << i;

    // The same keys faulted in both engines — not just the same count.
    EXPECT_EQ(a->faultStats().transients, b->faultStats().transients);
    EXPECT_GT(a->faultStats().transients, 0);

    // A different seed draws a different schedule (deterministically:
    // this comparison is exact, not probabilistic).
    FaultPlan reseeded = plan;
    reseeded.seed = 0xfeedface;
    auto c = faultyModelEngine(reseeded);
    c->measureBatch(bench, configs, 64);
    EXPECT_NE(c->faultStats().transients, a->faultStats().transients);
}

TEST(FaultInjection, RetryBudgetAbsorbsRecoverableFaults)
{
    SyntheticBenchmark bench;
    auto configs = syntheticBatch(bench, {5, 1, 9, 700, 3, 8, 2, 44});

    ModelEngine clean(sim::MachineProfile::desktop(), 1);
    std::vector<double> expected = clean.measureBatch(bench, configs, 64);

    FaultPlan plan;
    plan.transientRate = 0.5; // every faulting key recovers on retry
    plan.faultsPerKey = 1;
    auto faulty = faultyModelEngine(plan);
    std::vector<double> got = faulty->measureBatch(bench, configs, 64);

    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
        if (std::isinf(expected[i]))
            EXPECT_TRUE(std::isinf(got[i])) << i;
        else
            EXPECT_DOUBLE_EQ(got[i], expected[i]) << i;
    }

    EngineFailureStats stats = faulty->failureStats();
    EXPECT_GT(stats.transientFailures, 0);
    EXPECT_EQ(stats.retries, stats.transientFailures);
    EXPECT_EQ(stats.evaluationFailures, 0);
    EXPECT_EQ(faulty->faultStats().transients, stats.transientFailures);
}

TEST(FaultInjection, ExhaustedRetriesYieldTheNaNSentinel)
{
    SyntheticBenchmark bench;
    auto configs = syntheticBatch(bench, {5, 9, 44});

    FaultPlan plan;
    plan.transientRate = 1.0; // every key faults...
    plan.faultsPerKey = -1;   // ...and never recovers
    auto faulty = faultyModelEngine(plan);
    std::vector<double> got = faulty->measureBatch(bench, configs, 64);

    ASSERT_EQ(got.size(), configs.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(std::isnan(got[i])) << i;

    EngineFailureStats stats = faulty->failureStats();
    const int maxAttempts = faulty->retryPolicy().maxAttempts;
    EXPECT_EQ(stats.evaluationFailures,
              static_cast<int64_t>(configs.size()));
    EXPECT_EQ(stats.transientFailures,
              static_cast<int64_t>(configs.size()) * maxAttempts);
    EXPECT_EQ(stats.retries,
              static_cast<int64_t>(configs.size()) * (maxAttempts - 1));
}

TEST(FaultInjection, InfeasibleConfigsAreNeverRetried)
{
    // FatalError (infeasible) is deterministic: it must price as +inf
    // on the first attempt, with no retries burned on it.
    SyntheticBenchmark bench;
    auto configs = syntheticBatch(bench, {13});

    FaultPlan plan; // no faults injected at all
    auto faulty = faultyModelEngine(plan);
    std::vector<double> got = faulty->measureBatch(bench, configs, 64);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_TRUE(std::isinf(got[0]));
    EXPECT_EQ(faulty->failureStats().retries, 0);
    EXPECT_EQ(faulty->failureStats().evaluationFailures, 0);
}

TEST(FaultInjection, PerturbationScalesSuccessfulCosts)
{
    SyntheticBenchmark bench;
    auto configs = syntheticBatch(bench, {5, 9});

    FaultPlan plan;
    plan.perturbRate = 1.0;
    plan.perturbFactor = 2.0;
    auto faulty = faultyModelEngine(plan);
    std::vector<double> got = faulty->measureBatch(bench, configs, 64);
    EXPECT_DOUBLE_EQ(got[0], 10.0);
    EXPECT_DOUBLE_EQ(got[1], 18.0);
    EXPECT_EQ(faulty->faultStats().perturbations, 2);
}

TEST(FaultInjection, PoolQuarantinesAFlakyInstanceAndDegrades)
{
    SyntheticBenchmark bench;
    auto configs =
        syntheticBatch(bench, {5, 1, 9, 3, 8, 2, 44, 17, 23, 99, 37, 6});

    // Instance 0 fails everything forever; instance 1 is clean.
    int built = 0;
    PoolOptions options;
    options.quarantineAfter = 2;
    EnginePool pool(
        [&]() -> std::unique_ptr<ExecutionEngine> {
            FaultPlan plan;
            if (built++ == 0) {
                plan.transientRate = 1.0;
                plan.faultsPerKey = -1;
            }
            return faultyModelEngine(plan);
        },
        2, options);

    std::vector<double> got = pool.measureBatch(bench, configs, 64);

    // Every item lands correctly via the surviving instance.
    ModelEngine clean(sim::MachineProfile::desktop(), 1);
    std::vector<double> expected = clean.measureBatch(bench, configs, 64);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_DOUBLE_EQ(got[i], expected[i]) << i;

    EXPECT_TRUE(pool.instanceStats(0).quarantined);
    EXPECT_FALSE(pool.instanceStats(1).quarantined);
    EXPECT_EQ(pool.liveInstanceCount(), 1);
    EXPECT_GE(pool.instanceStats(0).transientFailures,
              options.quarantineAfter);
    EXPECT_EQ(pool.instanceStats(1).transientFailures, 0);
    EXPECT_GT(pool.instanceStats(1).calls, 0);
}

TEST(FaultInjection, LastLiveInstanceFailingYieldsNaNNotQuarantine)
{
    SyntheticBenchmark bench;
    auto configs = syntheticBatch(bench, {5, 9});

    PoolOptions options;
    options.quarantineAfter = 2;
    EnginePool pool(
        [] {
            FaultPlan plan;
            plan.transientRate = 1.0;
            plan.faultsPerKey = -1;
            return faultyModelEngine(plan);
        },
        1, options);

    std::vector<double> got = pool.measureBatch(bench, configs, 64);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(std::isnan(got[i])) << i;
    // Plain transients never quarantine the final live instance: a
    // degraded pool must keep limping, not go dark.
    EXPECT_FALSE(pool.instanceStats(0).quarantined);
    EXPECT_EQ(pool.liveInstanceCount(), 1);
    EXPECT_GT(pool.failureStats().evaluationFailures, 0);
}

TEST(FaultInjection, WatchdogConvertsHangsIntoQuarantine)
{
    SyntheticBenchmark bench;
    auto configs = syntheticBatch(bench, {5, 1, 9, 3});

    // Instance 0 hangs far past the deadline on every key; instance 1
    // is clean. The watchdog must declare the hang transient, bounce
    // the item, and quarantine the wedged instance unconditionally.
    int built = 0;
    PoolOptions options;
    options.deadlineMillis = 40;
    EnginePool pool(
        [&]() -> std::unique_ptr<ExecutionEngine> {
            FaultPlan plan;
            if (built++ == 0) {
                plan.transientRate = 1.0;
                plan.faultsPerKey = -1;
                plan.hangRate = 1.0;
                plan.hangMillis = 2000;
            }
            return faultyModelEngine(plan);
        },
        2, options);

    std::vector<double> got = pool.measureBatch(bench, configs, 64);
    ModelEngine clean(sim::MachineProfile::desktop(), 1);
    std::vector<double> expected = clean.measureBatch(bench, configs, 64);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_DOUBLE_EQ(got[i], expected[i]) << i;

    EXPECT_TRUE(pool.instanceStats(0).quarantined);
    EXPECT_GT(pool.instanceStats(0).timeouts, 0);
    EXPECT_EQ(pool.liveInstanceCount(), 1);
}

TEST(FaultInjection, TuningChampionIsByteIdenticalUnderRecoverableFaults)
{
    // The acceptance bar of the whole layer: a search whose every
    // injected fault recovers within the retry budget must converge to
    // exactly the champion a clean search finds.
    apps::ConvolutionBenchmark bench(5);

    auto tune = [&](std::unique_ptr<ExecutionEngine> engine) {
        EngineEvaluator evaluator(bench, *engine);
        tuner::TunerOptions options;
        options.minInputSize = bench.minTuningSize();
        options.maxInputSize = bench.testingInputSize();
        engine->configureTuner(options);
        tuner::TuningSession session(evaluator, bench.seedConfig(),
                                     options);
        return session.run();
    };

    tuner::TuningResult clean = tune(std::make_unique<ModelEngine>(
        sim::MachineProfile::desktop(), 1));

    FaultPlan plan;
    plan.transientRate = 0.2;
    plan.faultsPerKey = 1;
    tuner::TuningResult faulted = tune(faultyModelEngine(plan));

    EXPECT_EQ(faulted.best.toKv().toString(),
              clean.best.toKv().toString());
    EXPECT_DOUBLE_EQ(faulted.bestSeconds, clean.bestSeconds);
    EXPECT_EQ(faulted.evaluationFailures, 0);
}

/** Evaluator whose evaluateBatch reports one chosen cost as the NaN
 * "failed after retries" sentinel every time it is asked. */
class AlwaysFailingEvaluator : public tuner::Evaluator
{
  public:
    explicit AlwaysFailingEvaluator(int64_t failingLws)
        : failingLws_(failingLws)
    {}

    double
    evaluate(const tuner::Config &config, int64_t) override
    {
        return static_cast<double>(config.tunableValue("lws"));
    }

    std::vector<double>
    evaluateBatch(std::span<const tuner::Config> configs,
                  int64_t) override
    {
        std::vector<double> seconds;
        for (const tuner::Config &config : configs) {
            int64_t lws = config.tunableValue("lws");
            if (lws == failingLws_) {
                ++failingAsked_;
                seconds.push_back(
                    std::numeric_limits<double>::quiet_NaN());
            } else {
                seconds.push_back(static_cast<double>(lws));
            }
        }
        return seconds;
    }

    int failingAsked() const { return failingAsked_; }

  private:
    int64_t failingLws_;
    int failingAsked_ = 0;
};

TEST(FaultInjection, FailedEvaluationsAreNeverCachedAsRealCosts)
{
    // The seed config's cost is the NaN sentinel on every ask. One
    // generation per size with a roomy population keeps the seed alive
    // into the second input size, where the survivor re-measure must
    // ask the evaluator *again* — a cached worst-cost substitute would
    // have answered from the cache instead.
    SyntheticBenchmark bench;
    tuner::Config seed = bench.seedConfig();
    seed.tunable("lws").value = 7;

    AlwaysFailingEvaluator evaluator(7);
    tuner::TunerOptions options;
    options.populationSize = 8;
    options.generationsPerSize = 1;
    options.minInputSize = 64;
    options.maxInputSize = 256;
    options.sizeGrowthFactor = 4;
    tuner::TuningSession session(evaluator, seed, options);
    tuner::TuningResult result = session.run();

    EXPECT_GE(evaluator.failingAsked(), 2);
    EXPECT_EQ(result.evaluationFailures, evaluator.failingAsked());
    // The failing key never entered the cache, at either size.
    tuner::EvaluationCache cache = session.cache();
    EXPECT_FALSE(cache.lookup(seed, 64).has_value());
    EXPECT_FALSE(cache.lookup(seed, 256).has_value());
    // The failure was priced as worst cost: it can never be champion.
    EXPECT_NE(result.best.tunableValue("lws"), 7);
    EXPECT_FALSE(std::isnan(result.bestSeconds));
    EXPECT_FALSE(std::isinf(result.bestSeconds));
}

} // namespace
} // namespace engine
} // namespace petabricks
