/**
 * The unified ExecutionEngine API: every benchmark must run through
 * RuntimeEngine on the emulated OpenCL device within its residual
 * tolerance, ModelEngine must agree with direct model evaluation, and
 * the autotuner must accept either engine through the same
 * tuner::Evaluator interface.
 */
#include <gtest/gtest.h>

#include "benchmarks/backend_util.h"
#include "benchmarks/convolution.h"
#include "benchmarks/registry.h"
#include "benchmarks/sort.h"
#include "benchmarks/svd.h"
#include "engine/execution_engine.h"

namespace petabricks {
namespace engine {
namespace {

TEST(RuntimeEngine, RunsAllSevenBenchmarksWithinTolerance)
{
    RuntimeEngine engine;
    for (const apps::BenchmarkPtr &bench : apps::allBenchmarks()) {
        ASSERT_TRUE(bench->supportsRealMode()) << bench->name();
        ASSERT_TRUE(engine.supports(*bench)) << bench->name();
        RunResult result = engine.run(*bench, bench->seedConfig(),
                                      bench->realModeProbeSize());
        EXPECT_LE(result.maxError, bench->realModeTolerance())
            << bench->name();
        EXPECT_GT(result.seconds, 0.0) << bench->name();
    }
}

TEST(RuntimeEngine, TunedConfigsStayCorrect)
{
    // Non-seed choices must also execute correctly: push every
    // transform-style benchmark onto the GPU and every function-style
    // benchmark onto a non-default algorithm.
    RuntimeEngine engine;

    apps::ConvolutionBenchmark conv(5);
    tuner::Config gpuConv =
        apps::ConvolutionBenchmark::fixedMapping(/*separable=*/true,
                                                 /*localMem=*/true);
    RunResult convResult = engine.run(conv, gpuConv, 48);
    EXPECT_LE(convResult.maxError, conv.realModeTolerance());
    EXPECT_EQ(convResult.kernelCount, 2); // rows + columns kernels

    apps::SortBenchmark sort;
    tuner::Config poly = sort.seedConfig();
    tuner::Selector &s = poly.selector("Sort.algorithm");
    s.setAlgorithm(0, apps::kSortInsertion);
    s.insertLevel(64, apps::kSortMerge4);
    s.insertLevel(1024, apps::kSortQuick);
    RunResult sortResult = engine.run(sort, poly, 20000);
    EXPECT_LE(sortResult.maxError, sort.realModeTolerance());
}

TEST(RuntimeEngine, GpuPlacementUsesTheManagedDevice)
{
    RuntimeEngine engine;
    apps::ConvolutionBenchmark conv(5);
    int64_t before = engine.device()->stats().launches;
    engine.run(conv,
               apps::ConvolutionBenchmark::fixedMapping(false, false),
               48);
    EXPECT_GT(engine.device()->stats().launches, before);
}

TEST(ModelEngine, MatchesDirectEvaluation)
{
    sim::MachineProfile desktop = sim::MachineProfile::desktop();
    ModelEngine engine(desktop);
    for (const apps::BenchmarkPtr &bench : apps::allBenchmarks()) {
        tuner::Config seed = bench->seedConfig();
        int64_t n = bench->testingInputSize();
        RunResult result = engine.run(*bench, seed, n);
        EXPECT_DOUBLE_EQ(result.seconds,
                         bench->evaluate(seed, n, desktop))
            << bench->name();
        EXPECT_EQ(result.maxError, 0.0);
        EXPECT_EQ(result.kernelCount,
                  static_cast<int>(bench->kernelSources(seed, n).size()));
    }
}

TEST(ModelEngine, ConfiguresTunerFromMachineProfile)
{
    sim::MachineProfile laptop = sim::MachineProfile::laptop();
    ModelEngine engine(laptop);
    tuner::TunerOptions options;
    engine.configureTuner(options);
    EXPECT_DOUBLE_EQ(options.kernelCompileSeconds,
                     laptop.kernelCompileSeconds);
    EXPECT_DOUBLE_EQ(options.irCacheSavings, laptop.irCacheSavings);
}

tuner::TunerOptions
tinySearch(uint64_t seed)
{
    tuner::TunerOptions options;
    options.seed = seed;
    options.populationSize = 3;
    options.generationsPerSize = 2;
    options.minInputSize = 256;
    options.maxInputSize = 1024;
    options.trialsPerEvaluation = 1;
    return options;
}

TEST(EngineEvaluator, TunerAcceptsEitherEngine)
{
    apps::SortBenchmark sort;

    ModelEngine model(sim::MachineProfile::desktop());
    tuner::TuningResult modelTuned =
        apps::tuneWithEngine(sort, model, tinySearch(7));
    EXPECT_GT(modelTuned.evaluations, 0);
    EXPECT_TRUE(std::isfinite(modelTuned.bestSeconds));

    // The paper's actual methodology: the same search, evaluating
    // candidates by really executing them.
    RuntimeEngine runtime;
    tuner::TuningResult realTuned =
        apps::tuneWithEngine(sort, runtime, tinySearch(7));
    EXPECT_GT(realTuned.evaluations, 0);
    EXPECT_TRUE(std::isfinite(realTuned.bestSeconds));
    EXPECT_GT(realTuned.bestSeconds, 0.0);
}

TEST(EngineEvaluator, InfeasibleConfigEvaluatesToInfinity)
{
    // A CPU-only runtime cannot run benchmarks, but an unarmed
    // real-mode surface must surface as +inf, not crash the tuner.
    class NoRealMode : public apps::Benchmark
    {
      public:
        std::string name() const override { return "NoRealMode"; }
        tuner::Config seedConfig() const override { return {}; }
        double
        evaluate(const tuner::Config &, int64_t,
                 const sim::MachineProfile &) const override
        {
            return 1.0;
        }
        int64_t testingInputSize() const override { return 64; }
        int openclKernelCount() const override { return 0; }
        std::string
        describeConfig(const tuner::Config &, int64_t) const override
        {
            return "n/a";
        }
    };

    NoRealMode bench;
    RuntimeEngine engine;
    EXPECT_FALSE(engine.supports(bench));
    EXPECT_THROW(engine.run(bench, bench.seedConfig(), 64), FatalError);

    EngineEvaluator evaluator(bench, engine);
    EXPECT_TRUE(std::isinf(evaluator.evaluate(bench.seedConfig(), 64)));
}

TEST(RuntimeEngine, MeasurePricesInaccurateResultsAsInfeasible)
{
    // The variable-accuracy mechanism must survive the engine swap: a
    // truncation rank that misses the accuracy target is fast but
    // wrong, and the tuner's measure() path must never select it.
    apps::SvdBenchmark svd;
    RuntimeEngine engine;
    tuner::Config lowRank = svd.seedConfig();
    lowRank.tunable("SVD.k8").value = 1;
    EXPECT_GT(engine.run(svd, lowRank, 32).maxError,
              svd.realModeTolerance());
    EXPECT_TRUE(std::isinf(engine.measure(svd, lowRank, 32)));

    tuner::Config fullRank = svd.seedConfig(); // k8 = 8
    double feasible = engine.measure(svd, fullRank, 32);
    EXPECT_TRUE(std::isfinite(feasible));
    EXPECT_GT(feasible, 0.0);
}

TEST(Benchmark, TuneWithEngineRejectsUnsupportedPairing)
{
    class NoRealMode : public apps::Benchmark
    {
      public:
        std::string name() const override { return "NoRealMode"; }
        tuner::Config seedConfig() const override { return {}; }
        double
        evaluate(const tuner::Config &, int64_t,
                 const sim::MachineProfile &) const override
        {
            return 1.0;
        }
        int64_t testingInputSize() const override { return 64; }
        int openclKernelCount() const override { return 0; }
        std::string
        describeConfig(const tuner::Config &, int64_t) const override
        {
            return "n/a";
        }
    };

    NoRealMode bench;
    RuntimeEngine engine;
    EXPECT_THROW(apps::tuneWithEngine(bench, engine, tinySearch(1)),
                 FatalError);
}

TEST(Benchmark, TuneOnMachineStillDeterministic)
{
    apps::SortBenchmark sort;
    sim::MachineProfile desktop = sim::MachineProfile::desktop();
    tuner::TuningResult a = apps::tuneOnMachine(sort, desktop, 99);
    tuner::TuningResult b = apps::tuneOnMachine(sort, desktop, 99);
    EXPECT_EQ(a.best, b.best);
    EXPECT_DOUBLE_EQ(a.bestSeconds, b.bestSeconds);
}

} // namespace
} // namespace engine
} // namespace petabricks
