#include <gtest/gtest.h>

#include <vector>

#include "ocl/queue.h"
#include "sim/machine.h"

namespace petabricks {
namespace ocl {
namespace {

struct QueueFixture : ::testing::Test
{
    QueueFixture()
        : device(sim::MachineProfile::desktop().ocl), queue(device)
    {}
    Device device;
    CommandQueue queue;
};

TEST_F(QueueFixture, WriteThenReadRoundTrip)
{
    auto buf = std::make_shared<Buffer>(8 * 8);
    std::vector<double> src{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<double> dst(8, 0.0);
    queue.enqueueWrite(buf, src.data(), 64);
    auto read = queue.enqueueRead(buf, dst.data(), 64);
    read->wait();
    EXPECT_EQ(dst, src);
}

TEST_F(QueueFixture, EnqueueIsNonBlocking)
{
    // A write's event starts out not-complete from the caller's view
    // (it may complete quickly, but enqueue must not wait for it).
    auto buf = std::make_shared<Buffer>(1 << 20);
    std::vector<double> src(1 << 17, 1.0);
    auto ev = queue.enqueueWrite(buf, src.data(), 1 << 20);
    EXPECT_NO_THROW(ev->wait());
    EXPECT_TRUE(ev->isComplete());
}

TEST_F(QueueFixture, InOrderExecution)
{
    // Two writes to the same location retire in enqueue order.
    auto buf = std::make_shared<Buffer>(8);
    double one = 1.0, two = 2.0, out = 0.0;
    queue.enqueueWrite(buf, &one, 8);
    queue.enqueueWrite(buf, &two, 8);
    queue.enqueueRead(buf, &out, 8)->wait();
    EXPECT_EQ(out, 2.0);
}

TEST_F(QueueFixture, FinishDrainsEverything)
{
    auto buf = std::make_shared<Buffer>(8 * 1024);
    std::vector<double> src(1024, 3.0);
    for (int i = 0; i < 32; ++i)
        queue.enqueueWrite(buf, src.data(), 8 * 1024);
    queue.finish();
    EXPECT_EQ(queue.stats().writes, 32);
}

TEST_F(QueueFixture, KernelLaunchThroughQueue)
{
    auto x = std::make_shared<Buffer>(16 * 8);
    auto y = std::make_shared<Buffer>(16 * 8);
    for (int i = 0; i < 16; ++i)
        x->as<double>()[i] = i;
    auto kernel = std::make_shared<Kernel>(
        "inc", "kernel:inc",
        [](GroupCtx &ctx) {
            const double *in = ctx.args().buffer(0).as<double>();
            double *out = ctx.args().buffer(1).as<double>();
            ctx.forEachItem([&](int64_t gx, int64_t, int64_t, int64_t) {
                out[gx] = in[gx] + 1.0;
            });
        },
        [](const KernelArgs &, const NDRange &range) {
            sim::CostReport c;
            c.flops = static_cast<double>(range.items());
            return c;
        });
    KernelArgs args;
    args.buffers = {x, y};
    auto ev = queue.enqueueKernel(kernel, args, NDRange::linear(16, 4));
    ev->wait();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(y->as<double>()[i], i + 1.0);
    EXPECT_EQ(queue.stats().kernels, 1);
}

TEST_F(QueueFixture, RectWriteReadRoundTrip)
{
    // 4x4 matrix; move only the center 2x2 block.
    const int64_t w = 4;
    auto buf = std::make_shared<Buffer>(16 * 8);
    std::vector<double> host(16);
    for (int i = 0; i < 16; ++i)
        host[static_cast<size_t>(i)] = i;
    Region center(1, 1, 2, 2);
    queue.enqueueWriteRect(buf, host.data(), w, center);
    queue.finish();
    // Only the center block landed in the buffer.
    EXPECT_EQ(buf->as<double>()[1 * 4 + 1], 5.0);
    EXPECT_EQ(buf->as<double>()[2 * 4 + 2], 10.0);
    EXPECT_EQ(buf->as<double>()[0], 0.0);

    std::vector<double> back(16, -1.0);
    queue.enqueueReadRect(buf, back.data(), w, center)->wait();
    EXPECT_EQ(back[5], 5.0);
    EXPECT_EQ(back[10], 10.0);
    EXPECT_EQ(back[0], -1.0); // untouched outside the rect
}

TEST_F(QueueFixture, RectTrafficCounted)
{
    auto buf = std::make_shared<Buffer>(64 * 64 * 8);
    std::vector<double> host(64 * 64, 0.0);
    queue.enqueueWriteRect(buf, host.data(), 64, Region(0, 0, 64, 16));
    queue.finish();
    EXPECT_DOUBLE_EQ(queue.stats().bytesIn, 64 * 16 * 8.0);
}

TEST_F(QueueFixture, BoundsChecked)
{
    auto buf = std::make_shared<Buffer>(64);
    double x = 0;
    EXPECT_THROW(queue.enqueueWrite(buf, &x, 128), PanicError);
    EXPECT_THROW(queue.enqueueRead(buf, &x, 8, 60), PanicError);
    std::vector<double> host(16);
    EXPECT_THROW(
        queue.enqueueWriteRect(buf, host.data(), 4, Region(2, 0, 4, 1)),
        PanicError);
}

} // namespace
} // namespace ocl
} // namespace petabricks
