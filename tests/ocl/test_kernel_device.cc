#include <gtest/gtest.h>

#include "ocl/device.h"
#include "ocl/kernel.h"
#include "sim/machine.h"
#include "support/error.h"

namespace petabricks {
namespace ocl {
namespace {

Device
makeDevice()
{
    return Device(sim::MachineProfile::desktop().ocl);
}

/** y[i] = a * x[i], 1-D data-parallel kernel. */
KernelPtr
scaleKernel()
{
    return std::make_shared<Kernel>(
        "scale", "kernel:scale-v1",
        [](GroupCtx &ctx) {
            const double *x = ctx.args().buffer(0).as<double>();
            double *y = ctx.args().buffer(1).as<double>();
            double a = ctx.args().doubleArg(0);
            ctx.forEachItem([&](int64_t gx, int64_t, int64_t, int64_t) {
                y[gx] = a * x[gx];
            });
        },
        [](const KernelArgs &, const NDRange &range) {
            sim::CostReport cost;
            cost.flops = static_cast<double>(range.items());
            cost.globalBytesRead = 8.0 * range.items();
            cost.globalBytesWritten = 8.0 * range.items();
            cost.workItems = static_cast<double>(range.items());
            return cost;
        });
}

/**
 * Cooperative two-phase kernel: groups stage their inputs into local
 * memory, barrier, then compute y[i] = x[i] + left-neighbor-in-group.
 */
KernelPtr
localMemKernel()
{
    return std::make_shared<Kernel>(
        "coop", "kernel:coop-v1",
        [](GroupCtx &ctx) {
            const double *x = ctx.args().buffer(0).as<double>();
            double *y = ctx.args().buffer(1).as<double>();
            double *local = ctx.localMem();
            ctx.forEachItem([&](int64_t gx, int64_t, int64_t lx, int64_t) {
                local[lx] = x[gx];
            });
            ctx.barrier();
            ctx.forEachItem([&](int64_t gx, int64_t, int64_t lx, int64_t) {
                double left = lx > 0 ? local[lx - 1] : 0.0;
                y[gx] = local[lx] + left;
            });
        },
        [](const KernelArgs &, const NDRange &range) {
            sim::CostReport cost;
            cost.flops = static_cast<double>(range.items());
            cost.globalBytesRead = 8.0 * range.items();
            cost.globalBytesWritten = 8.0 * range.items();
            cost.localBytes = 16.0 * range.items();
            cost.barriers = static_cast<double>(range.groups());
            return cost;
        },
        [](const KernelArgs &, const NDRange &range) {
            return range.localW; // one double per item
        });
}

TEST(Device, ExecutesAllItems)
{
    Device dev = makeDevice();
    auto x = std::make_shared<Buffer>(100 * 8);
    auto y = std::make_shared<Buffer>(100 * 8);
    for (int i = 0; i < 100; ++i)
        x->as<double>()[i] = i;
    KernelArgs args;
    args.buffers = {x, y};
    args.doubles = {2.0};
    dev.launch(*scaleKernel(), args, NDRange::linear(100, 16));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(y->as<double>()[i], 2.0 * i) << i;
}

TEST(Device, RaggedRangeOnlyTouchesLiveItems)
{
    Device dev = makeDevice();
    auto x = std::make_shared<Buffer>(10 * 8);
    auto y = std::make_shared<Buffer>(10 * 8);
    for (int i = 0; i < 10; ++i)
        x->as<double>()[i] = 1.0;
    KernelArgs args;
    args.buffers = {x, y};
    args.doubles = {3.0};
    // 10 items in groups of 4 -> last group half-full.
    dev.launch(*scaleKernel(), args, NDRange::linear(10, 4));
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(y->as<double>()[i], 3.0);
}

TEST(Device, LocalMemoryCooperativeLoad)
{
    Device dev = makeDevice();
    const int n = 16;
    auto x = std::make_shared<Buffer>(n * 8);
    auto y = std::make_shared<Buffer>(n * 8);
    for (int i = 0; i < n; ++i)
        x->as<double>()[i] = i + 1.0;
    KernelArgs args;
    args.buffers = {x, y};
    dev.launch(*localMemKernel(), args, NDRange::linear(n, 4));
    for (int i = 0; i < n; ++i) {
        double left = (i % 4 == 0) ? 0.0 : i; // group-local neighbor
        EXPECT_EQ(y->as<double>()[i], (i + 1.0) + left) << i;
    }
}

TEST(Device, LocalMemoryClearedBetweenGroups)
{
    // Each group writes to local[0..lw); a later group must not observe
    // the previous group's values.
    Device dev = makeDevice();
    auto out = std::make_shared<Buffer>(8 * 8);
    auto probe = std::make_shared<Kernel>(
        "probe", "kernel:probe",
        [](GroupCtx &ctx) {
            double *y = ctx.args().buffer(0).as<double>();
            double *local = ctx.localMem();
            ctx.forEachItem([&](int64_t gx, int64_t, int64_t lx, int64_t) {
                y[gx] = local[lx]; // read before writing
                local[lx] = 99.0;
            });
        },
        [](const KernelArgs &, const NDRange &) {
            return sim::CostReport{};
        },
        [](const KernelArgs &, const NDRange &range) {
            return range.localW;
        });
    KernelArgs args;
    args.buffers = {out};
    dev.launch(*probe, args, NDRange::linear(8, 4));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out->as<double>()[i], 0.0) << i;
}

TEST(Device, StatsAccumulate)
{
    Device dev = makeDevice();
    auto x = std::make_shared<Buffer>(64 * 8);
    auto y = std::make_shared<Buffer>(64 * 8);
    KernelArgs args;
    args.buffers = {x, y};
    args.doubles = {1.0};
    dev.launch(*scaleKernel(), args, NDRange::linear(64, 8));
    dev.launch(*scaleKernel(), args, NDRange::linear(64, 8));
    EXPECT_EQ(dev.stats().launches, 2);
    EXPECT_EQ(dev.stats().itemsExecuted, 128);
    EXPECT_EQ(dev.stats().groupsExecuted, 16);
    EXPECT_DOUBLE_EQ(dev.stats().accumulated.flops, 128.0);
}

TEST(Device, BarriersCounted)
{
    Device dev = makeDevice();
    const int n = 16;
    auto x = std::make_shared<Buffer>(n * 8);
    auto y = std::make_shared<Buffer>(n * 8);
    KernelArgs args;
    args.buffers = {x, y};
    dev.launch(*localMemKernel(), args, NDRange::linear(n, 4));
    EXPECT_EQ(dev.stats().barriersExecuted, 4); // one per group
}

TEST(Device, LocalMemOverflowIsFatal)
{
    Device dev(sim::MachineProfile::desktop().ocl, /*localMemBytes=*/64);
    auto x = std::make_shared<Buffer>(1024 * 8);
    auto y = std::make_shared<Buffer>(1024 * 8);
    KernelArgs args;
    args.buffers = {x, y};
    EXPECT_THROW(
        dev.launch(*localMemKernel(), args, NDRange::linear(1024, 256)),
        FatalError);
}

TEST(Device, CostReportReturnedMatchesKernelCostFn)
{
    Device dev = makeDevice();
    auto x = std::make_shared<Buffer>(32 * 8);
    auto y = std::make_shared<Buffer>(32 * 8);
    KernelArgs args;
    args.buffers = {x, y};
    args.doubles = {1.0};
    auto cost = dev.launch(*scaleKernel(), args, NDRange::linear(32, 8));
    EXPECT_DOUBLE_EQ(cost.flops, 32.0);
    EXPECT_DOUBLE_EQ(cost.globalBytesRead, 256.0);
}

TEST(KernelArgs, MissingArgsArePanics)
{
    KernelArgs args;
    EXPECT_THROW(args.buffer(0), PanicError);
    EXPECT_THROW(args.intArg(0), PanicError);
    EXPECT_THROW(args.doubleArg(0), PanicError);
}

} // namespace
} // namespace ocl
} // namespace petabricks
