#include <gtest/gtest.h>

#include "ocl/ndrange.h"
#include "support/error.h"

namespace petabricks {
namespace ocl {
namespace {

TEST(NDRange, ExactTiling)
{
    NDRange r(64, 32, 8, 8);
    EXPECT_EQ(r.items(), 64 * 32);
    EXPECT_EQ(r.groupItems(), 64);
    EXPECT_EQ(r.groupsX(), 8);
    EXPECT_EQ(r.groupsY(), 4);
    EXPECT_EQ(r.groups(), 32);
}

TEST(NDRange, RaggedEdgeRoundsUp)
{
    NDRange r(65, 33, 8, 8);
    EXPECT_EQ(r.groupsX(), 9);
    EXPECT_EQ(r.groupsY(), 5);
}

TEST(NDRange, LinearFactory)
{
    NDRange r = NDRange::linear(1000, 128);
    EXPECT_EQ(r.globalH, 1);
    EXPECT_EQ(r.localH, 1);
    EXPECT_EQ(r.groups(), 8);
}

TEST(NDRange, RejectsNonPositiveLocal)
{
    EXPECT_THROW(NDRange(10, 10, 0, 1), PanicError);
}

} // namespace
} // namespace ocl
} // namespace petabricks
