#include <gtest/gtest.h>

#include "ocl/buffer.h"

namespace petabricks {
namespace ocl {
namespace {

TEST(Buffer, ZeroFilledOnAllocation)
{
    Buffer b(64);
    EXPECT_EQ(b.size(), 64);
    for (int64_t i = 0; i < b.count<double>(); ++i)
        EXPECT_EQ(b.as<double>()[i], 0.0);
}

TEST(Buffer, TypedAccess)
{
    Buffer b(4 * static_cast<int64_t>(sizeof(double)));
    EXPECT_EQ(b.count<double>(), 4);
    b.as<double>()[2] = 3.5;
    EXPECT_EQ(b.as<double>()[2], 3.5);
}

TEST(Buffer, IdsUnique)
{
    Buffer a(8), b(8);
    EXPECT_NE(a.id(), b.id());
}

TEST(Buffer, EmptyBufferAllowed)
{
    Buffer b(0);
    EXPECT_EQ(b.size(), 0);
    EXPECT_EQ(b.count<double>(), 0);
}

} // namespace
} // namespace ocl
} // namespace petabricks
