#include <gtest/gtest.h>

#include "ocl/program_cache.h"

namespace petabricks {
namespace ocl {
namespace {

TEST(ProgramCache, FirstCompileIsFullCost)
{
    ProgramCache cache(2.0, 0.5);
    EXPECT_DOUBLE_EQ(cache.compile("k1"), 2.0);
    EXPECT_EQ(cache.stats().fullCompiles, 1);
}

TEST(ProgramCache, InProcessRecompileIsFree)
{
    ProgramCache cache(2.0, 0.5);
    cache.compile("k1");
    EXPECT_DOUBLE_EQ(cache.compile("k1"), 0.0);
    EXPECT_EQ(cache.stats().inProcessHits, 1);
}

TEST(ProgramCache, IrCacheHitAcrossRuns)
{
    // Section 5.4: the stored IR skips parse/optimize but the
    // architecture-specific JIT still runs.
    ProgramCache cache(2.0, 0.5);
    cache.compile("k1");
    cache.endRun();
    EXPECT_DOUBLE_EQ(cache.compile("k1"), 1.0);
    EXPECT_EQ(cache.stats().irCacheHits, 1);
}

TEST(ProgramCache, DistinctSourcesCompileSeparately)
{
    ProgramCache cache(1.0, 0.6);
    cache.compile("a");
    EXPECT_DOUBLE_EQ(cache.compile("b"), 1.0);
    EXPECT_EQ(cache.stats().fullCompiles, 2);
}

TEST(ProgramCache, ClearForgetsIr)
{
    ProgramCache cache(1.0, 0.6);
    cache.compile("a");
    cache.clear();
    EXPECT_DOUBLE_EQ(cache.compile("a"), 1.0);
    EXPECT_EQ(cache.stats().fullCompiles, 2);
}

TEST(ProgramCache, TotalSecondsAccumulates)
{
    ProgramCache cache(2.0, 0.5);
    cache.compile("a"); // 2.0
    cache.endRun();
    cache.compile("a"); // 1.0
    cache.compile("b"); // 2.0
    EXPECT_DOUBLE_EQ(cache.stats().totalSeconds, 5.0);
}

} // namespace
} // namespace ocl
} // namespace petabricks
