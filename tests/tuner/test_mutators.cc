#include <gtest/gtest.h>

#include "tuner/mutators.h"

namespace petabricks {
namespace tuner {
namespace {

Config
sampleConfig()
{
    Config c;
    c.addSelector(Selector("algo", 4, 0));
    c.addTunable({"lws", 1, 1024, 64, false});
    c.addTunable({"cutoff", 1, 1 << 20, 1024, true});
    return c;
}

TEST(Mutators, GeneratedSetCoversStructure)
{
    Config c = sampleConfig();
    auto mutators = generateMutators(c);
    // 4 per selector + 1 per tunable.
    EXPECT_EQ(mutators.size(), 4u + 2u);
}

TEST(Mutators, AddLevelGrowsSelector)
{
    Config c = sampleConfig();
    Rng rng(3);
    auto m = makeSelectorAddLevel("algo");
    EXPECT_TRUE(m->apply(c, rng, 4096));
    EXPECT_EQ(c.selector("algo").levels(), 2u);
}

TEST(Mutators, AddLevelSeedsCutoffNearCurrentSize)
{
    Config c = sampleConfig();
    Rng rng(3);
    makeSelectorAddLevel("algo")->apply(c, rng, 1 << 12);
    int64_t cutoff = c.selector("algo").cutoffs()[0];
    // Lognormal around the tested size: within a factor of 32.
    EXPECT_GT(cutoff, (1 << 12) / 32);
    EXPECT_LT(cutoff, (1 << 12) * 32);
}

TEST(Mutators, RemoveLevelNoopOnSingleLevel)
{
    Config c = sampleConfig();
    Rng rng(5);
    EXPECT_FALSE(makeSelectorRemoveLevel("algo")->apply(c, rng, 64));
    EXPECT_EQ(c.selector("algo").levels(), 1u);
}

TEST(Mutators, RemoveUndoesAdd)
{
    Config c = sampleConfig();
    Rng rng(7);
    makeSelectorAddLevel("algo")->apply(c, rng, 256);
    EXPECT_TRUE(makeSelectorRemoveLevel("algo")->apply(c, rng, 256));
    EXPECT_EQ(c.selector("algo").levels(), 1u);
}

TEST(Mutators, ChangeAlgorithmStaysInRange)
{
    Config c = sampleConfig();
    Rng rng(11);
    auto m = makeSelectorChangeAlgorithm("algo");
    for (int i = 0; i < 50; ++i) {
        m->apply(c, rng, 64);
        int alg = c.selector("algo").algorithms()[0];
        EXPECT_GE(alg, 0);
        EXPECT_LT(alg, 4);
    }
}

TEST(Mutators, ScaleCutoffNoopWithoutCutoffs)
{
    Config c = sampleConfig();
    Rng rng(13);
    EXPECT_FALSE(makeSelectorScaleCutoff("algo")->apply(c, rng, 64));
}

TEST(Mutators, LognormalRespectsBounds)
{
    Config c = sampleConfig();
    Rng rng(17);
    auto m = makeTunableLognormal("cutoff");
    for (int i = 0; i < 200; ++i) {
        m->apply(c, rng, 64);
        int64_t v = c.tunableValue("cutoff");
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 1 << 20);
    }
}

TEST(Mutators, LognormalHalvesAndDoubles)
{
    // Over many applications from a fixed start, both halving-or-more
    // and doubling-or-more must occur (Section 5.2's symmetry).
    Rng rng(19);
    auto m = makeTunableLognormal("cutoff");
    int halved = 0, doubled = 0;
    for (int i = 0; i < 300; ++i) {
        Config c = sampleConfig(); // reset to 1024 each time
        m->apply(c, rng, 64);
        int64_t v = c.tunableValue("cutoff");
        if (v <= 512)
            ++halved;
        if (v >= 2048)
            ++doubled;
    }
    EXPECT_GT(halved, 30);
    EXPECT_GT(doubled, 30);
}

TEST(Mutators, UniformCoversRange)
{
    Config c = sampleConfig();
    Rng rng(23);
    auto m = makeTunableUniform("lws");
    int64_t lo = 1 << 20, hi = 0;
    for (int i = 0; i < 300; ++i) {
        m->apply(c, rng, 64);
        lo = std::min(lo, c.tunableValue("lws"));
        hi = std::max(hi, c.tunableValue("lws"));
    }
    EXPECT_LT(lo, 64);
    EXPECT_GT(hi, 900);
}

TEST(Mutators, NamesIdentifyTargets)
{
    EXPECT_NE(makeSelectorAddLevel("algo")->name().find("algo"),
              std::string::npos);
    EXPECT_NE(makeTunableUniform("lws")->name().find("lws"),
              std::string::npos);
}

} // namespace
} // namespace tuner
} // namespace petabricks
