#include <gtest/gtest.h>

#include <cmath>

#include "tuner/evaluation_cache.h"

namespace petabricks {
namespace tuner {
namespace {

Config
makeConfig(int64_t lws, int algorithm = 0)
{
    Config config;
    config.addTunable({"lws", 1, 1024, lws, false});
    Selector selector("algo", 3, algorithm);
    config.addSelector(selector);
    return config;
}

TEST(EvaluationCache, FingerprintIsStableAndValueSensitive)
{
    Config a = makeConfig(128);
    Config aCopy = makeConfig(128);
    Config b = makeConfig(129);
    Config c = makeConfig(128, 1);
    EXPECT_EQ(EvaluationCache::fingerprint(a),
              EvaluationCache::fingerprint(aCopy));
    EXPECT_NE(EvaluationCache::fingerprint(a),
              EvaluationCache::fingerprint(b));
    EXPECT_NE(EvaluationCache::fingerprint(a),
              EvaluationCache::fingerprint(c));
}

TEST(EvaluationCache, HitAndMissAccounting)
{
    EvaluationCache cache;
    Config config = makeConfig(64);

    EXPECT_FALSE(cache.lookup(config, 256).has_value());
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().hits, 0);

    cache.insert(config, 256, 1.5);
    EXPECT_EQ(cache.stats().insertions, 1);
    EXPECT_EQ(cache.size(), 1u);

    std::optional<double> cached = cache.lookup(config, 256);
    ASSERT_TRUE(cached.has_value());
    EXPECT_DOUBLE_EQ(*cached, 1.5);
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().misses, 1);
}

TEST(EvaluationCache, InputSizeIsPartOfTheKey)
{
    EvaluationCache cache;
    Config config = makeConfig(64);
    cache.insert(config, 256, 1.0);
    cache.insert(config, 1024, 2.0);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_DOUBLE_EQ(*cache.lookup(config, 256), 1.0);
    EXPECT_DOUBLE_EQ(*cache.lookup(config, 1024), 2.0);
    EXPECT_FALSE(cache.lookup(config, 512).has_value());
}

TEST(EvaluationCache, InvalidateBelowDropsOnlySmallerSizes)
{
    EvaluationCache cache;
    Config a = makeConfig(64);
    Config b = makeConfig(128);
    cache.insert(a, 64, 1.0);
    cache.insert(b, 64, 2.0);
    cache.insert(a, 256, 3.0);
    cache.insert(a, 1024, 4.0);

    // The size grows to 256: entries at 64 can never be consulted
    // again; entries at >= 256 survive.
    cache.invalidateBelow(256);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().invalidated, 2);
    EXPECT_FALSE(cache.lookup(a, 64).has_value());
    EXPECT_FALSE(cache.lookup(b, 64).has_value());
    EXPECT_DOUBLE_EQ(*cache.lookup(a, 256), 3.0);
    EXPECT_DOUBLE_EQ(*cache.lookup(a, 1024), 4.0);
}

TEST(EvaluationCache, InfeasibleScoresAreCacheable)
{
    // A duplicate of a known-infeasible mutant must not re-run either.
    EvaluationCache cache;
    Config config = makeConfig(999);
    cache.insert(config, 64,
                 std::numeric_limits<double>::infinity());
    std::optional<double> cached = cache.lookup(config, 64);
    ASSERT_TRUE(cached.has_value());
    EXPECT_TRUE(std::isinf(*cached));
}

TEST(EvaluationCache, ClearDropsEntriesKeepsCumulativeStats)
{
    EvaluationCache cache;
    Config config = makeConfig(64);
    cache.insert(config, 64, 1.0);
    cache.lookup(config, 64);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup(config, 64).has_value());
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().insertions, 1);
}

TEST(EvaluationCache, OverwriteUpdatesValue)
{
    EvaluationCache cache;
    Config config = makeConfig(64);
    cache.insert(config, 64, 1.0);
    cache.insert(config, 64, 2.0);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_DOUBLE_EQ(*cache.lookup(config, 64), 2.0);
}

TEST(EvaluationCache, ByteAccountingTracksLiveEntries)
{
    EvaluationCache cache;
    EXPECT_EQ(cache.stats().bytes, 0u);
    cache.insert(makeConfig(1), 64, 1.0);
    cache.insert(makeConfig(2), 64, 2.0);
    EXPECT_EQ(cache.stats().bytes, 2 * EvaluationCache::kEntryBytes);
    // Overwrites reuse the entry: no growth.
    cache.insert(makeConfig(1), 64, 3.0);
    EXPECT_EQ(cache.stats().bytes, 2 * EvaluationCache::kEntryBytes);
    cache.invalidateBelow(128);
    EXPECT_EQ(cache.stats().bytes, 0u);
    cache.insert(makeConfig(1), 256, 1.0);
    cache.clear();
    EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(EvaluationCache, CapacityBoundEvictsSmallestSizesFirst)
{
    EvaluationCache cache;
    cache.setMaxEntries(3);
    cache.insert(makeConfig(1), 64, 1.0);
    cache.insert(makeConfig(2), 128, 2.0);
    cache.insert(makeConfig(3), 256, 3.0);
    EXPECT_EQ(cache.stats().evictions, 0);

    // The fourth insert pushes past the bound: the smallest-size entry
    // goes (the growing test schedule consults it least).
    cache.insert(makeConfig(4), 512, 4.0);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_EQ(cache.stats().bytes, 3 * EvaluationCache::kEntryBytes);
    EXPECT_FALSE(cache.lookup(makeConfig(1), 64).has_value());
    EXPECT_TRUE(cache.lookup(makeConfig(2), 128).has_value());
    EXPECT_TRUE(cache.lookup(makeConfig(4), 512).has_value());
}

TEST(EvaluationCache, SetMaxEntriesTrimsRetroactively)
{
    EvaluationCache cache;
    for (int i = 1; i <= 5; ++i)
        cache.insert(makeConfig(i), 64 * i, 1.0);
    cache.setMaxEntries(2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 3);
    EXPECT_TRUE(cache.lookup(makeConfig(5), 320).has_value());
}

TEST(EvaluationCache, UnboundedByDefault)
{
    EvaluationCache cache;
    for (int i = 1; i <= 200; ++i)
        cache.insert(makeConfig(i), 64, 1.0);
    EXPECT_EQ(cache.size(), 200u);
    EXPECT_EQ(cache.stats().evictions, 0);
}

} // namespace
} // namespace tuner
} // namespace petabricks
