/**
 * TuningSession::load() failure paths: a truncated or corrupt
 * checkpoint, a seed-fingerprint mismatch, or mismatched tuner options
 * must each raise a clean FatalError — never an internal-invariant
 * panic or undefined behavior. The service leans on this: its spool
 * directory contents survive daemon crashes and user meddling, and a
 * damaged checkpoint must fail one `resume`, not take out the daemon.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>

#include "support/error.h"
#include "support/kvfile.h"
#include "tuner/session.h"

namespace petabricks {
namespace tuner {
namespace {

/** Convex bowl over one tunable: optimum at lws = 128. */
class BowlEvaluator : public Evaluator
{
  public:
    double
    evaluate(const Config &config, int64_t) override
    {
        double lws = static_cast<double>(config.tunableValue("lws"));
        double err = std::log2(lws / 128.0);
        return 1.0 + err * err;
    }
};

TunerOptions
fastOptions()
{
    TunerOptions opts;
    opts.populationSize = 6;
    opts.generationsPerSize = 6;
    opts.minInputSize = 64;
    opts.maxInputSize = 1 << 16;
    opts.sizeGrowthFactor = 4;
    opts.seed = 42;
    return opts;
}

Config
bowlSeed()
{
    Config seed;
    seed.addTunable({"lws", 1, 1024, 2, false});
    return seed;
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** Fixture: a mid-search checkpoint plus a fresh session to load it
 * into, with helpers that re-save a damaged variant. */
class CheckpointErrors : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tempPath("pb_ckpt_errors.kv");
        BowlEvaluator eval;
        TuningSession donor(eval, bowlSeed(), fastOptions());
        donor.run(3);
        donor.save(path_);
        checkpoint_ = KvFile::load(path_);
    }

    /** A pristine session the (possibly damaged) file is loaded into. */
    void
    expectLoadThrows()
    {
        BowlEvaluator eval;
        TuningSession session(eval, bowlSeed(), fastOptions());
        EXPECT_THROW(session.load(path_), FatalError);
    }

    /** Overwrite the checkpoint with @p kv. */
    void
    rewrite(const KvFile &kv)
    {
        kv.save(path_);
    }

    std::string path_;
    KvFile checkpoint_;
};

} // namespace

TEST_F(CheckpointErrors, IntactCheckpointLoadsCleanly)
{
    // Sanity: the fixture's checkpoint is valid before we damage it.
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    session.load(path_);
    EXPECT_EQ(session.completedSteps(), 3);
}

TEST_F(CheckpointErrors, MissingFileIsAFatalError)
{
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    EXPECT_THROW(session.load(tempPath("pb_ckpt_nonexistent.kv")),
                 FatalError);
}

TEST_F(CheckpointErrors, NonCheckpointKvFileIsRejected)
{
    KvFile other;
    other.set("benchmark", "Sort"); // valid kvfile, not a checkpoint
    rewrite(other);
    expectLoadThrows();
}

TEST_F(CheckpointErrors, GarbageBytesAreRejected)
{
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out << "\x7f\x45LF not a kvfile at all\nkey without value\n";
    out.close();
    expectLoadThrows();
}

TEST_F(CheckpointErrors, TruncatedFileIsRejected)
{
    // Chop the serialized text mid-way: the population entries the
    // header promises are gone.
    std::string text = checkpoint_.toString();
    std::ofstream out(path_, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
    out.close();
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    try {
        session.load(path_);
        FAIL() << "truncated checkpoint loaded without error";
    } catch (const FatalError &) {
        // Clean rejection path (which key is missed first depends on
        // sort order; any FatalError is correct).
    }
}

TEST_F(CheckpointErrors, MismatchedSeedFingerprintIsRejected)
{
    // Same file, but the loading session tunes a different config
    // schema — the seed fingerprint must catch it.
    Config otherSeed;
    otherSeed.addTunable({"blockSize", 1, 64, 2, false});
    BowlEvaluator eval;
    TuningSession session(eval, otherSeed, fastOptions());
    EXPECT_THROW(session.load(path_), FatalError);
}

TEST_F(CheckpointErrors, MismatchedTunerOptionsAreRejected)
{
    // The checkpoint's cursor only makes sense under the schedule it
    // was saved with; every schedule-shaping option must match.
    BowlEvaluator eval;
    TunerOptions changed = fastOptions();
    changed.generationsPerSize = 9;
    TuningSession session(eval, bowlSeed(), changed);
    EXPECT_THROW(session.load(path_), FatalError);

    changed = fastOptions();
    changed.populationSize = 3;
    TuningSession mismatchedPop(eval, bowlSeed(), changed);
    EXPECT_THROW(mismatchedPop.load(path_), FatalError);

    changed = fastOptions();
    changed.maxInputSize = 1 << 18;
    TuningSession mismatchedMax(eval, bowlSeed(), changed);
    EXPECT_THROW(mismatchedMax.load(path_), FatalError);
}

TEST_F(CheckpointErrors, CorruptRngStateIsRejected)
{
    KvFile damaged = checkpoint_;
    damaged.set("session.rng", "not a mersenne twister dump");
    rewrite(damaged);
    expectLoadThrows();
}

TEST_F(CheckpointErrors, OutOfRangeCursorIsRejected)
{
    KvFile damaged = checkpoint_;
    damaged.setInt("session.sizeIndex", 9999);
    rewrite(damaged);
    expectLoadThrows();

    damaged = checkpoint_;
    damaged.setInt("session.generation", -1);
    rewrite(damaged);
    expectLoadThrows();

    damaged = checkpoint_;
    damaged.setInt("session.generation", 6); // == generationsPerSize
    rewrite(damaged);
    expectLoadThrows();
}

TEST_F(CheckpointErrors, EmptyPopulationIsRejected)
{
    KvFile damaged = checkpoint_;
    damaged.setInt("session.population", 0);
    rewrite(damaged);
    expectLoadThrows();
}

TEST_F(CheckpointErrors, FailedLoadLeavesSessionUsable)
{
    // A rejected checkpoint must not leave the session half-restored:
    // after the error it still steps and finishes like a fresh one.
    BowlEvaluator reference;
    TuningSession pristine(reference, bowlSeed(), fastOptions());
    TuningResult expected = pristine.run();

    KvFile damaged = checkpoint_;
    damaged.set("session.schema", "12345"); // wrong fingerprint
    rewrite(damaged);
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    EXPECT_THROW(session.load(path_), FatalError);
    TuningResult result = session.run();
    EXPECT_EQ(result.best.toKv(), expected.best.toKv());
    EXPECT_EQ(result.bestSeconds, expected.bestSeconds);
}

} // namespace tuner
} // namespace petabricks
