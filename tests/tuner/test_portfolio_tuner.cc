/**
 * @file
 * PortfolioTuner: size-ladder construction, per-rung champions landing
 * in the portfolio, equivalence with a directly-driven TuningSession,
 * and shared-cache reuse across rungs.
 */

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "cache/shared_cache.h"
#include "engine/execution_engine.h"
#include "portfolio/portfolio.h"
#include "sim/machine.h"
#include "support/error.h"
#include "tuner/portfolio_tuner.h"
#include "tuner/session.h"

using namespace petabricks;
using namespace petabricks::tuner;

namespace {

PortfolioTunerOptions
tinyOptions()
{
    PortfolioTunerOptions options;
    options.tuner.populationSize = 4;
    options.tuner.generationsPerSize = 2;
    return options;
}

} // namespace

TEST(PortfolioTuner, LadderIsGeometricAndEndsAtMax)
{
    EXPECT_EQ(PortfolioTuner::sizeLadder(64, 4096, 4),
              (std::vector<int64_t>{64, 256, 1024, 4096}));
    // A max off the geometric grid still closes the ladder exactly.
    EXPECT_EQ(PortfolioTuner::sizeLadder(64, 5000, 4),
              (std::vector<int64_t>{64, 256, 1024, 4096, 5000}));
    EXPECT_EQ(PortfolioTuner::sizeLadder(100, 100, 4),
              (std::vector<int64_t>{100}));
    EXPECT_THROW(PortfolioTuner::sizeLadder(0, 100, 4), FatalError);
    EXPECT_THROW(PortfolioTuner::sizeLadder(200, 100, 4), FatalError);
    EXPECT_THROW(PortfolioTuner::sizeLadder(64, 4096, 1), FatalError);
}

TEST(PortfolioTuner, StoresOneChampionPerRung)
{
    portfolio::ChampionPortfolio portfolio;
    PortfolioTuner tuner(portfolio);
    PortfolioTunerOptions options = tinyOptions();
    options.sizes = {1024, 4096, 16384};
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");
    const sim::MachineProfile machine = sim::MachineProfile::desktop();

    std::vector<PortfolioRung> rungs =
        tuner.tune(*benchmark, machine, options);
    ASSERT_EQ(rungs.size(), 3u);
    EXPECT_EQ(portfolio.size(), 3u);
    for (const PortfolioRung &rung : rungs) {
        auto stored = portfolio.exact(
            "Black-Scholes", machine.fingerprint(), rung.inputSize);
        ASSERT_TRUE(stored.has_value()) << "rung " << rung.inputSize;
        EXPECT_EQ(stored->configFingerprint,
                  rung.champion.configFingerprint);
        EXPECT_EQ(stored->seconds, rung.champion.seconds);
        EXPECT_EQ(stored->machineName, "Desktop");
    }
}

TEST(PortfolioTuner, RungChampionMatchesDirectSession)
{
    portfolio::ChampionPortfolio portfolio;
    PortfolioTuner tuner(portfolio);
    PortfolioTunerOptions options = tinyOptions();
    options.sizes = {4096};
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");
    const sim::MachineProfile machine = sim::MachineProfile::laptop();

    std::vector<PortfolioRung> rungs =
        tuner.tune(*benchmark, machine, options);
    ASSERT_EQ(rungs.size(), 1u);

    // The same search driven by hand must land on the same champion:
    // the portfolio driver adds scheduling, not search behavior.
    engine::ModelEngine engine(machine);
    TunerOptions direct = options.tuner;
    engine.configureTuner(direct);
    direct.maxInputSize = 4096;
    direct.minInputSize = std::min(direct.minInputSize, int64_t{4096});
    engine::EngineEvaluator evaluator(*benchmark, engine);
    TuningSession session(evaluator, benchmark->seedConfig(), direct);
    TuningResult reference = session.run();

    EXPECT_EQ(rungs[0].champion.configFingerprint,
              reference.best.valueFingerprint());
    EXPECT_EQ(rungs[0].champion.seconds, reference.bestSeconds);
}

TEST(PortfolioTuner, DefaultsLadderFromBenchmarkSizes)
{
    portfolio::ChampionPortfolio portfolio;
    PortfolioTuner tuner(portfolio);
    PortfolioTunerOptions options = tinyOptions();
    options.growthFactor = 8;
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");
    const sim::MachineProfile machine = sim::MachineProfile::server();

    std::vector<PortfolioRung> rungs =
        tuner.tune(*benchmark, machine, options);
    std::vector<int64_t> expected = PortfolioTuner::sizeLadder(
        benchmark->minTuningSize(), benchmark->testingInputSize(), 8);
    ASSERT_EQ(rungs.size(), expected.size());
    for (size_t i = 0; i < rungs.size(); ++i)
        EXPECT_EQ(rungs[i].inputSize, expected[i]);
    EXPECT_EQ(rungs.back().inputSize, benchmark->testingInputSize());
}

TEST(PortfolioTuner, LaterRungsHitTheSharedCache)
{
    cache::SharedCacheOptions cacheOptions;
    cacheOptions.maxBytes = 8u << 20;
    cache::SharedEvaluationCache shared(cacheOptions);

    portfolio::ChampionPortfolio portfolio;
    PortfolioTuner tuner(portfolio, &shared);
    PortfolioTunerOptions options = tinyOptions();
    options.sizes = {1024, 4096};
    apps::BenchmarkPtr benchmark = apps::findBenchmark("Black-Scholes");

    std::vector<PortfolioRung> rungs = tuner.tune(
        *benchmark, sim::MachineProfile::desktop(), options);
    ASSERT_EQ(rungs.size(), 2u);
    EXPECT_GT(rungs[0].sharedPublishes, 0);
    // Rung 2's session walks up through the sizes rung 1 already
    // priced with the same seed, so its early generations are L2 hits.
    EXPECT_GT(rungs[1].sharedHits, 0);
}
