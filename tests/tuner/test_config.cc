#include <gtest/gtest.h>

#include "support/error.h"
#include "tuner/config.h"

namespace petabricks {
namespace tuner {
namespace {

TEST(Selector, SingleLevelSelectsEverywhere)
{
    Selector s("sort", 7, 3);
    EXPECT_EQ(s.select(1), 3);
    EXPECT_EQ(s.select(1 << 30), 3);
    EXPECT_EQ(s.levels(), 1u);
}

TEST(Selector, SelectSemanticsMatchPaperFormula)
{
    // SELECT = alpha_i s.t. c_i > size >= c_(i-1), c_0 = 0, c_m = inf.
    Selector s("s", 4, 0);
    s.insertLevel(100, 1);
    s.insertLevel(1000, 2);
    EXPECT_EQ(s.select(0), 0);
    EXPECT_EQ(s.select(99), 0);
    EXPECT_EQ(s.select(100), 1); // size >= cutoff picks the next level
    EXPECT_EQ(s.select(999), 1);
    EXPECT_EQ(s.select(1000), 2);
    EXPECT_EQ(s.select(1 << 20), 2);
}

TEST(Selector, PolyAlgorithmLikeSortConfig)
{
    // The paper's Desktop Sort config: IS < 341 <= 4MS < 64294 <= QS
    // < 174762 <= 2MS.
    Selector s("sort", 7, 0);
    s.insertLevel(341, 1);
    s.insertLevel(64294, 2);
    s.insertLevel(174762, 3);
    EXPECT_EQ(s.select(200), 0);
    EXPECT_EQ(s.select(5000), 1);
    EXPECT_EQ(s.select(100000), 2);
    EXPECT_EQ(s.select(1 << 20), 3);
}

TEST(Selector, InsertKeepsCutoffsSorted)
{
    Selector s("s", 3, 0);
    s.insertLevel(1000, 1);
    s.insertLevel(10, 2);
    ASSERT_EQ(s.cutoffs().size(), 2u);
    EXPECT_LT(s.cutoffs()[0], s.cutoffs()[1]);
    EXPECT_EQ(s.select(5), 0);
    EXPECT_EQ(s.select(500), 2);
    EXPECT_EQ(s.select(5000), 1);
}

TEST(Selector, InsertCapsAtTwelveLevels)
{
    Selector s("s", 2, 0);
    for (int i = 0; i < 20; ++i)
        s.insertLevel(1 << (i + 1), i % 2);
    EXPECT_EQ(s.levels(), static_cast<size_t>(kSelectorLevels));
}

TEST(Selector, RemoveLevel)
{
    Selector s("s", 3, 0);
    s.insertLevel(100, 1);
    s.insertLevel(1000, 2);
    s.removeLevel(1);
    EXPECT_EQ(s.levels(), 2u);
    // Removing the only level is a no-op.
    Selector single("t", 2, 1);
    single.removeLevel(0);
    EXPECT_EQ(single.levels(), 1u);
    EXPECT_EQ(single.select(42), 1);
}

TEST(Selector, SetCutoffClampsToNeighbors)
{
    Selector s("s", 2, 0);
    s.insertLevel(100, 1);
    s.insertLevel(1000, 0);
    s.setCutoff(0, 5000); // would pass its right neighbor: clamped
    EXPECT_LE(s.cutoffs()[0], s.cutoffs()[1]);
}

TEST(Selector, SaveLoadRoundTrip)
{
    Selector s("conv", 3, 1);
    s.insertLevel(256, 2);
    KvFile kv;
    s.save(kv);
    Selector back = Selector::load(kv, "conv", 3);
    EXPECT_EQ(back, s);
    EXPECT_EQ(back.select(1000), 2);
}

TEST(Selector, LoadRejectsBadAlgorithms)
{
    KvFile kv;
    kv.setIntList("s.cutoffs", {});
    kv.setIntList("s.algorithms", {9});
    EXPECT_THROW(Selector::load(kv, "s", 3), FatalError);
}

TEST(Config, TunableBounds)
{
    Config c;
    c.addTunable({"lws", 1, 1024, 64, false});
    EXPECT_EQ(c.tunableValue("lws"), 64);
    EXPECT_EQ(c.tunable("lws").clamp(5000), 1024);
    EXPECT_EQ(c.tunable("lws").clamp(0), 1);
    EXPECT_THROW(c.addTunable({"bad", 10, 20, 5, false}), PanicError);
}

TEST(Config, DuplicateNamesRejected)
{
    Config c;
    c.addSelector(Selector("s", 2));
    EXPECT_THROW(c.addSelector(Selector("s", 2)), PanicError);
    c.addTunable({"t", 1, 8, 4, false});
    EXPECT_THROW(c.addTunable({"t", 1, 8, 4, false}), PanicError);
}

TEST(Config, KvRoundTrip)
{
    Config c;
    Selector s("algo", 3, 0);
    s.insertLevel(512, 2);
    c.addSelector(s);
    c.addTunable({"ratio", 0, 8, 6, false});
    c.addTunable({"cutoff", 1, 1 << 20, 4096, true});

    KvFile kv = c.toKv();
    Config schema;
    schema.addSelector(Selector("algo", 3, 0));
    schema.addTunable({"ratio", 0, 8, 0, false});
    schema.addTunable({"cutoff", 1, 1 << 20, 1, true});
    schema.loadValues(kv);
    EXPECT_EQ(schema, c);
}

TEST(Config, LoadRejectsOutOfBoundsTunable)
{
    Config c;
    c.addTunable({"ratio", 0, 8, 4, false});
    KvFile kv;
    kv.setInt("ratio", 99);
    EXPECT_THROW(c.loadValues(kv), FatalError);
}

TEST(Config, SpaceSizeGrowsWithStructure)
{
    Config small;
    small.addTunable({"t", 1, 8, 4, false});
    Config large;
    large.addSelector(Selector("s1", 7));
    large.addSelector(Selector("s2", 3));
    large.addTunable({"t", 1, 1 << 20, 4, true});
    double logSmall = small.log10SpaceSize(1 << 20);
    double logLarge = large.log10SpaceSize(1 << 20);
    EXPECT_LT(logSmall, 2.0);
    EXPECT_GT(logLarge, 80.0); // selector spaces are astronomically big
}

TEST(Config, SpaceSizeOrderOfMagnitudeLikeFigure8)
{
    // A benchmark-sized space (several selectors + tunables) should
    // land in the 10^100+ range that Figure 8 reports.
    Config c;
    for (int i = 0; i < 3; ++i)
        c.addSelector(Selector("sel" + std::to_string(i), 3));
    for (int i = 0; i < 6; ++i)
        c.addTunable({"tun" + std::to_string(i), 1, 1024, 16, false});
    double log10 = c.log10SpaceSize(1 << 22);
    EXPECT_GT(log10, 100.0);
    EXPECT_LT(log10, 1000.0);
}

} // namespace
} // namespace tuner
} // namespace petabricks
