#include <gtest/gtest.h>

#include <cmath>

#include "tuner/evolution.h"

namespace petabricks {
namespace tuner {
namespace {

/** Convex bowl over one tunable: optimum at lws = 128. */
class BowlEvaluator : public Evaluator
{
  public:
    double
    evaluate(const Config &config, int64_t) override
    {
        double lws = static_cast<double>(config.tunableValue("lws"));
        double err = std::log2(lws / 128.0);
        return 1.0 + err * err;
    }
};

/**
 * Recursive algorithm with a size-dependent best step: algorithm 0 wins
 * below ~8192, algorithm 1 above. Because the recursion re-consults the
 * selector at every level (like selectors at recursive call sites in
 * PetaBricks programs), a large-size test also exercises the small-size
 * levels, and the tuner must build a genuine poly-algorithm.
 */
class CrossoverEvaluator : public Evaluator
{
  public:
    double
    evaluate(const Config &config, int64_t size) override
    {
        return 1e-6 * cost(config, size);
    }

  private:
    double
    cost(const Config &config, int64_t size)
    {
        if (size <= 16)
            return 16.0;
        int alg = config.selector("algo").select(size);
        double n = static_cast<double>(size);
        // alg 0: 2n per step (good small); alg 1: n + 8192 (good large).
        double step = alg == 0 ? 2.0 * n : n + 8192.0;
        return step + cost(config, size / 2);
    }
};

/** Tracks compile accounting via kernelSources. */
class KernelCountingEvaluator : public Evaluator
{
  public:
    double
    evaluate(const Config &config, int64_t) override
    {
        return 1e-3 * static_cast<double>(config.tunableValue("lws"));
    }

    std::vector<std::string>
    kernelSources(const Config &, int64_t) override
    {
        return {"k1", "k2"};
    }
};

TunerOptions
fastOptions()
{
    TunerOptions opts;
    opts.populationSize = 6;
    opts.generationsPerSize = 6;
    opts.minInputSize = 64;
    opts.maxInputSize = 1 << 16;
    opts.sizeGrowthFactor = 4;
    opts.seed = 42;
    return opts;
}

TEST(Evolution, FindsTunableOptimum)
{
    Config seed;
    seed.addTunable({"lws", 1, 1024, 2, false});
    BowlEvaluator eval;
    EvolutionaryTuner tuner(eval, seed, fastOptions());
    TuningResult result = tuner.run();
    int64_t lws = result.best.tunableValue("lws");
    EXPECT_GE(lws, 64);
    EXPECT_LE(lws, 256);
    EXPECT_LT(result.bestSeconds, 1.3);
}

TEST(Evolution, BuildsPolyAlgorithmSelector)
{
    Config seed;
    seed.addSelector(Selector("algo", 2, 0));
    CrossoverEvaluator eval;
    TunerOptions opts = fastOptions();
    opts.generationsPerSize = 10;
    EvolutionaryTuner tuner(eval, seed, opts);
    TuningResult result = tuner.run();
    const Selector &s = result.best.selector("algo");
    // Small inputs use algorithm 0, large inputs algorithm 1.
    EXPECT_EQ(s.select(64), 0);
    EXPECT_EQ(s.select(1 << 16), 1);
}

TEST(Evolution, ChildrenOnlyAcceptedWhenBetter)
{
    Config seed;
    seed.addTunable({"lws", 1, 1024, 128, false});
    BowlEvaluator eval;
    EvolutionaryTuner tuner(eval, seed, fastOptions());
    TuningResult result = tuner.run();
    // Seeded at the optimum: every mutation is a regression.
    EXPECT_EQ(result.mutationsAccepted, 0);
    EXPECT_GT(result.mutationsRejected, 0);
    EXPECT_EQ(result.best.tunableValue("lws"), 128);
}

TEST(Evolution, DeterministicForSameSeed)
{
    Config seed;
    seed.addTunable({"lws", 1, 1024, 2, false});
    BowlEvaluator e1, e2;
    TuningResult r1 =
        EvolutionaryTuner(e1, seed, fastOptions()).run();
    TuningResult r2 =
        EvolutionaryTuner(e2, seed, fastOptions()).run();
    EXPECT_EQ(r1.best.tunableValue("lws"), r2.best.tunableValue("lws"));
    EXPECT_DOUBLE_EQ(r1.tuningSeconds, r2.tuningSeconds);
}

TEST(Evolution, TuningTimeIncludesCompileModel)
{
    Config seed;
    seed.addTunable({"lws", 1, 1024, 2, false});
    KernelCountingEvaluator eval;
    TunerOptions opts = fastOptions();
    opts.kernelCompileSeconds = 2.0;
    opts.irCacheSavings = 0.5;
    EvolutionaryTuner tuner(eval, seed, opts);
    TuningResult result = tuner.run();
    EXPECT_GT(result.compileSeconds, 0.0);
    EXPECT_GE(result.tuningSeconds, result.compileSeconds);
    // Two kernels, first run full (2s each), every later test process
    // pays the IR-cache-hit cost (1s each): compile time dominates.
    double perEvalFloor = 2.0 * 2.0 * (1.0 - 0.5);
    EXPECT_GE(result.compileSeconds,
              static_cast<double>(result.evaluations - 1) * perEvalFloor);
}

TEST(Evolution, InvalidConfigsNeverWin)
{
    // Evaluator returns inf for lws > 256: tuner must settle below.
    class Gated : public Evaluator
    {
      public:
        double
        evaluate(const Config &config, int64_t) override
        {
            int64_t lws = config.tunableValue("lws");
            if (lws > 256)
                return std::numeric_limits<double>::infinity();
            return 1.0 / static_cast<double>(lws);
        }
    };
    Config seed;
    seed.addTunable({"lws", 1, 1024, 2, false});
    Gated eval;
    TuningResult result =
        EvolutionaryTuner(eval, seed, fastOptions()).run();
    EXPECT_LE(result.best.tunableValue("lws"), 256);
    EXPECT_TRUE(std::isfinite(result.bestSeconds));
}

TEST(Evolution, ReportCountsEvaluations)
{
    Config seed;
    seed.addTunable({"lws", 1, 1024, 2, false});
    BowlEvaluator eval;
    TuningResult result =
        EvolutionaryTuner(eval, seed, fastOptions()).run();
    EXPECT_GT(result.evaluations, 10);
    EXPECT_EQ(result.mutationsAccepted + result.mutationsRejected +
                  /* population re-measures */ 0,
              result.mutationsAccepted + result.mutationsRejected);
}

} // namespace
} // namespace tuner
} // namespace petabricks
