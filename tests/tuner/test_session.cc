/**
 * TuningSession: stepping, budgeted runs, batched evaluation
 * determinism (same seed => identical champion whether candidates are
 * evaluated one-at-a-time, as one batch, or through the cache), and
 * save()/load() checkpoint resume.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "cache/shared_cache.h"
#include "support/error.h"
#include "tuner/session.h"

namespace petabricks {
namespace tuner {
namespace {

/** Convex bowl over one tunable: optimum at lws = 128. */
class BowlEvaluator : public Evaluator
{
  public:
    double
    evaluate(const Config &config, int64_t) override
    {
        ++calls;
        double lws = static_cast<double>(config.tunableValue("lws"));
        double err = std::log2(lws / 128.0);
        return 1.0 + err * err;
    }

    int64_t calls = 0;
};

/** Bowl evaluator whose batch hook evaluates in REVERSE order, to
 * prove batch results are index-aligned, not order-dependent. */
class ReverseBatchBowl : public BowlEvaluator
{
  public:
    std::vector<double>
    evaluateBatch(std::span<const Config> configs,
                  int64_t inputSize) override
    {
        ++batchCalls;
        std::vector<double> seconds(configs.size(), 0.0);
        for (size_t i = configs.size(); i-- > 0;)
            seconds[i] = evaluate(configs[i], inputSize);
        return seconds;
    }

    int64_t batchCalls = 0;
};

/** Selector crossover: algorithm 0 wins small, 1 wins large. */
class CrossoverEvaluator : public Evaluator
{
  public:
    double
    evaluate(const Config &config, int64_t size) override
    {
        return 1e-6 * cost(config, size);
    }

  private:
    double
    cost(const Config &config, int64_t size)
    {
        if (size <= 16)
            return 16.0;
        int alg = config.selector("algo").select(size);
        double n = static_cast<double>(size);
        double step = alg == 0 ? 2.0 * n : n + 8192.0;
        return step + cost(config, size / 2);
    }
};

TunerOptions
fastOptions(bool cached = true)
{
    TunerOptions opts;
    opts.populationSize = 6;
    opts.generationsPerSize = 6;
    opts.minInputSize = 64;
    opts.maxInputSize = 1 << 16;
    opts.sizeGrowthFactor = 4;
    opts.seed = 42;
    opts.cacheEvaluations = cached;
    return opts;
}

Config
bowlSeed()
{
    Config seed;
    seed.addTunable({"lws", 1, 1024, 2, false});
    return seed;
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(TuningSession, StepAdvancesAndRunCompletes)
{
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    // 6 sizes in [64, 65536] with growth 4, 6 generations each.
    EXPECT_EQ(session.totalSteps(), 6 * 6);
    EXPECT_EQ(session.completedSteps(), 0);
    EXPECT_FALSE(session.done());
    EXPECT_EQ(session.currentInputSize(), 64);

    EXPECT_TRUE(session.step());
    EXPECT_EQ(session.completedSteps(), 1);

    TuningResult result = session.run();
    EXPECT_TRUE(session.done());
    EXPECT_EQ(session.completedSteps(), session.totalSteps());
    EXPECT_FALSE(session.step()); // no-op once done
    int64_t lws = result.best.tunableValue("lws");
    EXPECT_GE(lws, 64);
    EXPECT_LE(lws, 256);
}

TEST(TuningSession, BudgetedRunStopsAndContinues)
{
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    TuningResult partial = session.run(7);
    EXPECT_EQ(session.completedSteps(), 7);
    EXPECT_FALSE(session.done());
    EXPECT_TRUE(std::isfinite(partial.bestSeconds));

    // The remaining budget finishes the search.
    session.run(session.totalSteps());
    EXPECT_TRUE(session.done());
}

TEST(TuningSession, BudgetedRunEnforcesValidityOnCompletion)
{
    // A budget large enough to finish the search must apply the same
    // "no valid configuration found" guard as an unbounded run().
    class InfeasibleEvaluator : public Evaluator
    {
      public:
        double
        evaluate(const Config &, int64_t) override
        {
            return std::numeric_limits<double>::infinity();
        }
    };
    InfeasibleEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    EXPECT_THROW(session.run(session.totalSteps()), PanicError);
}

TEST(TuningSession, MatchesDeprecatedEvolutionaryTuner)
{
    BowlEvaluator e1, e2;
    TuningResult viaSession =
        TuningSession(e1, bowlSeed(), fastOptions()).run();
    TuningResult viaShim =
        EvolutionaryTuner(e2, bowlSeed(), fastOptions()).run();
    EXPECT_EQ(viaSession.best, viaShim.best);
    EXPECT_DOUBLE_EQ(viaSession.bestSeconds, viaShim.bestSeconds);
}

TEST(TuningSession, BatchSerialAndCachedPathsAgreeOnChampion)
{
    // Same seed, three evaluation paths: serial loop without cache,
    // serial loop with cache, and a reordered batch hook with cache.
    // The search trajectory is driven by the RNG alone, so all three
    // must crown the identical champion.
    BowlEvaluator serialEval;
    TuningResult serial =
        TuningSession(serialEval, bowlSeed(), fastOptions(false)).run();

    BowlEvaluator cachedEval;
    TuningResult cached =
        TuningSession(cachedEval, bowlSeed(), fastOptions(true)).run();

    ReverseBatchBowl batchEval;
    TuningResult batched =
        TuningSession(batchEval, bowlSeed(), fastOptions(true)).run();
    EXPECT_GT(batchEval.batchCalls, 0);

    EXPECT_EQ(serial.best, cached.best);
    EXPECT_EQ(serial.best, batched.best);
    EXPECT_DOUBLE_EQ(serial.bestSeconds, cached.bestSeconds);
    EXPECT_DOUBLE_EQ(serial.bestSeconds, batched.bestSeconds);
}

TEST(TuningSession, CacheSkipsDuplicateEvaluations)
{
    // A 2-algorithm selector search revisits configurations often.
    Config seed;
    seed.addSelector(Selector("algo", 2, 0));

    CrossoverEvaluator uncachedEval;
    TuningSession uncached(uncachedEval, seed, fastOptions(false));
    TuningResult uncachedResult = uncached.run();
    EXPECT_EQ(uncachedResult.cacheHits, 0);

    CrossoverEvaluator cachedEval;
    TuningSession cachedSession(cachedEval, seed, fastOptions(true));
    TuningResult cachedResult = cachedSession.run();

    EXPECT_EQ(cachedResult.best, uncachedResult.best);
    EXPECT_GT(cachedResult.cacheHits, 0);
    EXPECT_LT(cachedResult.evaluations, uncachedResult.evaluations);
    EXPECT_EQ(cachedSession.cache().stats().hits +
                  cachedSession.cache().stats().misses,
              cachedResult.cacheHits + cachedResult.evaluations);
}

TEST(TuningSession, ProgressCallbackFiresEveryStep)
{
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    int fired = 0;
    int lastCompleted = 0;
    session.onProgress([&](const SessionProgress &progress) {
        ++fired;
        lastCompleted = progress.completedSteps;
        EXPECT_EQ(progress.totalSteps, session.totalSteps());
        EXPECT_GT(progress.inputSize, 0);
    });
    session.run();
    EXPECT_EQ(fired, session.totalSteps());
    EXPECT_EQ(lastCompleted, session.totalSteps());
}

TEST(TuningSession, SaveLoadRoundTripsMidSearchState)
{
    const std::string path = tempPath("session_roundtrip.ckpt");
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    session.run(9);
    session.save(path);

    BowlEvaluator freshEval;
    TuningSession restored(freshEval, bowlSeed(), fastOptions());
    restored.load(path);
    EXPECT_EQ(restored.completedSteps(), session.completedSteps());
    EXPECT_EQ(restored.currentInputSize(), session.currentInputSize());
    EXPECT_EQ(restored.result().best, session.result().best);
    EXPECT_DOUBLE_EQ(restored.result().bestSeconds,
                     session.result().bestSeconds);
    EXPECT_EQ(restored.result().mutationsAccepted,
              session.result().mutationsAccepted);
    std::remove(path.c_str());
}

TEST(TuningSession, ResumedSearchReachesTheUninterruptedChampion)
{
    for (int killAfter : {1, 9, 17}) {
        BowlEvaluator referenceEval;
        TuningResult reference =
            TuningSession(referenceEval, bowlSeed(), fastOptions())
                .run();

        const std::string path = tempPath("session_resume.ckpt");
        BowlEvaluator killedEval;
        TuningSession killed(killedEval, bowlSeed(), fastOptions());
        killed.run(killAfter);
        killed.save(path);

        BowlEvaluator resumedEval;
        TuningSession resumed(resumedEval, bowlSeed(), fastOptions());
        resumed.load(path);
        TuningResult result = resumed.run();
        std::remove(path.c_str());

        EXPECT_EQ(result.best, reference.best)
            << "killed after " << killAfter << " steps";
        EXPECT_DOUBLE_EQ(result.bestSeconds, reference.bestSeconds);
        EXPECT_EQ(result.mutationsAccepted, reference.mutationsAccepted);
        EXPECT_EQ(result.mutationsRejected, reference.mutationsRejected);
    }
}

TEST(TuningSession, LoadRejectsCheckpointForDifferentSeedConfig)
{
    const std::string path = tempPath("session_schema.ckpt");
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    session.run(2);
    session.save(path);

    Config otherSeed;
    otherSeed.addTunable({"lws", 1, 1024, 4, false}); // different value
    BowlEvaluator otherEval;
    TuningSession other(otherEval, otherSeed, fastOptions());
    EXPECT_THROW(other.load(path), FatalError);
    std::remove(path.c_str());
}

TEST(TuningSession, LoadRejectsCheckpointUnderDifferentOptions)
{
    const std::string path = tempPath("session_options.ckpt");
    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    session.run(9);
    session.save(path);

    // Same seed config, different search schedule: the cursor in the
    // checkpoint is meaningless here and must be rejected, not loaded.
    TunerOptions shorter = fastOptions();
    shorter.maxInputSize = 1 << 10;
    shorter.sizeGrowthFactor = 2;
    BowlEvaluator otherEval;
    TuningSession other(otherEval, bowlSeed(), shorter);
    EXPECT_THROW(other.load(path), FatalError);
    std::remove(path.c_str());
}

TEST(TuningSession, LoadRejectsNonCheckpointFiles)
{
    const std::string path = tempPath("session_garbage.ckpt");
    KvFile garbage;
    garbage.set("hello", "world");
    garbage.save(path);

    BowlEvaluator eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    EXPECT_THROW(session.load(path), FatalError);
    std::remove(path.c_str());
}

TEST(TuningSession, SharedCacheChampionMatchesPrivateRun)
{
    // The L2 is a pure memo: attaching it (empty or warm) must change
    // accounting, never the champion. Three runs with the same seed —
    // private L1 only, first-through-the-shared-cache, and
    // second-through-the-shared-cache — must agree byte-for-byte.
    BowlEvaluator privateEval;
    TuningResult priv =
        TuningSession(privateEval, bowlSeed(), fastOptions()).run();

    cache::SharedCacheOptions cacheOptions;
    cacheOptions.maxBytes = 1 << 20;
    cache::SharedEvaluationCache shared(cacheOptions);
    constexpr uint64_t kScope = 7;

    BowlEvaluator firstEval;
    TuningSession first(firstEval, bowlSeed(), fastOptions());
    first.attachSharedCache(&shared, kScope);
    TuningResult cold = first.run();

    BowlEvaluator secondEval;
    TuningSession second(secondEval, bowlSeed(), fastOptions());
    second.attachSharedCache(&shared, kScope);
    TuningResult warm = second.run();

    EXPECT_EQ(priv.best, cold.best);
    EXPECT_EQ(priv.best, warm.best);
    EXPECT_DOUBLE_EQ(priv.bestSeconds, cold.bestSeconds);
    EXPECT_DOUBLE_EQ(priv.bestSeconds, warm.bestSeconds);

    // The second session rode the first one's evaluations.
    EXPECT_LT(secondEval.calls, firstEval.calls);
    EXPECT_GT(second.introspect().sharedHits, 0);
    EXPECT_GT(shared.stats().crossSessionHits, 0);
    EXPECT_GT(first.introspect().sharedPublishes, 0);
}

TEST(TuningSession, SharedCacheScopesDoNotBleed)
{
    // Different cacheScope (different engine/machine identity): a
    // fully warmed cache must answer nothing.
    cache::SharedCacheOptions cacheOptions;
    cacheOptions.maxBytes = 1 << 20;
    cache::SharedEvaluationCache shared(cacheOptions);

    BowlEvaluator firstEval;
    TuningSession first(firstEval, bowlSeed(), fastOptions());
    first.attachSharedCache(&shared, /*scope=*/1);
    first.run();

    BowlEvaluator secondEval;
    TuningSession second(secondEval, bowlSeed(), fastOptions());
    second.attachSharedCache(&shared, /*scope=*/2);
    second.run();

    EXPECT_EQ(second.introspect().sharedHits, 0);
    EXPECT_EQ(secondEval.calls, firstEval.calls);
}

TEST(TuningSession, SharedCacheNeverSeesFailures)
{
    // An evaluator with infeasible points: +inf stays in the private
    // L1; the shared tier receives only finite seconds, and the
    // session filters before publish (so not even the cache's own
    // non-finite rejection counter moves).
    class PartiallyInfeasibleBowl : public BowlEvaluator
    {
      public:
        double
        evaluate(const Config &config, int64_t size) override
        {
            if (config.tunableValue("lws") > 512)
                return std::numeric_limits<double>::infinity();
            return BowlEvaluator::evaluate(config, size);
        }
    };

    cache::SharedCacheOptions cacheOptions;
    cacheOptions.maxBytes = 1 << 20;
    cache::SharedEvaluationCache shared(cacheOptions);

    PartiallyInfeasibleBowl eval;
    TuningSession session(eval, bowlSeed(), fastOptions());
    session.attachSharedCache(&shared, /*scope=*/3);
    session.run();

    SessionIntrospection view = session.introspect();
    EXPECT_GT(view.sharedPublishes, 0);
    EXPECT_EQ(shared.stats().rejectedNonFinite, 0);
    // Each published key was unique (the L1 answers repeats), so
    // publishes and insertions line up exactly.
    EXPECT_EQ(shared.stats().insertions, view.sharedPublishes);
}

} // namespace
} // namespace tuner
} // namespace petabricks
