/**
 * Round-trip of the choice configuration file format (Figure 3):
 * toKv()/loadValues() must preserve selector cutoffs and tunable
 * values, clamp via the Tunable helper, and reject values that do not
 * fit the schema config.
 */
#include <gtest/gtest.h>

#include "support/error.h"
#include "tuner/config.h"

namespace petabricks {
namespace tuner {
namespace {

/** A config with the shape the benchmarks use. */
Config
schemaConfig()
{
    Config config;
    config.addSelector(Selector("Sort.algorithm", 7, 0));
    config.addSelector(Selector("Conv.backend", 3, 0));
    config.addTunable({"Sort.taskCutoff", 16, 1 << 22, 512, true});
    config.addTunable({"Conv.lws", 1, 1024, 64, false});
    return config;
}

TEST(ConfigSerialization, RoundTripPreservesEverything)
{
    Config tuned = schemaConfig();
    Selector &s = tuned.selector("Sort.algorithm");
    s.insertLevel(341, 5);
    s.insertLevel(64294, 2);
    s.insertLevel(174762, 4);
    tuned.selector("Conv.backend").setAlgorithm(0, 2);
    tuned.tunable("Sort.taskCutoff").value = 4096;
    tuned.tunable("Conv.lws").value = 256;

    // A fresh structurally identical config provides the schema.
    Config loaded = schemaConfig();
    loaded.loadValues(tuned.toKv());
    EXPECT_EQ(loaded, tuned);

    // Selector semantics survive, not just the raw fields.
    EXPECT_EQ(loaded.selector("Sort.algorithm").select(200), 0);
    EXPECT_EQ(loaded.selector("Sort.algorithm").select(5000), 5);
    EXPECT_EQ(loaded.selector("Sort.algorithm").select(100000), 2);
    EXPECT_EQ(loaded.selector("Sort.algorithm").select(1 << 20), 4);
}

TEST(ConfigSerialization, RoundTripThroughTextFormat)
{
    Config tuned = schemaConfig();
    tuned.selector("Sort.algorithm").insertLevel(1000, 3);
    tuned.tunable("Conv.lws").value = 128;

    std::string text = tuned.toKv().toString();
    Config loaded = schemaConfig();
    loaded.loadValues(KvFile::fromString(text));
    EXPECT_EQ(loaded, tuned);
}

TEST(ConfigSerialization, TunableClampRespectsBounds)
{
    Tunable t{"t", 16, 1024, 64, true};
    EXPECT_EQ(t.clamp(5), 16);
    EXPECT_EQ(t.clamp(16), 16);
    EXPECT_EQ(t.clamp(500), 500);
    EXPECT_EQ(t.clamp(1 << 20), 1024);
}

TEST(ConfigSerialization, MissingKeyIsASchemaError)
{
    Config tuned = schemaConfig();
    KvFile kv = tuned.toKv();

    Config extra = schemaConfig();
    extra.addTunable({"New.knob", 1, 8, 4, false});
    EXPECT_THROW(extra.loadValues(kv), FatalError);
}

TEST(ConfigSerialization, OutOfRangeTunableValueIsRejected)
{
    KvFile kv = schemaConfig().toKv();
    kv.setInt("Conv.lws", 4096); // above the tunable's maxValue
    Config loaded = schemaConfig();
    EXPECT_THROW(loaded.loadValues(kv), FatalError);
}

TEST(ConfigSerialization, OutOfRangeSelectorAlgorithmIsRejected)
{
    Config tuned = schemaConfig();
    KvFile kv = tuned.toKv();
    kv.setIntList("Conv.backend.algorithms", {9}); // only 3 algorithms
    Config loaded = schemaConfig();
    EXPECT_THROW(loaded.loadValues(kv), FatalError);
}

TEST(ConfigSerialization, MalformedSelectorShapeIsRejected)
{
    Config tuned = schemaConfig();
    KvFile kv = tuned.toKv();
    // Two cutoffs require three algorithm levels.
    kv.setIntList("Sort.algorithm.cutoffs", {100, 1000});
    kv.setIntList("Sort.algorithm.algorithms", {0, 1});
    Config loaded = schemaConfig();
    EXPECT_THROW(loaded.loadValues(kv), FatalError);
}

} // namespace
} // namespace tuner
} // namespace petabricks
