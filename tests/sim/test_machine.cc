#include <gtest/gtest.h>

#include "sim/machine.h"
#include "support/error.h"

namespace petabricks {
namespace sim {
namespace {

TEST(Machine, FiveProfilesExist)
{
    auto machines = MachineProfile::all();
    ASSERT_EQ(machines.size(), 5u);
    EXPECT_EQ(machines[0].name, "Desktop");
    EXPECT_EQ(machines[1].name, "Server");
    EXPECT_EQ(machines[2].name, "Laptop");
    EXPECT_EQ(machines[3].name, "Ultrabook");
    EXPECT_EQ(machines[4].name, "BigLittle");
}

TEST(Machine, ByNameLookup)
{
    EXPECT_EQ(MachineProfile::byName("Server").cpu.cores, 32);
    EXPECT_EQ(MachineProfile::byName("Ultrabook").cpu.cores, 2);
    EXPECT_EQ(MachineProfile::byName("BigLittle").cpu.cores, 8);
    EXPECT_THROW(MachineProfile::byName("Phone"), FatalError);
}

TEST(Machine, ByNameUnknownListsKnownProfiles)
{
    try {
        MachineProfile::byName("Phone");
        FAIL() << "byName should have thrown";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("Phone"), std::string::npos) << what;
        for (const auto &m : MachineProfile::all())
            EXPECT_NE(what.find(m.name), std::string::npos) << what;
    }
}

TEST(Machine, UltrabookIsZeroCopyIntegratedGpu)
{
    auto m = MachineProfile::ultrabook();
    EXPECT_TRUE(m.hasOpenCL);
    EXPECT_EQ(m.ocl.type, DeviceType::Gpu);
    EXPECT_FALSE(m.oclSharesCpu);
    EXPECT_TRUE(m.transfer.isFree()); // shared memory: zero-copy
}

TEST(Machine, BigLittleHasNoOpenCL)
{
    auto m = MachineProfile::bigLittle();
    EXPECT_FALSE(m.hasOpenCL);
    EXPECT_EQ(m.cpu.cores, 8);
    EXPECT_EQ(m.workerThreads, 8);
}

TEST(Machine, CoreCountsMatchPaperFigure9)
{
    EXPECT_EQ(MachineProfile::desktop().cpu.cores, 4);
    EXPECT_EQ(MachineProfile::server().cpu.cores, 32);
    EXPECT_EQ(MachineProfile::laptop().cpu.cores, 2);
}

TEST(Machine, ServerUsesSixteenWorkers)
{
    // Section 6.1: "On Server, the number of threads is set to 16".
    EXPECT_EQ(MachineProfile::server().workerThreads, 16);
    EXPECT_EQ(MachineProfile::desktop().workerThreads, 4);
    EXPECT_EQ(MachineProfile::laptop().workerThreads, 2);
}

TEST(Machine, ServerOpenCLSharesCpuAndHasFreeTransfer)
{
    auto server = MachineProfile::server();
    EXPECT_TRUE(server.hasOpenCL);
    EXPECT_TRUE(server.oclSharesCpu);
    EXPECT_EQ(server.ocl.type, DeviceType::CpuOpenCL);
    EXPECT_TRUE(server.transfer.isFree());
    EXPECT_DOUBLE_EQ(server.transfer.seconds(1e9), 0.0);
}

TEST(Machine, DiscreteGpusPayForTransfers)
{
    for (const auto &m :
         {MachineProfile::desktop(), MachineProfile::laptop()}) {
        EXPECT_FALSE(m.oclSharesCpu) << m.name;
        EXPECT_FALSE(m.transfer.isFree()) << m.name;
        EXPECT_GT(m.transfer.seconds(1 << 20), 0.0) << m.name;
        EXPECT_TRUE(m.ocl.dedicatedLocalMem) << m.name;
    }
}

TEST(Machine, CpuOpenCLHasNoDedicatedLocalMem)
{
    // Section 2.2: on CPU OpenCL targets the shared memory maps onto the
    // same caches/buses, so prefetching is wasted work.
    EXPECT_FALSE(MachineProfile::server().ocl.dedicatedLocalMem);
}

TEST(Machine, DesktopGpuDwarfsItsCpu)
{
    auto desktop = MachineProfile::desktop();
    EXPECT_GT(desktop.ocl.peakGflops(), 10 * desktop.cpu.peakGflops());
}

TEST(Machine, LaptopGpuIsCloserToItsCpu)
{
    // Mobile GPUs have weak double-precision throughput: the Laptop's
    // GPU peak is only ~2x its CPU, versus ~25x on Desktop — which is
    // exactly why the Laptop benefits from CPU/GPU work splits.
    auto laptop = MachineProfile::laptop();
    double ratio = laptop.ocl.peakGflops() / laptop.cpu.peakGflops();
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 10.0);
}

TEST(Machine, TransferSecondsScalesWithBytes)
{
    auto t = MachineProfile::desktop().transfer;
    double small = t.seconds(1 << 10);
    double large = t.seconds(1 << 26);
    EXPECT_GT(large, small);
    EXPECT_GT(small, 0.0); // latency floor
}

TEST(Machine, DeviceTypeNames)
{
    EXPECT_STREQ(deviceTypeName(DeviceType::Cpu), "CPU");
    EXPECT_STREQ(deviceTypeName(DeviceType::Gpu), "GPU");
    EXPECT_STREQ(deviceTypeName(DeviceType::CpuOpenCL), "CPU-OpenCL");
}

TEST(MachineFingerprint, StableForEqualContent)
{
    // Two independently built copies of the same profile must agree —
    // the fingerprint keys on-disk cache segments, so it has to be a
    // pure function of the parameters.
    EXPECT_EQ(MachineProfile::desktop().fingerprint(),
              MachineProfile::desktop().fingerprint());
    MachineProfile copy = MachineProfile::server();
    EXPECT_EQ(copy.fingerprint(), MachineProfile::server().fingerprint());
}

TEST(MachineFingerprint, DistinguishesEveryRegisteredProfile)
{
    auto machines = MachineProfile::all();
    for (size_t i = 0; i < machines.size(); ++i)
        for (size_t j = i + 1; j < machines.size(); ++j)
            EXPECT_NE(machines[i].fingerprint(),
                      machines[j].fingerprint())
                << machines[i].name << " vs " << machines[j].name;
}

TEST(MachineFingerprint, SensitiveToEveryParameterKind)
{
    const MachineProfile base = MachineProfile::desktop();

    MachineProfile m = base; // int field
    m.workerThreads = base.workerThreads + 1;
    EXPECT_NE(m.fingerprint(), base.fingerprint());

    m = base; // double field
    m.kernelCompileSeconds = base.kernelCompileSeconds * 2;
    EXPECT_NE(m.fingerprint(), base.fingerprint());

    m = base; // string field
    m.os = "TempleOS";
    EXPECT_NE(m.fingerprint(), base.fingerprint());

    m = base; // nested device field
    m.cpu.cores = base.cpu.cores + 1;
    EXPECT_NE(m.fingerprint(), base.fingerprint());

    m = base; // display name alone is content too
    m.name = "Desktop2";
    EXPECT_NE(m.fingerprint(), base.fingerprint());
}

TEST(MachineFingerprint, SwappedEqualValuesDoNotAlias)
{
    // Each field is hashed tagged with its name before the commutative
    // combine, so moving a value between two fields must change the
    // fingerprint — equal values in different slots are different
    // machines.
    MachineProfile a = MachineProfile::desktop();
    a.workerThreads = 2;
    a.blasThreads = 8;
    MachineProfile b = MachineProfile::desktop();
    b.workerThreads = 8;
    b.blasThreads = 2;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(MachineFingerprint, IgnoresOpenCLParametersWhenDisabled)
{
    // A CPU-only machine is the same machine whatever garbage its
    // unused OpenCL fields hold.
    MachineProfile a = MachineProfile::server();
    a.hasOpenCL = false;
    MachineProfile b = a;
    b.ocl.cores = 9999;
    b.transfer.latencyUs = 123.0;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

} // namespace
} // namespace sim
} // namespace petabricks
