#include <gtest/gtest.h>

#include "sim/machine.h"
#include "support/error.h"

namespace petabricks {
namespace sim {
namespace {

TEST(Machine, ThreeProfilesExist)
{
    auto machines = MachineProfile::all();
    ASSERT_EQ(machines.size(), 3u);
    EXPECT_EQ(machines[0].name, "Desktop");
    EXPECT_EQ(machines[1].name, "Server");
    EXPECT_EQ(machines[2].name, "Laptop");
}

TEST(Machine, ByNameLookup)
{
    EXPECT_EQ(MachineProfile::byName("Server").cpu.cores, 32);
    EXPECT_THROW(MachineProfile::byName("Phone"), FatalError);
}

TEST(Machine, CoreCountsMatchPaperFigure9)
{
    EXPECT_EQ(MachineProfile::desktop().cpu.cores, 4);
    EXPECT_EQ(MachineProfile::server().cpu.cores, 32);
    EXPECT_EQ(MachineProfile::laptop().cpu.cores, 2);
}

TEST(Machine, ServerUsesSixteenWorkers)
{
    // Section 6.1: "On Server, the number of threads is set to 16".
    EXPECT_EQ(MachineProfile::server().workerThreads, 16);
    EXPECT_EQ(MachineProfile::desktop().workerThreads, 4);
    EXPECT_EQ(MachineProfile::laptop().workerThreads, 2);
}

TEST(Machine, ServerOpenCLSharesCpuAndHasFreeTransfer)
{
    auto server = MachineProfile::server();
    EXPECT_TRUE(server.hasOpenCL);
    EXPECT_TRUE(server.oclSharesCpu);
    EXPECT_EQ(server.ocl.type, DeviceType::CpuOpenCL);
    EXPECT_TRUE(server.transfer.isFree());
    EXPECT_DOUBLE_EQ(server.transfer.seconds(1e9), 0.0);
}

TEST(Machine, DiscreteGpusPayForTransfers)
{
    for (const auto &m :
         {MachineProfile::desktop(), MachineProfile::laptop()}) {
        EXPECT_FALSE(m.oclSharesCpu) << m.name;
        EXPECT_FALSE(m.transfer.isFree()) << m.name;
        EXPECT_GT(m.transfer.seconds(1 << 20), 0.0) << m.name;
        EXPECT_TRUE(m.ocl.dedicatedLocalMem) << m.name;
    }
}

TEST(Machine, CpuOpenCLHasNoDedicatedLocalMem)
{
    // Section 2.2: on CPU OpenCL targets the shared memory maps onto the
    // same caches/buses, so prefetching is wasted work.
    EXPECT_FALSE(MachineProfile::server().ocl.dedicatedLocalMem);
}

TEST(Machine, DesktopGpuDwarfsItsCpu)
{
    auto desktop = MachineProfile::desktop();
    EXPECT_GT(desktop.ocl.peakGflops(), 10 * desktop.cpu.peakGflops());
}

TEST(Machine, LaptopGpuIsCloserToItsCpu)
{
    // Mobile GPUs have weak double-precision throughput: the Laptop's
    // GPU peak is only ~2x its CPU, versus ~25x on Desktop — which is
    // exactly why the Laptop benefits from CPU/GPU work splits.
    auto laptop = MachineProfile::laptop();
    double ratio = laptop.ocl.peakGflops() / laptop.cpu.peakGflops();
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 10.0);
}

TEST(Machine, TransferSecondsScalesWithBytes)
{
    auto t = MachineProfile::desktop().transfer;
    double small = t.seconds(1 << 10);
    double large = t.seconds(1 << 26);
    EXPECT_GT(large, small);
    EXPECT_GT(small, 0.0); // latency floor
}

TEST(Machine, DeviceTypeNames)
{
    EXPECT_STREQ(deviceTypeName(DeviceType::Cpu), "CPU");
    EXPECT_STREQ(deviceTypeName(DeviceType::Gpu), "GPU");
    EXPECT_STREQ(deviceTypeName(DeviceType::CpuOpenCL), "CPU-OpenCL");
}

} // namespace
} // namespace sim
} // namespace petabricks
