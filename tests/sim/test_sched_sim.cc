#include <gtest/gtest.h>

#include "sim/sched_sim.h"
#include "support/error.h"

namespace petabricks {
namespace sim {
namespace {

TEST(SchedSim, EmptyDagHasZeroMakespan)
{
    ScheduleSimulator sim(4);
    EXPECT_DOUBLE_EQ(sim.run(), 0.0);
}

TEST(SchedSim, SingleTask)
{
    ScheduleSimulator sim(1);
    auto t = sim.addTask(SimResource::CpuWorker, 2.5);
    EXPECT_DOUBLE_EQ(sim.run(), 2.5);
    EXPECT_DOUBLE_EQ(sim.finishTime(t), 2.5);
}

TEST(SchedSim, ChainSerializes)
{
    ScheduleSimulator sim(4);
    auto a = sim.addTask(SimResource::CpuWorker, 1.0);
    auto b = sim.addTask(SimResource::CpuWorker, 1.0, {a});
    auto c = sim.addTask(SimResource::CpuWorker, 1.0, {b});
    EXPECT_DOUBLE_EQ(sim.run(), 3.0);
    EXPECT_DOUBLE_EQ(sim.finishTime(c), 3.0);
}

TEST(SchedSim, IndependentTasksRunInParallel)
{
    ScheduleSimulator sim(4);
    for (int i = 0; i < 4; ++i)
        sim.addTask(SimResource::CpuWorker, 1.0);
    EXPECT_DOUBLE_EQ(sim.run(), 1.0);
}

TEST(SchedSim, PoolSaturationQueues)
{
    ScheduleSimulator sim(2);
    for (int i = 0; i < 4; ++i)
        sim.addTask(SimResource::CpuWorker, 1.0);
    EXPECT_DOUBLE_EQ(sim.run(), 2.0);
}

TEST(SchedSim, GpuQueueIsInOrder)
{
    ScheduleSimulator sim(4);
    auto k1 = sim.addTask(SimResource::GpuQueue, 1.0);
    auto k2 = sim.addTask(SimResource::GpuQueue, 1.0);
    sim.run();
    EXPECT_DOUBLE_EQ(sim.finishTime(k1), 1.0);
    EXPECT_DOUBLE_EQ(sim.finishTime(k2), 2.0);
}

TEST(SchedSim, TransferOverlapsKernel)
{
    // Non-blocking copies: a transfer for the next kernel overlaps the
    // current kernel execution (Section 4.2 design goal).
    ScheduleSimulator sim(4);
    sim.addTask(SimResource::GpuQueue, 1.0);
    sim.addTask(SimResource::Transfer, 1.0);
    EXPECT_DOUBLE_EQ(sim.run(), 1.0);
}

TEST(SchedSim, CpuAndGpuOverlapOnDiscreteGpu)
{
    ScheduleSimulator sim(2, /*oclSharesCpu=*/false);
    sim.addTask(SimResource::CpuWorker, 1.0);
    sim.addTask(SimResource::GpuQueue, 1.0);
    EXPECT_DOUBLE_EQ(sim.run(), 1.0);
}

TEST(SchedSim, SharedCpuOpenCLContendsWithCpuWork)
{
    // Server: the OpenCL "device" is the CPU itself, so a kernel and a
    // native task cannot truly overlap.
    ScheduleSimulator sim(2, /*oclSharesCpu=*/true);
    sim.addTask(SimResource::CpuWorker, 1.0);
    sim.addTask(SimResource::GpuQueue, 1.0);
    EXPECT_DOUBLE_EQ(sim.run(), 2.0);
}

TEST(SchedSim, CpuPoolTaskNeedsWholePool)
{
    ScheduleSimulator sim(2);
    auto w = sim.addTask(SimResource::CpuWorker, 1.0);
    auto p = sim.addTask(SimResource::CpuPool, 1.0);
    auto w2 = sim.addTask(SimResource::CpuWorker, 1.0);
    EXPECT_DOUBLE_EQ(sim.run(), 3.0);
    EXPECT_DOUBLE_EQ(sim.finishTime(w), 1.0);
    EXPECT_DOUBLE_EQ(sim.finishTime(p), 2.0);
    // Strict FIFO: the single-worker task behind the pool task waits.
    EXPECT_DOUBLE_EQ(sim.finishTime(w2), 3.0);
}

TEST(SchedSim, NoneTasksAreFreeJoins)
{
    ScheduleSimulator sim(2);
    auto a = sim.addTask(SimResource::CpuWorker, 1.0);
    auto b = sim.addTask(SimResource::CpuWorker, 2.0);
    auto join = sim.addTask(SimResource::None, 0.0, {a, b});
    auto after = sim.addTask(SimResource::CpuWorker, 1.0, {join});
    EXPECT_DOUBLE_EQ(sim.run(), 3.0);
    EXPECT_DOUBLE_EQ(sim.finishTime(join), 2.0);
    EXPECT_DOUBLE_EQ(sim.finishTime(after), 3.0);
}

TEST(SchedSim, DiamondDependency)
{
    ScheduleSimulator sim(4);
    auto src = sim.addTask(SimResource::CpuWorker, 1.0);
    auto left = sim.addTask(SimResource::CpuWorker, 2.0, {src});
    auto right = sim.addTask(SimResource::CpuWorker, 3.0, {src});
    auto sink = sim.addTask(SimResource::CpuWorker, 1.0, {left, right});
    EXPECT_DOUBLE_EQ(sim.run(), 5.0);
    EXPECT_DOUBLE_EQ(sim.finishTime(sink), 5.0);
}

TEST(SchedSim, BusyAccounting)
{
    ScheduleSimulator sim(2);
    sim.addTask(SimResource::CpuWorker, 1.0);
    sim.addTask(SimResource::GpuQueue, 3.0);
    sim.run();
    EXPECT_DOUBLE_EQ(sim.cpuBusySeconds(), 1.0);
    EXPECT_DOUBLE_EQ(sim.gpuBusySeconds(), 3.0);
}

TEST(SchedSim, MixedPipelineMakespan)
{
    // copy-in -> kernel -> copy-out, with CPU work alongside.
    ScheduleSimulator sim(2);
    auto in = sim.addTask(SimResource::Transfer, 0.5);
    auto kernel = sim.addTask(SimResource::GpuQueue, 2.0, {in});
    auto out = sim.addTask(SimResource::Transfer, 0.5, {kernel});
    sim.addTask(SimResource::CpuWorker, 2.5);
    EXPECT_DOUBLE_EQ(sim.run(), 3.0);
    EXPECT_DOUBLE_EQ(sim.finishTime(out), 3.0);
}

TEST(SchedSim, RejectsForwardDependencies)
{
    ScheduleSimulator sim(1);
    EXPECT_THROW(sim.addTask(SimResource::CpuWorker, 1.0, {5}),
                 PanicError);
}

TEST(SchedSim, SingleShot)
{
    ScheduleSimulator sim(1);
    sim.addTask(SimResource::CpuWorker, 1.0);
    sim.run();
    EXPECT_THROW(sim.run(), PanicError);
    EXPECT_THROW(sim.addTask(SimResource::CpuWorker, 1.0), PanicError);
}

TEST(SchedSim, MachineConstructor)
{
    ScheduleSimulator desktop(MachineProfile::desktop());
    desktop.addTask(SimResource::CpuWorker, 1.0);
    EXPECT_DOUBLE_EQ(desktop.run(), 1.0);

    ScheduleSimulator server(MachineProfile::server());
    server.addTask(SimResource::CpuWorker, 1.0);
    server.addTask(SimResource::GpuQueue, 1.0);
    EXPECT_DOUBLE_EQ(server.run(), 2.0); // shares CPU
}

} // namespace
} // namespace sim
} // namespace petabricks
