#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/machine.h"

namespace petabricks {
namespace sim {
namespace {

DeviceSpec
gpuSpec()
{
    return MachineProfile::desktop().ocl;
}

DeviceSpec
cpuSpec()
{
    return MachineProfile::desktop().cpu;
}

TEST(CostReport, AccumulateSums)
{
    CostReport a, b;
    a.flops = 100;
    a.globalBytesRead = 10;
    b.flops = 50;
    b.globalBytesWritten = 5;
    b.barriers = 2;
    a += b;
    EXPECT_DOUBLE_EQ(a.flops, 150);
    EXPECT_DOUBLE_EQ(a.globalBytes(), 15);
    EXPECT_DOUBLE_EQ(a.barriers, 2);
    EXPECT_DOUBLE_EQ(a.invocations, 2);
}

TEST(CostReport, SequentialFractionWeightedByFlops)
{
    CostReport serial;
    serial.flops = 100;
    serial.sequentialFraction = 1.0;
    CostReport parallel;
    parallel.flops = 300;
    parallel.sequentialFraction = 0.0;
    CostReport sum = serial + parallel;
    EXPECT_NEAR(sum.sequentialFraction, 0.25, 1e-12);
}

TEST(CostModel, ComputeBoundKernelScalesWithFlops)
{
    CostReport r1, r2;
    r1.flops = 1e9;
    r2.flops = 2e9;
    double t1 = CostModel::kernelSeconds(gpuSpec(), r1, 64);
    double t2 = CostModel::kernelSeconds(gpuSpec(), r2, 64);
    EXPECT_GT(t2, t1);
    EXPECT_NEAR(t2 / t1, 2.0, 0.2); // launch latency skews slightly
}

TEST(CostModel, MemoryBoundKernelHitsBandwidthRoof)
{
    CostReport r;
    r.flops = 1.0; // negligible
    r.globalBytesRead = 144e9; // exactly one second at desktop GPU BW
    double t = CostModel::kernelSeconds(gpuSpec(), r, 64);
    EXPECT_NEAR(t, 1.0, 0.01);
}

TEST(CostModel, LaunchLatencyDominatesTinyKernels)
{
    CostReport r;
    r.flops = 10;
    double t = CostModel::kernelSeconds(gpuSpec(), r, 64);
    EXPECT_GE(t, gpuSpec().launchLatencyUs * 1e-6);
}

TEST(CostModel, LocalMemoryCheapOnGpu)
{
    // Same traffic through local memory must beat global on a device
    // with a dedicated scratchpad.
    CostReport viaGlobal;
    viaGlobal.globalBytesRead = 10e9;
    CostReport viaLocal;
    viaLocal.localBytes = 10e9;
    double tGlobal = CostModel::kernelSeconds(gpuSpec(), viaGlobal, 64);
    double tLocal = CostModel::kernelSeconds(gpuSpec(), viaLocal, 64);
    EXPECT_LT(tLocal, tGlobal);
}

TEST(CostModel, LocalMemoryWastedOnCpuOpenCL)
{
    // Section 2.2: prefetch into "local" memory is pure overhead on a
    // CPU OpenCL runtime — added traffic, no faster path.
    DeviceSpec cpuOcl = MachineProfile::server().ocl;
    CostReport noPrefetch;
    noPrefetch.globalBytesRead = 10e9;
    CostReport withPrefetch = noPrefetch;
    withPrefetch.localBytes = 10e9;
    double tNo = CostModel::kernelSeconds(cpuOcl, noPrefetch, 64);
    double tWith = CostModel::kernelSeconds(cpuOcl, withPrefetch, 64);
    EXPECT_GT(tWith, tNo);
}

TEST(CostModel, GroupEfficiencyPenalizesUnderfilledWarps)
{
    double effSmall = CostModel::groupEfficiency(gpuSpec(), 8);
    double effWarp = CostModel::groupEfficiency(gpuSpec(), 64);
    EXPECT_LT(effSmall, effWarp);
    EXPECT_LE(effWarp, 1.0);
}

TEST(CostModel, GroupEfficiencyPenalizesHugeGroups)
{
    double eff256 = CostModel::groupEfficiency(gpuSpec(), 256);
    double eff1024 = CostModel::groupEfficiency(gpuSpec(), 1024);
    EXPECT_LT(eff1024, eff256);
}

TEST(CostModel, GroupSizeIrrelevantOnScalarCpu)
{
    DeviceSpec cpu = cpuSpec();
    EXPECT_DOUBLE_EQ(CostModel::groupEfficiency(cpu, 1),
                     CostModel::groupEfficiency(cpu, 512));
}

TEST(CostModel, CpuTaskScalesWithThreads)
{
    CostReport r;
    r.flops = 1e10;
    DeviceSpec cpu = MachineProfile::server().cpu;
    double t1 = CostModel::cpuSeconds(cpu, r, 1);
    double t16 = CostModel::cpuSeconds(cpu, r, 16);
    EXPECT_NEAR(t1 / t16, 16.0, 0.5);
}

TEST(CostModel, CpuThreadsCappedAtCores)
{
    CostReport r;
    r.flops = 1e10;
    DeviceSpec cpu = cpuSpec(); // 4 cores
    EXPECT_DOUBLE_EQ(CostModel::cpuSeconds(cpu, r, 4),
                     CostModel::cpuSeconds(cpu, r, 64));
}

TEST(CostModel, AmdahlLimitsSequentialWork)
{
    CostReport r;
    r.flops = 1e10;
    r.sequentialFraction = 0.5;
    DeviceSpec cpu = MachineProfile::server().cpu;
    double t1 = CostModel::cpuSeconds(cpu, r, 1);
    double t32 = CostModel::cpuSeconds(cpu, r, 32);
    EXPECT_LT(t1 / t32, 2.1); // speedup capped near 2 when half is serial
}

TEST(CostModel, BarriersAddCost)
{
    CostReport plain;
    plain.flops = 1e6;
    CostReport barriered = plain;
    barriered.barriers = 1e6;
    EXPECT_GT(CostModel::kernelSeconds(gpuSpec(), barriered, 64),
              CostModel::kernelSeconds(gpuSpec(), plain, 64));
}

} // namespace
} // namespace sim
} // namespace petabricks
