#include <gtest/gtest.h>

#include "runtime/gpu_memory.h"
#include "sim/machine.h"

namespace petabricks {
namespace runtime {
namespace {

struct GpuMemoryFixture : ::testing::Test
{
    GpuMemoryFixture()
        : device(sim::MachineProfile::desktop().ocl), queue(device),
          table(queue)
    {}

    MatrixD
    filled(int64_t w, int64_t h, double base = 0.0)
    {
        MatrixD m(w, h);
        for (int64_t y = 0; y < h; ++y)
            for (int64_t x = 0; x < w; ++x)
                m.at(x, y) = base + static_cast<double>(y * w + x);
        return m;
    }

    /** Non-blocking copy-ins capture raw host pointers (the OpenCL
     * contract): drain the queue before a test's matrices go out of
     * scope, or the worker races their destruction. Must be called at
     * the end of any test body that enqueues a copy-in — TearDown()
     * and the fixture destructor run only after the body's locals are
     * already destroyed, which is too late. */
    void
    drain()
    {
        queue.finish();
    }

    ocl::Device device;
    ocl::CommandQueue queue;
    GpuMemoryTable table;
};

TEST_F(GpuMemoryFixture, PrepareAllocatesConsolidatedBuffer)
{
    MatrixD m = filled(8, 4);
    auto buf = table.prepare(m);
    ASSERT_NE(buf, nullptr);
    EXPECT_EQ(buf->size(), m.bytes());
    EXPECT_EQ(table.statsSnapshot().buffersAllocated, 1);
}

TEST_F(GpuMemoryFixture, PrepareIsIdempotent)
{
    MatrixD m = filled(4, 4);
    auto b1 = table.prepare(m);
    auto b2 = table.prepare(m);
    EXPECT_EQ(b1, b2);
    EXPECT_EQ(table.statsSnapshot().buffersAllocated, 1);
}

TEST_F(GpuMemoryFixture, CopyInMovesData)
{
    MatrixD m = filled(4, 4);
    table.prepare(m);
    EXPECT_TRUE(table.copyIn(m, m.fullRegion()));
    queue.finish();
    auto buf = table.buffer(m);
    EXPECT_EQ(buf->as<double>()[5], 5.0);
    EXPECT_TRUE(table.validOnDevice(m, m.fullRegion()));
}

TEST_F(GpuMemoryFixture, CopyInDeduplicated)
{
    // Section 4.3 copy-in management: if data is already on the GPU the
    // copy-in completes without executing.
    MatrixD m = filled(4, 4);
    table.prepare(m);
    EXPECT_TRUE(table.copyIn(m, m.fullRegion()));
    EXPECT_FALSE(table.copyIn(m, m.fullRegion()));
    EXPECT_FALSE(table.copyIn(m, Region(1, 1, 2, 2))); // subregion
    auto stats = table.statsSnapshot();
    EXPECT_EQ(stats.copyInsPerformed, 1);
    EXPECT_EQ(stats.copyInsSkipped, 2);
    drain();
}

TEST_F(GpuMemoryFixture, KernelOutputCountsAsResident)
{
    // A region produced on the GPU satisfies later copy-ins too.
    MatrixD m = filled(4, 4);
    table.prepare(m);
    table.markDeviceWritten(m, m.fullRegion());
    EXPECT_FALSE(table.copyIn(m, Region(0, 0, 4, 2)));
    EXPECT_EQ(table.statsSnapshot().copyInsSkipped, 1);
}

TEST_F(GpuMemoryFixture, PartialResidencyStillCopies)
{
    MatrixD m = filled(4, 4);
    table.prepare(m);
    table.copyIn(m, Region(0, 0, 4, 2)); // top half only
    EXPECT_TRUE(table.copyIn(m, m.fullRegion()));
    EXPECT_EQ(table.statsSnapshot().copyInsPerformed, 2);
    drain();
}

TEST_F(GpuMemoryFixture, EagerCopyOutRoundTrip)
{
    MatrixD m = filled(4, 4);
    table.prepare(m);
    // Kernel writes directly into the consolidated buffer.
    auto buf = table.buffer(m);
    for (int i = 0; i < 16; ++i)
        buf->as<double>()[i] = 100.0 + i;
    table.markDeviceWritten(m, m.fullRegion());
    EXPECT_TRUE(table.hostStale(m, m.fullRegion()));

    auto event = table.copyOut(m, m.fullRegion());
    event->wait();
    EXPECT_EQ(m.at(0, 0), 100.0);
    EXPECT_EQ(m.at(3, 3), 115.0);
    EXPECT_FALSE(table.hostStale(m, m.fullRegion()));
    EXPECT_EQ(table.statsSnapshot().eagerCopyOuts, 1);
}

TEST_F(GpuMemoryFixture, CopyOutOfUnwrittenRegionPanics)
{
    MatrixD m = filled(4, 4);
    table.prepare(m);
    EXPECT_THROW(table.copyOut(m, m.fullRegion()), PanicError);
}

TEST_F(GpuMemoryFixture, LazyCopyOutOnDemand)
{
    // may copy-out: data stays on the GPU until a consumer checks.
    MatrixD m = filled(4, 4);
    table.prepare(m);
    auto buf = table.buffer(m);
    for (int i = 0; i < 16; ++i)
        buf->as<double>()[i] = 50.0 + i;
    table.markDeviceWritten(m, m.fullRegion());

    table.ensureOnHost(m, Region(0, 0, 2, 2));
    EXPECT_EQ(m.at(1, 1), 55.0);
    EXPECT_EQ(table.statsSnapshot().lazyCopyOuts, 1);
    // The rest is still pending.
    EXPECT_TRUE(table.hostStale(m, Region(2, 2, 2, 2)));
    EXPECT_FALSE(table.hostStale(m, Region(0, 0, 2, 2)));
}

TEST_F(GpuMemoryFixture, LazyCheckOnCleanDataIsFree)
{
    MatrixD m = filled(4, 4);
    table.prepare(m);
    table.copyIn(m, m.fullRegion());
    table.ensureOnHost(m, m.fullRegion());
    auto stats = table.statsSnapshot();
    EXPECT_EQ(stats.lazyCopyOuts, 0);
    EXPECT_EQ(stats.lazyChecksClean, 1);
    drain();
}

TEST_F(GpuMemoryFixture, EnsureOnHostForUntrackedMatrixIsNoop)
{
    MatrixD m = filled(2, 2);
    EXPECT_NO_THROW(table.ensureOnHost(m, m.fullRegion()));
}

TEST_F(GpuMemoryFixture, InvalidateReleasesBuffer)
{
    MatrixD m = filled(4, 4);
    table.prepare(m);
    table.copyIn(m, m.fullRegion());
    table.invalidate(m);
    EXPECT_FALSE(table.validOnDevice(m, m.fullRegion()));
    EXPECT_EQ(table.statsSnapshot().buffersReleased, 1);
    // A fresh prepare allocates a new buffer.
    table.prepare(m);
    EXPECT_EQ(table.statsSnapshot().buffersAllocated, 2);
    drain();
}

TEST_F(GpuMemoryFixture, InvalidateWithPendingResultsPanics)
{
    MatrixD m = filled(4, 4);
    table.prepare(m);
    table.markDeviceWritten(m, m.fullRegion());
    EXPECT_THROW(table.invalidate(m), PanicError);
}

TEST_F(GpuMemoryFixture, MultiRegionProducersConsolidate)
{
    // Two kernels produce halves of one matrix into the same buffer
    // (the consolidated copy-out optimization).
    MatrixD m(4, 4);
    table.prepare(m);
    auto buf = table.buffer(m);
    for (int i = 0; i < 8; ++i)
        buf->as<double>()[i] = 1.0; // top half
    for (int i = 8; i < 16; ++i)
        buf->as<double>()[i] = 2.0; // bottom half
    table.markDeviceWritten(m, Region(0, 0, 4, 2));
    table.markDeviceWritten(m, Region(0, 2, 4, 2));
    EXPECT_TRUE(table.validOnDevice(m, m.fullRegion()));

    table.copyOut(m, m.fullRegion())->wait();
    EXPECT_EQ(m.at(0, 0), 1.0);
    EXPECT_EQ(m.at(3, 3), 2.0);
    EXPECT_FALSE(table.hostStale(m, m.fullRegion()));
}

TEST_F(GpuMemoryFixture, ClearDropsAllRecords)
{
    MatrixD a = filled(2, 2), b = filled(3, 3);
    table.prepare(a);
    table.prepare(b);
    table.clear();
    EXPECT_EQ(table.statsSnapshot().buffersReleased, 2);
    EXPECT_FALSE(table.validOnDevice(a, a.fullRegion()));
}

} // namespace
} // namespace runtime
} // namespace petabricks
