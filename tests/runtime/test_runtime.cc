#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "runtime/runtime.h"
#include "sim/machine.h"

namespace petabricks {
namespace runtime {
namespace {

TEST(Runtime, RunsASingleTask)
{
    Runtime rt(2);
    std::atomic<int> hits{0};
    rt.run(Task::cpu("t", [&] { hits++; }));
    EXPECT_EQ(hits.load(), 1);
}

TEST(Runtime, RunsManyIndependentTasks)
{
    Runtime rt(4);
    std::atomic<int> hits{0};
    for (int i = 0; i < 500; ++i)
        rt.spawn(Task::cpu("t", [&] { hits++; }));
    rt.wait();
    EXPECT_EQ(hits.load(), 500);
}

TEST(Runtime, RespectsDependencies)
{
    Runtime rt(4);
    std::atomic<int> stage{0};
    TaskPtr a = Task::cpu("a", [&] {
        EXPECT_EQ(stage.exchange(1), 0);
    });
    TaskPtr b = Task::cpu("b", [&] {
        EXPECT_EQ(stage.exchange(2), 1);
    });
    b->dependsOn(a);
    rt.spawn(a);
    rt.spawn(b);
    rt.wait();
    EXPECT_EQ(stage.load(), 2);
}

TEST(Runtime, DiamondDag)
{
    Runtime rt(4);
    std::atomic<int> order{0};
    int posLeft = -1, posRight = -1, posSink = -1;
    TaskPtr src = Task::cpu("src", [&] { order++; });
    TaskPtr left = Task::cpu("left", [&] { posLeft = order++; });
    TaskPtr right = Task::cpu("right", [&] { posRight = order++; });
    TaskPtr sink = Task::cpu("sink", [&] { posSink = order++; });
    left->dependsOn(src);
    right->dependsOn(src);
    sink->dependsOn(left);
    sink->dependsOn(right);
    rt.spawn(src);
    rt.spawn(left);
    rt.spawn(right);
    rt.spawn(sink);
    rt.wait();
    EXPECT_GT(posSink, posLeft);
    EXPECT_GT(posSink, posRight);
}

TEST(Runtime, NestedSpawnFromTaskBody)
{
    Runtime rt(4);
    std::atomic<int> hits{0};
    TaskPtr root = std::make_shared<Task>(
        "root", TaskClass::Cpu, [&](TaskContext &ctx) -> TaskPtr {
            for (int i = 0; i < 50; ++i)
                ctx.spawn(Task::cpu("child", [&] { hits++; }));
            return nullptr;
        });
    rt.run(root);
    rt.wait();
    EXPECT_EQ(hits.load(), 50);
}

TEST(Runtime, ContinuationStyleFanOut)
{
    // root spawns children and returns a continuation that depends on
    // them — the deferred-scheduling pattern from Section 4.1.
    Runtime rt(4);
    std::atomic<int> childHits{0};
    std::atomic<bool> contRan{false};
    TaskPtr root = std::make_shared<Task>(
        "root", TaskClass::Cpu, [&](TaskContext &ctx) -> TaskPtr {
            std::vector<TaskPtr> kids;
            for (int i = 0; i < 20; ++i) {
                kids.push_back(Task::cpu("kid", [&] { childHits++; }));
            }
            TaskPtr cont = Task::cpu("cont", [&] {
                EXPECT_EQ(childHits.load(), 20);
                contRan = true;
            });
            for (auto &k : kids) {
                cont->dependsOn(k);
                ctx.spawn(k);
            }
            return cont;
        });
    rt.run(root);
    EXPECT_TRUE(contRan.load());
}

TEST(Runtime, DependentOnContinuedTaskWaitsForContinuation)
{
    Runtime rt(2);
    std::atomic<int> stage{0};
    TaskPtr root = std::make_shared<Task>(
        "root", TaskClass::Cpu, [&](TaskContext &ctx) -> TaskPtr {
            TaskPtr kid = Task::cpu("kid", [&] {
                EXPECT_EQ(stage.exchange(1), 0);
            });
            TaskPtr cont = Task::cpu("cont", [&] {
                EXPECT_EQ(stage.exchange(2), 1);
            });
            cont->dependsOn(kid);
            ctx.spawn(kid);
            return cont;
        });
    TaskPtr after = Task::cpu("after", [&] {
        EXPECT_EQ(stage.exchange(3), 2);
    });
    after->dependsOn(root);
    rt.spawn(root);
    rt.spawn(after);
    rt.wait();
    EXPECT_EQ(stage.load(), 3);
}

TEST(Runtime, WorkIsDistributedAcrossThreads)
{
    Runtime rt(4);
    std::mutex mu;
    std::set<std::thread::id> threads;
    for (int i = 0; i < 400; ++i) {
        rt.spawn(Task::cpu("t", [&] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            std::lock_guard<std::mutex> lock(mu);
            threads.insert(std::this_thread::get_id());
        }));
    }
    rt.wait();
    EXPECT_GE(threads.size(), 2u);
}

TEST(Runtime, StealsHappenUnderImbalance)
{
    Runtime rt(4);
    // One long chain of spawns from a single root biases work onto one
    // deque; other workers must steal.
    std::atomic<int> hits{0};
    TaskPtr root = std::make_shared<Task>(
        "root", TaskClass::Cpu, [&](TaskContext &ctx) -> TaskPtr {
            for (int i = 0; i < 2000; ++i) {
                ctx.spawn(Task::cpu("w", [&] {
                    volatile double acc = 0;
                    for (int k = 0; k < 2000; ++k)
                        acc = acc + k;
                    hits++;
                }));
            }
            return nullptr;
        });
    rt.run(root);
    EXPECT_EQ(hits.load(), 2000);
    EXPECT_GT(rt.stats().steals.load(), 0);
}

TEST(Runtime, WaitIsReusable)
{
    Runtime rt(2);
    std::atomic<int> hits{0};
    rt.run(Task::cpu("a", [&] { hits++; }));
    rt.run(Task::cpu("b", [&] { hits++; }));
    EXPECT_EQ(hits.load(), 2);
}

TEST(Runtime, GpuTaskRunsOnManagerThread)
{
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    Runtime rt(2, &device);
    std::thread::id gpuThread;
    std::thread::id cpuThread;
    TaskPtr g = std::make_shared<Task>(
        "g", TaskClass::Gpu, [&](TaskContext &) -> TaskPtr {
            gpuThread = std::this_thread::get_id();
            return nullptr;
        });
    TaskPtr c = Task::cpu("c", [&] {
        cpuThread = std::this_thread::get_id();
    });
    rt.spawn(g);
    rt.spawn(c);
    rt.wait();
    EXPECT_NE(gpuThread, std::thread::id());
    EXPECT_NE(gpuThread, cpuThread);
    EXPECT_EQ(rt.stats().gpuTasksExecuted.load(), 1);
}

TEST(Runtime, GpuTasksServedFifo)
{
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    Runtime rt(1, &device);
    std::vector<int> order;
    std::vector<TaskPtr> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back(std::make_shared<Task>(
            "g" + std::to_string(i), TaskClass::Gpu,
            [&order, i](TaskContext &) -> TaskPtr {
                order.push_back(i);
                return nullptr;
            }));
    }
    // Chain them so they become runnable in order 0..7.
    for (int i = 1; i < 8; ++i)
        tasks[static_cast<size_t>(i)]->dependsOn(
            tasks[static_cast<size_t>(i - 1)]);
    for (auto &t : tasks)
        rt.spawn(t);
    rt.wait();
    std::vector<int> expect(8);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(Runtime, GpuCausedCpuTaskIsPushedToWorker)
{
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    Runtime rt(2, &device);
    std::atomic<bool> cpuRan{false};
    TaskPtr g = std::make_shared<Task>(
        "g", TaskClass::Gpu, [](TaskContext &) -> TaskPtr {
            return nullptr;
        });
    TaskPtr c = Task::cpu("c", [&] { cpuRan = true; });
    c->dependsOn(g);
    rt.spawn(g);
    rt.spawn(c);
    rt.wait();
    EXPECT_TRUE(cpuRan.load());
    // Figure 5(b): the GPU manager pushed c to a worker's deque.
    EXPECT_EQ(rt.stats().gpuPushesToWorkers.load(), 1);
}

TEST(Runtime, RequeuedGpuTaskPollsUntilReady)
{
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    Runtime rt(1, &device);
    std::atomic<int> polls{0};
    TaskPtr poller = std::make_shared<Task>(
        "poll", TaskClass::Gpu, [&](TaskContext &ctx) -> TaskPtr {
            if (polls.fetch_add(1) < 3) {
                ctx.requeue();
                return nullptr;
            }
            return nullptr;
        });
    rt.run(poller);
    EXPECT_EQ(polls.load(), 4);
    EXPECT_EQ(rt.stats().gpuRequeues.load(), 3);
}

TEST(Runtime, MixedCpuGpuDependencyChain)
{
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    Runtime rt(2, &device);
    std::vector<std::string> log;
    std::mutex mu;
    auto record = [&](const std::string &s) {
        std::lock_guard<std::mutex> lock(mu);
        log.push_back(s);
    };
    TaskPtr c1 = Task::cpu("c1", [&] { record("c1"); });
    TaskPtr g1 = std::make_shared<Task>(
        "g1", TaskClass::Gpu, [&](TaskContext &) -> TaskPtr {
            record("g1");
            return nullptr;
        });
    TaskPtr c2 = Task::cpu("c2", [&] { record("c2"); });
    g1->dependsOn(c1);
    c2->dependsOn(g1);
    rt.spawn(c1);
    rt.spawn(g1);
    rt.spawn(c2);
    rt.wait();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0], "c1");
    EXPECT_EQ(log[1], "g1");
    EXPECT_EQ(log[2], "c2");
}

TEST(Runtime, TaskFailureSurfacesFromWait)
{
    Runtime rt(2);
    TaskPtr bad = Task::cpu("bad", [] {
        PB_FATAL("infeasible placement discovered at run time");
    });
    rt.spawn(bad);
    EXPECT_THROW(rt.wait(), FatalError);
    // The failure is reported once; the runtime remains usable.
    std::atomic<bool> ran{false};
    rt.run(Task::cpu("after", [&] { ran.store(true); }));
    EXPECT_TRUE(ran.load());
}

TEST(Runtime, FailedTaskReleasesDependents)
{
    Runtime rt(2);
    std::atomic<int> downstream{0};
    TaskPtr bad = Task::cpu("bad", [] { PB_FATAL("boom"); });
    TaskPtr dep = Task::cpu("dep", [&] { downstream.fetch_add(1); });
    dep->dependsOn(bad);
    rt.spawn(bad);
    rt.spawn(dep);
    // The graph drains instead of deadlocking; the first error wins.
    EXPECT_THROW(rt.wait(), FatalError);
    EXPECT_EQ(downstream.load(), 1);
}

TEST(Runtime, GpuTaskOnCpuOnlyRuntimePanics)
{
    Runtime rt(1);
    TaskPtr g = std::make_shared<Task>(
        "g", TaskClass::Gpu, [](TaskContext &) -> TaskPtr {
            return nullptr;
        });
    EXPECT_THROW(rt.spawn(g), PanicError);
    // Retire the zombie so the destructor's wait() can finish.
    g = nullptr;
}

} // namespace
} // namespace runtime
} // namespace petabricks
