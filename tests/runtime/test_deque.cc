#include <gtest/gtest.h>

#include <thread>

#include "runtime/deque.h"

namespace petabricks {
namespace runtime {
namespace {

TaskPtr
named(const std::string &name)
{
    return Task::cpu(name, [] {});
}

TEST(WorkDeque, OwnerLifoOrder)
{
    WorkDeque dq;
    dq.pushTop(named("a"));
    dq.pushTop(named("b"));
    EXPECT_EQ(dq.popTop()->name(), "b");
    EXPECT_EQ(dq.popTop()->name(), "a");
    EXPECT_EQ(dq.popTop(), nullptr);
}

TEST(WorkDeque, ThiefTakesOldest)
{
    WorkDeque dq;
    dq.pushTop(named("old"));
    dq.pushTop(named("new"));
    EXPECT_EQ(dq.stealBottom()->name(), "old");
    EXPECT_EQ(dq.popTop()->name(), "new");
}

TEST(WorkDeque, PushBottomServedLastByOwner)
{
    WorkDeque dq;
    dq.pushTop(named("own"));
    dq.pushBottom(named("pushed"));
    EXPECT_EQ(dq.popTop()->name(), "own");
    EXPECT_EQ(dq.popTop()->name(), "pushed");
}

TEST(WorkDeque, FifoViaBottomPushTopPop)
{
    // The GPU manager's queue: enqueue with pushBottom, serve popTop.
    WorkDeque dq;
    dq.pushBottom(named("first"));
    dq.pushBottom(named("second"));
    dq.pushBottom(named("third"));
    EXPECT_EQ(dq.popTop()->name(), "first");
    EXPECT_EQ(dq.popTop()->name(), "second");
    EXPECT_EQ(dq.popTop()->name(), "third");
}

TEST(WorkDeque, SizeTracksContents)
{
    WorkDeque dq;
    EXPECT_TRUE(dq.empty());
    dq.pushTop(named("a"));
    dq.pushTop(named("b"));
    EXPECT_EQ(dq.size(), 2u);
    dq.stealBottom();
    EXPECT_EQ(dq.size(), 1u);
}

TEST(WorkDeque, ConcurrentOwnerAndThieves)
{
    WorkDeque dq;
    constexpr int kTasks = 10000;
    std::atomic<int> taken{0};

    std::thread owner([&] {
        for (int i = 0; i < kTasks; ++i)
            dq.pushTop(named("t"));
        // Owner drains what it can.
        while (dq.popTop())
            taken.fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<std::thread> thieves;
    for (int t = 0; t < 4; ++t) {
        thieves.emplace_back([&] {
            while (taken.load(std::memory_order_relaxed) < kTasks) {
                if (dq.stealBottom())
                    taken.fetch_add(1, std::memory_order_relaxed);
                else
                    std::this_thread::yield();
            }
        });
    }
    owner.join();
    for (auto &t : thieves)
        t.join();
    EXPECT_EQ(taken.load(), kTasks);
    EXPECT_TRUE(dq.empty());
}

} // namespace
} // namespace runtime
} // namespace petabricks
