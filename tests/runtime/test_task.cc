#include <gtest/gtest.h>

#include "runtime/task.h"
#include "support/error.h"

namespace petabricks {
namespace runtime {
namespace {

TaskPtr
noop(const std::string &name)
{
    return Task::cpu(name, [] {});
}

/** Run a runnable task, returning its newly runnable dependents. */
std::vector<TaskPtr>
execute(const TaskPtr &task)
{
    TaskContext ctx;
    std::vector<TaskPtr> runnable;
    TaskPtr cont = task->run(ctx, runnable);
    EXPECT_EQ(cont, nullptr);
    return runnable;
}

TEST(Task, NewTaskWithNoDepsBecomesRunnable)
{
    TaskPtr t = noop("t");
    EXPECT_EQ(t->state(), TaskState::New);
    EXPECT_TRUE(t->finishCreation());
    EXPECT_EQ(t->state(), TaskState::Runnable);
}

TEST(Task, DependentStartsNonRunnable)
{
    TaskPtr a = noop("a");
    TaskPtr b = noop("b");
    b->dependsOn(a);
    a->finishCreation();
    EXPECT_FALSE(b->finishCreation());
    EXPECT_EQ(b->state(), TaskState::NonRunnable);
    EXPECT_EQ(b->pendingDependencies(), 1);
}

TEST(Task, CompletionUnblocksDependent)
{
    TaskPtr a = noop("a");
    TaskPtr b = noop("b");
    b->dependsOn(a);
    a->finishCreation();
    b->finishCreation();
    auto runnable = execute(a);
    EXPECT_EQ(a->state(), TaskState::Complete);
    ASSERT_EQ(runnable.size(), 1u);
    EXPECT_EQ(runnable[0], b);
    EXPECT_EQ(b->state(), TaskState::Runnable);
}

TEST(Task, MultipleDependenciesAllRequired)
{
    TaskPtr a = noop("a");
    TaskPtr b = noop("b");
    TaskPtr c = noop("c");
    c->dependsOn(a);
    c->dependsOn(b);
    a->finishCreation();
    b->finishCreation();
    c->finishCreation();
    EXPECT_TRUE(execute(a).empty());
    EXPECT_EQ(c->state(), TaskState::NonRunnable);
    auto runnable = execute(b);
    ASSERT_EQ(runnable.size(), 1u);
    EXPECT_EQ(runnable[0], c);
}

TEST(Task, DependingOnCompleteTaskIsNoop)
{
    TaskPtr a = noop("a");
    a->finishCreation();
    execute(a);
    TaskPtr b = noop("b");
    b->dependsOn(a); // no-op per the paper
    EXPECT_TRUE(b->finishCreation());
}

TEST(Task, DependenciesOnlyInNewState)
{
    TaskPtr a = noop("a");
    TaskPtr b = noop("b");
    a->finishCreation();
    EXPECT_THROW(a->dependsOn(b), PanicError);
}

TEST(Task, SelfDependencyRejected)
{
    TaskPtr a = noop("a");
    EXPECT_THROW(a->dependsOn(a), PanicError);
}

TEST(Task, ContinuationInheritsDependents)
{
    // a returns continuation k; b depends on a; b must only become
    // runnable after k completes.
    TaskPtr k = noop("k");
    TaskPtr a = std::make_shared<Task>(
        "a", TaskClass::Cpu, [&](TaskContext &) { return k; });
    TaskPtr b = noop("b");
    b->dependsOn(a);
    a->finishCreation();
    b->finishCreation();

    TaskContext ctx;
    std::vector<TaskPtr> runnable;
    TaskPtr cont = a->run(ctx, runnable);
    EXPECT_EQ(cont, k);
    EXPECT_EQ(a->state(), TaskState::Continued);
    EXPECT_TRUE(runnable.empty()); // b now waits on k

    EXPECT_TRUE(k->finishCreation());
    auto after = execute(k);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0], b);
}

TEST(Task, DependingOnContinuedTaskFollowsChain)
{
    TaskPtr k = noop("k");
    TaskPtr a = std::make_shared<Task>(
        "a", TaskClass::Cpu, [&](TaskContext &) { return k; });
    a->finishCreation();
    TaskContext ctx;
    std::vector<TaskPtr> runnable;
    a->run(ctx, runnable);
    k->finishCreation();

    // New dependency on the continued task must land on k.
    TaskPtr b = noop("b");
    b->dependsOn(a);
    EXPECT_FALSE(b->finishCreation());
    auto after = execute(k);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0], b);
}

TEST(Task, ChainedContinuations)
{
    TaskPtr k2 = noop("k2");
    TaskPtr k1 = std::make_shared<Task>(
        "k1", TaskClass::Cpu, [&](TaskContext &) { return k2; });
    TaskPtr a = std::make_shared<Task>(
        "a", TaskClass::Cpu, [&](TaskContext &) { return k1; });
    a->finishCreation();
    TaskContext c1;
    std::vector<TaskPtr> r1;
    a->run(c1, r1);
    k1->finishCreation();
    TaskContext c2;
    std::vector<TaskPtr> r2;
    k1->run(c2, r2);
    k2->finishCreation();

    // Depending on a follows a -> k1 -> k2.
    TaskPtr b = noop("b");
    b->dependsOn(a);
    EXPECT_FALSE(b->finishCreation());
    auto after = execute(k2);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0], b);
}

TEST(Task, SpawnedChildrenCollectedInContext)
{
    TaskPtr child = noop("child");
    TaskPtr parent = std::make_shared<Task>(
        "parent", TaskClass::Cpu, [&](TaskContext &ctx) -> TaskPtr {
            ctx.spawn(child);
            return nullptr;
        });
    parent->finishCreation();
    TaskContext ctx;
    std::vector<TaskPtr> runnable;
    parent->run(ctx, runnable);
    ASSERT_EQ(ctx.spawned().size(), 1u);
    EXPECT_EQ(ctx.spawned()[0], child);
}

TEST(Task, RequeueKeepsTaskRunnable)
{
    TaskPtr t = std::make_shared<Task>(
        "poll", TaskClass::Gpu, [](TaskContext &ctx) -> TaskPtr {
            ctx.requeue();
            return nullptr;
        });
    t->finishCreation();
    TaskContext ctx;
    std::vector<TaskPtr> runnable;
    t->run(ctx, runnable);
    EXPECT_TRUE(ctx.requeueRequested());
    EXPECT_EQ(t->state(), TaskState::Runnable); // can run again
}

TEST(Task, JoinTaskHasNoBody)
{
    TaskPtr a = noop("a");
    TaskPtr j = Task::join("j");
    j->dependsOn(a);
    a->finishCreation();
    j->finishCreation();
    auto runnable = execute(a);
    ASSERT_EQ(runnable.size(), 1u);
    execute(runnable[0]);
    EXPECT_EQ(j->state(), TaskState::Complete);
}

TEST(Task, StateNames)
{
    EXPECT_STREQ(taskStateName(TaskState::New), "new");
    EXPECT_STREQ(taskStateName(TaskState::NonRunnable), "non-runnable");
    EXPECT_STREQ(taskStateName(TaskState::Runnable), "runnable");
    EXPECT_STREQ(taskStateName(TaskState::Complete), "complete");
    EXPECT_STREQ(taskStateName(TaskState::Continued), "continued");
}

TEST(Task, GpuClassRecorded)
{
    Task t("g", TaskClass::Gpu, nullptr);
    EXPECT_EQ(t.taskClass(), TaskClass::Gpu);
}

} // namespace
} // namespace runtime
} // namespace petabricks
