#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.h"

namespace petabricks {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::vector<std::atomic<int>> counts(1000);
    pool.parallelFor(counts.size(),
                     [&](size_t i) { counts[i].fetch_add(1); });
    for (const std::atomic<int> &count : counts)
        EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ResultsAreIndexAligned)
{
    ThreadPool pool(8);
    std::vector<int> out(257, -1);
    pool.parallelFor(out.size(), [&](size_t i) {
        out[i] = static_cast<int>(i * i);
    });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, ReusableAcrossManyBatches)
{
    ThreadPool pool(3);
    int64_t total = 0;
    for (int batch = 0; batch < 50; ++batch) {
        std::vector<int64_t> values(17, 0);
        pool.parallelFor(values.size(),
                         [&](size_t i) { values[i] = batch + (int64_t)i; });
        total += std::accumulate(values.begin(), values.end(), int64_t{0});
    }
    // sum over batches of (17*batch + 0+..+16)
    EXPECT_EQ(total, 17 * (49 * 50 / 2) + 50 * (16 * 17 / 2));
}

TEST(ThreadPool, SerialWhenSingleThreaded)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](size_t i) {
        order.push_back(static_cast<int>(i)); // safe: no workers
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EmptyBatchIsANoop)
{
    ThreadPool pool(4);
    bool touched = false;
    pool.parallelFor(0, [&](size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, RethrowsTheLowestIndexException)
{
    ThreadPool pool(4);
    for (int attempt = 0; attempt < 10; ++attempt) {
        try {
            pool.parallelFor(64, [&](size_t i) {
                if (i == 7 || i == 50)
                    throw std::runtime_error(std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "7");
        }
    }
}

TEST(ThreadPool, BatchCompletesDespiteException)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(100);
    EXPECT_THROW(pool.parallelFor(counts.size(),
                                  [&](size_t i) {
                                      counts[i].fetch_add(1);
                                      if (i == 3)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // An exception marks the batch failed but never skips indices.
    for (const std::atomic<int> &count : counts)
        EXPECT_EQ(count.load(), 1);
}

} // namespace
} // namespace petabricks
