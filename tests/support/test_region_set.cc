// Unit tests for the coalescing RegionSet and the SlotTable interner —
// the fast evaluation path's residency primitives. The key invariant:
// every RegionSet transformation preserves the represented point set
// exactly, so areas match a naive append-only region list bit-for-bit.

#include <gtest/gtest.h>

#include "support/region_set.h"
#include "support/rng.h"
#include "support/slot_table.h"

namespace petabricks {
namespace {

// ---- SlotTable ---------------------------------------------------------

TEST(SlotTable, InternAssignsDenseIdsInOrder)
{
    SlotTable table;
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.intern("In"), 0);
    EXPECT_EQ(table.intern("Out"), 1);
    EXPECT_EQ(table.intern("buffer"), 2);
    EXPECT_EQ(table.size(), 3u);
}

TEST(SlotTable, InternIsIdempotent)
{
    SlotTable table;
    int id = table.intern("A");
    EXPECT_EQ(table.intern("A"), id);
    EXPECT_EQ(table.size(), 1u);
}

TEST(SlotTable, IdRoundTripsToName)
{
    SlotTable table;
    table.intern("Red0");
    table.intern("Black0");
    for (int id = 0; id < static_cast<int>(table.size()); ++id)
        EXPECT_EQ(table.idOf(table.nameOf(id)), id);
}

TEST(SlotTable, ContainsAndUnknownLookups)
{
    SlotTable table;
    table.intern("A");
    EXPECT_TRUE(table.contains("A"));
    EXPECT_FALSE(table.contains("B"));
    EXPECT_THROW(table.idOf("B"), PanicError);
    EXPECT_THROW(table.nameOf(7), PanicError);
}

// ---- RegionSet ---------------------------------------------------------

TEST(RegionSet, EmptySetCoversNothing)
{
    RegionSet set;
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.totalArea(), 0);
    EXPECT_EQ(set.uncoveredArea(Region(0, 0, 4, 4)), 16);
    EXPECT_FALSE(set.covers(Region(0, 0, 1, 1)));
    EXPECT_TRUE(set.covers(Region())); // empty target
}

TEST(RegionSet, InsertThenQuery)
{
    RegionSet set;
    set.insert(Region(0, 0, 10, 10));
    EXPECT_EQ(set.totalArea(), 100);
    EXPECT_TRUE(set.covers(Region(2, 2, 4, 4)));
    EXPECT_EQ(set.uncoveredArea(Region(5, 5, 10, 10)), 75);
}

TEST(RegionSet, CoveredInsertIsDropped)
{
    RegionSet set;
    set.insert(Region(0, 0, 10, 10));
    set.insert(Region(2, 2, 3, 3));
    EXPECT_EQ(set.pieces().size(), 1u);
    EXPECT_EQ(set.totalArea(), 100);
}

TEST(RegionSet, SwallowedPiecesAreErased)
{
    RegionSet set;
    set.insert(Region(0, 0, 2, 2));
    set.insert(Region(5, 5, 2, 2));
    set.insert(Region(0, 0, 10, 10));
    EXPECT_EQ(set.pieces().size(), 1u);
    EXPECT_EQ(set.totalArea(), 100);
}

TEST(RegionSet, AdjacentRowBandsCoalesceToOneRectangle)
{
    // The executor's row-chunk writes: n bands accrete into one piece
    // instead of an n-entry subtract list.
    RegionSet set;
    for (int64_t y = 0; y < 16; ++y)
        set.insert(Region(0, y, 64, 1));
    EXPECT_EQ(set.pieces().size(), 1u);
    EXPECT_EQ(set.pieces()[0], Region(0, 0, 64, 16));
}

TEST(RegionSet, NonMergeablePiecesStaySeparateButExact)
{
    RegionSet set;
    set.insert(Region(0, 0, 4, 4));
    set.insert(Region(8, 8, 4, 4));
    EXPECT_EQ(set.pieces().size(), 2u);
    EXPECT_EQ(set.totalArea(), 32);
    // Overlapping but not exactly mergeable: union stays exact.
    set.insert(Region(2, 2, 4, 4));
    EXPECT_EQ(set.totalArea(), 16 + 16 + 16 - 4);
}

TEST(RegionSet, SubtractRemovesCoverage)
{
    RegionSet set;
    set.insert(Region(0, 0, 10, 10));
    set.subtract(Region(2, 2, 4, 4));
    EXPECT_EQ(set.totalArea(), 100 - 16);
    EXPECT_EQ(set.uncoveredArea(Region(2, 2, 4, 4)), 16);
    EXPECT_TRUE(set.covers(Region(0, 0, 10, 2)));
    set.subtract(Region(0, 0, 10, 10));
    EXPECT_EQ(set.totalArea(), 0);
}

TEST(RegionSet, StaleBytesStyleInvariant)
{
    // markWritten/markCopiedOut as the residency model uses them:
    // written minus copied-out must equal the remaining stale area.
    RegionSet stale;
    stale.insert(Region(0, 0, 100, 80)); // GPU wrote 100x80
    stale.subtract(Region(0, 0, 100, 30)); // eager copy-out of a band
    EXPECT_EQ(stale.totalArea(), 100 * 50);
    stale.subtract(Region(0, 30, 100, 50));
    EXPECT_TRUE(stale.empty() || stale.totalArea() == 0);
}

/** Naive append-only model (the reference ResidencyModel's lists). */
struct NaiveRegionSet
{
    std::vector<Region> pieces;

    int64_t
    uncoveredArea(const Region &target) const
    {
        std::vector<Region> holes{target};
        for (const Region &piece : pieces) {
            std::vector<Region> next;
            for (const Region &hole : holes)
                for (const Region &part : subtractRegion(hole, piece))
                    next.push_back(part);
            holes.swap(next);
        }
        int64_t area = 0;
        for (const Region &hole : holes)
            area += hole.area();
        return area;
    }

    void insert(const Region &region) { pieces.push_back(region); }

    void
    subtract(const Region &region)
    {
        std::vector<Region> next;
        for (const Region &piece : pieces)
            for (const Region &part : subtractRegion(piece, region))
                next.push_back(part);
        pieces.swap(next);
    }

    int64_t
    totalArea() const
    {
        // Union area via subtraction of earlier pieces.
        int64_t area = 0;
        for (size_t i = 0; i < pieces.size(); ++i) {
            std::vector<Region> holes{pieces[i]};
            for (size_t j = 0; j < i; ++j) {
                std::vector<Region> next;
                for (const Region &hole : holes)
                    for (const Region &part :
                         subtractRegion(hole, pieces[j]))
                        next.push_back(part);
                holes.swap(next);
            }
            for (const Region &hole : holes)
                area += hole.area();
        }
        return area;
    }
};

TEST(RegionSet, FuzzMatchesNaiveModel)
{
    Rng rng(0xC0A1E5CE);
    for (int round = 0; round < 50; ++round) {
        RegionSet fast;
        NaiveRegionSet naive;
        for (int op = 0; op < 40; ++op) {
            Region r(rng.uniformInt(0, 24), rng.uniformInt(0, 24),
                     rng.uniformInt(1, 12), rng.uniformInt(1, 12));
            switch (rng.uniformInt(0, 2)) {
              case 0:
                fast.insert(r);
                naive.insert(r);
                break;
              case 1:
                fast.subtract(r);
                naive.subtract(r);
                break;
              default: {
                ASSERT_EQ(fast.uncoveredArea(r),
                          naive.uncoveredArea(r));
                break;
              }
            }
            ASSERT_EQ(fast.totalArea(), naive.totalArea());
        }
    }
}

} // namespace
} // namespace petabricks
