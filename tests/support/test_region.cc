#include <gtest/gtest.h>

#include <unordered_set>

#include "support/region.h"

namespace petabricks {
namespace {

TEST(Region, AreaAndEmpty)
{
    EXPECT_EQ(Region(0, 0, 4, 3).area(), 12);
    EXPECT_TRUE(Region().empty());
    EXPECT_TRUE(Region(5, 5, 0, 7).empty());
    EXPECT_FALSE(Region(0, 0, 1, 1).empty());
}

TEST(Region, FullCoversMatrix)
{
    Region r = Region::full(10, 20);
    EXPECT_EQ(r.x, 0);
    EXPECT_EQ(r.y, 0);
    EXPECT_EQ(r.w, 10);
    EXPECT_EQ(r.h, 20);
}

TEST(Region, Contains)
{
    Region outer(0, 0, 10, 10);
    EXPECT_TRUE(outer.contains(Region(2, 3, 4, 5)));
    EXPECT_TRUE(outer.contains(outer));
    EXPECT_FALSE(outer.contains(Region(8, 8, 4, 4)));
    EXPECT_FALSE(outer.contains(Region(-1, 0, 2, 2)));
}

TEST(Region, ContainsPoint)
{
    Region r(2, 3, 4, 5);
    EXPECT_TRUE(r.containsPoint(2, 3));
    EXPECT_TRUE(r.containsPoint(5, 7));
    EXPECT_FALSE(r.containsPoint(6, 3));  // half-open on x
    EXPECT_FALSE(r.containsPoint(2, 8));  // half-open on y
}

TEST(Region, IntersectOverlapping)
{
    Region a(0, 0, 6, 6);
    Region b(4, 4, 6, 6);
    Region c = a.intersect(b);
    EXPECT_EQ(c, Region(4, 4, 2, 2));
    EXPECT_TRUE(a.intersects(b));
}

TEST(Region, IntersectDisjointIsEmpty)
{
    Region a(0, 0, 3, 3);
    Region b(3, 0, 3, 3); // touching edge, half-open => disjoint
    EXPECT_TRUE(a.intersect(b).empty());
    EXPECT_FALSE(a.intersects(b));
}

TEST(Region, UnionBound)
{
    Region a(0, 0, 2, 2);
    Region b(5, 5, 1, 1);
    EXPECT_EQ(a.unionBound(b), Region(0, 0, 6, 6));
    EXPECT_EQ(Region().unionBound(b), b);
    EXPECT_EQ(b.unionBound(Region()), b);
}

TEST(Region, HashDistinguishesAndMatches)
{
    RegionHash hash;
    Region a(1, 2, 3, 4);
    Region b(1, 2, 3, 4);
    Region c(2, 1, 3, 4);
    EXPECT_EQ(hash(a), hash(b));
    std::unordered_set<Region, RegionHash> set;
    set.insert(a);
    set.insert(b);
    set.insert(c);
    EXPECT_EQ(set.size(), 2u);
}

TEST(Region, StreamFormat)
{
    std::ostringstream oss;
    oss << Region(1, 2, 3, 4);
    EXPECT_EQ(oss.str(), "[1,2 3x4]");
}

} // namespace
} // namespace petabricks
