#include <gtest/gtest.h>

#include "support/region.h"

namespace petabricks {
namespace {

TEST(RegionSubtract, DisjointReturnsOriginal)
{
    auto rest = subtractRegion(Region(0, 0, 2, 2), Region(5, 5, 2, 2));
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], Region(0, 0, 2, 2));
}

TEST(RegionSubtract, FullOverlapReturnsNothing)
{
    EXPECT_TRUE(subtractRegion(Region(1, 1, 2, 2), Region(0, 0, 4, 4))
                    .empty());
}

TEST(RegionSubtract, CenterHoleYieldsFourParts)
{
    auto rest = subtractRegion(Region(0, 0, 10, 10), Region(3, 3, 4, 4));
    ASSERT_EQ(rest.size(), 4u);
    int64_t area = 0;
    for (const auto &r : rest) {
        area += r.area();
        EXPECT_FALSE(r.intersects(Region(3, 3, 4, 4)));
    }
    EXPECT_EQ(area, 100 - 16);
}

TEST(RegionSubtract, PartsAreDisjoint)
{
    auto rest = subtractRegion(Region(0, 0, 8, 8), Region(2, 2, 3, 3));
    for (size_t i = 0; i < rest.size(); ++i)
        for (size_t j = i + 1; j < rest.size(); ++j)
            EXPECT_FALSE(rest[i].intersects(rest[j])) << i << "," << j;
}

TEST(RegionSubtract, EdgeCutYieldsBand)
{
    auto rest = subtractRegion(Region(0, 0, 10, 4), Region(0, 0, 10, 2));
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], Region(0, 2, 10, 2));
}

TEST(RegionsCover, ExactPiece)
{
    EXPECT_TRUE(regionsCover({Region(0, 0, 4, 4)}, Region(0, 0, 4, 4)));
}

TEST(RegionsCover, TwoHalves)
{
    EXPECT_TRUE(regionsCover({Region(0, 0, 4, 2), Region(0, 2, 4, 2)},
                             Region(0, 0, 4, 4)));
}

TEST(RegionsCover, GapDetected)
{
    EXPECT_FALSE(regionsCover({Region(0, 0, 4, 1), Region(0, 2, 4, 2)},
                              Region(0, 0, 4, 4)));
}

TEST(RegionsCover, OverlappingPiecesStillCover)
{
    EXPECT_TRUE(regionsCover({Region(0, 0, 3, 4), Region(1, 0, 3, 4)},
                             Region(0, 0, 4, 4)));
}

TEST(RegionsCover, EmptyTargetAlwaysCovered)
{
    EXPECT_TRUE(regionsCover({}, Region(0, 0, 0, 0)));
}

TEST(RegionsCover, EmptyPiecesNeverCoverNonEmpty)
{
    EXPECT_FALSE(regionsCover({}, Region(0, 0, 1, 1)));
}

TEST(RegionsCover, QuadrantDecomposition)
{
    std::vector<Region> quads{Region(0, 0, 2, 2), Region(2, 0, 2, 2),
                              Region(0, 2, 2, 2), Region(2, 2, 2, 2)};
    EXPECT_TRUE(regionsCover(quads, Region(0, 0, 4, 4)));
    quads.pop_back();
    EXPECT_FALSE(regionsCover(quads, Region(0, 0, 4, 4)));
}

} // namespace
} // namespace petabricks
