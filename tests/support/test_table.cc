#include <gtest/gtest.h>

#include "support/error.h"
#include "support/table.h"

namespace petabricks {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "2"});
    std::string out = t.toString();
    // Both data rows start their second column at the same offset.
    size_t line1 = out.find("x ");
    size_t line2 = out.find("longer-name");
    ASSERT_NE(line1, std::string::npos);
    ASSERT_NE(line2, std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RowArityChecked)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TextTable, NumFormatsFixedPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 1), "2.0");
}

TEST(TextTable, RowsCounted)
{
    TextTable t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, HeaderAppearsFirst)
{
    TextTable t({"col"});
    t.addRow({"datum"});
    std::string out = t.toString();
    EXPECT_LT(out.find("col"), out.find("datum"));
}

} // namespace
} // namespace petabricks
