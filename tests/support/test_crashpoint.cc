/**
 * @file
 * Unit tests for the crash/IO-fault injection layer: schedule parsing,
 * per-point hit counting, the registered-point catalog, and the fault
 * semantics of KvFile::saveAtomic under torn/ENOSPC/EIO injection.
 *
 * Kill-style points are covered by the fork-based crash matrix in
 * tests/service/test_crash_matrix.cc — killing the gtest process from
 * a unit test would be self-defeating.
 */

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "support/crashpoint.h"
#include "support/error.h"
#include "support/fsck.h"
#include "support/kvfile.h"

using namespace petabricks;

namespace {

namespace fs = std::filesystem;

class CrashpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { crashpoint::clearSchedule(); }
    void TearDown() override { crashpoint::clearSchedule(); }

    std::string
    tempPath(const char *name)
    {
        std::string path =
            std::string(::testing::TempDir()) + "pb_crashpoint_" + name;
        fs::remove_all(path);
        fs::create_directories(path);
        return path;
    }

    KvFile
    sampleKv(int salt = 0)
    {
        KvFile kv;
        kv.setInt("alpha", 1 + salt);
        kv.set("beta", "two");
        kv.set("gamma", std::string(64, 'g'));
        return kv;
    }
};

TEST_F(CrashpointTest, CatalogContainsEveryPersistencePath)
{
    std::vector<std::string> points = crashpoint::catalog();
    for (const char *prefix :
         {"spool.meta", "spool.ckpt", "cache.seg", "portfolio.champ"}) {
        for (const char *suffix :
             {".pre_write", ".write", ".pre_rename", ".post_rename"}) {
            const std::string name = std::string(prefix) + suffix;
            EXPECT_NE(std::find(points.begin(), points.end(), name),
                      points.end())
                << "missing point " << name;
        }
    }
    EXPECT_GE(points.size(), 16u);
}

TEST_F(CrashpointTest, UnarmedLayerIsInert)
{
    EXPECT_FALSE(crashpoint::armed());
    crashpoint::fire("cache.seg.pre_rename"); // must not throw or exit
    crashpoint::WriteFault fault =
        crashpoint::fireWrite("cache.seg.write");
    EXPECT_EQ(fault.action, crashpoint::Action::None);
}

TEST_F(CrashpointTest, ScheduleParsingRejectsGarbage)
{
    EXPECT_THROW(crashpoint::setSchedule("no-equals-sign"), FatalError);
    EXPECT_THROW(crashpoint::setSchedule("cache.seg.write=explode"),
                 FatalError);
    EXPECT_THROW(crashpoint::setSchedule("not.a.point=kill"), FatalError);
    EXPECT_THROW(crashpoint::setSchedule("cache.seg.write@0=kill"),
                 FatalError);
    // Write faults only make sense where a write happens.
    EXPECT_THROW(crashpoint::setSchedule("cache.seg.pre_rename=torn"),
                 FatalError);
    // A failed parse leaves nothing armed.
    EXPECT_FALSE(crashpoint::armed());
}

TEST_F(CrashpointTest, HitCountsAreDeterministic)
{
    crashpoint::setSchedule("cache.seg.write@3=eio");
    EXPECT_TRUE(crashpoint::armed());
    EXPECT_EQ(crashpoint::fireWrite("cache.seg.write").action,
              crashpoint::Action::None);
    EXPECT_EQ(crashpoint::fireWrite("cache.seg.write").action,
              crashpoint::Action::None);
    EXPECT_EQ(crashpoint::fireWrite("cache.seg.write").action,
              crashpoint::Action::Eio);
    // Only the scheduled hit fires; later traversals pass clean.
    EXPECT_EQ(crashpoint::fireWrite("cache.seg.write").action,
              crashpoint::Action::None);
    // Resetting the schedule resets the counters.
    crashpoint::setSchedule("cache.seg.write@1=torn:7");
    crashpoint::WriteFault fault =
        crashpoint::fireWrite("cache.seg.write");
    EXPECT_EQ(fault.action, crashpoint::Action::Torn);
    EXPECT_TRUE(fault.explicitBytes);
    EXPECT_EQ(fault.keepBytes, 7u);
}

TEST_F(CrashpointTest, SaveAtomicSurvivesUnarmed)
{
    const std::string dir = tempPath("save_ok");
    const std::string path = dir + "/file.kv";
    sampleKv().saveAtomic(path, "cache.seg");
    EXPECT_EQ(KvFile::load(path), sampleKv());
    EXPECT_FALSE(fs::exists(path + ".tmp")); // renamed away
}

TEST_F(CrashpointTest, TornWriteLandsTruncatedFile)
{
    const std::string dir = tempPath("torn");
    const std::string path = dir + "/file.kv";
    sampleKv().saveAtomic(path, "cache.seg"); // good version first

    crashpoint::setSchedule("cache.seg.write=torn");
    KvFile bigger = sampleKv(7);
    // Torn completes the sequence: the rename happens, so the *live*
    // file is now truncated — exactly the wreckage boot fsck must
    // quarantine.
    bigger.saveAtomic(path, "cache.seg");
    crashpoint::clearSchedule();

    std::ifstream in(path);
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str().size(), bigger.toString().size() / 2);
    EXPECT_NE(content.str(), bigger.toString());
}

TEST_F(CrashpointTest, EnospcFailsWithoutTouchingDestination)
{
    const std::string dir = tempPath("enospc");
    const std::string path = dir + "/file.kv";
    sampleKv().saveAtomic(path, "cache.seg");

    crashpoint::setSchedule("cache.seg.write=enospc");
    EXPECT_THROW(sampleKv(9).saveAtomic(path, "cache.seg"), IoError);
    crashpoint::clearSchedule();

    // Prior state byte-intact: the failure happened in the temp file.
    EXPECT_EQ(KvFile::load(path), sampleKv());
    EXPECT_TRUE(fs::exists(path + ".tmp")); // debris, like real ENOSPC
    EXPECT_EQ(fsck::classify(path + ".tmp"), fsck::FileKind::Temp);
}

TEST_F(CrashpointTest, EioIsAnIoErrorDistinctFromFatal)
{
    const std::string dir = tempPath("eio");
    const std::string path = dir + "/file.kv";
    crashpoint::setSchedule("cache.seg.write=eio");
    try {
        sampleKv().saveAtomic(path, "cache.seg");
        FAIL() << "expected IoError";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("injected"),
                  std::string::npos);
    }
    crashpoint::clearSchedule();
    EXPECT_FALSE(fs::exists(path));
}

TEST_F(CrashpointTest, ExplicitScheduleOverridesAndClears)
{
    crashpoint::setSchedule("portfolio.champ.write=enospc");
    EXPECT_TRUE(crashpoint::armed());
    crashpoint::setSchedule("");
    EXPECT_FALSE(crashpoint::armed());
    crashpoint::setSchedule(
        "portfolio.champ.write=enospc, spool.ckpt.pre_rename=kill");
    EXPECT_TRUE(crashpoint::armed());
    crashpoint::clearSchedule();
    EXPECT_FALSE(crashpoint::armed());
}

} // namespace
