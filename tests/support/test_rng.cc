#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.h"

namespace petabricks {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(-3, 12);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 12);
    }
}

TEST(Rng, UniformRealStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformReal(0.25, 0.75);
        EXPECT_GE(v, 0.25);
        EXPECT_LT(v, 0.75);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, LognormalScaleMedianNearOne)
{
    // Halving should be about as common as doubling (paper Section 5.2).
    Rng rng(42);
    const int64_t base = 1 << 20;
    int above = 0, total = 4000;
    for (int i = 0; i < total; ++i)
        if (rng.lognormalScale(base) > base)
            ++above;
    double frac = static_cast<double>(above) / total;
    EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(Rng, LognormalScaleNeverBelowOne)
{
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        EXPECT_GE(rng.lognormalScale(1), 1);
}

TEST(Rng, LognormalSpreadMatchesSigma)
{
    // With sigma = ln 2, ~68% of draws land within [base/2, base*2].
    Rng rng(9);
    const int64_t base = 1 << 16;
    int within = 0, total = 4000;
    for (int i = 0; i < total; ++i) {
        int64_t v = rng.lognormalScale(base);
        if (v >= base / 2 && v <= base * 2)
            ++within;
    }
    double frac = static_cast<double>(within) / total;
    EXPECT_NEAR(frac, 0.68, 0.06);
}

} // namespace
} // namespace petabricks
