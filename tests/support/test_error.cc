#include <gtest/gtest.h>

#include "support/error.h"

namespace petabricks {
namespace {

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(PB_FATAL("bad user input " << 42), FatalError);
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(PB_PANIC("bug " << 1), PanicError);
}

TEST(Error, FatalMessageContainsPayloadAndLocation)
{
    try {
        PB_FATAL("value=" << 7);
        FAIL() << "expected throw";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("value=7"), std::string::npos) << what;
        EXPECT_NE(what.find("test_error.cc"), std::string::npos) << what;
    }
}

TEST(Error, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(PB_ASSERT(1 + 1 == 2, "math"));
}

TEST(Error, AssertThrowsOnFalse)
{
    EXPECT_THROW(PB_ASSERT(false, "must fire"), PanicError);
}

TEST(Error, FatalAndPanicAreDistinctTypes)
{
    // Catch handlers for user errors must not swallow library bugs.
    EXPECT_THROW(
        {
            try {
                PB_PANIC("internal");
            } catch (const FatalError &) {
                FAIL() << "panic caught as fatal";
            }
        },
        PanicError);
}

} // namespace
} // namespace petabricks
