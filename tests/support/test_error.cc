#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "support/error.h"

namespace petabricks {
namespace {

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(PB_FATAL("bad user input " << 42), FatalError);
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(PB_PANIC("bug " << 1), PanicError);
}

TEST(Error, FatalMessageContainsPayloadAndLocation)
{
    try {
        PB_FATAL("value=" << 7);
        FAIL() << "expected throw";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("value=7"), std::string::npos) << what;
        EXPECT_NE(what.find("test_error.cc"), std::string::npos) << what;
    }
}

TEST(Error, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(PB_ASSERT(1 + 1 == 2, "math"));
}

TEST(Error, AssertThrowsOnFalse)
{
    EXPECT_THROW(PB_ASSERT(false, "must fire"), PanicError);
}

TEST(Error, FatalAndPanicAreDistinctTypes)
{
    // Catch handlers for user errors must not swallow library bugs.
    EXPECT_THROW(
        {
            try {
                PB_PANIC("internal");
            } catch (const FatalError &) {
                FAIL() << "panic caught as fatal";
            }
        },
        PanicError);
}

TEST(Error, TransientIsAnEvaluationErrorIsAFatalError)
{
    // The failure taxonomy: TransientError < EvaluationError <
    // FatalError. A generic FatalError handler (worst-cost pricing)
    // still catches everything, while a retry loop can single out just
    // the transient layer.
    EXPECT_THROW(PB_TRANSIENT("flaky device"), TransientError);
    EXPECT_THROW(PB_TRANSIENT("flaky device"), EvaluationError);
    EXPECT_THROW(PB_TRANSIENT("flaky device"), FatalError);

    // ...but a plain FatalError is NOT transient: infeasible configs
    // are deterministic and must never be retried.
    EXPECT_THROW(
        {
            try {
                PB_FATAL("infeasible config");
            } catch (const TransientError &) {
                FAIL() << "fatal caught as transient";
            }
        },
        FatalError);
}

TEST(Error, TransientCatchOrderSelectsTheMostDerivedHandler)
{
    // The catch-ordering contract every retry site relies on: with the
    // transient handler listed first, a transient fault is retried and
    // a deterministic fatal is not — same try block, different arms.
    auto classify = [](const std::function<void()> &thrower) {
        try {
            thrower();
        } catch (const TransientError &) {
            return std::string("retry");
        } catch (const FatalError &) {
            return std::string("worst-cost");
        }
        return std::string("ok");
    };
    EXPECT_EQ(classify([] { PB_TRANSIENT("hang"); }), "retry");
    EXPECT_EQ(classify([] { PB_FATAL("inadmissible"); }), "worst-cost");
    EXPECT_EQ(classify([] {}), "ok");
}

TEST(Error, TransientMessageCarriesPayloadAndLocation)
{
    try {
        PB_TRANSIENT("timeout after " << 250 << "ms");
        FAIL() << "expected throw";
    } catch (const TransientError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("timeout after 250ms"), std::string::npos)
            << what;
        EXPECT_NE(what.find("test_error.cc"), std::string::npos) << what;
    }
}

} // namespace
} // namespace petabricks
