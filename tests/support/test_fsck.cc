/**
 * @file
 * Unit tests for the shared fsck helpers: filename classification,
 * collision-safe quarantine renames, directory scans, and purge.
 */

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "support/fsck.h"

using namespace petabricks;

namespace {

namespace fs = std::filesystem;

std::string
tempDir(const char *name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_fsck_" + name;
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

void
touch(const std::string &path, const std::string &content = "x = 1\n")
{
    std::ofstream out(path);
    out << content;
}

TEST(Fsck, ClassifiesEveryStoreArtifact)
{
    using fsck::FileKind;
    EXPECT_EQ(fsck::classify("/spool/s12.meta"), FileKind::SpoolMeta);
    EXPECT_EQ(fsck::classify("/spool/s12.ckpt"),
              FileKind::SpoolCheckpoint);
    EXPECT_EQ(fsck::classify("/cache/seg-00000004.kv"),
              FileKind::CacheSegment);
    EXPECT_EQ(fsck::classify(
                  "/p/champ-sort-00c0ffee00c0ffee-1024.kv"),
              FileKind::Champion);
    EXPECT_EQ(fsck::classify("/spool/s12.ckpt.tmp"), FileKind::Temp);
    EXPECT_EQ(fsck::classify("/spool/s12.ckpt.quarantine"),
              FileKind::Quarantine);
    EXPECT_EQ(fsck::classify("/cache/seg-1.kv.quarantine.2"),
              FileKind::Quarantine);
    EXPECT_EQ(fsck::classify("/somewhere/README.md"), FileKind::Other);
}

TEST(Fsck, QuarantineIsCollisionSafe)
{
    const std::string dir = tempDir("quarantine");
    const std::string victim = dir + "/s1.ckpt";

    touch(victim, "first\n");
    EXPECT_EQ(fsck::quarantine(victim), victim + ".quarantine");
    EXPECT_FALSE(fs::exists(victim));

    // Same file torn again on a later boot: the prior corpse must
    // survive, the new one gets a numbered suffix.
    touch(victim, "second\n");
    EXPECT_EQ(fsck::quarantine(victim), victim + ".quarantine.1");
    touch(victim, "third\n");
    EXPECT_EQ(fsck::quarantine(victim), victim + ".quarantine.2");

    EXPECT_TRUE(fs::exists(victim + ".quarantine"));
    EXPECT_TRUE(fs::exists(victim + ".quarantine.1"));
    EXPECT_TRUE(fs::exists(victim + ".quarantine.2"));
}

TEST(Fsck, QuarantineOfMissingFileFailsSoftly)
{
    const std::string dir = tempDir("missing");
    EXPECT_EQ(fsck::quarantine(dir + "/never-existed.kv"), "");
}

TEST(Fsck, ScanClassifiesAndSorts)
{
    const std::string dir = tempDir("scan");
    touch(dir + "/seg-00000001.kv");
    touch(dir + "/seg-00000002.kv.quarantine");
    touch(dir + "/stray.txt");
    touch(dir + "/s4.meta");

    std::vector<fsck::ScanEntry> entries = fsck::scan(dir);
    ASSERT_EQ(entries.size(), 4u);
    // Sorted by path.
    EXPECT_EQ(entries[0].kind, fsck::FileKind::SpoolMeta);
    EXPECT_EQ(entries[1].kind, fsck::FileKind::CacheSegment);
    EXPECT_EQ(entries[2].kind, fsck::FileKind::Quarantine);
    EXPECT_EQ(entries[3].kind, fsck::FileKind::Other);
    EXPECT_GT(entries[0].bytes, 0u);

    EXPECT_TRUE(fsck::scan(dir + "/no-such-dir").empty());
}

TEST(Fsck, PurgeRemovesOnlyWreckage)
{
    const std::string dir = tempDir("purge");
    touch(dir + "/seg-00000001.kv");
    touch(dir + "/seg-00000002.kv.quarantine");
    touch(dir + "/seg-00000003.kv.quarantine.1");
    touch(dir + "/s9.ckpt.tmp");
    touch(dir + "/s9.ckpt");

    // Without --temps: only quarantine files go.
    EXPECT_EQ(fsck::purge(dir, /*alsoTemps=*/false), 2u);
    EXPECT_TRUE(fs::exists(dir + "/s9.ckpt.tmp"));
    EXPECT_TRUE(fs::exists(dir + "/seg-00000001.kv"));

    // With temps: the crash debris goes too; live files never do.
    EXPECT_EQ(fsck::purge(dir, /*alsoTemps=*/true), 1u);
    EXPECT_TRUE(fs::exists(dir + "/seg-00000001.kv"));
    EXPECT_TRUE(fs::exists(dir + "/s9.ckpt"));
}

} // namespace
