#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "support/error.h"
#include "support/kvfile.h"

namespace petabricks {
namespace {

TEST(KvFile, SetGetRoundTrip)
{
    KvFile kv;
    kv.set("alpha", "one");
    kv.setInt("beta", -17);
    kv.setDouble("gamma", 2.5);
    EXPECT_EQ(kv.get("alpha"), "one");
    EXPECT_EQ(kv.getInt("beta"), -17);
    EXPECT_DOUBLE_EQ(kv.getDouble("gamma"), 2.5);
    EXPECT_EQ(kv.size(), 3u);
}

TEST(KvFile, HasAndMissing)
{
    KvFile kv;
    kv.setInt("x", 1);
    EXPECT_TRUE(kv.has("x"));
    EXPECT_FALSE(kv.has("y"));
    EXPECT_THROW(kv.get("y"), FatalError);
    EXPECT_EQ(kv.getIntOr("y", 99), 99);
    EXPECT_EQ(kv.getIntOr("x", 99), 1);
}

TEST(KvFile, IntListRoundTrip)
{
    KvFile kv;
    kv.setIntList("cutoffs", {64, 512, 4096});
    std::vector<int64_t> expect{64, 512, 4096};
    EXPECT_EQ(kv.getIntList("cutoffs"), expect);
    kv.setIntList("empty", {});
    EXPECT_TRUE(kv.getIntList("empty").empty());
}

TEST(KvFile, TextRoundTripIsStable)
{
    KvFile kv;
    kv.setInt("z_last", 3);
    kv.setInt("a_first", 1);
    std::string text = kv.toString();
    // Keys render sorted so configs diff cleanly.
    EXPECT_LT(text.find("a_first"), text.find("z_last"));
    KvFile back = KvFile::fromString(text);
    EXPECT_EQ(back, kv);
}

TEST(KvFile, ParserSkipsCommentsAndBlanks)
{
    KvFile kv = KvFile::fromString("# comment\n\n  key = value  \n");
    EXPECT_EQ(kv.get("key"), "value");
    EXPECT_EQ(kv.size(), 1u);
}

TEST(KvFile, ParserRejectsGarbage)
{
    EXPECT_THROW(KvFile::fromString("no equals sign"), FatalError);
    EXPECT_THROW(KvFile::fromString("= value"), FatalError);
}

TEST(KvFile, TypedGetRejectsWrongType)
{
    KvFile kv;
    kv.set("s", "hello");
    EXPECT_THROW(kv.getInt("s"), FatalError);
    EXPECT_THROW(kv.getDouble("s"), FatalError);
    kv.set("trailing", "12abc");
    EXPECT_THROW(kv.getInt("trailing"), FatalError);
}

TEST(KvFile, FileRoundTrip)
{
    namespace fs = std::filesystem;
    fs::path path = fs::temp_directory_path() / "pb_kvfile_test.cfg";
    KvFile kv;
    kv.setInt("threads", 16);
    kv.set("machine", "Server");
    kv.save(path.string());
    KvFile back = KvFile::load(path.string());
    EXPECT_EQ(back, kv);
    fs::remove(path);
}

TEST(KvFile, LoadMissingFileIsFatal)
{
    EXPECT_THROW(KvFile::load("/nonexistent/path/cfg"), FatalError);
}

TEST(KvFile, OverwriteReplacesValue)
{
    KvFile kv;
    kv.setInt("k", 1);
    kv.setInt("k", 2);
    EXPECT_EQ(kv.getInt("k"), 2);
    EXPECT_EQ(kv.size(), 1u);
}

} // namespace
} // namespace petabricks
