#include <gtest/gtest.h>

#include "support/matrix.h"

namespace petabricks {
namespace {

TEST(Matrix, AllocZeroInitialized)
{
    MatrixD m(3, 2);
    EXPECT_EQ(m.width(), 3);
    EXPECT_EQ(m.height(), 2);
    EXPECT_EQ(m.size(), 6);
    for (int64_t y = 0; y < 2; ++y)
        for (int64_t x = 0; x < 3; ++x)
            EXPECT_EQ(m.at(x, y), 0.0);
}

TEST(Matrix, RowMajorLayout)
{
    MatrixD m(4, 3);
    m.at(1, 2) = 7.0;
    EXPECT_EQ(m.data()[2 * 4 + 1], 7.0);
    EXPECT_EQ(m[2 * 4 + 1], 7.0);
}

TEST(Matrix, CopyIsShallow)
{
    MatrixD a(2, 2);
    MatrixD b = a;
    b.at(0, 0) = 5.0;
    EXPECT_EQ(a.at(0, 0), 5.0);
    EXPECT_TRUE(a.sameStorage(b));
    EXPECT_EQ(a.storageId(), b.storageId());
}

TEST(Matrix, CloneIsDeep)
{
    MatrixD a(2, 2);
    a.at(1, 1) = 3.0;
    MatrixD b = a.clone();
    EXPECT_EQ(b.at(1, 1), 3.0);
    b.at(1, 1) = 9.0;
    EXPECT_EQ(a.at(1, 1), 3.0);
    EXPECT_FALSE(a.sameStorage(b));
    EXPECT_NE(a.storageId(), b.storageId());
}

TEST(Matrix, StorageIdsAreUnique)
{
    MatrixD a(1, 1), b(1, 1), c(1, 1);
    EXPECT_NE(a.storageId(), b.storageId());
    EXPECT_NE(b.storageId(), c.storageId());
}

TEST(Matrix, VectorFactory)
{
    MatrixD v = MatrixD::vector(5);
    EXPECT_EQ(v.width(), 5);
    EXPECT_EQ(v.height(), 1);
}

TEST(Matrix, OutOfBoundsAccessPanics)
{
    MatrixD m(2, 2);
    EXPECT_THROW(m.at(2, 0), PanicError);
    EXPECT_THROW(m.at(0, -1), PanicError);
}

TEST(MatrixView, RegionLocalIndexing)
{
    MatrixD m(4, 4);
    m.at(2, 3) = 42.0;
    MatrixView<ElementT> v = m.view(Region(2, 3, 2, 1));
    EXPECT_EQ(v.at(0, 0), 42.0);
    v.at(1, 0) = 7.0;
    EXPECT_EQ(m.at(3, 3), 7.0);
}

TEST(MatrixView, ConstViewReads)
{
    MatrixD m(3, 3);
    m.at(1, 1) = 2.5;
    const MatrixD &cm = m;
    ConstMatrixView<ElementT> v = cm.view(Region(1, 1, 1, 1));
    EXPECT_EQ(v.at(0, 0), 2.5);
    EXPECT_EQ(v.storageId(), m.storageId());
}

TEST(MatrixView, RejectsOutOfBoundsRegion)
{
    MatrixD m(3, 3);
    EXPECT_THROW(m.view(Region(2, 2, 2, 2)), PanicError);
}

TEST(MatrixView, BytesAccountsForElementSize)
{
    MatrixD m(8, 2);
    EXPECT_EQ(m.bytes(), 16 * static_cast<int64_t>(sizeof(ElementT)));
}

} // namespace
} // namespace petabricks
