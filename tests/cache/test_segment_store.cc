/**
 * @file
 * SegmentStore persistence: append/load round trips are exact (bit
 * patterns included), torn or corrupt segments are quarantined by the
 * boot-time fsck without failing the load, and compaction collapses
 * the append-only tail without losing records.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "cache/segment_store.h"
#include "support/kvfile.h"

using namespace petabricks;
using namespace petabricks::cache;

namespace {

namespace fs = std::filesystem;

/** Fresh per-test segment directory. */
std::string
cacheDir(const char *name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_segment_store_" + name;
    fs::remove_all(path);
    return path;
}

SegmentRecord
record(uint64_t scope, int64_t n, uint64_t fp, double seconds)
{
    return SegmentRecord{scope, n, fp, seconds};
}

size_t
quarantineCount(const std::string &dir)
{
    size_t count = 0;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".quarantine")
            ++count;
    return count;
}

TEST(SegmentStore, AppendLoadRoundTripIsExact)
{
    const std::string dir = cacheDir("roundtrip");
    // Values chosen to stress the bit-exact path: a subnormal, a
    // negative, and one with no short decimal representation.
    std::vector<SegmentRecord> written = {
        record(0x1234, 64, 0xabcd, 1.0 / 3.0),
        record(0x1234, 128, 0xabce, 5e-324),
        record(0xffff, 256, 0x1, -123.456789012345678),
    };
    {
        SegmentStore store(dir);
        store.append(written);
        EXPECT_EQ(store.segmentCount(), 1u);
        EXPECT_EQ(store.stats().segmentsWritten, 1);
    }
    SegmentStore store(dir);
    std::vector<SegmentRecord> loaded = store.loadAll();
    EXPECT_EQ(loaded, written); // operator== compares exact doubles
    EXPECT_EQ(store.stats().segmentsLoaded, 1);
    EXPECT_EQ(store.stats().recordsLoaded, 3);
    EXPECT_EQ(store.stats().segmentsQuarantined, 0);
}

TEST(SegmentStore, MultipleAppendsLoadOldestFirst)
{
    const std::string dir = cacheDir("multi");
    SegmentStore writer(dir);
    writer.append({record(1, 64, 1, 1.0)});
    writer.append({record(2, 64, 2, 2.0)});
    writer.append({record(3, 64, 3, 3.0)});

    SegmentStore reader(dir);
    std::vector<SegmentRecord> loaded = reader.loadAll();
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[0].scope, 1u);
    EXPECT_EQ(loaded[1].scope, 2u);
    EXPECT_EQ(loaded[2].scope, 3u);
}

TEST(SegmentStore, EmptyAppendWritesNothing)
{
    const std::string dir = cacheDir("empty");
    SegmentStore store(dir);
    store.append({});
    EXPECT_EQ(store.segmentCount(), 0u);
    EXPECT_EQ(store.stats().segmentsWritten, 0);
}

TEST(SegmentStore, FsckQuarantinesTornSegment)
{
    const std::string dir = cacheDir("torn");
    {
        SegmentStore store(dir);
        store.append({record(1, 64, 1, 1.0)});
        store.append({record(2, 64, 2, 2.0)});
    }
    // Truncate the first segment mid-file: the checksum (or the entry
    // count) can no longer validate.
    std::vector<std::string> segments;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        segments.push_back(entry.path().string());
    std::sort(segments.begin(), segments.end());
    ASSERT_EQ(segments.size(), 2u);
    fs::resize_file(segments[0], fs::file_size(segments[0]) / 2);

    SegmentStore store(dir);
    std::vector<SegmentRecord> loaded = store.loadAll();
    // The healthy segment still loads; the torn one is set aside.
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].scope, 2u);
    EXPECT_EQ(store.stats().segmentsQuarantined, 1);
    EXPECT_EQ(quarantineCount(dir), 1u);
    EXPECT_EQ(store.segmentCount(), 1u);

    // A second load pass never sees the quarantined file again.
    SegmentStore again(dir);
    EXPECT_EQ(again.loadAll().size(), 1u);
    EXPECT_EQ(again.stats().segmentsQuarantined, 0);
}

TEST(SegmentStore, FsckQuarantinesChecksumMismatch)
{
    const std::string dir = cacheDir("checksum");
    {
        SegmentStore store(dir);
        store.append({record(1, 64, 1, 1.0)});
    }
    std::string path;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        path = entry.path().string();
    // Flip one payload value; the file still parses as a kvfile.
    KvFile kv = KvFile::load(path);
    std::string entry0 = kv.get("entry.0");
    entry0[0] = entry0[0] == 'f' ? 'e' : 'f';
    kv.set("entry.0", entry0);
    kv.save(path);

    SegmentStore store(dir);
    EXPECT_TRUE(store.loadAll().empty());
    EXPECT_EQ(store.stats().segmentsQuarantined, 1);
}

TEST(SegmentStore, QuarantinedIndexIsNeverReused)
{
    const std::string dir = cacheDir("reuse");
    {
        SegmentStore store(dir);
        store.append({record(1, 64, 1, 1.0)});
    }
    // Corrupt and quarantine seg 0.
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        fs::resize_file(entry.path(), 4);
    {
        SegmentStore store(dir);
        store.loadAll();
        // The next segment this store writes must not collide with the
        // quarantined corpse's index.
        store.append({record(2, 64, 2, 2.0)});
    }
    SegmentStore reader(dir);
    std::vector<SegmentRecord> loaded = reader.loadAll();
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].scope, 2u);
    EXPECT_EQ(quarantineCount(dir), 1u);
}

TEST(SegmentStore, CompactCollapsesToOneSegment)
{
    const std::string dir = cacheDir("compact");
    SegmentStore writer(dir);
    for (int i = 0; i < 5; ++i)
        writer.append({record(static_cast<uint64_t>(i), 64,
                              static_cast<uint64_t>(i), i * 1.0)});
    EXPECT_EQ(writer.segmentCount(), 5u);

    SegmentStore store(dir);
    std::vector<SegmentRecord> all = store.loadAll();
    ASSERT_EQ(all.size(), 5u);
    store.compact(all);
    EXPECT_EQ(store.segmentCount(), 1u);

    SegmentStore reader(dir);
    EXPECT_EQ(reader.loadAll(), all);
}

TEST(SegmentStore, NonCacheFileIsQuarantinedNotFatal)
{
    const std::string dir = cacheDir("foreign");
    SegmentStore store(dir); // creates the directory
    {
        std::ofstream out(dir + "/seg-00000000.kv");
        out << "not = a segment\n";
    }
    EXPECT_TRUE(store.loadAll().empty());
    EXPECT_EQ(store.stats().segmentsQuarantined, 1);
}

} // namespace
