/**
 * @file
 * SharedEvaluationCache: the process-wide L2 tier. Basic hit/miss and
 * telemetry, the never-cache-failures contract at the publish
 * boundary, cross-session hit attribution, the LRU byte bound,
 * persistence round trips (bit-exact values, warm start, fsck), and a
 * multi-threaded hammer that drives many owners over overlapping keys
 * — run under the ASan/UBSan and TSan CI jobs.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <gtest/gtest.h>
#include <limits>
#include <thread>
#include <vector>

#include "cache/shared_cache.h"

using namespace petabricks;
using namespace petabricks::cache;

namespace {

namespace fs = std::filesystem;

std::string
cacheDir(const char *name)
{
    std::string path =
        std::string(::testing::TempDir()) + "pb_shared_cache_" + name;
    fs::remove_all(path);
    return path;
}

SharedCacheOptions
memoryOnly(size_t maxBytes = 1 << 20)
{
    SharedCacheOptions options;
    options.maxBytes = maxBytes;
    return options;
}

TEST(SharedCache, MissThenPublishThenHit)
{
    SharedEvaluationCache cache(memoryOnly());
    uint64_t owner = cache.registerOwner();
    EXPECT_FALSE(cache.lookup(1, 64, 100, owner).has_value());
    cache.publish(1, 64, 100, 1.25, owner);
    std::optional<double> hit = cache.lookup(1, 64, 100, owner);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(*hit, 1.25);

    SharedCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.insertions, 1);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.bytes, SharedEvaluationCache::kEntryBytes);
    // Own-session hit: not cross-session.
    EXPECT_EQ(stats.crossSessionHits, 0);
}

TEST(SharedCache, EveryKeyComponentPartitions)
{
    SharedEvaluationCache cache(memoryOnly());
    uint64_t owner = cache.registerOwner();
    cache.publish(1, 64, 100, 1.0, owner);
    EXPECT_FALSE(cache.lookup(2, 64, 100, owner).has_value()); // scope
    EXPECT_FALSE(cache.lookup(1, 128, 100, owner).has_value()); // n
    EXPECT_FALSE(cache.lookup(1, 64, 101, owner).has_value()); // config
    EXPECT_TRUE(cache.lookup(1, 64, 100, owner).has_value());
}

TEST(SharedCache, NonFiniteValuesAreNeverPublished)
{
    // PR 7's contract enforced at the cache boundary: NaN (evaluation
    // failed) and inf (infeasible) are properties of one run, never
    // shared state.
    SharedEvaluationCache cache(memoryOnly());
    uint64_t owner = cache.registerOwner();
    cache.publish(1, 64, 1, std::nan(""), owner);
    cache.publish(1, 64, 2, std::numeric_limits<double>::infinity(),
                  owner);
    cache.publish(1, 64, 3, -std::numeric_limits<double>::infinity(),
                  owner);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().rejectedNonFinite, 3);
    EXPECT_FALSE(cache.lookup(1, 64, 1, owner).has_value());
}

TEST(SharedCache, CrossSessionHitsAreAttributed)
{
    SharedEvaluationCache cache(memoryOnly());
    uint64_t alice = cache.registerOwner();
    uint64_t bob = cache.registerOwner();
    EXPECT_NE(alice, bob);

    cache.publish(1, 64, 100, 1.0, alice);
    cache.lookup(1, 64, 100, alice); // own entry: plain hit
    EXPECT_EQ(cache.stats().crossSessionHits, 0);
    cache.lookup(1, 64, 100, bob); // somebody else's entry
    EXPECT_EQ(cache.stats().crossSessionHits, 1);
    EXPECT_EQ(cache.stats().hits, 2);
}

TEST(SharedCache, RepublishKeepsFirstValue)
{
    // Deterministic evaluators republish equal values; first-wins
    // means every reader observes one stable value even if a buggy
    // caller disagreed.
    SharedEvaluationCache cache(memoryOnly());
    uint64_t owner = cache.registerOwner();
    cache.publish(1, 64, 100, 1.0, owner);
    cache.publish(1, 64, 100, 2.0, owner);
    EXPECT_DOUBLE_EQ(*cache.lookup(1, 64, 100, owner), 1.0);
    EXPECT_EQ(cache.stats().insertions, 1);
}

TEST(SharedCache, ByteBoundEvictsOldEntries)
{
    // A tiny budget on one shard: the cache must stay bounded and keep
    // serving, evicting oldest-first.
    SharedCacheOptions options;
    options.maxBytes = 32 * SharedEvaluationCache::kEntryBytes;
    options.shardCount = 1;
    SharedEvaluationCache cache(options);
    uint64_t owner = cache.registerOwner();

    for (uint64_t fp = 0; fp < 500; ++fp)
        cache.publish(1, 64, fp, 1.0 + fp, owner);

    SharedCacheStats stats = cache.stats();
    EXPECT_LE(stats.entries, 32u);
    EXPECT_LE(stats.bytes, options.maxBytes);
    EXPECT_GT(stats.evictions, 0);
    // The newest entry always survives an eviction sweep.
    EXPECT_TRUE(cache.lookup(1, 64, 499, owner).has_value());
}

TEST(SharedCache, LookupRefreshesLru)
{
    SharedCacheOptions options;
    options.maxBytes = 8 * SharedEvaluationCache::kEntryBytes;
    options.shardCount = 1;
    SharedEvaluationCache cache(options);
    uint64_t owner = cache.registerOwner();

    cache.publish(1, 64, 0, 1.0, owner);
    for (uint64_t fp = 1; fp < 8; ++fp) {
        cache.publish(1, 64, fp, 1.0, owner);
        // Touch key 0 after every publish: it is always the most
        // recently used when the eviction sweep fires.
        cache.lookup(1, 64, 0, owner);
    }
    cache.publish(1, 64, 99, 1.0, owner); // trips the bound
    EXPECT_GT(cache.stats().evictions, 0);
    EXPECT_TRUE(cache.lookup(1, 64, 0, owner).has_value());
}

TEST(SharedCache, PersistsAcrossRestart)
{
    const std::string dir = cacheDir("restart");
    const double exact = 1.0 / 3.0; // no short decimal representation
    {
        SharedCacheOptions options = memoryOnly();
        options.dir = dir;
        SharedEvaluationCache cache(options);
        uint64_t owner = cache.registerOwner();
        cache.publish(1, 64, 100, exact, owner);
        cache.publish(1, 128, 101, 2.5, owner);
        // Destructor flushes the journal.
    }
    SharedCacheOptions options = memoryOnly();
    options.dir = dir;
    SharedEvaluationCache cache(options);
    uint64_t owner = cache.registerOwner();

    SharedCacheStats stats = cache.stats();
    EXPECT_EQ(stats.loadedEntries, 2);
    EXPECT_EQ(stats.segmentsLoaded, 1);

    std::optional<double> hit = cache.lookup(1, 64, 100, owner);
    ASSERT_TRUE(hit.has_value());
    // Bit-exact round trip: the byte-identical-champion guarantee.
    EXPECT_EQ(*hit, exact);
    // Disk entries belong to owner 0 (the previous process), so every
    // hit on them counts as cross-session.
    EXPECT_EQ(cache.stats().crossSessionHits, 1);
}

TEST(SharedCache, ExplicitFlushWritesASegment)
{
    const std::string dir = cacheDir("flush");
    SharedCacheOptions options = memoryOnly();
    options.dir = dir;
    SharedEvaluationCache cache(options);
    uint64_t owner = cache.registerOwner();
    cache.publish(1, 64, 1, 1.0, owner);
    EXPECT_EQ(cache.stats().flushes, 0);
    cache.flush();
    EXPECT_EQ(cache.stats().flushes, 1);
    cache.flush(); // empty journal: no segment
    EXPECT_EQ(cache.stats().flushes, 1);

    SharedCacheOptions reload = memoryOnly();
    reload.dir = dir;
    SharedEvaluationCache warm(reload);
    EXPECT_EQ(warm.stats().loadedEntries, 1);
}

TEST(SharedCache, AutoFlushAfterThreshold)
{
    const std::string dir = cacheDir("autoflush");
    SharedCacheOptions options = memoryOnly();
    options.dir = dir;
    options.flushEveryPublishes = 4;
    SharedEvaluationCache cache(options);
    uint64_t owner = cache.registerOwner();
    for (uint64_t fp = 0; fp < 4; ++fp)
        cache.publish(1, 64, fp, 1.0, owner);
    EXPECT_EQ(cache.stats().flushes, 1);
}

TEST(SharedCache, WarmStartQuarantinesTornSegmentAndBoots)
{
    const std::string dir = cacheDir("fsck");
    {
        SharedCacheOptions options = memoryOnly();
        options.dir = dir;
        SharedEvaluationCache cache(options);
        uint64_t owner = cache.registerOwner();
        cache.publish(1, 64, 1, 1.0, owner);
        cache.flush();
        cache.publish(1, 64, 2, 2.0, owner);
        cache.flush();
    }
    // Tear the first segment.
    std::vector<std::string> segments;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        segments.push_back(entry.path().string());
    std::sort(segments.begin(), segments.end());
    ASSERT_EQ(segments.size(), 2u);
    fs::resize_file(segments[0], 4);

    SharedCacheOptions options = memoryOnly();
    options.dir = dir;
    SharedEvaluationCache cache(options); // must not throw
    uint64_t owner = cache.registerOwner();
    EXPECT_EQ(cache.stats().segmentsQuarantined, 1);
    EXPECT_EQ(cache.stats().loadedEntries, 1);
    EXPECT_TRUE(cache.lookup(1, 64, 2, owner).has_value());
    EXPECT_FALSE(cache.lookup(1, 64, 1, owner).has_value());
}

TEST(SharedCache, WarmStartCompactsLongTail)
{
    const std::string dir = cacheDir("compact");
    {
        SharedCacheOptions options = memoryOnly();
        options.dir = dir;
        options.flushEveryPublishes = 1; // one segment per publish
        SharedEvaluationCache cache(options);
        uint64_t owner = cache.registerOwner();
        for (uint64_t fp = 0; fp < 12; ++fp)
            cache.publish(1, 64, fp, 1.0 + fp, owner);
    }
    SharedCacheOptions options = memoryOnly();
    options.dir = dir;
    options.compactAboveSegments = 8;
    SharedEvaluationCache cache(options);
    EXPECT_EQ(cache.stats().loadedEntries, 12);

    // The tail was rewritten as one segment; everything survived.
    size_t liveSegments = 0;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".kv")
            ++liveSegments;
    EXPECT_EQ(liveSegments, 1u);

    SharedCacheOptions reload = memoryOnly();
    reload.dir = dir;
    SharedEvaluationCache again(reload);
    EXPECT_EQ(again.stats().loadedEntries, 12);
}

TEST(SharedCache, MaxBytesZeroStillWorksDegenerate)
{
    // The server disables the shared tier by not constructing one;
    // the cache itself clamps a zero budget to one entry per shard
    // rather than dividing by zero or evicting forever.
    SharedCacheOptions options;
    options.maxBytes = 0;
    options.shardCount = 4;
    SharedEvaluationCache cache(options);
    uint64_t owner = cache.registerOwner();
    for (uint64_t fp = 0; fp < 64; ++fp)
        cache.publish(1, 64, fp, 1.0, owner);
    EXPECT_LE(cache.size(), 8u); // about one per shard
}

/**
 * The concurrency hammer: many "sessions" (threads with distinct
 * owners) race lookups and publishes over an overlapping key set, with
 * eviction pressure on, while other threads snapshot stats. The
 * invariant that makes sharing safe at all: the value for a key is a
 * pure function of the key, so every hit must return exactly that
 * function — a torn read, a lost update, or cross-key aliasing would
 * break it. Run under ASan/UBSan and TSan in CI.
 */
TEST(SharedCacheHammer, ManySessionsOverlappingKeys)
{
    SharedCacheOptions options;
    options.maxBytes = 256 * SharedEvaluationCache::kEntryBytes;
    options.shardCount = 4; // keys collide on shards, locks contended
    SharedEvaluationCache cache(options);

    constexpr int kThreads = 8;
    constexpr int kRounds = 400;
    constexpr uint64_t kScopes = 3;
    constexpr uint64_t kConfigs = 50;

    auto valueFor = [](uint64_t scope, int64_t n, uint64_t fp) {
        return static_cast<double>(scope * 1000003 +
                                   static_cast<uint64_t>(n) * 101 + fp) +
               0.25;
    };

    std::vector<std::thread> threads;
    std::atomic<int64_t> wrongValues{0};
    threads.reserve(kThreads + 2);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            uint64_t owner = cache.registerOwner();
            // Thread-distinct iteration order over a shared key set.
            uint64_t cursor = static_cast<uint64_t>(t) * 7 + 1;
            for (int round = 0; round < kRounds; ++round) {
                uint64_t scope = cursor % kScopes;
                int64_t n = 64 << (cursor % 3);
                uint64_t fp = cursor % kConfigs;
                cursor = cursor * 6364136223846793005ull + 1442695040888963407ull;

                double expected = valueFor(scope, n, fp);
                if (std::optional<double> hit =
                        cache.lookup(scope, n, fp, owner)) {
                    if (*hit != expected)
                        wrongValues.fetch_add(1);
                } else {
                    cache.publish(scope, n, fp, expected, owner);
                }
                // Sprinkle in rejected failures too.
                if (round % 97 == 0)
                    cache.publish(scope, n, fp + 1000, std::nan(""),
                                  owner);
            }
        });
    }
    // Concurrent stats readers (shared-lock the shards).
    std::atomic<bool> stop{false};
    for (int r = 0; r < 2; ++r)
        threads.emplace_back([&] {
            while (!stop.load())
                (void)cache.stats();
        });
    for (int t = 0; t < kThreads; ++t)
        threads[static_cast<size_t>(t)].join();
    stop.store(true);
    for (size_t t = kThreads; t < threads.size(); ++t)
        threads[t].join();

    EXPECT_EQ(wrongValues.load(), 0);
    SharedCacheStats stats = cache.stats();
    EXPECT_LE(stats.bytes, options.maxBytes);
    EXPECT_GT(stats.hits, 0);
    EXPECT_GT(stats.crossSessionHits, 0);
    EXPECT_GT(stats.rejectedNonFinite, 0);
    // Accounting sanity: every lookup was a hit or a miss.
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<int64_t>(kThreads) * kRounds);
}

/** Same hammer against a persistent cache with aggressive auto-flush:
 * publishes, flush segment writes, and warm-start all interleave with
 * the locks under test. */
TEST(SharedCacheHammer, PersistentConcurrentFlush)
{
    const std::string dir = cacheDir("hammer");
    {
        SharedCacheOptions options;
        options.maxBytes = 1 << 20;
        options.shardCount = 4;
        options.dir = dir;
        options.flushEveryPublishes = 16;
        SharedEvaluationCache cache(options);

        constexpr int kThreads = 6;
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t)
            threads.emplace_back([&, t] {
                uint64_t owner = cache.registerOwner();
                for (uint64_t fp = 0; fp < 200; ++fp) {
                    uint64_t key = (fp + static_cast<uint64_t>(t) * 37) %
                                   300;
                    if (!cache.lookup(7, 64, key, owner))
                        cache.publish(7, 64, key,
                                      static_cast<double>(key) + 0.5,
                                      owner);
                    if (fp % 50 == 0)
                        cache.flush();
                }
            });
        for (std::thread &thread : threads)
            thread.join();
    }
    // Everything published must be loadable, each key exactly its
    // pure-function value.
    SharedCacheOptions options;
    options.maxBytes = 1 << 20;
    options.dir = dir;
    SharedEvaluationCache warm(options);
    uint64_t owner = warm.registerOwner();
    EXPECT_GT(warm.stats().loadedEntries, 0);
    for (uint64_t key = 0; key < 300; ++key)
        if (std::optional<double> hit = warm.lookup(7, 64, key, owner))
            EXPECT_EQ(*hit, static_cast<double>(key) + 0.5) << key;
}

} // namespace
