#!/usr/bin/env bash
# Daemon robustness smoke, seven legs:
#   1. Crash durability: SIGKILL tunerd mid-search, restart on the same
#      spool, resume, and assert the finished champion is byte-identical
#      to the same search run uninterrupted in-process.
#   2. Graceful drain: SIGTERM tunerd with detached work in flight; it
#      must finish the in-flight stepping, checkpoint every session,
#      and exit 0 — and a restart must resume to the identical champion.
#   3. Corrupt-spool boot: plant torn .meta/.ckpt files in the spool;
#      the daemon must quarantine them, report the count in /stats, and
#      keep serving new sessions.
#   4. Shared-cache persistence: run a search with --cache-dir, SIGTERM
#      drain, plant a torn cache segment, restart on the same cache
#      dir; the rerun must be served shared-cache hits (cross-session,
#      since the publisher was the previous process), the torn segment
#      must be quarantined, and the champion must stay byte-identical.
#   5. Portfolio persistence: tune a champion ladder over HTTP with
#      --portfolio-dir, SIGTERM drain, restart on the same directory;
#      the restarted daemon must serve a byte-identical champion from
#      the champ-*.kv files it loaded at boot.
#   6. IO-fault degradation: --crash-at injects ENOSPC into the first
#      portfolio champion write; the tune must still succeed, the
#      champion must be served from memory, and /stats must count the
#      failure in io.writeFailures.
#   7. Supervisor: tunerd --supervise with a scheduled kill mid-
#      checkpoint; the supervisor must restart the crashed child on the
#      same spool, the resumed champion must be byte-identical, /stats
#      must report server.restartCount = 1, and SIGTERM to the
#      supervisor must drain the child and exit 0.
#
# Usage: scripts/daemon_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
TUNERD="$BUILD_DIR/tunerd"
CLIENT="$BUILD_DIR/remote_tuning"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/tunerd-smoke.XXXXXX")"
SPOOL="$WORK/spool"
PORT_FILE="$WORK/port"
DAEMON_PID=""
DAEMON_EXTRA_ARGS=()

# Small enough to finish in seconds, large enough that the kill lands
# mid-search (12 total generations across input sizes 64..1024).
SEARCH_ARGS=(--benchmark Sort --seed 7 --population 4 --generations 4
             --max-input 1024)

cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "daemon_smoke: FAIL: $*" >&2; exit 1; }

start_daemon() {
    rm -f "$PORT_FILE"
    "$TUNERD" --port 0 --port-file "$PORT_FILE" --spool "$SPOOL" \
        --cap 4 --workers 2 "${DAEMON_EXTRA_ARGS[@]}" \
        >"$WORK/tunerd.log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$PORT_FILE" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on start"
        sleep 0.1
    done
    [ -s "$PORT_FILE" ] || fail "daemon never wrote its port file"
    PORT=$(cat "$PORT_FILE")
}

# ---- Reference: the identical search, no daemon involved -------------------
"$CLIENT" local "${SEARCH_ARGS[@]}" > "$WORK/expected.txt" \
    || fail "local reference run failed"

# ---- Start, create, advance a little, then SIGKILL mid-search --------------
start_daemon
echo "daemon_smoke: daemon up on port $PORT (pid $DAEMON_PID)"

SESSION=$("$CLIENT" --port "$PORT" create "${SEARCH_ARGS[@]}")
[ -n "$SESSION" ] || fail "create returned no session id"
"$CLIENT" --port "$PORT" step --session "$SESSION" --steps 3 \
    || fail "initial steps failed"
# Enqueue detached stepping so work is in flight when the kill lands.
"$CLIENT" --port "$PORT" step --session "$SESSION" --steps 999 --nowait \
    || fail "detached step failed"
sleep 0.2

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
echo "daemon_smoke: daemon SIGKILLed mid-search"
[ -f "$SPOOL/$SESSION.ckpt" ] || fail "no checkpoint survived the kill"

# ---- Restart on the same spool, resume, finish -----------------------------
start_daemon
echo "daemon_smoke: daemon restarted on port $PORT"
"$CLIENT" --port "$PORT" resume --session "$SESSION" \
    || fail "resume after restart failed"
"$CLIENT" --port "$PORT" finish --session "$SESSION" \
    > "$WORK/resumed.txt" || fail "finishing the resumed search failed"
"$CLIENT" --port "$PORT" stop --session "$SESSION"

# ---- The resumed champion must equal the uninterrupted one -----------------
if ! diff -u "$WORK/expected.txt" "$WORK/resumed.txt"; then
    fail "resumed champion differs from the uninterrupted run"
fi
echo "daemon_smoke: PASS leg 1 (SIGKILL: resumed champion identical)"

# ===========================================================================
# Leg 2: SIGTERM drain — finish in-flight work, checkpoint, exit 0.
# ===========================================================================
SPOOL="$WORK/spool-drain"
start_daemon
echo "daemon_smoke: drain leg daemon up on port $PORT (pid $DAEMON_PID)"

SESSION=$("$CLIENT" --port "$PORT" create "${SEARCH_ARGS[@]}")
[ -n "$SESSION" ] || fail "drain leg: create returned no session id"
"$CLIENT" --port "$PORT" step --session "$SESSION" --steps 2 \
    || fail "drain leg: initial steps failed"
# Detached stepping is in flight when the SIGTERM arrives: the drain
# must wait for it rather than dropping it on the floor.
"$CLIENT" --port "$PORT" step --session "$SESSION" --steps 999 --nowait \
    || fail "drain leg: detached step failed"

kill -TERM "$DAEMON_PID"
DRAIN_RC=0
wait "$DAEMON_PID" || DRAIN_RC=$?
DAEMON_PID=""
[ "$DRAIN_RC" -eq 0 ] || fail "drained daemon exited $DRAIN_RC, want 0"
[ -f "$SPOOL/$SESSION.ckpt" ] || fail "drain did not checkpoint the session"
echo "daemon_smoke: SIGTERM drain exited 0 with a checkpoint on disk"

start_daemon
"$CLIENT" --port "$PORT" resume --session "$SESSION" \
    || fail "drain leg: resume after drain failed"
"$CLIENT" --port "$PORT" finish --session "$SESSION" \
    > "$WORK/drained.txt" || fail "drain leg: finish failed"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""

if ! diff -u "$WORK/expected.txt" "$WORK/drained.txt"; then
    fail "champion after drain+restart differs from the uninterrupted run"
fi
echo "daemon_smoke: PASS leg 2 (SIGTERM drain: champion identical)"

# ===========================================================================
# Leg 3: corrupt-spool boot — quarantine the wreckage, keep serving.
# ===========================================================================
SPOOL="$WORK/spool-fsck"
mkdir -p "$SPOOL"
printf 'spec.benchmark = Sort\ntrunca' > "$SPOOL/s90.meta" # torn mid-write
printf 'not a checkpoint at all' > "$SPOOL/s92.ckpt"       # orphan garbage
start_daemon
echo "daemon_smoke: fsck leg daemon up on port $PORT (pid $DAEMON_PID)"

"$CLIENT" --port "$PORT" stats > "$WORK/fsck-stats.txt" \
    || fail "fsck leg: stats failed"
QUARANTINED=$(sed -n 's/^table.spoolQuarantined = //p' "$WORK/fsck-stats.txt")
[ "${QUARANTINED:-0}" -ge 2 ] \
    || fail "expected >=2 quarantined spool entries, got '${QUARANTINED:-}'"
[ -f "$SPOOL/s90.meta.quarantine" ] || fail "torn meta was not quarantined"
[ -f "$SPOOL/s92.ckpt.quarantine" ] || fail "orphan ckpt was not quarantined"

# The daemon must still serve real work off the fsck'd spool.
"$CLIENT" --port "$PORT" run "${SEARCH_ARGS[@]}" > "$WORK/fsck-run.txt" \
    || fail "fsck leg: run on the fsck'd spool failed"
if ! diff -u "$WORK/expected.txt" "$WORK/fsck-run.txt"; then
    fail "champion on the fsck'd spool differs from the reference"
fi
echo "daemon_smoke: PASS leg 3 (corrupt spool quarantined, daemon serving)"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""

# ===========================================================================
# Leg 4: shared-cache persistence — drain, tear a segment, restart,
# get served the previous process's evaluations.
# ===========================================================================
SPOOL="$WORK/spool-cache"
CACHE="$WORK/cache"
DAEMON_EXTRA_ARGS=(--cache-dir "$CACHE")
start_daemon
echo "daemon_smoke: cache leg daemon up on port $PORT (pid $DAEMON_PID)"

"$CLIENT" --port "$PORT" run "${SEARCH_ARGS[@]}" > "$WORK/cache-cold.txt" \
    || fail "cache leg: cold run failed"
if ! diff -u "$WORK/expected.txt" "$WORK/cache-cold.txt"; then
    fail "cache leg: champion with an empty shared cache differs"
fi

# Drain flushes the publish journal to a segment before exit.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "cache leg: drain exited nonzero"
DAEMON_PID=""
ls "$CACHE"/seg-*.kv >/dev/null 2>&1 \
    || fail "cache leg: drain left no cache segments in $CACHE"

# Tear one segment; the restart fsck must set it aside and still boot.
printf 'segment.version = 1\ntrunca' > "$CACHE/seg-00000099.kv"

start_daemon
echo "daemon_smoke: cache leg daemon restarted on port $PORT"
"$CLIENT" --port "$PORT" run "${SEARCH_ARGS[@]}" > "$WORK/cache-warm.txt" \
    || fail "cache leg: warm run failed"
if ! diff -u "$WORK/expected.txt" "$WORK/cache-warm.txt"; then
    fail "cache leg: champion served from the shared cache differs"
fi

"$CLIENT" --port "$PORT" stats > "$WORK/cache-stats.txt" \
    || fail "cache leg: stats failed"
stat_of() { sed -n "s/^cache.$1 = //p" "$WORK/cache-stats.txt"; }
[ "$(stat_of enabled)" = "1" ] || fail "cache leg: shared cache not enabled"
[ "$(stat_of loadedEntries)" -gt 0 ] \
    || fail "cache leg: nothing warm-started from $CACHE"
[ "$(stat_of segmentsQuarantined)" -ge 1 ] \
    || fail "cache leg: torn segment was not quarantined"
[ -f "$CACHE/seg-00000099.kv.quarantine" ] \
    || fail "cache leg: quarantined segment file missing"
# Every hit on a warm-started entry is a cross-session hit (the
# publisher was the previous daemon process).
[ "$(stat_of hits)" -gt 0 ] || fail "cache leg: no shared-cache hits"
[ "$(stat_of crossSessionHits)" -gt 0 ] \
    || fail "cache leg: no cross-session hits after restart"
echo "daemon_smoke: PASS leg 4 (shared cache persisted across restart:" \
     "$(stat_of crossSessionHits) cross-session hits," \
     "$(stat_of segmentsQuarantined) segment(s) quarantined)"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""

# ===========================================================================
# Leg 5: portfolio persistence — tune a champion ladder over HTTP,
# drain, restart on the same portfolio dir, get the identical champion.
# ===========================================================================
SPOOL="$WORK/spool-portfolio"
PORTDIR="$WORK/portfolio"
DAEMON_EXTRA_ARGS=(--portfolio-dir "$PORTDIR")
start_daemon
echo "daemon_smoke: portfolio leg daemon up on port $PORT (pid $DAEMON_PID)"

"$CLIENT" --port "$PORT" portfolio-tune --benchmark Black-Scholes \
    --machine Desktop --sizes 1024,4096 --seed 7 --population 4 \
    --generations 2 > "$WORK/portfolio-tune.txt" \
    || fail "portfolio leg: tune failed"
"$CLIENT" --port "$PORT" portfolio-champion --benchmark Black-Scholes \
    --machine Desktop --n 4096 > "$WORK/champ1.txt" \
    || fail "portfolio leg: champion query failed"
grep -q '^dispatch.policy = exact$' "$WORK/champ1.txt" \
    || fail "portfolio leg: expected an exact-hit dispatch"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "portfolio leg: drain exited nonzero"
DAEMON_PID=""
ls "$PORTDIR"/champ-*.kv >/dev/null 2>&1 \
    || fail "portfolio leg: no champ-*.kv files in $PORTDIR"

start_daemon
echo "daemon_smoke: portfolio leg daemon restarted on port $PORT"
"$CLIENT" --port "$PORT" portfolio-champion --benchmark Black-Scholes \
    --machine Desktop --n 4096 > "$WORK/champ2.txt" \
    || fail "portfolio leg: champion query after restart failed"
if ! diff -u "$WORK/champ1.txt" "$WORK/champ2.txt"; then
    fail "champion served after restart differs from the tuned one"
fi
"$CLIENT" --port "$PORT" stats > "$WORK/portfolio-stats.txt" \
    || fail "portfolio leg: stats failed"
LOADED=$(sed -n 's/^portfolio.loaded = //p' "$WORK/portfolio-stats.txt")
[ "${LOADED:-0}" -ge 2 ] \
    || fail "portfolio leg: expected >=2 loaded champions, got '${LOADED:-}'"
echo "daemon_smoke: PASS leg 5 (portfolio: byte-identical champion" \
     "served from disk after restart, $LOADED loaded)"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""

# ===========================================================================
# Leg 6: IO-fault degradation — inject ENOSPC into the first portfolio
# champion write; the tune succeeds, the champion is served from
# memory, and the failure shows up in io.writeFailures.
# ===========================================================================
SPOOL="$WORK/spool-enospc"
PORTDIR="$WORK/portfolio-enospc"
DAEMON_EXTRA_ARGS=(--portfolio-dir "$PORTDIR"
                   --crash-at "portfolio.champ.write=enospc")
start_daemon
echo "daemon_smoke: enospc leg daemon up on port $PORT (pid $DAEMON_PID)"

"$CLIENT" --port "$PORT" portfolio-tune --benchmark Black-Scholes \
    --machine Desktop --sizes 1024,4096 --seed 7 --population 4 \
    --generations 2 > "$WORK/enospc-tune.txt" \
    || fail "enospc leg: tune failed despite degraded persistence"
"$CLIENT" --port "$PORT" portfolio-champion --benchmark Black-Scholes \
    --machine Desktop --n 1024 > "$WORK/enospc-champ.txt" \
    || fail "enospc leg: champion query failed"
grep -q '^dispatch.policy = exact$' "$WORK/enospc-champ.txt" \
    || fail "enospc leg: unpersisted champion not served from memory"

"$CLIENT" --port "$PORT" stats > "$WORK/enospc-stats.txt" \
    || fail "enospc leg: stats failed"
IOFAIL=$(sed -n 's/^io.writeFailures = //p' "$WORK/enospc-stats.txt")
[ "${IOFAIL:-0}" -eq 1 ] \
    || fail "enospc leg: expected io.writeFailures = 1, got '${IOFAIL:-}'"
# The injected failure hit exactly one champion; the other persisted.
ls "$PORTDIR"/champ-*-4096.kv >/dev/null 2>&1 \
    || fail "enospc leg: healthy champion write did not persist"
echo "daemon_smoke: PASS leg 6 (injected ENOSPC degraded to a counter," \
     "champion still served)"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""
DAEMON_EXTRA_ARGS=()

# ===========================================================================
# Leg 7: supervisor — a scheduled kill mid-checkpoint crashes the
# child; the supervisor restarts it on the same spool, the resumed
# champion is byte-identical, and SIGTERM drains everything cleanly.
# ===========================================================================
SPOOL="$WORK/spool-supervise"
rm -f "$PORT_FILE"
"$TUNERD" --port 0 --port-file "$PORT_FILE" --spool "$SPOOL" \
    --cap 4 --workers 2 --supervise \
    --crash-at "spool.ckpt.pre_rename@4=kill" \
    >"$WORK/supervisor.log" 2>&1 &
SUPERVISOR_PID=$!
# cleanup() knows only DAEMON_PID; point it at the supervisor (killing
# the supervisor tears down its child).
DAEMON_PID=$SUPERVISOR_PID
for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    kill -0 "$SUPERVISOR_PID" 2>/dev/null \
        || fail "supervise leg: supervisor died on start"
    sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "supervise leg: no port file from first child"
PORT=$(cat "$PORT_FILE")
echo "daemon_smoke: supervised daemon up on port $PORT" \
     "(supervisor $SUPERVISOR_PID)"

SESSION=$("$CLIENT" --port "$PORT" create "${SEARCH_ARGS[@]}")
[ -n "$SESSION" ] || fail "supervise leg: create returned no session id"
# The 4th checkpoint write dies at the scheduled point mid-step; the
# client sees a dropped connection, which is the expected outcome.
"$CLIENT" --port "$PORT" step --session "$SESSION" --steps 999 \
    >/dev/null 2>&1 && fail "supervise leg: step survived a scheduled kill"
echo "daemon_smoke: supervised child crashed at the scheduled point"

# The supervisor must bring up a fresh child (new ephemeral port).
NEWPORT=""
for _ in $(seq 1 200); do
    if [ -s "$PORT_FILE" ]; then
        NEWPORT=$(cat "$PORT_FILE")
        [ "$NEWPORT" != "$PORT" ] && break
    fi
    kill -0 "$SUPERVISOR_PID" 2>/dev/null \
        || fail "supervise leg: supervisor gave up instead of restarting"
    sleep 0.1
done
[ -n "$NEWPORT" ] && [ "$NEWPORT" != "$PORT" ] \
    || fail "supervise leg: child was never restarted"
echo "daemon_smoke: supervisor restarted the daemon on port $NEWPORT"

"$CLIENT" --port "$NEWPORT" resume --session "$SESSION" \
    || fail "supervise leg: resume after the crash failed"
"$CLIENT" --port "$NEWPORT" finish --session "$SESSION" \
    > "$WORK/supervised.txt" || fail "supervise leg: finish failed"
if ! diff -u "$WORK/expected.txt" "$WORK/supervised.txt"; then
    fail "supervise leg: champion after supervised restart differs"
fi
"$CLIENT" --port "$NEWPORT" stats > "$WORK/supervise-stats.txt" \
    || fail "supervise leg: stats failed"
RESTARTS=$(sed -n 's/^server.restartCount = //p' "$WORK/supervise-stats.txt")
[ "${RESTARTS:-0}" -eq 1 ] \
    || fail "supervise leg: expected server.restartCount = 1," \
            "got '${RESTARTS:-}'"

# Graceful shutdown: TERM to the supervisor drains the child, both
# exit 0.
kill -TERM "$SUPERVISOR_PID"
wait "$SUPERVISOR_PID" \
    || fail "supervise leg: supervisor exited nonzero on graceful TERM"
DAEMON_PID=""
echo "daemon_smoke: PASS leg 7 (supervisor: auto-restart after crash," \
     "identical champion, clean drain)"

echo "daemon_smoke: PASS (all legs)"
