#!/usr/bin/env bash
# Daemon crash-durability smoke: start tunerd, drive a search through
# service::Client (via the remote_tuning example), SIGKILL the daemon
# mid-search, restart it on the same spool, resume, and assert the
# finished champion is byte-identical to the same search run
# uninterrupted in-process.
#
# Usage: scripts/daemon_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
TUNERD="$BUILD_DIR/tunerd"
CLIENT="$BUILD_DIR/remote_tuning"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/tunerd-smoke.XXXXXX")"
SPOOL="$WORK/spool"
PORT_FILE="$WORK/port"
DAEMON_PID=""

# Small enough to finish in seconds, large enough that the kill lands
# mid-search (12 total generations across input sizes 64..1024).
SEARCH_ARGS=(--benchmark Sort --seed 7 --population 4 --generations 4
             --max-input 1024)

cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "daemon_smoke: FAIL: $*" >&2; exit 1; }

start_daemon() {
    rm -f "$PORT_FILE"
    "$TUNERD" --port 0 --port-file "$PORT_FILE" --spool "$SPOOL" \
        --cap 4 --workers 2 >"$WORK/tunerd.log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$PORT_FILE" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on start"
        sleep 0.1
    done
    [ -s "$PORT_FILE" ] || fail "daemon never wrote its port file"
    PORT=$(cat "$PORT_FILE")
}

# ---- Reference: the identical search, no daemon involved -------------------
"$CLIENT" local "${SEARCH_ARGS[@]}" > "$WORK/expected.txt" \
    || fail "local reference run failed"

# ---- Start, create, advance a little, then SIGKILL mid-search --------------
start_daemon
echo "daemon_smoke: daemon up on port $PORT (pid $DAEMON_PID)"

SESSION=$("$CLIENT" --port "$PORT" create "${SEARCH_ARGS[@]}")
[ -n "$SESSION" ] || fail "create returned no session id"
"$CLIENT" --port "$PORT" step --session "$SESSION" --steps 3 \
    || fail "initial steps failed"
# Enqueue detached stepping so work is in flight when the kill lands.
"$CLIENT" --port "$PORT" step --session "$SESSION" --steps 999 --nowait \
    || fail "detached step failed"
sleep 0.2

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
echo "daemon_smoke: daemon SIGKILLed mid-search"
[ -f "$SPOOL/$SESSION.ckpt" ] || fail "no checkpoint survived the kill"

# ---- Restart on the same spool, resume, finish -----------------------------
start_daemon
echo "daemon_smoke: daemon restarted on port $PORT"
"$CLIENT" --port "$PORT" resume --session "$SESSION" \
    || fail "resume after restart failed"
"$CLIENT" --port "$PORT" finish --session "$SESSION" \
    > "$WORK/resumed.txt" || fail "finishing the resumed search failed"
"$CLIENT" --port "$PORT" stop --session "$SESSION"

# ---- The resumed champion must equal the uninterrupted one -----------------
if ! diff -u "$WORK/expected.txt" "$WORK/resumed.txt"; then
    fail "resumed champion differs from the uninterrupted run"
fi
echo "daemon_smoke: PASS (resumed champion identical to uninterrupted run)"
