#!/usr/bin/env python3
"""Compare a fresh model-throughput report against the committed baseline.

Perf-trend starter: CI runs `model_throughput --short`, then this script
diffs the fresh BENCH_model_throughput.json against
bench/baseline_model_throughput.json per benchmark and per path
(reference, fast, and warm shared cache), warning when configs/sec
regressed by more than the threshold (default 15%). Paths missing from
the baseline (e.g. warm_cache against a pre-cache baseline) are
skipped, not warned.

Deliberately NON-GATING: shared CI runners are far too noisy to fail a
build on wall-clock numbers, and the committed baseline was measured on
a different machine anyway. The value is the printed trend table in the
job log (and the warning lines grep-ably prefixed with `WARNING:`), not
a verdict. Exit code is 0 unless a file is missing/unreadable — pass
--gate to turn regressions into a non-zero exit once baselines are
runner-matched.

Usage:
    scripts/check_throughput_trend.py \
        [--baseline bench/baseline_model_throughput.json] \
        [--fresh BENCH_model_throughput.json] \
        [--threshold 0.15] [--gate]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_throughput_trend: cannot read {path}: {err}",
              file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description="Diff model-throughput reports, warn on regressions.")
    parser.add_argument("--baseline",
                        default="bench/baseline_model_throughput.json")
    parser.add_argument("--fresh", default="BENCH_model_throughput.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative configs/sec drop that counts as a "
                             "regression (default 0.15)")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 when any regression is found")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    if baseline.get("preset") != fresh.get("preset"):
        print(f"note: preset mismatch (baseline "
              f"{baseline.get('preset')!r} vs fresh "
              f"{fresh.get('preset')!r}); configs/sec are still "
              f"comparable, measurement windows differ")

    base_rows = {row["name"]: row for row in baseline["benchmarks"]}
    regressions = []
    print(f"{'benchmark':<20} {'path':<10} {'baseline':>12} "
          f"{'fresh':>12} {'delta':>8}")
    for row in fresh["benchmarks"]:
        name = row["name"]
        base = base_rows.pop(name, None)
        if base is None:
            print(f"{name:<20} (not in baseline)")
            continue
        # Paths are derived from the *_configs_per_sec columns present
        # in BOTH reports: columns newer than the committed baseline
        # (e.g. warm_cache against a pre-cache baseline) are a schema
        # generation gap, not a regression, and are skipped silently.
        suffix = "_configs_per_sec"
        paths = sorted(key[:-len(suffix)] for key in row
                       if key.endswith(suffix) and key in base)
        for path in paths:
            key = f"{path}{suffix}"
            before, after = base[key], row[key]
            if before is None or after is None:
                continue  # null = not measurable (infeasible/inf)
            delta = (after - before) / before if before else 0.0
            print(f"{name:<20} {path:<10} {before:>12.3g} "
                  f"{after:>12.3g} {delta:>+7.1%}")
            if delta < -args.threshold:
                regressions.append((name, path, delta))
    for name in base_rows:
        print(f"{name:<20} (missing from fresh report)")
        regressions.append((name, "missing", -1.0))

    if regressions:
        for name, path, delta in regressions:
            print(f"WARNING: {name} [{path}] configs/sec regressed "
                  f"{delta:.1%} vs baseline "
                  f"(threshold -{args.threshold:.0%})")
        if args.gate:
            sys.exit(1)
    else:
        print(f"no configs/sec regression beyond "
              f"{args.threshold:.0%} in any benchmark")


if __name__ == "__main__":
    main()
