/**
 * Figure 9: properties of the representative test systems (as machine
 * profiles; see DESIGN.md Section 2 for the substitution).
 */

#include <iostream>

#include "common.h"
#include "sim/machine.h"

using namespace petabricks;

int
main()
{
    std::cout << "=== Figure 9: test systems ===\n\n";
    TextTable table({"Codename", "CPU(s)", "Cores", "GPU / OpenCL device",
                     "OS", "OpenCL Runtime"});
    for (const auto &m : sim::MachineProfile::all()) {
        table.addRow({m.name, m.cpu.name, std::to_string(m.cpu.cores),
                      m.ocl.name, m.os, m.openclRuntime});
    }
    std::cout << table.toString();

    std::cout << "\nCalibrated model parameters:\n";
    TextTable params({"Codename", "CPU GFLOP/s", "CPU GB/s",
                      "OpenCL GFLOP/s (double)", "OpenCL GB/s",
                      "PCIe GB/s", "Workers"});
    for (const auto &m : sim::MachineProfile::all()) {
        params.addRow(
            {m.name, TextTable::num(m.cpu.peakGflops(), 0),
             TextTable::num(m.cpu.memBandwidthGBs, 0),
             TextTable::num(m.ocl.peakGflops(), 0),
             TextTable::num(m.ocl.memBandwidthGBs, 0),
             m.transfer.isFree() ? std::string("shared")
                                 : TextTable::num(
                                       m.transfer.bandwidthGBs, 1),
             std::to_string(m.workerThreads)});
    }
    std::cout << params.toString();
    return 0;
}
