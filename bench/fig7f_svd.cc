/**
 * Figure 7(f): SVD (256^2, variable accuracy) — three autotuned
 * configs cross-run on all machines.
 */

#include <iostream>

#include "benchmarks/svd.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 7(f): SVD (256^2) ===\n";
    SvdBenchmark bench;
    auto configs = bench::tuneAllMachines(bench);
    bench::printCrossTable(bench, configs);
    bench::printConfigSummaries(bench, configs);
    std::cout << "\nPaper's shape: small cross-config spread (1.2-1.9x); "
                 "Desktop uses CPU/GPU task parallelism in the first "
                 "phase, and the matmul configuration inside SVD differs "
                 "from Strassen tuned in isolation.\n";
    return 0;
}
