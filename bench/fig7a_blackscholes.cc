/**
 * Figure 7(a): Black-Scholes — the three autotuned configs plus the
 * CPU-only baseline, cross-run on all machines (normalized; lower is
 * better).
 */

#include <iostream>

#include "benchmarks/backend_util.h"
#include "benchmarks/blackscholes.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 7(a): Black-Scholes (n=500000) ===\n";
    BlackScholesBenchmark bench;
    auto configs = bench::tuneAllMachines(bench);
    configs.push_back(
        {"CPU-only Config", BlackScholesBenchmark::cpuOnlyConfig()});
    bench::printCrossTable(bench, configs);
    bench::printConfigSummaries(bench, configs);

    // The paper's Laptop finding: a 25%/75% CPU/GPU split gives ~1.3x
    // over GPU-only on Laptop and a large slowdown on Desktop.
    tuner::Config gpuOnly = bench.seedConfig();
    gpuOnly.selector("BlackScholes.backend")
        .setAlgorithm(0, backendAlg(compiler::Backend::OpenClGlobal));
    tuner::Config split = gpuOnly;
    split.tunable("BlackScholes.ratio").value = 6;
    auto laptop = sim::MachineProfile::laptop();
    auto desktop = sim::MachineProfile::desktop();
    int64_t n = bench.testingInputSize();
    std::cout << "\nSplit (75% GPU / 25% CPU) vs GPU-only:\n"
              << "  Laptop speedup:   "
              << TextTable::num(bench.evaluate(gpuOnly, n, laptop) /
                                    bench.evaluate(split, n, laptop), 2)
              << "x (paper: 1.3x)\n"
              << "  Desktop slowdown: "
              << TextTable::num(bench.evaluate(split, n, desktop) /
                                    bench.evaluate(gpuOnly, n, desktop),
                                2)
              << "x (paper: 7x)\n";
    return 0;
}
