/**
 * @file
 * Shared harness code for the figure/table benchmarks: autotune a
 * benchmark for each of the paper's machines, cross-evaluate every
 * tuned config on every machine, and print the normalized table the
 * paper plots (execution time normalized to the natively autotuned
 * configuration; lower is better).
 */

#ifndef PETABRICKS_BENCH_COMMON_H
#define PETABRICKS_BENCH_COMMON_H

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "benchmarks/benchmark.h"
#include "engine/execution_engine.h"
#include "support/table.h"

namespace petabricks {
namespace bench {

/** Tuner sizing used by the figure harnesses (deterministic). */
inline tuner::TunerOptions
figureTunerOptions(const apps::Benchmark &benchmark,
                   const sim::MachineProfile &machine)
{
    tuner::TunerOptions options;
    options.seed = 20130316 ^ std::hash<std::string>()(machine.name);
    options.populationSize = 10;
    options.generationsPerSize = 20;
    options.minInputSize = benchmark.minTuningSize();
    options.maxInputSize = benchmark.testingInputSize();
    options.kernelCompileSeconds = machine.kernelCompileSeconds;
    options.irCacheSavings = machine.irCacheSavings;
    return options;
}

/**
 * Autotune @p benchmark for @p machine with the figure settings, via
 * the session API: every generation is priced as one parallel
 * ModelEngine batch, and duplicate candidates are answered from the
 * session's evaluation cache. Identical champion to the serial path.
 */
inline tuner::TuningResult
tuneFor(const apps::Benchmark &benchmark,
        const sim::MachineProfile &machine)
{
    engine::ModelEngine engine(machine);
    return apps::tuneWithEngine(benchmark, engine,
                                figureTunerOptions(benchmark, machine));
}

/** A named configuration column of a Figure 7 style table. */
struct NamedConfig
{
    std::string name;
    tuner::Config config;
};

/**
 * Print the Figure 7 cross-product: every config on every machine,
 * normalized per machine to that machine's native config (the first
 * three entries of @p configs must be Desktop/Server/Laptop configs).
 * Extra baseline rows may follow.
 */
inline void
printCrossTable(const apps::Benchmark &benchmark,
                const std::vector<NamedConfig> &configs,
                const std::map<std::string, double> &extraBaselines = {})
{
    auto machines = sim::MachineProfile::all();
    int64_t n = benchmark.testingInputSize();

    std::vector<std::string> header{"Config"};
    std::vector<engine::ModelEngine> engines;
    for (const auto &machine : machines) {
        header.push_back("on " + machine.name);
        engines.emplace_back(machine);
    }
    TextTable table(header);

    // Native times used for normalization (config i on machine i).
    std::map<std::string, double> native;
    for (size_t m = 0; m < machines.size(); ++m) {
        native[machines[m].name] =
            engines[m].run(benchmark, configs[m].config, n).seconds;
    }

    for (const NamedConfig &config : configs) {
        std::vector<std::string> row{config.name};
        for (engine::ModelEngine &engine : engines) {
            double t;
            try {
                t = engine.run(benchmark, config.config, n).seconds;
            } catch (const FatalError &) {
                row.push_back("n/a");
                continue;
            }
            row.push_back(
                TextTable::num(t / native[engine.machine().name], 2) +
                "x");
        }
        table.addRow(row);
    }
    for (const auto &[name, desktopSeconds] : extraBaselines) {
        std::vector<std::string> row{name};
        for (const auto &machine : machines) {
            if (machine.name == "Desktop") {
                row.push_back(
                    TextTable::num(desktopSeconds /
                                       native[machine.name], 2) + "x");
            } else {
                row.push_back("-"); // NVIDIA-specific: Desktop only
            }
        }
        table.addRow(row);
    }
    std::cout << table.toString();

    std::cout << "\nNative absolute times (modeled):\n";
    for (const auto &machine : machines)
        std::cout << "  " << machine.name << ": "
                  << TextTable::num(native[machine.name] * 1e3, 3)
                  << " ms\n";
}

/** Tune on all three machines and return the three named configs. */
inline std::vector<NamedConfig>
tuneAllMachines(const apps::Benchmark &benchmark)
{
    std::vector<NamedConfig> configs;
    for (const auto &machine : sim::MachineProfile::all()) {
        tuner::TuningResult result = tuneFor(benchmark, machine);
        configs.push_back({machine.name + " Config", result.best});
    }
    return configs;
}

/** Print the per-machine tuned-choice summary (a Figure 6 row). */
inline void
printConfigSummaries(const apps::Benchmark &benchmark,
                     const std::vector<NamedConfig> &configs)
{
    std::cout << "\nAutotuned configurations (Figure 6 row):\n";
    for (const NamedConfig &config : configs) {
        std::cout << "  " << config.name << ": "
                  << benchmark.describeConfig(
                         config.config, benchmark.testingInputSize())
                  << "\n";
    }
}

} // namespace bench
} // namespace petabricks

#endif // PETABRICKS_BENCH_COMMON_H
