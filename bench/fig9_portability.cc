/**
 * @file
 * Portability matrix over the champion portfolio: tune every machine's
 * champion ladder for a set of benchmarks, then cross-price every
 * stored champion on every machine and compare it against what the
 * input-adaptive Dispatcher actually serves there.
 *
 * This is the paper's portable-performance claim made executable: a
 * program autotuned for one machine is the wrong program elsewhere
 * (the off-diagonal slowdowns), and the portfolio + dispatcher layer
 * closes the gap by construction — the dispatcher prices every stored
 * candidate on the target machine, so the config it serves is never
 * worse than any foreign champion. The harness *asserts* that
 * invariant cell by cell and exits non-zero on a violation.
 *
 * Everything runs under the pure analytic model with fixed seeds
 * (20130316 ^ hash(machine)), so the emitted BENCH_portability.json is
 * bit-deterministic: two runs on the same build produce identical
 * bytes. Infeasible placements (a GPU-placed champion priced on the
 * OpenCL-less BigLittle) surface as null cells, not errors.
 *
 * Usage: fig9_portability [--short] [--out PATH]
 */

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "common.h"
#include "portfolio/dispatcher.h"
#include "portfolio/portfolio.h"
#include "tuner/portfolio_tuner.h"

using namespace petabricks;

namespace {

std::string
jsonNum(double v)
{
    if (std::isinf(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
hex16(uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
    return buf;
}

/** Price one stored champion at @p n on @p machine; +inf when the
 * placement is infeasible there (e.g. GPU stages, no OpenCL). */
double
priceOn(const apps::Benchmark &benchmark, const tuner::Config &config,
        int64_t n, const sim::MachineProfile &machine,
        const apps::EvalContext *ctx)
{
    try {
        return benchmark.evaluate(config, n, machine, ctx);
    } catch (const FatalError &) {
        return std::numeric_limits<double>::infinity();
    }
}

struct MachineResult
{
    /** cells[src] = src's native champion priced on this machine. */
    std::map<std::string, double> cells;
    /** What the dispatcher serves here (min over every candidate). */
    portfolio::DispatchDecision served;
};

} // namespace

int
main(int argc, char **argv)
{
    bool shortPreset = false;
    std::string outPath = "BENCH_portability.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--short") {
            shortPreset = true;
        } else if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::cerr << "usage: fig9_portability [--short] [--out PATH]\n";
            return 2;
        }
    }

    const std::vector<sim::MachineProfile> machines =
        sim::MachineProfile::all();
    if (machines.size() < 5) {
        std::cerr << "expected >= 5 machine profiles, got "
                  << machines.size() << "\n";
        return 1;
    }
    const std::vector<std::string> names =
        shortPreset
            ? std::vector<std::string>{"Black-Scholes", "Mandelbrot"}
            : std::vector<std::string>{"Black-Scholes", "SeparableConv.",
                                       "Mandelbrot"};

    // ---- Phase 1: fill one shared portfolio, per machine ladders ------
    portfolio::ChampionPortfolio portfolio; // memory-only
    tuner::PortfolioTuner tuner(portfolio);
    for (const std::string &name : names) {
        apps::BenchmarkPtr benchmark = apps::findBenchmark(name);
        for (const sim::MachineProfile &machine : machines) {
            tuner::PortfolioTunerOptions options;
            options.growthFactor = shortPreset ? 16 : 4;
            options.tuner.seed =
                20130316 ^ std::hash<std::string>()(machine.name);
            options.tuner.populationSize = shortPreset ? 6 : 8;
            options.tuner.generationsPerSize = shortPreset ? 3 : 6;
            std::vector<tuner::PortfolioRung> rungs =
                tuner.tune(*benchmark, machine, options);
            std::cout << name << " on " << machine.name << ": "
                      << rungs.size() << " rungs, top champion "
                      << jsonNum(rungs.back().champion.seconds)
                      << " s\n";
        }
    }

    // ---- Phase 2: cross-price + dispatch, with the invariant check ----
    portfolio::Dispatcher dispatcher(portfolio);
    int violations = 0;
    // results[benchmark][dst machine]
    std::map<std::string, std::map<std::string, MachineResult>> results;
    for (const std::string &name : names) {
        apps::BenchmarkPtr benchmark = apps::findBenchmark(name);
        const int64_t n = benchmark->testingInputSize();

        std::cout << "\n=== " << name << " (n=" << n
                  << "): tuned-on x run-on, normalized to dispatched ===\n";
        std::vector<std::string> header{"Tuned on"};
        for (const sim::MachineProfile &dst : machines)
            header.push_back("on " + dst.name);
        TextTable table(header);

        for (const sim::MachineProfile &dst : machines) {
            MachineResult &result = results[name][dst.name];
            apps::EvalContextPtr ctx =
                benchmark->makeEvalContext(n, dst);
            for (const sim::MachineProfile &src : machines) {
                auto champion =
                    portfolio.exact(name, src.fingerprint(), n);
                if (!champion) {
                    std::cerr << "missing champion: " << name << " on "
                              << src.name << "\n";
                    return 1;
                }
                result.cells[src.name] = priceOn(
                    *benchmark, champion->config, n, dst, ctx.get());
            }
            // The dispatcher's pick: every stored candidate priced on
            // dst (crossMachine disables the exact-hit short circuit),
            // so by construction it can't lose to any single cell.
            portfolio::DispatchOptions options;
            options.crossMachine = true;
            options.topK = 1 << 20; // price everything
            result.served = dispatcher.dispatch(*benchmark, n, dst, options);
            for (const sim::MachineProfile &src : machines) {
                double cell = result.cells[src.name];
                if (std::isinf(cell))
                    continue; // infeasible there; nothing to beat
                if (result.served.pricedSeconds > cell) {
                    std::cerr << "VIOLATION: " << name << " on "
                              << dst.name << ": dispatched "
                              << result.served.pricedSeconds
                              << " s loses to " << src.name
                              << "'s champion at " << cell << " s\n";
                    ++violations;
                }
            }
        }

        for (const sim::MachineProfile &src : machines) {
            std::vector<std::string> row{src.name + " champion"};
            for (const sim::MachineProfile &dst : machines) {
                const MachineResult &result = results[name][dst.name];
                double cell = result.cells.at(src.name);
                if (std::isinf(cell)) {
                    row.push_back("n/a");
                    continue;
                }
                row.push_back(
                    TextTable::num(
                        cell / result.served.pricedSeconds, 2) + "x");
            }
            table.addRow(row);
        }
        std::cout << table.toString();
        for (const sim::MachineProfile &dst : machines) {
            const MachineResult &result = results[name][dst.name];
            std::cout << "  dispatched on " << dst.name << ": champion "
                      << "tuned on " << result.served.champion.machineName
                      << " @ n=" << result.served.champion.inputSize
                      << " (" << result.served.policy << ", "
                      << jsonNum(result.served.pricedSeconds) << " s)\n";
        }
    }

    // ---- JSON ---------------------------------------------------------
    std::ofstream out(outPath);
    out << "{\n"
        << "  \"bench\": \"portability\",\n"
        << "  \"preset\": \"" << (shortPreset ? "short" : "full")
        << "\",\n"
        << "  \"machines\": [\n";
    for (size_t m = 0; m < machines.size(); ++m)
        out << "    {\"name\": \"" << machines[m].name
            << "\", \"fingerprint\": \""
            << hex16(machines[m].fingerprint()) << "\"}"
            << (m + 1 < machines.size() ? "," : "") << "\n";
    out << "  ],\n"
        << "  \"benchmarks\": [\n";
    for (size_t b = 0; b < names.size(); ++b) {
        apps::BenchmarkPtr benchmark = apps::findBenchmark(names[b]);
        out << "    {\"name\": \"" << names[b] << "\", \"n\": "
            << benchmark->testingInputSize() << ", \"targets\": [\n";
        for (size_t d = 0; d < machines.size(); ++d) {
            const MachineResult &result =
                results[names[b]][machines[d].name];
            out << "      {\"machine\": \"" << machines[d].name
                << "\", \"dispatched_seconds\": "
                << jsonNum(result.served.pricedSeconds)
                << ", \"dispatched_tuned_on\": \""
                << result.served.champion.machineName
                << "\", \"dispatched_tuned_n\": "
                << result.served.champion.inputSize
                << ", \"cells\": {";
            for (size_t s = 0; s < machines.size(); ++s)
                out << "\"" << machines[s].name << "\": "
                    << jsonNum(result.cells.at(machines[s].name))
                    << (s + 1 < machines.size() ? ", " : "");
            out << "}}" << (d + 1 < machines.size() ? "," : "") << "\n";
        }
        out << "    ]}" << (b + 1 < names.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"violations\": " << violations << "\n"
        << "}\n";
    std::cout << "\nwrote " << outPath << "\n";

    if (violations != 0) {
        std::cerr << violations
                  << " dispatch-dominance violations (see above)\n";
        return 1;
    }
    std::cout << "dispatched champion dominates every foreign champion "
                 "on all " << machines.size() << " machines\n";
    return 0;
}
