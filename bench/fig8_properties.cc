/**
 * Figure 8: properties of the benchmarks — search-space size, number
 * of generated OpenCL kernels, mean (modeled) autotuning time across
 * the three machines, and the testing input size.
 */

#include <iostream>

#include "benchmarks/registry.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 8: benchmark properties ===\n\n";
    TextTable table({"Name", "# Possible Configs", "Generated Kernels",
                     "Mean Autotuning Time", "Testing Input Size"});
    double totalHours = 0.0;
    int count = 0;
    for (const BenchmarkPtr &benchmark : allBenchmarks()) {
        double log10 = benchmark->seedConfig().log10SpaceSize(
            benchmark->testingInputSize());

        // Mean modeled tuning time across machines, with a paper-scale
        // search effort (the JIT-compile model dominates, Section 5.4).
        double seconds = 0.0;
        for (const auto &machine : sim::MachineProfile::all()) {
            engine::ModelEngine engine(machine);
            tuner::TunerOptions options =
                bench::figureTunerOptions(*benchmark, machine);
            options.populationSize = 16;
            options.generationsPerSize = 150;
            // Figure 8 reports the *paper's* tuning time, where every
            // duplicate test really re-ran in a fresh process; disable
            // the session's result cache so the modeled hours match
            // that accounting (the champion is identical either way).
            options.cacheEvaluations = false;
            seconds += apps::tuneWithEngine(*benchmark, engine, options)
                           .tuningSeconds;
        }
        double hours = seconds / 3.0 / 3600.0;
        totalHours += hours;
        ++count;

        table.addRow({benchmark->name(),
                      "10^" + TextTable::num(log10, 0),
                      std::to_string(benchmark->openclKernelCount()),
                      TextTable::num(hours, 2) + " hours",
                      std::to_string(benchmark->testingInputSize())});
    }
    std::cout << table.toString();
    std::cout << "\nMean autotuning time across benchmarks: "
              << TextTable::num(totalHours / count, 1)
              << " hours (paper: 5.2 hours; dominated by OpenCL kernel "
                 "JIT compilation)\n";
    return 0;
}
