/**
 * Figure 7(g): Tridiagonal Solver (1024 systems of 1024) — three
 * autotuned configs cross-run on all machines, plus the CUDPP-style
 * baseline comparison at size 512.
 */

#include <iostream>

#include "benchmarks/backend_util.h"
#include "benchmarks/tridiagonal.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 7(g): Tridiagonal Solver (1024^2) ===\n";
    TridiagBenchmark bench;
    auto configs = bench::tuneAllMachines(bench);
    bench::printCrossTable(bench, configs);
    bench::printConfigSummaries(bench, configs);

    // The CUDPP comparison (paper Section 6.2, input size 512).
    auto desktop = sim::MachineProfile::desktop();
    tuner::Config gpuCr = bench.seedConfig();
    gpuCr.selector("Tridiag.algorithm").setAlgorithm(0, kTriCyclicGpu);
    double ours = bench.evaluate(gpuCr, 512, desktop);
    double cudpp = TridiagBenchmark::cudppSeconds(512, desktop);
    std::cout << "\nOur OpenCL cyclic reduction vs CUDPP-style CUDA "
                 "solver at 512: "
              << TextTable::num(ours / cudpp, 1)
              << "x slower (paper: 3.5x; OpenCL overhead + no "
                 "bank-conflict-free shared memory)\n";
    return 0;
}
