/**
 * Figure 2: execution time of the four OpenCL mappings of
 * SeparableConvolution (2D / separable, each with and without local
 * memory) for kernel widths 3..17 on the three test systems, with a
 * 3520x3520 input — plus the autotuner's choice, which should match
 * the best mapping at every point.
 */

#include <iostream>

#include "benchmarks/convolution.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 2: SeparableConvolution mappings vs kernel "
                 "width (3520x3520, modeled ms) ===\n";
    const int64_t n = 3520;

    for (const auto &machine : sim::MachineProfile::all()) {
        std::cout << "\n-- " << machine.name << " --\n";
        TextTable table({"width", "2D No-local", "2D Localmem",
                         "Separable No-local", "Separable Localmem",
                         "Autotuner", "Autotuner matches best"});
        for (int64_t kw = 3; kw <= 17; kw += 2) {
            ConvolutionBenchmark bench(kw);
            double best = std::numeric_limits<double>::infinity();
            std::vector<std::string> row{std::to_string(kw)};
            for (bool separable : {false, true}) {
                for (bool local : {false, true}) {
                    // All four fixed mappings place work on the GPU,
                    // which is infeasible on an OpenCL-less profile
                    // (BigLittle): evaluate() throws FatalError there.
                    try {
                        double t = bench.evaluate(
                            ConvolutionBenchmark::fixedMapping(separable,
                                                               local),
                            n, machine);
                        best = std::min(best, t);
                        row.push_back(TextTable::num(t * 1e3, 2));
                    } catch (const FatalError &) {
                        row.push_back("n/a");
                    }
                }
            }
            // Reorder: the loop above fills (2d,nolocal), (2d,local),
            // (sep,nolocal), (sep,local) which matches the header.
            tuner::TuningResult tuned = bench::tuneFor(bench, machine);
            double autotuned = bench.evaluate(tuned.best, n, machine);
            row.push_back(TextTable::num(autotuned * 1e3, 2));
            row.push_back(autotuned <= best * 1.001 ? "yes" : "NO");
            table.addRow(row);
        }
        std::cout << table.toString();
    }
    std::cout << "\nAs in the paper: the best mapping varies with both "
                 "machine and kernel width; the autotuner tracks it.\n";
    return 0;
}
