/**
 * Figure 7(c): Separable Convolution at width 7 — three autotuned
 * configs plus the hand-coded OpenCL baseline (NVIDIA-SDK-style
 * multi-output work-items; Desktop only).
 */

#include <iostream>

#include "benchmarks/convolution.h"
#include "common.h"
#include "sim/cost_model.h"

using namespace petabricks;
using namespace petabricks::apps;

namespace {

/**
 * The NVIDIA SDK separable-convolution sample: each work-item computes
 * multiple outputs. On the paper's Tesla C2070 this was 2.3x *slower*
 * than the autotuned one-output-per-item kernels (reduced occupancy
 * from higher register pressure; modeled as an efficiency factor).
 */
double
handCodedConvSeconds(int64_t n, int64_t kw,
                     const sim::MachineProfile &machine)
{
    double points = static_cast<double>(n - kw + 1) * (n - kw + 1);
    sim::CostReport pass;
    pass.flops = 2.0 * kw * points * 2.6; // occupancy-limited
    pass.globalBytesRead = 2.5 * 8.0 * points;
    pass.globalBytesWritten = 8.0 * points;
    pass.localBytes = 2.0 * kw * 8.0 * points;
    pass.invocations = 2;
    double kernel =
        sim::CostModel::kernelSeconds(machine.ocl, pass, 128);
    return machine.transfer.seconds(2.0 * 8.0 * n * n) + kernel;
}

} // namespace

int
main()
{
    std::cout << "=== Figure 7(c): Separable Convolution "
                 "(3520^2, width 7) ===\n";
    ConvolutionBenchmark bench(7);
    auto configs = bench::tuneAllMachines(bench);
    double handCoded = handCodedConvSeconds(
        3520, 7, sim::MachineProfile::desktop());
    bench::printCrossTable(bench, configs,
                           {{"Hand-coded OpenCL", handCoded}});
    bench::printConfigSummaries(bench, configs);
    std::cout << "\nPaper: the autotuned Desktop config beat the "
                 "NVIDIA SDK sample by 2.3x.\n";
    return 0;
}
