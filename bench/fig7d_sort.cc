/**
 * Figure 7(d): Sort (2^20 doubles) — three autotuned poly-algorithm
 * configs, the hand-written GPU-only bitonic config, and the
 * NVIDIA-SDK-style radix sort baseline.
 */

#include <iostream>

#include "benchmarks/sort.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 7(d): Sort (n = 2^20) ===\n";
    SortBenchmark bench;
    auto configs = bench::tuneAllMachines(bench);
    configs.push_back({"GPU-only Config", SortBenchmark::gpuOnlyConfig()});
    double handRadix = SortBenchmark::handCodedRadixSeconds(
        bench.testingInputSize(), sim::MachineProfile::desktop());
    bench::printCrossTable(bench, configs,
                           {{"Hand-coded OpenCL", handRadix}});
    bench::printConfigSummaries(bench, configs);

    // Cross-config spread on the CPU side (paper: up to 2.6x).
    auto machines = sim::MachineProfile::all();
    int64_t n = bench.testingInputSize();
    double worstSpread = 1.0;
    for (const auto &machine : machines) {
        double best = std::numeric_limits<double>::infinity();
        double worst = 0.0;
        for (size_t c = 0; c < 3; ++c) {
            // A tuned config can be infeasible elsewhere (GPU-placed
            // champion priced on the OpenCL-less BigLittle): skip it,
            // the spread is over configs the machine can run.
            double t;
            try {
                t = bench.evaluate(configs[c].config, n, machine);
            } catch (const FatalError &) {
                continue;
            }
            best = std::min(best, t);
            worst = std::max(worst, t);
        }
        if (worst > 0.0 && best < worst)
            worstSpread = std::max(worstSpread, worst / best);
    }
    std::cout << "\nLargest cross-config spread: "
              << TextTable::num(worstSpread, 2)
              << "x (paper: up to 2.6x between autotuned configs)\n";
    return 0;
}
