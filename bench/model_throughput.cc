/**
 * @file
 * Model-mode evaluation throughput: configs/sec per benchmark, on the
 * reference path (per-call from-scratch scaffolding — the pre-fast-path
 * behavior) vs. the EvaluationContext fast path the engines use.
 *
 * Search throughput is the autotuner's real currency: every configs/sec
 * gained multiplies how much of the choice space a fixed tuning budget
 * covers. This harness guards the fast path's speedup from regressing
 * and emits BENCH_model_throughput.json so the trajectory is tracked
 * across commits (CI runs `model_throughput --short` and uploads the
 * JSON as an artifact).
 *
 * Methodology: per benchmark, a deterministic population of mutated
 * configurations (fixed RNG seed) is evaluated at the paper's testing
 * input size on the Desktop profile. Both paths price the identical
 * config list; equality of every returned cost is asserted before any
 * timing. The fast path re-builds its EvaluationContext once per timing
 * round — exactly the per-generation rebuild the TuningSession pays.
 *
 * Usage: model_throughput [--short] [--out PATH]
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "cache/shared_cache.h"
#include "support/hash.h"
#include "support/rng.h"
#include "tuner/evaluation_cache.h"
#include "tuner/mutators.h"

using namespace petabricks;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Deterministic population of structurally valid mutants. */
std::vector<tuner::Config>
makePopulation(const apps::Benchmark &benchmark, int64_t n, int count,
               Rng &rng)
{
    tuner::Config seed = benchmark.seedConfig();
    std::vector<tuner::MutatorPtr> mutators =
        tuner::generateMutators(seed);
    std::vector<tuner::Config> configs;
    configs.reserve(static_cast<size_t>(count));
    configs.push_back(seed); // always include the seed itself
    while (configs.size() < static_cast<size_t>(count)) {
        tuner::Config config = seed;
        int64_t edits = rng.uniformInt(1, 4);
        for (int64_t e = 0; e < edits; ++e) {
            size_t m = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(mutators.size()) - 1));
            mutators[m]->apply(config, rng, n);
        }
        configs.push_back(std::move(config));
    }
    return configs;
}

/** One evaluation on the reference path; +inf for infeasible. */
double
evalReference(const apps::Benchmark &benchmark,
              const tuner::Config &config, int64_t n,
              const sim::MachineProfile &machine)
{
    try {
        return benchmark.evaluate(config, n, machine);
    } catch (const FatalError &) {
        return std::numeric_limits<double>::infinity();
    }
}

/** One evaluation on the fast path; +inf for infeasible. */
double
evalFast(const apps::Benchmark &benchmark, const tuner::Config &config,
         int64_t n, const sim::MachineProfile &machine,
         const apps::EvalContext *ctx)
{
    try {
        return benchmark.evaluate(config, n, machine, ctx);
    } catch (const FatalError &) {
        return std::numeric_limits<double>::infinity();
    }
}

struct PathTiming
{
    double seconds = 0.0;
    int64_t evaluations = 0;

    double
    configsPerSec() const
    {
        return seconds > 0.0
                   ? static_cast<double>(evaluations) / seconds
                   : 0.0;
    }
};

struct BenchmarkRow
{
    std::string name;
    int64_t n = 0;
    int configs = 0;
    PathTiming reference;
    PathTiming fast;
    /** Serving from a warm SharedEvaluationCache: fingerprint + L2
     * lookup per config, no model evaluation at all — the per-config
     * cost of a tunerd whose fleet has already priced these points. */
    PathTiming warm;

    double
    speedup() const
    {
        double ref = reference.configsPerSec();
        return ref > 0.0 ? fast.configsPerSec() / ref : 0.0;
    }
};

/** Defeats dead-code elimination of the timed cache lookups. */
volatile double g_sink = 0.0;

/** Repeat whole-population sweeps until minSeconds of work is timed. */
template <typename Sweep>
PathTiming
timePath(double minSeconds, int64_t evalsPerSweep, const Sweep &sweep)
{
    PathTiming timing;
    auto start = Clock::now();
    do {
        sweep();
        timing.evaluations += evalsPerSweep;
        timing.seconds = secondsSince(start);
    } while (timing.seconds < minSeconds);
    return timing;
}

std::string
jsonNum(double v)
{
    if (std::isinf(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bool shortPreset = false;
    std::string outPath = "BENCH_model_throughput.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--short") {
            shortPreset = true;
        } else if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::cerr << "usage: model_throughput [--short] [--out PATH]\n";
            return 2;
        }
    }

    // The population stays generation-sized in both presets: the fast
    // path's per-sweep context rebuild amortizes over it, so shrinking
    // the population would distort the comparison, not just shorten it.
    const int populationSize = 64;
    const double minSeconds = shortPreset ? 0.08 : 0.25;
    const sim::MachineProfile machine = sim::MachineProfile::desktop();

    std::vector<BenchmarkRow> rows;
    int mismatches = 0;

    for (const apps::BenchmarkPtr &benchmark : apps::allBenchmarks()) {
        BenchmarkRow row;
        row.name = benchmark->name();
        row.n = benchmark->testingInputSize();
        row.configs = populationSize;

        Rng rng(0x5EED2013 ^ static_cast<uint64_t>(row.n));
        std::vector<tuner::Config> configs =
            makePopulation(*benchmark, row.n, populationSize, rng);

        // Correctness gate: the fast path must reproduce the reference
        // path bit-for-bit before its throughput means anything.
        apps::EvalContextPtr ctx =
            benchmark->makeEvalContext(row.n, machine);
        for (const tuner::Config &config : configs) {
            double ref = evalReference(*benchmark, config, row.n, machine);
            double fast =
                evalFast(*benchmark, config, row.n, machine, ctx.get());
            bool equal = std::isinf(ref) ? std::isinf(fast) : ref == fast;
            if (!equal) {
                std::cerr << "MISMATCH: " << row.name << " ref=" << ref
                          << " fast=" << fast << "\n";
                ++mismatches;
            }
        }

        row.reference = timePath(
            minSeconds, populationSize, [&] {
                for (const tuner::Config &config : configs)
                    evalReference(*benchmark, config, row.n, machine);
            });
        row.fast = timePath(
            minSeconds, populationSize, [&] {
                // Context rebuilt per sweep: the per-generation cost a
                // TuningSession actually pays.
                apps::EvalContextPtr sweepCtx =
                    benchmark->makeEvalContext(row.n, machine);
                for (const tuner::Config &config : configs)
                    evalFast(*benchmark, config, row.n, machine,
                             sweepCtx.get());
            });

        // Warm shared cache: pre-publish every finite cost, then time
        // the serving path a session pays on an L2 hit — config
        // fingerprint plus one sharded lookup. Infeasible (+inf)
        // configs are never published (the never-cache-failures
        // contract), so they fall through to the fast path, exactly as
        // a live session would.
        cache::SharedCacheOptions cacheOptions;
        cacheOptions.maxBytes = 8u << 20;
        cache::SharedEvaluationCache shared(cacheOptions);
        const uint64_t scope = Fnv1a().mix(row.name).value();
        const uint64_t owner = shared.registerOwner();
        for (const tuner::Config &config : configs)
            shared.publish(scope, row.n,
                           tuner::EvaluationCache::fingerprint(config),
                           evalFast(*benchmark, config, row.n, machine,
                                    ctx.get()),
                           owner);
        row.warm = timePath(
            minSeconds, populationSize, [&] {
                apps::EvalContextPtr sweepCtx =
                    benchmark->makeEvalContext(row.n, machine);
                for (const tuner::Config &config : configs) {
                    uint64_t fp =
                        tuner::EvaluationCache::fingerprint(config);
                    if (std::optional<double> hit =
                            shared.lookup(scope, row.n, fp, owner))
                        g_sink = g_sink + *hit;
                    else
                        g_sink = g_sink +
                                 evalFast(*benchmark, config, row.n,
                                          machine, sweepCtx.get());
                }
            });
        rows.push_back(row);

        std::cout << row.name << " (n=" << row.n << "): reference "
                  << jsonNum(row.reference.configsPerSec())
                  << " configs/s, fast "
                  << jsonNum(row.fast.configsPerSec()) << " configs/s ("
                  << jsonNum(row.speedup()) << "x), warm shared cache "
                  << jsonNum(row.warm.configsPerSec()) << " configs/s\n";
    }

    int fiveTimes = 0;
    for (const BenchmarkRow &row : rows)
        if (row.speedup() >= 5.0)
            ++fiveTimes;
    std::cout << "\n" << fiveTimes << "/" << rows.size()
              << " benchmarks at >= 5x\n";

    std::ofstream out(outPath);
    out << "{\n"
        << "  \"bench\": \"model_throughput\",\n"
        << "  \"machine\": \"" << machine.name << "\",\n"
        << "  \"preset\": \"" << (shortPreset ? "short" : "full")
        << "\",\n"
        << "  \"population\": " << populationSize << ",\n"
        << "  \"benchmarks\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const BenchmarkRow &row = rows[i];
        out << "    {\"name\": \"" << row.name << "\", \"n\": " << row.n
            << ", \"reference_configs_per_sec\": "
            << jsonNum(row.reference.configsPerSec())
            << ", \"fast_configs_per_sec\": "
            << jsonNum(row.fast.configsPerSec())
            << ", \"warm_cache_configs_per_sec\": "
            << jsonNum(row.warm.configsPerSec())
            << ", \"speedup\": " << jsonNum(row.speedup()) << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"benchmarks_at_5x\": " << fiveTimes << ",\n"
        << "  \"cost_mismatches\": " << mismatches << "\n"
        << "}\n";
    std::cout << "wrote " << outPath << "\n";

    return mismatches == 0 ? 0 : 1;
}
