/**
 * TuningSession harness: the batched/cached/resumable evaluation path
 * against the legacy serial shape, on real tuning runs.
 *
 *  1. Serial baseline: one blocking evaluation per candidate, no
 *     cache (the EvolutionaryTuner shape).
 *  2. Session: one parallel ModelEngine batch per generation plus the
 *     evaluation cache. Must produce the *same champion* for the same
 *     seed, faster.
 *  3. Resume: the same search killed mid-way, checkpointed with
 *     save(), restored with load(), and driven to completion — must
 *     reach the same champion as the uninterrupted run.
 *  4. Real mode — where the paper's 5.2 hours actually went: a fixed
 *     batch of configurations really executed serially on one engine
 *     vs. fanned across an EnginePool of RuntimeEngines (identical
 *     work, so the wall-clock ratio is meaningful), plus a full
 *     real-mode tuning run through the pooled session API.
 *
 * Wall-clock ratios scale with the hardware: on a single-core host
 * the parallel paths degrade to serial plus bookkeeping (the printed
 * hardware width says which you are looking at); champion equality
 * and resume equality hold everywhere.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "benchmarks/convolution.h"
#include "benchmarks/sort.h"
#include "engine/engine_pool.h"
#include "engine/execution_engine.h"
#include "support/table.h"
#include "tuner/session.h"

using namespace petabricks;
using Clock = std::chrono::steady_clock;

namespace {

double
wallSeconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

tuner::TunerOptions
searchOptions(const apps::Benchmark &benchmark, bool cached)
{
    tuner::TunerOptions options;
    options.seed = 20130316;
    options.populationSize = 16;
    options.generationsPerSize = 40;
    options.minInputSize = benchmark.minTuningSize();
    options.maxInputSize = benchmark.testingInputSize();
    options.cacheEvaluations = cached;
    return options;
}

} // namespace

int
main()
{
    std::cout << "=== TuningSession: batched, cached, resumable "
                 "evaluation ===\n\n";
    apps::SortBenchmark bench;
    sim::MachineProfile desktop = sim::MachineProfile::desktop();

    // -- 1. Serial baseline: parallelism 1, cache off ------------------
    auto start = Clock::now();
    engine::ModelEngine serialEngine(desktop, /*parallelism=*/1);
    engine::EngineEvaluator serialEval(bench, serialEngine);
    tuner::TuningSession serial(serialEval, bench.seedConfig(),
                                searchOptions(bench, false));
    tuner::TuningResult serialResult = serial.run();
    double serialWall = wallSeconds(start);

    // -- 2. Batched + cached session -----------------------------------
    start = Clock::now();
    engine::ModelEngine batchEngine(desktop); // one thread per core
    engine::EngineEvaluator batchEval(bench, batchEngine);
    tuner::TuningSession session(batchEval, bench.seedConfig(),
                                 searchOptions(bench, true));
    tuner::TuningResult sessionResult = session.run();
    double sessionWall = wallSeconds(start);

    bool sameChampion = sessionResult.best == serialResult.best;
    TextTable table({"Path", "Wall s", "Evaluations", "Cache hits",
                     "Champion s", "Same champion"});
    table.addRow({"serial, uncached", TextTable::num(serialWall, 2),
                  std::to_string(serialResult.evaluations), "0",
                  TextTable::num(serialResult.bestSeconds * 1e3, 3) + "ms",
                  "(baseline)"});
    table.addRow({"batched + cached", TextTable::num(sessionWall, 2),
                  std::to_string(sessionResult.evaluations),
                  std::to_string(sessionResult.cacheHits),
                  TextTable::num(sessionResult.bestSeconds * 1e3, 3) +
                      "ms",
                  sameChampion ? "yes" : "NO"});
    std::cout << table.toString();
    std::cout << "  wall-clock ratio " << TextTable::num(serialWall / sessionWall, 2)
              << "x, evaluations saved by the cache "
              << TextTable::num(
                     static_cast<double>(serialResult.evaluations) /
                         static_cast<double>(sessionResult.evaluations),
                     2)
              << "x (model evaluations are microsecond-scale; the "
                 "batch path pays off on real runs, below)\n\n";

    // -- 3. Kill mid-search, checkpoint, resume ------------------------
    const std::string checkpoint = "/tmp/petabricks_session.ckpt";
    engine::ModelEngine resumeEngine(desktop);
    engine::EngineEvaluator resumeEval(bench, resumeEngine);
    {
        tuner::TuningSession killed(resumeEval, bench.seedConfig(),
                                    searchOptions(bench, true));
        killed.run(killed.totalSteps() / 2);
        killed.save(checkpoint);
        // `killed` is destroyed here: the search process "dies".
    }
    tuner::TuningSession resumed(resumeEval, bench.seedConfig(),
                                 searchOptions(bench, true));
    resumed.load(checkpoint);
    tuner::TuningResult resumedResult = resumed.run();
    std::remove(checkpoint.c_str());
    std::cout << "resume after kill at 50%: champion "
              << (resumedResult.best == sessionResult.best
                      ? "matches uninterrupted run\n\n"
                      : "DIVERGED from uninterrupted run\n\n");

    // -- 4a. Real mode, identical work: fixed batch ---------------------
    // Each real run costs milliseconds to tens of milliseconds, so
    // this is the path where fan-out across engine instances buys
    // wall-clock (given cores to fan onto).
    apps::ConvolutionBenchmark conv(5);
    std::vector<tuner::Config> batch;
    for (bool separable : {false, true})
        for (bool local : {false, true})
            batch.push_back(apps::ConvolutionBenchmark::fixedMapping(
                separable, local));
    const int64_t realN = 512;

    start = Clock::now();
    engine::RuntimeEngine single;
    auto serialRuns = single.runBatch(conv, batch, realN);
    double realSerialWall = wallSeconds(start);

    start = Clock::now();
    engine::EnginePool pool(
        [] { return std::make_unique<engine::RuntimeEngine>(); },
        static_cast<int>(batch.size()));
    auto pooledRuns = pool.runBatch(conv, batch, realN);
    double realPoolWall = wallSeconds(start);

    bool allCorrect = true;
    for (size_t i = 0; i < pooledRuns.size(); ++i)
        allCorrect &= pooledRuns[i].maxError <= conv.realModeTolerance() &&
                      serialRuns[i].maxError <= conv.realModeTolerance();
    std::cout << "real-mode batch of " << batch.size()
              << " configs (Convolution, n=" << realN << ", "
              << std::thread::hardware_concurrency()
              << " hardware threads):\n"
              << "  one engine, serial: "
              << TextTable::num(realSerialWall * 1e3, 0) << " ms\n"
              << "  pool[" << pool.engineCount()
              << "] fan-out:     " << TextTable::num(realPoolWall * 1e3, 0)
              << " ms (" << TextTable::num(realSerialWall / realPoolWall, 2)
              << "x), results "
              << (allCorrect ? "all within tolerance" : "WRONG") << "\n\n";

    // -- 4b. Real-mode tuning through the pooled session ---------------
    // The full stack end to end: TuningSession -> EngineEvaluator ->
    // EnginePool.measureBatch -> N RuntimeEngines, one batch per
    // generation. (Real timings are noisy, so real-mode champions are
    // not compared against a serial twin — determinism is a model-mode
    // guarantee.)
    tuner::TunerOptions realOptions;
    realOptions.seed = 20130316;
    realOptions.populationSize = 6;
    realOptions.generationsPerSize = 3;
    realOptions.minInputSize = 64;
    realOptions.maxInputSize = 256;
    realOptions.sizeGrowthFactor = 2;
    start = Clock::now();
    engine::EngineEvaluator pooledEval(conv, pool);
    tuner::TuningSession realSession(pooledEval, conv.seedConfig(),
                                     realOptions);
    tuner::TuningResult realResult = realSession.run();
    std::cout << "real-mode tuning via pooled session (sizes 64..256): "
              << realResult.evaluations << " real runs, "
              << realResult.cacheHits << " cache hits, "
              << TextTable::num(wallSeconds(start), 2)
              << "s wall; champion: "
              << conv.describeConfig(realResult.best, 256) << "\n";

    bool realFeasible = std::isfinite(realResult.bestSeconds);
    return sameChampion && resumedResult.best == sessionResult.best &&
                   allCorrect && realFeasible
               ? 0
               : 1;
}
