/**
 * Microbenchmarks of the runtime substrates (google-benchmark): deque
 * operations, task lifecycle, steal throughput, command-queue
 * round-trips, GPU memory table dedup, and the schedule simulator.
 */

#include <benchmark/benchmark.h>

#include "compiler/simulator.h"
#include "ocl/queue.h"
#include "runtime/runtime.h"
#include "sim/machine.h"

using namespace petabricks;

namespace {

void
BM_DequePushPop(benchmark::State &state)
{
    runtime::WorkDeque deque;
    runtime::TaskPtr task = runtime::Task::cpu("t", [] {});
    for (auto _ : state) {
        deque.pushTop(task);
        benchmark::DoNotOptimize(deque.popTop());
    }
}
BENCHMARK(BM_DequePushPop);

void
BM_DequeSteal(benchmark::State &state)
{
    runtime::WorkDeque deque;
    runtime::TaskPtr task = runtime::Task::cpu("t", [] {});
    for (auto _ : state) {
        deque.pushTop(task);
        benchmark::DoNotOptimize(deque.stealBottom());
    }
}
BENCHMARK(BM_DequeSteal);

void
BM_TaskLifecycle(benchmark::State &state)
{
    for (auto _ : state) {
        runtime::TaskPtr a = runtime::Task::cpu("a", [] {});
        runtime::TaskPtr b = runtime::Task::cpu("b", [] {});
        b->dependsOn(a);
        a->finishCreation();
        b->finishCreation();
        runtime::TaskContext ctx;
        std::vector<runtime::TaskPtr> runnable;
        a->run(ctx, runnable);
        runtime::TaskContext ctx2;
        runnable[0]->run(ctx2, runnable);
    }
}
BENCHMARK(BM_TaskLifecycle);

void
BM_RuntimeSpawnThroughput(benchmark::State &state)
{
    runtime::Runtime rt(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            rt.spawn(runtime::Task::cpu("t", [] {}));
        rt.wait();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RuntimeSpawnThroughput)->Arg(1)->Arg(4);

void
BM_CommandQueueRoundTrip(benchmark::State &state)
{
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    ocl::CommandQueue queue(device);
    auto buf = std::make_shared<ocl::Buffer>(4096);
    std::vector<double> host(512, 1.0);
    for (auto _ : state) {
        queue.enqueueWrite(buf, host.data(), 4096);
        queue.enqueueRead(buf, host.data(), 4096)->wait();
    }
}
BENCHMARK(BM_CommandQueueRoundTrip);

void
BM_GpuMemoryCopyInDedup(benchmark::State &state)
{
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    ocl::CommandQueue queue(device);
    runtime::GpuMemoryTable table(queue);
    MatrixD m(256, 256);
    table.prepare(m);
    table.copyIn(m, m.fullRegion());
    queue.finish();
    for (auto _ : state)
        benchmark::DoNotOptimize(table.copyIn(m, m.fullRegion()));
}
BENCHMARK(BM_GpuMemoryCopyInDedup);

void
BM_ScheduleSimulator(benchmark::State &state)
{
    for (auto _ : state) {
        sim::ScheduleSimulator sched(
            sim::MachineProfile::desktop());
        sim::SimTaskId prev = -1;
        for (int i = 0; i < 256; ++i) {
            std::vector<sim::SimTaskId> deps;
            if (prev >= 0)
                deps.push_back(prev);
            prev = sched.addTask(sim::SimResource::CpuWorker, 1e-6,
                                 deps);
        }
        benchmark::DoNotOptimize(sched.run());
    }
}
BENCHMARK(BM_ScheduleSimulator);

} // namespace

BENCHMARK_MAIN();
