/**
 * Figure 7(e): Strassen (1024^2 matmul) — three autotuned configs plus
 * the hand-coded OpenCL local-memory matmul baseline. Includes the
 * paper's headline measurement: the Laptop config's slowdown when run
 * on Desktop.
 */

#include <iostream>

#include "benchmarks/backend_util.h"
#include "benchmarks/strassen.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 7(e): Strassen (1024^2) ===\n";
    StrassenBenchmark bench;
    auto configs = bench::tuneAllMachines(bench);
    double handCoded = StrassenBenchmark::handCodedMatmulSeconds(
        bench.testingInputSize(), sim::MachineProfile::desktop());
    bench::printCrossTable(bench, configs,
                           {{"Hand-coded OpenCL", handCoded}});
    bench::printConfigSummaries(bench, configs);

    int64_t n = bench.testingInputSize();
    auto desktop = sim::MachineProfile::desktop();
    double native = bench.evaluate(configs[0].config, n, desktop);
    double migrated = bench.evaluate(configs[2].config, n, desktop);
    std::cout << "\nLaptop config on Desktop: "
              << TextTable::num(migrated / native, 1)
              << "x slowdown (paper: 16.5x)\n";
    std::cout << "Hand-coded local-memory matmul vs autotuned on "
                 "Desktop: "
              << TextTable::num(native / handCoded, 2)
              << "x (paper: 1.4x faster than autotuned)\n";
    return 0;
}
