/**
 * Figure 6: the table summarizing the autotuned configuration of every
 * benchmark on every machine — what each machine's tuner actually
 * chose.
 */

#include <iostream>

#include "benchmarks/registry.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 6: autotuned configurations per benchmark "
                 "and machine ===\n\n";
    std::vector<std::string> header{"Benchmark"};
    for (const auto &machine : sim::MachineProfile::all())
        header.push_back(machine.name + " Config");
    TextTable table(header);
    for (const BenchmarkPtr &benchmark : allBenchmarks()) {
        std::vector<std::string> row{benchmark->name()};
        for (const auto &machine : sim::MachineProfile::all()) {
            tuner::TuningResult result =
                bench::tuneFor(*benchmark, machine);
            row.push_back(benchmark->describeConfig(
                result.best, benchmark->testingInputSize()));
        }
        table.addRow(row);
    }
    std::cout << table.toString();
    return 0;
}
