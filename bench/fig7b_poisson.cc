/**
 * Figure 7(b): Poisson2D SOR — three autotuned configs plus the
 * CPU-only baseline, cross-run on all machines.
 */

#include <iostream>

#include "benchmarks/poisson.h"
#include "common.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    std::cout << "=== Figure 7(b): Poisson2D SOR (2048^2) ===\n";
    PoissonBenchmark bench;
    auto configs = bench::tuneAllMachines(bench);
    configs.push_back(
        {"CPU-only Config", PoissonBenchmark::cpuOnlyConfig()});
    bench::printCrossTable(bench, configs);
    bench::printConfigSummaries(bench, configs);
    std::cout << "\nPaper's shape: Desktop/Laptop split on the CPU and "
                 "iterate on the GPU;\nServer does nearly the opposite "
                 "because its OpenCL backend shares the CPU.\n";
    return 0;
}
