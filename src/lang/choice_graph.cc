#include "lang/choice_graph.h"

#include <algorithm>

#include "support/error.h"

namespace petabricks {
namespace lang {

ChoiceDependencyGraph::ChoiceDependencyGraph(const Transform &transform,
                                             size_t choiceIndex)
    : transform_(transform), choiceIndex_(choiceIndex)
{
    const Choice &choice = transform.choiceAt(choiceIndex);
    auto addVertex = [this](const std::string &slot) {
        if (std::find(vertices_.begin(), vertices_.end(), slot) ==
            vertices_.end())
            vertices_.push_back(slot);
    };
    for (const RulePtr &rule : choice.rules) {
        ChoiceEdge edge;
        edge.rule = rule;
        edge.sink = rule->outputSlot();
        addVertex(edge.sink);
        for (const std::string &input : rule->inputSlots()) {
            addVertex(input);
            edge.sources.push_back(input);
        }
        edges_.push_back(std::move(edge));
    }
}

DependencyPattern
ChoiceDependencyGraph::pattern(size_t index) const
{
    PB_ASSERT(index < edges_.size(), "rule index out of range");
    const ChoiceEdge &edge = edges_[index];
    if (!edge.rule->isPointRule()) {
        // Opaque native bodies: assume the worst for mapping purposes.
        return DependencyPattern::Sequential;
    }

    bool sawEarlierRow = false;
    bool sawEarlierCol = false;
    for (const AccessPattern &access : edge.rule->accesses()) {
        if (access.inputSlot != edge.sink)
            continue; // dependency on other data, not a self dependency
        if (access.x.full || access.y.full) {
            // Reads an unbounded slice of its own output.
            return DependencyPattern::Wavefront;
        }
        // Window of relative cells [x0,x1) x [y0,y1).
        int64_t x0 = access.x.offset, x1 = access.x.offset + access.x.extent;
        int64_t y0 = access.y.offset, y1 = access.y.offset + access.y.extent;
        if (x0 == 0 && x1 == 1 && y0 == 0 && y1 == 1)
            continue; // in-place read of the cell being computed
        if (y1 <= 0) {
            sawEarlierRow = true; // strictly earlier rows
        } else if (y0 == 0 && y1 == 1 && x1 <= 0) {
            sawEarlierCol = true; // strictly left in the same row
        } else {
            // Forward reads or windows straddling the current cell.
            return DependencyPattern::Wavefront;
        }
    }
    if (sawEarlierRow && sawEarlierCol)
        return DependencyPattern::Wavefront; // diagonal frontier
    if (sawEarlierRow || sawEarlierCol)
        return DependencyPattern::Sequential;
    return DependencyPattern::DataParallel;
}

int
ChoiceDependencyGraph::producerOf(const std::string &slot) const
{
    for (size_t i = 0; i < edges_.size(); ++i)
        if (edges_[i].sink == slot)
            return static_cast<int>(i);
    return -1;
}

bool
ChoiceDependencyGraph::isAcyclic() const
{
    // Kahn's algorithm over rule->rule dependencies induced by slots.
    size_t n = edges_.size();
    std::vector<int> indegree(n, 0);
    std::vector<std::vector<size_t>> succ(n);
    for (size_t i = 0; i < n; ++i) {
        for (const std::string &input : edges_[i].sources) {
            if (input == edges_[i].sink)
                continue; // self dependency handled by pattern analysis
            int producer = producerOf(input);
            if (producer >= 0 && static_cast<size_t>(producer) != i) {
                succ[static_cast<size_t>(producer)].push_back(i);
                ++indegree[i];
            }
        }
    }
    std::vector<size_t> ready;
    for (size_t i = 0; i < n; ++i)
        if (indegree[i] == 0)
            ready.push_back(i);
    size_t visited = 0;
    while (!ready.empty()) {
        size_t cur = ready.back();
        ready.pop_back();
        ++visited;
        for (size_t next : succ[cur])
            if (--indegree[next] == 0)
                ready.push_back(next);
    }
    return visited == n;
}

std::vector<size_t>
ChoiceDependencyGraph::executionOrder() const
{
    size_t n = edges_.size();
    std::vector<int> indegree(n, 0);
    std::vector<std::vector<size_t>> succ(n);
    for (size_t i = 0; i < n; ++i) {
        for (const std::string &input : edges_[i].sources) {
            if (input == edges_[i].sink)
                continue;
            int producer = producerOf(input);
            if (producer >= 0 && static_cast<size_t>(producer) != i) {
                succ[static_cast<size_t>(producer)].push_back(i);
                ++indegree[i];
            }
        }
    }
    // Stable order: prefer the declaration order among ready rules.
    std::vector<size_t> order;
    std::vector<bool> done(n, false);
    for (size_t round = 0; round < n; ++round) {
        bool advanced = false;
        for (size_t i = 0; i < n; ++i) {
            if (done[i] || indegree[i] != 0)
                continue;
            done[i] = true;
            order.push_back(i);
            for (size_t next : succ[i])
                --indegree[next];
            advanced = true;
            break;
        }
        if (!advanced)
            break;
    }
    if (order.size() != n)
        PB_FATAL("choice '" << transform_.choiceAt(choiceIndex_).name
                            << "' of transform '" << transform_.name()
                            << "' has cyclic rule dependencies");
    return order;
}

} // namespace lang
} // namespace petabricks
