/**
 * @file
 * The choice dependency graph (paper Section 3).
 *
 * The primary transform-level representation: an "inverse" of the data
 * dependency graph, where data (matrix slots) are vertices and rules
 * are hyperedges from their input slots to their output slot. The
 * compiler uses it to order rule applications and — via the direction
 * analysis on each rule's self-dependencies — to decide whether a
 * rule's dependency pattern fits the OpenCL execution model
 * (Section 3.1 phase 1).
 *
 * Note: the full PetaBricks representation can split one matrix into
 * several vertices when rules touch subregions; the rules in this
 * library write whole slots, so vertices are 1:1 with slots.
 */

#ifndef PETABRICKS_LANG_CHOICE_GRAPH_H
#define PETABRICKS_LANG_CHOICE_GRAPH_H

#include <string>
#include <vector>

#include "lang/transform.h"

namespace petabricks {
namespace lang {

/** Hyperedge: one rule, from its input vertices to its output vertex. */
struct ChoiceEdge
{
    RulePtr rule;
    std::vector<std::string> sources;
    std::string sink;
};

/** Dependency graph of one algorithmic choice of a transform. */
class ChoiceDependencyGraph
{
  public:
    ChoiceDependencyGraph(const Transform &transform, size_t choiceIndex);

    /** Data vertices (slot names) touched by this choice. */
    const std::vector<std::string> &vertices() const { return vertices_; }

    /** Rule hyperedges in choice order. */
    const std::vector<ChoiceEdge> &edges() const { return edges_; }

    /**
     * Dependency pattern of rule @p index, derived from the direction
     * of its self-dependency (reads of its own output slot):
     *  - no self reads, or only the in-place cell => DataParallel;
     *  - self reads strictly in earlier rows, or strictly to the left
     *    in the same row => Sequential;
     *  - mixed directions, forward reads, or unbounded (full-extent)
     *    self reads => Wavefront.
     */
    DependencyPattern pattern(size_t index) const;

    /**
     * Index of the rule producing @p slot in this choice, or -1 if the
     * slot is a transform input (produced externally).
     */
    int producerOf(const std::string &slot) const;

    /**
     * True if rules can be ordered so each one's inputs are available
     * (transform inputs, earlier rules, or its own self-dependency).
     */
    bool isAcyclic() const;

    /** Rule indices in a valid execution order; fatal if cyclic. */
    std::vector<size_t> executionOrder() const;

  private:
    const Transform &transform_;
    size_t choiceIndex_;
    std::vector<std::string> vertices_;
    std::vector<ChoiceEdge> edges_;
};

} // namespace lang
} // namespace petabricks

#endif // PETABRICKS_LANG_CHOICE_GRAPH_H
