/**
 * @file
 * Rules: the building blocks of PetaBricks transforms (paper Section 2).
 *
 * A rule converts input slots to an output slot. Two kinds exist here:
 *
 *  - *Point rules* give a body computing one output cell from a
 *    rectangular window of each input (the `Out.cell(x,y) from(...)`
 *    form in Figure 1). Point rules carry machine-readable access
 *    patterns, which is what the compiler's analyses consume: dependency
 *    direction, OpenCL admissibility, bounding boxes for the
 *    local-memory variant, and per-launch traffic estimates.
 *
 *  - *Region rules* give an opaque native body computing a whole output
 *    region (external library calls, recursive decompositions, inline
 *    native code). These can never be mapped to OpenCL, exactly like
 *    PetaBricks rules containing unconvertible constructs.
 */

#ifndef PETABRICKS_LANG_RULE_H
#define PETABRICKS_LANG_RULE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "support/matrix.h"

namespace petabricks {
namespace lang {

/** Transform parameters (e.g. KWIDTH), bound at instantiation. */
using ParamEnv = std::vector<int64_t>;

/**
 * Reader over a row-major cell grid with a coordinate origin, so the
 * same rule body can read from a host matrix (origin 0), a device
 * buffer holding the full matrix, or a local-memory tile (origin at the
 * tile's top-left corner).
 */
class CellReader
{
  public:
    CellReader(const double *base, int64_t strideElems, int64_t originX = 0,
               int64_t originY = 0)
        : base_(base), stride_(strideElems), originX_(originX),
          originY_(originY)
    {}

    /** Value at absolute matrix coordinates (x, y). */
    double
    at(int64_t x, int64_t y) const
    {
        return base_[(y - originY_) * stride_ + (x - originX_)];
    }

  private:
    const double *base_;
    int64_t stride_;
    int64_t originX_;
    int64_t originY_;
};

/**
 * Access of one input dimension as a function of the output coordinate:
 * either a window [stride*c + offset, stride*c + offset + extent)
 * following output coordinate c (stride > 1 expresses gather patterns
 * like red-black packing), or the full extent of the input (e.g. a
 * matmul row/column).
 */
struct DimAccess
{
    bool full = false;
    int64_t offset = 0;
    int64_t extent = 1;
    int64_t stride = 1;

    /** Window [c+offset, c+offset+extent) follows output coordinate c. */
    static DimAccess
    window(int64_t offset, int64_t extent)
    {
        return DimAccess{false, offset, extent, 1};
    }

    /** Strided window [s*c+offset, s*c+offset+extent). */
    static DimAccess
    strided(int64_t stride, int64_t offset, int64_t extent)
    {
        return DimAccess{false, offset, extent, stride};
    }

    /** The whole input extent, independent of the output coordinate. */
    static DimAccess
    all()
    {
        return DimAccess{true, 0, 0, 1};
    }
};

/** Which cells of one input a point rule reads per output cell. */
struct AccessPattern
{
    std::string inputSlot;
    DimAccess x;
    DimAccess y;

    /** Single-cell access at the output coordinate. */
    static AccessPattern
    point(std::string slot)
    {
        return {std::move(slot), DimAccess::window(0, 1),
                DimAccess::window(0, 1)};
    }

    /**
     * Bounding-box area per output point; 0 when not a compile-time
     * constant (some dimension spans the full input). This is the
     * quantity the paper's phase-3 analysis tests: a constant bounding
     * box greater than one enables the local-memory variant.
     */
    int64_t
    constantBoundingBoxArea() const
    {
        if (x.full || y.full)
            return 0;
        return x.extent * y.extent;
    }
};

/** Arguments to a point rule body: one output cell evaluation. */
struct PointArgs
{
    int64_t x = 0;
    int64_t y = 0;
    const std::vector<CellReader> *inputs = nullptr;
    const ParamEnv *params = nullptr;

    const CellReader &
    input(size_t i) const
    {
        PB_ASSERT(inputs && i < inputs->size(),
                  "point rule input " << i << " missing");
        return (*inputs)[i];
    }

    int64_t
    param(size_t i) const
    {
        PB_ASSERT(params && i < params->size(), "param " << i
                                                         << " missing");
        return (*params)[i];
    }
};

/** Dependency pattern of a rule, derived by the choice graph analysis. */
enum class DependencyPattern
{
    /** No self dependency: every output cell independent. */
    DataParallel,
    /** Reads earlier rows/cells of its own output: a 1-D scan. */
    Sequential,
    /** Diagonal self-dependencies; not mappable to OpenCL here. */
    Wavefront,
};

const char *dependencyPatternName(DependencyPattern pattern);

class RuleDef;
using RulePtr = std::shared_ptr<const RuleDef>;

/** See file comment. */
class RuleDef
{
  public:
    using PointBody = std::function<double(const PointArgs &)>;
    /** flops per output point, as a function of bound params. */
    using PointFlops = std::function<double(const ParamEnv &)>;

    /**
     * Fraction of redundant global loads the GPU's hardware caches
     * absorb for this rule's access pattern. Stencil windows default to
     * 0.6; rules with heavy blocked reuse (matmul rows/columns live in
     * registers and L1) should set this higher.
     */
    double gpuCacheHitRate() const { return gpuCacheHitRate_; }
    RuleDef &setGpuCacheHitRate(double rate);

    /** Native body: compute @p region of the output slot. */
    struct RegionRunArgs
    {
        Region region;
        MatrixD output;
        std::vector<MatrixD> inputs;
        const ParamEnv *params = nullptr;
        int threads = 1;
    };
    using RegionBody = std::function<void(RegionRunArgs &)>;
    using RegionCost =
        std::function<sim::CostReport(const Region &, const ParamEnv &)>;

    /** Construct a point rule. */
    static std::shared_ptr<RuleDef>
    makePoint(std::string name, std::string outputSlot,
              std::vector<AccessPattern> accesses, PointBody body,
              PointFlops flopsPerPoint);

    /** Construct a native region rule. */
    static std::shared_ptr<RuleDef>
    makeRegion(std::string name, std::string outputSlot,
               std::vector<std::string> inputSlots, RegionBody body,
               RegionCost cost);

    const std::string &name() const { return name_; }
    const std::string &outputSlot() const { return outputSlot_; }
    bool isPointRule() const { return pointBody_ != nullptr; }

    /** Input slot names, in body argument order. */
    const std::vector<std::string> &inputSlots() const
    {
        return inputSlots_;
    }

    /** Access patterns (point rules only; aligned with inputSlots()). */
    const std::vector<AccessPattern> &accesses() const
    {
        PB_ASSERT(isPointRule(), "region rules have no access patterns");
        return accesses_;
    }

    const PointBody &pointBody() const { return pointBody_; }
    const RegionBody &regionBody() const { return regionBody_; }

    /** flops one output point costs (point rules only). */
    double
    flopsPerPoint(const ParamEnv &params) const
    {
        PB_ASSERT(isPointRule() && pointFlops_, "no point cost");
        return pointFlops_(params);
    }

    /** Cost of computing @p region natively (region rules only). */
    sim::CostReport
    regionCost(const Region &region, const ParamEnv &params) const
    {
        PB_ASSERT(!isPointRule() && regionCost_, "no region cost");
        return regionCost_(region, params);
    }

    /** @{ Flags that disqualify OpenCL conversion (Section 3.1 phase 2). */
    bool callsExternalLibrary() const { return callsExternalLibrary_; }
    bool hasInlineNativeCode() const { return hasInlineNativeCode_; }
    /** Models OpenCL-implementation-specific compile failures that are
     * only detected by attempting compilation. */
    bool openclCompileFails() const { return openclCompileFails_; }
    /** @} */

    RuleDef &setCallsExternalLibrary(bool v);
    RuleDef &setHasInlineNativeCode(bool v);
    RuleDef &setOpenclCompileFails(bool v);

  private:
    RuleDef() = default;

    std::string name_;
    std::string outputSlot_;
    std::vector<std::string> inputSlots_;
    std::vector<AccessPattern> accesses_;
    PointBody pointBody_;
    PointFlops pointFlops_;
    RegionBody regionBody_;
    RegionCost regionCost_;
    bool callsExternalLibrary_ = false;
    bool hasInlineNativeCode_ = false;
    bool openclCompileFails_ = false;
    double gpuCacheHitRate_ = 0.6;
};

} // namespace lang
} // namespace petabricks

#endif // PETABRICKS_LANG_RULE_H
