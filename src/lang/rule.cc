#include "lang/rule.h"

namespace petabricks {
namespace lang {

const char *
dependencyPatternName(DependencyPattern pattern)
{
    switch (pattern) {
      case DependencyPattern::DataParallel: return "data-parallel";
      case DependencyPattern::Sequential: return "sequential";
      case DependencyPattern::Wavefront: return "wavefront";
    }
    return "?";
}

std::shared_ptr<RuleDef>
RuleDef::makePoint(std::string name, std::string outputSlot,
                   std::vector<AccessPattern> accesses, PointBody body,
                   PointFlops flopsPerPoint)
{
    PB_ASSERT(body != nullptr, "point rule needs a body");
    PB_ASSERT(flopsPerPoint != nullptr, "point rule needs a cost");
    auto rule = std::shared_ptr<RuleDef>(new RuleDef());
    rule->name_ = std::move(name);
    rule->outputSlot_ = std::move(outputSlot);
    rule->accesses_ = std::move(accesses);
    for (const AccessPattern &access : rule->accesses_)
        rule->inputSlots_.push_back(access.inputSlot);
    rule->pointBody_ = std::move(body);
    rule->pointFlops_ = std::move(flopsPerPoint);
    return rule;
}

std::shared_ptr<RuleDef>
RuleDef::makeRegion(std::string name, std::string outputSlot,
                    std::vector<std::string> inputSlots, RegionBody body,
                    RegionCost cost)
{
    PB_ASSERT(body != nullptr, "region rule needs a body");
    PB_ASSERT(cost != nullptr, "region rule needs a cost");
    auto rule = std::shared_ptr<RuleDef>(new RuleDef());
    rule->name_ = std::move(name);
    rule->outputSlot_ = std::move(outputSlot);
    rule->inputSlots_ = std::move(inputSlots);
    rule->regionBody_ = std::move(body);
    rule->regionCost_ = std::move(cost);
    // Opaque native code cannot be converted to OpenCL.
    rule->hasInlineNativeCode_ = true;
    return rule;
}

RuleDef &
RuleDef::setGpuCacheHitRate(double rate)
{
    PB_ASSERT(rate >= 0.0 && rate <= 1.0, "cache hit rate out of range");
    gpuCacheHitRate_ = rate;
    return *this;
}

RuleDef &
RuleDef::setCallsExternalLibrary(bool v)
{
    callsExternalLibrary_ = v;
    return *this;
}

RuleDef &
RuleDef::setHasInlineNativeCode(bool v)
{
    hasInlineNativeCode_ = v;
    return *this;
}

RuleDef &
RuleDef::setOpenclCompileFails(bool v)
{
    openclCompileFails_ = v;
    return *this;
}

} // namespace lang
} // namespace petabricks
