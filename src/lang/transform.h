/**
 * @file
 * Transforms: PetaBricks functions with algorithmic choices (Section 2).
 *
 * A transform declares input, output, and intermediate matrix *slots*
 * (the `from` / `to` / `using` clauses) and one or more *choices*, each
 * an ordered list of rules converting the inputs to the outputs (e.g.
 * SeparableConvolution's single-pass 2D rule vs. its two-pass
 * row/column pipeline). The autotuner selects among choices per input
 * size via selectors; the compiler analyses consume the structure.
 */

#ifndef PETABRICKS_LANG_TRANSFORM_H
#define PETABRICKS_LANG_TRANSFORM_H

#include <map>
#include <string>
#include <vector>

#include "lang/rule.h"

namespace petabricks {
namespace lang {

/** Role of a matrix slot in a transform signature. */
enum class SlotRole
{
    Input,        ///< `from` clause
    Output,       ///< `to` clause
    Intermediate, ///< `using` clause (e.g. conv's row buffer)
};

/** A named matrix position in the transform signature. */
struct MatrixSlot
{
    std::string name;
    SlotRole role = SlotRole::Input;
};

/** One algorithmic choice: rules applied in order. */
struct Choice
{
    std::string name;
    std::vector<RulePtr> rules;
};

/**
 * Matrices and parameters bound to a transform's slots for one
 * invocation.
 */
struct Binding
{
    std::map<std::string, MatrixD> matrices;
    ParamEnv params;

    MatrixD &
    matrix(const std::string &slot)
    {
        auto it = matrices.find(slot);
        PB_ASSERT(it != matrices.end(), "slot '" << slot << "' unbound");
        return it->second;
    }

    const MatrixD &
    matrix(const std::string &slot) const
    {
        auto it = matrices.find(slot);
        PB_ASSERT(it != matrices.end(), "slot '" << slot << "' unbound");
        return it->second;
    }
};

/** See file comment. */
class Transform
{
  public:
    explicit Transform(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Declare a slot; order is the signature order. */
    Transform &
    slot(std::string slotName, SlotRole role)
    {
        for (const MatrixSlot &s : slots_)
            PB_ASSERT(s.name != slotName,
                      "duplicate slot '" << slotName << "'");
        slots_.push_back({std::move(slotName), role});
        return *this;
    }

    /** Declare an algorithmic choice. */
    Transform &
    choice(std::string choiceName, std::vector<RulePtr> rules)
    {
        PB_ASSERT(!rules.empty(), "empty choice '" << choiceName << "'");
        for (const RulePtr &rule : rules) {
            PB_ASSERT(rule != nullptr, "null rule in '" << choiceName
                                                        << "'");
            PB_ASSERT(hasSlot(rule->outputSlot()),
                      "rule '" << rule->name() << "' writes unknown slot '"
                               << rule->outputSlot() << "'");
            for (const std::string &input : rule->inputSlots())
                PB_ASSERT(hasSlot(input), "rule '"
                                              << rule->name()
                                              << "' reads unknown slot '"
                                              << input << "'");
        }
        choices_.push_back({std::move(choiceName), std::move(rules)});
        return *this;
    }

    const std::vector<MatrixSlot> &slots() const { return slots_; }
    const std::vector<Choice> &choices() const { return choices_; }

    const Choice &
    choiceAt(size_t index) const
    {
        PB_ASSERT(index < choices_.size(),
                  "choice " << index << " out of range for '" << name_
                            << "'");
        return choices_[index];
    }

    bool
    hasSlot(const std::string &slotName) const
    {
        for (const MatrixSlot &s : slots_)
            if (s.name == slotName)
                return true;
        return false;
    }

    SlotRole
    slotRole(const std::string &slotName) const
    {
        for (const MatrixSlot &s : slots_)
            if (s.name == slotName)
                return s.role;
        PB_PANIC("unknown slot '" << slotName << "' in transform '"
                                  << name_ << "'");
    }

    /**
     * Check a binding covers every slot and that intermediate/output
     * sizes are consistent with use (sizes themselves are caller
     * responsibility, as slot extents are benchmark-specific).
     */
    void
    validateBinding(const Binding &binding) const
    {
        for (const MatrixSlot &s : slots_)
            PB_ASSERT(binding.matrices.count(s.name),
                      "binding for transform '"
                          << name_ << "' is missing slot '" << s.name
                          << "'");
    }

  private:
    std::string name_;
    std::vector<MatrixSlot> slots_;
    std::vector<Choice> choices_;
};

} // namespace lang
} // namespace petabricks

#endif // PETABRICKS_LANG_TRANSFORM_H
