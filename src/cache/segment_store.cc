#include "cache/segment_store.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "support/crashpoint.h"
#include "support/error.h"
#include "support/fsck.h"
#include "support/hash.h"
#include "support/kvfile.h"
#include "support/logging.h"

namespace petabricks {
namespace cache {

namespace fs = std::filesystem;

namespace {

/** Checksum covering every record, in index order. */
uint64_t
recordsChecksum(const std::vector<SegmentRecord> &records)
{
    Fnv1a hash;
    for (const SegmentRecord &record : records) {
        hash.mix(record.scope);
        hash.mix(static_cast<uint64_t>(record.inputSize));
        hash.mix(record.fingerprint);
        hash.mix(record.seconds);
    }
    return hash.value();
}

std::string
recordToText(const SegmentRecord &record)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%016" PRIx64 " %" PRId64 " %016" PRIx64 " %016" PRIx64,
                  record.scope, record.inputSize, record.fingerprint,
                  std::bit_cast<uint64_t>(record.seconds));
    return buf;
}

SegmentRecord
recordFromText(const std::string &text)
{
    SegmentRecord record;
    uint64_t bits = 0;
    char trailing = 0;
    int fields = std::sscanf(text.c_str(),
                             "%" SCNx64 " %" SCNd64 " %" SCNx64
                             " %" SCNx64 " %c",
                             &record.scope, &record.inputSize,
                             &record.fingerprint, &bits, &trailing);
    if (fields != 4)
        PB_FATAL("malformed cache record '" << text << "'");
    record.seconds = std::bit_cast<double>(bits);
    return record;
}

} // namespace

SegmentStore::SegmentStore(std::string dir, bool fsck)
    : dir_(std::move(dir)), fsck_(fsck)
{
    PB_ASSERT(!dir_.empty(), "segment directory is required");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        PB_FATAL("cannot create cache directory '" << dir_
                                                   << "': " << ec.message());
    // Continue the numbering past everything already present
    // (quarantined files included: their index must never be reused,
    // or a fresh segment could collide with a preserved corpse).
    for (const fs::directory_entry &entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        uint64_t index = 0;
        if (std::sscanf(name.c_str(), "seg-%" SCNu64 ".kv", &index) == 1 &&
            index >= nextIndex_)
            nextIndex_ = index + 1;
    }
}

std::string
SegmentStore::segmentPath(uint64_t index) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%08" PRIu64 ".kv", index);
    return dir_ + "/" + name;
}

std::vector<std::pair<uint64_t, std::string>>
SegmentStore::listSegments() const
{
    std::vector<std::pair<uint64_t, std::string>> segments;
    std::error_code ec;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir_, ec)) {
        if (entry.path().extension() != ".kv")
            continue;
        const std::string name = entry.path().filename().string();
        uint64_t index = 0;
        char trailing = 0;
        if (std::sscanf(name.c_str(), "seg-%" SCNu64 ".kv%c", &index,
                        &trailing) == 1)
            segments.emplace_back(index, entry.path().string());
    }
    std::sort(segments.begin(), segments.end());
    return segments;
}

size_t
SegmentStore::segmentCount() const
{
    return listSegments().size();
}

std::vector<SegmentRecord>
SegmentStore::parseSegment(const std::string &path)
{
    KvFile kv = KvFile::load(path);
    if (kv.getIntOr("segment.version", -1) != 1)
        PB_FATAL("'" << path << "' is not a cache segment");
    int64_t count = kv.getInt("segment.count");
    if (count < 0)
        PB_FATAL("'" << path << "' has a negative record count");
    std::vector<SegmentRecord> records;
    records.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i)
        records.push_back(
            recordFromText(kv.get("entry." + std::to_string(i))));
    uint64_t checksum = 0;
    if (std::sscanf(kv.get("segment.checksum").c_str(), "%" SCNx64,
                    &checksum) != 1 ||
        checksum != recordsChecksum(records))
        PB_FATAL("'" << path << "' fails its checksum (torn write?)");
    return records;
}

std::vector<SegmentRecord>
SegmentStore::loadAll()
{
    std::vector<SegmentRecord> all;
    for (const auto &[index, path] : listSegments()) {
        try {
            std::vector<SegmentRecord> records = parseSegment(path);
            stats_.recordsLoaded += static_cast<int64_t>(records.size());
            ++stats_.segmentsLoaded;
            all.insert(all.end(), records.begin(), records.end());
        } catch (const std::exception &e) {
            if (fsck_) {
                fsck::quarantine(path);
                ++stats_.segmentsQuarantined;
                PB_WARN("cache: quarantined segment '" << path << "' ("
                                                       << e.what() << ")");
            } else {
                PB_WARN("cache: skipping invalid segment '"
                        << path << "' (" << e.what() << ")");
            }
        }
    }
    return all;
}

void
SegmentStore::append(const std::vector<SegmentRecord> &records)
{
    if (records.empty())
        return;
    KvFile kv;
    kv.setInt("segment.version", 1);
    kv.setInt("segment.count", static_cast<int64_t>(records.size()));
    for (size_t i = 0; i < records.size(); ++i)
        kv.set("entry." + std::to_string(i), recordToText(records[i]));
    char checksum[24];
    std::snprintf(checksum, sizeof(checksum), "%016" PRIx64,
                  recordsChecksum(records));
    kv.set("segment.checksum", checksum);

    // The index advances even if the write fails: a later retry gets a
    // fresh slot, and the failed slot's number is never reused (same
    // rule as quarantined corpses).
    kv.saveAtomic(segmentPath(nextIndex_++), "cache.seg");
    ++stats_.segmentsWritten;
}

void
SegmentStore::compact(const std::vector<SegmentRecord> &records)
{
    std::vector<std::pair<uint64_t, std::string>> old = listSegments();
    append(records);
    for (const auto &[index, path] : old) {
        std::error_code ec;
        fs::remove(path, ec);
    }
}

} // namespace cache
} // namespace petabricks
