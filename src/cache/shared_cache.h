/**
 * @file
 * SharedEvaluationCache: the process-wide L2 behind every session's
 * private EvaluationCache.
 *
 * The autotuner re-prices the same (benchmark, machine, input size,
 * configuration) points constantly — across generations, across
 * sessions, and across daemon restarts — yet each TuningSession's L1
 * cache dies with its session. This cache promotes those results to a
 * process-wide, disk-backed pool so a fleet of tunerd users tuning the
 * same kernels hit each other's results: the serving analogue of
 * pazpar2's shared record/host pools, and the ARAPrototyper argument
 * that amortizing expensive evaluations across users is what turns a
 * prototyping loop into a service.
 *
 * Key schema: (scope, input size, Config::valueFingerprint), where
 * `scope` is ExecutionEngine::cacheScope() — a stable hash of the
 * benchmark name plus the engine's pricing identity (for ModelEngine,
 * the MachineProfile content fingerprint). Results priced by different
 * engines or machines can never be confused; equal searches on equal
 * machines always share.
 *
 * Concurrency: the table is striped into power-of-two shards, each
 * with its own std::shared_mutex. Lookups take the shard's *shared*
 * lock (readers never serialize behind each other); publishes take the
 * exclusive lock on one shard only. LRU ticks and every statistic are
 * atomics, so the read path never upgrades its lock.
 *
 * Memory bound: each shard evicts in segments — when its byte estimate
 * exceeds its slice of maxBytes, the oldest quarter of its entries (by
 * LRU tick) is dropped in one sweep, amortizing the scan. Eviction is
 * in-memory only; persisted records remain on disk until compaction.
 *
 * Failure semantics: only finite seconds are accepted. NaN (the
 * "evaluation failed after retries" sentinel) and +-inf are refused
 * and counted — PR 7's never-cache-failures contract, enforced at the
 * cache boundary so no caller can leak a failure to other sessions.
 *
 * Persistence: publishes are journaled and flushed as append-only
 * kvfile segments (SegmentStore: atomic rename, boot-time fsck that
 * quarantines torn segments). A restarted daemon warm-starts from the
 * segments, so the first client after a reboot is served hits from the
 * previous run.
 */

#ifndef PETABRICKS_CACHE_SHARED_CACHE_H
#define PETABRICKS_CACHE_SHARED_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/segment_store.h"

namespace petabricks {
namespace cache {

/** Construction knobs for SharedEvaluationCache. */
struct SharedCacheOptions
{
    /**
     * Bound on the cache's in-memory byte estimate (entries are
     * costed at a fixed per-entry overhead, see kEntryBytes). Must be
     * large enough for at least one entry per shard.
     */
    size_t maxBytes = 64u << 20;

    /** Lock stripes; rounded up to a power of two, min 1. */
    size_t shardCount = 16;

    /** Segment directory; empty disables persistence entirely. */
    std::string dir;

    /**
     * Auto-flush the publish journal as a new segment once this many
     * records are pending (0 = only explicit flush()). Keeps the
     * window a crash can lose small without a write per publish.
     */
    size_t flushEveryPublishes = 256;

    /** Quarantine torn segments at load (see SegmentStore). */
    bool fsckOnLoad = true;

    /** Compact the on-disk tail at construction when it has grown past
     * this many segments (0 = never compact). */
    size_t compactAboveSegments = 8;
};

/** Counter snapshot (every counter is monotonic except entries/bytes). */
struct SharedCacheStats
{
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;        ///< publishes that created an entry

    /** Hits on an entry some *other* session published (entries
     * warm-started from disk belong to nobody, so every hit on them
     * counts). The number that proves sharing is really happening. */
    int64_t crossSessionHits = 0;

    /** Publishes refused because the value was NaN/inf — the
     * never-cache-failures contract doing its job. */
    int64_t rejectedNonFinite = 0;

    int64_t evictions = 0;         ///< entries dropped by the byte bound
    int64_t flushes = 0;           ///< segments written from the journal

    /** Segment writes that failed (ENOSPC/EIO, injected or real). The
     * batch is re-queued and retried on a later flush; in-memory
     * serving is unaffected. */
    int64_t writeFailures = 0;

    /** Warm-start accounting (from the backing SegmentStore). */
    int64_t loadedEntries = 0;
    int64_t segmentsLoaded = 0;
    int64_t segmentsQuarantined = 0;

    size_t entries = 0;            ///< live entries right now
    size_t bytes = 0;              ///< current in-memory byte estimate
};

/** See file comment. */
class SharedEvaluationCache
{
  public:
    /** Nominal in-memory cost of one entry (key + value + map node
     * overhead); the unit the maxBytes bound is accounted in. */
    static constexpr size_t kEntryBytes = 96;

    explicit SharedEvaluationCache(SharedCacheOptions options);

    /** Flushes the publish journal (persistent caches only). */
    ~SharedEvaluationCache();

    SharedEvaluationCache(const SharedEvaluationCache &) = delete;
    SharedEvaluationCache &operator=(const SharedEvaluationCache &) = delete;

    /**
     * A session identity for cross-session-hit accounting. Each
     * TuningSession that attaches to the cache takes one; entries
     * remember their publisher, and a hit from a different owner
     * counts as a cross-session hit. Owner 0 is reserved for entries
     * warm-started from disk (published by a previous process).
     */
    uint64_t registerOwner();

    /**
     * Memoized seconds for (@p scope, @p inputSize, @p fingerprint),
     * counting the hit or miss. @p owner attributes cross-session
     * hits; pass 0 for an anonymous probe. Thread-safe; readers take
     * only the shard's shared lock.
     */
    std::optional<double> lookup(uint64_t scope, int64_t inputSize,
                                 uint64_t fingerprint, uint64_t owner);

    /**
     * Publish an evaluation result. Non-finite values (the NaN
     * failure sentinel, +inf infeasibility) are refused and counted —
     * failures are a property of one run, never shared state. A
     * republish of an existing key refreshes its LRU tick and keeps
     * the first value (deterministic evaluators make them equal
     * anyway). Thread-safe.
     */
    void publish(uint64_t scope, int64_t inputSize, uint64_t fingerprint,
                 double seconds, uint64_t owner);

    /**
     * Write every journaled publish to disk as one new segment
     * (no-op when nothing is pending or persistence is disabled).
     * Called by the daemon's sweeper and its graceful drain; safe from
     * any thread, serialized internally.
     */
    void flush();

    SharedCacheStats stats() const;

    size_t size() const;

    const SharedCacheOptions &options() const { return options_; }

    /** True when a segment directory backs this cache. */
    bool persistent() const { return store_ != nullptr; }

  private:
    struct Key
    {
        uint64_t scope = 0;
        int64_t inputSize = 0;
        uint64_t fingerprint = 0;

        bool operator==(const Key &other) const = default;
    };

    struct KeyHash
    {
        size_t operator()(const Key &key) const;
    };

    struct Entry
    {
        double seconds = 0.0;
        uint64_t owner = 0;
        uint64_t tick = 0; ///< LRU clock; atomic_ref'd on the read path
    };

    struct Shard
    {
        mutable std::shared_mutex mutex;
        std::unordered_map<Key, Entry, KeyHash> map;
        size_t bytes = 0; ///< guarded by mutex
    };

    Shard &shardFor(const Key &key);

    /** Drop the oldest quarter of @p shard (mutex held exclusively). */
    void evictSegment(Shard &shard);

    SharedCacheOptions options_;
    size_t shardMask_ = 0;
    size_t perShardBudget_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::atomic<uint64_t> clock_{1};
    std::atomic<uint64_t> nextOwner_{1};

    // Publish journal for persistence (independent of the shard locks
    // so publishes on different shards never serialize on it for
    // long; flush swaps it out wholesale).
    std::unique_ptr<SegmentStore> store_;
    std::mutex journalMutex_;
    std::vector<SegmentRecord> journal_;
    std::mutex flushMutex_; ///< serializes segment writes

    mutable std::atomic<int64_t> hits_{0};
    mutable std::atomic<int64_t> misses_{0};
    std::atomic<int64_t> insertions_{0};
    mutable std::atomic<int64_t> crossSessionHits_{0};
    std::atomic<int64_t> rejectedNonFinite_{0};
    std::atomic<int64_t> evictions_{0};
    std::atomic<int64_t> flushes_{0};
    std::atomic<int64_t> writeFailures_{0};
    int64_t loadedEntries_ = 0; ///< set once at construction
};

} // namespace cache
} // namespace petabricks

#endif // PETABRICKS_CACHE_SHARED_CACHE_H
