#include "cache/shared_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/error.h"
#include "support/hash.h"
#include "support/logging.h"

namespace petabricks {
namespace cache {

namespace {

size_t
roundUpPow2(size_t value)
{
    size_t pow2 = 1;
    while (pow2 < value)
        pow2 <<= 1;
    return pow2;
}

} // namespace

size_t
SharedEvaluationCache::KeyHash::operator()(const Key &key) const
{
    return static_cast<size_t>(Fnv1a()
                                   .mix(key.scope)
                                   .mix(static_cast<uint64_t>(key.inputSize))
                                   .mix(key.fingerprint)
                                   .value());
}

SharedEvaluationCache::SharedEvaluationCache(SharedCacheOptions options)
    : options_(std::move(options))
{
    const size_t shardCount = roundUpPow2(std::max<size_t>(1, options_.shardCount));
    shardMask_ = shardCount - 1;
    shards_.reserve(shardCount);
    for (size_t i = 0; i < shardCount; ++i)
        shards_.push_back(std::make_unique<Shard>());
    // At least one entry must fit per shard, or publish() would evict
    // itself forever.
    perShardBudget_ =
        std::max(kEntryBytes, options_.maxBytes / shardCount);

    if (!options_.dir.empty()) {
        store_ = std::make_unique<SegmentStore>(options_.dir,
                                                options_.fsckOnLoad);
        // Warm start: everything the previous process persisted comes
        // back under owner 0, so any session of this process that hits
        // one of these entries scores a cross-session hit.
        std::vector<SegmentRecord> records = store_->loadAll();
        for (const SegmentRecord &record : records) {
            if (!std::isfinite(record.seconds))
                continue; // belt and braces: failures never enter
            const Key key{record.scope, record.inputSize,
                          record.fingerprint};
            Shard &shard = shardFor(key);
            std::unique_lock lock(shard.mutex);
            auto [it, inserted] = shard.map.try_emplace(
                key,
                Entry{record.seconds, /*owner=*/0,
                      clock_.fetch_add(1, std::memory_order_relaxed)});
            if (inserted) {
                shard.bytes += kEntryBytes;
                ++loadedEntries_;
                if (shard.bytes > perShardBudget_)
                    evictSegment(shard);
            }
        }
        if (options_.compactAboveSegments > 0 &&
            store_->segmentCount() > options_.compactAboveSegments)
            store_->compact(records);
        if (loadedEntries_ > 0)
            PB_INFORM("cache: warm start with "
                    << loadedEntries_ << " entries from '" << options_.dir
                    << "'");
    }
}

SharedEvaluationCache::~SharedEvaluationCache()
{
    try {
        flush();
    } catch (const std::exception &e) {
        PB_WARN("cache: final flush failed: " << e.what());
    }
}

uint64_t
SharedEvaluationCache::registerOwner()
{
    return nextOwner_.fetch_add(1, std::memory_order_relaxed);
}

SharedEvaluationCache::Shard &
SharedEvaluationCache::shardFor(const Key &key)
{
    return *shards_[KeyHash{}(key)&shardMask_];
}

std::optional<double>
SharedEvaluationCache::lookup(uint64_t scope, int64_t inputSize,
                              uint64_t fingerprint, uint64_t owner)
{
    const Key key{scope, inputSize, fingerprint};
    Shard &shard = shardFor(key);
    std::shared_lock lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    // Refresh the LRU tick without upgrading to an exclusive lock:
    // concurrent shared-locked readers may race on the tick, which is
    // why it is touched through atomic_ref. (Publishers hold the
    // exclusive lock, so they cannot run concurrently with us.)
    std::atomic_ref<uint64_t>(it->second.tick)
        .store(clock_.fetch_add(1, std::memory_order_relaxed),
               std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (it->second.owner != owner)
        crossSessionHits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.seconds;
}

void
SharedEvaluationCache::publish(uint64_t scope, int64_t inputSize,
                               uint64_t fingerprint, double seconds,
                               uint64_t owner)
{
    // Failures are a property of one run (PR 7's contract): the NaN
    // retry-exhausted sentinel and +inf infeasibility marks stay in
    // the session that observed them.
    if (!std::isfinite(seconds)) {
        rejectedNonFinite_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    const Key key{scope, inputSize, fingerprint};
    Shard &shard = shardFor(key);
    bool inserted = false;
    {
        std::unique_lock lock(shard.mutex);
        auto [it, fresh] = shard.map.try_emplace(
            key,
            Entry{seconds, owner,
                  clock_.fetch_add(1, std::memory_order_relaxed)});
        inserted = fresh;
        if (!fresh) {
            // Keep the first value: evaluators are deterministic per
            // scope, so a disagreement would mean a scope-key bug —
            // first-wins makes every reader see one stable value
            // regardless.
            it->second.tick = clock_.fetch_add(1, std::memory_order_relaxed);
        } else {
            shard.bytes += kEntryBytes;
            if (shard.bytes > perShardBudget_)
                evictSegment(shard);
        }
    }
    if (!inserted)
        return;
    insertions_.fetch_add(1, std::memory_order_relaxed);

    if (store_ != nullptr) {
        size_t pending = 0;
        {
            std::lock_guard lock(journalMutex_);
            journal_.push_back(
                SegmentRecord{scope, inputSize, fingerprint, seconds});
            pending = journal_.size();
        }
        if (options_.flushEveryPublishes > 0 &&
            pending >= options_.flushEveryPublishes)
            flush();
    }
}

void
SharedEvaluationCache::evictSegment(Shard &shard)
{
    // Drop the oldest quarter in one sweep (amortizes the scan and
    // leaves headroom so the next few publishes don't re-trigger it).
    const size_t target = std::max<size_t>(1, shard.map.size() / 4);
    std::vector<uint64_t> ticks;
    ticks.reserve(shard.map.size());
    for (const auto &[key, entry] : shard.map)
        ticks.push_back(entry.tick);
    std::nth_element(ticks.begin(), ticks.begin() + (target - 1),
                     ticks.end());
    const uint64_t cutoff = ticks[target - 1];
    size_t evicted = 0;
    for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (it->second.tick <= cutoff) {
            it = shard.map.erase(it);
            ++evicted;
        } else {
            ++it;
        }
    }
    shard.bytes -= std::min(shard.bytes, evicted * kEntryBytes);
    evictions_.fetch_add(static_cast<int64_t>(evicted),
                         std::memory_order_relaxed);
}

void
SharedEvaluationCache::flush()
{
    if (store_ == nullptr)
        return;
    // Serialize writers so two flushes cannot interleave segment
    // numbering; swap the journal out under its own lock so publishes
    // keep flowing while the segment is written.
    std::lock_guard flushLock(flushMutex_);
    std::vector<SegmentRecord> batch;
    {
        std::lock_guard lock(journalMutex_);
        batch.swap(journal_);
    }
    if (batch.empty())
        return;
    try {
        store_->append(batch);
    } catch (const IoError &e) {
        // Durability degraded, serving unaffected: put the batch back
        // at the journal's front (order preserved) so a later flush
        // retries it, and keep answering from memory.
        writeFailures_.fetch_add(1, std::memory_order_relaxed);
        PB_WARN("cache: segment write failed, re-queued "
                << batch.size() << " records (" << e.what() << ")");
        std::lock_guard lock(journalMutex_);
        journal_.insert(journal_.begin(), batch.begin(), batch.end());
        return;
    }
    flushes_.fetch_add(1, std::memory_order_relaxed);
}

SharedCacheStats
SharedEvaluationCache::stats() const
{
    SharedCacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.insertions = insertions_.load(std::memory_order_relaxed);
    out.crossSessionHits = crossSessionHits_.load(std::memory_order_relaxed);
    out.rejectedNonFinite =
        rejectedNonFinite_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.flushes = flushes_.load(std::memory_order_relaxed);
    out.writeFailures = writeFailures_.load(std::memory_order_relaxed);
    out.loadedEntries = loadedEntries_;
    if (store_ != nullptr) {
        out.segmentsLoaded = store_->stats().segmentsLoaded;
        out.segmentsQuarantined = store_->stats().segmentsQuarantined;
    }
    for (const std::unique_ptr<Shard> &shard : shards_) {
        std::shared_lock lock(shard->mutex);
        out.entries += shard->map.size();
        out.bytes += shard->bytes;
    }
    return out;
}

size_t
SharedEvaluationCache::size() const
{
    size_t total = 0;
    for (const std::unique_ptr<Shard> &shard : shards_) {
        std::shared_lock lock(shard->mutex);
        total += shard->map.size();
    }
    return total;
}

} // namespace cache
} // namespace petabricks
