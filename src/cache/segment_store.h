/**
 * @file
 * On-disk persistence for the shared evaluation cache: append-only
 * kvfile segments.
 *
 * The durability model is the same one the service's checkpoint spool
 * uses (PR 6/7): every write is a whole file created under a temporary
 * name and atomically renamed into place, so a crash at any instant
 * leaves either the previous directory state or the new one — never a
 * half-written segment under a live name. What *can* appear after a
 * crash (or a copy of a dying disk) is a torn or truncated file, so
 * loading runs a boot-time fsck: a segment that fails any validation
 * (kvfile syntax, version, entry count, per-entry format, checksum) is
 * renamed aside with a `.quarantine` suffix — preserved for
 * post-mortem, invisible to every later scan — and counted, and the
 * healthy segments still load. A torn segment can cost cached results;
 * it can never fail a boot or poison the cache with garbage.
 *
 * Segment format (one KvFile per segment):
 *
 *     segment.version  = 1
 *     segment.count    = <records>
 *     segment.checksum = <fnv1a of every record, hex>
 *     entry.<i>        = <scope-hex> <n> <fingerprint-hex> <bits-hex>
 *
 * Seconds are serialized as the double's exact bit pattern, so a value
 * that round-trips through disk compares bit-identical to the one the
 * evaluator produced — the property the byte-identical-champion
 * guarantee rests on.
 */

#ifndef PETABRICKS_CACHE_SEGMENT_STORE_H
#define PETABRICKS_CACHE_SEGMENT_STORE_H

#include <cstdint>
#include <string>
#include <vector>

namespace petabricks {
namespace cache {

/** One persisted evaluation result. */
struct SegmentRecord
{
    uint64_t scope = 0;       ///< (benchmark, engine, machine) partition
    int64_t inputSize = 0;
    uint64_t fingerprint = 0; ///< Config::valueFingerprint
    double seconds = 0.0;

    bool operator==(const SegmentRecord &other) const = default;
};

/** Monotonic counters for the load/fsck path. */
struct SegmentStoreStats
{
    int64_t segmentsLoaded = 0;
    int64_t segmentsQuarantined = 0;
    int64_t recordsLoaded = 0;
    int64_t segmentsWritten = 0;
};

/** See file comment. */
class SegmentStore
{
  public:
    /**
     * @param dir segment directory, created if missing.
     * @param fsck quarantine invalid segments during loadAll(); when
     *        false they are skipped (and logged) but left in place.
     */
    explicit SegmentStore(std::string dir, bool fsck = true);

    /**
     * Parse every `seg-*.kv` in the directory (oldest first, so later
     * segments win on duplicate keys) and return the union of their
     * records. Invalid segments are quarantined (see file comment);
     * this never throws for a bad segment.
     */
    std::vector<SegmentRecord> loadAll();

    /** Append @p records as one new segment (write-to-temp + atomic
     * rename). No-op for an empty batch. */
    void append(const std::vector<SegmentRecord> &records);

    /**
     * Rewrite the store as a single segment holding @p records and
     * delete every older segment — run after a warm-start load when
     * the append-only tail has grown long. The new segment is renamed
     * into place before the old ones are removed, so a crash mid-
     * compaction duplicates records (harmless) rather than losing any.
     */
    void compact(const std::vector<SegmentRecord> &records);

    /** Number of live (non-quarantined) segments on disk right now. */
    size_t segmentCount() const;

    const SegmentStoreStats &stats() const { return stats_; }

    const std::string &dir() const { return dir_; }

  private:
    std::string segmentPath(uint64_t index) const;

    /** Parse one segment file; throws FatalError on any validation
     * failure (syntax, version, count, record format, checksum). */
    static std::vector<SegmentRecord> parseSegment(const std::string &path);

    /** Sorted live segment paths with their numeric indices. */
    std::vector<std::pair<uint64_t, std::string>> listSegments() const;

    std::string dir_;
    bool fsck_ = true;
    uint64_t nextIndex_ = 0; ///< next segment file number to allocate
    SegmentStoreStats stats_;
};

} // namespace cache
} // namespace petabricks

#endif // PETABRICKS_CACHE_SEGMENT_STORE_H
