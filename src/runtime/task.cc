#include "runtime/task.h"

#include "support/error.h"

namespace petabricks {
namespace runtime {

const char *
taskStateName(TaskState state)
{
    switch (state) {
      case TaskState::New: return "new";
      case TaskState::NonRunnable: return "non-runnable";
      case TaskState::Runnable: return "runnable";
      case TaskState::Complete: return "complete";
      case TaskState::Continued: return "continued";
    }
    return "?";
}

Task::Task(std::string name, TaskClass taskClass, Body body)
    : name_(std::move(name)), class_(taskClass), body_(std::move(body))
{
}

TaskPtr
Task::cpu(std::string name, std::function<void()> fn)
{
    return std::make_shared<Task>(
        std::move(name), TaskClass::Cpu,
        [fn = std::move(fn)](TaskContext &) -> TaskPtr {
            if (fn)
                fn();
            return nullptr;
        });
}

TaskPtr
Task::join(std::string name)
{
    return std::make_shared<Task>(std::move(name), TaskClass::Cpu, nullptr);
}

void
Task::dependsOn(const TaskPtr &dep)
{
    PB_ASSERT(dep != nullptr, "null dependency");
    PB_ASSERT(state() == TaskState::New,
              "dependencies may only be added in the new state (task '"
                  << name_ << "' is " << taskStateName(state()) << ")");
    PB_ASSERT(dep.get() != this, "task cannot depend on itself");
    if (dep->addDependent(shared_from_this()))
        deps_.fetch_add(1, std::memory_order_acq_rel);
    // else: dep already complete -> no-op (paper: "Any subsequent
    // attempt to depend on this task results in a no-op").
}

bool
Task::addDependent(const TaskPtr &dependent)
{
    TaskPtr target = shared_from_this();
    for (;;) {
        std::unique_lock<std::mutex> lock(target->mutex_);
        TaskState s = target->state();
        if (s == TaskState::Complete)
            return false;
        if (s == TaskState::Continued) {
            // Follow the continuation chain (possibly recursively).
            TaskPtr next = target->continuation_;
            lock.unlock();
            PB_ASSERT(next != nullptr, "continued task lost continuation");
            target = std::move(next);
            continue;
        }
        target->dependents_.push_back(dependent);
        return true;
    }
}

bool
Task::finishCreation()
{
    PB_ASSERT(state() == TaskState::New,
              "finishCreation on " << taskStateName(state()) << " task '"
                                   << name_ << "'");
    // Release the creation hold. If it was the last outstanding
    // dependency the task is runnable now; otherwise a completing
    // dependency will make it runnable later.
    if (deps_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state_.store(TaskState::Runnable, std::memory_order_release);
        return true;
    }
    state_.store(TaskState::NonRunnable, std::memory_order_release);
    return false;
}

void
Task::complete(std::vector<TaskPtr> &newlyRunnable)
{
    std::vector<TaskPtr> dependents;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        state_.store(TaskState::Complete, std::memory_order_release);
        dependents.swap(dependents_);
    }
    for (TaskPtr &dep : dependents) {
        if (dep->deps_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            dep->state_.store(TaskState::Runnable,
                              std::memory_order_release);
            newlyRunnable.push_back(std::move(dep));
        }
    }
}

TaskPtr
Task::run(TaskContext &ctx, std::vector<TaskPtr> &newlyRunnable)
{
    PB_ASSERT(state() == TaskState::Runnable,
              "running " << taskStateName(state()) << " task '" << name_
                         << "'");
    TaskPtr continuation;
    try {
        continuation = body_ ? body_(ctx) : nullptr;
    } catch (...) {
        // Fail the task but keep the graph draining: dependents are
        // released (their results are discarded — the runtime reports
        // the first failure from wait()).
        complete(newlyRunnable);
        throw;
    }

    if (ctx.requeueRequested()) {
        PB_ASSERT(continuation == nullptr,
                  "task '" << name_ << "' both continued and requeued");
        // Stay Runnable; the GPU manager will re-enqueue us.
        return nullptr;
    }

    if (continuation) {
        PB_ASSERT(continuation->state() == TaskState::New,
                  "continuation of '" << name_ << "' must be new");
        std::vector<TaskPtr> dependents;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            state_.store(TaskState::Continued, std::memory_order_release);
            continuation_ = continuation;
            dependents.swap(dependents_);
        }
        // Dependents now wait on the continuation instead; their counts
        // are unchanged (still waiting on exactly one task).
        {
            std::lock_guard<std::mutex> lock(continuation->mutex_);
            for (TaskPtr &dep : dependents)
                continuation->dependents_.push_back(std::move(dep));
        }
        return continuation;
    }

    complete(newlyRunnable);
    return nullptr;
}

} // namespace runtime
} // namespace petabricks
