/**
 * @file
 * The heterogeneous runtime: work-stealing CPU workers plus a
 * work-pushing GPU management thread (paper Section 4, Figure 4).
 *
 * Scheduling policy, matching Figure 5:
 *  - a GPU task that becomes runnable is pushed to the *bottom* of the
 *    GPU management thread's FIFO queue, whoever caused it;
 *  - a CPU task made runnable by a GPU task is pushed to the bottom of a
 *    *random* CPU worker's deque by the GPU manager;
 *  - a CPU task made runnable by a CPU task is pushed to the *top* of
 *    the causing worker's own deque.
 *
 * Workers that run dry steal from the bottom of a random victim's deque.
 */

#ifndef PETABRICKS_RUNTIME_RUNTIME_H
#define PETABRICKS_RUNTIME_RUNTIME_H

#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

#include "ocl/device.h"
#include "ocl/queue.h"
#include "runtime/deque.h"
#include "runtime/gpu_memory.h"
#include "runtime/task.h"
#include "support/rng.h"

namespace petabricks {
namespace runtime {

/** Counters exposed for tests and the microbenchmarks. */
struct RuntimeStats
{
    std::atomic<int64_t> tasksExecuted{0};
    std::atomic<int64_t> steals{0};
    std::atomic<int64_t> stealAttempts{0};
    std::atomic<int64_t> gpuTasksExecuted{0};
    std::atomic<int64_t> gpuRequeues{0};
    std::atomic<int64_t> gpuPushesToWorkers{0};
};

/**
 * The runtime. Construct, submit root tasks with spawn(), then
 * wait() for quiescence. GPU support is optional: constructing without
 * a device runs CPU-only (the paper's Server uses a CPU OpenCL device,
 * which is still an ocl::Device here).
 */
class Runtime
{
  public:
    /**
     * @param workers number of CPU worker threads (>= 1).
     * @param gpuDevice OpenCL device to manage, or nullptr for CPU-only.
     * @param seed seed for victim selection and GPU-manager pushes.
     */
    explicit Runtime(int workers, ocl::Device *gpuDevice = nullptr,
                     uint64_t seed = 12345);

    /** Waits for quiescence, then stops all threads. */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * Finish creation of @p task (and transitively submit it). Call
     * after declaring all of its dependencies. Tasks that are not yet
     * runnable live only in their dependencies' dependent lists.
     */
    void spawn(const TaskPtr &task);

    /**
     * Block until no tasks remain anywhere in the system.
     * @throws the first exception a task body raised, if any: a failed
     *         task releases its dependents (their results are
     *         discarded) so the graph drains, and wait() reports the
     *         failure on the submitting thread — which is how
     *         infeasible real-mode configurations surface as
     *         FatalError instead of crashing a worker.
     */
    void wait();

    /** Convenience: spawn + wait. */
    void
    run(const TaskPtr &task)
    {
        spawn(task);
        wait();
    }

    int workerCount() const { return static_cast<int>(workers_.size()); }
    bool hasGpu() const { return gpuQueue_ != nullptr; }

    /** Command queue of the managed device; requires hasGpu(). */
    ocl::CommandQueue &gpuCommandQueue();

    /** GPU-resident data table; requires hasGpu(). */
    GpuMemoryTable &gpuMemory();

    const RuntimeStats &stats() const { return stats_; }

  private:
    struct Worker
    {
        WorkDeque deque;
        std::thread thread;
        Rng rng{0};
    };

    void workerLoop(int index);
    void gpuLoop();

    /** wait() minus the failure rethrow (for the destructor). */
    void drain();

    /** Dispatch a runnable task according to the Figure 5 policy. */
    void dispatch(TaskPtr task, bool fromGpuManager, int workerIndex);

    /** Dispatch everything a finished task produced or unblocked. */
    void dispatchAll(std::vector<TaskPtr> &&tasks, bool fromGpuManager,
                     int workerIndex);

    /** Run one task on a CPU worker or the GPU manager thread. */
    void executeTask(const TaskPtr &task, bool onGpuManager,
                     int workerIndex);

    void noteTaskCreated();
    void noteTaskRetired();

    std::vector<std::unique_ptr<Worker>> workers_;
    std::atomic<bool> shutdown_{false};

    // Idle-sleep support: workers nap when there is no work anywhere.
    std::mutex idleMutex_;
    std::condition_variable idleCv_;

    // Quiescence tracking: count of tasks finished-creation but not yet
    // complete/continued.
    std::atomic<int64_t> liveTasks_{0};
    std::mutex doneMutex_;
    std::condition_variable doneCv_;

    // First task-body failure, reported from wait().
    std::mutex errorMutex_;
    std::exception_ptr firstError_;

    // GPU management thread state.
    std::unique_ptr<ocl::CommandQueue> gpuQueue_;
    std::unique_ptr<GpuMemoryTable> gpuMemory_;
    WorkDeque gpuFifo_; // used FIFO: pushBottom + stealBottom
    std::thread gpuThread_;
    std::mutex gpuMutex_;
    std::condition_variable gpuCv_;
    Rng gpuRng_{0};

    RuntimeStats stats_;
};

} // namespace runtime
} // namespace petabricks

#endif // PETABRICKS_RUNTIME_RUNTIME_H
