#include "runtime/gpu_memory.h"

#include "support/error.h"

namespace petabricks {
namespace runtime {

GpuMemoryTable::Record &
GpuMemoryTable::recordFor(const MatrixD &m)
{
    auto it = records_.find(m.storageId());
    PB_ASSERT(it != records_.end(),
              "matrix storage " << m.storageId()
                                << " has no device buffer (missing "
                                   "prepare task?)");
    return it->second;
}

ocl::BufferPtr
GpuMemoryTable::prepare(const MatrixD &m)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(m.storageId());
    if (it != records_.end())
        return it->second.buffer;
    Record rec;
    rec.matrix = m;
    rec.buffer = std::make_shared<ocl::Buffer>(m.bytes());
    ++stats_.buffersAllocated;
    auto [pos, inserted] = records_.emplace(m.storageId(), std::move(rec));
    PB_ASSERT(inserted, "duplicate record");
    return pos->second.buffer;
}

ocl::BufferPtr
GpuMemoryTable::buffer(const MatrixD &m) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(m.storageId());
    PB_ASSERT(it != records_.end(),
              "matrix storage " << m.storageId() << " not prepared");
    return it->second.buffer;
}

bool
GpuMemoryTable::copyIn(const MatrixD &m, const Region &region)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Record &rec = recordFor(m);
    // Copy only the parts not already valid on the device: regions the
    // GPU itself produced must not be overwritten by stale host data.
    std::vector<Region> uncovered{region};
    for (const Region &valid : rec.validOnDevice) {
        std::vector<Region> next;
        for (const Region &hole : uncovered)
            for (const Region &part : subtractRegion(hole, valid))
                next.push_back(part);
        uncovered.swap(next);
        if (uncovered.empty())
            break;
    }
    if (uncovered.empty()) {
        ++stats_.copyInsSkipped;
        return false;
    }
    rec.validOnDevice.push_back(region);
    ++stats_.copyInsPerformed;
    ocl::BufferPtr buffer = rec.buffer;
    // Keep a shallow matrix copy alive inside the queue op.
    MatrixD host = rec.matrix;
    lock.unlock();
    for (const Region &part : uncovered)
        queue_.enqueueWriteRect(buffer, host.data(), host.width(), part);
    return true;
}

void
GpuMemoryTable::markDeviceWritten(const MatrixD &m, const Region &region)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Record &rec = recordFor(m);
    rec.validOnDevice.push_back(region);
    rec.hostStaleRegions.push_back(region);
}

ocl::EventPtr
GpuMemoryTable::copyOut(MatrixD m, const Region &region)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Record &rec = recordFor(m);
    PB_ASSERT(regionsCover(rec.validOnDevice, region),
              "copy-out of region " << region
                                    << " never produced on device");
    // The host copy becomes current once the read retires; the region
    // stays valid on the device for later kernels (reused state).
    std::vector<Region> stillStale;
    for (const Region &stale : rec.hostStaleRegions)
        for (const Region &part : subtractRegion(stale, region))
            stillStale.push_back(part);
    rec.hostStaleRegions = std::move(stillStale);
    ++stats_.eagerCopyOuts;
    ocl::BufferPtr buffer = rec.buffer;
    lock.unlock();
    return queue_.enqueueReadRect(buffer, m.data(), m.width(), region);
}

void
GpuMemoryTable::ensureOnHost(MatrixD m, const Region &region)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = records_.find(m.storageId());
    if (it == records_.end())
        return; // never touched the device; host copy is authoritative
    Record &rec = it->second;

    std::vector<Region> toFetch;
    std::vector<Region> stillStale;
    for (const Region &stale : rec.hostStaleRegions) {
        Region hit = stale.intersect(region);
        if (hit.empty()) {
            stillStale.push_back(stale);
            continue;
        }
        toFetch.push_back(hit);
        for (const Region &part : subtractRegion(stale, hit))
            stillStale.push_back(part);
    }
    if (toFetch.empty()) {
        ++stats_.lazyChecksClean;
        return;
    }
    rec.hostStaleRegions = std::move(stillStale);
    stats_.lazyCopyOuts += static_cast<int64_t>(toFetch.size());
    ocl::BufferPtr buffer = rec.buffer;
    lock.unlock();

    ocl::EventPtr last;
    for (const Region &fetch : toFetch)
        last = queue_.enqueueReadRect(buffer, m.data(), m.width(), fetch);
    // Lazy copy-out happens because a consumer needs the data *now*.
    if (last)
        last->wait();
}

bool
GpuMemoryTable::validOnDevice(const MatrixD &m, const Region &region) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(m.storageId());
    if (it == records_.end())
        return false;
    return regionsCover(it->second.validOnDevice, region);
}

bool
GpuMemoryTable::hostStale(const MatrixD &m, const Region &region) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(m.storageId());
    if (it == records_.end())
        return false;
    for (const Region &stale : it->second.hostStaleRegions)
        if (stale.intersects(region))
            return true;
    return false;
}

void
GpuMemoryTable::invalidate(const MatrixD &m)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(m.storageId());
    if (it == records_.end())
        return;
    PB_ASSERT(it->second.hostStaleRegions.empty(),
              "invalidating matrix with un-copied device results");
    records_.erase(it);
    ++stats_.buffersReleased;
}

void
GpuMemoryTable::invalidateRegion(const MatrixD &m, const Region &region)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(m.storageId());
    if (it == records_.end())
        return;
    Record &rec = it->second;
    auto subtractAll = [&region](std::vector<Region> &regions) {
        std::vector<Region> next;
        for (const Region &r : regions)
            for (const Region &part : subtractRegion(r, region))
                next.push_back(part);
        regions = std::move(next);
    };
    subtractAll(rec.validOnDevice);
    subtractAll(rec.hostStaleRegions);
}

void
GpuMemoryTable::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.buffersReleased += static_cast<int64_t>(records_.size());
    records_.clear();
}

GpuMemoryStats
GpuMemoryTable::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace runtime
} // namespace petabricks
