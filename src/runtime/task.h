/**
 * @file
 * The PetaBricks task model (paper Section 4.1).
 *
 * Unlike Cilk's strict fork/join, tasks form arbitrary acyclic
 * dependency graphs. Each task carries a state, an atomic dependency
 * count, and a list of dependent tasks; a task that finishes may return
 * a *continuation* task to which its dependents are forwarded.
 *
 * The five states and their transitions follow the paper exactly:
 *
 *   new ──(finishCreation, deps==0)──> runnable ──(run)──> complete
 *    │                                            └(run)──> continued
 *    └──(finishCreation, deps>0)──> non-runnable ──(last dep done)──>
 *        runnable
 *
 * Dependency creation uses a creation hold: the dependency count starts
 * at one and finishCreation() releases it, so a dependency completing
 * concurrently with creation can never enqueue a half-built task.
 */

#ifndef PETABRICKS_RUNTIME_TASK_H
#define PETABRICKS_RUNTIME_TASK_H

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace petabricks {
namespace runtime {

/** Lifecycle state of a task (paper Section 4.1). */
enum class TaskState
{
    New,
    NonRunnable,
    Runnable,
    Complete,
    Continued,
};

const char *taskStateName(TaskState state);

/** Which executor services a task (Section 4.2: "A task is marked as
 * either GPU or CPU task"). */
enum class TaskClass
{
    Cpu,
    Gpu,
};

class Task;
using TaskPtr = std::shared_ptr<Task>;

/**
 * Execution context handed to a task body.
 *
 * Bodies use spawn() to hand freshly created child tasks to the
 * scheduler, and requeue() (GPU tasks only) to ask the GPU management
 * thread to push the task back to the end of its queue — the paper's
 * copy-out completion tasks poll a non-blocking read this way.
 */
class TaskContext
{
  public:
    /** Submit a child task (its dependencies must be fully declared). */
    void spawn(TaskPtr task) { spawned_.push_back(std::move(task)); }

    /** Ask the GPU manager to re-enqueue this task (poll again later). */
    void requeue() { requeue_ = true; }

    const std::vector<TaskPtr> &spawned() const { return spawned_; }
    bool requeueRequested() const { return requeue_; }

  private:
    std::vector<TaskPtr> spawned_;
    bool requeue_ = false;
};

/**
 * A schedulable unit of work.
 *
 * The body returns either nullptr (task completes) or a continuation
 * task in the New state; the runtime transfers this task's dependents to
 * the continuation (paper: "the dependents list is transferred to the
 * continuation task").
 */
class Task : public std::enable_shared_from_this<Task>
{
  public:
    using Body = std::function<TaskPtr(TaskContext &)>;

    /**
     * Create a task in the New state.
     * @param name label for tracing/debugging.
     * @param taskClass CPU or GPU executor.
     * @param body work to run; may be nullptr for pure join nodes.
     */
    Task(std::string name, TaskClass taskClass, Body body);

    /** Convenience: CPU task with no continuation. */
    static TaskPtr cpu(std::string name, std::function<void()> fn);

    /** Convenience: dependency-join marker with no work. */
    static TaskPtr join(std::string name);

    const std::string &name() const { return name_; }
    TaskClass taskClass() const { return class_; }
    TaskState state() const
    {
        return state_.load(std::memory_order_acquire);
    }

    /**
     * Declare that this task cannot run until @p dep completes. Only
     * legal in the New state. Follows continuation pointers; depending
     * on an already-complete task is a no-op (paper Section 4.1).
     */
    void dependsOn(const TaskPtr &dep);

    /**
     * Finish dependency creation: transition New -> Runnable (returns
     * true) or New -> NonRunnable (returns false).
     */
    bool finishCreation();

    /**
     * Execute the body and apply the completion/continuation protocol.
     *
     * @param ctx context collecting spawned children and requeue flags.
     * @param newlyRunnable out: dependents that this completion made
     *        runnable, for the caller to dispatch per its push policy.
     * @return the continuation task if the body produced one (already
     *         holding the transferred dependents, creation NOT yet
     *         finished), else nullptr.
     */
    TaskPtr run(TaskContext &ctx, std::vector<TaskPtr> &newlyRunnable);

    /** Dependency count remaining (diagnostic). */
    int pendingDependencies() const
    {
        return deps_.load(std::memory_order_acquire);
    }

  private:
    /**
     * Register @p dependent; returns false if this task (or the tail of
     * its continuation chain) already completed.
     */
    bool addDependent(const TaskPtr &dependent);

    /** Mark complete and collect newly runnable dependents. */
    void complete(std::vector<TaskPtr> &newlyRunnable);

    std::string name_;
    TaskClass class_;
    Body body_;

    std::atomic<TaskState> state_{TaskState::New};
    std::atomic<int> deps_{1}; // creation hold
    std::mutex mutex_;         // guards dependents_ and continuation_
    std::vector<TaskPtr> dependents_;
    TaskPtr continuation_;
};

} // namespace runtime
} // namespace petabricks

#endif // PETABRICKS_RUNTIME_TASK_H
