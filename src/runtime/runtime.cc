#include "runtime/runtime.h"

#include <chrono>

#include "support/error.h"
#include "support/logging.h"

namespace petabricks {
namespace runtime {

namespace {

/** Identifies the current thread's role for the Figure 5 push policy. */
thread_local int tlsWorkerIndex = -1;
thread_local bool tlsOnGpuManager = false;

} // namespace

Runtime::Runtime(int workers, ocl::Device *gpuDevice, uint64_t seed)
    : gpuRng_(seed ^ 0xabcdef)
{
    PB_ASSERT(workers >= 1, "need at least one worker");
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        auto worker = std::make_unique<Worker>();
        worker->rng = Rng(seed + static_cast<uint64_t>(i) * 7919);
        workers_.push_back(std::move(worker));
    }
    for (int i = 0; i < workers; ++i)
        workers_[static_cast<size_t>(i)]->thread =
            std::thread([this, i] { workerLoop(i); });

    if (gpuDevice) {
        gpuQueue_ = std::make_unique<ocl::CommandQueue>(*gpuDevice);
        gpuMemory_ = std::make_unique<GpuMemoryTable>(*gpuQueue_);
        gpuThread_ = std::thread([this] { gpuLoop(); });
    }
}

Runtime::~Runtime()
{
    drain(); // discard any pending failure: nobody is left to observe it
    shutdown_.store(true, std::memory_order_release);
    idleCv_.notify_all();
    gpuCv_.notify_all();
    for (auto &worker : workers_)
        worker->thread.join();
    if (gpuThread_.joinable())
        gpuThread_.join();
}

ocl::CommandQueue &
Runtime::gpuCommandQueue()
{
    PB_ASSERT(gpuQueue_, "runtime has no GPU device");
    return *gpuQueue_;
}

GpuMemoryTable &
Runtime::gpuMemory()
{
    PB_ASSERT(gpuMemory_, "runtime has no GPU device");
    return *gpuMemory_;
}

void
Runtime::noteTaskCreated()
{
    liveTasks_.fetch_add(1, std::memory_order_acq_rel);
}

void
Runtime::noteTaskRetired()
{
    if (liveTasks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(doneMutex_);
        doneCv_.notify_all();
    }
}

void
Runtime::spawn(const TaskPtr &task)
{
    PB_ASSERT(task != nullptr, "null task");
    PB_ASSERT(task->taskClass() == TaskClass::Cpu || gpuQueue_ != nullptr,
              "GPU task '" << task->name()
                           << "' submitted to CPU-only runtime");
    noteTaskCreated();
    if (task->finishCreation())
        dispatch(task, tlsOnGpuManager, tlsWorkerIndex);
    // else: the task waits in its dependencies' dependent lists.
}

void
Runtime::drain()
{
    std::unique_lock<std::mutex> lock(doneMutex_);
    doneCv_.wait(lock, [this] {
        return liveTasks_.load(std::memory_order_acquire) == 0;
    });
}

void
Runtime::wait()
{
    drain();
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        std::swap(error, firstError_);
    }
    if (error)
        std::rethrow_exception(error);
}

void
Runtime::dispatch(TaskPtr task, bool fromGpuManager, int workerIndex)
{
    PB_ASSERT(task->state() == TaskState::Runnable,
              "dispatching non-runnable task '" << task->name() << "'");
    if (task->taskClass() == TaskClass::Gpu) {
        // Figure 5(a): GPU tasks always go to the bottom of the GPU
        // management thread's queue.
        PB_ASSERT(gpuQueue_ != nullptr,
                  "GPU task '" << task->name()
                               << "' submitted to CPU-only runtime");
        {
            std::lock_guard<std::mutex> lock(gpuMutex_);
            gpuFifo_.pushBottom(std::move(task));
        }
        gpuCv_.notify_one();
        return;
    }

    if (!fromGpuManager && workerIndex >= 0) {
        // Figure 5(c): a CPU worker pushes newly runnable CPU tasks to
        // the top of its own deque.
        workers_[static_cast<size_t>(workerIndex)]->deque.pushTop(
            std::move(task));
        idleCv_.notify_one();
        return;
    }

    // Figure 5(b): the GPU manager (or an external thread) pushes the
    // CPU task to the bottom of a random worker's deque.
    Rng &rng = fromGpuManager ? gpuRng_ : gpuRng_;
    size_t victim;
    {
        std::lock_guard<std::mutex> lock(gpuMutex_);
        victim = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(workers_.size()) - 1));
    }
    if (fromGpuManager)
        stats_.gpuPushesToWorkers.fetch_add(1, std::memory_order_relaxed);
    workers_[victim]->deque.pushBottom(std::move(task));
    idleCv_.notify_all();
}

void
Runtime::dispatchAll(std::vector<TaskPtr> &&tasks, bool fromGpuManager,
                     int workerIndex)
{
    for (TaskPtr &task : tasks)
        dispatch(std::move(task), fromGpuManager, workerIndex);
}

void
Runtime::executeTask(const TaskPtr &task, bool onGpuManager,
                     int workerIndex)
{
    TaskContext ctx;
    std::vector<TaskPtr> newlyRunnable;
    TaskPtr continuation;
    try {
        continuation = task->run(ctx, newlyRunnable);
    } catch (...) {
        // The task failed; Task::run released its dependents before
        // rethrowing. Record the first failure for wait() and finish
        // the bookkeeping as a completed task.
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }

    // Children first: the continuation usually depends on them.
    for (const TaskPtr &child : ctx.spawned())
        spawn(child);

    if (ctx.requeueRequested()) {
        PB_ASSERT(onGpuManager, "requeue outside the GPU manager");
        stats_.gpuRequeues.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(gpuMutex_);
            gpuFifo_.pushBottom(task);
        }
        gpuCv_.notify_one();
        return; // still live; do not retire
    }

    if (continuation) {
        // The continuation replaces this task; it inherited the
        // dependents, and the live count carries over 1:1.
        if (continuation->finishCreation())
            dispatch(continuation, onGpuManager, workerIndex);
    } else {
        noteTaskRetired();
    }
    dispatchAll(std::move(newlyRunnable), onGpuManager, workerIndex);

    if (onGpuManager)
        stats_.gpuTasksExecuted.fetch_add(1, std::memory_order_relaxed);
    else
        stats_.tasksExecuted.fetch_add(1, std::memory_order_relaxed);
}

void
Runtime::workerLoop(int index)
{
    tlsWorkerIndex = index;
    tlsOnGpuManager = false;
    Worker &self = *workers_[static_cast<size_t>(index)];

    while (!shutdown_.load(std::memory_order_acquire)) {
        TaskPtr task = self.deque.popTop();
        if (!task && workers_.size() > 1) {
            // Steal from the bottom of a random victim's deque.
            stats_.stealAttempts.fetch_add(1, std::memory_order_relaxed);
            size_t victim = static_cast<size_t>(self.rng.uniformInt(
                0, static_cast<int64_t>(workers_.size()) - 2));
            if (victim >= static_cast<size_t>(index))
                ++victim; // skip self
            task = workers_[victim]->deque.stealBottom();
            if (task)
                stats_.steals.fetch_add(1, std::memory_order_relaxed);
        }
        if (!task) {
            std::unique_lock<std::mutex> lock(idleMutex_);
            idleCv_.wait_for(lock, std::chrono::microseconds(200));
            continue;
        }
        executeTask(task, /*onGpuManager=*/false, index);
    }
}

void
Runtime::gpuLoop()
{
    tlsWorkerIndex = -1;
    tlsOnGpuManager = true;

    while (!shutdown_.load(std::memory_order_acquire)) {
        TaskPtr task;
        {
            std::unique_lock<std::mutex> lock(gpuMutex_);
            gpuCv_.wait_for(lock, std::chrono::microseconds(200), [this] {
                return shutdown_.load(std::memory_order_acquire) ||
                       !gpuFifo_.empty();
            });
            // FIFO service: oldest task first (Section 4.2: the GPU
            // management thread runs one task at a time in push order).
            task = gpuFifo_.popTop();
        }
        if (!task)
            continue;
        executeTask(task, /*onGpuManager=*/true, -1);
    }
}

} // namespace runtime
} // namespace petabricks
