/**
 * @file
 * Work-stealing deque of tasks.
 *
 * Each CPU worker owns one deque (paper Section 4.1, after Cilk's THE
 * protocol): the owner pushes and pops at the *top* (LIFO, for locality
 * and depth-first execution), thieves steal from the *bottom* (oldest,
 * largest-granularity work). The GPU management thread additionally
 * pushes CPU tasks it makes runnable onto the *bottom* of a random
 * worker's deque (Section 4.2, Figure 5(b)).
 *
 * This implementation guards the deque with a spinlock rather than
 * reproducing the THE protocol's lock-free fast path: operations are a
 * handful of pointer moves, contention is steal-rate bounded, and
 * correctness under the three-party access pattern (owner, thieves, GPU
 * manager) stays self-evident.
 */

#ifndef PETABRICKS_RUNTIME_DEQUE_H
#define PETABRICKS_RUNTIME_DEQUE_H

#include <atomic>
#include <deque>
#include <mutex>

#include "runtime/task.h"

namespace petabricks {
namespace runtime {

/** Deque supporting owner LIFO access plus bottom steals/pushes. */
class WorkDeque
{
  public:
    /** Owner: push a task on top (most recently created runs first). */
    void
    pushTop(TaskPtr task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
        size_.store(tasks_.size(), std::memory_order_relaxed);
    }

    /** External producer (GPU manager): push on the bottom. */
    void
    pushBottom(TaskPtr task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_front(std::move(task));
        size_.store(tasks_.size(), std::memory_order_relaxed);
    }

    /** Owner: pop the top task; nullptr if empty. */
    TaskPtr
    popTop()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return nullptr;
        TaskPtr task = std::move(tasks_.back());
        tasks_.pop_back();
        size_.store(tasks_.size(), std::memory_order_relaxed);
        return task;
    }

    /** Thief: steal the bottom task; nullptr if empty. */
    TaskPtr
    stealBottom()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return nullptr;
        TaskPtr task = std::move(tasks_.front());
        tasks_.pop_front();
        size_.store(tasks_.size(), std::memory_order_relaxed);
        return task;
    }

    /** Approximate size (racy read; used for victim selection only). */
    size_t size() const { return size_.load(std::memory_order_relaxed); }

    bool empty() const { return size() == 0; }

  private:
    mutable std::mutex mutex_;
    std::deque<TaskPtr> tasks_;
    std::atomic<size_t> size_{0};
};

} // namespace runtime
} // namespace petabricks

#endif // PETABRICKS_RUNTIME_DEQUE_H
