/**
 * @file
 * The GPU memory table (paper Section 4.3).
 *
 * The GPU management thread keeps a table of information about data
 * stored on the device. Each tracked matrix gets one *consolidated*
 * device buffer sized for the whole matrix — the paper's copy-out
 * optimization: rules producing different regions of one output write
 * into regions of one buffer instead of many small buffers.
 *
 * The table implements the three memory-management behaviors the
 * compiler's data-movement analysis selects between:
 *  - copy-in dedup ("no copy"): a copy-in is skipped when the region is
 *    already valid on the device, either copied in earlier or produced
 *    there by a previous kernel;
 *  - eager copy-out ("must copy-out"): a non-blocking read is enqueued
 *    immediately and polled by a copy-out completion task;
 *  - lazy copy-out ("may copy-out"): device-written regions are recorded
 *    as stale on the host, and ensureOnHost() performs the deferred copy
 *    when (and only when) CPU code actually consumes the data.
 */

#ifndef PETABRICKS_RUNTIME_GPU_MEMORY_H
#define PETABRICKS_RUNTIME_GPU_MEMORY_H

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ocl/queue.h"
#include "support/matrix.h"

namespace petabricks {
namespace runtime {

/** Counters for the data-movement tests and microbenchmarks. */
struct GpuMemoryStats
{
    int64_t buffersAllocated = 0;
    int64_t copyInsPerformed = 0;
    int64_t copyInsSkipped = 0;
    int64_t eagerCopyOuts = 0;
    int64_t lazyCopyOuts = 0;
    int64_t lazyChecksClean = 0;
    int64_t buffersReleased = 0;
};

/** Residency table for matrices mirrored in device memory. */
class GpuMemoryTable
{
  public:
    explicit GpuMemoryTable(ocl::CommandQueue &queue) : queue_(queue) {}

    /**
     * Ensure a consolidated device buffer exists for @p m and return it
     * (the paper's *prepare* task body).
     */
    ocl::BufferPtr prepare(const MatrixD &m);

    /** Device buffer for @p m; fatal if prepare() was never called. */
    ocl::BufferPtr buffer(const MatrixD &m) const;

    /**
     * Copy @p region of @p m host->device unless it is already valid
     * there (the paper's copy-in management).
     *
     * @return true if a copy was enqueued, false if deduplicated.
     */
    bool copyIn(const MatrixD &m, const Region &region);

    /** Record that a kernel wrote @p region of @p m on the device. */
    void markDeviceWritten(const MatrixD &m, const Region &region);

    /**
     * Eager copy-out: enqueue a non-blocking device->host read of
     * @p region and return its event for a copy-out completion task to
     * poll.
     */
    ocl::EventPtr copyOut(MatrixD m, const Region &region);

    /**
     * Lazy copy-out check: if any part of @p region was produced on the
     * device and never copied back, perform the copy now (blocking).
     * CPU-side code calls this before consuming a may-copy-out region.
     */
    void ensureOnHost(MatrixD m, const Region &region);

    /** True if @p region of @p m is valid in device memory. */
    bool validOnDevice(const MatrixD &m, const Region &region) const;

    /** True if the host copy of @p region is stale (device is newer). */
    bool hostStale(const MatrixD &m, const Region &region) const;

    /**
     * The host wrote @p m: device copies are stale, release the buffer
     * (the paper: "releasing buffers that become stale because the copy
     * in main memory has been written to").
     */
    void invalidate(const MatrixD &m);

    /**
     * The host wrote @p region of @p m (e.g. the CPU part of a split
     * rule): that region's device copy is stale, and any pending
     * device-side result there is superseded. No-op for untracked
     * matrices.
     */
    void invalidateRegion(const MatrixD &m, const Region &region);

    /** Drop everything (end of transform execution). */
    void clear();

    GpuMemoryStats statsSnapshot() const;

  private:
    struct Record
    {
        MatrixD matrix; // keeps host storage alive for async copies
        ocl::BufferPtr buffer;
        std::vector<Region> validOnDevice;
        std::vector<Region> hostStaleRegions;
    };

    Record &recordFor(const MatrixD &m);

    ocl::CommandQueue &queue_;
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, Record> records_;
    GpuMemoryStats stats_;
};

} // namespace runtime
} // namespace petabricks

#endif // PETABRICKS_RUNTIME_GPU_MEMORY_H
