#include "benchmarks/blackscholes.h"

#include <cmath>

#include "benchmarks/backend_util.h"
#include "compiler/simulator.h"

namespace petabricks {
namespace apps {

namespace {

using lang::AccessPattern;
using lang::ParamEnv;
using lang::PointArgs;
using lang::RuleDef;

/** Abramowitz-Stegun style normal CDF via erf. */
double
normCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/**
 * flops one option costs. The transcendental-heavy inner loop (log,
 * sqrt, exp, and two erfc evaluations, each a polynomial expansion in
 * scalar code) makes pricing strongly compute bound.
 */
constexpr double kFlopsPerOption = 2500.0;

lang::RulePtr
blackScholesRule()
{
    return RuleDef::makePoint(
        "BlackScholes", "Price",
        {AccessPattern::point("Spot"), AccessPattern::point("Strike"),
         AccessPattern::point("Years")},
        [](const PointArgs &pt) {
            double spot = pt.input(0).at(pt.x, pt.y);
            double strike = pt.input(1).at(pt.x, pt.y);
            double years = pt.input(2).at(pt.x, pt.y);
            double rate = static_cast<double>(pt.param(0)) * 1e-4;
            double vol = static_cast<double>(pt.param(1)) * 1e-4;
            return blackScholesCall(spot, strike, years, rate, vol);
        },
        [](const ParamEnv &) { return kFlopsPerOption; });
}

compiler::SlotSizes
sizesFor(int64_t n)
{
    int64_t rows = BlackScholesBenchmark::rowsFor(n);
    int64_t cols = (n + rows - 1) / rows;
    std::pair<int64_t, int64_t> shape{cols, rows};
    return {{"Spot", shape},
            {"Strike", shape},
            {"Years", shape},
            {"Price", shape}};
}

/** Config-invariant state shared by a batch (see Benchmark docs). */
struct BsEvalContext : apps::EvalContext
{
    compiler::EvaluationContext sim;
    StageChoiceIds rule;
    size_t splitTun;

    BsEvalContext(const std::shared_ptr<lang::Transform> &transform,
                  int64_t n, const sim::MachineProfile &machine,
                  const tuner::Config &schema)
        : sim(transform, sizesFor(n), {500, 2000}, machine),
          rule(stageChoiceIds(schema, "BlackScholes")),
          splitTun(schema.tunableIndex("BlackScholes.split"))
    {}
};

} // namespace

double
blackScholesCall(double spot, double strike, double years,
                 double riskFree, double volatility)
{
    double sigmaSqrtT = volatility * std::sqrt(years);
    double d1 = (std::log(spot / strike) +
                 (riskFree + 0.5 * volatility * volatility) * years) /
                sigmaSqrtT;
    double d2 = d1 - sigmaSqrtT;
    return spot * normCdf(d1) -
           strike * std::exp(-riskFree * years) * normCdf(d2);
}

BlackScholesBenchmark::BlackScholesBenchmark()
{
    transform_ = std::make_shared<lang::Transform>("BlackScholes");
    transform_->slot("Spot", lang::SlotRole::Input)
        .slot("Strike", lang::SlotRole::Input)
        .slot("Years", lang::SlotRole::Input)
        .slot("Price", lang::SlotRole::Output);
    transform_->choice("formula", {blackScholesRule()});
}

int64_t
BlackScholesBenchmark::rowsFor(int64_t n)
{
    int64_t rows = static_cast<int64_t>(std::sqrt(
        static_cast<double>(std::max<int64_t>(n, 1))));
    return std::max<int64_t>(rows, 1);
}

tuner::Config
BlackScholesBenchmark::seedConfig() const
{
    tuner::Config config;
    addBackendChoices(config, "BlackScholes",
                      /*hasLocalVariant=*/false);
    config.addTunable({"BlackScholes.split", 1, 256, 16, true});
    return config;
}

compiler::TransformConfig
BlackScholesBenchmark::planFor(const tuner::Config &config,
                               int64_t n) const
{
    compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages = {stageFor(
        config, "BlackScholes", n,
        static_cast<int>(config.tunableValue("BlackScholes.split")))};
    return plan;
}

double
BlackScholesBenchmark::evaluate(const tuner::Config &config, int64_t n,
                                const sim::MachineProfile &machine) const
{
    auto outcome = compiler::simulateTransform(
        *transform_, planFor(config, n), sizesFor(n), {500, 2000},
        machine);
    return outcome.seconds;
}

apps::EvalContextPtr
BlackScholesBenchmark::makeEvalContext(
    int64_t n, const sim::MachineProfile &machine) const
{
    return std::make_shared<BsEvalContext>(transform_, n, machine,
                                           seedConfig());
}

double
BlackScholesBenchmark::evaluate(const tuner::Config &config, int64_t n,
                                const sim::MachineProfile &machine,
                                const EvalContext *ctx) const
{
    if (ctx == nullptr)
        return evaluate(config, n, machine);
    const auto &bs = static_cast<const BsEvalContext &>(*ctx);
    int split = static_cast<int>(config.tunableValueAt(bs.splitTun));
    thread_local compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages.clear();
    plan.stages.push_back(stageForIds(config, bs.rule, n, split));
    return compiler::simulateTransform(bs.sim, plan).seconds;
}

std::vector<std::string>
BlackScholesBenchmark::kernelSources(const tuner::Config &config,
                                     int64_t n) const
{
    std::vector<std::string> sources;
    appendKernelSources(sources, planFor(config, n).stages[0],
                        "BlackScholes");
    return sources;
}

int
BlackScholesBenchmark::kernelCount(const tuner::Config &config,
                                   int64_t n) const
{
    return stageKernelCount(planFor(config, n).stages[0]);
}

std::string
BlackScholesBenchmark::describeConfig(const tuner::Config &config,
                                      int64_t n) const
{
    return describeStage(planFor(config, n).stages[0]);
}

lang::Binding
BlackScholesBenchmark::makeBinding(int64_t n, Rng &rng) const
{
    int64_t rows = rowsFor(n);
    int64_t cols = (n + rows - 1) / rows;
    lang::Binding binding;
    MatrixD spot(cols, rows), strike(cols, rows), years(cols, rows);
    for (int64_t i = 0; i < spot.size(); ++i) {
        spot[i] = rng.uniformReal(10.0, 200.0);
        strike[i] = rng.uniformReal(10.0, 200.0);
        years[i] = rng.uniformReal(0.1, 5.0);
    }
    binding.matrices.emplace("Spot", spot);
    binding.matrices.emplace("Strike", strike);
    binding.matrices.emplace("Years", years);
    binding.matrices.emplace("Price", MatrixD(cols, rows));
    binding.params = {500, 2000}; // rate 5%, volatility 20%
    return binding;
}

MatrixD
BlackScholesBenchmark::reference(const lang::Binding &binding)
{
    const MatrixD &spot = binding.matrix("Spot");
    const MatrixD &strike = binding.matrix("Strike");
    const MatrixD &years = binding.matrix("Years");
    double rate = static_cast<double>(binding.params[0]) * 1e-4;
    double vol = static_cast<double>(binding.params[1]) * 1e-4;
    MatrixD out(spot.width(), spot.height());
    for (int64_t i = 0; i < out.size(); ++i)
        out[i] = blackScholesCall(spot[i], strike[i], years[i], rate,
                                  vol);
    return out;
}

double
BlackScholesBenchmark::checkOutput(const lang::Binding &binding) const
{
    return maxAbsDiff(binding.matrix("Price"), reference(binding));
}

tuner::Config
BlackScholesBenchmark::cpuOnlyConfig()
{
    BlackScholesBenchmark proto;
    tuner::Config config = proto.seedConfig();
    config.selector("BlackScholes.backend")
        .setAlgorithm(0, backendAlg(compiler::Backend::Cpu));
    return config;
}

} // namespace apps
} // namespace petabricks
