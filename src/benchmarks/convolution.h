/**
 * @file
 * SeparableConvolution (paper Figure 1 / Section 2.1, Figures 2 and
 * 7(c)).
 *
 * Convolves an n x n matrix with a separable KWIDTH-wide kernel. Two
 * algorithmic choices — a single-pass 2-D convolution, or two 1-D
 * passes through an intermediate buffer — each of whose rules can run
 * on the CPU backend, the OpenCL backend with global memory, or the
 * OpenCL backend with the synthesized local-memory prefetch variant.
 */

#ifndef PETABRICKS_BENCHMARKS_CONVOLUTION_H
#define PETABRICKS_BENCHMARKS_CONVOLUTION_H

#include <memory>

#include "benchmarks/benchmark.h"
#include "lang/transform.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/** See file comment. */
class ConvolutionBenchmark : public Benchmark
{
  public:
    explicit ConvolutionBenchmark(int64_t kwidth = 7);

    std::string name() const override { return "SeparableConv."; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    EvalContextPtr
    makeEvalContext(int64_t n,
                    const sim::MachineProfile &machine) const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine,
                    const EvalContext *ctx) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int kernelCount(const tuner::Config &config,
                    int64_t n) const override;
    int64_t testingInputSize() const override { return 3520; }
    int openclKernelCount() const override;
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    int64_t kwidth() const { return kwidth_; }

    // Real-mode surface.
    bool supportsRealMode() const override { return true; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    int64_t realModeProbeSize() const override { return 64; }

    /** Reference result for correctness checks. */
    static MatrixD reference(const lang::Binding &binding, int64_t kwidth);

    /**
     * Fixed expert placements for the Figure 2 sweep: 2D / separable,
     * each with and without local memory, all entirely on OpenCL.
     */
    static tuner::Config fixedMapping(bool separable, bool localMem);

  private:
    int64_t kwidth_;
    std::shared_ptr<lang::Transform> transform_;
};

/** Build the SeparableConvolution transform for a given kernel width. */
std::shared_ptr<lang::Transform> makeConvolutionTransform(int64_t kwidth);

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_CONVOLUTION_H
