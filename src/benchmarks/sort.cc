#include "benchmarks/sort.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ocl/device.h"
#include "sim/cost_model.h"

namespace petabricks {
namespace apps {

namespace {

/** Scalar-op constants per element (calibrated, not measured). */
constexpr double kInsertionOps = 0.7;  // * n^2
constexpr double kSelectionOps = 1.0;  // * n^2
constexpr double kPartitionOps = 3.0;  // * n per quicksort level
constexpr double kMerge2Ops = 4.0;     // * n per 2-way merge
constexpr double kMerge4Ops = 6.0;     // * n per 4-way merge
constexpr double kParMergeExtra = 1.0; // * n extra work when parallel
constexpr double kRadixOps = 50.0;     // * n, scatter-traffic dominated
constexpr double kTaskOverheadOps = 600.0; // per spawned task
constexpr double kCallOverheadOps = 100.0;   // per recursive call

/** Work/span pair in seconds. */
struct WorkSpan
{
    double work = 0.0;
    double span = 0.0;
};

struct ModelCtx
{
    const tuner::Config &config;
    const sim::MachineProfile &machine;
    double rate;  // scalar ops/sec of one core
    int workers;
    int64_t taskCutoff;
    int64_t pmCutoff;

    /** Pre-resolved "Sort.algorithm" selector (the fast path); when
     * null, modelSort() looks it up by name per recursion level — the
     * reference path's pre-context behavior. */
    const tuner::Selector *algorithm = nullptr;
};

double
bitonicGpuSeconds(int64_t n, const sim::MachineProfile &machine)
{
    if (!machine.hasOpenCL)
        return std::numeric_limits<double>::infinity();
    int64_t pow2 = 1;
    int k = 0;
    while (pow2 < n) {
        pow2 <<= 1;
        ++k;
    }
    double seconds =
        machine.transfer.seconds(8.0 * static_cast<double>(pow2)) * 2;
    int stages = k * (k + 1) / 2;
    sim::CostReport perStage;
    perStage.flops = 4.0 * static_cast<double>(pow2);
    perStage.globalBytesRead = 16.0 * static_cast<double>(pow2);
    perStage.globalBytesWritten = 8.0 * static_cast<double>(pow2);
    perStage.workItems = static_cast<double>(pow2);
    for (int s = 0; s < stages; ++s)
        seconds += sim::CostModel::kernelSeconds(machine.ocl, perStage,
                                                 256);
    return seconds;
}

WorkSpan
modelSort(const ModelCtx &ctx, int64_t n)
{
    if (n <= 1)
        return {0.0, 0.0};
    int alg = ctx.algorithm
                  ? ctx.algorithm->select(n)
                  : ctx.config.selector("Sort.algorithm").select(n);
    double dn = static_cast<double>(n);
    bool spawn = n >= ctx.taskCutoff;
    auto seconds = [&](double ops) { return ops / ctx.rate; };

    switch (alg) {
      case kSortInsertion: {
        double t = seconds(kInsertionOps * dn * dn);
        return {t, t};
      }
      case kSortSelection: {
        double t = seconds(kSelectionOps * dn * dn);
        return {t, t};
      }
      case kSortQuick: {
        WorkSpan child = modelSort(ctx, n / 2);
        double part =
            seconds(kPartitionOps * dn + kCallOverheadOps);
        double overhead =
            spawn ? seconds(kTaskOverheadOps) : 0.0;
        double work = part + 2 * child.work + overhead;
        double span = spawn ? part + child.span + overhead
                            : part + 2 * child.work;
        return {work, span};
      }
      case kSortRadix: {
        double t = seconds(kRadixOps * dn);
        return {t, t};
      }
      case kSortMerge2:
      case kSortMerge4: {
        int ways = alg == kSortMerge2 ? 2 : 4;
        double mergeOps =
            (ways == 2 ? kMerge2Ops : kMerge4Ops) * dn;
        WorkSpan child = modelSort(ctx, n / ways);
        bool parallelMerge = n >= ctx.pmCutoff;
        double mergeWork =
            seconds(mergeOps + kCallOverheadOps +
                    (parallelMerge ? kParMergeExtra * dn : 0.0));
        double mergeSpan =
            parallelMerge
                ? mergeWork / ctx.workers + seconds(kTaskOverheadOps)
                : mergeWork;
        double overhead = spawn ? seconds(kTaskOverheadOps * ways) : 0.0;
        double work = ways * child.work + mergeWork + overhead;
        double span = spawn ? child.span + mergeSpan + overhead
                            : ways * child.work + mergeWork;
        return {work, span};
      }
      case kSortBitonicGpu: {
        double t = bitonicGpuSeconds(n, ctx.machine);
        // The GPU path is serial from the caller's perspective.
        return {t, t};
      }
      default:
        PB_PANIC("bad sort algorithm " << alg);
    }
}

// ---- Real-mode implementations ----------------------------------------

void
insertionSort(double *a, int64_t n)
{
    for (int64_t i = 1; i < n; ++i) {
        double key = a[i];
        int64_t j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            --j;
        }
        a[j + 1] = key;
    }
}

void
selectionSort(double *a, int64_t n)
{
    for (int64_t i = 0; i + 1 < n; ++i) {
        int64_t best = i;
        for (int64_t j = i + 1; j < n; ++j)
            if (a[j] < a[best])
                best = j;
        std::swap(a[i], a[best]);
    }
}

/** Order-preserving map from double to uint64 for radix sort. */
uint64_t
doubleKey(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return (bits & 0x8000000000000000ull) ? ~bits
                                          : bits | 0x8000000000000000ull;
}

void
radixSort(double *a, int64_t n)
{
    std::vector<double> tmp(static_cast<size_t>(n));
    double *src = a;
    double *dst = tmp.data();
    for (int shift = 0; shift < 64; shift += 8) {
        int64_t count[257] = {0};
        for (int64_t i = 0; i < n; ++i)
            ++count[((doubleKey(src[i]) >> shift) & 0xff) + 1];
        for (int b = 0; b < 256; ++b)
            count[b + 1] += count[b];
        for (int64_t i = 0; i < n; ++i)
            dst[count[(doubleKey(src[i]) >> shift) & 0xff]++] = src[i];
        std::swap(src, dst);
    }
    // 8 passes: data ends back in `a`.
    PB_ASSERT(src == a, "radix pass parity");
}

void dispatchSort(const tuner::Config &config, double *a, int64_t n);

void
mergeSort(const tuner::Config &config, double *a, int64_t n, int ways)
{
    std::vector<int64_t> bounds;
    for (int i = 0; i <= ways; ++i)
        bounds.push_back(n * i / ways);
    for (int i = 0; i < ways; ++i)
        dispatchSort(config, a + bounds[static_cast<size_t>(i)],
                     bounds[static_cast<size_t>(i + 1)] -
                         bounds[static_cast<size_t>(i)]);
    // Merge runs pairwise (a 4-way merge is two 2-way merges + final).
    for (int width = 1; width < ways; width *= 2) {
        for (int i = 0; i + width <= ways; i += 2 * width) {
            int64_t lo = bounds[static_cast<size_t>(i)];
            int64_t mid = bounds[static_cast<size_t>(i + width)];
            int64_t hi =
                bounds[static_cast<size_t>(std::min(i + 2 * width, ways))];
            std::inplace_merge(a + lo, a + mid, a + hi);
        }
    }
}

void
bitonicSortGpu(double *a, int64_t n)
{
    int64_t pow2 = 1;
    while (pow2 < n)
        pow2 <<= 1;
    auto buf = std::make_shared<ocl::Buffer>(pow2 * 8);
    double *d = buf->as<double>();
    std::memcpy(d, a, static_cast<size_t>(n) * 8);
    for (int64_t i = n; i < pow2; ++i)
        d[i] = std::numeric_limits<double>::infinity();

    auto kernel = std::make_shared<ocl::Kernel>(
        "bitonic_step", "pbcl:bitonic:step",
        [](ocl::GroupCtx &ctx) {
            double *data = ctx.args().buffer(0).as<double>();
            int64_t j = ctx.args().intArg(0);
            int64_t k = ctx.args().intArg(1);
            ctx.forEachItem([&](int64_t i, int64_t, int64_t, int64_t) {
                int64_t ixj = i ^ j;
                if (ixj <= i)
                    return;
                bool ascending = (i & k) == 0;
                if ((data[i] > data[ixj]) == ascending)
                    std::swap(data[i], data[ixj]);
            });
        },
        [](const ocl::KernelArgs &, const ocl::NDRange &range) {
            sim::CostReport cost;
            cost.flops = 4.0 * static_cast<double>(range.items());
            cost.globalBytesRead = 16.0 * range.items();
            cost.globalBytesWritten = 8.0 * range.items();
            return cost;
        });

    ocl::Device device(sim::MachineProfile::desktop().ocl);
    for (int64_t k = 2; k <= pow2; k <<= 1) {
        for (int64_t j = k >> 1; j > 0; j >>= 1) {
            ocl::KernelArgs args;
            args.buffers = {buf};
            args.ints = {j, k};
            device.launch(*kernel, args, ocl::NDRange::linear(pow2, 256));
        }
    }
    std::memcpy(a, d, static_cast<size_t>(n) * 8);
}

void
dispatchSort(const tuner::Config &config, double *a, int64_t n)
{
    if (n <= 1)
        return;
    switch (config.selector("Sort.algorithm").select(n)) {
      case kSortInsertion:
        insertionSort(a, n);
        return;
      case kSortSelection:
        selectionSort(a, n);
        return;
      case kSortQuick: {
        double pivot = a[n / 2];
        double *lo = a;
        double *hi = a + n - 1;
        while (lo <= hi) {
            while (*lo < pivot)
                ++lo;
            while (*hi > pivot)
                --hi;
            if (lo <= hi)
                std::swap(*lo++, *hi--);
        }
        dispatchSort(config, a, hi - a + 1);
        dispatchSort(config, lo, a + n - lo);
        return;
      }
      case kSortRadix:
        radixSort(a, n);
        return;
      case kSortMerge2:
        mergeSort(config, a, n, 2);
        return;
      case kSortMerge4:
        mergeSort(config, a, n, 4);
        return;
      case kSortBitonicGpu:
        bitonicSortGpu(a, n);
        return;
      default:
        PB_PANIC("bad sort algorithm");
    }
}

const char *
sortAlgName(int alg)
{
    switch (alg) {
      case kSortInsertion: return "IS";
      case kSortSelection: return "SS";
      case kSortQuick: return "QS";
      case kSortRadix: return "RS";
      case kSortMerge2: return "2MS";
      case kSortMerge4: return "4MS";
      case kSortBitonicGpu: return "BitonicGPU";
    }
    return "?";
}

/** The Sort transform: one region rule running the poly-algorithm. */
std::shared_ptr<lang::Transform>
makeSortTransform(const ChoiceFilePtr &choices)
{
    auto t = std::make_shared<lang::Transform>("Sort");
    t->slot("In", lang::SlotRole::Input)
        .slot("Out", lang::SlotRole::Output);
    auto rule = lang::RuleDef::makeRegion(
        "SortPoly", "Out", {"In"},
        [choices](lang::RuleDef::RegionRunArgs &args) {
            const MatrixD &in = args.inputs[0];
            for (int64_t i = 0; i < in.size(); ++i)
                args.output[i] = in[i];
            dispatchSort(choices->get(), args.output.data(),
                         args.output.size());
        },
        [](const Region &region, const lang::ParamEnv &) {
            // ~n log n comparison-sort work; the precise choice-aware
            // model lives in SortBenchmark::evaluate.
            double n = static_cast<double>(region.w * region.h);
            sim::CostReport cost;
            cost.flops = kMerge2Ops * n * std::log2(std::max(2.0, n));
            return cost;
        });
    t->choice("poly", {rule});
    return t;
}

} // namespace

SortBenchmark::SortBenchmark()
    : choices_(std::make_shared<ChoiceFile>()),
      transform_(makeSortTransform(choices_))
{}

lang::Binding
SortBenchmark::makeBinding(int64_t n, Rng &rng) const
{
    lang::Binding binding;
    MatrixD in = MatrixD::vector(n);
    for (int64_t i = 0; i < n; ++i)
        in[i] = rng.uniformReal(-1e6, 1e6);
    binding.matrices.emplace("In", in);
    binding.matrices.emplace("Out", MatrixD::vector(n));
    return binding;
}

compiler::TransformConfig
SortBenchmark::planFor(const tuner::Config &config, int64_t n) const
{
    (void)n;
    choices_->arm(config);
    compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages = {compiler::StageConfig{}}; // region rule: CPU native
    return plan;
}

double
SortBenchmark::checkOutput(const lang::Binding &binding) const
{
    const MatrixD &in = binding.matrix("In");
    MatrixD expect = in.clone();
    std::sort(expect.data(), expect.data() + expect.size());
    return maxAbsDiff(binding.matrix("Out"), expect);
}

tuner::Config
SortBenchmark::seedConfig() const
{
    tuner::Config config;
    config.addSelector(
        tuner::Selector("Sort.algorithm", kSortAlgCount, kSortInsertion));
    config.addTunable({"Sort.taskCutoff", 16, 1 << 22, 512, true});
    config.addTunable({"Sort.pmCutoff", 16, 1 << 22, 1 << 16, true});
    return config;
}

double
SortBenchmark::evaluate(const tuner::Config &config, int64_t n,
                        const sim::MachineProfile &machine) const
{
    ModelCtx ctx{config, machine,
                 machine.cpu.gflopsPerCore * 1e9,
                 std::min(machine.workerThreads, machine.cpu.cores),
                 config.tunableValue("Sort.taskCutoff"),
                 config.tunableValue("Sort.pmCutoff")};
    WorkSpan ws = modelSort(ctx, n);
    return std::max(ws.work / ctx.workers, ws.span);
}

namespace {

/** Pre-resolved config positions (see Benchmark docs). */
struct SortEvalContext : apps::EvalContext
{
    size_t algorithmSel;
    size_t taskCutoffTun;
    size_t pmCutoffTun;

    explicit SortEvalContext(const tuner::Config &schema)
        : algorithmSel(schema.selectorIndex("Sort.algorithm")),
          taskCutoffTun(schema.tunableIndex("Sort.taskCutoff")),
          pmCutoffTun(schema.tunableIndex("Sort.pmCutoff"))
    {}
};

} // namespace

apps::EvalContextPtr
SortBenchmark::makeEvalContext(int64_t n,
                               const sim::MachineProfile &machine) const
{
    (void)n;
    (void)machine;
    return std::make_shared<SortEvalContext>(seedConfig());
}

double
SortBenchmark::evaluate(const tuner::Config &config, int64_t n,
                        const sim::MachineProfile &machine,
                        const EvalContext *ctx) const
{
    if (ctx == nullptr)
        return evaluate(config, n, machine);
    const auto &sort = static_cast<const SortEvalContext &>(*ctx);
    ModelCtx mctx{config, machine,
                  machine.cpu.gflopsPerCore * 1e9,
                  std::min(machine.workerThreads, machine.cpu.cores),
                  config.tunableValueAt(sort.taskCutoffTun),
                  config.tunableValueAt(sort.pmCutoffTun),
                  &config.selectorAt(sort.algorithmSel)};
    WorkSpan ws = modelSort(mctx, n);
    return std::max(ws.work / mctx.workers, ws.span);
}

std::vector<std::string>
SortBenchmark::kernelSources(const tuner::Config &config, int64_t n) const
{
    // Walk the selector: does any level reachable from n use bitonic?
    for (int64_t s = n; s >= 1; s /= 2)
        if (config.selector("Sort.algorithm").select(s) ==
            kSortBitonicGpu)
            return {"pbcl:bitonic:step"};
    return {};
}

int
SortBenchmark::kernelCount(const tuner::Config &config, int64_t n) const
{
    const tuner::Selector &algorithm =
        config.selector("Sort.algorithm");
    for (int64_t s = n; s >= 1; s /= 2)
        if (algorithm.select(s) == kSortBitonicGpu)
            return 1;
    return 0;
}

std::string
SortBenchmark::describeConfig(const tuner::Config &config,
                              int64_t n) const
{
    // Render the poly-algorithm as the paper does: from large sizes
    // down to the base case.
    const tuner::Selector &s = config.selector("Sort.algorithm");
    std::string out;
    int64_t size = n;
    int last = -1;
    while (size >= 1) {
        int alg = s.select(size);
        if (alg != last) {
            if (!out.empty())
                out += ", then ";
            out += sortAlgName(alg);
            if (size != n)
                out += " below " + std::to_string(size + 1);
            last = alg;
        }
        if (size == 1)
            break;
        size /= 2;
    }
    return out;
}

void
SortBenchmark::sortWithConfig(const tuner::Config &config,
                              std::vector<double> &data)
{
    dispatchSort(config, data.data(),
                 static_cast<int64_t>(data.size()));
}

tuner::Config
SortBenchmark::gpuOnlyConfig()
{
    SortBenchmark proto;
    tuner::Config config = proto.seedConfig();
    config.selector("Sort.algorithm").setAlgorithm(0, kSortBitonicGpu);
    return config;
}

double
SortBenchmark::handCodedRadixSeconds(int64_t n,
                                     const sim::MachineProfile &machine)
{
    if (!machine.hasOpenCL)
        return std::numeric_limits<double>::infinity();
    // NVIDIA-SDK-style GPU radix: 8 histogram+scatter pass pairs with
    // poorly coalesced scatters, plus the transfers the SDK samples
    // usually leave out — our measurements include them (Section 6.2).
    double dn = static_cast<double>(n);
    double seconds = machine.transfer.seconds(8.0 * dn) * 2;
    sim::CostReport pass;
    pass.flops = 12.0 * dn;
    pass.globalBytesRead = 8.0 * 8.0 * dn; // uncoalesced scatter penalty
    pass.globalBytesWritten = 8.0 * dn;
    pass.invocations = 2;
    for (int p = 0; p < 8; ++p)
        seconds +=
            sim::CostModel::kernelSeconds(machine.ocl, pass, 256);
    return seconds;
}

} // namespace apps
} // namespace petabricks
