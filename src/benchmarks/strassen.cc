#include "benchmarks/strassen.h"

#include <cmath>

#include "benchmarks/backend_util.h"
#include "blas/blas.h"
#include "compiler/kernel_synth.h"
#include "compiler/rule_cost.h"
#include "ocl/device.h"

namespace petabricks {
namespace apps {

namespace {

using lang::AccessPattern;
using lang::DimAccess;
using lang::ParamEnv;
using lang::PointArgs;
using lang::RuleDef;

/** Smallest size recursion bottoms out at regardless of the selector. */
constexpr int64_t kLeafSize = 16;

/**
 * Bandwidth-bound overhead of one level of recursive decomposition:
 * quadrant extraction, temporaries for the partial products, and the
 * combining adds all stream ~this many bytes per n^2 cells. It does not
 * scale with cores, which is why few-core machines (Laptop) prefer the
 * direct library call while many-core machines (Server) decompose.
 */
constexpr double kDecompBytesPerN2 = 240.0;

/**
 * The data-parallel matmul rule: Out(x,y) = sum_k A(k,y) * B(x,k).
 * Full-extent accesses mean the bounding box is not a constant, so no
 * local-memory variant is synthesized — matching the paper, where the
 * hand-coded local-memory matmul optimization was *not* something
 * their system generated.
 */
lang::RulePtr
matmulRule()
{
    auto rule = RuleDef::makePoint(
        "MatMul", "Out",
        {AccessPattern{"A", DimAccess::all(), DimAccess::window(0, 1)},
         AccessPattern{"B", DimAccess::window(0, 1), DimAccess::all()}},
        [](const PointArgs &pt) {
            int64_t k = pt.param(0);
            double sum = 0.0;
            for (int64_t i = 0; i < k; ++i)
                sum += pt.input(0).at(i, pt.y) * pt.input(1).at(pt.x, i);
            return sum;
        },
        [](const ParamEnv &params) {
            // One-output-per-item matmul kernels reach well below peak
            // (no register blocking): charge the inefficiency here.
            return 2.2 * 2.0 * static_cast<double>(params[0]);
        });
    // Matmul rows/columns live in registers and L1 across a work-group;
    // far more reuse than a stencil window.
    rule->setGpuCacheHitRate(0.97);
    return rule;
}

const lang::RulePtr &
sharedMatmulRule()
{
    static lang::RulePtr rule = matmulRule();
    return rule;
}

struct WorkSpan
{
    double work = 0.0;
    double span = 0.0;
};

// The matmul model is written once, parameterized over how the config
// is consulted: the reference path passes lambdas that look selectors
// and tunables up by name per recursive level (the pre-context
// behavior the throughput bench measures against), the fast path
// passes O(1) reads of pre-resolved positions. Both produce
// bit-identical numbers.

/** @param lwsOf nullary: the "<prefix>.mm.lws" tunable value. */
template <typename LwsOf>
double
opencilMatmulSecondsT(const LwsOf &lwsOf, int64_t n,
                      const sim::MachineProfile &machine,
                      double localityPenalty)
{
    if (!machine.hasOpenCL)
        return std::numeric_limits<double>::infinity();
    const lang::RuleDef &rule = *sharedMatmulRule();
    int lws = lwsOf();
    ocl::NDRange range(n, n, lws, 1);
    compiler::SlotExtents extents;
    extents.inputs = {{n, n}, {n, n}};
    extents.outputW = n;
    extents.outputH = n;
    sim::CostReport cost = compiler::pointRuleGlobalCost(
        rule, Region(0, 0, n, n), extents, {n}, range);
    cost.globalBytesRead *= localityPenalty;
    if (machine.oclSharesCpu) {
        // An untiled kernel vectorized onto the host CPU misses the
        // caches the hit-rate model assumes a GPU provides.
        cost.globalBytesRead *= 4.0;
    }
    double kernel =
        sim::CostModel::kernelSeconds(machine.ocl, cost, lws);
    double bytes = 3.0 * 8.0 * static_cast<double>(n) * n;
    return machine.transfer.seconds(bytes) + kernel;
}

/** @param algOf size -> "<prefix>.mm.algorithm" selection. */
template <typename AlgOf, typename LwsOf>
WorkSpan
modelMMT(const AlgOf &algOf, const LwsOf &lwsOf, int64_t n,
         const sim::MachineProfile &machine, double localityPenalty)
{
    double dn = static_cast<double>(n);
    int workers = std::min(machine.workerThreads, machine.cpu.cores);
    double rate = machine.cpu.gflopsPerCore * 1e9;
    double memRate = machine.cpu.memBandwidthGBs * 1e9 / localityPenalty;

    int alg = n <= kLeafSize ? kMmNaive : algOf(n);
    switch (alg) {
      case kMmLapack: {
        // The machine's library build decides both vector efficiency
        // and whether the call itself is threaded.
        double libRate = machine.blasSpeedup * rate *
                         std::min(machine.blasThreads, machine.cpu.cores);
        double flops = 2.0 * dn * dn * dn;
        double bytes = 3.0 * 8.0 * dn * dn;
        double t = std::max(flops / libRate, bytes / memRate);
        // Occupies blasThreads workers; treat as span for scheduling.
        return {t * machine.blasThreads, t};
      }
      case kMmNaive:
      case kMmBlocked: {
        double flops = 2.0 * dn * dn * dn;
        if (alg == kMmBlocked)
            flops /= 1.5; // register blocking / better ILP
        double t = std::max(flops / rate,
                            3.0 * 8.0 * dn * dn / memRate);
        // Data-parallel loop nest: scales across the worker pool.
        return {t, t / workers};
      }
      case kMmRecursive8: {
        WorkSpan child =
            modelMMT(algOf, lwsOf, n / 2, machine, localityPenalty);
        double combine = 2.0 * dn * dn / rate;
        double shuffle = kDecompBytesPerN2 * dn * dn / memRate;
        return {8 * child.work + combine + shuffle,
                child.span + combine / workers + shuffle};
      }
      case kMmStrassen: {
        WorkSpan child =
            modelMMT(algOf, lwsOf, n / 2, machine, localityPenalty);
        double adds = 9.0 * dn * dn / rate; // 18 (n/2)^2 add matrices
        double shuffle = 1.5 * kDecompBytesPerN2 * dn * dn / memRate;
        return {7 * child.work + adds + shuffle,
                child.span + adds / workers + shuffle};
      }
      case kMmOpenCl: {
        double t = opencilMatmulSecondsT(lwsOf, n, machine,
                                         localityPenalty);
        return {t, t};
      }
      default:
        PB_PANIC("bad matmul algorithm " << alg);
    }
}

/** Reference lookup policy: by-name lookups per recursive level. */
WorkSpan
modelMM(const tuner::Config &config, const std::string &prefix,
        int64_t n, const sim::MachineProfile &machine,
        double localityPenalty)
{
    return modelMMT(
        [&](int64_t size) {
            return config.selector(prefix + ".mm.algorithm")
                .select(size);
        },
        [&] {
            return static_cast<int>(
                config.tunableValue(prefix + ".mm.lws"));
        },
        n, machine, localityPenalty);
}

// ---- Real-mode execution ----------------------------------------------

MatrixD
quadrant(const MatrixD &m, int qx, int qy)
{
    int64_t h = m.width() / 2;
    MatrixD out(h, h);
    for (int64_t y = 0; y < h; ++y)
        for (int64_t x = 0; x < h; ++x)
            out.at(x, y) = m.at(qx * h + x, qy * h + y);
    return out;
}

void
placeQuadrant(MatrixD &m, const MatrixD &q, int qx, int qy)
{
    int64_t h = m.width() / 2;
    for (int64_t y = 0; y < h; ++y)
        for (int64_t x = 0; x < h; ++x)
            m.at(qx * h + x, qy * h + y) = q.at(x, y);
}

MatrixD
addM(const MatrixD &a, const MatrixD &b)
{
    MatrixD out(a.width(), a.height());
    for (int64_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

MatrixD
subM(const MatrixD &a, const MatrixD &b)
{
    MatrixD out(a.width(), a.height());
    for (int64_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

void
naiveMM(const MatrixD &a, const MatrixD &b, MatrixD &c)
{
    int64_t n = a.height(), k = a.width(), m = b.width();
    for (int64_t y = 0; y < n; ++y)
        for (int64_t x = 0; x < m; ++x) {
            double sum = 0.0;
            for (int64_t p = 0; p < k; ++p)
                sum += a.at(p, y) * b.at(x, p);
            c.at(x, y) = sum;
        }
}

void
openclMM(const MatrixD &a, const MatrixD &b, MatrixD &c, int lws)
{
    const lang::RulePtr &rule = sharedMatmulRule();
    static compiler::SynthesizedKernel kernels =
        compiler::synthesizeKernels(rule);
    auto upload = [](const MatrixD &m) {
        auto buf = std::make_shared<ocl::Buffer>(m.bytes());
        std::memcpy(buf->raw(), m.data(), static_cast<size_t>(m.bytes()));
        return buf;
    };
    auto aBuf = upload(a);
    auto bBuf = upload(b);
    auto cBuf = std::make_shared<ocl::Buffer>(c.bytes());
    ocl::KernelArgs args = compiler::makeKernelArgs(
        *rule, cBuf, {aBuf, bBuf}, c.width(), c.height(),
        c.fullRegion(), {{a.width(), a.height()}, {b.width(), b.height()}},
        {a.width()});
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    device.launch(*kernels.global, args,
                  ocl::NDRange(c.width(), c.height(), lws, 1));
    std::memcpy(c.data(), cBuf->raw(), static_cast<size_t>(c.bytes()));
}

void
dispatchMM(const tuner::Config &config, const std::string &prefix,
           const MatrixD &a, const MatrixD &b, MatrixD &c)
{
    int64_t n = c.width();
    int alg =
        (n <= kLeafSize || n % 2 != 0)
            ? kMmNaive
            : config.selector(prefix + ".mm.algorithm").select(n);
    switch (alg) {
      case kMmLapack:
        blas::gemm(a, b, c);
        return;
      case kMmNaive:
        naiveMM(a, b, c);
        return;
      case kMmBlocked:
        blas::gemm(a, b, c); // blocked native path
        return;
      case kMmOpenCl:
        openclMM(a, b, c,
                 static_cast<int>(
                     config.tunableValue(prefix + ".mm.lws")));
        return;
      case kMmRecursive8: {
        for (int qy = 0; qy < 2; ++qy)
            for (int qx = 0; qx < 2; ++qx) {
                MatrixD p1(n / 2, n / 2), p2(n / 2, n / 2);
                dispatchMM(config, prefix, quadrant(a, 0, qy),
                           quadrant(b, qx, 0), p1);
                dispatchMM(config, prefix, quadrant(a, 1, qy),
                           quadrant(b, qx, 1), p2);
                placeQuadrant(c, addM(p1, p2), qx, qy);
            }
        return;
      }
      case kMmStrassen: {
        MatrixD a11 = quadrant(a, 0, 0), a12 = quadrant(a, 1, 0);
        MatrixD a21 = quadrant(a, 0, 1), a22 = quadrant(a, 1, 1);
        MatrixD b11 = quadrant(b, 0, 0), b12 = quadrant(b, 1, 0);
        MatrixD b21 = quadrant(b, 0, 1), b22 = quadrant(b, 1, 1);
        int64_t h = n / 2;
        MatrixD m1(h, h), m2(h, h), m3(h, h), m4(h, h), m5(h, h),
            m6(h, h), m7(h, h);
        dispatchMM(config, prefix, addM(a11, a22), addM(b11, b22), m1);
        dispatchMM(config, prefix, addM(a21, a22), b11, m2);
        dispatchMM(config, prefix, a11, subM(b12, b22), m3);
        dispatchMM(config, prefix, a22, subM(b21, b11), m4);
        dispatchMM(config, prefix, addM(a11, a12), b22, m5);
        dispatchMM(config, prefix, subM(a21, a11), addM(b11, b12), m6);
        dispatchMM(config, prefix, subM(a12, a22), addM(b21, b22), m7);
        placeQuadrant(c, addM(subM(addM(m1, m4), m5), m7), 0, 0);
        placeQuadrant(c, addM(m3, m5), 1, 0);
        placeQuadrant(c, addM(m2, m4), 0, 1);
        placeQuadrant(c, addM(subM(addM(m1, m3), m2), m6), 1, 1);
        return;
      }
      default:
        PB_PANIC("bad matmul algorithm " << alg);
    }
}

const char *
mmAlgName(int alg)
{
    switch (alg) {
      case kMmLapack: return "LAPACK";
      case kMmRecursive8: return "8-way recursive";
      case kMmStrassen: return "Strassen";
      case kMmBlocked: return "blocked";
      case kMmNaive: return "naive";
      case kMmOpenCl: return "data-parallel OpenCL";
    }
    return "?";
}

} // namespace

void
addMatmulChoices(tuner::Config &config, const std::string &prefix)
{
    config.addSelector(
        tuner::Selector(prefix + ".mm.algorithm", kMmAlgCount, kMmNaive));
    config.addTunable({prefix + ".mm.lws", 1, 1024, 64, false});
}

double
modelMatmulSeconds(const tuner::Config &config, const std::string &prefix,
                   int64_t n, const sim::MachineProfile &machine,
                   double localityPenalty)
{
    WorkSpan ws = modelMM(config, prefix, n, machine, localityPenalty);
    int workers = std::min(machine.workerThreads, machine.cpu.cores);
    return std::max(ws.work / workers, ws.span);
}

MatmulChoiceIds
matmulChoiceIds(const tuner::Config &config, const std::string &prefix)
{
    return {config.selectorIndex(prefix + ".mm.algorithm"),
            config.tunableIndex(prefix + ".mm.lws")};
}

MatmulLevelModel::MatmulLevelModel(int64_t n,
                                   const sim::MachineProfile &machine,
                                   double localityPenalty)
    : machine_(machine), localityPenalty_(localityPenalty)
{
    workers_ = std::min(machine.workerThreads, machine.cpu.cores);
    double rate = machine.cpu.gflopsPerCore * 1e9;
    double memRate = machine.cpu.memBandwidthGBs * 1e9 / localityPenalty;
    double libRate = machine.blasSpeedup * rate *
                     std::min(machine.blasThreads, machine.cpu.cores);

    // Every constant below is the exact expression modelMMT evaluates
    // at that level, so composing them reproduces it bit-for-bit.
    for (int64_t s = n;; s /= 2) {
        Level level;
        level.size = s;
        double dn = static_cast<double>(s);
        {
            double flops = 2.0 * dn * dn * dn;
            double bytes = 3.0 * 8.0 * dn * dn;
            double t = std::max(flops / libRate, bytes / memRate);
            level.lapackWork = t * machine.blasThreads;
            level.lapackSpan = t;
        }
        {
            double flops = 2.0 * dn * dn * dn;
            double t = std::max(flops / rate,
                                3.0 * 8.0 * dn * dn / memRate);
            level.naiveWork = t;
            level.naiveSpan = t / workers_;
        }
        {
            double flops = 2.0 * dn * dn * dn / 1.5;
            double t = std::max(flops / rate,
                                3.0 * 8.0 * dn * dn / memRate);
            level.blockedWork = t;
            level.blockedSpan = t / workers_;
        }
        level.r8Combine = 2.0 * dn * dn / rate;
        level.r8CombineOverWorkers = level.r8Combine / workers_;
        level.r8Shuffle = kDecompBytesPerN2 * dn * dn / memRate;
        level.stAdds = 9.0 * dn * dn / rate;
        level.stAddsOverWorkers = level.stAdds / workers_;
        level.stShuffle = 1.5 * kDecompBytesPerN2 * dn * dn / memRate;
        levels_.push_back(level);
        if (s <= kLeafSize)
            break;
    }
}

double
MatmulLevelModel::seconds(const tuner::Selector &algorithm,
                          int lws) const
{
    // The recursion of modelMMT over precomputed level constants.
    struct Eval
    {
        const MatmulLevelModel &model;
        const tuner::Selector &algorithm;
        int lws;

        WorkSpan
        at(size_t i) const
        {
            const Level &level = model.levels_[i];
            int alg = level.size <= kLeafSize
                          ? kMmNaive
                          : algorithm.select(level.size);
            switch (alg) {
              case kMmLapack:
                return {level.lapackWork, level.lapackSpan};
              case kMmNaive:
                return {level.naiveWork, level.naiveSpan};
              case kMmBlocked:
                return {level.blockedWork, level.blockedSpan};
              case kMmRecursive8: {
                WorkSpan child = at(i + 1);
                return {8 * child.work + level.r8Combine +
                            level.r8Shuffle,
                        child.span + level.r8CombineOverWorkers +
                            level.r8Shuffle};
              }
              case kMmStrassen: {
                WorkSpan child = at(i + 1);
                return {7 * child.work + level.stAdds +
                            level.stShuffle,
                        child.span + level.stAddsOverWorkers +
                            level.stShuffle};
              }
              case kMmOpenCl: {
                double t = opencilMatmulSecondsT(
                    [this] { return lws; }, level.size, model.machine_,
                    model.localityPenalty_);
                return {t, t};
              }
              default:
                PB_PANIC("bad matmul algorithm " << alg);
            }
        }
    };

    WorkSpan ws = Eval{*this, algorithm, lws}.at(0);
    return std::max(ws.work / workers_, ws.span);
}

std::vector<std::string>
matmulKernelSources(const tuner::Config &config, const std::string &prefix,
                    int64_t n)
{
    for (int64_t s = n; s > kLeafSize; s /= 2)
        if (config.selector(prefix + ".mm.algorithm").select(s) ==
            kMmOpenCl)
            return {"pbcl:MatMul:global"};
    return {};
}

int
matmulKernelCount(const tuner::Config &config, const std::string &prefix,
                  int64_t n)
{
    const tuner::Selector &algorithm =
        config.selector(prefix + ".mm.algorithm");
    for (int64_t s = n; s > kLeafSize; s /= 2)
        if (algorithm.select(s) == kMmOpenCl)
            return 1;
    return 0;
}

void
runMatmul(const tuner::Config &config, const std::string &prefix,
          const MatrixD &a, const MatrixD &b, MatrixD &c)
{
    PB_ASSERT(a.width() == b.height() && c.width() == b.width() &&
                  c.height() == a.height(),
              "matmul shape mismatch");
    dispatchMM(config, prefix, a, b, c);
}

std::string
describeMatmul(const tuner::Config &config, const std::string &prefix,
               int64_t n)
{
    const tuner::Selector &s =
        config.selector(prefix + ".mm.algorithm");
    std::string out;
    int last = -1;
    for (int64_t size = n; size > kLeafSize; size /= 2) {
        int alg = s.select(size);
        if (alg != last) {
            if (!out.empty())
                out += ", then ";
            out += mmAlgName(alg);
            if (size != n)
                out += " below " + std::to_string(size + 1);
            last = alg;
        }
        if (alg == kMmLapack || alg == kMmOpenCl || alg == kMmNaive ||
            alg == kMmBlocked)
            break; // non-recursive: smaller sizes never consulted
    }
    return out.empty() ? "naive" : out;
}

namespace {

/** The Strassen transform: C = A * B through the poly-algorithm. */
std::shared_ptr<lang::Transform>
makeStrassenTransform(const ChoiceFilePtr &choices)
{
    auto t = std::make_shared<lang::Transform>("Strassen");
    t->slot("A", lang::SlotRole::Input)
        .slot("B", lang::SlotRole::Input)
        .slot("C", lang::SlotRole::Output);
    auto rule = lang::RuleDef::makeRegion(
        "MatMulPoly", "C", {"A", "B"},
        [choices](lang::RuleDef::RegionRunArgs &args) {
            runMatmul(choices->get(), "Strassen", args.inputs[0],
                      args.inputs[1], args.output);
        },
        [](const Region &region, const lang::ParamEnv &) {
            // ~2 n^3 flops; the choice-aware model lives in evaluate().
            double n = static_cast<double>(region.w);
            sim::CostReport cost;
            cost.flops = 2.0 * n * n * n;
            return cost;
        });
    t->choice("poly", {rule});
    return t;
}

} // namespace

StrassenBenchmark::StrassenBenchmark()
    : choices_(std::make_shared<ChoiceFile>()),
      transform_(makeStrassenTransform(choices_))
{}

lang::Binding
StrassenBenchmark::makeBinding(int64_t n, Rng &rng) const
{
    lang::Binding binding;
    MatrixD a(n, n), b(n, n);
    for (int64_t i = 0; i < a.size(); ++i) {
        a[i] = rng.uniformReal(-1.0, 1.0);
        b[i] = rng.uniformReal(-1.0, 1.0);
    }
    binding.matrices.emplace("A", a);
    binding.matrices.emplace("B", b);
    binding.matrices.emplace("C", MatrixD(n, n));
    return binding;
}

compiler::TransformConfig
StrassenBenchmark::planFor(const tuner::Config &config, int64_t n) const
{
    (void)n;
    choices_->arm(config);
    compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages = {compiler::StageConfig{}}; // region rule: CPU native
    return plan;
}

double
StrassenBenchmark::checkOutput(const lang::Binding &binding) const
{
    const MatrixD &a = binding.matrix("A");
    const MatrixD &b = binding.matrix("B");
    MatrixD ref(a.width(), a.height());
    blas::gemm(a, b, ref);
    return maxAbsDiff(binding.matrix("C"), ref);
}

tuner::Config
StrassenBenchmark::seedConfig() const
{
    tuner::Config config;
    addMatmulChoices(config, "Strassen");
    return config;
}

double
StrassenBenchmark::evaluate(const tuner::Config &config, int64_t n,
                            const sim::MachineProfile &machine) const
{
    return modelMatmulSeconds(config, "Strassen", n, machine);
}

namespace {

/** Pre-resolved config positions + level constants (Benchmark docs). */
struct StrassenEvalContext : apps::EvalContext
{
    MatmulChoiceIds mm;
    MatmulLevelModel model;

    StrassenEvalContext(const tuner::Config &schema, int64_t n,
                        const sim::MachineProfile &machine)
        : mm(matmulChoiceIds(schema, "Strassen")), model(n, machine)
    {}
};

} // namespace

apps::EvalContextPtr
StrassenBenchmark::makeEvalContext(
    int64_t n, const sim::MachineProfile &machine) const
{
    return std::make_shared<StrassenEvalContext>(seedConfig(), n,
                                                 machine);
}

double
StrassenBenchmark::evaluate(const tuner::Config &config, int64_t n,
                            const sim::MachineProfile &machine,
                            const EvalContext *ctx) const
{
    if (ctx == nullptr)
        return evaluate(config, n, machine);
    const auto &strassen =
        static_cast<const StrassenEvalContext &>(*ctx);
    return strassen.model.seconds(
        config.selectorAt(strassen.mm.algorithm),
        static_cast<int>(config.tunableValueAt(strassen.mm.lws)));
}

std::vector<std::string>
StrassenBenchmark::kernelSources(const tuner::Config &config,
                                 int64_t n) const
{
    return matmulKernelSources(config, "Strassen", n);
}

int
StrassenBenchmark::kernelCount(const tuner::Config &config,
                               int64_t n) const
{
    return matmulKernelCount(config, "Strassen", n);
}

std::string
StrassenBenchmark::describeConfig(const tuner::Config &config,
                                  int64_t n) const
{
    return describeMatmul(config, "Strassen", n);
}

double
StrassenBenchmark::handCodedMatmulSeconds(int64_t n,
                                          const sim::MachineProfile &m)
{
    if (!m.hasOpenCL)
        return std::numeric_limits<double>::infinity();
    // 16x16 local-memory tiles accumulating partial outputs in the
    // scratchpad: global traffic drops to 2n^3/16, the rest rides the
    // local-memory path.
    double dn = static_cast<double>(n);
    sim::CostReport cost;
    cost.flops = 2.0 * dn * dn * dn;
    cost.globalBytesRead = 2.0 * dn * dn * dn * 8.0 / 16.0;
    cost.globalBytesWritten = dn * dn * 8.0;
    cost.localBytes = 2.0 * dn * dn * dn * 8.0 / 4.0;
    cost.barriers = dn * dn / 256.0 * (dn / 16.0);
    double kernel = sim::CostModel::kernelSeconds(m.ocl, cost, 256);
    return m.transfer.seconds(3.0 * 8.0 * dn * dn) + kernel;
}

} // namespace apps
} // namespace petabricks
