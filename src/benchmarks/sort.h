/**
 * @file
 * Sort benchmark (paper Figure 7(d)).
 *
 * Seven sorting algorithms — insertion, selection, quick, radix, 2-way
 * merge, 4-way merge, and OpenCL bitonic — composed by a selector into
 * a poly-algorithm that changes technique at recursive call sites. The
 * merge sorts additionally choose sequential vs. parallel merge via a
 * size cutoff. The paper's finding: none of the natively tuned configs
 * use the GPU for the main sorting routine, and the CPU-side choices
 * alone span a 2.6x performance range across machines.
 */

#ifndef PETABRICKS_BENCHMARKS_SORT_H
#define PETABRICKS_BENCHMARKS_SORT_H

#include <vector>

#include "benchmarks/benchmark.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/** Algorithm ids of the Sort selector. */
enum SortAlg
{
    kSortInsertion = 0,
    kSortSelection = 1,
    kSortQuick = 2,
    kSortRadix = 3,
    kSortMerge2 = 4,
    kSortMerge4 = 5,
    kSortBitonicGpu = 6,
    kSortAlgCount = 7,
};

/** See file comment. */
class SortBenchmark : public Benchmark
{
  public:
    SortBenchmark();

    std::string name() const override { return "Sort"; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    EvalContextPtr
    makeEvalContext(int64_t n,
                    const sim::MachineProfile &machine) const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine,
                    const EvalContext *ctx) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int kernelCount(const tuner::Config &config,
                    int64_t n) const override;
    int64_t testingInputSize() const override { return 1 << 20; }
    int openclKernelCount() const override { return 7; }
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    // Real-mode surface: a single region rule sorting In into Out with
    // the poly-algorithm the armed choice file selects.
    bool supportsRealMode() const override { return true; }

    /** The poly-algorithm arms a shared ChoiceFile in planFor(), so
     * concurrent engine instances would clobber each other's plan. */
    bool realModeConcurrencySafe() const override { return false; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    int64_t realModeProbeSize() const override { return 4096; }

    /**
     * Execute the poly-algorithm @p config selects on @p data (real
     * mode; used by tests and examples). The bitonic choice runs on the
     * emulated OpenCL device.
     */
    static void sortWithConfig(const tuner::Config &config,
                               std::vector<double> &data);

    /** The paper's hand-written "GPU-only Config" (bitonic OpenCL). */
    static tuner::Config gpuOnlyConfig();

    /**
     * Modeled seconds of the NVIDIA-SDK-style hand-coded radix sort on
     * the machine's OpenCL device (the Figure 7(d) baseline).
     */
    static double handCodedRadixSeconds(int64_t n,
                                        const sim::MachineProfile &m);

  private:
    ChoiceFilePtr choices_;
    std::shared_ptr<lang::Transform> transform_;
};

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_SORT_H
