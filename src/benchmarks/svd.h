/**
 * @file
 * SVD benchmark: variable-accuracy matrix approximation (Figure 7(f)).
 *
 * Approximates an n x n matrix A through a truncated factorization
 * that consumes less space: B = A^T A is formed with the matmul
 * sub-transform (the Strassen benchmark's machinery under the "SVD"
 * selector prefix, with a data-locality penalty because the multiplies
 * operate on sub-regions of larger arrays — the paper's observation
 * that the best matmul configuration differs inside SVD), B is
 * eigendecomposed by cyclic Jacobi sweeps on the CPU, and A is
 * projected onto the leading k right-singular directions.
 *
 * Variable accuracy: the rank fraction k is a tuned choice; candidate
 * configurations that miss the accuracy target evaluate to +inf, so
 * the autotuner must produce an algorithm that meets the target
 * (Section 6.2's description of the variable-accuracy mechanism).
 *
 * The first phase offers task parallelism: computing the two halves of
 * B concurrently, one on the GPU and one on the CPU — the Desktop
 * config's "task parallelism between CPU/GPU".
 */

#ifndef PETABRICKS_BENCHMARKS_SVD_H
#define PETABRICKS_BENCHMARKS_SVD_H

#include "benchmarks/benchmark.h"
#include "support/matrix.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/** Phase-1 placement ids. */
enum SvdPhase1
{
    kSvdPhase1Cpu = 0,
    kSvdPhase1TaskParallel = 1, // GPU computes one half, CPU the other
};

/** See file comment. */
class SvdBenchmark : public Benchmark
{
  public:
    /** @param accuracyTarget max relative Frobenius error allowed. */
    explicit SvdBenchmark(double accuracyTarget = 0.30);

    std::string name() const override { return "SVD"; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    EvalContextPtr
    makeEvalContext(int64_t n,
                    const sim::MachineProfile &machine) const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine,
                    const EvalContext *ctx) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int kernelCount(const tuner::Config &config,
                    int64_t n) const override;
    int64_t testingInputSize() const override { return 256; }
    int64_t minTuningSize() const override { return 32; }
    int openclKernelCount() const override { return 2; }
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    double accuracyTarget() const { return accuracyTarget_; }

    /**
     * Real-mode approximation: returns the rank-k approximation of
     * @p a under @p config. @p errorOut (optional) receives the
     * relative Frobenius error.
     */
    MatrixD approximate(const tuner::Config &config, const MatrixD &a,
                        double *errorOut = nullptr) const;

    // Real-mode surface: Ak = rank-k approximation of A via a region
    // rule. checkOutput() returns the relative Frobenius error of the
    // approximation — the benchmark's variable-accuracy residual — so
    // the tolerance is the accuracy target itself.
    bool supportsRealMode() const override { return true; }

    /** The poly-algorithm arms a shared ChoiceFile in planFor(), so
     * concurrent engine instances would clobber each other's plan. */
    bool realModeConcurrencySafe() const override { return false; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    double realModeTolerance() const override { return accuracyTarget_; }
    int64_t realModeProbeSize() const override { return 32; }

    /**
     * Modeled relative error of a rank-(k8/8 * n) approximation under
     * the synthetic exponential spectrum used for tuning.
     */
    static double modeledError(int k8);

    /** Data-locality penalty applied to matmuls inside SVD. */
    static constexpr double kLocalityPenalty = 1.35;

  private:
    double accuracyTarget_;
    ChoiceFilePtr choices_;
    std::shared_ptr<lang::Transform> transform_;
};

/**
 * Cyclic Jacobi eigendecomposition of a symmetric matrix.
 * @param b symmetric input (destroyed); eigenvalues land on the
 *        diagonal.
 * @param v receives the eigenvectors (columns).
 * @param sweeps number of full Jacobi sweeps.
 */
void jacobiEigen(MatrixD &b, MatrixD &v, int sweeps = 12);

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_SVD_H
