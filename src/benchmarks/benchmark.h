/**
 * @file
 * Common interface of the seven paper benchmarks (Section 6).
 *
 * Every benchmark exposes the structure the experiments need:
 *  - a seed tuner configuration (the searchable choice space),
 *  - a model-mode evaluator pricing a configuration on a machine
 *    profile (used by the autotuner and the figure harnesses),
 *  - the kernel-source list for the tuning-time model (Figure 8),
 *  - metadata for the Figure 8 table, and
 *  - a human-readable config summary for the Figure 6 table.
 *
 * Benchmarks also expose a uniform *real-mode* surface — the transform,
 * an input binding, and the stage placement a configuration selects —
 * so that engine::RuntimeEngine can execute any benchmark on the
 * heterogeneous runtime exactly the way engine::ModelEngine prices it
 * on a machine profile (the paper's Section 6 methodology: autotuning
 * against real execution).
 */

#ifndef PETABRICKS_BENCHMARKS_BENCHMARK_H
#define PETABRICKS_BENCHMARKS_BENCHMARK_H

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "compiler/backend.h"
#include "lang/transform.h"
#include "sim/machine.h"
#include "support/error.h"
#include "support/rng.h"
#include "tuner/evolution.h"

namespace petabricks {

namespace engine {
class ExecutionEngine;
} // namespace engine

namespace apps {

/**
 * Runtime choice state shared between planFor() and the region-rule
 * bodies of function-style transforms (Sort, Strassen, SVD,
 * Tridiagonal), whose poly-algorithms consult selectors at every
 * recursive call site. This mirrors the paper's *choice configuration
 * file* (Figure 3): the compiled program reads the autotuner's
 * selectors at startup and dispatches on them while running.
 * planFor() arms the file; the transform's rules read it during
 * execution.
 */
class ChoiceFile
{
  public:
    void
    arm(const tuner::Config &config)
    {
        config_ = std::make_shared<tuner::Config>(config);
    }

    const tuner::Config &
    get() const
    {
        PB_ASSERT(config_ != nullptr,
                  "choice file not armed: call planFor() before "
                  "executing the transform");
        return *config_;
    }

  private:
    std::shared_ptr<const tuner::Config> config_;
};

using ChoiceFilePtr = std::shared_ptr<ChoiceFile>;

/**
 * Opaque config-invariant evaluation state a benchmark precomputes per
 * (input size, machine) — the model-mode fast path's unit of sharing.
 * Transform-style benchmarks wrap a compiler::EvaluationContext;
 * analytic benchmarks cache selector/tunable positions. Contexts are
 * immutable once built, so one context may serve a whole parallel
 * batch.
 */
class EvalContext
{
  public:
    virtual ~EvalContext() = default;
};

using EvalContextPtr = std::shared_ptr<const EvalContext>;

/** See file comment. */
class Benchmark
{
  public:
    Benchmark() : instanceId_(nextInstanceId()) {}

    /** Copies are distinct instances (see instanceId()). */
    Benchmark(const Benchmark &) : instanceId_(nextInstanceId()) {}
    Benchmark &operator=(const Benchmark &) { return *this; }

    virtual ~Benchmark() = default;

    /**
     * Process-unique identity of this benchmark *instance*. Engines
     * key per-(benchmark, n) evaluation-context memos on it instead of
     * the object address, so a destroyed benchmark whose address is
     * reused can never be served another instance's context.
     */
    uint64_t instanceId() const { return instanceId_; }

    /** Display name, as in the paper's tables. */
    virtual std::string name() const = 0;

    /** Structurally complete starting configuration. */
    virtual tuner::Config seedConfig() const = 0;

    /**
     * Modeled execution seconds of @p config at input size @p n on
     * @p machine; +inf for infeasible configurations.
     *
     * This overload is the *reference path*: every call rebuilds the
     * config-invariant scaffolding from scratch. The engines evaluate
     * through the context overload below; this one is the executable
     * spec the golden-equality tests compare against.
     */
    virtual double evaluate(const tuner::Config &config, int64_t n,
                            const sim::MachineProfile &machine) const = 0;

    /**
     * Precompute the config-invariant evaluation state for
     * (@p n, @p machine): slot extents, access-region geometry,
     * transform structure, selector/tunable positions. Built once per
     * evaluateBatch/generation by engine::ModelEngine and shared by
     * every candidate of the batch. Default: nullptr (no fast path;
     * the context overload of evaluate() then uses the reference
     * path).
     */
    virtual EvalContextPtr
    makeEvalContext(int64_t n, const sim::MachineProfile &machine) const
    {
        (void)n;
        (void)machine;
        return nullptr;
    }

    /**
     * Fast-path evaluate(): identical result to the reference overload
     * (bit-for-bit, including thrown FatalErrors), but sharing the
     * config-invariant work in @p ctx. @p ctx must come from
     * makeEvalContext(n, machine) of this benchmark, or be nullptr to
     * fall back to the reference path.
     */
    virtual double
    evaluate(const tuner::Config &config, int64_t n,
             const sim::MachineProfile &machine,
             const EvalContext *ctx) const
    {
        (void)ctx;
        return evaluate(config, n, machine);
    }

    /** Kernel source identities @p config JIT-compiles. */
    virtual std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const
    {
        (void)config;
        (void)n;
        return {};
    }

    /**
     * Number of kernel sources @p config JIT-compiles — what
     * engine::RunResult reports. Benchmarks whose kernelSources()
     * synthesizes source identities should override this with a
     * count-only path; the default falls back to sources.
     */
    virtual int
    kernelCount(const tuner::Config &config, int64_t n) const
    {
        return static_cast<int>(kernelSources(config, n).size());
    }

    /** Figure 8: the "Testing Input Size" column. */
    virtual int64_t testingInputSize() const = 0;

    /** Smallest input size worth testing during tuning. */
    virtual int64_t minTuningSize() const { return 256; }

    /** Figure 8: synthetic OpenCL kernels the compiler generates. */
    virtual int openclKernelCount() const = 0;

    /** Figure 6: one-line summary of what @p config chose. */
    virtual std::string describeConfig(const tuner::Config &config,
                                       int64_t n) const = 0;

    // ---- Real-mode surface (engine::RuntimeEngine) --------------------

    /** True if the benchmark implements the real-mode surface below. */
    virtual bool supportsRealMode() const { return false; }

    /** The transform real mode executes. Requires supportsRealMode(). */
    virtual const lang::Transform &transform() const;

    /** Bind random inputs for size @p n. Requires supportsRealMode(). */
    virtual lang::Binding makeBinding(int64_t n, Rng &rng) const;

    /**
     * Stage placement @p config selects at size @p n. Function-style
     * benchmarks also arm their ChoiceFile here, so call planFor()
     * before executing the transform. Requires supportsRealMode().
     */
    virtual compiler::TransformConfig
    planFor(const tuner::Config &config, int64_t n) const;

    /**
     * Residual of @p binding's outputs against the benchmark's
     * reference implementation, after a real run (max absolute
     * difference, or relative error for variable-accuracy benchmarks).
     * Requires supportsRealMode().
     */
    virtual double checkOutput(const lang::Binding &binding) const;

    /** Residual bound a correct real run must stay under. */
    virtual double realModeTolerance() const { return 1e-9; }

    /**
     * True if independent engine instances may execute this
     * benchmark's real-mode surface concurrently (engine::EnginePool's
     * fan-out). Function-style benchmarks share one ChoiceFile between
     * planFor() and their region-rule bodies, so a concurrent plan
     * would re-arm the file mid-run; they return false and pooled
     * batches degrade to serial. Model-mode evaluation (evaluate(),
     * kernelSources()) is const and must always be thread-safe.
     */
    virtual bool realModeConcurrencySafe() const { return true; }

    /**
     * Input size for real-mode smoke runs: large enough to exercise
     * every stage, small enough that the emulated device stays fast.
     */
    virtual int64_t realModeProbeSize() const { return minTuningSize(); }

  private:
    static uint64_t nextInstanceId();

    uint64_t instanceId_;
};

using BenchmarkPtr = std::shared_ptr<Benchmark>;

/** Largest absolute elementwise difference (residual helper). */
inline double
maxAbsDiff(const MatrixD &a, const MatrixD &b)
{
    PB_ASSERT(a.width() == b.width() && a.height() == b.height(),
              "residual shape mismatch: " << a.width() << "x"
                                          << a.height() << " vs "
                                          << b.width() << "x"
                                          << b.height());
    double worst = 0.0;
    for (int64_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

/**
 * Autotune @p benchmark against @p engine (model-mode pricing or real
 * execution — the paper's actual methodology). Deterministic for a
 * given seed when the engine is.
 */
tuner::TuningResult tuneWithEngine(const Benchmark &benchmark,
                                   engine::ExecutionEngine &engine,
                                   tuner::TunerOptions options);

/** tuneWithEngine() with the benchmark's default search sizing. */
tuner::TuningResult tuneWithEngine(const Benchmark &benchmark,
                                   engine::ExecutionEngine &engine,
                                   uint64_t seed = 20130316);

/**
 * Autotune @p benchmark for @p machine (the experiment's "X Config"
 * step): tuneWithEngine() over a ModelEngine for the profile.
 * Deterministic for a given seed.
 */
tuner::TuningResult tuneOnMachine(const Benchmark &benchmark,
                                  const sim::MachineProfile &machine,
                                  uint64_t seed = 20130316);

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_BENCHMARK_H
