/**
 * @file
 * Common interface of the seven paper benchmarks (Section 6).
 *
 * Every benchmark exposes the structure the experiments need:
 *  - a seed tuner configuration (the searchable choice space),
 *  - a model-mode evaluator pricing a configuration on a machine
 *    profile (used by the autotuner and the figure harnesses),
 *  - the kernel-source list for the tuning-time model (Figure 8),
 *  - metadata for the Figure 8 table, and
 *  - a human-readable config summary for the Figure 6 table.
 *
 * Functional (real-mode) implementations and their correctness tests
 * live with each benchmark's own header.
 */

#ifndef PETABRICKS_BENCHMARKS_BENCHMARK_H
#define PETABRICKS_BENCHMARKS_BENCHMARK_H

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "compiler/backend.h"
#include "sim/machine.h"
#include "support/error.h"
#include "tuner/evolution.h"

namespace petabricks {
namespace apps {

/** See file comment. */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    /** Display name, as in the paper's tables. */
    virtual std::string name() const = 0;

    /** Structurally complete starting configuration. */
    virtual tuner::Config seedConfig() const = 0;

    /**
     * Modeled execution seconds of @p config at input size @p n on
     * @p machine; +inf for infeasible configurations.
     */
    virtual double evaluate(const tuner::Config &config, int64_t n,
                            const sim::MachineProfile &machine) const = 0;

    /** Kernel source identities @p config JIT-compiles. */
    virtual std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const
    {
        (void)config;
        (void)n;
        return {};
    }

    /** Figure 8: the "Testing Input Size" column. */
    virtual int64_t testingInputSize() const = 0;

    /** Smallest input size worth testing during tuning. */
    virtual int64_t minTuningSize() const { return 256; }

    /** Figure 8: synthetic OpenCL kernels the compiler generates. */
    virtual int openclKernelCount() const = 0;

    /** Figure 6: one-line summary of what @p config chose. */
    virtual std::string describeConfig(const tuner::Config &config,
                                       int64_t n) const = 0;
};

using BenchmarkPtr = std::shared_ptr<Benchmark>;

/** tuner::Evaluator binding a benchmark to one machine profile. */
class MachineEvaluator : public tuner::Evaluator
{
  public:
    MachineEvaluator(const Benchmark &benchmark,
                     const sim::MachineProfile &machine)
        : benchmark_(benchmark), machine_(machine)
    {}

    double
    evaluate(const tuner::Config &config, int64_t inputSize) override
    {
        try {
            return benchmark_.evaluate(config, inputSize, machine_);
        } catch (const FatalError &) {
            // Infeasible placement (local memory overflow, inadmissible
            // backend, ...): never selected.
            return std::numeric_limits<double>::infinity();
        }
    }

    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t inputSize) override
    {
        return benchmark_.kernelSources(config, inputSize);
    }

  private:
    const Benchmark &benchmark_;
    const sim::MachineProfile &machine_;
};

/**
 * Autotune @p benchmark for @p machine (the experiment's "X Config"
 * step). Deterministic for a given seed.
 */
tuner::TuningResult tuneOnMachine(const Benchmark &benchmark,
                                  const sim::MachineProfile &machine,
                                  uint64_t seed = 20130316);

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_BENCHMARK_H
