#include "benchmarks/poisson.h"

#include "benchmarks/backend_util.h"
#include "compiler/admissibility.h"
#include "compiler/simulator.h"

namespace petabricks {
namespace apps {

namespace {

using lang::AccessPattern;
using lang::DimAccess;
using lang::ParamEnv;
using lang::PointArgs;
using lang::RuleDef;

/** params: [gridW, gridH, omega * 1e4]. */
double
omegaOf(const PointArgs &pt)
{
    return static_cast<double>(pt.param(2)) * 1e-4;
}

/** Packed red cell (x, y) sits at grid column 2x + (y & 1). */
lang::RulePtr
packRule(const std::string &name, const std::string &outSlot,
         int64_t parity)
{
    return RuleDef::makePoint(
        name, outSlot,
        {AccessPattern{"In", DimAccess::strided(2, 0, 2),
                       DimAccess::window(0, 1)}},
        [parity](const PointArgs &pt) {
            int64_t gx = 2 * pt.x + ((pt.y + parity) & 1);
            return pt.input(0).at(gx, pt.y);
        },
        [](const ParamEnv &) { return 1.0; });
}

/**
 * Red half-sweep: update packed red cells from the packed black buffer
 * (their four grid neighbors) and their own previous value. Boundary
 * cells hold their initial values.
 */
lang::RulePtr
updateRule(const std::string &name, const std::string &outSlot,
           const std::string &ownSlot, const std::string &otherSlot,
           int64_t parity)
{
    return RuleDef::makePoint(
        name, outSlot,
        {AccessPattern{ownSlot, DimAccess::window(0, 1),
                       DimAccess::window(0, 1)},
         AccessPattern{otherSlot, DimAccess::window(-1, 3),
                       DimAccess::window(-1, 3)}},
        [parity](const PointArgs &pt) {
            int64_t w = pt.param(0);
            int64_t h = pt.param(1);
            int64_t gx = 2 * pt.x + ((pt.y + parity) & 1);
            double own = pt.input(0).at(pt.x, pt.y);
            if (gx == 0 || gx == w - 1 || pt.y == 0 || pt.y == h - 1)
                return own;
            // Packed columns of the left/right grid neighbors.
            int64_t xl, xr;
            if (((pt.y + parity) & 1) == 0) {
                xl = pt.x - 1;
                xr = pt.x;
            } else {
                xl = pt.x;
                xr = pt.x + 1;
            }
            double sum = pt.input(1).at(xl, pt.y) +
                         pt.input(1).at(xr, pt.y) +
                         pt.input(1).at(pt.x, pt.y - 1) +
                         pt.input(1).at(pt.x, pt.y + 1);
            double omega = omegaOf(pt);
            return (1.0 - omega) * own + omega * 0.25 * sum;
        },
        [](const ParamEnv &) { return 8.0; });
}

compiler::SlotSizes
poissonSizes(int64_t n, int iterations)
{
    compiler::SlotSizes sizes{{"In", {n, n}}};
    for (int k = 0; k <= iterations; ++k) {
        sizes["Red" + std::to_string(k)] = {n / 2, n};
        sizes["Black" + std::to_string(k)] = {n / 2, n};
    }
    return sizes;
}

/** Config-invariant state shared by a batch (see Benchmark docs). */
struct PoissonEvalContext : apps::EvalContext
{
    compiler::EvaluationContext sim;
    StageChoiceIds split;
    StageChoiceIds iterate;
    size_t chunksTun;

    PoissonEvalContext(
        const std::shared_ptr<lang::Transform> &transform, int64_t n,
        int iterations, const sim::MachineProfile &machine,
        const tuner::Config &schema)
        : sim(transform, poissonSizes(n, iterations), {n, n, 15000},
              machine),
          split(stageChoiceIds(schema, "Poisson.split")),
          iterate(stageChoiceIds(schema, "Poisson.iterate")),
          chunksTun(schema.tunableIndex("Poisson.split.chunks"))
    {}
};

} // namespace

std::shared_ptr<lang::Transform>
makePoissonTransform(int iterations)
{
    PB_ASSERT(iterations >= 1, "need at least one iteration");
    auto t = std::make_shared<lang::Transform>("Poisson2D");
    t->slot("In", lang::SlotRole::Input);
    for (int k = 0; k <= iterations; ++k) {
        auto role = k == iterations ? lang::SlotRole::Output
                                    : lang::SlotRole::Intermediate;
        t->slot("Red" + std::to_string(k), role);
        t->slot("Black" + std::to_string(k), role);
    }
    std::vector<lang::RulePtr> rules;
    rules.push_back(packRule("PackRed", "Red0", 0));
    rules.push_back(packRule("PackBlack", "Black0", 1));
    for (int k = 1; k <= iterations; ++k) {
        std::string rk = "Red" + std::to_string(k);
        std::string rp = "Red" + std::to_string(k - 1);
        std::string bk = "Black" + std::to_string(k);
        std::string bp = "Black" + std::to_string(k - 1);
        // Gauss-Seidel ordering: black half-sweeps read the new red.
        rules.push_back(updateRule("UpdateRed", rk, rp, bp, 0));
        rules.push_back(updateRule("UpdateBlack", bk, bp, rk, 1));
    }
    t->choice("sor", std::move(rules));
    return t;
}

PoissonBenchmark::PoissonBenchmark(int iterations)
    : iterations_(iterations),
      transform_(makePoissonTransform(iterations))
{
}

tuner::Config
PoissonBenchmark::seedConfig() const
{
    tuner::Config config;
    addBackendChoices(config, "Poisson.split", /*hasLocalVariant=*/true);
    addBackendChoices(config, "Poisson.iterate",
                      /*hasLocalVariant=*/true);
    config.addTunable({"Poisson.split.chunks", 1, 256, 16, true});
    return config;
}

compiler::TransformConfig
PoissonBenchmark::planFor(const tuner::Config &config, int64_t n) const
{
    int chunks = static_cast<int>(
        config.tunableValue("Poisson.split.chunks"));
    compiler::StageConfig split =
        stageFor(config, "Poisson.split", n, chunks);
    compiler::StageConfig iterate =
        stageFor(config, "Poisson.iterate", n, chunks);
    compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages = {split, split};
    for (int k = 0; k < iterations_; ++k) {
        plan.stages.push_back(iterate);
        plan.stages.push_back(iterate);
    }
    return plan;
}

double
PoissonBenchmark::evaluate(const tuner::Config &config, int64_t n,
                           const sim::MachineProfile &machine) const
{
    if (n < 8 || n % 2 != 0)
        return std::numeric_limits<double>::infinity();
    auto outcome = compiler::simulateTransform(
        *transform_, planFor(config, n), poissonSizes(n, iterations_),
        {n, n, 15000}, machine);
    return outcome.seconds;
}

apps::EvalContextPtr
PoissonBenchmark::makeEvalContext(int64_t n,
                                  const sim::MachineProfile &machine) const
{
    if (n < 8 || n % 2 != 0)
        return nullptr; // degenerate size: evaluate() is +inf anyway
    return std::make_shared<PoissonEvalContext>(transform_, n,
                                                iterations_, machine,
                                                seedConfig());
}

double
PoissonBenchmark::evaluate(const tuner::Config &config, int64_t n,
                           const sim::MachineProfile &machine,
                           const EvalContext *ctx) const
{
    if (n < 8 || n % 2 != 0)
        return std::numeric_limits<double>::infinity();
    if (ctx == nullptr)
        return evaluate(config, n, machine);
    const auto &poisson =
        static_cast<const PoissonEvalContext &>(*ctx);
    int chunks =
        static_cast<int>(config.tunableValueAt(poisson.chunksTun));
    compiler::StageConfig split =
        stageForIds(config, poisson.split, n, chunks);
    compiler::StageConfig iterate =
        stageForIds(config, poisson.iterate, n, chunks);
    thread_local compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages.clear();
    plan.stages.push_back(split);
    plan.stages.push_back(split);
    for (int k = 0; k < iterations_; ++k) {
        plan.stages.push_back(iterate);
        plan.stages.push_back(iterate);
    }
    return compiler::simulateTransform(poisson.sim, plan).seconds;
}

std::vector<std::string>
PoissonBenchmark::kernelSources(const tuner::Config &config,
                                int64_t n) const
{
    std::vector<std::string> sources;
    compiler::TransformConfig plan = planFor(config, n);
    appendKernelSources(sources, plan.stages[0], "PackRed");
    appendKernelSources(sources, plan.stages[1], "PackBlack");
    if (iterations_ >= 1) {
        appendKernelSources(sources, plan.stages[2], "UpdateRed");
        appendKernelSources(sources, plan.stages[3], "UpdateBlack");
    }
    return sources;
}

int
PoissonBenchmark::kernelCount(const tuner::Config &config,
                              int64_t n) const
{
    compiler::TransformConfig plan = planFor(config, n);
    int count = stageKernelCount(plan.stages[0]) +
                stageKernelCount(plan.stages[1]);
    if (iterations_ >= 1)
        count += stageKernelCount(plan.stages[2]) +
                 stageKernelCount(plan.stages[3]);
    return count;
}

int
PoissonBenchmark::openclKernelCount() const
{
    // Count distinct rule names, not unrolled stages.
    auto tiny = makePoissonTransform(1);
    return compiler::countSynthesizedKernels(*tiny);
}

std::string
PoissonBenchmark::describeConfig(const tuner::Config &config,
                                 int64_t n) const
{
    compiler::TransformConfig plan = planFor(config, n);
    return "split on " + describeStage(plan.stages[0]) +
           " followed by compute on " + describeStage(plan.stages[2]);
}

lang::Binding
PoissonBenchmark::makeBinding(int64_t n, Rng &rng) const
{
    PB_ASSERT(n % 2 == 0, "grid width must be even");
    lang::Binding binding;
    MatrixD grid(n, n);
    for (int64_t i = 0; i < grid.size(); ++i)
        grid[i] = rng.uniformReal(-1.0, 1.0);
    binding.matrices.emplace("In", grid);
    for (int k = 0; k <= iterations_; ++k) {
        binding.matrices.emplace("Red" + std::to_string(k),
                                 MatrixD(n / 2, n));
        binding.matrices.emplace("Black" + std::to_string(k),
                                 MatrixD(n / 2, n));
    }
    binding.params = {n, n,
                      static_cast<int64_t>(kOmega * 1e4)};
    return binding;
}

MatrixD
PoissonBenchmark::reference(const MatrixD &grid, int iterations,
                            double omega)
{
    MatrixD g = grid.clone();
    int64_t w = g.width(), h = g.height();
    for (int it = 0; it < iterations; ++it) {
        for (int color = 0; color < 2; ++color) {
            for (int64_t y = 1; y < h - 1; ++y) {
                for (int64_t x = 1; x < w - 1; ++x) {
                    if (((x + y) & 1) != color)
                        continue;
                    double sum = g.at(x - 1, y) + g.at(x + 1, y) +
                                 g.at(x, y - 1) + g.at(x, y + 1);
                    g.at(x, y) =
                        (1.0 - omega) * g.at(x, y) + omega * 0.25 * sum;
                }
            }
        }
    }
    return g;
}

MatrixD
PoissonBenchmark::unpackResult(const lang::Binding &binding) const
{
    const MatrixD &red =
        binding.matrix("Red" + std::to_string(iterations_));
    const MatrixD &black =
        binding.matrix("Black" + std::to_string(iterations_));
    int64_t w = red.width() * 2;
    int64_t h = red.height();
    MatrixD grid(w, h);
    for (int64_t y = 0; y < h; ++y)
        for (int64_t x = 0; x < w / 2; ++x) {
            grid.at(2 * x + (y & 1), y) = red.at(x, y);
            grid.at(2 * x + ((y + 1) & 1), y) = black.at(x, y);
        }
    return grid;
}

double
PoissonBenchmark::checkOutput(const lang::Binding &binding) const
{
    // The rules only write the packed Red/Black slots, so the bound
    // input grid still holds the initial state.
    MatrixD ref = reference(binding.matrix("In"), iterations_, kOmega);
    return maxAbsDiff(unpackResult(binding), ref);
}

tuner::Config
PoissonBenchmark::cpuOnlyConfig()
{
    PoissonBenchmark proto(1);
    tuner::Config config = proto.seedConfig();
    int cpu = backendAlg(compiler::Backend::Cpu);
    config.selector("Poisson.split.backend").setAlgorithm(0, cpu);
    config.selector("Poisson.iterate.backend").setAlgorithm(0, cpu);
    return config;
}

} // namespace apps
} // namespace petabricks
