#include "benchmarks/benchmark.h"

namespace petabricks {
namespace apps {

tuner::TuningResult
tuneOnMachine(const Benchmark &benchmark,
              const sim::MachineProfile &machine, uint64_t seed)
{
    MachineEvaluator evaluator(benchmark, machine);
    tuner::TunerOptions options;
    options.seed = seed ^ std::hash<std::string>()(machine.name);
    options.minInputSize = benchmark.minTuningSize();
    options.maxInputSize = benchmark.testingInputSize();
    options.kernelCompileSeconds = machine.kernelCompileSeconds;
    options.irCacheSavings = machine.irCacheSavings;
    tuner::EvolutionaryTuner tuner(evaluator, benchmark.seedConfig(),
                                   options);
    return tuner.run();
}

} // namespace apps
} // namespace petabricks
