#include "benchmarks/benchmark.h"

#include <atomic>

#include "engine/execution_engine.h"
#include "tuner/session.h"

namespace petabricks {
namespace apps {

uint64_t
Benchmark::nextInstanceId()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

// ---- Default real-mode surface (benchmarks must opt in) ----------------

const lang::Transform &
Benchmark::transform() const
{
    PB_FATAL("benchmark '" << name()
                           << "' has no real-mode transform");
}

lang::Binding
Benchmark::makeBinding(int64_t n, Rng &rng) const
{
    (void)n;
    (void)rng;
    PB_FATAL("benchmark '" << name()
                           << "' has no real-mode binding");
}

compiler::TransformConfig
Benchmark::planFor(const tuner::Config &config, int64_t n) const
{
    (void)config;
    (void)n;
    PB_FATAL("benchmark '" << name() << "' has no real-mode plan");
}

double
Benchmark::checkOutput(const lang::Binding &binding) const
{
    (void)binding;
    PB_FATAL("benchmark '" << name()
                           << "' has no real-mode reference check");
}

// ---- Engine-driven autotuning ------------------------------------------

tuner::TuningResult
tuneWithEngine(const Benchmark &benchmark,
               engine::ExecutionEngine &engine,
               tuner::TunerOptions options)
{
    if (!engine.supports(benchmark))
        PB_FATAL("engine '" << engine.name()
                            << "' cannot evaluate benchmark '"
                            << benchmark.name() << "'");
    engine::EngineEvaluator evaluator(benchmark, engine);
    tuner::TuningSession session(evaluator, benchmark.seedConfig(),
                                 options);
    return session.run();
}

tuner::TuningResult
tuneWithEngine(const Benchmark &benchmark,
               engine::ExecutionEngine &engine, uint64_t seed)
{
    tuner::TunerOptions options;
    options.seed = seed;
    options.minInputSize = benchmark.minTuningSize();
    options.maxInputSize = benchmark.testingInputSize();
    engine.configureTuner(options);
    return tuneWithEngine(benchmark, engine, options);
}

tuner::TuningResult
tuneOnMachine(const Benchmark &benchmark,
              const sim::MachineProfile &machine, uint64_t seed)
{
    engine::ModelEngine engine(machine);
    return tuneWithEngine(benchmark, engine,
                          seed ^ std::hash<std::string>()(machine.name));
}

} // namespace apps
} // namespace petabricks
