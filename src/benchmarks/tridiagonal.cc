#include "benchmarks/tridiagonal.h"

#include <cmath>

#include "ocl/device.h"
#include "sim/cost_model.h"

namespace petabricks {
namespace apps {

namespace {

/**
 * Model constants. Divisions in the Thomas recurrence form a dependent
 * chain that neither pipelines nor vectorizes, so they are charged as
 * kDivFlopEquiv scalar-flop equivalents and the whole solve runs at
 * kChainRate of peak.
 */
constexpr double kDivFlopEquiv = 60.0;
constexpr double kThomasOps = 14.0 + 2.0 * kDivFlopEquiv;
constexpr double kChainRate = 0.5;
constexpr double kThomasBytes = 56.0; // per unknown, through caches
constexpr double kCrOpsCpu = 23.0 + 3.0 * kDivFlopEquiv;
constexpr double kCrFlopsGpu = 14.0;  // GPU divide throughput is high
constexpr double kCrBytesGpu = 120.0; // per item, global-memory CR

/** Thomas solve of one system (a: sub, b: diag, c: super, d: rhs). */
void
thomasRow(const double *a, const double *b, const double *c,
          const double *d, double *x, int64_t n)
{
    std::vector<double> cp(static_cast<size_t>(n));
    std::vector<double> dp(static_cast<size_t>(n));
    cp[0] = c[0] / b[0];
    dp[0] = d[0] / b[0];
    for (int64_t i = 1; i < n; ++i) {
        double m = b[i] - a[i] * cp[static_cast<size_t>(i - 1)];
        cp[static_cast<size_t>(i)] = c[i] / m;
        dp[static_cast<size_t>(i)] =
            (d[i] - a[i] * dp[static_cast<size_t>(i - 1)]) / m;
    }
    x[n - 1] = dp[static_cast<size_t>(n - 1)];
    for (int64_t i = n - 2; i >= 0; --i)
        x[i] = dp[static_cast<size_t>(i)] -
               cp[static_cast<size_t>(i)] * x[i + 1];
}

/** Recursive cyclic reduction of one system (n a power of two). */
void
cyclicReduceRow(std::vector<double> a, std::vector<double> b,
                std::vector<double> c, std::vector<double> d, double *x,
                int64_t n)
{
    if (n == 1) {
        x[0] = d[0] / b[0];
        return;
    }
    int64_t half = n / 2;
    std::vector<double> a2(half), b2(half), c2(half), d2(half);
    for (int64_t j = 0; j < half; ++j) {
        int64_t i = 2 * j + 1;
        double alpha = a[static_cast<size_t>(i)] /
                       b[static_cast<size_t>(i - 1)];
        double beta = i + 1 < n ? c[static_cast<size_t>(i)] /
                                      b[static_cast<size_t>(i + 1)]
                                : 0.0;
        a2[static_cast<size_t>(j)] =
            -alpha * a[static_cast<size_t>(i - 1)];
        b2[static_cast<size_t>(j)] =
            b[static_cast<size_t>(i)] -
            alpha * c[static_cast<size_t>(i - 1)] -
            (i + 1 < n ? beta * a[static_cast<size_t>(i + 1)] : 0.0);
        c2[static_cast<size_t>(j)] =
            i + 1 < n ? -beta * c[static_cast<size_t>(i + 1)] : 0.0;
        d2[static_cast<size_t>(j)] =
            d[static_cast<size_t>(i)] -
            alpha * d[static_cast<size_t>(i - 1)] -
            (i + 1 < n ? beta * d[static_cast<size_t>(i + 1)] : 0.0);
    }
    std::vector<double> xo(static_cast<size_t>(half));
    cyclicReduceRow(std::move(a2), std::move(b2), std::move(c2),
                    std::move(d2), xo.data(), half);
    for (int64_t j = 0; j < half; ++j)
        x[2 * j + 1] = xo[static_cast<size_t>(j)];
    for (int64_t j = 0; j < half; ++j) {
        int64_t i = 2 * j;
        double left = i > 0 ? a[static_cast<size_t>(i)] * x[i - 1] : 0.0;
        double right =
            i + 1 < n ? c[static_cast<size_t>(i)] * x[i + 1] : 0.0;
        x[i] = (d[static_cast<size_t>(i)] - left - right) /
               b[static_cast<size_t>(i)];
    }
}

std::vector<double>
rowVec(const MatrixD &m, int64_t row)
{
    std::vector<double> v(static_cast<size_t>(m.width()));
    for (int64_t i = 0; i < m.width(); ++i)
        v[static_cast<size_t>(i)] = m.at(i, row);
    return v;
}

/** Batched CR routed through the emulated device: one work-item per
 * system (the real per-level parallel structure is captured by the
 * timing model, the device run provides functional fidelity). */
MatrixD
cyclicReduceGpu(const TridiagProblem &p)
{
    int64_t n = p.unknowns();
    int64_t m = p.systems();
    auto upload = [](const MatrixD &mat) {
        auto buf = std::make_shared<ocl::Buffer>(mat.bytes());
        std::memcpy(buf->raw(), mat.data(),
                    static_cast<size_t>(mat.bytes()));
        return buf;
    };
    auto aB = upload(p.lower), bB = upload(p.diag), cB = upload(p.upper),
         dB = upload(p.rhs);
    auto xB = std::make_shared<ocl::Buffer>(n * m * 8);

    auto kernel = std::make_shared<ocl::Kernel>(
        "cr_solve", "pbcl:tridiag:cr",
        [n](ocl::GroupCtx &ctx) {
            const double *a = ctx.args().buffer(0).as<double>();
            const double *b = ctx.args().buffer(1).as<double>();
            const double *c = ctx.args().buffer(2).as<double>();
            const double *d = ctx.args().buffer(3).as<double>();
            double *x = ctx.args().buffer(4).as<double>();
            ctx.forEachItem([&](int64_t sys, int64_t, int64_t, int64_t) {
                std::vector<double> av(a + sys * n, a + (sys + 1) * n);
                std::vector<double> bv(b + sys * n, b + (sys + 1) * n);
                std::vector<double> cv(c + sys * n, c + (sys + 1) * n);
                std::vector<double> dv(d + sys * n, d + (sys + 1) * n);
                cyclicReduceRow(std::move(av), std::move(bv),
                                std::move(cv), std::move(dv),
                                x + sys * n, n);
            });
        },
        [n](const ocl::KernelArgs &, const ocl::NDRange &range) {
            sim::CostReport cost;
            double items = static_cast<double>(range.items()) * 2 *
                           static_cast<double>(n);
            cost.flops = kCrFlopsGpu * items;
            cost.globalBytesRead = kCrBytesGpu * items;
            return cost;
        });
    ocl::Device device(sim::MachineProfile::desktop().ocl);
    ocl::KernelArgs args;
    args.buffers = {aB, bB, cB, dB, xB};
    device.launch(*kernel, args, ocl::NDRange::linear(m, 64));

    MatrixD x(n, m);
    std::memcpy(x.data(), xB->raw(), static_cast<size_t>(x.bytes()));
    return x;
}

/** View the bound batch as a TridiagProblem (shares storage). */
TridiagProblem
problemOf(const lang::Binding &binding)
{
    return TridiagProblem{
        binding.matrix("Lower"), binding.matrix("Diag"),
        binding.matrix("Upper"), binding.matrix("Rhs")};
}

/** The Tridiagonal transform: one region rule running the solver. */
std::shared_ptr<lang::Transform>
makeTridiagTransform(const ChoiceFilePtr &choices)
{
    auto t = std::make_shared<lang::Transform>("TridiagonalSolver");
    t->slot("Lower", lang::SlotRole::Input)
        .slot("Diag", lang::SlotRole::Input)
        .slot("Upper", lang::SlotRole::Input)
        .slot("Rhs", lang::SlotRole::Input)
        .slot("X", lang::SlotRole::Output);
    auto rule = lang::RuleDef::makeRegion(
        "TridiagSolve", "X", {"Lower", "Diag", "Upper", "Rhs"},
        [choices](lang::RuleDef::RegionRunArgs &args) {
            TridiagProblem p{args.inputs[0], args.inputs[1],
                             args.inputs[2], args.inputs[3]};
            MatrixD x =
                TridiagBenchmark::solveWithConfig(choices->get(), p);
            for (int64_t i = 0; i < x.size(); ++i)
                args.output[i] = x[i];
        },
        [](const Region &region, const lang::ParamEnv &) {
            double unknowns =
                static_cast<double>(region.w * region.h);
            sim::CostReport cost;
            cost.flops = kThomasOps * unknowns;
            cost.globalBytesRead = kThomasBytes * unknowns;
            return cost;
        });
    t->choice("solve", {rule});
    return t;
}

} // namespace

TridiagBenchmark::TridiagBenchmark()
    : choices_(std::make_shared<ChoiceFile>()),
      transform_(makeTridiagTransform(choices_))
{}

lang::Binding
TridiagBenchmark::makeBinding(int64_t n, Rng &rng) const
{
    TridiagProblem p = makeProblem(n, rng);
    lang::Binding binding;
    binding.matrices.emplace("Lower", p.lower);
    binding.matrices.emplace("Diag", p.diag);
    binding.matrices.emplace("Upper", p.upper);
    binding.matrices.emplace("Rhs", p.rhs);
    binding.matrices.emplace("X", MatrixD(n, n));
    return binding;
}

compiler::TransformConfig
TridiagBenchmark::planFor(const tuner::Config &config, int64_t n) const
{
    (void)n;
    choices_->arm(config);
    compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages = {compiler::StageConfig{}}; // region rule: CPU native
    return plan;
}

double
TridiagBenchmark::checkOutput(const lang::Binding &binding) const
{
    return maxAbsDiff(binding.matrix("X"),
                      referenceSolve(problemOf(binding)));
}

tuner::Config
TridiagBenchmark::seedConfig() const
{
    tuner::Config config;
    config.addSelector(
        tuner::Selector("Tridiag.algorithm", kTriAlgCount, kTriThomas));
    config.addTunable({"Tridiag.lws", 1, 1024, 128, false});
    return config;
}

namespace {

// The per-algorithm pricing is shared between the reference and fast
// evaluate() overloads; only how (alg, lws) are looked up differs.

double
modelThomasSeconds(int64_t n, const sim::MachineProfile &machine)
{
    double dn = static_cast<double>(n);
    double unknowns = dn * dn; // n systems of n
    int workers = std::min(machine.workerThreads, machine.cpu.cores);
    double rate = machine.cpu.gflopsPerCore * 1e9;
    double memRate = machine.cpu.memBandwidthGBs * 1e9;
    double work = unknowns * kThomasOps / (rate * kChainRate);
    double span = dn * kThomasOps / (rate * kChainRate);
    double mem = unknowns * kThomasBytes / memRate;
    return std::max({work / workers, span, mem});
}

double
modelCyclicCpuSeconds(int64_t n, const sim::MachineProfile &machine)
{
    double dn = static_cast<double>(n);
    double unknowns = dn * dn;
    int workers = std::min(machine.workerThreads, machine.cpu.cores);
    double rate = machine.cpu.gflopsPerCore * 1e9;
    double memRate = machine.cpu.memBandwidthGBs * 1e9;
    // Twice the items (forward + back), heavier per-item ops.
    double work = 2.0 * unknowns * kCrOpsCpu / (rate * kChainRate);
    double mem = 2.0 * unknowns * kCrBytesGpu / memRate;
    return std::max(work / workers, mem);
}

double
modelCyclicGpuSeconds(int64_t n, int lws,
                      const sim::MachineProfile &machine)
{
    double dn = static_cast<double>(n);
    double unknowns = dn * dn;
    double transfers = machine.transfer.seconds(4.0 * 8.0 * unknowns) +
                       machine.transfer.seconds(8.0 * unknowns);
    double items = 2.0 * unknowns;
    sim::CostReport level;
    // 2 log2(n) kernel launches sweep ~n^2 total items each way.
    double launches = 2.0 * std::log2(dn);
    level.flops = kCrFlopsGpu * items;
    level.globalBytesRead = kCrBytesGpu * items;
    level.invocations = launches;
    double kernels =
        sim::CostModel::kernelSeconds(machine.ocl, level, lws);
    return transfers + kernels;
}

/** Pre-resolved config positions (see Benchmark docs). */
struct TridiagEvalContext : apps::EvalContext
{
    size_t algorithmSel;
    size_t lwsTun;

    explicit TridiagEvalContext(const tuner::Config &schema)
        : algorithmSel(schema.selectorIndex("Tridiag.algorithm")),
          lwsTun(schema.tunableIndex("Tridiag.lws"))
    {}
};

} // namespace

double
TridiagBenchmark::evaluate(const tuner::Config &config, int64_t n,
                           const sim::MachineProfile &machine) const
{
    switch (config.selector("Tridiag.algorithm").select(n)) {
      case kTriThomas:
        return modelThomasSeconds(n, machine);
      case kTriCyclicCpu:
        return modelCyclicCpuSeconds(n, machine);
      case kTriCyclicGpu: {
        if (!machine.hasOpenCL)
            return std::numeric_limits<double>::infinity();
        int lws = static_cast<int>(config.tunableValue("Tridiag.lws"));
        return modelCyclicGpuSeconds(n, lws, machine);
      }
      default:
        PB_PANIC("bad tridiag algorithm");
    }
}

apps::EvalContextPtr
TridiagBenchmark::makeEvalContext(int64_t n,
                                  const sim::MachineProfile &machine) const
{
    (void)n;
    (void)machine;
    return std::make_shared<TridiagEvalContext>(seedConfig());
}

double
TridiagBenchmark::evaluate(const tuner::Config &config, int64_t n,
                           const sim::MachineProfile &machine,
                           const EvalContext *ctx) const
{
    if (ctx == nullptr)
        return evaluate(config, n, machine);
    const auto &tri = static_cast<const TridiagEvalContext &>(*ctx);
    switch (config.selectorAt(tri.algorithmSel).select(n)) {
      case kTriThomas:
        return modelThomasSeconds(n, machine);
      case kTriCyclicCpu:
        return modelCyclicCpuSeconds(n, machine);
      case kTriCyclicGpu: {
        if (!machine.hasOpenCL)
            return std::numeric_limits<double>::infinity();
        int lws = static_cast<int>(config.tunableValueAt(tri.lwsTun));
        return modelCyclicGpuSeconds(n, lws, machine);
      }
      default:
        PB_PANIC("bad tridiag algorithm");
    }
}

std::vector<std::string>
TridiagBenchmark::kernelSources(const tuner::Config &config,
                                int64_t n) const
{
    if (config.selector("Tridiag.algorithm").select(n) == kTriCyclicGpu)
        return {"pbcl:tridiag:cr"};
    return {};
}

int
TridiagBenchmark::kernelCount(const tuner::Config &config,
                              int64_t n) const
{
    return config.selector("Tridiag.algorithm").select(n) ==
                   kTriCyclicGpu
               ? 1
               : 0;
}

std::string
TridiagBenchmark::describeConfig(const tuner::Config &config,
                                 int64_t n) const
{
    switch (config.selector("Tridiag.algorithm").select(n)) {
      case kTriThomas: return "direct solve on CPU";
      case kTriCyclicCpu: return "cyclic reduction on CPU";
      case kTriCyclicGpu: return "cyclic reduction on GPU";
    }
    return "?";
}

TridiagProblem
TridiagBenchmark::makeProblem(int64_t n, Rng &rng)
{
    PB_ASSERT(n >= 2 && (n & (n - 1)) == 0,
              "system size must be a power of two");
    TridiagProblem p{MatrixD(n, n), MatrixD(n, n), MatrixD(n, n),
                     MatrixD(n, n)};
    for (int64_t sys = 0; sys < n; ++sys) {
        for (int64_t i = 0; i < n; ++i) {
            double lo = i == 0 ? 0.0 : rng.uniformReal(-1.0, 1.0);
            double hi = i == n - 1 ? 0.0 : rng.uniformReal(-1.0, 1.0);
            p.lower.at(i, sys) = lo;
            p.upper.at(i, sys) = hi;
            // Strictly diagonally dominant: stable for both solvers.
            p.diag.at(i, sys) =
                4.0 + std::abs(lo) + std::abs(hi) +
                rng.uniformReal(0.0, 1.0);
            p.rhs.at(i, sys) = rng.uniformReal(-10.0, 10.0);
        }
    }
    return p;
}

MatrixD
TridiagBenchmark::solveWithConfig(const tuner::Config &config,
                                  const TridiagProblem &p)
{
    int64_t n = p.unknowns();
    switch (config.selector("Tridiag.algorithm").select(n)) {
      case kTriThomas:
        return referenceSolve(p);
      case kTriCyclicCpu: {
        MatrixD x(n, p.systems());
        for (int64_t sys = 0; sys < p.systems(); ++sys) {
            cyclicReduceRow(rowVec(p.lower, sys), rowVec(p.diag, sys),
                            rowVec(p.upper, sys), rowVec(p.rhs, sys),
                            x.data() + sys * n, n);
        }
        return x;
      }
      case kTriCyclicGpu:
        return cyclicReduceGpu(p);
      default:
        PB_PANIC("bad tridiag algorithm");
    }
}

MatrixD
TridiagBenchmark::referenceSolve(const TridiagProblem &p)
{
    int64_t n = p.unknowns();
    MatrixD x(n, p.systems());
    for (int64_t sys = 0; sys < p.systems(); ++sys) {
        thomasRow(p.lower.data() + sys * n, p.diag.data() + sys * n,
                  p.upper.data() + sys * n, p.rhs.data() + sys * n,
                  x.data() + sys * n, n);
    }
    return x;
}

double
TridiagBenchmark::cudppSeconds(int64_t n, const sim::MachineProfile &m)
{
    if (!m.hasOpenCL)
        return std::numeric_limits<double>::infinity();
    // CUDA CR with bank-conflict-free shared memory: single staging
    // load per item, the rest in the scratchpad; CUDA also skips the
    // OpenCL runtime's launch overhead. CUDPP's published numbers do
    // not include PCIe transfers, and neither does this model.
    double unknowns = static_cast<double>(n) * n;
    sim::CostReport level;
    level.flops = kCrFlopsGpu * 2.0 * unknowns;
    level.globalBytesRead = 40.0 * unknowns;
    level.localBytes = kCrBytesGpu * 2.0 * unknowns;
    level.invocations = 2.0 * std::log2(static_cast<double>(n));
    return sim::CostModel::kernelSeconds(m.ocl, level, 256);
}

} // namespace apps
} // namespace petabricks
