/**
 * @file
 * Mandelbrot benchmark (the eighth workload, beyond the paper's seven).
 *
 * Computes the escape-time iteration count of n points of the complex
 * plane — one output cell per point, a perfectly data-parallel rule
 * with a bounding box of one, like Black-Scholes, but with a bounded
 * inner *loop* instead of a closed-form formula: the per-point work is
 * governed by the MaxIter transform parameter, so the compute/byte
 * ratio is a knob rather than a constant. Exists primarily to prove
 * the Benchmark/ExecutionEngine surface is open: it was added after
 * the engine, tuner, service, and portfolio layers and flows through
 * all of them with no changes outside this directory.
 */

#ifndef PETABRICKS_BENCHMARKS_MANDELBROT_H
#define PETABRICKS_BENCHMARKS_MANDELBROT_H

#include <memory>

#include "benchmarks/benchmark.h"
#include "lang/transform.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/**
 * Escape-time iteration count of c = (cr, ci), capped at maxIter.
 * Returned as a double so it lives in the standard matrix type.
 */
double mandelbrotEscape(double cr, double ci, int64_t maxIter);

/** See file comment. */
class MandelbrotBenchmark : public Benchmark
{
  public:
    MandelbrotBenchmark();

    std::string name() const override { return "Mandelbrot"; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    EvalContextPtr
    makeEvalContext(int64_t n,
                    const sim::MachineProfile &machine) const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine,
                    const EvalContext *ctx) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int kernelCount(const tuner::Config &config,
                    int64_t n) const override;
    int64_t testingInputSize() const override { return 250000; }
    int64_t minTuningSize() const override { return 4096; }
    int openclKernelCount() const override { return 1; }
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    // Real-mode surface. makeBinding() shapes the n points into a
    // near-square matrix so the GPU-CPU ratio can split rows; Cr and
    // Ci are drawn from the classic viewing window, and the iteration
    // cap is a transform param.
    bool supportsRealMode() const override { return true; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    int64_t realModeProbeSize() const override { return 2048; }

    /** Row count of the matrix shape used for n points. */
    static int64_t rowsFor(int64_t n);

    /** Reference escape counts for correctness checks. */
    static MatrixD reference(const lang::Binding &binding);

  private:
    std::shared_ptr<lang::Transform> transform_;
};

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_MANDELBROT_H
