/**
 * @file
 * Poisson2D SOR benchmark (paper Figure 7(b)).
 *
 * Solves Poisson's equation with Red-Black Successive Over-Relaxation.
 * Before the main iteration the grid is *split* into separate packed
 * red and black buffers for cache efficiency; the iterations then
 * alternate red and black half-sweeps. The paper's headline: on
 * Desktop/Laptop the split runs on the CPU and the iterations on the
 * GPU, while Server does nearly the opposite (OpenCL split, CPU
 * iterations), because its OpenCL backend shares the CPU.
 *
 * The packed layout makes the split rules strided gathers
 * (DimAccess::strided), and the update rules 3x3-window stencils over
 * the opposite color — both synthesizable to OpenCL with local-memory
 * variants.
 */

#ifndef PETABRICKS_BENCHMARKS_POISSON_H
#define PETABRICKS_BENCHMARKS_POISSON_H

#include <memory>

#include "benchmarks/benchmark.h"
#include "lang/transform.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/**
 * Build the unrolled transform: pack red/black, then @p iterations
 * alternating half-sweeps. Slots: In, Red0..RedK, Black0..BlackK.
 */
std::shared_ptr<lang::Transform> makePoissonTransform(int iterations);

/** See file comment. */
class PoissonBenchmark : public Benchmark
{
  public:
    /** @param iterations SOR half-sweep pairs the benchmark times. */
    explicit PoissonBenchmark(int iterations = 16);

    std::string name() const override { return "Poisson2D SOR"; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    EvalContextPtr
    makeEvalContext(int64_t n,
                    const sim::MachineProfile &machine) const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine,
                    const EvalContext *ctx) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int kernelCount(const tuner::Config &config,
                    int64_t n) const override;
    int64_t testingInputSize() const override { return 2048; }
    int openclKernelCount() const override;
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    int iterations() const { return iterations_; }

    // Real-mode surface. makeBinding() binds a random boundary-value
    // problem on an n x n grid (n must be even).
    bool supportsRealMode() const override { return true; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    int64_t realModeProbeSize() const override { return 32; }

    /**
     * Reference: the same red-black SOR computed directly on the
     * unpacked grid; returns the grid after the iterations.
     */
    static MatrixD reference(const MatrixD &grid, int iterations,
                             double omega);

    /** Merge the packed Red/Black outputs of @p binding into a grid. */
    MatrixD unpackResult(const lang::Binding &binding) const;

    /** Figure 7(b)'s CPU-only baseline config. */
    static tuner::Config cpuOnlyConfig();

    /** Over-relaxation factor used throughout. */
    static constexpr double kOmega = 1.5;

  private:
    int iterations_;
    std::shared_ptr<lang::Transform> transform_;
};

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_POISSON_H
