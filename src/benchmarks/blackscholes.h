/**
 * @file
 * Black-Scholes benchmark (paper Figure 7(a)).
 *
 * Prices n European call options with the closed-form Black-Scholes
 * formula — one output cell per option, a perfectly data-parallel rule
 * with a bounding box of one (so no local-memory variant exists). The
 * interesting choice is placement: all CPU, all OpenCL, or a
 * GPU-CPU ratio split computing different regions of the same output
 * concurrently on both processors; the paper's Laptop picks a 25%/75%
 * split for a 1.3x speedup over GPU-only.
 */

#ifndef PETABRICKS_BENCHMARKS_BLACKSCHOLES_H
#define PETABRICKS_BENCHMARKS_BLACKSCHOLES_H

#include <memory>

#include "benchmarks/benchmark.h"
#include "lang/transform.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/** The Black-Scholes formula for a European call (for references). */
double blackScholesCall(double spot, double strike, double years,
                        double riskFree, double volatility);

/** See file comment. */
class BlackScholesBenchmark : public Benchmark
{
  public:
    BlackScholesBenchmark();

    std::string name() const override { return "Black-Scholes"; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    EvalContextPtr
    makeEvalContext(int64_t n,
                    const sim::MachineProfile &machine) const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine,
                    const EvalContext *ctx) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int kernelCount(const tuner::Config &config,
                    int64_t n) const override;
    int64_t testingInputSize() const override { return 500000; }
    int64_t minTuningSize() const override { return 4096; }
    int openclKernelCount() const override { return 1; }
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    // Real-mode surface. makeBinding() shapes the n options into a
    // near-square matrix so the GPU-CPU ratio can split rows; inputs
    // Spot, Strike, Years are drawn from realistic ranges, and rate and
    // volatility are transform params scaled by 1e4.
    bool supportsRealMode() const override { return true; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    int64_t realModeProbeSize() const override { return 2048; }

    /** Row count of the matrix shape used for n options. */
    static int64_t rowsFor(int64_t n);

    /** Reference pricing for correctness checks. */
    static MatrixD reference(const lang::Binding &binding);

    /** The Figure 7(a) "CPU-only Config" baseline. */
    static tuner::Config cpuOnlyConfig();

  private:
    std::shared_ptr<lang::Transform> transform_;
};

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_BLACKSCHOLES_H
