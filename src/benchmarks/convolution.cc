#include "benchmarks/convolution.h"

#include "benchmarks/backend_util.h"
#include "compiler/admissibility.h"
#include "compiler/simulator.h"

namespace petabricks {
namespace apps {

namespace {

using lang::AccessPattern;
using lang::DimAccess;
using lang::ParamEnv;
using lang::PointArgs;
using lang::RuleDef;

lang::RulePtr
convolve2dRule(int64_t kwidth)
{
    return RuleDef::makePoint(
        "Convolve2D", "Out",
        {AccessPattern{"In", DimAccess::window(0, kwidth),
                       DimAccess::window(0, kwidth)},
         AccessPattern{"Kernel", DimAccess::all(),
                       DimAccess::window(0, 1)}},
        [](const PointArgs &pt) {
            int64_t kw = pt.param(0);
            double sum = 0.0;
            for (int64_t j = 0; j < kw; ++j)
                for (int64_t i = 0; i < kw; ++i)
                    sum += pt.input(0).at(pt.x + i, pt.y + j) *
                           pt.input(1).at(i, 0) * pt.input(1).at(j, 0);
            return sum;
        },
        [](const ParamEnv &params) {
            // ~8 scalar ops per window tap: multiply-accumulate plus
            // the strided address arithmetic of the 2-D window.
            double kw = static_cast<double>(params[0]);
            return 8.0 * kw * kw;
        });
}

lang::RulePtr
convolveRowsRule(int64_t kwidth)
{
    return RuleDef::makePoint(
        "ConvolveRows", "buffer",
        {AccessPattern{"In", DimAccess::window(0, kwidth),
                       DimAccess::window(0, 1)},
         AccessPattern{"Kernel", DimAccess::all(),
                       DimAccess::window(0, 1)}},
        [](const PointArgs &pt) {
            int64_t kw = pt.param(0);
            double sum = 0.0;
            for (int64_t i = 0; i < kw; ++i)
                sum += pt.input(0).at(pt.x + i, pt.y) *
                       pt.input(1).at(i, 0);
            return sum;
        },
        [](const ParamEnv &params) {
            return 8.0 * static_cast<double>(params[0]);
        });
}

lang::RulePtr
convolveColumnsRule(int64_t kwidth)
{
    return RuleDef::makePoint(
        "ConvolveColumns", "Out",
        {AccessPattern{"buffer", DimAccess::window(0, 1),
                       DimAccess::window(0, kwidth)},
         AccessPattern{"Kernel", DimAccess::all(),
                       DimAccess::window(0, 1)}},
        [](const PointArgs &pt) {
            int64_t kw = pt.param(0);
            double sum = 0.0;
            for (int64_t i = 0; i < kw; ++i)
                sum += pt.input(0).at(pt.x, pt.y + i) *
                       pt.input(1).at(i, 0);
            return sum;
        },
        [](const ParamEnv &params) {
            return 8.0 * static_cast<double>(params[0]);
        });
}

compiler::SlotSizes
convSizes(int64_t n, int64_t kw)
{
    return {{"In", {n, n}},
            {"Kernel", {kw, 1}},
            {"Out", {n - kw + 1, n - kw + 1}},
            {"buffer", {n - kw + 1, n}}};
}

constexpr const char *kRules[] = {"Convolve2D", "ConvolveRows",
                                  "ConvolveColumns"};

/** Config-invariant state shared by a batch (see Benchmark docs). */
struct ConvEvalContext : apps::EvalContext
{
    compiler::EvaluationContext sim;
    size_t choiceSel;
    StageChoiceIds rules[3]; // aligned with kRules
    size_t splitTun;

    ConvEvalContext(const std::shared_ptr<lang::Transform> &transform,
                    int64_t n, int64_t kwidth,
                    const sim::MachineProfile &machine,
                    const tuner::Config &schema)
        : sim(transform, convSizes(n, kwidth), {kwidth}, machine),
          choiceSel(
              schema.selectorIndex("SeparableConvolution.choice")),
          rules{stageChoiceIds(schema, kRules[0]),
                stageChoiceIds(schema, kRules[1]),
                stageChoiceIds(schema, kRules[2])},
          splitTun(schema.tunableIndex("SeparableConvolution.split"))
    {}
};

/** planFor() via the context's pre-resolved config positions, into a
 * reused per-thread plan (no allocation in the batch loop). */
const compiler::TransformConfig &
planForFast(const tuner::Config &config, int64_t n,
            const ConvEvalContext &ctx)
{
    thread_local compiler::TransformConfig plan;
    int split = static_cast<int>(config.tunableValueAt(ctx.splitTun));
    plan.stages.clear();
    if (config.selectorAt(ctx.choiceSel).select(n) == 0) {
        plan.choiceIndex = 0;
        plan.stages.push_back(
            stageForIds(config, ctx.rules[0], n, split));
    } else {
        plan.choiceIndex = 1;
        plan.stages.push_back(
            stageForIds(config, ctx.rules[1], n, split));
        plan.stages.push_back(
            stageForIds(config, ctx.rules[2], n, split));
    }
    return plan;
}

} // namespace

std::shared_ptr<lang::Transform>
makeConvolutionTransform(int64_t kwidth)
{
    auto t = std::make_shared<lang::Transform>("SeparableConvolution");
    t->slot("In", lang::SlotRole::Input)
        .slot("Kernel", lang::SlotRole::Input)
        .slot("Out", lang::SlotRole::Output)
        .slot("buffer", lang::SlotRole::Intermediate);
    t->choice("2d", {convolve2dRule(kwidth)});
    t->choice("separable",
              {convolveRowsRule(kwidth), convolveColumnsRule(kwidth)});
    return t;
}

ConvolutionBenchmark::ConvolutionBenchmark(int64_t kwidth)
    : kwidth_(kwidth), transform_(makeConvolutionTransform(kwidth))
{
    PB_ASSERT(kwidth >= 3 && kwidth % 2 == 1,
              "kernel width must be odd and >= 3");
}

tuner::Config
ConvolutionBenchmark::seedConfig() const
{
    tuner::Config config;
    config.addSelector(
        tuner::Selector("SeparableConvolution.choice", 2, 0));
    for (const char *rule : kRules)
        addBackendChoices(config, rule, /*hasLocalVariant=*/true);
    config.addTunable({"SeparableConvolution.split", 1, 256, 16, true});
    return config;
}

compiler::TransformConfig
ConvolutionBenchmark::planFor(const tuner::Config &config,
                              int64_t n) const
{
    int split = static_cast<int>(
        config.tunableValue("SeparableConvolution.split"));
    compiler::TransformConfig plan;
    if (config.selector("SeparableConvolution.choice").select(n) == 0) {
        plan.choiceIndex = 0;
        plan.stages = {stageFor(config, "Convolve2D", n, split)};
    } else {
        plan.choiceIndex = 1;
        plan.stages = {stageFor(config, "ConvolveRows", n, split),
                       stageFor(config, "ConvolveColumns", n, split)};
    }
    return plan;
}

double
ConvolutionBenchmark::evaluate(const tuner::Config &config, int64_t n,
                               const sim::MachineProfile &machine) const
{
    if (n <= kwidth_)
        return std::numeric_limits<double>::infinity();
    auto outcome =
        compiler::simulateTransform(*transform_, planFor(config, n),
                                    convSizes(n, kwidth_), {kwidth_},
                                    machine);
    return outcome.seconds;
}

apps::EvalContextPtr
ConvolutionBenchmark::makeEvalContext(
    int64_t n, const sim::MachineProfile &machine) const
{
    if (n <= kwidth_)
        return nullptr; // degenerate size: evaluate() is +inf anyway
    return std::make_shared<ConvEvalContext>(transform_, n, kwidth_,
                                             machine, seedConfig());
}

double
ConvolutionBenchmark::evaluate(const tuner::Config &config, int64_t n,
                               const sim::MachineProfile &machine,
                               const EvalContext *ctx) const
{
    if (n <= kwidth_)
        return std::numeric_limits<double>::infinity();
    if (ctx == nullptr)
        return evaluate(config, n, machine);
    const auto &conv = static_cast<const ConvEvalContext &>(*ctx);
    return compiler::simulateTransform(conv.sim,
                                       planForFast(config, n, conv))
        .seconds;
}

std::vector<std::string>
ConvolutionBenchmark::kernelSources(const tuner::Config &config,
                                    int64_t n) const
{
    std::vector<std::string> sources;
    compiler::TransformConfig plan = planFor(config, n);
    const lang::Choice &choice = transform_->choiceAt(plan.choiceIndex);
    for (size_t i = 0; i < choice.rules.size(); ++i)
        appendKernelSources(sources, plan.stages[i],
                            choice.rules[i]->name());
    return sources;
}

int
ConvolutionBenchmark::kernelCount(const tuner::Config &config,
                                  int64_t n) const
{
    compiler::TransformConfig plan = planFor(config, n);
    int count = 0;
    for (const compiler::StageConfig &stage : plan.stages)
        count += stageKernelCount(stage);
    return count;
}

int
ConvolutionBenchmark::openclKernelCount() const
{
    return compiler::countSynthesizedKernels(*transform_);
}

std::string
ConvolutionBenchmark::describeConfig(const tuner::Config &config,
                                     int64_t n) const
{
    compiler::TransformConfig plan = planFor(config, n);
    std::string algo = plan.choiceIndex == 0 ? "2D kernel" : "1D kernel";
    const lang::Choice &choice = transform_->choiceAt(plan.choiceIndex);
    std::string backends;
    for (size_t i = 0; i < choice.rules.size(); ++i) {
        if (i)
            backends += " then ";
        backends += describeStage(plan.stages[i]);
    }
    return algo + " on " + backends;
}

lang::Binding
ConvolutionBenchmark::makeBinding(int64_t n, Rng &rng) const
{
    lang::Binding binding;
    MatrixD in(n, n);
    for (int64_t i = 0; i < in.size(); ++i)
        in[i] = rng.uniformReal(-1.0, 1.0);
    MatrixD kernel = MatrixD::vector(kwidth_);
    for (int64_t i = 0; i < kwidth_; ++i)
        kernel.at(i, 0) = rng.uniformReal(0.0, 1.0);
    binding.matrices.emplace("In", in);
    binding.matrices.emplace("Kernel", kernel);
    binding.matrices.emplace(
        "Out", MatrixD(n - kwidth_ + 1, n - kwidth_ + 1));
    binding.matrices.emplace("buffer", MatrixD(n - kwidth_ + 1, n));
    binding.params = {kwidth_};
    return binding;
}

MatrixD
ConvolutionBenchmark::reference(const lang::Binding &binding,
                                int64_t kwidth)
{
    const MatrixD &in = binding.matrix("In");
    const MatrixD &kernel = binding.matrix("Kernel");
    int64_t ow = in.width() - kwidth + 1;
    int64_t oh = in.height() - kwidth + 1;
    MatrixD out(ow, oh);
    for (int64_t y = 0; y < oh; ++y)
        for (int64_t x = 0; x < ow; ++x) {
            double sum = 0.0;
            for (int64_t j = 0; j < kwidth; ++j)
                for (int64_t i = 0; i < kwidth; ++i)
                    sum += in.at(x + i, y + j) * kernel.at(i, 0) *
                           kernel.at(j, 0);
            out.at(x, y) = sum;
        }
    return out;
}

double
ConvolutionBenchmark::checkOutput(const lang::Binding &binding) const
{
    return maxAbsDiff(binding.matrix("Out"),
                      reference(binding, kwidth_));
}

tuner::Config
ConvolutionBenchmark::fixedMapping(bool separable, bool localMem)
{
    ConvolutionBenchmark proto;
    tuner::Config config = proto.seedConfig();
    config.selector("SeparableConvolution.choice")
        .setAlgorithm(0, separable ? 1 : 0);
    int backend = backendAlg(localMem ? compiler::Backend::OpenClLocal
                                      : compiler::Backend::OpenClGlobal);
    for (const char *rule : kRules)
        config.selector(std::string(rule) + ".backend")
            .setAlgorithm(0, backend);
    return config;
}

} // namespace apps
} // namespace petabricks
