/**
 * @file
 * Shared glue mapping tuner configurations onto stage placements.
 *
 * Convention used by the transform-style benchmarks: a backend selector
 * named "<Rule>.backend" with the algorithm set
 *   0 = CPU, 1 = OpenCL (global memory), 2 = OpenCL + local memory,
 * plus tunables "<Rule>.lws" (local work size), "<Rule>.ratio"
 * (GPU-CPU workload ratio in eighths), and a per-benchmark
 * "<Bench>.split" (CPU chunking) — the Section 5.3 choice encoding.
 */

#ifndef PETABRICKS_BENCHMARKS_BACKEND_UTIL_H
#define PETABRICKS_BENCHMARKS_BACKEND_UTIL_H

#include <string>

#include "compiler/backend.h"
#include "tuner/config.h"

namespace petabricks {
namespace apps {

/** Backend algorithm ids used by backend selectors. */
enum BackendAlg
{
    kBackendCpu = 0,
    kBackendOpenCl = 1,
    kBackendOpenClLocal = 2,
};

/** Register the standard per-rule choice structure on @p config. */
inline void
addBackendChoices(tuner::Config &config, const std::string &rule,
                  bool hasLocalVariant)
{
    config.addSelector(tuner::Selector(rule + ".backend",
                                       hasLocalVariant ? 3 : 2, 0));
    config.addTunable({rule + ".lws", 1, 1024, 64, false});
    config.addTunable({rule + ".ratio", 0, 8, 8, false});
}

/** Build the stage placement the configuration selects at size @p n. */
inline compiler::StageConfig
stageFor(const tuner::Config &config, const std::string &rule, int64_t n,
         int cpuSplit)
{
    compiler::StageConfig stage;
    switch (config.selector(rule + ".backend").select(n)) {
      case kBackendCpu:
        stage.backend = compiler::Backend::Cpu;
        break;
      case kBackendOpenCl:
        stage.backend = compiler::Backend::OpenClGlobal;
        break;
      case kBackendOpenClLocal:
        stage.backend = compiler::Backend::OpenClLocal;
        break;
      default:
        PB_PANIC("bad backend algorithm for rule '" << rule << "'");
    }
    stage.localWorkSize =
        static_cast<int>(config.tunableValue(rule + ".lws"));
    stage.gpuRatioEighths =
        static_cast<int>(config.tunableValue(rule + ".ratio"));
    stage.cpuSplit = cpuSplit;
    return stage;
}

/** Human-readable backend description for the Figure 6 table. */
inline std::string
describeStage(const compiler::StageConfig &stage)
{
    switch (stage.backend) {
      case compiler::Backend::Cpu:
        return "CPU";
      case compiler::Backend::OpenClGlobal:
        if (stage.gpuRatioEighths >= 8)
            return "OpenCL";
        return "OpenCL " + std::to_string(stage.gpuRatioEighths * 100 / 8) +
               "% / CPU " +
               std::to_string(100 - stage.gpuRatioEighths * 100 / 8) + "%";
      case compiler::Backend::OpenClLocal:
        if (stage.gpuRatioEighths >= 8)
            return "OpenCL+local";
        return "OpenCL+local " +
               std::to_string(stage.gpuRatioEighths * 100 / 8) + "%";
    }
    return "?";
}

/** Kernel source ids a stage JIT-compiles under the Section 5.4 model. */
inline void
appendKernelSources(std::vector<std::string> &sources,
                    const compiler::StageConfig &stage,
                    const std::string &rule)
{
    if (stage.backend == compiler::Backend::OpenClGlobal)
        sources.push_back("pbcl:" + rule + ":global");
    else if (stage.backend == compiler::Backend::OpenClLocal)
        sources.push_back("pbcl:" + rule + ":local");
}

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_BACKEND_UTIL_H
