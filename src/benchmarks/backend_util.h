/**
 * @file
 * Shared glue mapping tuner configurations onto stage placements.
 *
 * Convention used by the transform-style benchmarks: a backend selector
 * named "<Rule>.backend" whose algorithm ids are the
 * compiler::Backend enumerators (CPU, OpenCL global memory, OpenCL +
 * local memory), plus tunables "<Rule>.lws" (local work size),
 * "<Rule>.ratio" (GPU-CPU workload ratio in eighths), and a
 * per-benchmark "<Bench>.split" (CPU chunking) — the Section 5.3
 * choice encoding.
 */

#ifndef PETABRICKS_BENCHMARKS_BACKEND_UTIL_H
#define PETABRICKS_BENCHMARKS_BACKEND_UTIL_H

#include <string>

#include "compiler/backend.h"
#include "tuner/config.h"

namespace petabricks {
namespace apps {

/** Selector algorithm id of a backend (selectors store plain ints). */
inline int
backendAlg(compiler::Backend backend)
{
    return static_cast<int>(backend);
}

/** Number of backends a rule can choose from. */
inline constexpr int kBackendCount = 3;

/** Register the standard per-rule choice structure on @p config. */
inline void
addBackendChoices(tuner::Config &config, const std::string &rule,
                  bool hasLocalVariant)
{
    config.addSelector(tuner::Selector(
        rule + ".backend", hasLocalVariant ? kBackendCount : 2,
        backendAlg(compiler::Backend::Cpu)));
    config.addTunable({rule + ".lws", 1, 1024, 64, false});
    config.addTunable({rule + ".ratio", 0, 8, 8, false});
}

/**
 * Resolved positions of one rule's choice structure within a Config —
 * the fast path's replacement for by-name lookups. Valid for every
 * configuration sharing the seed's structure (mutation never adds or
 * removes selectors/tunables), so an evaluation context resolves them
 * once per batch.
 */
struct StageChoiceIds
{
    size_t backend = 0; // selector "<Rule>.backend"
    size_t lws = 0;     // tunable "<Rule>.lws"
    size_t ratio = 0;   // tunable "<Rule>.ratio"
};

/** Resolve the standard per-rule choice structure of @p rule. */
inline StageChoiceIds
stageChoiceIds(const tuner::Config &config, const std::string &rule)
{
    return {config.selectorIndex(rule + ".backend"),
            config.tunableIndex(rule + ".lws"),
            config.tunableIndex(rule + ".ratio")};
}

/** stageFor() via pre-resolved positions (no string construction). */
inline compiler::StageConfig
stageForIds(const tuner::Config &config, const StageChoiceIds &ids,
            int64_t n, int cpuSplit)
{
    int alg = config.selectorAt(ids.backend).select(n);
    PB_ASSERT(alg >= 0 && alg < kBackendCount,
              "bad backend algorithm " << alg);
    compiler::StageConfig stage;
    stage.backend = static_cast<compiler::Backend>(alg);
    stage.localWorkSize =
        static_cast<int>(config.tunableValueAt(ids.lws));
    stage.gpuRatioEighths =
        static_cast<int>(config.tunableValueAt(ids.ratio));
    stage.cpuSplit = cpuSplit;
    return stage;
}

/** Build the stage placement the configuration selects at size @p n. */
inline compiler::StageConfig
stageFor(const tuner::Config &config, const std::string &rule, int64_t n,
         int cpuSplit)
{
    int alg = config.selector(rule + ".backend").select(n);
    PB_ASSERT(alg >= 0 && alg < kBackendCount,
              "bad backend algorithm " << alg << " for rule '" << rule
                                       << "'");
    compiler::StageConfig stage;
    stage.backend = static_cast<compiler::Backend>(alg);
    stage.localWorkSize =
        static_cast<int>(config.tunableValue(rule + ".lws"));
    stage.gpuRatioEighths =
        static_cast<int>(config.tunableValue(rule + ".ratio"));
    stage.cpuSplit = cpuSplit;
    return stage;
}

/** Human-readable backend description for the Figure 6 table. */
inline std::string
describeStage(const compiler::StageConfig &stage)
{
    std::string name = compiler::backendName(stage.backend);
    if (stage.backend == compiler::Backend::Cpu ||
        stage.gpuRatioEighths >= 8)
        return name;
    // A partial GPU ratio computes the rest concurrently on the CPU.
    int gpuPercent = stage.gpuRatioEighths * 100 / 8;
    std::string split =
        name + " " + std::to_string(gpuPercent) + "%";
    if (stage.backend == compiler::Backend::OpenClGlobal)
        split += " / CPU " + std::to_string(100 - gpuPercent) + "%";
    return split;
}

/** Kernel source ids a stage JIT-compiles under the Section 5.4 model. */
inline void
appendKernelSources(std::vector<std::string> &sources,
                    const compiler::StageConfig &stage,
                    const std::string &rule)
{
    if (stage.backend == compiler::Backend::OpenClGlobal)
        sources.push_back("pbcl:" + rule + ":global");
    else if (stage.backend == compiler::Backend::OpenClLocal)
        sources.push_back("pbcl:" + rule + ":local");
}

/** Count-only twin of appendKernelSources() (Benchmark::kernelCount):
 * how many source ids the stage would contribute, with no synthesis. */
inline int
stageKernelCount(const compiler::StageConfig &stage)
{
    return stage.backend == compiler::Backend::Cpu ? 0 : 1;
}

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_BACKEND_UTIL_H
