/**
 * @file
 * Shared glue mapping tuner configurations onto stage placements.
 *
 * Convention used by the transform-style benchmarks: a backend selector
 * named "<Rule>.backend" whose algorithm ids are the
 * compiler::Backend enumerators (CPU, OpenCL global memory, OpenCL +
 * local memory), plus tunables "<Rule>.lws" (local work size),
 * "<Rule>.ratio" (GPU-CPU workload ratio in eighths), and a
 * per-benchmark "<Bench>.split" (CPU chunking) — the Section 5.3
 * choice encoding.
 */

#ifndef PETABRICKS_BENCHMARKS_BACKEND_UTIL_H
#define PETABRICKS_BENCHMARKS_BACKEND_UTIL_H

#include <string>

#include "compiler/backend.h"
#include "tuner/config.h"

namespace petabricks {
namespace apps {

/** Selector algorithm id of a backend (selectors store plain ints). */
inline int
backendAlg(compiler::Backend backend)
{
    return static_cast<int>(backend);
}

/** Number of backends a rule can choose from. */
inline constexpr int kBackendCount = 3;

/** Register the standard per-rule choice structure on @p config. */
inline void
addBackendChoices(tuner::Config &config, const std::string &rule,
                  bool hasLocalVariant)
{
    config.addSelector(tuner::Selector(
        rule + ".backend", hasLocalVariant ? kBackendCount : 2,
        backendAlg(compiler::Backend::Cpu)));
    config.addTunable({rule + ".lws", 1, 1024, 64, false});
    config.addTunable({rule + ".ratio", 0, 8, 8, false});
}

/** Build the stage placement the configuration selects at size @p n. */
inline compiler::StageConfig
stageFor(const tuner::Config &config, const std::string &rule, int64_t n,
         int cpuSplit)
{
    int alg = config.selector(rule + ".backend").select(n);
    PB_ASSERT(alg >= 0 && alg < kBackendCount,
              "bad backend algorithm " << alg << " for rule '" << rule
                                       << "'");
    compiler::StageConfig stage;
    stage.backend = static_cast<compiler::Backend>(alg);
    stage.localWorkSize =
        static_cast<int>(config.tunableValue(rule + ".lws"));
    stage.gpuRatioEighths =
        static_cast<int>(config.tunableValue(rule + ".ratio"));
    stage.cpuSplit = cpuSplit;
    return stage;
}

/** Human-readable backend description for the Figure 6 table. */
inline std::string
describeStage(const compiler::StageConfig &stage)
{
    std::string name = compiler::backendName(stage.backend);
    if (stage.backend == compiler::Backend::Cpu ||
        stage.gpuRatioEighths >= 8)
        return name;
    // A partial GPU ratio computes the rest concurrently on the CPU.
    int gpuPercent = stage.gpuRatioEighths * 100 / 8;
    std::string split =
        name + " " + std::to_string(gpuPercent) + "%";
    if (stage.backend == compiler::Backend::OpenClGlobal)
        split += " / CPU " + std::to_string(100 - gpuPercent) + "%";
    return split;
}

/** Kernel source ids a stage JIT-compiles under the Section 5.4 model. */
inline void
appendKernelSources(std::vector<std::string> &sources,
                    const compiler::StageConfig &stage,
                    const std::string &rule)
{
    if (stage.backend == compiler::Backend::OpenClGlobal)
        sources.push_back("pbcl:" + rule + ":global");
    else if (stage.backend == compiler::Backend::OpenClLocal)
        sources.push_back("pbcl:" + rule + ":local");
}

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_BACKEND_UTIL_H
