/**
 * @file
 * Strassen benchmark: dense matrix-matrix multiply (paper Figure 7(e)).
 *
 * The choice set follows the paper: naive multiplication, a blocked
 * native variant, recursive 8-multiply decomposition, Strassen's
 * 7-multiply recursion, a call to the external library (src/blas
 * standing in for LAPACK), and the data-parallel OpenCL kernel
 * synthesized from the matmul rule. Recursion consults the selector at
 * every level, so configurations like the Server's "8-way parallel
 * recursive decomposition, call LAPACK when < 682 x 682" arise
 * naturally from selector cutoffs.
 *
 * The matmul machinery is exposed with a configurable selector prefix
 * because SVD reuses it as a sub-transform — with different data
 * locality, hence the paper's observation that the best matmul config
 * inside SVD differs from Strassen in isolation.
 */

#ifndef PETABRICKS_BENCHMARKS_STRASSEN_H
#define PETABRICKS_BENCHMARKS_STRASSEN_H

#include "benchmarks/benchmark.h"
#include "support/matrix.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/** Algorithm ids of the matmul selector. */
enum MatmulAlg
{
    kMmLapack = 0,
    kMmRecursive8 = 1,
    kMmStrassen = 2,
    kMmBlocked = 3,
    kMmNaive = 4,
    kMmOpenCl = 5,
    kMmAlgCount = 6,
};

/** Register the matmul choice structure under @p prefix. */
void addMatmulChoices(tuner::Config &config, const std::string &prefix);

/**
 * Modeled seconds of an n x n matmul under @p config's "<prefix>.mm"
 * selector on @p machine. @p localityPenalty scales CPU/GPU memory
 * costs for calls on sub-regions of larger arrays (SVD).
 */
double modelMatmulSeconds(const tuner::Config &config,
                          const std::string &prefix, int64_t n,
                          const sim::MachineProfile &machine,
                          double localityPenalty = 1.0);

/** Kernel sources the matmul selector may JIT for size @p n. */
std::vector<std::string> matmulKernelSources(const tuner::Config &config,
                                             const std::string &prefix,
                                             int64_t n);

/** Execute C = A * B honoring the selector (real mode). */
void runMatmul(const tuner::Config &config, const std::string &prefix,
               const MatrixD &a, const MatrixD &b, MatrixD &c);

/** One-line description of the matmul poly-algorithm at size @p n. */
std::string describeMatmul(const tuner::Config &config,
                           const std::string &prefix, int64_t n);

/** See file comment. */
class StrassenBenchmark : public Benchmark
{
  public:
    StrassenBenchmark();

    std::string name() const override { return "Strassen"; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int64_t testingInputSize() const override { return 1024; }
    int64_t minTuningSize() const override { return 64; }
    int openclKernelCount() const override { return 1; }
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    // Real-mode surface: C = A * B via a region rule running the
    // selector-driven matmul poly-algorithm.
    bool supportsRealMode() const override { return true; }

    /** The poly-algorithm arms a shared ChoiceFile in planFor(), so
     * concurrent engine instances would clobber each other's plan. */
    bool realModeConcurrencySafe() const override { return false; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    /** Strassen's recursion loses a few digits to cancellation. */
    double realModeTolerance() const override { return 1e-8; }
    int64_t realModeProbeSize() const override { return 64; }

    /**
     * Modeled seconds of the NVIDIA-SDK-style hand-coded local-memory
     * matmul kernel (the Figure 7(e) baseline; ~1.4x faster than the
     * synthesized global-memory kernel on Desktop).
     */
    static double handCodedMatmulSeconds(int64_t n,
                                         const sim::MachineProfile &m);

  private:
    ChoiceFilePtr choices_;
    std::shared_ptr<lang::Transform> transform_;
};

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_STRASSEN_H
