/**
 * @file
 * Strassen benchmark: dense matrix-matrix multiply (paper Figure 7(e)).
 *
 * The choice set follows the paper: naive multiplication, a blocked
 * native variant, recursive 8-multiply decomposition, Strassen's
 * 7-multiply recursion, a call to the external library (src/blas
 * standing in for LAPACK), and the data-parallel OpenCL kernel
 * synthesized from the matmul rule. Recursion consults the selector at
 * every level, so configurations like the Server's "8-way parallel
 * recursive decomposition, call LAPACK when < 682 x 682" arise
 * naturally from selector cutoffs.
 *
 * The matmul machinery is exposed with a configurable selector prefix
 * because SVD reuses it as a sub-transform — with different data
 * locality, hence the paper's observation that the best matmul config
 * inside SVD differs from Strassen in isolation.
 */

#ifndef PETABRICKS_BENCHMARKS_STRASSEN_H
#define PETABRICKS_BENCHMARKS_STRASSEN_H

#include "benchmarks/benchmark.h"
#include "support/matrix.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/** Algorithm ids of the matmul selector. */
enum MatmulAlg
{
    kMmLapack = 0,
    kMmRecursive8 = 1,
    kMmStrassen = 2,
    kMmBlocked = 3,
    kMmNaive = 4,
    kMmOpenCl = 5,
    kMmAlgCount = 6,
};

/** Register the matmul choice structure under @p prefix. */
void addMatmulChoices(tuner::Config &config, const std::string &prefix);

/**
 * Modeled seconds of an n x n matmul under @p config's "<prefix>.mm"
 * selector on @p machine. @p localityPenalty scales CPU/GPU memory
 * costs for calls on sub-regions of larger arrays (SVD).
 */
double modelMatmulSeconds(const tuner::Config &config,
                          const std::string &prefix, int64_t n,
                          const sim::MachineProfile &machine,
                          double localityPenalty = 1.0);

/**
 * Pre-resolved positions of the "<prefix>.mm" choice structure within
 * a Config — valid for every configuration sharing the schema's
 * structure. Evaluation contexts resolve these once per batch so the
 * recursive model consults selectors without building key strings.
 */
struct MatmulChoiceIds
{
    size_t algorithm = 0; // selector "<prefix>.mm.algorithm"
    size_t lws = 0;       // tunable "<prefix>.mm.lws"
};

MatmulChoiceIds matmulChoiceIds(const tuner::Config &config,
                                const std::string &prefix);

/**
 * Per-recursion-level precomputation of the matmul model for one
 * (n, machine, localityPenalty): every leaf and decomposition constant
 * of the recursive model at sizes n, n/2, ..., leaf is priced once at
 * evaluation-context build time, so pricing a configuration reduces to
 * selector walks plus a few adds and multiplies. Results are
 * bit-identical to modelMatmulSeconds() — each stored constant is the
 * same expression the recursive model evaluates, composed in the same
 * order (the golden-equality suite checks this).
 */
class MatmulLevelModel
{
  public:
    MatmulLevelModel(int64_t n, const sim::MachineProfile &machine,
                     double localityPenalty = 1.0);

    /**
     * Modeled seconds under @p algorithm (the "<prefix>.mm.algorithm"
     * selector) with local work size @p lws (consulted only when a
     * level selects the OpenCL kernel).
     */
    double seconds(const tuner::Selector &algorithm, int lws) const;

  private:
    struct Level
    {
        int64_t size = 0;
        double lapackWork = 0.0, lapackSpan = 0.0;
        double naiveWork = 0.0, naiveSpan = 0.0;
        double blockedWork = 0.0, blockedSpan = 0.0;
        double r8Combine = 0.0, r8CombineOverWorkers = 0.0,
               r8Shuffle = 0.0;
        double stAdds = 0.0, stAddsOverWorkers = 0.0, stShuffle = 0.0;
    };

    std::vector<Level> levels_; // sizes n, n/2, ...; last is <= leaf
    sim::MachineProfile machine_;
    double localityPenalty_ = 1.0;
    int workers_ = 1;
};

/** Kernel sources the matmul selector may JIT for size @p n. */
std::vector<std::string> matmulKernelSources(const tuner::Config &config,
                                             const std::string &prefix,
                                             int64_t n);

/** Count-only twin of matmulKernelSources() (no string synthesis). */
int matmulKernelCount(const tuner::Config &config,
                      const std::string &prefix, int64_t n);

/** Execute C = A * B honoring the selector (real mode). */
void runMatmul(const tuner::Config &config, const std::string &prefix,
               const MatrixD &a, const MatrixD &b, MatrixD &c);

/** One-line description of the matmul poly-algorithm at size @p n. */
std::string describeMatmul(const tuner::Config &config,
                           const std::string &prefix, int64_t n);

/** See file comment. */
class StrassenBenchmark : public Benchmark
{
  public:
    StrassenBenchmark();

    std::string name() const override { return "Strassen"; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    EvalContextPtr
    makeEvalContext(int64_t n,
                    const sim::MachineProfile &machine) const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine,
                    const EvalContext *ctx) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int kernelCount(const tuner::Config &config,
                    int64_t n) const override;
    int64_t testingInputSize() const override { return 1024; }
    int64_t minTuningSize() const override { return 64; }
    int openclKernelCount() const override { return 1; }
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    // Real-mode surface: C = A * B via a region rule running the
    // selector-driven matmul poly-algorithm.
    bool supportsRealMode() const override { return true; }

    /** The poly-algorithm arms a shared ChoiceFile in planFor(), so
     * concurrent engine instances would clobber each other's plan. */
    bool realModeConcurrencySafe() const override { return false; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    /** Strassen's recursion loses a few digits to cancellation. */
    double realModeTolerance() const override { return 1e-8; }
    int64_t realModeProbeSize() const override { return 64; }

    /**
     * Modeled seconds of the NVIDIA-SDK-style hand-coded local-memory
     * matmul kernel (the Figure 7(e) baseline; ~1.4x faster than the
     * synthesized global-memory kernel on Desktop).
     */
    static double handCodedMatmulSeconds(int64_t n,
                                         const sim::MachineProfile &m);

  private:
    ChoiceFilePtr choices_;
    std::shared_ptr<lang::Transform> transform_;
};

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_STRASSEN_H
