#include "benchmarks/mandelbrot.h"

#include <cmath>

#include "benchmarks/backend_util.h"
#include "compiler/simulator.h"

namespace petabricks {
namespace apps {

namespace {

using lang::AccessPattern;
using lang::ParamEnv;
using lang::PointArgs;
using lang::RuleDef;

/** flops one escape-loop iteration costs (5 mul, 3 add, 1 compare). */
constexpr double kFlopsPerIteration = 9.0;

/**
 * Modeled flops per point. The real loop exits early for escaping
 * points, but the cost model must be a pure function of the parameter
 * environment (the same for every cell), so it prices the cap — the
 * worst case, and the exact cost for in-set points, which dominate the
 * classic viewing window.
 */
double
flopsPerPoint(const ParamEnv &params)
{
    return static_cast<double>(params.at(0)) * kFlopsPerIteration;
}

lang::RulePtr
mandelbrotRule()
{
    return RuleDef::makePoint(
        "Mandelbrot", "Iter",
        {AccessPattern::point("Cr"), AccessPattern::point("Ci")},
        [](const PointArgs &pt) {
            double cr = pt.input(0).at(pt.x, pt.y);
            double ci = pt.input(1).at(pt.x, pt.y);
            return mandelbrotEscape(cr, ci, pt.param(0));
        },
        flopsPerPoint);
}

compiler::SlotSizes
sizesFor(int64_t n)
{
    int64_t rows = MandelbrotBenchmark::rowsFor(n);
    int64_t cols = (n + rows - 1) / rows;
    std::pair<int64_t, int64_t> shape{cols, rows};
    return {{"Cr", shape}, {"Ci", shape}, {"Iter", shape}};
}

/** The escape-loop cap: 64 keeps a probe-sized run quick while still
 * making each point strongly compute bound. */
constexpr int64_t kMaxIter = 64;

/** Config-invariant state shared by a batch (see Benchmark docs). */
struct MbEvalContext : apps::EvalContext
{
    compiler::EvaluationContext sim;
    StageChoiceIds rule;
    size_t splitTun;

    MbEvalContext(const std::shared_ptr<lang::Transform> &transform,
                  int64_t n, const sim::MachineProfile &machine,
                  const tuner::Config &schema)
        : sim(transform, sizesFor(n), {kMaxIter}, machine),
          rule(stageChoiceIds(schema, "Mandelbrot")),
          splitTun(schema.tunableIndex("Mandelbrot.split"))
    {}
};

} // namespace

double
mandelbrotEscape(double cr, double ci, int64_t maxIter)
{
    double zr = 0.0, zi = 0.0;
    int64_t it = 0;
    while (it < maxIter && zr * zr + zi * zi <= 4.0) {
        double t = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = t;
        ++it;
    }
    return static_cast<double>(it);
}

MandelbrotBenchmark::MandelbrotBenchmark()
{
    transform_ = std::make_shared<lang::Transform>("Mandelbrot");
    transform_->slot("Cr", lang::SlotRole::Input)
        .slot("Ci", lang::SlotRole::Input)
        .slot("Iter", lang::SlotRole::Output);
    transform_->choice("escape", {mandelbrotRule()});
}

int64_t
MandelbrotBenchmark::rowsFor(int64_t n)
{
    int64_t rows = static_cast<int64_t>(std::sqrt(
        static_cast<double>(std::max<int64_t>(n, 1))));
    return std::max<int64_t>(rows, 1);
}

tuner::Config
MandelbrotBenchmark::seedConfig() const
{
    tuner::Config config;
    addBackendChoices(config, "Mandelbrot",
                      /*hasLocalVariant=*/false);
    config.addTunable({"Mandelbrot.split", 1, 256, 16, true});
    return config;
}

compiler::TransformConfig
MandelbrotBenchmark::planFor(const tuner::Config &config,
                             int64_t n) const
{
    compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages = {stageFor(
        config, "Mandelbrot", n,
        static_cast<int>(config.tunableValue("Mandelbrot.split")))};
    return plan;
}

double
MandelbrotBenchmark::evaluate(const tuner::Config &config, int64_t n,
                              const sim::MachineProfile &machine) const
{
    auto outcome = compiler::simulateTransform(
        *transform_, planFor(config, n), sizesFor(n), {kMaxIter},
        machine);
    return outcome.seconds;
}

apps::EvalContextPtr
MandelbrotBenchmark::makeEvalContext(
    int64_t n, const sim::MachineProfile &machine) const
{
    return std::make_shared<MbEvalContext>(transform_, n, machine,
                                           seedConfig());
}

double
MandelbrotBenchmark::evaluate(const tuner::Config &config, int64_t n,
                              const sim::MachineProfile &machine,
                              const EvalContext *ctx) const
{
    if (ctx == nullptr)
        return evaluate(config, n, machine);
    const auto &mb = static_cast<const MbEvalContext &>(*ctx);
    int split = static_cast<int>(config.tunableValueAt(mb.splitTun));
    thread_local compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages.clear();
    plan.stages.push_back(stageForIds(config, mb.rule, n, split));
    return compiler::simulateTransform(mb.sim, plan).seconds;
}

std::vector<std::string>
MandelbrotBenchmark::kernelSources(const tuner::Config &config,
                                   int64_t n) const
{
    std::vector<std::string> sources;
    appendKernelSources(sources, planFor(config, n).stages[0],
                        "Mandelbrot");
    return sources;
}

int
MandelbrotBenchmark::kernelCount(const tuner::Config &config,
                                 int64_t n) const
{
    return stageKernelCount(planFor(config, n).stages[0]);
}

std::string
MandelbrotBenchmark::describeConfig(const tuner::Config &config,
                                    int64_t n) const
{
    return describeStage(planFor(config, n).stages[0]);
}

lang::Binding
MandelbrotBenchmark::makeBinding(int64_t n, Rng &rng) const
{
    int64_t rows = rowsFor(n);
    int64_t cols = (n + rows - 1) / rows;
    lang::Binding binding;
    MatrixD cr(cols, rows), ci(cols, rows);
    for (int64_t i = 0; i < cr.size(); ++i) {
        cr[i] = rng.uniformReal(-2.0, 0.5);
        ci[i] = rng.uniformReal(-1.25, 1.25);
    }
    binding.matrices.emplace("Cr", cr);
    binding.matrices.emplace("Ci", ci);
    binding.matrices.emplace("Iter", MatrixD(cols, rows));
    binding.params = {kMaxIter};
    return binding;
}

MatrixD
MandelbrotBenchmark::reference(const lang::Binding &binding)
{
    const MatrixD &cr = binding.matrix("Cr");
    const MatrixD &ci = binding.matrix("Ci");
    int64_t maxIter = binding.params[0];
    MatrixD out(cr.width(), cr.height());
    for (int64_t i = 0; i < out.size(); ++i)
        out[i] = mandelbrotEscape(cr[i], ci[i], maxIter);
    return out;
}

double
MandelbrotBenchmark::checkOutput(const lang::Binding &binding) const
{
    return maxAbsDiff(binding.matrix("Iter"), reference(binding));
}

} // namespace apps
} // namespace petabricks
