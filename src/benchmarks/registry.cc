#include "benchmarks/registry.h"

#include "benchmarks/blackscholes.h"
#include "benchmarks/convolution.h"
#include "benchmarks/poisson.h"
#include "benchmarks/sort.h"
#include "benchmarks/strassen.h"
#include "benchmarks/svd.h"
#include "benchmarks/tridiagonal.h"

namespace petabricks {
namespace apps {

std::vector<BenchmarkPtr>
allBenchmarks()
{
    return {
        std::make_shared<BlackScholesBenchmark>(),
        std::make_shared<PoissonBenchmark>(),
        std::make_shared<ConvolutionBenchmark>(),
        std::make_shared<SortBenchmark>(),
        std::make_shared<StrassenBenchmark>(),
        std::make_shared<SvdBenchmark>(),
        std::make_shared<TridiagBenchmark>(),
    };
}

} // namespace apps
} // namespace petabricks
