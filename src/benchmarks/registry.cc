#include "benchmarks/registry.h"

#include <cctype>

#include "benchmarks/blackscholes.h"
#include "benchmarks/convolution.h"
#include "benchmarks/mandelbrot.h"
#include "benchmarks/poisson.h"
#include "benchmarks/sort.h"
#include "benchmarks/strassen.h"
#include "benchmarks/svd.h"
#include "benchmarks/tridiagonal.h"

namespace petabricks {
namespace apps {

std::vector<BenchmarkPtr>
allBenchmarks()
{
    return {
        std::make_shared<BlackScholesBenchmark>(),
        std::make_shared<PoissonBenchmark>(),
        std::make_shared<ConvolutionBenchmark>(),
        std::make_shared<SortBenchmark>(),
        std::make_shared<StrassenBenchmark>(),
        std::make_shared<SvdBenchmark>(),
        std::make_shared<TridiagBenchmark>(),
        std::make_shared<MandelbrotBenchmark>(),
    };
}

BenchmarkPtr
findBenchmark(const std::string &name)
{
    auto lowered = [](const std::string &s) {
        std::string out = s;
        for (char &c : out)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        return out;
    };
    const std::string want = lowered(name);
    std::string known;
    for (BenchmarkPtr &benchmark : allBenchmarks()) {
        if (lowered(benchmark->name()) == want)
            return benchmark;
        known += (known.empty() ? "" : ", ") + benchmark->name();
    }
    PB_FATAL("unknown benchmark '" << name << "' (known: " << known
                                   << ")");
}

} // namespace apps
} // namespace petabricks
