/**
 * @file
 * Tridiagonal Solver benchmark (paper Figure 7(g)).
 *
 * Solves a batch of n tridiagonal systems of n unknowns each (the
 * paper's 1024^2 testing size). Choices, a subset of Davidson/Zhang's
 * techniques the paper cites: the sequential Thomas direct solve (each
 * system is a dependent forward/backward chain, batch-parallel across
 * systems), cyclic reduction on the CPU, and cyclic reduction on the
 * OpenCL device (log n data-parallel steps, each a kernel launch).
 *
 * The paper's finding: only Desktop's powerful GPU justifies the
 * algorithmic switch to cyclic reduction; Server and Laptop do best
 * with the direct solve on the CPU.
 */

#ifndef PETABRICKS_BENCHMARKS_TRIDIAGONAL_H
#define PETABRICKS_BENCHMARKS_TRIDIAGONAL_H

#include "benchmarks/benchmark.h"
#include "support/matrix.h"
#include "support/rng.h"

namespace petabricks {
namespace apps {

/** Algorithm ids of the Tridiag selector. */
enum TridiagAlg
{
    kTriThomas = 0,
    kTriCyclicCpu = 1,
    kTriCyclicGpu = 2,
    kTriAlgCount = 3,
};

/** One batch problem: rows are systems (lower, diag, upper, rhs). */
struct TridiagProblem
{
    MatrixD lower, diag, upper, rhs;

    int64_t systems() const { return diag.height(); }
    int64_t unknowns() const { return diag.width(); }
};

/** See file comment. */
class TridiagBenchmark : public Benchmark
{
  public:
    TridiagBenchmark();

    std::string name() const override { return "Tridiagonal Solver"; }
    tuner::Config seedConfig() const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine) const override;
    EvalContextPtr
    makeEvalContext(int64_t n,
                    const sim::MachineProfile &machine) const override;
    double evaluate(const tuner::Config &config, int64_t n,
                    const sim::MachineProfile &machine,
                    const EvalContext *ctx) const override;
    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t n) const override;
    int kernelCount(const tuner::Config &config,
                    int64_t n) const override;
    int64_t testingInputSize() const override { return 1024; }
    int openclKernelCount() const override { return 2; }
    std::string describeConfig(const tuner::Config &config,
                               int64_t n) const override;

    /** Diagonally dominant random batch; n must be a power of two. */
    static TridiagProblem makeProblem(int64_t n, Rng &rng);

    /** Solve honoring the configuration (real mode). */
    static MatrixD solveWithConfig(const tuner::Config &config,
                                   const TridiagProblem &problem);

    /** Reference Thomas solve of every system. */
    static MatrixD referenceSolve(const TridiagProblem &problem);

    /** Modeled seconds of a CUDPP-style hand-tuned GPU CR solver. */
    static double cudppSeconds(int64_t n, const sim::MachineProfile &m);

    // Real-mode surface: solve the Lower/Diag/Upper/Rhs batch into X
    // with the algorithm the armed choice file selects.
    bool supportsRealMode() const override { return true; }

    /** The poly-algorithm arms a shared ChoiceFile in planFor(), so
     * concurrent engine instances would clobber each other's plan. */
    bool realModeConcurrencySafe() const override { return false; }
    const lang::Transform &transform() const override
    {
        return *transform_;
    }
    lang::Binding makeBinding(int64_t n, Rng &rng) const override;
    compiler::TransformConfig planFor(const tuner::Config &config,
                                      int64_t n) const override;
    double checkOutput(const lang::Binding &binding) const override;
    /** Cyclic reduction is less stable than the Thomas reference. */
    double realModeTolerance() const override { return 1e-7; }
    int64_t realModeProbeSize() const override { return 64; }

  private:
    ChoiceFilePtr choices_;
    std::shared_ptr<lang::Transform> transform_;
};

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_TRIDIAGONAL_H
