#include "benchmarks/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "benchmarks/strassen.h"
#include "blas/blas.h"

namespace petabricks {
namespace apps {

namespace {

/** Jacobi sweep cost: ~6 rotations' worth of row/col updates. */
constexpr double kJacobiFlopsPerN3 = 12.0;
constexpr int kJacobiSweeps = 8;

} // namespace

void
jacobiEigen(MatrixD &b, MatrixD &v, int sweeps)
{
    int64_t n = b.width();
    PB_ASSERT(b.height() == n, "jacobiEigen needs a square matrix");
    v = MatrixD(n, n);
    for (int64_t i = 0; i < n; ++i)
        v.at(i, i) = 1.0;

    for (int sweep = 0; sweep < sweeps; ++sweep) {
        double off = 0.0;
        for (int64_t p = 0; p < n; ++p)
            for (int64_t q = p + 1; q < n; ++q)
                off += b.at(q, p) * b.at(q, p);
        if (off < 1e-24)
            break;
        for (int64_t p = 0; p < n; ++p) {
            for (int64_t q = p + 1; q < n; ++q) {
                double apq = b.at(q, p);
                if (std::abs(apq) < 1e-300)
                    continue;
                double app = b.at(p, p);
                double aqq = b.at(q, q);
                double theta = 0.5 * (aqq - app) / apq;
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::abs(theta) +
                            std::sqrt(1.0 + theta * theta));
                double c = 1.0 / std::sqrt(1.0 + t * t);
                double s = t * c;
                for (int64_t i = 0; i < n; ++i) {
                    double bip = b.at(p, i);
                    double biq = b.at(q, i);
                    b.at(p, i) = c * bip - s * biq;
                    b.at(q, i) = s * bip + c * biq;
                }
                for (int64_t i = 0; i < n; ++i) {
                    double bpi = b.at(i, p);
                    double bqi = b.at(i, q);
                    b.at(i, p) = c * bpi - s * bqi;
                    b.at(i, q) = s * bpi + c * bqi;
                }
                for (int64_t i = 0; i < n; ++i) {
                    double vip = v.at(p, i);
                    double viq = v.at(q, i);
                    v.at(p, i) = c * vip - s * viq;
                    v.at(q, i) = s * vip + c * viq;
                }
            }
        }
    }
}

namespace {

/** The real-mode approximation (see SvdBenchmark::approximate). */
MatrixD
approximateWithConfig(const tuner::Config &config, const MatrixD &a,
                      double *errorOut)
{
    int64_t n = a.width();
    PB_ASSERT(a.height() == n, "square matrices only");
    int64_t k = std::max<int64_t>(1, n * config.tunableValue("SVD.k8") / 8);

    // Phase 1: B = A^T A via the configured matmul machinery.
    MatrixD at(n, n);
    blas::transpose(a, at);
    MatrixD b(n, n);
    runMatmul(config, "SVD", at, a, b);

    // Phase 2: eigendecompose B (B is SPD; eigenvectors of B are the
    // right singular vectors of A).
    MatrixD v;
    jacobiEigen(b, v, kJacobiSweeps);

    // Order eigenpairs by eigenvalue, descending.
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t i, int64_t j) {
        return b.at(i, i) > b.at(j, j);
    });

    // Phase 3: A_k = A Vk Vk^T.
    MatrixD vk(k, n);
    for (int64_t c = 0; c < k; ++c)
        for (int64_t r = 0; r < n; ++r)
            vk.at(c, r) = v.at(order[static_cast<size_t>(c)], r);
    MatrixD vkt(n, k);
    blas::transpose(vk, vkt);
    MatrixD proj(n, n);
    runMatmul(config, "SVD", vk, vkt, proj);
    MatrixD ak(n, n);
    runMatmul(config, "SVD", a, proj, ak);

    if (errorOut) {
        double base = 0.0;
        for (int64_t i = 0; i < a.size(); ++i)
            base += a[i] * a[i];
        *errorOut = blas::frobeniusDiff(a, ak) /
                    std::max(std::sqrt(base), 1e-300);
    }
    return ak;
}

/** The SVD transform: Ak = truncated approximation of A. */
std::shared_ptr<lang::Transform>
makeSvdTransform(const ChoiceFilePtr &choices)
{
    auto t = std::make_shared<lang::Transform>("SVD");
    t->slot("A", lang::SlotRole::Input)
        .slot("Ak", lang::SlotRole::Output);
    auto rule = lang::RuleDef::makeRegion(
        "SvdApproximate", "Ak", {"A"},
        [choices](lang::RuleDef::RegionRunArgs &args) {
            MatrixD ak = approximateWithConfig(choices->get(),
                                               args.inputs[0], nullptr);
            for (int64_t i = 0; i < ak.size(); ++i)
                args.output[i] = ak[i];
        },
        [](const Region &region, const lang::ParamEnv &) {
            // Three matmuls plus Jacobi sweeps; the choice-aware model
            // lives in evaluate().
            double n = static_cast<double>(region.w);
            sim::CostReport cost;
            cost.flops = (6.0 + kJacobiFlopsPerN3) * n * n * n;
            return cost;
        });
    t->choice("approximate", {rule});
    return t;
}

} // namespace

SvdBenchmark::SvdBenchmark(double accuracyTarget)
    : accuracyTarget_(accuracyTarget),
      choices_(std::make_shared<ChoiceFile>()),
      transform_(makeSvdTransform(choices_))
{
}

lang::Binding
SvdBenchmark::makeBinding(int64_t n, Rng &rng) const
{
    lang::Binding binding;
    MatrixD a(n, n);
    for (int64_t i = 0; i < a.size(); ++i)
        a[i] = rng.uniformReal(-1.0, 1.0);
    // A decaying diagonal boost gives the spectrum the truncation-aware
    // structure the tuning model assumes.
    for (int64_t i = 0; i < n; ++i)
        a.at(i, i) += 5.0 * std::exp(-4.0 * static_cast<double>(i) /
                                     static_cast<double>(n));
    binding.matrices.emplace("A", a);
    binding.matrices.emplace("Ak", MatrixD(n, n));
    return binding;
}

compiler::TransformConfig
SvdBenchmark::planFor(const tuner::Config &config, int64_t n) const
{
    (void)n;
    choices_->arm(config);
    compiler::TransformConfig plan;
    plan.choiceIndex = 0;
    plan.stages = {compiler::StageConfig{}}; // region rule: CPU native
    return plan;
}

double
SvdBenchmark::checkOutput(const lang::Binding &binding) const
{
    const MatrixD &a = binding.matrix("A");
    const MatrixD &ak = binding.matrix("Ak");
    double base = 0.0;
    for (int64_t i = 0; i < a.size(); ++i)
        base += a[i] * a[i];
    return blas::frobeniusDiff(a, ak) /
           std::max(std::sqrt(base), 1e-300);
}

tuner::Config
SvdBenchmark::seedConfig() const
{
    tuner::Config config;
    config.addSelector(tuner::Selector("SVD.phase1", 2, kSvdPhase1Cpu));
    addMatmulChoices(config, "SVD");
    // Rank fraction in eighths: the variable-accuracy knob. Start at
    // full rank (always meets the target).
    config.addTunable({"SVD.k8", 1, 8, 8, false});
    return config;
}

double
SvdBenchmark::modeledError(int k8)
{
    // Synthetic exponentially decaying spectrum sigma_i ~ exp(-4 i/n):
    // err(k)^2 = sum_{i>=k} sigma_i^2 / sum_i sigma_i^2, evaluated in
    // the continuum limit (independent of n).
    double frac = static_cast<double>(k8) / 8.0;
    return std::sqrt(std::exp(-8.0 * frac));
}

double
SvdBenchmark::evaluate(const tuner::Config &config, int64_t n,
                       const sim::MachineProfile &machine) const
{
    int k8 = static_cast<int>(config.tunableValue("SVD.k8"));
    if (modeledError(k8) > accuracyTarget_)
        return std::numeric_limits<double>::infinity();
    double dn = static_cast<double>(n);
    double k = dn * k8 / 8.0;

    // Phase 1: B = A^T A (two halves of the output).
    double halfMm = modelMatmulSeconds(config, "SVD", n, machine,
                                       kLocalityPenalty) / 2.0;
    double phase1;
    if (config.selector("SVD.phase1").select(n) ==
        kSvdPhase1TaskParallel) {
        if (!machine.hasOpenCL)
            return std::numeric_limits<double>::infinity();
        // One half on the GPU (with its transfers), one on the CPU,
        // concurrently; the phase ends when both do.
        double bytes = 8.0 * dn * dn;
        sim::CostReport gpuHalf;
        gpuHalf.flops = 2.2 * dn * dn * dn; // half of 2n^3, inefficient kernel
        gpuHalf.globalBytesRead =
            0.1 * dn * dn * dn * 8.0 * kLocalityPenalty;
        gpuHalf.globalBytesWritten = 4.0 * dn * dn;
        double gpuSec =
            machine.transfer.seconds(2.0 * bytes) +
            sim::CostModel::kernelSeconds(machine.ocl, gpuHalf, 64);
        phase1 = std::max(halfMm, gpuSec);
    } else {
        phase1 = 2.0 * halfMm;
    }

    // Phase 2: Jacobi sweeps on the CPU (parallel rotations per sweep).
    int workers = std::min(machine.workerThreads, machine.cpu.cores);
    double rate = machine.cpu.gflopsPerCore * 1e9;
    double jacobi = kJacobiSweeps * kJacobiFlopsPerN3 * dn * dn * dn /
                    (rate * std::min(workers, 8));

    // Phase 3: project A onto the leading k directions (two n*k*n
    // multiplies, through the same matmul machinery cost-wise).
    double project = modelMatmulSeconds(config, "SVD", n, machine,
                                        kLocalityPenalty) *
                     (2.0 * k / dn);
    return phase1 + jacobi + project;
}

namespace {

/**
 * Pre-resolved config positions plus everything in the SVD model that
 * does not depend on the configuration: the Jacobi phase, the
 * task-parallel GPU half, the matmul level constants, and the rank
 * projection factor per k8 setting. Each stored value is the exact
 * expression the reference evaluate() computes (bit-identical).
 */
struct SvdEvalContext : apps::EvalContext
{
    MatmulChoiceIds mm;
    size_t phase1Sel;
    size_t k8Tun;
    MatmulLevelModel model;
    double jacobiSeconds;
    double gpuHalfSeconds;
    double projFactor[9] = {};
    bool k8Feasible[9] = {};

    SvdEvalContext(const tuner::Config &schema, int64_t n,
                   const sim::MachineProfile &machine,
                   double accuracyTarget)
        : mm(matmulChoiceIds(schema, "SVD")),
          phase1Sel(schema.selectorIndex("SVD.phase1")),
          k8Tun(schema.tunableIndex("SVD.k8")),
          model(n, machine, SvdBenchmark::kLocalityPenalty)
    {
        double dn = static_cast<double>(n);

        int workers = std::min(machine.workerThreads, machine.cpu.cores);
        double rate = machine.cpu.gflopsPerCore * 1e9;
        jacobiSeconds = kJacobiSweeps * kJacobiFlopsPerN3 * dn * dn *
                        dn / (rate * std::min(workers, 8));

        double bytes = 8.0 * dn * dn;
        sim::CostReport gpuHalf;
        gpuHalf.flops = 2.2 * dn * dn * dn;
        gpuHalf.globalBytesRead =
            0.1 * dn * dn * dn * 8.0 * SvdBenchmark::kLocalityPenalty;
        gpuHalf.globalBytesWritten = 4.0 * dn * dn;
        gpuHalfSeconds =
            machine.transfer.seconds(2.0 * bytes) +
            sim::CostModel::kernelSeconds(machine.ocl, gpuHalf, 64);

        for (int k8 = 1; k8 <= 8; ++k8) {
            double k = dn * k8 / 8.0;
            projFactor[k8] = 2.0 * k / dn;
            k8Feasible[k8] =
                SvdBenchmark::modeledError(k8) <= accuracyTarget;
        }
    }
};

} // namespace

apps::EvalContextPtr
SvdBenchmark::makeEvalContext(int64_t n,
                              const sim::MachineProfile &machine) const
{
    return std::make_shared<SvdEvalContext>(seedConfig(), n, machine,
                                            accuracyTarget_);
}

double
SvdBenchmark::evaluate(const tuner::Config &config, int64_t n,
                       const sim::MachineProfile &machine,
                       const EvalContext *ctx) const
{
    if (ctx == nullptr)
        return evaluate(config, n, machine);
    const auto &svd = static_cast<const SvdEvalContext &>(*ctx);

    // Same arithmetic as the reference overload over the context's
    // precomputed constants, with the (identical) matmul model priced
    // once instead of twice.
    int k8 = static_cast<int>(config.tunableValueAt(svd.k8Tun));
    if (!svd.k8Feasible[k8])
        return std::numeric_limits<double>::infinity();

    double mm = svd.model.seconds(
        config.selectorAt(svd.mm.algorithm),
        static_cast<int>(config.tunableValueAt(svd.mm.lws)));
    double halfMm = mm / 2.0;
    double phase1;
    if (config.selectorAt(svd.phase1Sel).select(n) ==
        kSvdPhase1TaskParallel) {
        if (!machine.hasOpenCL)
            return std::numeric_limits<double>::infinity();
        phase1 = std::max(halfMm, svd.gpuHalfSeconds);
    } else {
        phase1 = 2.0 * halfMm;
    }

    return phase1 + svd.jacobiSeconds + mm * svd.projFactor[k8];
}

std::vector<std::string>
SvdBenchmark::kernelSources(const tuner::Config &config, int64_t n) const
{
    std::vector<std::string> sources =
        matmulKernelSources(config, "SVD", n);
    if (config.selector("SVD.phase1").select(n) == kSvdPhase1TaskParallel)
        sources.push_back("pbcl:MatMul:global");
    return sources;
}

int
SvdBenchmark::kernelCount(const tuner::Config &config, int64_t n) const
{
    int count = matmulKernelCount(config, "SVD", n);
    if (config.selector("SVD.phase1").select(n) == kSvdPhase1TaskParallel)
        ++count;
    return count;
}

std::string
SvdBenchmark::describeConfig(const tuner::Config &config, int64_t n) const
{
    std::string phase1 =
        config.selector("SVD.phase1").select(n) == kSvdPhase1TaskParallel
            ? "task parallel CPU+GPU"
            : "all on CPU";
    return "first phase " + phase1 + "; matmul " +
           describeMatmul(config, "SVD", n) + "; k=" +
           std::to_string(config.tunableValue("SVD.k8")) + "/8";
}

MatrixD
SvdBenchmark::approximate(const tuner::Config &config, const MatrixD &a,
                          double *errorOut) const
{
    return approximateWithConfig(config, a, errorOut);
}

} // namespace apps
} // namespace petabricks
