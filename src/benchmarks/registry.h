/**
 * @file
 * Registry of the paper's seven benchmarks, in Figure 8 order.
 */

#ifndef PETABRICKS_BENCHMARKS_REGISTRY_H
#define PETABRICKS_BENCHMARKS_REGISTRY_H

#include <vector>

#include "benchmarks/benchmark.h"

namespace petabricks {
namespace apps {

/** All seven benchmarks, in the paper's table order. */
std::vector<BenchmarkPtr> allBenchmarks();

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_REGISTRY_H
