/**
 * @file
 * Registry of the paper's seven benchmarks, in Figure 8 order.
 */

#ifndef PETABRICKS_BENCHMARKS_REGISTRY_H
#define PETABRICKS_BENCHMARKS_REGISTRY_H

#include <vector>

#include "benchmarks/benchmark.h"

namespace petabricks {
namespace apps {

/** All seven benchmarks, in the paper's table order. */
std::vector<BenchmarkPtr> allBenchmarks();

/**
 * Fresh instance of the benchmark whose display name is @p name
 * (case-insensitive; "Black-Scholes", "Sort", ...). Fatal error with
 * the list of known names when no benchmark matches — this is the
 * service's `create` lookup, so the message is user-facing.
 */
BenchmarkPtr findBenchmark(const std::string &name);

} // namespace apps
} // namespace petabricks

#endif // PETABRICKS_BENCHMARKS_REGISTRY_H
