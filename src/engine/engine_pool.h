/**
 * @file
 * EnginePool: batch fan-out across N engine instances, with the
 * fault-tolerance the real-mode path needs.
 *
 * RuntimeEngine is serial per engine (one runtime, one device, wall
 * times that overlap would be garbage), so real-mode batches cannot be
 * parallelized *inside* an engine. The pool owns N independently
 * constructed engines and fans the configurations of one batch across
 * them — a shared work queue drained by one thread per engine, each
 * engine processing its items serially — the same shape as running N
 * autotuner test processes on N machines.
 *
 * Failure semantics (measureBatch, the tuner path):
 *  - TransientError from an instance is retried on that instance with
 *    bounded exponential backoff (the pool's RetryPolicy).
 *  - An item that exhausts its retries is handed to a surviving
 *    instance (one serial floor pass); if it still fails it yields the
 *    NaN "evaluation failed" sentinel — worst cost upstream, never a
 *    cached measurement.
 *  - An instance accumulating quarantineAfter *consecutive* transient
 *    failures is quarantined: it drops out of this and every later
 *    batch, and the pool degrades to the surviving instances (serial
 *    on the last one as the floor). The final live instance is never
 *    quarantined for plain transients; per-instance counters record
 *    what happened.
 *  - With deadlineMillis set, every evaluation runs under a watchdog:
 *    an evaluation that outlives the deadline becomes a TransientError
 *    instead of a wedged pool lane, and the instance is quarantined
 *    unconditionally (even the last one — its worker may still be
 *    stuck inside the evaluation, so reuse is unsafe). The abandoned
 *    evaluation is reaped at the end of the batch, so it can never
 *    outlive the memory the batch handed it.
 *
 * Correctness gate: the pool asks its engines whether concurrent
 * instances are safe for the benchmark (RuntimeEngine forwards to
 * Benchmark::realModeConcurrencySafe() — function-style benchmarks
 * share an armed ChoiceFile and are not). Unsafe pairings degrade to a
 * serial loop on the first engine instead of racing.
 */

#ifndef PETABRICKS_ENGINE_ENGINE_POOL_H
#define PETABRICKS_ENGINE_ENGINE_POOL_H

#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "engine/execution_engine.h"

namespace petabricks {
namespace engine {

/** Fault-tolerance knobs for EnginePool (retry uses RetryPolicy). */
struct PoolOptions
{
    /** Quarantine an instance after this many *consecutive* transient
     * failures (a success resets the streak). <= 0 disables. */
    int quarantineAfter = 3;

    /** Watchdog deadline per evaluation, in milliseconds; an
     * evaluation that exceeds it becomes a TransientError and the
     * instance is quarantined. 0 disables the watchdog. */
    int64_t deadlineMillis = 0;
};

/** Per-instance failure/retry counters (stats inspection). */
struct PoolInstanceStats
{
    int64_t calls = 0;             ///< evaluations completed (any outcome)
    int64_t transientFailures = 0; ///< TransientErrors (incl. timeouts)
    int64_t retries = 0;           ///< same-instance re-attempts
    int64_t timeouts = 0;          ///< watchdog deadline hits
    int consecutiveFailures = 0;   ///< current streak
    bool quarantined = false;
};

/** See file comment. */
class EnginePool : public ExecutionEngine
{
  public:
    using EngineFactory =
        std::function<std::unique_ptr<ExecutionEngine>()>;

    /**
     * @param factory invoked @p engineCount times at construction;
     *        every call must yield an independent engine (own runtime,
     *        own device) of the same kind.
     * @param engineCount number of instances (>= 1).
     * @param options fault-tolerance knobs.
     */
    EnginePool(const EngineFactory &factory, int engineCount,
               PoolOptions options = {});

    /** Joins any watchdog-abandoned evaluations still in flight. */
    ~EnginePool() override;

    int engineCount() const { return static_cast<int>(instances_.size()); }

    /** Member engine @p index (0-based), e.g. for stats inspection. */
    ExecutionEngine &engineAt(int index);

    /** Failure/retry counters for instance @p index. */
    PoolInstanceStats instanceStats(int index) const;

    /** Instances not currently quarantined. */
    int liveInstanceCount() const;

    const PoolOptions &poolOptions() const { return options_; }

    // Single-config calls delegate to the first engine.
    std::string name() const override;
    bool supports(const apps::Benchmark &benchmark) const override;
    RunResult run(const apps::Benchmark &benchmark,
                  const tuner::Config &config, int64_t n) override;
    double measure(const apps::Benchmark &benchmark,
                   const tuner::Config &config, int64_t n) override;
    void configureTuner(tuner::TunerOptions &options) const override;
    bool
    concurrentInstancesSafe(const apps::Benchmark &benchmark) const override;

    std::vector<RunResult> runBatch(const apps::Benchmark &benchmark,
                                    std::span<const tuner::Config> configs,
                                    int64_t n) override;

    std::vector<double>
    measureBatch(const apps::Benchmark &benchmark,
                 std::span<const tuner::Config> configs,
                 int64_t n) override;

  private:
    struct Instance
    {
        std::unique_ptr<ExecutionEngine> engine;
        PoolInstanceStats stats;          ///< guarded by mutex_
        std::vector<std::thread> wedged;  ///< watchdog-abandoned evals
    };

    /** What became of one batch item attempted on one instance. */
    enum class ItemStatus
    {
        Done,  ///< result (or recorded error) is final
        Bounce ///< retries exhausted / instance quarantined: re-queue
    };

    /** Joins watchdog-abandoned evaluations when a batch call unwinds,
     * so they can never outlive the configs span they reference. */
    struct Reaper
    {
        explicit Reaper(EnginePool &pool) : pool_(pool) {}
        ~Reaper() { pool_.reapWedged(); }
        EnginePool &pool_;
    };

    /** The live instances a batch for @p benchmark may use: all of
     * them, or just the first when concurrent instances are unsafe. */
    std::vector<Instance *> laneSet(const apps::Benchmark &benchmark);

    /**
     * One item (@p i) on one instance, with the pool's retry loop:
     * transient failures back off and retry in place; FatalError and
     * unexpected exceptions finish the item via @p onFatal / @p errors.
     * Returns Bounce when the item needs another instance.
     */
    ItemStatus runItem(Instance &instance, size_t i,
                       const std::function<void(Instance &, size_t)>
                           &evaluateItem,
                       const std::function<void(size_t, std::exception_ptr)>
                           &onFatal,
                       std::vector<std::exception_ptr> &errors);

    /**
     * Evaluate under the watchdog deadline (runs @p evaluate on a
     * helper thread when deadlineMillis > 0). On timeout, stashes the
     * abandoned thread on @p instance and throws the internal timeout
     * marker runItem() converts into quarantine + bounce.
     */
    double timedCall(Instance &instance,
                     const std::function<double()> &evaluate);

    /** Failure bookkeeping; returns true when the caller's lane must
     * stop using this instance (quarantined). Locks mutex_. */
    bool recordFailure(Instance &instance, bool timedOut);
    void recordSuccess(Instance &instance);
    void recordRetry(Instance &instance);
    bool isQuarantined(const Instance &instance) const;

    /** First non-quarantined instance, or null when all are out. */
    Instance *firstLive();

    /** Join evaluations abandoned by the watchdog (end of batch). */
    void reapWedged();

    PoolOptions options_;
    std::vector<std::unique_ptr<Instance>> instances_;
    mutable std::mutex mutex_; ///< guards stats / quarantine flags
};

} // namespace engine
} // namespace petabricks

#endif // PETABRICKS_ENGINE_ENGINE_POOL_H
