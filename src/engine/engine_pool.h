/**
 * @file
 * EnginePool: batch fan-out across N engine instances.
 *
 * RuntimeEngine is serial per engine (one runtime, one device, wall
 * times that overlap would be garbage), so real-mode batches cannot be
 * parallelized *inside* an engine. The pool owns N independently
 * constructed engines and fans the configurations of one batch across
 * them, one thread per engine, each engine processing its share
 * serially — the same shape as running N autotuner test processes on
 * N machines.
 *
 * Correctness gate: the pool asks its engines whether concurrent
 * instances are safe for the benchmark (RuntimeEngine forwards to
 * Benchmark::realModeConcurrencySafe() — function-style benchmarks
 * share an armed ChoiceFile and are not). Unsafe pairings degrade to a
 * serial loop on the first engine instead of racing.
 */

#ifndef PETABRICKS_ENGINE_ENGINE_POOL_H
#define PETABRICKS_ENGINE_ENGINE_POOL_H

#include <functional>
#include <memory>

#include "engine/execution_engine.h"

namespace petabricks {
namespace engine {

/** See file comment. */
class EnginePool : public ExecutionEngine
{
  public:
    using EngineFactory =
        std::function<std::unique_ptr<ExecutionEngine>()>;

    /**
     * @param factory invoked @p engineCount times at construction;
     *        every call must yield an independent engine (own runtime,
     *        own device) of the same kind.
     * @param engineCount number of instances (>= 1).
     */
    EnginePool(const EngineFactory &factory, int engineCount);

    int engineCount() const { return static_cast<int>(engines_.size()); }

    /** Member engine @p index (0-based), e.g. for stats inspection. */
    ExecutionEngine &engineAt(int index);

    // Single-config calls delegate to the first engine.
    std::string name() const override;
    bool supports(const apps::Benchmark &benchmark) const override;
    RunResult run(const apps::Benchmark &benchmark,
                  const tuner::Config &config, int64_t n) override;
    double measure(const apps::Benchmark &benchmark,
                   const tuner::Config &config, int64_t n) override;
    void configureTuner(tuner::TunerOptions &options) const override;
    bool
    concurrentInstancesSafe(const apps::Benchmark &benchmark) const override;

    std::vector<RunResult> runBatch(const apps::Benchmark &benchmark,
                                    std::span<const tuner::Config> configs,
                                    int64_t n) override;

    std::vector<double>
    measureBatch(const apps::Benchmark &benchmark,
                 std::span<const tuner::Config> configs,
                 int64_t n) override;

  private:
    /** True when a batch for @p benchmark may fan across instances. */
    bool canFanOut(const apps::Benchmark &benchmark, size_t batch) const;

    std::vector<std::unique_ptr<ExecutionEngine>> engines_;
};

} // namespace engine
} // namespace petabricks

#endif // PETABRICKS_ENGINE_ENGINE_POOL_H
