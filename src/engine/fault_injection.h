/**
 * @file
 * Deterministic fault injection for the evaluation path.
 *
 * Real devices crash, hang, and occasionally return garbage; the
 * autotuner must absorb all three without corrupting the search (the
 * paper's stance on inadmissible configurations — worst cost, move on
 * — extended to the evaluation harness itself). FaultInjectingEngine
 * is a decorator that wraps any ExecutionEngine and injects faults on
 * a *deterministic* schedule, so the failure paths (retry, backoff,
 * quarantine, worst-cost penalties) are testable with exact
 * expectations instead of flaky sleeps.
 *
 * Determinism without call-order coupling: whether a fault fires is a
 * pure hash of (configuration fingerprint, input size, plan seed), so
 * the schedule is identical across runs *and* across thread
 * interleavings — a pool lane retrying an item sees the same decision
 * a serial loop would. A per-key attempt counter makes faults
 * *transient*: a key faults on its first `faultsPerKey` attempts and
 * then succeeds, which is exactly the shape a retry budget must
 * absorb. With faultsPerKey below the engine's retry budget, every
 * injected fault recovers, and a fault-injected search reaches a
 * champion byte-identical to a clean one.
 */

#ifndef PETABRICKS_ENGINE_FAULT_INJECTION_H
#define PETABRICKS_ENGINE_FAULT_INJECTION_H

#include <memory>
#include <mutex>
#include <unordered_map>

#include "engine/execution_engine.h"

namespace petabricks {
namespace engine {

/** The fault schedule a FaultInjectingEngine executes. */
struct FaultPlan
{
    /** Mixed into every fault decision; two engines with the same seed
     * inject the same faults for the same (config, size) keys. */
    uint64_t seed = 20130316;

    /** Probability that a (config, size) key faults at all. */
    double transientRate = 0.0;

    /**
     * Failing attempts before a faulting key starts succeeding.
     * Keep below the caller's retry budget for guaranteed-recoverable
     * faults; negative means the key never recovers (an instance that
     * must end up quarantined).
     */
    int faultsPerKey = 1;

    /** Probability that a fault *hangs* (sleeps hangMillis) before
     * throwing — the shape a watchdog deadline must convert into a
     * TransientError instead of a wedged worker. */
    double hangRate = 0.0;
    int hangMillis = 20;

    /** Probability that a *successful* evaluation returns a perturbed
     * cost (scaled by perturbFactor) — garbage that upper layers must
     * never mistake for a fault-free measurement. */
    double perturbRate = 0.0;
    double perturbFactor = 2.0;
};

/** Monotonic injection counters (what the schedule actually did). */
struct FaultStats
{
    int64_t calls = 0;          ///< evaluations intercepted
    int64_t transients = 0;     ///< TransientErrors thrown
    int64_t hangs = 0;          ///< transients that slept first
    int64_t perturbations = 0;  ///< costs scaled on return
};

/** See file comment. */
class FaultInjectingEngine : public ExecutionEngine
{
  public:
    FaultInjectingEngine(std::unique_ptr<ExecutionEngine> inner,
                         FaultPlan plan);

    ExecutionEngine &inner() { return *inner_; }

    FaultStats faultStats() const;

    // Decorated evaluation entry points (single-config; batches take
    // the base-class guarded loop, so every batched evaluation passes
    // through the injector too).
    RunResult run(const apps::Benchmark &benchmark,
                  const tuner::Config &config, int64_t n) override;
    double measure(const apps::Benchmark &benchmark,
                   const tuner::Config &config, int64_t n) override;

    // Pass-throughs.
    std::string name() const override;
    bool supports(const apps::Benchmark &benchmark) const override;
    void configureTuner(tuner::TunerOptions &options) const override;
    bool
    concurrentInstancesSafe(const apps::Benchmark &benchmark) const override;

    /**
     * Delegates to the inner engine — faults that only throw/hang
     * never change a *successful* measurement, so those results are
     * still shareable under the inner scope. A plan that can perturb
     * returned costs is different: its measurements are garbage by
     * design, so the plan is mixed into the scope to keep them from
     * ever crossing into clean sessions.
     */
    uint64_t cacheScope(const apps::Benchmark &benchmark) const override;

  private:
    /** Throw/hang per the plan, or return the cost scale factor. */
    double applySchedule(const tuner::Config &config, int64_t n);

    std::unique_ptr<ExecutionEngine> inner_;
    FaultPlan plan_;

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, int> attempts_; ///< per faulting key
    FaultStats stats_;
};

} // namespace engine
} // namespace petabricks

#endif // PETABRICKS_ENGINE_FAULT_INJECTION_H
