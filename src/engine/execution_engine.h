/**
 * @file
 * The unified execution API: one polymorphic path for model-mode and
 * real-mode evaluation of any benchmark configuration.
 *
 * The paper evaluates choice configurations two ways: the autotuner's
 * analytic cost model prices a configuration on a machine profile
 * (fast, used during search), and the compiled program executes it on
 * the heterogeneous runtime (ground truth, used for the Section 6
 * results). ExecutionEngine abstracts over both so the tuner, the
 * figure harnesses, and the examples are written once:
 *
 *  - ModelEngine wraps a sim::MachineProfile and Benchmark::evaluate;
 *  - RuntimeEngine owns an emulated ocl::Device, a runtime::Runtime,
 *    and a compiler::TransformExecutor, really executes the transform,
 *    and checks the result against the benchmark's reference.
 *
 * Autotuning against real execution is then a one-line engine swap:
 * EngineEvaluator adapts any engine to the tuner::Evaluator interface.
 */

#ifndef PETABRICKS_ENGINE_EXECUTION_ENGINE_H
#define PETABRICKS_ENGINE_EXECUTION_ENGINE_H

#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "benchmarks/benchmark.h"
#include "compiler/executor.h"
#include "ocl/device.h"
#include "runtime/runtime.h"
#include "support/thread_pool.h"

namespace petabricks {
namespace engine {

/**
 * How an engine re-attempts evaluations that raise TransientError
 * (flaky device, injected fault, timed-out worker). Exponential
 * backoff: attempt k sleeps backoffBaseMillis * 2^(k-1), capped at
 * backoffMaxMillis. Non-transient FatalErrors (infeasible configs)
 * are never retried — they are deterministic.
 */
struct RetryPolicy
{
    int maxAttempts = 3;      ///< total tries per evaluation (>= 1)
    int backoffBaseMillis = 1;
    int backoffMaxMillis = 50;
};

/** Sleep before re-attempt @p attempt (1-based) per @p policy. */
void retryBackoffSleep(const RetryPolicy &policy, int attempt);

/** Monotonic failure accounting, per engine (snapshot form). */
struct EngineFailureStats
{
    int64_t transientFailures = 0; ///< TransientErrors observed
    int64_t retries = 0;           ///< re-attempts actually made
    int64_t evaluationFailures = 0; ///< gave up after maxAttempts
};

/** Outcome of evaluating one configuration at one input size. */
struct RunResult
{
    /** Execution seconds: modeled (ModelEngine) or measured wall time
     * of the emulated run (RuntimeEngine). */
    double seconds = 0.0;

    /** Residual against the benchmark's reference; always 0 in model
     * mode, which trusts the configuration to be correct. */
    double maxError = 0.0;

    /** OpenCL kernel sources the configuration JIT-compiles (the
     * Section 5.4 tuning-time model's unit of compile cost). */
    int kernelCount = 0;
};

/** See file comment. */
class ExecutionEngine
{
  public:
    virtual ~ExecutionEngine() = default;

    // Copying an engine snapshots its failure counters (the counters
    // are atomics only so guarded() can run on batch worker threads).
    ExecutionEngine() = default;
    ExecutionEngine(const ExecutionEngine &other)
        : retryPolicy_(other.retryPolicy_),
          transientFailures_(other.transientFailures_.load()),
          retries_(other.retries_.load()),
          evaluationFailures_(other.evaluationFailures_.load())
    {}
    ExecutionEngine &
    operator=(const ExecutionEngine &other)
    {
        retryPolicy_ = other.retryPolicy_;
        transientFailures_.store(other.transientFailures_.load());
        retries_.store(other.retries_.load());
        evaluationFailures_.store(other.evaluationFailures_.load());
        return *this;
    }

    /** Display name ("model:Desktop", "runtime:Desktop", ...). */
    virtual std::string name() const = 0;

    /** True if this engine can evaluate @p benchmark. */
    virtual bool supports(const apps::Benchmark &benchmark) const = 0;

    /**
     * Evaluate @p config on @p benchmark at input size @p n.
     * @throws FatalError for infeasible configurations (inadmissible
     *         placements, local-memory overflow, ...).
     */
    virtual RunResult run(const apps::Benchmark &benchmark,
                          const tuner::Config &config, int64_t n) = 0;

    /**
     * Evaluate a batch of independent configurations at one input size
     * — the unit the TuningSession submits per tuner generation.
     * Results are index-aligned with @p configs, and implementations
     * must be order-preserving: the returned vector is exactly what
     * the serial loop would produce, whatever parallelism is used
     * underneath. Default: loop over run(); the first exception (by
     * index) propagates.
     */
    virtual std::vector<RunResult> runBatch(const apps::Benchmark &benchmark,
                                            std::span<const tuner::Config> configs,
                                            int64_t n);

    /**
     * The batched counterpart of measure(): execution seconds per
     * configuration, index-aligned with @p configs. Unlike measure(),
     * infeasible configurations (FatalError) yield +inf instead of
     * throwing, so one bad mutant cannot abort a parallel generation.
     * Transient failures (TransientError — crash, hang, flake) are
     * retried per the engine's RetryPolicy; an evaluation that still
     * fails after the retry budget yields NaN, the "evaluation failed"
     * sentinel: callers must treat it as worst cost and never record
     * it as a real measurement (the TuningSession keeps NaN out of the
     * EvaluationCache). Default: loop over measureGuarded().
     */
    virtual std::vector<double>
    measureBatch(const apps::Benchmark &benchmark,
                 std::span<const tuner::Config> configs, int64_t n);

    /**
     * measure() wrapped in the engine's failure policy: TransientError
     * is retried with bounded exponential backoff, infeasible configs
     * (FatalError) price as +inf, and an evaluation whose retry budget
     * runs out returns NaN (see measureBatch). Never throws for
     * evaluation-level failures; thread-safe counters record what was
     * absorbed.
     */
    double measureGuarded(const apps::Benchmark &benchmark,
                          const tuner::Config &config, int64_t n);

    /** Retry policy applied by measureGuarded()/the batch defaults. */
    void setRetryPolicy(const RetryPolicy &policy);
    const RetryPolicy &retryPolicy() const { return retryPolicy_; }

    /** Failures absorbed (or given up on) by this engine so far. */
    EngineFailureStats failureStats() const;

    /**
     * True if *independent instances* of this engine may evaluate
     * @p benchmark concurrently (the EnginePool fan-out). Engines that
     * really execute shared benchmark state must refuse benchmarks
     * whose real-mode surface is not concurrency-safe.
     */
    virtual bool
    concurrentInstancesSafe(const apps::Benchmark &benchmark) const
    {
        (void)benchmark;
        return true;
    }

    /**
     * The tuner's inner loop: execution seconds only, with incorrect
     * results priced as infeasible — a real run whose residual exceeds
     * the benchmark's tolerance returns +inf, so wrong-but-fast
     * configurations can never win the search (the paper's
     * variable-accuracy mechanism, Section 6.2). Engines may override
     * to skip result assembly the tuner discards.
     */
    virtual double
    measure(const apps::Benchmark &benchmark, const tuner::Config &config,
            int64_t n)
    {
        RunResult result = run(benchmark, config, n);
        if (result.maxError > benchmark.realModeTolerance())
            return std::numeric_limits<double>::infinity();
        return result.seconds;
    }

    /**
     * Seed @p options with engine-specific cost-model parameters
     * (e.g. the machine profile's JIT compile model). Default: none.
     */
    virtual void
    configureTuner(tuner::TunerOptions &options) const
    {
        (void)options;
    }

    /**
     * Stable partition key for the shared evaluation cache: two
     * sessions may share cached (config, n) -> seconds results exactly
     * when their engines report equal scopes. An engine must fold in
     * everything its pricing depends on — ModelEngine hashes the full
     * machine-profile content, and decorators that can alter observed
     * costs (FaultInjectingEngine with perturbation enabled) must
     * perturb the scope too, or one session's garbage would poison
     * another's search. The default is deliberately conservative:
     * a hash of the engine's display name and the benchmark name.
     */
    virtual uint64_t cacheScope(const apps::Benchmark &benchmark) const;

  protected:
    /**
     * The retry loop behind measureGuarded(), factored so batch
     * overrides (ModelEngine's parallel lambda) can guard their own
     * evaluation calls. Thread-safe.
     */
    double guarded(const std::function<double()> &evaluate);

    // Failure accounting for subclasses that run their own retry loop
    // (EnginePool) — feeds the same failureStats() surface guarded()
    // reports into.
    void noteTransientFailure() { transientFailures_.fetch_add(1); }
    void noteRetryAttempt() { retries_.fetch_add(1); }
    void noteEvaluationFailure() { evaluationFailures_.fetch_add(1); }

  private:
    RetryPolicy retryPolicy_;
    std::atomic<int64_t> transientFailures_{0};
    std::atomic<int64_t> retries_{0};
    std::atomic<int64_t> evaluationFailures_{0};
};

/**
 * Model mode: price configurations on a machine profile.
 *
 * Batches are evaluated in parallel on an internal thread pool (the
 * cost model is a pure function of (config, n, machine), so candidates
 * of a tuner generation are independent). Results stay index-aligned,
 * so a parallel batch is bit-identical to the serial loop. Like every
 * engine, a ModelEngine is serial-per-caller: submit one batch at a
 * time; the pool provides the parallelism.
 */
class ModelEngine : public ExecutionEngine
{
  public:
    /**
     * @param machine profile to price configurations on.
     * @param parallelism thread count for batch evaluation; 0 means
     *        one per hardware thread, 1 disables parallelism.
     */
    explicit ModelEngine(sim::MachineProfile machine, int parallelism = 0)
        : machine_(std::move(machine)), parallelism_(parallelism)
    {}

    const sim::MachineProfile &machine() const { return machine_; }

    std::string name() const override { return "model:" + machine_.name; }
    bool
    supports(const apps::Benchmark &) const override
    {
        return true;
    }
    RunResult run(const apps::Benchmark &benchmark,
                  const tuner::Config &config, int64_t n) override;

    std::vector<RunResult> runBatch(const apps::Benchmark &benchmark,
                                    std::span<const tuner::Config> configs,
                                    int64_t n) override;

    std::vector<double>
    measureBatch(const apps::Benchmark &benchmark,
                 std::span<const tuner::Config> configs,
                 int64_t n) override;

    /** Model mode trusts correctness: just the cost-model seconds,
     * without assembling the kernel count run() reports. */
    double
    measure(const apps::Benchmark &benchmark, const tuner::Config &config,
            int64_t n) override
    {
        return benchmark.evaluate(config, n, machine_,
                                  contextFor(benchmark, n));
    }

    void configureTuner(tuner::TunerOptions &options) const override;

    /** Model pricing is a pure function of (config, n, machine), so
     * the scope is the machine-profile content fingerprint plus the
     * benchmark — profiles that merely share a display name do not
     * share cache entries. */
    uint64_t cacheScope(const apps::Benchmark &benchmark) const override;

  private:
    ThreadPool &pool();

    /**
     * The engine's EvaluationContext memo: the benchmark's
     * config-invariant state for (benchmark, n), built on first use
     * and reused until the key changes — so a TuningSession generation
     * (one runBatch per (benchmark, n)) builds it exactly once, and
     * consecutive single run()/measure() calls share it too. Mutated
     * only on the caller's thread (engines are serial-per-caller); the
     * batch loops resolve it once before fanning out, and the built
     * context itself is immutable and thread-safe to share.
     */
    const apps::EvalContext *contextFor(const apps::Benchmark &benchmark,
                                        int64_t n);

    sim::MachineProfile machine_;
    int parallelism_ = 0;
    std::unique_ptr<ThreadPool> pool_; // created on first batch

    uint64_t ctxBenchmarkId_ = 0; // Benchmark::instanceId(), never reused
    int64_t ctxN_ = -1;
    apps::EvalContextPtr ctx_;
};

/** Construction knobs for RuntimeEngine. */
struct RuntimeEngineOptions
{
    /** Machine whose OpenCL device spec the emulated device uses. */
    sim::MachineProfile machine = sim::MachineProfile::desktop();

    /** CPU worker threads of the runtime. */
    int workers = 2;

    /** Manage an emulated OpenCL device (requires machine.hasOpenCL). */
    bool useGpu = true;

    /** Seed for the random input bindings runs are checked on. */
    uint64_t bindingSeed = 20130316;
};

/**
 * Real mode: execute the benchmark's transform on the heterogeneous
 * runtime (work-stealing CPU workers + GPU management thread driving
 * the emulated OpenCL device) and verify the result.
 *
 * Threading contract — serial per engine, enforced: one RuntimeEngine
 * owns one runtime (worker threads, GPU manager, device memory table),
 * and a run measures wall time on that runtime, so overlapping runs on
 * the same engine would corrupt both the timing and the device state.
 * run()/runBatch() detect concurrent entry and raise FatalError.
 * runBatch() therefore executes serially; to evaluate a batch in
 * parallel on real execution, fan it across engine *instances* with
 * EnginePool.
 */
class RuntimeEngine : public ExecutionEngine
{
  public:
    explicit RuntimeEngine(RuntimeEngineOptions options = {});
    ~RuntimeEngine() override;

    std::string name() const override;
    bool
    supports(const apps::Benchmark &benchmark) const override
    {
        return benchmark.supportsRealMode();
    }

    /** Instances may run concurrently only if the benchmark's shared
     * real-mode state allows it (function-style benchmarks arm a
     * shared choice file and do not). */
    bool
    concurrentInstancesSafe(const apps::Benchmark &benchmark) const override
    {
        return benchmark.realModeConcurrencySafe();
    }

    RunResult run(const apps::Benchmark &benchmark,
                  const tuner::Config &config, int64_t n) override;

    /**
     * run() on a caller-provided binding, so outputs stay accessible
     * afterwards (run() binds fresh random inputs internally).
     */
    RunResult runOnBinding(const apps::Benchmark &benchmark,
                           const tuner::Config &config, int64_t n,
                           lang::Binding &binding);

    /** The managed device, or nullptr when running CPU-only. */
    ocl::Device *device() { return device_.get(); }

    runtime::Runtime &runtime() { return *runtime_; }

  private:
    /** RAII enforcement of the serial-per-engine contract. */
    class SerialGuard
    {
      public:
        explicit SerialGuard(RuntimeEngine &engine);
        ~SerialGuard();

      private:
        RuntimeEngine &engine_;
    };

    RuntimeEngineOptions options_;
    std::unique_ptr<ocl::Device> device_;
    std::unique_ptr<runtime::Runtime> runtime_;
    std::unique_ptr<compiler::TransformExecutor> executor_;
    std::atomic<bool> running_{false};
};

/**
 * Adapts an ExecutionEngine to the tuner::Evaluator interface, so
 * tuning against real execution is the same code path as tuning
 * against the model. Infeasible configurations evaluate to +inf.
 */
class EngineEvaluator : public tuner::Evaluator
{
  public:
    EngineEvaluator(const apps::Benchmark &benchmark,
                    ExecutionEngine &engine)
        : benchmark_(benchmark), engine_(engine)
    {}

    double
    evaluate(const tuner::Config &config, int64_t inputSize) override
    {
        // measureGuarded prices infeasible placements (local memory
        // overflow, inadmissible backend, ...) as +inf and retries
        // transient faults; a retry budget that runs out is also worst
        // cost on this single-config path (the sentinel-preserving
        // route is evaluateBatch).
        double seconds =
            engine_.measureGuarded(benchmark_, config, inputSize);
        if (std::isnan(seconds))
            return std::numeric_limits<double>::infinity();
        return seconds;
    }

    /** The generation-level batch: one engine call per tuner
     * generation instead of populationSize blocking calls. NaN entries
     * (evaluation failed after retries) pass through so the session
     * can apply its worst-cost-without-caching policy. */
    std::vector<double>
    evaluateBatch(std::span<const tuner::Config> configs,
                  int64_t inputSize) override
    {
        return engine_.measureBatch(benchmark_, configs, inputSize);
    }

    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t inputSize) override
    {
        return benchmark_.kernelSources(config, inputSize);
    }

  private:
    const apps::Benchmark &benchmark_;
    ExecutionEngine &engine_;
};

} // namespace engine
} // namespace petabricks

#endif // PETABRICKS_ENGINE_EXECUTION_ENGINE_H
