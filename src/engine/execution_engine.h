/**
 * @file
 * The unified execution API: one polymorphic path for model-mode and
 * real-mode evaluation of any benchmark configuration.
 *
 * The paper evaluates choice configurations two ways: the autotuner's
 * analytic cost model prices a configuration on a machine profile
 * (fast, used during search), and the compiled program executes it on
 * the heterogeneous runtime (ground truth, used for the Section 6
 * results). ExecutionEngine abstracts over both so the tuner, the
 * figure harnesses, and the examples are written once:
 *
 *  - ModelEngine wraps a sim::MachineProfile and Benchmark::evaluate;
 *  - RuntimeEngine owns an emulated ocl::Device, a runtime::Runtime,
 *    and a compiler::TransformExecutor, really executes the transform,
 *    and checks the result against the benchmark's reference.
 *
 * Autotuning against real execution is then a one-line engine swap:
 * EngineEvaluator adapts any engine to the tuner::Evaluator interface.
 */

#ifndef PETABRICKS_ENGINE_EXECUTION_ENGINE_H
#define PETABRICKS_ENGINE_EXECUTION_ENGINE_H

#include <memory>
#include <string>

#include "benchmarks/benchmark.h"
#include "compiler/executor.h"
#include "ocl/device.h"
#include "runtime/runtime.h"

namespace petabricks {
namespace engine {

/** Outcome of evaluating one configuration at one input size. */
struct RunResult
{
    /** Execution seconds: modeled (ModelEngine) or measured wall time
     * of the emulated run (RuntimeEngine). */
    double seconds = 0.0;

    /** Residual against the benchmark's reference; always 0 in model
     * mode, which trusts the configuration to be correct. */
    double maxError = 0.0;

    /** OpenCL kernel sources the configuration JIT-compiles (the
     * Section 5.4 tuning-time model's unit of compile cost). */
    int kernelCount = 0;
};

/** See file comment. */
class ExecutionEngine
{
  public:
    virtual ~ExecutionEngine() = default;

    /** Display name ("model:Desktop", "runtime:Desktop", ...). */
    virtual std::string name() const = 0;

    /** True if this engine can evaluate @p benchmark. */
    virtual bool supports(const apps::Benchmark &benchmark) const = 0;

    /**
     * Evaluate @p config on @p benchmark at input size @p n.
     * @throws FatalError for infeasible configurations (inadmissible
     *         placements, local-memory overflow, ...).
     */
    virtual RunResult run(const apps::Benchmark &benchmark,
                          const tuner::Config &config, int64_t n) = 0;

    /**
     * The tuner's inner loop: execution seconds only, with incorrect
     * results priced as infeasible — a real run whose residual exceeds
     * the benchmark's tolerance returns +inf, so wrong-but-fast
     * configurations can never win the search (the paper's
     * variable-accuracy mechanism, Section 6.2). Engines may override
     * to skip result assembly the tuner discards.
     */
    virtual double
    measure(const apps::Benchmark &benchmark, const tuner::Config &config,
            int64_t n)
    {
        RunResult result = run(benchmark, config, n);
        if (result.maxError > benchmark.realModeTolerance())
            return std::numeric_limits<double>::infinity();
        return result.seconds;
    }

    /**
     * Seed @p options with engine-specific cost-model parameters
     * (e.g. the machine profile's JIT compile model). Default: none.
     */
    virtual void
    configureTuner(tuner::TunerOptions &options) const
    {
        (void)options;
    }
};

/** Model mode: price configurations on a machine profile. */
class ModelEngine : public ExecutionEngine
{
  public:
    explicit ModelEngine(sim::MachineProfile machine)
        : machine_(std::move(machine))
    {}

    const sim::MachineProfile &machine() const { return machine_; }

    std::string name() const override { return "model:" + machine_.name; }
    bool
    supports(const apps::Benchmark &) const override
    {
        return true;
    }
    RunResult run(const apps::Benchmark &benchmark,
                  const tuner::Config &config, int64_t n) override;

    /** Model mode trusts correctness: just the cost-model seconds,
     * without assembling the kernel-source list run() reports. */
    double
    measure(const apps::Benchmark &benchmark, const tuner::Config &config,
            int64_t n) override
    {
        return benchmark.evaluate(config, n, machine_);
    }

    void configureTuner(tuner::TunerOptions &options) const override;

  private:
    sim::MachineProfile machine_;
};

/** Construction knobs for RuntimeEngine. */
struct RuntimeEngineOptions
{
    /** Machine whose OpenCL device spec the emulated device uses. */
    sim::MachineProfile machine = sim::MachineProfile::desktop();

    /** CPU worker threads of the runtime. */
    int workers = 2;

    /** Manage an emulated OpenCL device (requires machine.hasOpenCL). */
    bool useGpu = true;

    /** Seed for the random input bindings runs are checked on. */
    uint64_t bindingSeed = 20130316;
};

/**
 * Real mode: execute the benchmark's transform on the heterogeneous
 * runtime (work-stealing CPU workers + GPU management thread driving
 * the emulated OpenCL device) and verify the result.
 */
class RuntimeEngine : public ExecutionEngine
{
  public:
    explicit RuntimeEngine(RuntimeEngineOptions options = {});
    ~RuntimeEngine() override;

    std::string name() const override;
    bool
    supports(const apps::Benchmark &benchmark) const override
    {
        return benchmark.supportsRealMode();
    }
    RunResult run(const apps::Benchmark &benchmark,
                  const tuner::Config &config, int64_t n) override;

    /**
     * run() on a caller-provided binding, so outputs stay accessible
     * afterwards (run() binds fresh random inputs internally).
     */
    RunResult runOnBinding(const apps::Benchmark &benchmark,
                           const tuner::Config &config, int64_t n,
                           lang::Binding &binding);

    /** The managed device, or nullptr when running CPU-only. */
    ocl::Device *device() { return device_.get(); }

    runtime::Runtime &runtime() { return *runtime_; }

  private:
    RuntimeEngineOptions options_;
    std::unique_ptr<ocl::Device> device_;
    std::unique_ptr<runtime::Runtime> runtime_;
    std::unique_ptr<compiler::TransformExecutor> executor_;
};

/**
 * Adapts an ExecutionEngine to the tuner::Evaluator interface, so
 * tuning against real execution is the same code path as tuning
 * against the model. Infeasible configurations evaluate to +inf.
 */
class EngineEvaluator : public tuner::Evaluator
{
  public:
    EngineEvaluator(const apps::Benchmark &benchmark,
                    ExecutionEngine &engine)
        : benchmark_(benchmark), engine_(engine)
    {}

    double
    evaluate(const tuner::Config &config, int64_t inputSize) override
    {
        try {
            return engine_.measure(benchmark_, config, inputSize);
        } catch (const FatalError &) {
            // Infeasible placement (local memory overflow, inadmissible
            // backend, ...): never selected.
            return std::numeric_limits<double>::infinity();
        }
    }

    std::vector<std::string>
    kernelSources(const tuner::Config &config, int64_t inputSize) override
    {
        return benchmark_.kernelSources(config, inputSize);
    }

  private:
    const apps::Benchmark &benchmark_;
    ExecutionEngine &engine_;
};

} // namespace engine
} // namespace petabricks

#endif // PETABRICKS_ENGINE_EXECUTION_ENGINE_H
