#include "engine/engine_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>

#include "support/error.h"
#include "support/logging.h"

namespace petabricks {
namespace engine {

namespace {

/** Internal marker timedCall() throws on a watchdog timeout; runItem()
 * converts it into quarantine + bounce, so it never escapes the pool. */
struct LaneTimeout
{};

/** Rethrow the first recorded error (by index, matching the serial
 * loop); the shadowed remainder is logged at Warn, not dropped
 * silently. */
void
throwFirstLogRest(const std::vector<std::exception_ptr> &errors)
{
    std::exception_ptr first;
    for (const std::exception_ptr &error : errors) {
        if (!error)
            continue;
        if (!first) {
            first = error;
            continue;
        }
        try {
            std::rethrow_exception(error);
        } catch (const std::exception &shadowed) {
            PB_WARN("batch exception shadowed by an earlier one: "
                    << shadowed.what());
        } catch (...) {
            PB_WARN("non-standard batch exception shadowed by an "
                    "earlier one");
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace

EnginePool::EnginePool(const EngineFactory &factory, int engineCount,
                       PoolOptions options)
    : options_(options)
{
    PB_ASSERT(engineCount >= 1, "engine pool needs at least 1 engine");
    instances_.reserve(static_cast<size_t>(engineCount));
    for (int i = 0; i < engineCount; ++i) {
        auto instance = std::make_unique<Instance>();
        instance->engine = factory();
        PB_ASSERT(instance->engine != nullptr,
                  "engine factory returned null");
        instances_.push_back(std::move(instance));
    }
}

EnginePool::~EnginePool()
{
    reapWedged();
}

ExecutionEngine &
EnginePool::engineAt(int index)
{
    PB_ASSERT(index >= 0 && index < engineCount(),
              "engine index " << index << " out of range");
    return *instances_[static_cast<size_t>(index)]->engine;
}

PoolInstanceStats
EnginePool::instanceStats(int index) const
{
    PB_ASSERT(index >= 0 && index < engineCount(),
              "engine index " << index << " out of range");
    std::lock_guard<std::mutex> lock(mutex_);
    return instances_[static_cast<size_t>(index)]->stats;
}

int
EnginePool::liveInstanceCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    int live = 0;
    for (const auto &instance : instances_)
        if (!instance->stats.quarantined)
            ++live;
    return live;
}

std::string
EnginePool::name() const
{
    return "pool[" + std::to_string(instances_.size()) + "]:" +
           instances_.front()->engine->name();
}

bool
EnginePool::supports(const apps::Benchmark &benchmark) const
{
    return instances_.front()->engine->supports(benchmark);
}

RunResult
EnginePool::run(const apps::Benchmark &benchmark,
                const tuner::Config &config, int64_t n)
{
    return instances_.front()->engine->run(benchmark, config, n);
}

double
EnginePool::measure(const apps::Benchmark &benchmark,
                    const tuner::Config &config, int64_t n)
{
    return instances_.front()->engine->measure(benchmark, config, n);
}

void
EnginePool::configureTuner(tuner::TunerOptions &options) const
{
    instances_.front()->engine->configureTuner(options);
}

bool
EnginePool::concurrentInstancesSafe(const apps::Benchmark &benchmark) const
{
    return instances_.front()->engine->concurrentInstancesSafe(benchmark);
}

// ---- fault-tolerant fan-out machinery ----------------------------------

std::vector<EnginePool::Instance *>
EnginePool::laneSet(const apps::Benchmark &benchmark)
{
    std::vector<Instance *> lanes;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &instance : instances_)
            if (!instance->stats.quarantined)
                lanes.push_back(instance.get());
    }
    // Benchmarks whose real-mode surface is shared across instances
    // must not race: degrade to a single serial lane.
    if (lanes.size() > 1 &&
        !instances_.front()->engine->concurrentInstancesSafe(benchmark))
        lanes.resize(1);
    return lanes;
}

double
EnginePool::timedCall(Instance &instance,
                      const std::function<double()> &evaluate)
{
    if (options_.deadlineMillis <= 0)
        return evaluate();
    std::packaged_task<double()> task(evaluate);
    std::future<double> future = task.get_future();
    std::thread worker(std::move(task));
    if (future.wait_for(std::chrono::milliseconds(
            options_.deadlineMillis)) == std::future_status::ready) {
        worker.join();
        return future.get();
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        instance.wedged.push_back(std::move(worker));
    }
    throw LaneTimeout{};
}

bool
EnginePool::recordFailure(Instance &instance, bool timedOut)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++instance.stats.transientFailures;
    ++instance.stats.consecutiveFailures;
    if (timedOut)
        ++instance.stats.timeouts;
    if (!instance.stats.quarantined) {
        int live = 0;
        for (const auto &other : instances_)
            if (!other->stats.quarantined)
                ++live;
        // Timeouts quarantine unconditionally: the worker may still be
        // wedged inside the evaluation, so the engine is unsafe to
        // reuse. Plain transients quarantine on a long-enough streak,
        // but never the last live instance.
        bool quarantine =
            timedOut ||
            (options_.quarantineAfter > 0 &&
             instance.stats.consecutiveFailures >=
                 options_.quarantineAfter &&
             live > 1);
        if (quarantine) {
            instance.stats.quarantined = true;
            PB_WARN("quarantining pool instance '"
                    << instance.engine->name() << "' after "
                    << instance.stats.consecutiveFailures
                    << " consecutive failure(s)"
                    << (timedOut ? " (watchdog timeout)" : "") << "; "
                    << (live - 1) << " live instance(s) remain");
        }
    }
    return instance.stats.quarantined;
}

void
EnginePool::recordSuccess(Instance &instance)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++instance.stats.calls;
    instance.stats.consecutiveFailures = 0;
}

void
EnginePool::recordRetry(Instance &instance)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++instance.stats.retries;
}

bool
EnginePool::isQuarantined(const Instance &instance) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return instance.stats.quarantined;
}

EnginePool::Instance *
EnginePool::firstLive()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &instance : instances_)
        if (!instance->stats.quarantined)
            return instance.get();
    return nullptr;
}

void
EnginePool::reapWedged()
{
    std::vector<std::thread> wedged;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &instance : instances_)
            for (std::thread &thread : instance->wedged)
                wedged.push_back(std::move(thread));
        for (const auto &instance : instances_)
            instance->wedged.clear();
    }
    for (std::thread &thread : wedged)
        thread.join();
}

EnginePool::ItemStatus
EnginePool::runItem(
    Instance &instance, size_t i,
    const std::function<void(Instance &, size_t)> &evaluateItem,
    const std::function<void(size_t, std::exception_ptr)> &onFatal,
    std::vector<std::exception_ptr> &errors)
{
    const RetryPolicy &policy = retryPolicy();
    for (int attempt = 1;; ++attempt) {
        try {
            evaluateItem(instance, i);
            recordSuccess(instance);
            return ItemStatus::Done;
        } catch (const LaneTimeout &) {
            noteTransientFailure();
            recordFailure(instance, /*timedOut=*/true);
            return ItemStatus::Bounce;
        } catch (const TransientError &) {
            noteTransientFailure();
            if (recordFailure(instance, /*timedOut=*/false))
                return ItemStatus::Bounce;
            if (attempt >= policy.maxAttempts)
                return ItemStatus::Bounce;
            noteRetryAttempt();
            recordRetry(instance);
            retryBackoffSleep(policy, attempt);
        } catch (const FatalError &) {
            // Deterministic property of the configuration, not an
            // instance fault: the evaluation completed.
            recordSuccess(instance);
            onFatal(i, std::current_exception());
            return ItemStatus::Done;
        } catch (...) {
            recordSuccess(instance);
            errors[i] = std::current_exception();
            return ItemStatus::Done;
        }
    }
}

namespace {

/** Shared work queue drained by one thread per lane; bounced items
 * collect in @p leftovers for the serial floor pass. */
void
drainLanes(const std::vector<size_t> &laneIndex, size_t count,
           const std::function<bool(size_t lane)> &laneDead,
           const std::function<bool(size_t lane, size_t item)> &attempt,
           std::vector<size_t> &leftovers, std::mutex &leftoverMutex)
{
    std::atomic<size_t> cursor{0};
    std::vector<std::thread> threads;
    threads.reserve(laneIndex.size());
    for (size_t lane : laneIndex) {
        threads.emplace_back([&, lane] {
            for (;;) {
                if (laneDead(lane))
                    return;
                size_t item = cursor.fetch_add(1);
                if (item >= count)
                    return;
                if (!attempt(lane, item)) {
                    std::lock_guard<std::mutex> lock(leftoverMutex);
                    leftovers.push_back(item);
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    std::sort(leftovers.begin(), leftovers.end());
}

} // namespace

std::vector<double>
EnginePool::measureBatch(const apps::Benchmark &benchmark,
                         std::span<const tuner::Config> configs, int64_t n)
{
    Reaper reaper(*this);
    std::vector<double> results(configs.size(),
                                std::numeric_limits<double>::quiet_NaN());
    if (configs.empty())
        return results;

    std::vector<Instance *> lanes = laneSet(benchmark);
    std::vector<std::exception_ptr> errors(configs.size());
    std::vector<size_t> leftovers;
    std::mutex leftoverMutex;

    auto evaluateItem = [&](Instance &instance, size_t i) {
        ExecutionEngine *engine = instance.engine.get();
        results[i] = timedCall(instance, [engine, &benchmark, configs, n,
                                          i] {
            return engine->measure(benchmark, configs[i], n);
        });
    };
    auto onFatal = [&](size_t i, std::exception_ptr) {
        // Infeasible configuration: worst cost, cacheable — unlike the
        // NaN evaluation-failure sentinel.
        results[i] = std::numeric_limits<double>::infinity();
    };

    if (!lanes.empty()) {
        const size_t laneCount =
            std::min(lanes.size(), configs.size());
        std::vector<size_t> laneIndex(laneCount);
        for (size_t l = 0; l < laneCount; ++l)
            laneIndex[l] = l;
        drainLanes(
            laneIndex, configs.size(),
            [&](size_t lane) { return isQuarantined(*lanes[lane]); },
            [&](size_t lane, size_t item) {
                return runItem(*lanes[lane], item, evaluateItem,
                               onFatal, errors) == ItemStatus::Done;
            },
            leftovers, leftoverMutex);
    } else {
        PB_WARN("all " << instances_.size()
                       << " pool instances are quarantined; pricing "
                       << configs.size() << " evaluation(s) as failed");
        for (size_t i = 0; i < configs.size(); ++i)
            leftovers.push_back(i);
    }

    // Serial floor: one more pass for bounced items on a surviving
    // instance; an item that still fails keeps the NaN sentinel. When
    // instances must not run concurrently, a watchdog-abandoned
    // evaluation may still be in flight — wait it out first.
    if (!leftovers.empty() && !concurrentInstancesSafe(benchmark))
        reapWedged();
    for (size_t i : leftovers) {
        Instance *floor = firstLive();
        if (floor != nullptr &&
            runItem(*floor, i, evaluateItem, onFatal, errors) ==
                ItemStatus::Done)
            continue;
        noteEvaluationFailure();
        PB_WARN("evaluation of batch item "
                << i << " failed on every available instance; "
                   "pricing as worst cost (not cached)");
    }

    throwFirstLogRest(errors);
    return results;
}

std::vector<RunResult>
EnginePool::runBatch(const apps::Benchmark &benchmark,
                     std::span<const tuner::Config> configs, int64_t n)
{
    Reaper reaper(*this);
    std::vector<RunResult> results(configs.size());
    if (configs.empty())
        return results;

    std::vector<Instance *> lanes = laneSet(benchmark);
    std::vector<std::exception_ptr> errors(configs.size());
    std::vector<size_t> leftovers;
    std::mutex leftoverMutex;

    auto evaluateItem = [&](Instance &instance, size_t i) {
        ExecutionEngine *engine = instance.engine.get();
        // The watchdog may abandon the evaluation mid-flight, so it
        // writes a slot it owns, never the shared results array.
        auto slot = std::make_shared<RunResult>();
        timedCall(instance,
                  [engine, slot, &benchmark, configs, n, i]() -> double {
                      *slot = engine->run(benchmark, configs[i], n);
                      return 0.0;
                  });
        results[i] = *slot;
    };
    auto onFatal = [&](size_t i, std::exception_ptr error) {
        errors[i] = error;
    };

    if (!lanes.empty()) {
        const size_t laneCount =
            std::min(lanes.size(), configs.size());
        std::vector<size_t> laneIndex(laneCount);
        for (size_t l = 0; l < laneCount; ++l)
            laneIndex[l] = l;
        drainLanes(
            laneIndex, configs.size(),
            [&](size_t lane) { return isQuarantined(*lanes[lane]); },
            [&](size_t lane, size_t item) {
                return runItem(*lanes[lane], item, evaluateItem,
                               onFatal, errors) == ItemStatus::Done;
            },
            leftovers, leftoverMutex);
    } else {
        for (size_t i = 0; i < configs.size(); ++i)
            leftovers.push_back(i);
    }

    if (!leftovers.empty() && !concurrentInstancesSafe(benchmark))
        reapWedged();
    for (size_t i : leftovers) {
        Instance *floor = firstLive();
        if (floor != nullptr &&
            runItem(*floor, i, evaluateItem, onFatal, errors) ==
                ItemStatus::Done)
            continue;
        noteEvaluationFailure();
        errors[i] = std::make_exception_ptr(TransientError(
            "batch item " + std::to_string(i) +
            " failed on every available pool instance"));
    }

    throwFirstLogRest(errors);
    return results;
}

} // namespace engine
} // namespace petabricks
