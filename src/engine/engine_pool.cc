#include "engine/engine_pool.h"

#include <thread>

namespace petabricks {
namespace engine {

EnginePool::EnginePool(const EngineFactory &factory, int engineCount)
{
    PB_ASSERT(engineCount >= 1, "engine pool needs at least 1 engine");
    engines_.reserve(static_cast<size_t>(engineCount));
    for (int i = 0; i < engineCount; ++i) {
        std::unique_ptr<ExecutionEngine> engine = factory();
        PB_ASSERT(engine != nullptr, "engine factory returned null");
        engines_.push_back(std::move(engine));
    }
}

ExecutionEngine &
EnginePool::engineAt(int index)
{
    PB_ASSERT(index >= 0 && index < engineCount(),
              "engine index " << index << " out of range");
    return *engines_[static_cast<size_t>(index)];
}

std::string
EnginePool::name() const
{
    return "pool[" + std::to_string(engines_.size()) + "]:" +
           engines_.front()->name();
}

bool
EnginePool::supports(const apps::Benchmark &benchmark) const
{
    return engines_.front()->supports(benchmark);
}

RunResult
EnginePool::run(const apps::Benchmark &benchmark,
                const tuner::Config &config, int64_t n)
{
    return engines_.front()->run(benchmark, config, n);
}

double
EnginePool::measure(const apps::Benchmark &benchmark,
                    const tuner::Config &config, int64_t n)
{
    return engines_.front()->measure(benchmark, config, n);
}

void
EnginePool::configureTuner(tuner::TunerOptions &options) const
{
    engines_.front()->configureTuner(options);
}

bool
EnginePool::concurrentInstancesSafe(const apps::Benchmark &benchmark) const
{
    return engines_.front()->concurrentInstancesSafe(benchmark);
}

bool
EnginePool::canFanOut(const apps::Benchmark &benchmark,
                      size_t batch) const
{
    return engines_.size() > 1 && batch > 1 &&
           engines_.front()->concurrentInstancesSafe(benchmark);
}

namespace {

/**
 * Fan @p count items across @p lanes threads round-robin; each lane
 * runs its share serially, honoring the serial-per-engine contract.
 * The first exception by index rethrows, matching the serial loop.
 */
template <typename Result, typename PerItem>
std::vector<Result>
fanOut(size_t lanes, size_t count, PerItem &&perItem)
{
    std::vector<Result> results(count);
    std::vector<std::exception_ptr> errors(count);
    std::vector<std::thread> threads;
    threads.reserve(lanes);
    for (size_t lane = 0; lane < lanes; ++lane) {
        threads.emplace_back([&, lane] {
            for (size_t i = lane; i < count; i += lanes) {
                try {
                    results[i] = perItem(lane, i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (const std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);
    return results;
}

} // namespace

std::vector<RunResult>
EnginePool::runBatch(const apps::Benchmark &benchmark,
                     std::span<const tuner::Config> configs, int64_t n)
{
    if (!canFanOut(benchmark, configs.size()))
        return engines_.front()->runBatch(benchmark, configs, n);

    const size_t lanes = std::min(engines_.size(), configs.size());
    return fanOut<RunResult>(lanes, configs.size(),
                             [&](size_t lane, size_t i) {
                                 return engines_[lane]->run(
                                     benchmark, configs[i], n);
                             });
}

std::vector<double>
EnginePool::measureBatch(const apps::Benchmark &benchmark,
                         std::span<const tuner::Config> configs,
                         int64_t n)
{
    if (!canFanOut(benchmark, configs.size()))
        return engines_.front()->measureBatch(benchmark, configs, n);

    const size_t lanes = std::min(engines_.size(), configs.size());
    return fanOut<double>(
        lanes, configs.size(), [&](size_t lane, size_t i) {
            try {
                return engines_[lane]->measure(benchmark, configs[i], n);
            } catch (const FatalError &) {
                return std::numeric_limits<double>::infinity();
            }
        });
}

} // namespace engine
} // namespace petabricks
