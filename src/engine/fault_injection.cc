#include "engine/fault_injection.h"

#include <chrono>
#include <thread>

#include "support/error.h"
#include "support/hash.h"
#include "tuner/evaluation_cache.h"

namespace petabricks {
namespace engine {

namespace {

/** splitmix64: cheap, well-mixed, and stable across platforms. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Deterministic uniform draw in [0,1) for (key, salt). */
double
draw(uint64_t key, uint64_t salt)
{
    return static_cast<double>(mix(key ^ mix(salt)) >> 11) *
           0x1.0p-53;
}

} // namespace

FaultInjectingEngine::FaultInjectingEngine(
    std::unique_ptr<ExecutionEngine> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan)
{
    PB_ASSERT(inner_ != nullptr, "fault injector needs an inner engine");
}

FaultStats
FaultInjectingEngine::faultStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

double
FaultInjectingEngine::applySchedule(const tuner::Config &config, int64_t n)
{
    const uint64_t key =
        mix(tuner::EvaluationCache::fingerprint(config) ^
            mix(static_cast<uint64_t>(n)) ^ mix(plan_.seed));

    bool faulted = false;
    bool hang = false;
    double scale = 1.0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.calls;
        if (plan_.transientRate > 0.0 &&
            draw(key, 1) < plan_.transientRate) {
            int attempt = ++attempts_[key];
            if (plan_.faultsPerKey < 0 || attempt <= plan_.faultsPerKey) {
                faulted = true;
                hang = plan_.hangRate > 0.0 &&
                       draw(key, 2) < plan_.hangRate;
                ++stats_.transients;
                if (hang)
                    ++stats_.hangs;
            }
        }
        if (!faulted && plan_.perturbRate > 0.0 &&
            draw(key, 3) < plan_.perturbRate) {
            ++stats_.perturbations;
            scale = plan_.perturbFactor;
        }
    }
    if (hang)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan_.hangMillis));
    if (faulted)
        PB_TRANSIENT("injected fault for evaluation key "
                     << key << (hang ? " (after hang)" : ""));
    return scale;
}

RunResult
FaultInjectingEngine::run(const apps::Benchmark &benchmark,
                          const tuner::Config &config, int64_t n)
{
    double scale = applySchedule(config, n);
    RunResult result = inner_->run(benchmark, config, n);
    result.seconds *= scale;
    return result;
}

double
FaultInjectingEngine::measure(const apps::Benchmark &benchmark,
                              const tuner::Config &config, int64_t n)
{
    double scale = applySchedule(config, n);
    return inner_->measure(benchmark, config, n) * scale;
}

std::string
FaultInjectingEngine::name() const
{
    return "fault:" + inner_->name();
}

bool
FaultInjectingEngine::supports(const apps::Benchmark &benchmark) const
{
    return inner_->supports(benchmark);
}

void
FaultInjectingEngine::configureTuner(tuner::TunerOptions &options) const
{
    inner_->configureTuner(options);
}

bool
FaultInjectingEngine::concurrentInstancesSafe(
    const apps::Benchmark &benchmark) const
{
    return inner_->concurrentInstancesSafe(benchmark);
}

uint64_t
FaultInjectingEngine::cacheScope(const apps::Benchmark &benchmark) const
{
    uint64_t scope = inner_->cacheScope(benchmark);
    if (plan_.perturbRate > 0.0)
        scope = Fnv1a()
                    .mix(std::string("perturbed"))
                    .mix(scope)
                    .mix(plan_.seed)
                    .mix(plan_.perturbRate)
                    .mix(plan_.perturbFactor)
                    .value();
    return scope;
}

} // namespace engine
} // namespace petabricks
