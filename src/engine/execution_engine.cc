#include "engine/execution_engine.h"

#include <chrono>

namespace petabricks {
namespace engine {

// ---- ModelEngine -------------------------------------------------------

RunResult
ModelEngine::run(const apps::Benchmark &benchmark,
                 const tuner::Config &config, int64_t n)
{
    RunResult result;
    result.seconds = benchmark.evaluate(config, n, machine_);
    result.kernelCount =
        static_cast<int>(benchmark.kernelSources(config, n).size());
    return result;
}

void
ModelEngine::configureTuner(tuner::TunerOptions &options) const
{
    options.kernelCompileSeconds = machine_.kernelCompileSeconds;
    options.irCacheSavings = machine_.irCacheSavings;
}

// ---- RuntimeEngine -----------------------------------------------------

RuntimeEngine::RuntimeEngine(RuntimeEngineOptions options)
    : options_(std::move(options))
{
    if (options_.useGpu && options_.machine.hasOpenCL)
        device_ = std::make_unique<ocl::Device>(options_.machine.ocl);
    runtime_ = std::make_unique<runtime::Runtime>(
        options_.workers, device_.get(), options_.bindingSeed);
    executor_ = std::make_unique<compiler::TransformExecutor>(*runtime_);
}

RuntimeEngine::~RuntimeEngine() = default;

std::string
RuntimeEngine::name() const
{
    return "runtime:" + options_.machine.name +
           (device_ ? "" : " (CPU-only)");
}

RunResult
RuntimeEngine::run(const apps::Benchmark &benchmark,
                   const tuner::Config &config, int64_t n)
{
    if (!benchmark.supportsRealMode())
        PB_FATAL("benchmark '" << benchmark.name()
                               << "' has no real-mode implementation");
    Rng rng(options_.bindingSeed ^ static_cast<uint64_t>(n));
    lang::Binding binding = benchmark.makeBinding(n, rng);
    return runOnBinding(benchmark, config, n, binding);
}

RunResult
RuntimeEngine::runOnBinding(const apps::Benchmark &benchmark,
                            const tuner::Config &config, int64_t n,
                            lang::Binding &binding)
{
    if (!benchmark.supportsRealMode())
        PB_FATAL("benchmark '" << benchmark.name()
                               << "' has no real-mode implementation");

    // planFor() both builds the stage placement and arms the choice
    // file the function-style transforms dispatch on.
    compiler::TransformConfig plan = benchmark.planFor(config, n);

    auto start = std::chrono::steady_clock::now();
    executor_->execute(benchmark.transform(), binding, plan);
    executor_->syncOutputs(benchmark.transform(), binding);
    auto stop = std::chrono::steady_clock::now();

    RunResult result;
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    result.maxError = benchmark.checkOutput(binding);
    result.kernelCount =
        static_cast<int>(benchmark.kernelSources(config, n).size());
    return result;
}

} // namespace engine
} // namespace petabricks
