#include "engine/execution_engine.h"

#include <chrono>
#include <thread>

#include "support/error.h"
#include "support/hash.h"
#include "support/logging.h"

namespace petabricks {
namespace engine {

// ---- ExecutionEngine failure policy ------------------------------------

void
retryBackoffSleep(const RetryPolicy &policy, int attempt)
{
    int64_t millis = policy.backoffBaseMillis;
    for (int i = 1; i < attempt && millis < policy.backoffMaxMillis; ++i)
        millis *= 2;
    millis = std::min<int64_t>(millis, policy.backoffMaxMillis);
    if (millis > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(millis));
}

void
ExecutionEngine::setRetryPolicy(const RetryPolicy &policy)
{
    PB_ASSERT(policy.maxAttempts >= 1, "retry policy needs >= 1 attempt");
    retryPolicy_ = policy;
}

uint64_t
ExecutionEngine::cacheScope(const apps::Benchmark &benchmark) const
{
    return Fnv1a().mix(name()).mix(benchmark.name()).value();
}

EngineFailureStats
ExecutionEngine::failureStats() const
{
    EngineFailureStats stats;
    stats.transientFailures = transientFailures_.load();
    stats.retries = retries_.load();
    stats.evaluationFailures = evaluationFailures_.load();
    return stats;
}

double
ExecutionEngine::guarded(const std::function<double()> &evaluate)
{
    for (int attempt = 1;; ++attempt) {
        try {
            return evaluate();
        } catch (const TransientError &error) {
            // Environment fault, not a property of the configuration:
            // retry within budget, then surface the NaN sentinel so the
            // caller prices it as worst cost without caching it.
            transientFailures_.fetch_add(1);
            if (attempt >= retryPolicy_.maxAttempts) {
                evaluationFailures_.fetch_add(1);
                PB_WARN("evaluation failed after "
                        << attempt << " attempts: " << error.what());
                return std::numeric_limits<double>::quiet_NaN();
            }
            retries_.fetch_add(1);
            retryBackoffSleep(retryPolicy_, attempt);
        } catch (const FatalError &) {
            // Infeasible configuration: deterministic, never retried.
            return std::numeric_limits<double>::infinity();
        }
    }
}

double
ExecutionEngine::measureGuarded(const apps::Benchmark &benchmark,
                                const tuner::Config &config, int64_t n)
{
    return guarded([&] { return measure(benchmark, config, n); });
}

// ---- ExecutionEngine batch defaults ------------------------------------

std::vector<RunResult>
ExecutionEngine::runBatch(const apps::Benchmark &benchmark,
                          std::span<const tuner::Config> configs,
                          int64_t n)
{
    std::vector<RunResult> results;
    results.reserve(configs.size());
    for (const tuner::Config &config : configs)
        results.push_back(run(benchmark, config, n));
    return results;
}

std::vector<double>
ExecutionEngine::measureBatch(const apps::Benchmark &benchmark,
                              std::span<const tuner::Config> configs,
                              int64_t n)
{
    std::vector<double> seconds;
    seconds.reserve(configs.size());
    for (const tuner::Config &config : configs)
        seconds.push_back(measureGuarded(benchmark, config, n));
    return seconds;
}

// ---- ModelEngine -------------------------------------------------------

const apps::EvalContext *
ModelEngine::contextFor(const apps::Benchmark &benchmark, int64_t n)
{
    if (ctxBenchmarkId_ != benchmark.instanceId() || ctxN_ != n) {
        ctx_ = benchmark.makeEvalContext(n, machine_);
        ctxBenchmarkId_ = benchmark.instanceId();
        ctxN_ = n;
    }
    return ctx_.get();
}

RunResult
ModelEngine::run(const apps::Benchmark &benchmark,
                 const tuner::Config &config, int64_t n)
{
    RunResult result;
    result.seconds =
        benchmark.evaluate(config, n, machine_, contextFor(benchmark, n));
    // Count-only: a full kernelSources() synthesis per evaluation just
    // to take .size() was the single largest model-mode overhead.
    result.kernelCount = benchmark.kernelCount(config, n);
    return result;
}

ThreadPool &
ModelEngine::pool()
{
    if (!pool_) {
        int threads = parallelism_;
        if (threads <= 0)
            threads =
                static_cast<int>(std::thread::hardware_concurrency());
        if (threads < 1)
            threads = 1;
        pool_ = std::make_unique<ThreadPool>(threads);
    }
    return *pool_;
}

std::vector<RunResult>
ModelEngine::runBatch(const apps::Benchmark &benchmark,
                      std::span<const tuner::Config> configs, int64_t n)
{
    // Resolve the shared context on the caller's thread: the memo is
    // not touched inside the parallel region.
    const apps::EvalContext *ctx = contextFor(benchmark, n);
    std::vector<RunResult> results(configs.size());
    pool().parallelFor(configs.size(), [&](size_t i) {
        RunResult result;
        result.seconds =
            benchmark.evaluate(configs[i], n, machine_, ctx);
        result.kernelCount = benchmark.kernelCount(configs[i], n);
        results[i] = result;
    });
    return results;
}

std::vector<double>
ModelEngine::measureBatch(const apps::Benchmark &benchmark,
                          std::span<const tuner::Config> configs,
                          int64_t n)
{
    const apps::EvalContext *ctx = contextFor(benchmark, n);
    std::vector<double> seconds(configs.size(), 0.0);
    pool().parallelFor(configs.size(), [&](size_t i) {
        // guarded() prices infeasible configs as +inf and absorbs
        // transient faults (retry, then the NaN sentinel) — same
        // failure semantics as the serial default.
        seconds[i] = guarded(
            [&] { return benchmark.evaluate(configs[i], n, machine_, ctx); });
    });
    return seconds;
}

void
ModelEngine::configureTuner(tuner::TunerOptions &options) const
{
    options.kernelCompileSeconds = machine_.kernelCompileSeconds;
    options.irCacheSavings = machine_.irCacheSavings;
}

uint64_t
ModelEngine::cacheScope(const apps::Benchmark &benchmark) const
{
    return Fnv1a()
        .mix(std::string("model"))
        .mix(machine_.fingerprint())
        .mix(benchmark.name())
        .value();
}

// ---- RuntimeEngine -----------------------------------------------------

RuntimeEngine::RuntimeEngine(RuntimeEngineOptions options)
    : options_(std::move(options))
{
    if (options_.useGpu && options_.machine.hasOpenCL)
        device_ = std::make_unique<ocl::Device>(options_.machine.ocl);
    runtime_ = std::make_unique<runtime::Runtime>(
        options_.workers, device_.get(), options_.bindingSeed);
    executor_ = std::make_unique<compiler::TransformExecutor>(*runtime_);
}

RuntimeEngine::~RuntimeEngine() = default;

RuntimeEngine::SerialGuard::SerialGuard(RuntimeEngine &engine)
    : engine_(engine)
{
    if (engine_.running_.exchange(true))
        PB_FATAL("RuntimeEngine is serial-per-engine: a run is already "
                 "in flight on '"
                 << engine_.name()
                 << "'; fan batches across instances with EnginePool");
}

RuntimeEngine::SerialGuard::~SerialGuard()
{
    engine_.running_.store(false);
}

std::string
RuntimeEngine::name() const
{
    return "runtime:" + options_.machine.name +
           (device_ ? "" : " (CPU-only)");
}

RunResult
RuntimeEngine::run(const apps::Benchmark &benchmark,
                   const tuner::Config &config, int64_t n)
{
    if (!benchmark.supportsRealMode())
        PB_FATAL("benchmark '" << benchmark.name()
                               << "' has no real-mode implementation");
    Rng rng(options_.bindingSeed ^ static_cast<uint64_t>(n));
    lang::Binding binding = benchmark.makeBinding(n, rng);
    return runOnBinding(benchmark, config, n, binding);
}

RunResult
RuntimeEngine::runOnBinding(const apps::Benchmark &benchmark,
                            const tuner::Config &config, int64_t n,
                            lang::Binding &binding)
{
    if (!benchmark.supportsRealMode())
        PB_FATAL("benchmark '" << benchmark.name()
                               << "' has no real-mode implementation");
    SerialGuard guard(*this);

    // planFor() both builds the stage placement and arms the choice
    // file the function-style transforms dispatch on.
    compiler::TransformConfig plan = benchmark.planFor(config, n);

    auto start = std::chrono::steady_clock::now();
    executor_->execute(benchmark.transform(), binding, plan);
    executor_->syncOutputs(benchmark.transform(), binding);
    auto stop = std::chrono::steady_clock::now();

    RunResult result;
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    result.maxError = benchmark.checkOutput(binding);
    result.kernelCount = benchmark.kernelCount(config, n);
    return result;
}

} // namespace engine
} // namespace petabricks
