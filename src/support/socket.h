/**
 * @file
 * Thin RAII wrappers over POSIX TCP sockets and a self-pipe.
 *
 * The service daemon's front end is a single poll() loop that owns
 * every socket (the pazpar2 shape: one event thread, non-blocking
 * I/O), with worker threads handing finished results back through a
 * SelfPipe wake-up — the classic sel_thread bridge. These wrappers
 * keep the fd bookkeeping (CLOEXEC, non-blocking mode, EINTR retries,
 * close-on-destroy) out of the server logic, and give the blocking
 * service::Client the same primitives.
 *
 * Deliberately minimal: IPv4 only, no TLS, loopback-oriented — the
 * daemon is an intra-host control plane, not an internet service.
 */

#ifndef PETABRICKS_SUPPORT_SOCKET_H
#define PETABRICKS_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace petabricks {
namespace net {

/** Owning file descriptor; closes on destruction, move-only. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &operator=(Fd &&other) noexcept;
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close the held descriptor (no-op when empty). */
    void reset();

  private:
    int fd_ = -1;
};

/** Put @p fd in non-blocking mode; fatal error on failure. */
void setNonBlocking(int fd);

/**
 * poll() @p fd for readability for at most @p timeoutMillis.
 * @return true when readable (or the peer hung up — the next read
 *         observes it), false on timeout. @p timeoutMillis < 0 waits
 *         forever. Fatal error on poll() failure.
 */
bool waitReadable(int fd, int timeoutMillis);

/**
 * A connected TCP byte stream. Obtained from TcpListener::accept()
 * (server side, non-blocking) or TcpStream::connect() (client side,
 * blocking).
 */
class TcpStream
{
  public:
    TcpStream() = default;
    explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

    /** Blocking connect to @p host:@p port; fatal error on failure. */
    static TcpStream connect(const std::string &host, uint16_t port);

    /**
     * connect() with a deadline: the attempt runs non-blocking and is
     * poll()ed for at most @p timeoutMillis. A dead or unresponsive
     * peer surfaces as TransientError (retryable — the daemon may be
     * restarting) instead of blocking the caller forever; other
     * failures stay FatalError. @p timeoutMillis <= 0 means no
     * deadline (identical to connect()).
     */
    static TcpStream connect(const std::string &host, uint16_t port,
                             int timeoutMillis);

    bool valid() const { return fd_.valid(); }
    int fd() const { return fd_.get(); }
    void close() { fd_.reset(); }

    /**
     * Read up to @p capacity bytes into @p buffer.
     * @return bytes read; 0 on orderly peer close; -1 when the socket
     *         is non-blocking and no data is available. Fatal error on
     *         hard I/O errors.
     */
    ptrdiff_t read(char *buffer, size_t capacity);

    /**
     * Write up to @p size bytes from @p buffer.
     * @return bytes written (possibly short); -1 when the socket is
     *         non-blocking and the send buffer is full. Fatal error on
     *         hard I/O errors (including a closed peer: EPIPE is an
     *         error result, not a signal).
     */
    ptrdiff_t write(const char *buffer, size_t size);

    /** Blocking: write the whole buffer; fatal error on failure. */
    void writeAll(const std::string &data);

  private:
    Fd fd_;
};

/** A listening TCP socket bound to @p host:@p port. */
class TcpListener
{
  public:
    /**
     * Bind and listen. @p port 0 picks an ephemeral port — read the
     * actual one back with port(). SO_REUSEADDR is set so a restarted
     * daemon can rebind its old port immediately. Fatal error on
     * failure. The accept socket is non-blocking.
     */
    TcpListener(const std::string &host, uint16_t port);

    int fd() const { return fd_.get(); }

    /** The locally bound port (resolves port-0 binds). */
    uint16_t port() const { return port_; }

    /**
     * Accept one pending connection, already set non-blocking.
     * Returns an invalid stream when no connection is pending.
     */
    TcpStream accept();

  private:
    Fd fd_;
    uint16_t port_ = 0;
};

/**
 * The sel_thread wake-up: worker threads notify() when they finish a
 * job; the poll() loop watches readFd() and drain()s the bytes. Writes
 * are non-blocking — a full pipe is fine, one pending byte is enough
 * to wake the loop.
 */
class SelfPipe
{
  public:
    SelfPipe();

    int readFd() const { return read_.get(); }

    /** Wake the poller (safe from any thread). */
    void notify();

    /** Consume all pending wake-up bytes. */
    void drain();

  private:
    Fd read_;
    Fd write_;
};

} // namespace net
} // namespace petabricks

#endif // PETABRICKS_SUPPORT_SOCKET_H
