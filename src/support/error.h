/**
 * @file
 * Error reporting primitives, following the gem5 fatal/panic split.
 *
 * panic() is for internal invariant violations (bugs in this library);
 * fatal() is for user errors (bad configuration, invalid arguments).
 */

#ifndef PETABRICKS_SUPPORT_ERROR_H
#define PETABRICKS_SUPPORT_ERROR_H

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace petabricks {

/** Exception thrown for user-caused errors (bad config, bad arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * An evaluation failed in a way that condemns the *evaluation*, not
 * the configuration: the measured result is garbage or was never
 * produced. Distinct from plain FatalError (infeasible configuration:
 * deterministic, price as +inf and move on) so harness layers can
 * account for flaky evaluations separately. Catch-ordering matters:
 * handlers must catch the subclasses below before FatalError.
 */
class EvaluationError : public FatalError
{
  public:
    explicit EvaluationError(const std::string &msg) : FatalError(msg) {}
};

/**
 * A *retryable* evaluation failure: the device crashed, the worker
 * hung past its deadline, the daemon connection timed out — faults of
 * the environment, not of the configuration under test. Callers with a
 * retry budget should re-attempt; callers without one should treat the
 * configuration like the paper treats inadmissible configs (worst
 * cost, move on) and never record the result as a real measurement.
 */
class TransientError : public EvaluationError
{
  public:
    explicit TransientError(const std::string &msg) : EvaluationError(msg)
    {}
};

/**
 * A persistence write failed (disk full, injected EIO, rename error).
 * The in-memory state is still good; only durability is degraded.
 * Persistence call sites catch this, bump a counter, warn, and keep
 * serving from memory — an IoError must never corrupt prior on-disk
 * state, because every write goes through write-temp + rename.
 */
class IoError : public FatalError
{
  public:
    explicit IoError(const std::string &msg) : FatalError(msg) {}
};

/** Exception thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

[[noreturn]] void throwFatal(const char *file, int line,
                             const std::string &msg);
[[noreturn]] void throwPanic(const char *file, int line,
                             const std::string &msg);
[[noreturn]] void throwTransient(const char *file, int line,
                                 const std::string &msg);
[[noreturn]] void throwIo(const char *file, int line,
                          const std::string &msg);

} // namespace detail

} // namespace petabricks

/** Report an unrecoverable user error (bad config / arguments). */
#define PB_FATAL(msg)                                                       \
    do {                                                                    \
        std::ostringstream pb_oss_;                                         \
        pb_oss_ << msg;                                                     \
        ::petabricks::detail::throwFatal(__FILE__, __LINE__,                \
                                         pb_oss_.str());                    \
    } while (0)

/** Report a retryable evaluation failure (see TransientError). */
#define PB_TRANSIENT(msg)                                                   \
    do {                                                                    \
        std::ostringstream pb_oss_;                                         \
        pb_oss_ << msg;                                                     \
        ::petabricks::detail::throwTransient(__FILE__, __LINE__,            \
                                             pb_oss_.str());                \
    } while (0)

/** Report a persistence write failure (see IoError). */
#define PB_IO_FAIL(msg)                                                     \
    do {                                                                    \
        std::ostringstream pb_oss_;                                         \
        pb_oss_ << msg;                                                     \
        ::petabricks::detail::throwIo(__FILE__, __LINE__, pb_oss_.str());   \
    } while (0)

/** Report an internal invariant violation (a bug in this library). */
#define PB_PANIC(msg)                                                       \
    do {                                                                    \
        std::ostringstream pb_oss_;                                         \
        pb_oss_ << msg;                                                     \
        ::petabricks::detail::throwPanic(__FILE__, __LINE__,                \
                                         pb_oss_.str());                    \
    } while (0)

/** Assert an internal invariant; always enabled (cheap checks only). */
#define PB_ASSERT(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            PB_PANIC("assertion failed: " #cond ": " << msg);               \
        }                                                                   \
    } while (0)

#endif // PETABRICKS_SUPPORT_ERROR_H
