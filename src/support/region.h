/**
 * @file
 * Rectangular regions of 2-D matrices.
 *
 * The paper's terminology (Section 4.3): a *matrix* is an n-dimensional
 * dense array that is an input or output of a transform; a *region* is a
 * part of a matrix defined by a start coordinate and size that is an input
 * or output of a rule. This library specializes to the 2-D case (1-D data
 * uses height 1), which covers all seven paper benchmarks.
 */

#ifndef PETABRICKS_SUPPORT_REGION_H
#define PETABRICKS_SUPPORT_REGION_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

namespace petabricks {

/** Half-open rectangular region [x, x+w) x [y, y+h) of a matrix. */
struct Region
{
    int64_t x = 0;
    int64_t y = 0;
    int64_t w = 0;
    int64_t h = 0;

    Region() = default;
    Region(int64_t x_, int64_t y_, int64_t w_, int64_t h_)
        : x(x_), y(y_), w(w_), h(h_)
    {}

    /** Region covering a full w x h matrix. */
    static Region full(int64_t w, int64_t h) { return Region(0, 0, w, h); }

    /** Number of cells. */
    int64_t area() const { return w * h; }

    bool empty() const { return w <= 0 || h <= 0; }

    /** True if @p other lies entirely within this region. */
    bool
    contains(const Region &other) const
    {
        return other.x >= x && other.y >= y && other.x + other.w <= x + w &&
               other.y + other.h <= y + h;
    }

    /** True if the point (px, py) lies within this region. */
    bool
    containsPoint(int64_t px, int64_t py) const
    {
        return px >= x && px < x + w && py >= y && py < y + h;
    }

    /** True if the two regions share at least one cell. */
    bool
    intersects(const Region &other) const
    {
        return !intersect(other).empty();
    }

    /** Intersection (possibly empty) of the two regions. */
    Region
    intersect(const Region &other) const
    {
        int64_t x0 = std::max(x, other.x);
        int64_t y0 = std::max(y, other.y);
        int64_t x1 = std::min(x + w, other.x + other.w);
        int64_t y1 = std::min(y + h, other.y + other.h);
        return Region(x0, y0, std::max<int64_t>(0, x1 - x0),
                      std::max<int64_t>(0, y1 - y0));
    }

    /** Smallest region containing both inputs. */
    Region
    unionBound(const Region &other) const
    {
        if (empty())
            return other;
        if (other.empty())
            return *this;
        int64_t x0 = std::min(x, other.x);
        int64_t y0 = std::min(y, other.y);
        int64_t x1 = std::max(x + w, other.x + other.w);
        int64_t y1 = std::max(y + h, other.y + other.h);
        return Region(x0, y0, x1 - x0, y1 - y0);
    }

    bool
    operator==(const Region &other) const
    {
        return x == other.x && y == other.y && w == other.w && h == other.h;
    }

    bool operator!=(const Region &other) const { return !(*this == other); }
};

inline std::ostream &
operator<<(std::ostream &os, const Region &r)
{
    return os << "[" << r.x << "," << r.y << " " << r.w << "x" << r.h << "]";
}

/**
 * Subtract @p b from @p a: the parts of @p a not covered by @p b, as at
 * most four disjoint rectangles. Used by the GPU memory table to track
 * which parts of a matrix are valid on which side.
 */
inline std::vector<Region>
subtractRegion(const Region &a, const Region &b)
{
    Region cut = a.intersect(b);
    if (cut.empty())
        return {a};
    std::vector<Region> rest;
    // Band above the cut.
    if (cut.y > a.y)
        rest.emplace_back(a.x, a.y, a.w, cut.y - a.y);
    // Band below the cut.
    if (cut.y + cut.h < a.y + a.h) {
        rest.emplace_back(a.x, cut.y + cut.h, a.w,
                          a.y + a.h - (cut.y + cut.h));
    }
    // Left and right slivers beside the cut.
    if (cut.x > a.x)
        rest.emplace_back(a.x, cut.y, cut.x - a.x, cut.h);
    if (cut.x + cut.w < a.x + a.w) {
        rest.emplace_back(cut.x + cut.w, cut.y, a.x + a.w - (cut.x + cut.w),
                          cut.h);
    }
    return rest;
}

/** True if the union of @p pieces covers all of @p target. */
inline bool
regionsCover(const std::vector<Region> &pieces, const Region &target)
{
    if (target.empty())
        return true;
    std::vector<Region> uncovered{target};
    for (const Region &piece : pieces) {
        std::vector<Region> next;
        for (const Region &hole : uncovered) {
            auto parts = subtractRegion(hole, piece);
            next.insert(next.end(), parts.begin(), parts.end());
        }
        uncovered.swap(next);
        if (uncovered.empty())
            return true;
    }
    return uncovered.empty();
}

/** Hash functor so regions can key unordered containers. */
struct RegionHash
{
    size_t
    operator()(const Region &r) const
    {
        size_t seed = std::hash<int64_t>()(r.x);
        auto mix = [&seed](int64_t v) {
            seed ^= std::hash<int64_t>()(v) + 0x9e3779b9 + (seed << 6) +
                    (seed >> 2);
        };
        mix(r.y);
        mix(r.w);
        mix(r.h);
        return seed;
    }
};

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_REGION_H
