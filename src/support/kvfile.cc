#include "support/kvfile.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/crashpoint.h"
#include "support/error.h"

namespace petabricks {

namespace {

std::string
trim(const std::string &s)
{
    size_t begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    size_t end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

} // namespace

void
KvFile::set(const std::string &key, const std::string &value)
{
    PB_ASSERT(key.find('=') == std::string::npos &&
                  key.find('\n') == std::string::npos,
              "invalid key '" << key << "'");
    PB_ASSERT(value.find('\n') == std::string::npos,
              "value for '" << key << "' contains newline");
    entries_[key] = value;
}

void
KvFile::setInt(const std::string &key, int64_t value)
{
    set(key, std::to_string(value));
}

void
KvFile::setDouble(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    set(key, oss.str());
}

void
KvFile::setIntList(const std::string &key,
                   const std::vector<int64_t> &values)
{
    std::ostringstream oss;
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            oss << ",";
        oss << values[i];
    }
    set(key, oss.str());
}

bool
KvFile::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

const std::string &
KvFile::get(const std::string &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        PB_FATAL("missing config key '" << key << "'");
    return it->second;
}

int64_t
KvFile::getInt(const std::string &key) const
{
    const std::string &raw = get(key);
    try {
        size_t pos = 0;
        int64_t value = std::stoll(raw, &pos);
        if (pos != raw.size())
            PB_FATAL("trailing junk in int key '" << key << "': " << raw);
        return value;
    } catch (const std::invalid_argument &) {
        PB_FATAL("key '" << key << "' is not an integer: " << raw);
    } catch (const std::out_of_range &) {
        PB_FATAL("key '" << key << "' out of int64 range: " << raw);
    }
}

double
KvFile::getDouble(const std::string &key) const
{
    const std::string &raw = get(key);
    try {
        size_t pos = 0;
        double value = std::stod(raw, &pos);
        if (pos != raw.size())
            PB_FATAL("trailing junk in double key '" << key << "': " << raw);
        return value;
    } catch (const std::invalid_argument &) {
        PB_FATAL("key '" << key << "' is not a double: " << raw);
    } catch (const std::out_of_range &) {
        PB_FATAL("key '" << key << "' out of double range: " << raw);
    }
}

std::vector<int64_t>
KvFile::getIntList(const std::string &key) const
{
    const std::string &raw = get(key);
    std::vector<int64_t> values;
    if (trim(raw).empty())
        return values;
    std::istringstream iss(raw);
    std::string item;
    while (std::getline(iss, item, ',')) {
        try {
            values.push_back(std::stoll(trim(item)));
        } catch (const std::exception &) {
            PB_FATAL("bad int list element in '" << key << "': " << item);
        }
    }
    return values;
}

int64_t
KvFile::getIntOr(const std::string &key, int64_t fallback) const
{
    return has(key) ? getInt(key) : fallback;
}

std::vector<std::string>
KvFile::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &kv : entries_)
        out.push_back(kv.first);
    return out;
}

std::string
KvFile::toString() const
{
    std::ostringstream oss;
    for (const auto &kv : entries_)
        oss << kv.first << " = " << kv.second << "\n";
    return oss.str();
}

KvFile
KvFile::fromString(const std::string &text)
{
    KvFile kv;
    std::istringstream iss(text);
    std::string line;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        std::string stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#')
            continue;
        size_t eq = stripped.find('=');
        if (eq == std::string::npos)
            PB_FATAL("config line " << lineno << " has no '=': " << line);
        std::string key = trim(stripped.substr(0, eq));
        std::string value = trim(stripped.substr(eq + 1));
        if (key.empty())
            PB_FATAL("config line " << lineno << " has empty key");
        kv.entries_[key] = value;
    }
    return kv;
}

void
KvFile::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        PB_FATAL("cannot open '" << path << "' for writing");
    out << toString();
    if (!out)
        PB_FATAL("write to '" << path << "' failed");
}

void
KvFile::saveAtomic(const std::string &path,
                   const std::string &crashPrefix) const
{
    const std::string temp = path + ".tmp";
    const std::string payload = toString();

    crashpoint::fire(crashPrefix + ".pre_write");

    int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        PB_IO_FAIL("cannot open '" << temp
                                   << "' for writing: " << strerror(errno));

    crashpoint::WriteFault fault =
        crashpoint::fireWrite(crashPrefix + ".write");
    size_t toWrite = payload.size();
    if (fault.action != crashpoint::Action::None) {
        // Injected short write: keepBytes if given, else half — enough
        // to leave a recognisably torn file, never a complete one.
        size_t keep = fault.explicitBytes ? fault.keepBytes
                                          : payload.size() / 2;
        toWrite = std::min(keep, payload.size());
    }

    size_t written = 0;
    while (written < toWrite) {
        ssize_t n =
            ::write(fd, payload.data() + written, toWrite - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            PB_IO_FAIL("write to '" << temp
                                    << "' failed: " << strerror(err));
        }
        written += static_cast<size_t>(n);
    }

    if (fault.action == crashpoint::Action::Enospc) {
        ::close(fd);
        PB_IO_FAIL("write to '" << temp << "' failed: "
                                << strerror(ENOSPC) << " (injected)");
    }
    if (fault.action == crashpoint::Action::Eio) {
        ::close(fd);
        PB_IO_FAIL("write to '" << temp << "' failed: " << strerror(EIO)
                                << " (injected)");
    }

    // Fsync before rename: otherwise a crash shortly after could leave
    // the *renamed* file empty on some filesystems, defeating the
    // old-or-new guarantee the spool fsck relies on.
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        PB_IO_FAIL("fsync of '" << temp
                                << "' failed: " << strerror(err));
    }
    if (::close(fd) != 0)
        PB_IO_FAIL("close of '" << temp
                                << "' failed: " << strerror(errno));

    crashpoint::fire(crashPrefix + ".pre_rename");

    if (std::rename(temp.c_str(), path.c_str()) != 0)
        PB_IO_FAIL("rename '" << temp << "' -> '" << path
                              << "' failed: " << strerror(errno));

    crashpoint::fire(crashPrefix + ".post_rename");
}

KvFile
KvFile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PB_FATAL("cannot open '" << path << "' for reading");
    std::ostringstream oss;
    oss << in.rdbuf();
    return fromString(oss.str());
}

} // namespace petabricks
