#include "support/error.h"

namespace petabricks {
namespace detail {

namespace {

std::string
decorate(const char *kind, const char *file, int line,
         const std::string &msg)
{
    std::ostringstream oss;
    oss << kind << " at " << file << ":" << line << ": " << msg;
    return oss.str();
}

} // namespace

void
throwFatal(const char *file, int line, const std::string &msg)
{
    throw FatalError(decorate("fatal", file, line, msg));
}

void
throwPanic(const char *file, int line, const std::string &msg)
{
    throw PanicError(decorate("panic", file, line, msg));
}

void
throwTransient(const char *file, int line, const std::string &msg)
{
    throw TransientError(decorate("transient", file, line, msg));
}

void
throwIo(const char *file, int line, const std::string &msg)
{
    throw IoError(decorate("io", file, line, msg));
}

} // namespace detail
} // namespace petabricks
