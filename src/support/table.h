/**
 * @file
 * Plain-text table rendering for the figure/table benchmark harnesses.
 *
 * Every bench binary reproduces a paper table or figure by printing the
 * same rows/series the paper reports; TextTable keeps that output aligned
 * and diff-friendly.
 */

#ifndef PETABRICKS_SUPPORT_TABLE_H
#define PETABRICKS_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace petabricks {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with padded columns and a rule under the header. */
    std::string toString() const;

    size_t rows() const { return rows_.size(); }

    /** Format helper: fixed-precision double. */
    static std::string num(double value, int precision = 3);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_TABLE_H
