#include "support/fsck.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "support/logging.h"

namespace fs = std::filesystem;

namespace petabricks {
namespace fsck {

namespace {

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

FileKind
classify(const std::string &path)
{
    std::string name = fs::path(path).filename().string();
    // `.quarantine` may carry a collision suffix (`.quarantine.1`).
    if (name.find(".quarantine") != std::string::npos)
        return FileKind::Quarantine;
    if (endsWith(name, ".tmp"))
        return FileKind::Temp;
    if (endsWith(name, ".meta"))
        return FileKind::SpoolMeta;
    if (endsWith(name, ".ckpt"))
        return FileKind::SpoolCheckpoint;
    if (startsWith(name, "seg-") && endsWith(name, ".kv"))
        return FileKind::CacheSegment;
    if (startsWith(name, "champ-") && endsWith(name, ".kv"))
        return FileKind::Champion;
    return FileKind::Other;
}

const char *
kindName(FileKind kind)
{
    switch (kind) {
    case FileKind::SpoolMeta:
        return "session meta";
    case FileKind::SpoolCheckpoint:
        return "session checkpoint";
    case FileKind::CacheSegment:
        return "cache segment";
    case FileKind::Champion:
        return "portfolio champion";
    case FileKind::Temp:
        return "temp file";
    case FileKind::Quarantine:
        return "quarantined";
    case FileKind::Other:
        break;
    }
    return "other";
}

std::string
quarantine(const std::string &path)
{
    std::string target = path + ".quarantine";
    std::error_code ec;
    for (int i = 1; fs::exists(target, ec); ++i)
        target = path + ".quarantine." + std::to_string(i);
    fs::rename(path, target, ec);
    if (ec) {
        PB_WARN("fsck: failed to quarantine '" << path
                                               << "': " << ec.message());
        return "";
    }
    return target;
}

std::vector<ScanEntry>
scan(const std::string &dir)
{
    std::vector<ScanEntry> out;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        ScanEntry se;
        se.path = entry.path().string();
        se.kind = classify(se.path);
        std::error_code sizeEc;
        se.bytes = entry.file_size(sizeEc);
        out.push_back(std::move(se));
    }
    std::sort(out.begin(), out.end(),
              [](const ScanEntry &a, const ScanEntry &b) {
                  return a.path < b.path;
              });
    return out;
}

size_t
purge(const std::string &dir, bool alsoTemps)
{
    size_t removed = 0;
    for (const auto &entry : scan(dir)) {
        if (entry.kind != FileKind::Quarantine &&
            !(alsoTemps && entry.kind == FileKind::Temp))
            continue;
        std::error_code ec;
        if (fs::remove(entry.path, ec) && !ec)
            ++removed;
        else if (ec)
            PB_WARN("fsck: failed to remove '" << entry.path
                                               << "': " << ec.message());
    }
    return removed;
}

} // namespace fsck
} // namespace petabricks
