#include "support/crashpoint.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>

#include "support/error.h"

namespace petabricks {
namespace crashpoint {

namespace {

struct Arm {
    Action action = Action::None;
    size_t keepBytes = 0;
    bool explicitBytes = false;
    int targetHit = 1; // 1-based traversal count at which to fire
};

struct State {
    std::mutex mutex;
    std::set<std::string> registry;
    std::map<std::string, Arm> schedule;
    std::map<std::string, int> hits;
    // Fast-path gate: persistence calls pay one relaxed load when no
    // schedule is armed. Starts true iff the env var is present so the
    // first traversal parses it (registration statics have run by
    // then); setSchedule keeps it in sync afterwards.
    std::atomic<bool> maybeArmed{false};
    bool envPending = false;

    State()
    {
        // The built-in persistence paths are registered HERE, not by
        // static initializers in their own translation units: with a
        // static library, an archive member whose symbols a binary
        // never references is dropped wholesale, initializers
        // included, and the catalog would silently shrink depending on
        // what each binary happens to link. This TU is always pulled
        // in (anything that arms or fires a point calls into it).
        for (const char *prefix :
             {"spool.meta", "spool.ckpt", "cache.seg", "portfolio.champ"})
            for (const char *suffix :
                 {".pre_write", ".write", ".pre_rename", ".post_rename"})
                registry.insert(std::string(prefix) + suffix);

        if (const char *env = std::getenv("PB_CRASH_SCHEDULE");
            env && *env) {
            envPending = true;
            maybeArmed.store(true, std::memory_order_relaxed);
        }
    }
};

State &
state()
{
    static State s;
    return s;
}

std::string
trim(const std::string &s)
{
    size_t begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    size_t end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

Action
parseAction(const std::string &word, const std::string &item)
{
    if (word == "kill")
        return Action::Kill;
    if (word == "torn")
        return Action::Torn;
    if (word == "enospc")
        return Action::Enospc;
    if (word == "eio")
        return Action::Eio;
    PB_FATAL("crash schedule '" << item << "': unknown action '" << word
                                << "' (want kill|torn|enospc|eio)");
}

/** Parse `name[@hit]=action[:bytes]` items into s.schedule (locked). */
void
parseScheduleLocked(State &s, const std::string &spec)
{
    std::map<std::string, Arm> parsed;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        std::string item = trim(spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos)
            PB_FATAL("crash schedule item '" << item << "' has no '='");
        std::string lhs = trim(item.substr(0, eq));
        std::string rhs = trim(item.substr(eq + 1));
        Arm arm;
        size_t at = lhs.find('@');
        std::string name = lhs;
        if (at != std::string::npos) {
            name = trim(lhs.substr(0, at));
            try {
                arm.targetHit = std::stoi(lhs.substr(at + 1));
            } catch (const std::exception &) {
                PB_FATAL("crash schedule '" << item << "': bad hit count");
            }
            if (arm.targetHit < 1)
                PB_FATAL("crash schedule '" << item
                                            << "': hit count must be >= 1");
        }
        size_t colon = rhs.find(':');
        std::string actionWord = rhs;
        if (colon != std::string::npos) {
            actionWord = trim(rhs.substr(0, colon));
            try {
                arm.keepBytes = std::stoul(rhs.substr(colon + 1));
                arm.explicitBytes = true;
            } catch (const std::exception &) {
                PB_FATAL("crash schedule '" << item << "': bad byte count");
            }
        }
        arm.action = parseAction(actionWord, item);
        if (!s.registry.count(name))
            PB_FATAL("crash schedule names unregistered point '"
                     << name << "' (see crashpoint::catalog())");
        if (arm.action != Action::Kill &&
            (name.size() < 6 ||
             name.compare(name.size() - 6, 6, ".write") != 0))
            PB_FATAL("crash schedule '"
                     << item << "': " << actionWord
                     << " is only meaningful at a .write point");
        parsed[name] = arm;
    }
    s.schedule = std::move(parsed);
    s.hits.clear();
    s.maybeArmed.store(!s.schedule.empty(), std::memory_order_relaxed);
}

/** Load PB_CRASH_SCHEDULE if it has not been consumed yet (locked). */
void
ensureEnvLoadedLocked(State &s)
{
    if (!s.envPending)
        return;
    s.envPending = false;
    const char *env = std::getenv("PB_CRASH_SCHEDULE");
    if (env && *env)
        parseScheduleLocked(s, env);
    else
        s.maybeArmed.store(!s.schedule.empty(),
                           std::memory_order_relaxed);
}

/** Look up the action for this traversal of @p name (locked). */
Arm
hitLocked(State &s, const std::string &name)
{
    auto it = s.schedule.find(name);
    if (it == s.schedule.end())
        return Arm{};
    int hit = ++s.hits[name];
    if (hit != it->second.targetHit)
        return Arm{};
    return it->second;
}

[[noreturn]] void
killAt(const std::string &name)
{
    // Async-signal-safe-ish: raw write, then _exit so no destructors,
    // atexit handlers, or buffered streams run — this is simulating a
    // power cut at a precise point in the persistence sequence.
    std::string msg =
        "crashpoint: killing process at '" + name + "'\n";
    ssize_t ignored = ::write(STDERR_FILENO, msg.data(), msg.size());
    (void)ignored;
    ::_exit(kCrashExitCode);
}

} // namespace

void
fire(const std::string &name)
{
    State &s = state();
    if (!s.maybeArmed.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(s.mutex);
    ensureEnvLoadedLocked(s);
    Arm arm = hitLocked(s, name);
    if (arm.action == Action::Kill)
        killAt(name);
    // Write faults scheduled on a non-write point are rejected at
    // parse time, so anything else here is None.
}

WriteFault
fireWrite(const std::string &name)
{
    State &s = state();
    if (!s.maybeArmed.load(std::memory_order_relaxed))
        return WriteFault{};
    std::lock_guard<std::mutex> lock(s.mutex);
    ensureEnvLoadedLocked(s);
    Arm arm = hitLocked(s, name);
    if (arm.action == Action::Kill)
        killAt(name);
    return WriteFault{arm.action, arm.keepBytes, arm.explicitBytes};
}

void
setSchedule(const std::string &spec)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.envPending = false; // explicit schedule overrides the env var
    parseScheduleLocked(s, spec);
}

void
clearSchedule()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.envPending = false;
    s.schedule.clear();
    s.hits.clear();
    s.maybeArmed.store(false, std::memory_order_relaxed);
}

bool
armed()
{
    State &s = state();
    if (!s.maybeArmed.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(s.mutex);
    ensureEnvLoadedLocked(s);
    return !s.schedule.empty();
}

std::vector<std::string>
catalog()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return {s.registry.begin(), s.registry.end()};
}

bool
registerAtomicSavePrefix(const std::string &prefix)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const char *suffix :
         {".pre_write", ".write", ".pre_rename", ".post_rename"})
        s.registry.insert(prefix + suffix);
    return true;
}

} // namespace crashpoint
} // namespace petabricks
