/**
 * @file
 * A coalescing set of rectangular regions with exact union semantics.
 *
 * The model-mode residency tracker needs three operations per rule
 * application: "how much of this region is not yet covered?", "add this
 * region", and "remove this region". The naive representation (append
 * every region to a vector and subtract hole-by-hole) grows its
 * subtract lists quadratically over a transform's stages. RegionSet
 * keeps the piece list small by dropping covered inserts, erasing
 * swallowed pieces, and merging pieces whose union is exactly a
 * rectangle — all transformations that preserve the represented point
 * set, so areas computed against a RegionSet are bit-identical to the
 * naive list (the fast-path golden tests rely on this).
 *
 * Scratch buffers are members and reused across calls, so a RegionSet
 * owned by a per-thread workspace performs no steady-state allocation.
 */

#ifndef PETABRICKS_SUPPORT_REGION_SET_H
#define PETABRICKS_SUPPORT_REGION_SET_H

#include <vector>

#include "support/region.h"

namespace petabricks {

/** See file comment. */
class RegionSet
{
  public:
    /** Remove all pieces (keeps buffer capacity). */
    void
    clear()
    {
        pieces_.clear();
    }

    bool empty() const { return pieces_.empty(); }

    /** Current rectangles; their union is the represented set. Pieces
     * may overlap when no exact rectangular merge exists. */
    const std::vector<Region> &pieces() const { return pieces_; }

    /** Area of @p target not covered by the set. Non-const: queries
     * reuse the scratch buffers, so a RegionSet — even one only being
     * read — must not be shared across threads. */
    int64_t uncoveredArea(const Region &target);

    /** True if the set covers every cell of @p target. */
    bool
    covers(const Region &target)
    {
        return uncoveredArea(target) == 0;
    }

    /** Union @p region into the set, coalescing where exact. */
    void insert(const Region &region);

    /** Remove every cell of @p region from the set. */
    void subtract(const Region &region);

    /** Exact area of the union of all pieces (non-const: see
     * uncoveredArea). */
    int64_t totalArea();

  private:
    std::vector<Region> pieces_;

    // Reused hole lists for the subtract sweeps.
    std::vector<Region> scratchA_;
    std::vector<Region> scratchB_;
};

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_REGION_SET_H
