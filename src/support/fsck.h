/**
 * @file
 * Shared quarantine/fsck helpers for the three persistence stores.
 *
 * The checkpoint spool, the shared-cache segment store, and the
 * champion portfolio all follow the same discipline: on boot, any file
 * that fails to parse is renamed aside to `<name>.quarantine` — never
 * deleted, never fatal — and serving continues without it. This header
 * factors the rename-aside and the directory-scan logic the stores and
 * the `pbfsck` CLI share.
 */

#ifndef PETABRICKS_SUPPORT_FSCK_H
#define PETABRICKS_SUPPORT_FSCK_H

#include <cstdint>
#include <string>
#include <vector>

namespace petabricks {
namespace fsck {

/** What kind of artifact a file in a store directory is. */
enum class FileKind {
    SpoolMeta,       ///< `<id>.meta` — session spec
    SpoolCheckpoint, ///< `<id>.ckpt` — session checkpoint
    CacheSegment,    ///< `seg-NNNNNNNN.kv` — cache segment
    Champion,        ///< `champ-*.kv` — portfolio champion
    Temp,            ///< `*.tmp` — in-flight write, crash debris
    Quarantine,      ///< `*.quarantine` — fsck'd wreckage
    Other,           ///< anything else
};

/** Classify @p path (by filename pattern only; no I/O). For a
 *  quarantined file the kind is Quarantine; use classify() on the
 *  original name (strip the suffix) to learn what it was. */
FileKind classify(const std::string &path);

/** Human-readable name for @p kind ("cache segment", ...). */
const char *kindName(FileKind kind);

/**
 * Rename @p path aside to `<path>.quarantine`. If that name is taken
 * (a previous boot already quarantined one), appends `.1`, `.2`, ...
 * so nothing is ever overwritten. Returns the quarantine path, or ""
 * if the rename itself failed (logged as a warning — fsck must never
 * make boot worse).
 */
std::string quarantine(const std::string &path);

/** One entry from scanning a store directory. */
struct ScanEntry {
    std::string path;
    FileKind kind = FileKind::Other;
    uintmax_t bytes = 0;
};

/**
 * List regular files in @p dir (non-recursive), classified and sorted
 * by path. A missing directory yields an empty list.
 */
std::vector<ScanEntry> scan(const std::string &dir);

/**
 * Delete quarantine files (and, when @p alsoTemps, `*.tmp` debris)
 * under @p dir. Returns the number of files removed.
 */
size_t purge(const std::string &dir, bool alsoTemps);

} // namespace fsck
} // namespace petabricks

#endif // PETABRICKS_SUPPORT_FSCK_H
