#include "support/thread_pool.h"

namespace petabricks {

ThreadPool::ThreadPool(int threads)
{
    int workerCount = threads > 1 ? threads - 1 : 0;
    workers_.reserve(static_cast<size_t>(workerCount));
    for (int i = 0; i < workerCount; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runJob(Job &job)
{
    while (true) {
        size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.count)
            return;
        try {
            (*job.body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.errorMutex);
            if (i < job.errorIndex) {
                job.errorIndex = i;
                job.error = std::current_exception();
            }
        }
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.count) {
            // Lock pairs with the waiter's predicate check so the
            // notification cannot fall between check and wait.
            std::lock_guard<std::mutex> lock(job.doneMutex);
            job.doneCv.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || (job_ != nullptr && jobSeq_ != seen);
            });
            if (stop_)
                return;
            seen = jobSeq_;
            job = job_; // shared ownership keeps the Job alive even if
                        // parallelFor() returns before we touch it
        }
        runJob(*job);
    }
}

void
ThreadPool::parallelFor(size_t count,
                        const std::function<void(size_t)> &body)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::lock_guard<std::mutex> submit(submitMutex_);
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->count = count;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++jobSeq_;
    }
    wake_.notify_all();

    runJob(*job); // the calling thread works too
    {
        std::unique_lock<std::mutex> lock(job->doneMutex);
        job->doneCv.wait(lock, [&] {
            return job->done.load(std::memory_order_acquire) >= count;
        });
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_.reset();
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

} // namespace petabricks
