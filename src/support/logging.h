/**
 * @file
 * Minimal leveled logger. Thread safe, writes to stderr.
 *
 * Levels follow gem5's message taxonomy: inform() for status, warn() for
 * suspicious-but-survivable conditions. Verbosity is process global and
 * defaults to Warn so tests and benchmarks stay quiet.
 */

#ifndef PETABRICKS_SUPPORT_LOGGING_H
#define PETABRICKS_SUPPORT_LOGGING_H

#include <sstream>
#include <string>

namespace petabricks {

/** Severity of a log message. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Silent = 3,
};

/** Set the global verbosity threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

namespace detail {

void logMessage(LogLevel level, const std::string &msg);

} // namespace detail

} // namespace petabricks

#define PB_LOG_AT(level, msg)                                               \
    do {                                                                    \
        if (static_cast<int>(level) >=                                      \
            static_cast<int>(::petabricks::logLevel())) {                   \
            std::ostringstream pb_log_oss_;                                 \
            pb_log_oss_ << msg;                                             \
            ::petabricks::detail::logMessage(level, pb_log_oss_.str());     \
        }                                                                   \
    } while (0)

/** Developer tracing; off by default. */
#define PB_DEBUG(msg) PB_LOG_AT(::petabricks::LogLevel::Debug, msg)
/** Status messages a user may care about. */
#define PB_INFORM(msg) PB_LOG_AT(::petabricks::LogLevel::Info, msg)
/** Suspicious conditions that do not stop execution. */
#define PB_WARN(msg) PB_LOG_AT(::petabricks::LogLevel::Warn, msg)

#endif // PETABRICKS_SUPPORT_LOGGING_H
