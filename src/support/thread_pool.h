/**
 * @file
 * A minimal reusable fork-join thread pool.
 *
 * The batched evaluation path (engine::ModelEngine::runBatch and
 * engine::EnginePool) prices the candidates of a tuner generation in
 * parallel. Generations are small (a population is ~8-16 configs) and
 * frequent, so spawning threads per batch would dominate; the pool
 * keeps its workers parked on a condition variable between batches.
 *
 * parallelFor() is order-preserving by construction: every index
 * writes only its own result slot, so callers observe exactly the
 * serial outcome regardless of worker count — the property the
 * tuner's batch-vs-serial determinism guarantee rests on.
 */

#ifndef PETABRICKS_SUPPORT_THREAD_POOL_H
#define PETABRICKS_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace petabricks {

/** See file comment. */
class ThreadPool
{
  public:
    /**
     * @param threads total execution width, including the thread that
     *        calls parallelFor() (so 1 means no workers, purely
     *        serial). Clamped to >= 1.
     */
    explicit ThreadPool(int threads);

    /** Drains nothing: joins idle workers. Outstanding parallelFor()
     * calls must have returned. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution width, including the calling thread. */
    int threadCount() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Run body(i) for every i in [0, count) across the workers plus
     * the calling thread; returns when all indices completed. If any
     * body throws, the exception of the lowest index is rethrown after
     * the batch drains (matching what a serial loop would surface
     * first). Not reentrant: body must not call parallelFor() on the
     * same pool.
     */
    void parallelFor(size_t count, const std::function<void(size_t)> &body);

  private:
    struct Job
    {
        const std::function<void(size_t)> *body = nullptr;
        size_t count = 0;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::mutex doneMutex;
        std::condition_variable doneCv;
        std::mutex errorMutex;
        size_t errorIndex = SIZE_MAX;
        std::exception_ptr error;
    };

    void workerLoop();
    static void runJob(Job &job);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::shared_ptr<Job> job_;
    uint64_t jobSeq_ = 0;
    bool stop_ = false;
    std::mutex submitMutex_; // serializes parallelFor() callers
};

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_THREAD_POOL_H
