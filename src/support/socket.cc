#include "support/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/error.h"

namespace petabricks {
namespace net {

Fd &
Fd::operator=(Fd &&other) noexcept
{
    if (this != &other) {
        reset();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        PB_FATAL("fcntl(O_NONBLOCK): " << std::strerror(errno));
}

namespace {

sockaddr_in
makeAddress(const std::string &host, uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        PB_FATAL("bad IPv4 address '" << host << "'");
    return addr;
}

Fd
makeTcpSocket()
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        PB_FATAL("socket(): " << std::strerror(errno));
    return Fd(fd);
}

} // namespace

TcpStream
TcpStream::connect(const std::string &host, uint16_t port)
{
    Fd fd = makeTcpSocket();
    sockaddr_in addr = makeAddress(host, port);
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        PB_FATAL("connect to " << host << ":" << port << ": "
                               << std::strerror(errno));
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream(std::move(fd));
}

bool
waitReadable(int fd, int timeoutMillis)
{
    pollfd pfd{fd, POLLIN, 0};
    int rc;
    do {
        rc = ::poll(&pfd, 1, timeoutMillis);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        PB_FATAL("poll: " << std::strerror(errno));
    return rc > 0;
}

TcpStream
TcpStream::connect(const std::string &host, uint16_t port,
                   int timeoutMillis)
{
    if (timeoutMillis <= 0)
        return connect(host, port);

    Fd fd = makeTcpSocket();
    setNonBlocking(fd.get());
    sockaddr_in addr = makeAddress(host, port);
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0 && errno != EINPROGRESS)
        PB_TRANSIENT("connect to " << host << ":" << port << ": "
                                   << std::strerror(errno));
    if (rc < 0) {
        pollfd pfd{fd.get(), POLLOUT, 0};
        do {
            rc = ::poll(&pfd, 1, timeoutMillis);
        } while (rc < 0 && errno == EINTR);
        if (rc == 0)
            PB_TRANSIENT("connect to " << host << ":" << port
                                       << " timed out after "
                                       << timeoutMillis << " ms");
        if (rc < 0)
            PB_FATAL("poll: " << std::strerror(errno));
        int soError = 0;
        socklen_t len = sizeof(soError);
        if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soError,
                         &len) < 0)
            PB_FATAL("getsockopt(SO_ERROR): " << std::strerror(errno));
        if (soError != 0)
            PB_TRANSIENT("connect to " << host << ":" << port << ": "
                                       << std::strerror(soError));
    }
    // Back to blocking mode: the client's write/read path assumes it.
    int flags = ::fcntl(fd.get(), F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0)
        PB_FATAL("fcntl(~O_NONBLOCK): " << std::strerror(errno));
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream(std::move(fd));
}

ptrdiff_t
TcpStream::read(char *buffer, size_t capacity)
{
    ptrdiff_t n;
    do {
        n = ::read(fd_.get(), buffer, capacity);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return -1;
        PB_FATAL("socket read: " << std::strerror(errno));
    }
    return n;
}

ptrdiff_t
TcpStream::write(const char *buffer, size_t size)
{
    ptrdiff_t n;
    do {
        // MSG_NOSIGNAL: a vanished peer must surface as an EPIPE error
        // result, not kill the daemon with SIGPIPE.
        n = ::send(fd_.get(), buffer, size, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return -1;
        PB_FATAL("socket write: " << std::strerror(errno));
    }
    return n;
}

void
TcpStream::writeAll(const std::string &data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        ptrdiff_t n = write(data.data() + sent, data.size() - sent);
        PB_ASSERT(n >= 0, "writeAll() requires a blocking socket");
        sent += static_cast<size_t>(n);
    }
}

TcpListener::TcpListener(const std::string &host, uint16_t port)
{
    fd_ = makeTcpSocket();
    int one = 1;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = makeAddress(host, port);
    if (::bind(fd_.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        PB_FATAL("bind " << host << ":" << port << ": "
                         << std::strerror(errno));
    if (::listen(fd_.get(), 64) < 0)
        PB_FATAL("listen: " << std::strerror(errno));
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_.get(), reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        PB_FATAL("getsockname: " << std::strerror(errno));
    port_ = ntohs(addr.sin_port);
    setNonBlocking(fd_.get());
}

TcpStream
TcpListener::accept()
{
    int fd;
    do {
        fd = ::accept(fd_.get(), nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return TcpStream();
        PB_FATAL("accept: " << std::strerror(errno));
    }
    setNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream(Fd(fd));
}

SelfPipe::SelfPipe()
{
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) < 0)
        PB_FATAL("pipe2: " << std::strerror(errno));
    read_ = Fd(fds[0]);
    write_ = Fd(fds[1]);
}

void
SelfPipe::notify()
{
    char byte = 1;
    // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
    [[maybe_unused]] ssize_t n = ::write(write_.get(), &byte, 1);
}

void
SelfPipe::drain()
{
    char buffer[256];
    while (::read(read_.get(), buffer, sizeof(buffer)) > 0) {
    }
}

} // namespace net
} // namespace petabricks
