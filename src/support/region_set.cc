#include "support/region_set.h"

#include <algorithm>

namespace petabricks {

namespace {

/** Area of the union of @p a and @p b if that union is exactly their
 * bounding rectangle; used to detect lossless merges. */
bool
mergesExactly(const Region &a, const Region &b, Region &merged)
{
    Region bound = a.unionBound(b);
    int64_t covered = a.area() + b.area() - a.intersect(b).area();
    if (bound.area() != covered)
        return false;
    merged = bound;
    return true;
}

} // namespace

int64_t
RegionSet::uncoveredArea(const Region &target)
{
    if (target.empty())
        return 0;
    scratchA_.clear();
    scratchA_.push_back(target);
    for (const Region &piece : pieces_) {
        scratchB_.clear();
        for (const Region &hole : scratchA_)
            for (const Region &part : subtractRegion(hole, piece))
                scratchB_.push_back(part);
        scratchA_.swap(scratchB_);
        if (scratchA_.empty())
            return 0;
    }
    int64_t area = 0;
    for (const Region &hole : scratchA_)
        area += hole.area();
    return area;
}

void
RegionSet::insert(const Region &region)
{
    if (region.empty())
        return;
    Region incoming = region;
    // Swallow pieces the incoming rectangle covers, and attempt exact
    // rectangular merges until none applies (a merge can enable
    // another, e.g. row bands accreting into one rectangle).
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < pieces_.size();) {
            const Region &piece = pieces_[i];
            if (piece.contains(incoming))
                return; // already fully represented
            if (incoming.contains(piece)) {
                pieces_[i] = pieces_.back();
                pieces_.pop_back();
                continue;
            }
            Region merged;
            if (mergesExactly(piece, incoming, merged)) {
                incoming = merged;
                pieces_[i] = pieces_.back();
                pieces_.pop_back();
                changed = true;
                continue;
            }
            ++i;
        }
    }
    pieces_.push_back(incoming);
}

void
RegionSet::subtract(const Region &region)
{
    if (region.empty() || pieces_.empty())
        return;
    scratchA_.clear();
    for (const Region &piece : pieces_)
        for (const Region &part : subtractRegion(piece, region))
            scratchA_.push_back(part);
    pieces_.swap(scratchA_);
}

int64_t
RegionSet::totalArea()
{
    // Sum each piece minus the union of the pieces before it: exact
    // even when pieces overlap.
    int64_t area = 0;
    for (size_t i = 0; i < pieces_.size(); ++i) {
        scratchA_.clear();
        scratchA_.push_back(pieces_[i]);
        for (size_t j = 0; j < i && !scratchA_.empty(); ++j) {
            scratchB_.clear();
            for (const Region &hole : scratchA_)
                for (const Region &part :
                     subtractRegion(hole, pieces_[j]))
                    scratchB_.push_back(part);
            scratchA_.swap(scratchB_);
        }
        for (const Region &part : scratchA_)
            area += part.area();
    }
    return area;
}

} // namespace petabricks
