/**
 * @file
 * Dense 2-D matrices with shared storage and region views.
 *
 * Matrices use shared, reference-counted storage so that views handed to
 * rules, tasks, and the GPU memory manager stay valid without copying.
 * Each storage allocation carries a unique id; the GPU memory table
 * (runtime/gpu_memory.h) keys its residency map on (storageId, region).
 */

#ifndef PETABRICKS_SUPPORT_MATRIX_H
#define PETABRICKS_SUPPORT_MATRIX_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/error.h"
#include "support/region.h"

namespace petabricks {

namespace detail {

/** Process-unique id for a matrix storage allocation. */
inline uint64_t
nextStorageId()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

template <typename T> class MatrixView;
template <typename T> class ConstMatrixView;

/**
 * Owning, shared, row-major 2-D matrix.
 *
 * Copying a Matrix is shallow (shares storage), matching the PetaBricks
 * runtime where many tasks reference disjoint regions of one allocation.
 * Use clone() for a deep copy.
 */
template <typename T>
class Matrix
{
  public:
    Matrix() : Matrix(0, 0) {}

    /** Allocate a w x h matrix; contents value-initialized. */
    Matrix(int64_t w, int64_t h)
        : storage_(std::make_shared<Storage>(w * h)), w_(w), h_(h)
    {
        PB_ASSERT(w >= 0 && h >= 0, "matrix dims must be non-negative");
    }

    /** Allocate a 1-D matrix of length n (height 1). */
    static Matrix vector(int64_t n) { return Matrix(n, 1); }

    int64_t width() const { return w_; }
    int64_t height() const { return h_; }
    int64_t size() const { return w_ * h_; }
    Region fullRegion() const { return Region::full(w_, h_); }

    /** Unique id of the underlying allocation. */
    uint64_t storageId() const { return storage_->id; }

    /** Bytes occupied by the full matrix. */
    int64_t bytes() const { return size() * static_cast<int64_t>(sizeof(T)); }

    T &
    at(int64_t x, int64_t y)
    {
        PB_ASSERT(x >= 0 && x < w_ && y >= 0 && y < h_,
                  "index (" << x << "," << y << ") out of " << w_ << "x"
                            << h_);
        return storage_->cells[y * w_ + x];
    }

    const T &
    at(int64_t x, int64_t y) const
    {
        PB_ASSERT(x >= 0 && x < w_ && y >= 0 && y < h_,
                  "index (" << x << "," << y << ") out of " << w_ << "x"
                            << h_);
        return storage_->cells[y * w_ + x];
    }

    /** 1-D accessor (for vectors / flat iteration). */
    T &operator[](int64_t i) { return storage_->cells[i]; }
    const T &operator[](int64_t i) const { return storage_->cells[i]; }

    T *data() { return storage_->cells.data(); }
    const T *data() const { return storage_->cells.data(); }

    /** Deep copy with fresh storage. */
    Matrix
    clone() const
    {
        Matrix copy(w_, h_);
        copy.storage_->cells = storage_->cells;
        return copy;
    }

    /** Mutable view of @p region (must lie inside the matrix). */
    MatrixView<T> view(const Region &region);

    /** Read-only view of @p region (must lie inside the matrix). */
    ConstMatrixView<T> view(const Region &region) const;

    /** Mutable view of the whole matrix. */
    MatrixView<T> view() { return view(fullRegion()); }
    ConstMatrixView<T> view() const { return view(fullRegion()); }

    bool
    sameStorage(const Matrix &other) const
    {
        return storage_ == other.storage_;
    }

  private:
    struct Storage
    {
        explicit Storage(int64_t n)
            : id(detail::nextStorageId()), cells(static_cast<size_t>(n))
        {}
        uint64_t id;
        std::vector<T> cells;
    };

    std::shared_ptr<Storage> storage_;
    int64_t w_;
    int64_t h_;

    friend class MatrixView<T>;
    friend class ConstMatrixView<T>;
};

/**
 * Mutable window into a region of a Matrix. Indices are region-local:
 * at(0,0) is the region's top-left cell.
 */
template <typename T>
class MatrixView
{
  public:
    MatrixView(Matrix<T> parent, const Region &region)
        : parent_(std::move(parent)), region_(region)
    {
        PB_ASSERT(parent_.fullRegion().contains(region),
                  "view region " << region << " outside matrix");
    }

    int64_t width() const { return region_.w; }
    int64_t height() const { return region_.h; }
    const Region &region() const { return region_; }
    uint64_t storageId() const { return parent_.storageId(); }
    Matrix<T> &parent() { return parent_; }

    T &
    at(int64_t x, int64_t y)
    {
        return parent_.at(region_.x + x, region_.y + y);
    }

    const T &
    at(int64_t x, int64_t y) const
    {
        return parent_.at(region_.x + x, region_.y + y);
    }

  private:
    Matrix<T> parent_;
    Region region_;
};

/** Read-only window into a region of a Matrix. */
template <typename T>
class ConstMatrixView
{
  public:
    ConstMatrixView(Matrix<T> parent, const Region &region)
        : parent_(std::move(parent)), region_(region)
    {
        PB_ASSERT(parent_.fullRegion().contains(region),
                  "view region " << region << " outside matrix");
    }

    int64_t width() const { return region_.w; }
    int64_t height() const { return region_.h; }
    const Region &region() const { return region_; }
    uint64_t storageId() const { return parent_.storageId(); }
    const Matrix<T> &parent() const { return parent_; }

    const T &
    at(int64_t x, int64_t y) const
    {
        return parent_.at(region_.x + x, region_.y + y);
    }

  private:
    Matrix<T> parent_;
    Region region_;
};

template <typename T>
MatrixView<T>
Matrix<T>::view(const Region &region)
{
    return MatrixView<T>(*this, region);
}

template <typename T>
ConstMatrixView<T>
Matrix<T>::view(const Region &region) const
{
    return ConstMatrixView<T>(*this, region);
}

/** Element type used throughout the benchmarks (paper's ElementT). */
using ElementT = double;
using MatrixD = Matrix<ElementT>;

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_MATRIX_H
