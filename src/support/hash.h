/**
 * @file
 * Incremental FNV-1a hashing.
 *
 * The repo already relies on FNV-1a in two hot places —
 * Config::valueFingerprint() and the fault injector's per-key
 * schedule — and the shared evaluation cache adds two more (machine
 * fingerprints and cache scope keys). This header centralizes the
 * idiom as a tiny incremental hasher so every new fingerprint mixes
 * fields the same way: word-at-a-time with separator words, strings
 * with a terminator byte so adjacent fields cannot alias.
 *
 * The hash is stable across processes and platforms (it depends only
 * on the mixed byte sequence), which is what lets fingerprints key
 * on-disk cache segments and checkpoint schema checks.
 */

#ifndef PETABRICKS_SUPPORT_HASH_H
#define PETABRICKS_SUPPORT_HASH_H

#include <bit>
#include <cstdint>
#include <string>

namespace petabricks {

/** See file comment. */
class Fnv1a
{
  public:
    /** Mix one 64-bit word, byte by byte (little-endian order). */
    Fnv1a &
    mix(uint64_t value)
    {
        for (int byte = 0; byte < 8; ++byte) {
            hash_ ^= (value >> (8 * byte)) & 0xff;
            hash_ *= kPrime;
        }
        return *this;
    }

    /** Mix a double by its exact bit pattern (no rounding, so equal
     * doubles hash equal and nothing else does). */
    Fnv1a &
    mix(double value)
    {
        return mix(std::bit_cast<uint64_t>(value));
    }

    /** Mix a string's bytes plus a 0xff terminator, so ("ab","c") and
     * ("a","bc") cannot collide. */
    Fnv1a &
    mix(const std::string &text)
    {
        for (unsigned char c : text) {
            hash_ ^= c;
            hash_ *= kPrime;
        }
        hash_ ^= 0xff;
        hash_ *= kPrime;
        return *this;
    }

    Fnv1a &
    mix(bool value)
    {
        return mix(static_cast<uint64_t>(value ? 1 : 0));
    }

    uint64_t value() const { return hash_; }

  private:
    static constexpr uint64_t kOffset = 1469598103934665603ull;
    static constexpr uint64_t kPrime = 1099511628211ull;

    uint64_t hash_ = kOffset;
};

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_HASH_H
