/**
 * @file
 * Flat key/value text files.
 *
 * The PetaBricks autotuner communicates with binaries via a *choice
 * configuration file* (Section 3, Figure 3). We keep the same plain-text
 * model: one `key = value` per line, '#' comments, stable ordering so
 * files diff cleanly across tuner generations.
 */

#ifndef PETABRICKS_SUPPORT_KVFILE_H
#define PETABRICKS_SUPPORT_KVFILE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace petabricks {

/** Ordered string->string map with typed accessors and file round-trip. */
class KvFile
{
  public:
    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void setInt(const std::string &key, int64_t value);
    void setDouble(const std::string &key, double value);
    void setIntList(const std::string &key,
                    const std::vector<int64_t> &values);

    /** True if @p key is present. */
    bool has(const std::string &key) const;

    /** Value of @p key; fatal error if absent. */
    const std::string &get(const std::string &key) const;
    int64_t getInt(const std::string &key) const;
    double getDouble(const std::string &key) const;
    std::vector<int64_t> getIntList(const std::string &key) const;

    /** Value of @p key, or @p fallback if absent. */
    int64_t getIntOr(const std::string &key, int64_t fallback) const;

    /** All keys in sorted order. */
    std::vector<std::string> keys() const;

    size_t size() const { return entries_.size(); }

    /** Render to the on-disk text format. */
    std::string toString() const;

    /** Parse from the on-disk text format; fatal error on bad syntax. */
    static KvFile fromString(const std::string &text);

    /** Write to @p path; fatal error on I/O failure. */
    void save(const std::string &path) const;

    /**
     * Crash-safe write: render to `path + ".tmp"`, fsync, rename over
     * @p path. Readers either see the old complete file or the new
     * complete file, never a partial one. @p crashPrefix names the
     * crash-point family traversed during the sequence (see
     * support/crashpoint.h); pass the prefix registered for this
     * store, e.g. "spool.ckpt". Throws IoError (not FatalError) on
     * write/rename failure — injected or real — with the temp file
     * left behind and the destination untouched.
     */
    void saveAtomic(const std::string &path,
                    const std::string &crashPrefix) const;

    /** Read from @p path; fatal error on I/O failure or bad syntax. */
    static KvFile load(const std::string &path);

    bool operator==(const KvFile &other) const = default;

  private:
    std::map<std::string, std::string> entries_;
};

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_KVFILE_H
