/**
 * @file
 * Interned matrix-slot identifiers.
 *
 * The model-mode hot path used to key residency and readiness state by
 * slot *name* (std::map<std::string, ...>), paying a string compare per
 * lookup and a node allocation per insert — once per rule application
 * per evaluated configuration. A SlotTable interns every slot name of a
 * transform once (at evaluation-context build time), after which the
 * per-config inner loop works entirely in small dense integer ids.
 */

#ifndef PETABRICKS_SUPPORT_SLOT_TABLE_H
#define PETABRICKS_SUPPORT_SLOT_TABLE_H

#include <string>
#include <vector>

#include "support/error.h"

namespace petabricks {

/** Dense string-to-id interning table. Ids are 0..size()-1. */
class SlotTable
{
  public:
    /** Id of @p name, interning it on first sight. */
    int
    intern(const std::string &name)
    {
        for (size_t i = 0; i < names_.size(); ++i)
            if (names_[i] == name)
                return static_cast<int>(i);
        names_.push_back(name);
        return static_cast<int>(names_.size() - 1);
    }

    /** Id of an already-interned @p name; fatal if unknown. */
    int
    idOf(const std::string &name) const
    {
        for (size_t i = 0; i < names_.size(); ++i)
            if (names_[i] == name)
                return static_cast<int>(i);
        PB_PANIC("slot '" << name << "' not interned");
    }

    bool
    contains(const std::string &name) const
    {
        for (const std::string &n : names_)
            if (n == name)
                return true;
        return false;
    }

    /** Name of id @p id (round-trip of intern()). */
    const std::string &
    nameOf(int id) const
    {
        PB_ASSERT(id >= 0 && static_cast<size_t>(id) < names_.size(),
                  "slot id " << id << " out of range");
        return names_[static_cast<size_t>(id)];
    }

    size_t size() const { return names_.size(); }
    bool empty() const { return names_.empty(); }

  private:
    // Transforms have a handful of slots (the largest, Poisson's
    // unrolled SOR, has ~2*iterations+3); a linear scan at intern time
    // beats a hash map, and the hot loop never looks up by name at all.
    std::vector<std::string> names_;
};

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_SLOT_TABLE_H
