/**
 * @file
 * Deterministic crash/IO-fault injection at the persistence boundary.
 *
 * Every write-temp + fsync + rename sequence in the repo passes through
 * four named crash points: `<prefix>.pre_write`, `<prefix>.write`,
 * `<prefix>.pre_rename`, `<prefix>.post_rename` (prefixes: spool.meta,
 * spool.ckpt, cache.seg, portfolio.champ). A *schedule* — set
 * programmatically, via the `PB_CRASH_SCHEDULE` environment variable,
 * or via `tunerd --crash-at` — arms specific points:
 *
 *     spool.ckpt.pre_rename=kill            kill on the 1st hit
 *     cache.seg.write@3=torn:17             3rd hit: keep 17 bytes
 *     portfolio.champ.write=enospc          1st hit: fail with ENOSPC
 *     spool.meta.write=eio,spool.ckpt.write@2=kill
 *
 * Actions: `kill` aborts the process with _exit(kCrashExitCode) —
 * valid at any point; `torn` truncates the write but lets the sequence
 * continue (so the rename lands a torn file for boot fsck to find);
 * `enospc` / `eio` make the write fail with an IoError after a partial
 * write (temp file left behind, no rename). `torn`/`enospc`/`eio` are
 * only meaningful at `.write` points. Hit counters are per point name,
 * so `@3` fires on exactly the third traversal — identically across
 * runs, which is what makes the crash matrix reproducible.
 *
 * The layer is a no-op (one relaxed atomic load) when no schedule is
 * armed, so it is compiled into release builds unconditionally.
 */

#ifndef PETABRICKS_SUPPORT_CRASHPOINT_H
#define PETABRICKS_SUPPORT_CRASHPOINT_H

#include <cstddef>
#include <string>
#include <vector>

namespace petabricks {
namespace crashpoint {

/** Exit code used by `kill`-style crash points (distinct from signals
 *  and from normal error exits, so harnesses can assert on it). */
inline constexpr int kCrashExitCode = 70;

/** What an armed `.write` point does to the write it intercepts. */
enum class Action {
    None,   ///< Point not armed (or not yet at its scheduled hit).
    Kill,   ///< _exit(kCrashExitCode) — handled inside fire().
    Torn,   ///< Truncate the write to keepBytes, then continue.
    Enospc, ///< Partial write, then fail as if the disk filled.
    Eio,    ///< Partial write, then fail with a generic I/O error.
};

/** Fault to apply to an intercepted write (returned by fireWrite). */
struct WriteFault {
    Action action = Action::None;
    /** Bytes to let through before truncating/failing. For Torn with
     *  no explicit byte count the caller uses half the payload. */
    size_t keepBytes = 0;
    /** True if keepBytes was given explicitly in the schedule. */
    bool explicitBytes = false;
};

/**
 * Traverse a kill-style crash point. If the schedule arms @p name with
 * `kill` at the current hit count, logs to stderr and _exit()s with
 * kCrashExitCode. Otherwise returns immediately (no-op when no
 * schedule is armed).
 */
void fire(const std::string &name);

/**
 * Traverse a write-style crash point. Kill actions terminate inside
 * the call like fire(); torn/enospc/eio are returned for the caller
 * to apply to the write it is about to issue.
 */
WriteFault fireWrite(const std::string &name);

/**
 * Install a schedule (see file comment for the format). Replaces any
 * previous schedule and resets all hit counters. An empty spec clears.
 * Throws FatalError on a malformed spec or an unregistered point name.
 */
void setSchedule(const std::string &spec);

/** Remove the schedule and reset hit counters. */
void clearSchedule();

/** True if any schedule is currently armed (env var or setSchedule). */
bool armed();

/**
 * All registered crash-point names, sorted. The built-in persistence
 * prefixes (spool.meta, spool.ckpt, cache.seg, portfolio.champ) are
 * registered unconditionally at first use — the crash matrix iterates
 * this to prove every point recovers.
 */
std::vector<std::string> catalog();

/**
 * Register the four standard points for one atomic-save prefix
 * (`<p>.pre_write`, `<p>.write`, `<p>.pre_rename`, `<p>.post_rename`)
 * — for persistence paths beyond the built-ins. Call it before the
 * first saveAtomic with that prefix (NOT from a static initializer in
 * your own translation unit: static-library members that a binary
 * never references are dropped, initializers included). Returns true
 * for convenient use in an already-running context.
 */
bool registerAtomicSavePrefix(const std::string &prefix);

} // namespace crashpoint
} // namespace petabricks

#endif // PETABRICKS_SUPPORT_CRASHPOINT_H
