#include "support/table.h"

#include <iomanip>
#include <sstream>

#include "support/error.h"

namespace petabricks {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    PB_ASSERT(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    PB_ASSERT(row.size() == header_.size(),
              "row arity " << row.size() << " != header arity "
                           << header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::toString() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            oss << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
    oss << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

} // namespace petabricks
