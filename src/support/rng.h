/**
 * @file
 * Deterministic random number generation for the autotuner and workloads.
 *
 * All randomized components (mutators, workload generators, victim
 * selection in tests) draw from an explicitly seeded Rng so experiments
 * are reproducible run-to-run, a requirement for regenerating the paper's
 * figures deterministically.
 */

#ifndef PETABRICKS_SUPPORT_RNG_H
#define PETABRICKS_SUPPORT_RNG_H

#include <cstdint>
#include <random>

namespace petabricks {

/**
 * Seeded pseudo-random source wrapping a 64-bit Mersenne twister.
 *
 * Provides the distributions the autotuner needs, notably the lognormal
 * scaling used by cutoff mutators (Section 5.2 of the paper: "a value is
 * equally likely be halved as it is to be doubled").
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /**
     * Scale @p value by a lognormal factor with median 1.
     *
     * @param value value to scale; must be positive for a useful result.
     * @param sigma spread; ln(2) makes halving and doubling one-sigma
     *        events, matching the paper's mutator description.
     */
    int64_t
    lognormalScale(int64_t value, double sigma = 0.6931471805599453)
    {
        std::lognormal_distribution<double> dist(0.0, sigma);
        double scaled = static_cast<double>(value) * dist(engine_);
        if (scaled < 1.0)
            return 1;
        return static_cast<int64_t>(scaled);
    }

    /** Underlying engine, for std::shuffle and custom distributions. */
    std::mt19937_64 &engine() { return engine_; }

    /** Const view of the engine, for checkpointing its state (the
     * twister streams its full state via operator<<). */
    const std::mt19937_64 &engine() const { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace petabricks

#endif // PETABRICKS_SUPPORT_RNG_H
