#include "support/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace petabricks {

namespace {

std::atomic<int> globalLevel{static_cast<int>(LogLevel::Warn)};
std::mutex logMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Silent: return "silent";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        globalLevel.load(std::memory_order_relaxed));
}

namespace detail {

void
logMessage(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex);
    std::cerr << "[" << levelName(level) << "] " << msg << "\n";
}

} // namespace detail

} // namespace petabricks
