/**
 * @file
 * Model of OpenCL runtime kernel compilation and the IR cache.
 *
 * Section 5.4: OpenCL kernels are JIT-compiled at runtime, a fixed
 * startup cost "often on the order of a few seconds" that dominates
 * autotuning tests on small inputs. The paper's fix is to cache the
 * OpenCL runtime's intermediate representation keyed by a hash of the
 * kernel source, skipping the parse/optimize phases on later runs
 * (architecture-specific JITing still happens, so the saving is
 * partial).
 *
 * ProgramCache reproduces that accounting: it charges full compile cost
 * the first time a source hash is seen, nothing while the program stays
 * alive in the current process, and a reduced cost when a new process
 * run finds the IR in the on-disk cache. The autotuner charges these
 * seconds to its tuning-time model (Figure 8).
 */

#ifndef PETABRICKS_OCL_PROGRAM_CACHE_H
#define PETABRICKS_OCL_PROGRAM_CACHE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace petabricks {
namespace ocl {

/** Compile statistics for Figure 8's tuning-time accounting. */
struct CompileStats
{
    int64_t fullCompiles = 0;
    int64_t irCacheHits = 0;
    int64_t inProcessHits = 0;
    double totalSeconds = 0.0;
};

/** JIT compile-cost model with in-process program and on-disk IR caches. */
class ProgramCache
{
  public:
    /**
     * @param compileSeconds cost of a cold kernel compile.
     * @param irCacheSavings fraction of compileSeconds skipped when the
     *        IR cache hits (parse/optimize skipped; JIT still runs).
     */
    ProgramCache(double compileSeconds, double irCacheSavings)
        : compileSeconds_(compileSeconds), irCacheSavings_(irCacheSavings)
    {}

    /**
     * Compile (or look up) the program for @p sourceHash.
     * @return modeled seconds spent compiling.
     */
    double compile(const std::string &sourceHash);

    /**
     * End the current process run: live programs are dropped but their
     * IR persists, as when an autotuner test process exits.
     */
    void endRun();

    /** Drop everything, as on a fresh install. */
    void clear();

    const CompileStats &stats() const { return stats_; }

  private:
    double compileSeconds_;
    double irCacheSavings_;
    std::unordered_set<std::string> livePrograms_;
    std::unordered_set<std::string> irCache_;
    CompileStats stats_;
};

} // namespace ocl
} // namespace petabricks

#endif // PETABRICKS_OCL_PROGRAM_CACHE_H
