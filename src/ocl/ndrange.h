/**
 * @file
 * OpenCL NDRange descriptions: global work size plus work-group shape.
 */

#ifndef PETABRICKS_OCL_NDRANGE_H
#define PETABRICKS_OCL_NDRANGE_H

#include <cstdint>

#include "support/error.h"

namespace petabricks {
namespace ocl {

/**
 * A 2-D index space (1-D uses globalH == 1). Work-groups tile the global
 * range; edge groups are clipped, as OpenCL implementations do when the
 * global size is not a multiple of the local size.
 */
struct NDRange
{
    int64_t globalW = 0;
    int64_t globalH = 1;
    int64_t localW = 1;
    int64_t localH = 1;

    NDRange() = default;

    NDRange(int64_t gw, int64_t gh, int64_t lw, int64_t lh)
        : globalW(gw), globalH(gh), localW(lw), localH(lh)
    {
        PB_ASSERT(gw >= 0 && gh >= 0, "negative global size");
        PB_ASSERT(lw > 0 && lh > 0, "local size must be positive");
    }

    /** 1-D range with @p local items per group. */
    static NDRange
    linear(int64_t global, int64_t local)
    {
        return NDRange(global, 1, local, 1);
    }

    /** Total work-items. */
    int64_t items() const { return globalW * globalH; }

    /** Work-items per (full) group. */
    int64_t groupItems() const { return localW * localH; }

    /** Number of groups along x. */
    int64_t groupsX() const { return (globalW + localW - 1) / localW; }

    /** Number of groups along y. */
    int64_t groupsY() const { return (globalH + localH - 1) / localH; }

    /** Total work-groups. */
    int64_t groups() const { return groupsX() * groupsY(); }
};

} // namespace ocl
} // namespace petabricks

#endif // PETABRICKS_OCL_NDRANGE_H
