/**
 * @file
 * Completion events for asynchronous device operations.
 *
 * The paper's GPU management design hinges on *non-blocking* reads and
 * writes (Section 4.2): copy-in tasks complete immediately after issuing
 * the write, and copy-out completion tasks poll read status instead of
 * blocking the manager thread. Event provides exactly that interface:
 * poll with isComplete(), or block with wait() where blocking is safe.
 */

#ifndef PETABRICKS_OCL_EVENT_H
#define PETABRICKS_OCL_EVENT_H

#include <condition_variable>
#include <memory>
#include <mutex>

namespace petabricks {
namespace ocl {

/** Status of an enqueued device operation. */
enum class EventStatus
{
    Queued,
    Running,
    Complete,
};

/** Thread-safe completion flag for one enqueued operation. */
class Event
{
  public:
    Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Current status (non-blocking poll). */
    EventStatus
    status() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return status_;
    }

    /** True once the operation has finished executing. */
    bool isComplete() const { return status() == EventStatus::Complete; }

    /** Block until the operation completes. */
    void
    wait() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return status_ == EventStatus::Complete; });
    }

    /** @{ Transitions driven by the command queue worker. */
    void
    markRunning()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        status_ = EventStatus::Running;
    }

    void
    markComplete()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            status_ = EventStatus::Complete;
        }
        cv_.notify_all();
    }
    /** @} */

  private:
    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    EventStatus status_ = EventStatus::Queued;
};

using EventPtr = std::shared_ptr<Event>;

} // namespace ocl
} // namespace petabricks

#endif // PETABRICKS_OCL_EVENT_H
