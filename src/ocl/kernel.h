/**
 * @file
 * Emulated OpenCL kernels.
 *
 * A Kernel couples three things:
 *  - a *functional body* executed per work-group on the host (so results
 *    are bit-correct and testable),
 *  - an analytic *cost function* reporting the arithmetic and memory
 *    traffic of a launch (consumed by sim::CostModel to price the launch
 *    on a machine profile), and
 *  - a *source identity* string standing in for the OpenCL C source,
 *    used by the JIT compile-cache model (Section 5.4 of the paper).
 *
 * Work-group semantics: the body runs once per group and iterates its
 * work-items with GroupCtx::forEachItem. A barrier between cooperative
 * phases is expressed by calling GroupCtx::barrier() between two
 * forEachItem sweeps (loop fission), which is semantically equivalent to
 * an intra-group barrier when items run sequentially.
 */

#ifndef PETABRICKS_OCL_KERNEL_H
#define PETABRICKS_OCL_KERNEL_H

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ocl/buffer.h"
#include "ocl/ndrange.h"
#include "sim/cost_model.h"

namespace petabricks {
namespace ocl {

/** Arguments bound to a kernel launch (buffers + scalars). */
struct KernelArgs
{
    std::vector<BufferPtr> buffers;
    std::vector<int64_t> ints;
    std::vector<double> doubles;

    Buffer &
    buffer(size_t i) const
    {
        PB_ASSERT(i < buffers.size(), "kernel buffer arg " << i
                                                           << " missing");
        return *buffers[i];
    }

    int64_t
    intArg(size_t i) const
    {
        PB_ASSERT(i < ints.size(), "kernel int arg " << i << " missing");
        return ints[i];
    }

    double
    doubleArg(size_t i) const
    {
        PB_ASSERT(i < doubles.size(), "kernel double arg " << i
                                                           << " missing");
        return doubles[i];
    }
};

/**
 * Per-work-group execution context handed to kernel bodies.
 *
 * Provides the group's coordinates, clipped work-item iteration, the
 * group's local-memory arena, and barrier bookkeeping.
 */
class GroupCtx
{
  public:
    GroupCtx(const NDRange &range, int64_t groupX, int64_t groupY,
             const KernelArgs &args, std::vector<double> &localMem)
        : range_(range), groupX_(groupX), groupY_(groupY), args_(args),
          localMem_(localMem)
    {}

    int64_t groupX() const { return groupX_; }
    int64_t groupY() const { return groupY_; }
    const NDRange &range() const { return range_; }
    const KernelArgs &args() const { return args_; }

    /** First global x coordinate of this group. */
    int64_t originX() const { return groupX_ * range_.localW; }
    /** First global y coordinate of this group. */
    int64_t originY() const { return groupY_ * range_.localH; }

    /** In-range width of this group (clipped at the global edge). */
    int64_t
    liveWidth() const
    {
        return std::max<int64_t>(
            0, std::min(range_.localW, range_.globalW - originX()));
    }

    /** In-range height of this group. */
    int64_t
    liveHeight() const
    {
        return std::max<int64_t>(
            0, std::min(range_.localH, range_.globalH - originY()));
    }

    /** Work-items of this group that fall inside the global range. */
    int64_t liveItems() const { return liveWidth() * liveHeight(); }

    /**
     * Run @p fn once per in-range work-item of this group.
     * @param fn callback (globalX, globalY, localX, localY).
     */
    template <typename Fn>
    void
    forEachItem(Fn &&fn)
    {
        int64_t ox = originX();
        int64_t oy = originY();
        int64_t w = std::min(range_.localW, range_.globalW - ox);
        int64_t h = std::min(range_.localH, range_.globalH - oy);
        for (int64_t ly = 0; ly < h; ++ly)
            for (int64_t lx = 0; lx < w; ++lx)
                fn(ox + lx, oy + ly, lx, ly);
    }

    /** Record an intra-group barrier between cooperative phases. */
    void barrier() { ++barriers_; }

    /** Barriers executed by this group so far. */
    int64_t barriersExecuted() const { return barriers_; }

    /** This group's local-memory arena (elements of double). */
    double *localMem() { return localMem_.data(); }
    int64_t localMemElems() const
    {
        return static_cast<int64_t>(localMem_.size());
    }

  private:
    const NDRange &range_;
    int64_t groupX_;
    int64_t groupY_;
    const KernelArgs &args_;
    std::vector<double> &localMem_;
    int64_t barriers_ = 0;
};

/** An emulated OpenCL kernel (see file comment). */
class Kernel
{
  public:
    using Body = std::function<void(GroupCtx &)>;
    using CostFn =
        std::function<sim::CostReport(const KernelArgs &, const NDRange &)>;
    using LocalMemFn =
        std::function<int64_t(const KernelArgs &, const NDRange &)>;

    /**
     * @param name kernel entry-point name.
     * @param source stand-in for the kernel source (hashed by the
     *        compile-cache model; distinct sources => distinct compiles).
     * @param body per-group functional body.
     * @param cost analytic launch cost.
     * @param localMem elements of local memory required per group
     *        (nullptr => none).
     */
    Kernel(std::string name, std::string source, Body body, CostFn cost,
           LocalMemFn localMem = nullptr)
        : name_(std::move(name)), source_(std::move(source)),
          body_(std::move(body)), cost_(std::move(cost)),
          localMem_(std::move(localMem))
    {
        PB_ASSERT(body_ != nullptr, "kernel body required");
        PB_ASSERT(cost_ != nullptr, "kernel cost function required");
    }

    const std::string &name() const { return name_; }
    const std::string &source() const { return source_; }

    /** True if this kernel uses OpenCL local memory. */
    bool usesLocalMem() const { return localMem_ != nullptr; }

    /** Local memory elements per group for a launch. */
    int64_t
    localMemElems(const KernelArgs &args, const NDRange &range) const
    {
        return localMem_ ? localMem_(args, range) : 0;
    }

    /** Analytic cost of one launch. */
    sim::CostReport
    cost(const KernelArgs &args, const NDRange &range) const
    {
        return cost_(args, range);
    }

    void
    runGroup(GroupCtx &ctx) const
    {
        body_(ctx);
    }

  private:
    std::string name_;
    std::string source_;
    Body body_;
    CostFn cost_;
    LocalMemFn localMem_;
};

using KernelPtr = std::shared_ptr<const Kernel>;

} // namespace ocl
} // namespace petabricks

#endif // PETABRICKS_OCL_KERNEL_H
