#include "ocl/program_cache.h"

namespace petabricks {
namespace ocl {

double
ProgramCache::compile(const std::string &sourceHash)
{
    if (livePrograms_.count(sourceHash)) {
        ++stats_.inProcessHits;
        return 0.0;
    }
    double seconds;
    if (irCache_.count(sourceHash)) {
        // Parse/optimize skipped; architecture-specific JIT remains.
        seconds = compileSeconds_ * (1.0 - irCacheSavings_);
        ++stats_.irCacheHits;
    } else {
        seconds = compileSeconds_;
        ++stats_.fullCompiles;
        irCache_.insert(sourceHash);
    }
    livePrograms_.insert(sourceHash);
    stats_.totalSeconds += seconds;
    return seconds;
}

void
ProgramCache::endRun()
{
    livePrograms_.clear();
}

void
ProgramCache::clear()
{
    livePrograms_.clear();
    irCache_.clear();
}

} // namespace ocl
} // namespace petabricks
