#include "ocl/device.h"

#include <vector>

#include "support/error.h"

namespace petabricks {
namespace ocl {

sim::CostReport
Device::launch(const Kernel &kernel, const KernelArgs &args,
               const NDRange &range)
{
    int64_t localElems = kernel.localMemElems(args, range);
    int64_t localBytes = localElems * static_cast<int64_t>(sizeof(double));
    if (localBytes > localMemBytes_) {
        PB_FATAL("kernel '" << kernel.name() << "' needs " << localBytes
                 << " bytes of local memory; device '" << spec_.name
                 << "' provides " << localMemBytes_);
    }

    std::vector<double> localMem(static_cast<size_t>(localElems));
    int64_t barriers = 0;
    for (int64_t gy = 0; gy < range.groupsY(); ++gy) {
        for (int64_t gx = 0; gx < range.groupsX(); ++gx) {
            // Local memory is per-group scratch; clear between groups so
            // kernels cannot accidentally rely on cross-group state.
            std::fill(localMem.begin(), localMem.end(), 0.0);
            GroupCtx ctx(range, gx, gy, args, localMem);
            kernel.runGroup(ctx);
            barriers += ctx.barriersExecuted();
        }
    }

    sim::CostReport report = kernel.cost(args, range);
    ++stats_.launches;
    stats_.itemsExecuted += range.items();
    stats_.groupsExecuted += range.groups();
    stats_.barriersExecuted += barriers;
    stats_.accumulated += report;
    return report;
}

} // namespace ocl
} // namespace petabricks
