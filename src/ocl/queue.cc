#include "ocl/queue.h"

#include <cstring>

#include "support/error.h"

namespace petabricks {
namespace ocl {

CommandQueue::CommandQueue(Device &device)
    : device_(device), worker_([this] { workerLoop(); })
{
}

CommandQueue::~CommandQueue()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

EventPtr
CommandQueue::push(std::function<void()> execute)
{
    Op op;
    op.execute = std::move(execute);
    op.event = std::make_shared<Event>();
    EventPtr event = op.event;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PB_ASSERT(!shutdown_, "enqueue on destroyed queue");
        pending_.push_back(std::move(op));
    }
    cv_.notify_one();
    return event;
}

EventPtr
CommandQueue::enqueueWrite(BufferPtr dst, const void *src, int64_t bytes,
                           int64_t dstOffset)
{
    PB_ASSERT(dst != nullptr, "null buffer");
    PB_ASSERT(bytes >= 0 && dstOffset >= 0 &&
                  dstOffset + bytes <= dst->size(),
              "write of " << bytes << "B at +" << dstOffset
                          << " overflows buffer of " << dst->size());
    stats_.writes++;
    stats_.bytesIn += static_cast<double>(bytes);
    // Keep the buffer alive in the closure until the copy retires.
    return push([dst, src, bytes, dstOffset] {
        std::memcpy(dst->raw() + dstOffset, src,
                    static_cast<size_t>(bytes));
    });
}

EventPtr
CommandQueue::enqueueRead(BufferPtr src, void *dst, int64_t bytes,
                          int64_t srcOffset)
{
    PB_ASSERT(src != nullptr, "null buffer");
    PB_ASSERT(bytes >= 0 && srcOffset >= 0 &&
                  srcOffset + bytes <= src->size(),
              "read of " << bytes << "B at +" << srcOffset
                         << " overflows buffer of " << src->size());
    stats_.reads++;
    stats_.bytesOut += static_cast<double>(bytes);
    return push([src, dst, bytes, srcOffset] {
        std::memcpy(dst, src->raw() + srcOffset,
                    static_cast<size_t>(bytes));
    });
}

EventPtr
CommandQueue::enqueueWriteRect(BufferPtr dst, const double *src,
                               int64_t rowElems, const Region &region)
{
    PB_ASSERT(dst != nullptr, "null buffer");
    PB_ASSERT(!region.empty() && region.x >= 0 && region.y >= 0 &&
                  region.x + region.w <= rowElems,
              "bad rect " << region << " for row width " << rowElems);
    int64_t elemBytes = static_cast<int64_t>(sizeof(double));
    PB_ASSERT((region.y + region.h) * rowElems * elemBytes <= dst->size(),
              "rect " << region << " overflows buffer");
    stats_.writes++;
    stats_.bytesIn += static_cast<double>(region.area()) * elemBytes;
    return push([dst, src, rowElems, region] {
        double *base = dst->as<double>();
        for (int64_t j = 0; j < region.h; ++j) {
            int64_t off = (region.y + j) * rowElems + region.x;
            std::memcpy(base + off, src + off,
                        static_cast<size_t>(region.w) * sizeof(double));
        }
    });
}

EventPtr
CommandQueue::enqueueReadRect(BufferPtr src, double *dst, int64_t rowElems,
                              const Region &region)
{
    PB_ASSERT(src != nullptr, "null buffer");
    PB_ASSERT(!region.empty() && region.x >= 0 && region.y >= 0 &&
                  region.x + region.w <= rowElems,
              "bad rect " << region << " for row width " << rowElems);
    int64_t elemBytes = static_cast<int64_t>(sizeof(double));
    PB_ASSERT((region.y + region.h) * rowElems * elemBytes <= src->size(),
              "rect " << region << " overflows buffer");
    stats_.reads++;
    stats_.bytesOut += static_cast<double>(region.area()) * elemBytes;
    return push([src, dst, rowElems, region] {
        const double *base = src->as<double>();
        for (int64_t j = 0; j < region.h; ++j) {
            int64_t off = (region.y + j) * rowElems + region.x;
            std::memcpy(dst + off, base + off,
                        static_cast<size_t>(region.w) * sizeof(double));
        }
    });
}

EventPtr
CommandQueue::enqueueKernel(KernelPtr kernel, KernelArgs args,
                            NDRange range)
{
    PB_ASSERT(kernel != nullptr, "null kernel");
    stats_.kernels++;
    Device *device = &device_;
    return push([device, kernel = std::move(kernel),
                 args = std::move(args), range] {
        device->launch(*kernel, args, range);
    });
}

void
CommandQueue::finish()
{
    // A queue is in-order: waiting on a fresh no-op waits on everything
    // enqueued before it.
    push([] {})->wait();
}

void
CommandQueue::workerLoop()
{
    for (;;) {
        Op op;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return shutdown_ || !pending_.empty(); });
            if (pending_.empty()) {
                // shutdown_ and drained
                return;
            }
            op = std::move(pending_.front());
            pending_.pop_front();
        }
        op.event->markRunning();
        op.execute();
        op.event->markComplete();
    }
}

} // namespace ocl
} // namespace petabricks
