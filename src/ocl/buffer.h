/**
 * @file
 * Device-side memory buffers for the emulated OpenCL runtime.
 *
 * A Buffer models a `cl_mem` allocation: an untyped byte range living in
 * "device memory". The emulation backs it with host memory, but all
 * access from benchmarks/runtime code goes through explicit copy-in /
 * copy-out operations (ocl/queue.h) so the data-movement analyses and
 * the GPU memory table operate exactly as they would against a real
 * device.
 */

#ifndef PETABRICKS_OCL_BUFFER_H
#define PETABRICKS_OCL_BUFFER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "support/error.h"

namespace petabricks {
namespace ocl {

/** An untyped device memory allocation. */
class Buffer
{
  public:
    /** Allocate @p bytes of device memory (zero-filled). */
    explicit Buffer(int64_t bytes)
        : id_(nextId()), bytes_(static_cast<size_t>(bytes))
    {
        PB_ASSERT(bytes >= 0, "negative buffer size");
    }

    /** Process-unique id (for the GPU memory table). */
    uint64_t id() const { return id_; }

    int64_t size() const { return static_cast<int64_t>(bytes_.size()); }

    /** Raw device bytes; used by the queue's copy engines. */
    std::byte *raw() { return bytes_.data(); }
    const std::byte *raw() const { return bytes_.data(); }

    /**
     * Typed view of the device memory, for kernel bodies. The length is
     * in elements of T.
     */
    template <typename T>
    T *
    as()
    {
        return reinterpret_cast<T *>(bytes_.data());
    }

    template <typename T>
    const T *
    as() const
    {
        return reinterpret_cast<const T *>(bytes_.data());
    }

    /** Element count when interpreted as T. */
    template <typename T>
    int64_t
    count() const
    {
        return size() / static_cast<int64_t>(sizeof(T));
    }

  private:
    static uint64_t
    nextId()
    {
        static std::atomic<uint64_t> counter{1};
        return counter.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t id_;
    std::vector<std::byte> bytes_;
};

using BufferPtr = std::shared_ptr<Buffer>;

} // namespace ocl
} // namespace petabricks

#endif // PETABRICKS_OCL_BUFFER_H
