/**
 * @file
 * The emulated OpenCL device: functional kernel execution plus stats.
 */

#ifndef PETABRICKS_OCL_DEVICE_H
#define PETABRICKS_OCL_DEVICE_H

#include <cstdint>

#include "ocl/kernel.h"
#include "ocl/ndrange.h"
#include "sim/device_spec.h"

namespace petabricks {
namespace ocl {

/** Running totals of device activity. */
struct DeviceStats
{
    int64_t launches = 0;
    int64_t itemsExecuted = 0;
    int64_t groupsExecuted = 0;
    int64_t barriersExecuted = 0;
    sim::CostReport accumulated;
};

/**
 * An emulated compute device.
 *
 * launch() executes the kernel body for every work-group (sequentially,
 * for determinism) and returns the kernel's analytic cost report, which
 * callers price with sim::CostModel against the device's spec.
 */
class Device
{
  public:
    /** Default OpenCL local memory capacity per work-group (48 KiB). */
    static constexpr int64_t kDefaultLocalMemBytes = 48 * 1024;

    explicit Device(sim::DeviceSpec spec,
                    int64_t localMemBytes = kDefaultLocalMemBytes)
        : spec_(std::move(spec)), localMemBytes_(localMemBytes)
    {}

    const sim::DeviceSpec &spec() const { return spec_; }
    int64_t localMemBytes() const { return localMemBytes_; }

    /**
     * Execute a kernel over @p range with @p args.
     *
     * @return the kernel's analytic cost for this launch.
     * @throws FatalError if the kernel's local-memory demand exceeds the
     *         device capacity (a real clEnqueueNDRangeKernel failure).
     */
    sim::CostReport launch(const Kernel &kernel, const KernelArgs &args,
                           const NDRange &range);

    const DeviceStats &stats() const { return stats_; }
    void resetStats() { stats_ = DeviceStats(); }

  private:
    sim::DeviceSpec spec_;
    int64_t localMemBytes_;
    DeviceStats stats_;
};

} // namespace ocl
} // namespace petabricks

#endif // PETABRICKS_OCL_DEVICE_H
