/**
 * @file
 * In-order command queue with non-blocking enqueue operations.
 *
 * Mirrors an OpenCL in-order queue: writes, kernel launches, and reads
 * are executed FIFO by a dedicated queue worker thread, and every
 * enqueue returns immediately with an Event. The runtime's GPU
 * management thread (runtime/gpu_manager.h) issues all its device work
 * through one CommandQueue, which is what lets it overlap communication
 * with computation without ever blocking.
 */

#ifndef PETABRICKS_OCL_QUEUE_H
#define PETABRICKS_OCL_QUEUE_H

#include <deque>
#include <functional>
#include <thread>

#include "ocl/device.h"
#include "ocl/event.h"
#include "sim/cost_model.h"
#include "support/region.h"

namespace petabricks {
namespace ocl {

/** Aggregate traffic statistics for a queue. */
struct QueueStats
{
    int64_t writes = 0;
    int64_t reads = 0;
    int64_t kernels = 0;
    double bytesIn = 0.0;
    double bytesOut = 0.0;
};

/** In-order asynchronous command queue for one Device. */
class CommandQueue
{
  public:
    explicit CommandQueue(Device &device);

    /** Drains the queue and joins the worker. */
    ~CommandQueue();

    CommandQueue(const CommandQueue &) = delete;
    CommandQueue &operator=(const CommandQueue &) = delete;

    /**
     * Enqueue a host->device copy of @p bytes from @p src into @p dst at
     * @p dstOffset. Returns immediately (non-blocking write).
     */
    EventPtr enqueueWrite(BufferPtr dst, const void *src, int64_t bytes,
                          int64_t dstOffset = 0);

    /**
     * Enqueue a device->host copy of @p bytes from @p src at
     * @p srcOffset into @p dst. Returns immediately (non-blocking read);
     * poll the event from a copy-out completion task.
     */
    EventPtr enqueueRead(BufferPtr src, void *dst, int64_t bytes,
                         int64_t srcOffset = 0);

    /**
     * Enqueue a strided host->device copy of rectangular @p region from
     * a row-major host array of width @p rowElems doubles. The buffer is
     * assumed to hold the full matrix at the same layout (clEnqueueWrite-
     * BufferRect equivalent).
     */
    EventPtr enqueueWriteRect(BufferPtr dst, const double *src,
                              int64_t rowElems, const Region &region);

    /** Strided device->host copy; see enqueueWriteRect. */
    EventPtr enqueueReadRect(BufferPtr src, double *dst, int64_t rowElems,
                             const Region &region);

    /** Enqueue an NDRange kernel launch. */
    EventPtr enqueueKernel(KernelPtr kernel, KernelArgs args,
                           NDRange range);

    /** Block until every previously enqueued operation completes. */
    void finish();

    const QueueStats &stats() const { return stats_; }

    Device &device() { return device_; }

  private:
    struct Op
    {
        std::function<void()> execute;
        EventPtr event;
    };

    void workerLoop();
    EventPtr push(std::function<void()> execute);

    Device &device_;
    QueueStats stats_;

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Op> pending_;
    bool shutdown_ = false;
    std::thread worker_;
};

} // namespace ocl
} // namespace petabricks

#endif // PETABRICKS_OCL_QUEUE_H
