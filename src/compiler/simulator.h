/**
 * @file
 * Model-mode transform execution: replays the same stage plans the real
 * executor interprets, but against a MachineProfile via the
 * discrete-event scheduler simulator, producing a deterministic
 * makespan on the paper's three test systems.
 *
 * The structure mirrors the real task graph one-to-one: per stage, CPU
 * chunk tasks on the worker pool, and for the GPU part a copy-in
 * transfer (deduplicated against modeled device residency), an in-order
 * kernel execution on the GPU queue, and an eager copy-out transfer
 * when the data-movement analysis demands one. May-copy-out outputs are
 * fetched by a final lazy transfer, so — like the paper's measurements
 * and unlike most hand-coded GPU baselines — results always include the
 * cost of getting data back to the host.
 */

#ifndef PETABRICKS_COMPILER_SIMULATOR_H
#define PETABRICKS_COMPILER_SIMULATOR_H

#include "compiler/data_movement.h"
#include "compiler/eval_context.h"
#include "sim/machine.h"
#include "sim/sched_sim.h"

namespace petabricks {
namespace compiler {

/** Breakdown of a simulated transform invocation. */
struct SimOutcome
{
    double seconds = 0.0;
    double gpuBusySeconds = 0.0;
    double cpuBusySeconds = 0.0;
    int64_t kernelLaunches = 0;
    double bytesToDevice = 0.0;
    double bytesFromDevice = 0.0;
};

/**
 * Simulate one invocation of @p transform under placement @p config on
 * @p machine.
 *
 * This is the *reference path*: it rebuilds every piece of
 * config-invariant scaffolding (stage planning, admissibility,
 * string-keyed residency) from scratch per call. It is kept verbatim as
 * the executable specification of the model — the golden-equality tests
 * assert the fast path below reproduces it bit-for-bit — and for
 * one-off calls where building an EvaluationContext isn't worth it.
 *
 * @param sizes extents of every slot.
 * @param params bound transform parameters.
 */
SimOutcome simulateTransform(const lang::Transform &transform,
                             const TransformConfig &config,
                             const SlotSizes &sizes,
                             const lang::ParamEnv &params,
                             const sim::MachineProfile &machine);

/**
 * Fast path: simulate @p config against a prebuilt EvaluationContext.
 *
 * All config-invariant work (execution order, admissibility, slot
 * extents, access geometry, flops-per-point) comes precomputed from
 * @p ctx; per-call scratch (interned-slot residency sets, dependency
 * buffers) lives in a thread-local workspace, so the per-config inner
 * loop performs no steady-state allocation. Returns bit-identical
 * results to the reference overload for the same
 * (transform, sizes, params, machine), including throwing the same
 * FatalErrors for infeasible placements.
 */
SimOutcome simulateTransform(const EvaluationContext &ctx,
                             const TransformConfig &config);

} // namespace compiler
} // namespace petabricks

#endif // PETABRICKS_COMPILER_SIMULATOR_H
