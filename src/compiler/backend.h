/**
 * @file
 * Per-rule backend placement choices exposed to the autotuner
 * (paper Section 5.3).
 *
 * Every rule application gets: a backend (CPU native, OpenCL with
 * global memory only, or OpenCL with the local-memory optimization), a
 * local work size tunable, and a GPU-CPU workload ratio in eighths
 * ("the possible ratios [are] restricted to multiples of 1/8").
 */

#ifndef PETABRICKS_COMPILER_BACKEND_H
#define PETABRICKS_COMPILER_BACKEND_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace petabricks {
namespace compiler {

/** Execution backend for one rule application. */
enum class Backend
{
    Cpu = 0,
    OpenClGlobal = 1,
    OpenClLocal = 2,
};

inline const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Cpu: return "CPU";
      case Backend::OpenClGlobal: return "OpenCL-global";
      case Backend::OpenClLocal: return "OpenCL-local";
    }
    return "?";
}

/** Choices for one rule application within a transform choice. */
struct StageConfig
{
    Backend backend = Backend::Cpu;

    /** OpenCL work-items per work-group (1-D groups over output rows). */
    int localWorkSize = 64;

    /**
     * Portion of the output computed on the GPU, in eighths (0..8).
     * 8 = everything on the GPU; intermediate values split the output
     * with the first rows on the GPU and the rest on the CPU.
     * Ignored when backend == Cpu.
     */
    int gpuRatioEighths = 8;

    /** CPU-side chunking: number of worker tasks for the CPU part. */
    int cpuSplit = 8;

    void
    validate() const
    {
        PB_ASSERT(localWorkSize >= 1 && localWorkSize <= 1024,
                  "bad local work size " << localWorkSize);
        PB_ASSERT(gpuRatioEighths >= 0 && gpuRatioEighths <= 8,
                  "GPU ratio " << gpuRatioEighths << " not in eighths");
        PB_ASSERT(cpuSplit >= 1, "cpuSplit must be positive");
    }

    /** Rows of an h-row output that land on the GPU. */
    int64_t
    gpuRows(int64_t h) const
    {
        if (backend == Backend::Cpu)
            return 0;
        return h * gpuRatioEighths / 8;
    }
};

/** Full placement of one transform invocation. */
struct TransformConfig
{
    size_t choiceIndex = 0;
    std::vector<StageConfig> stages; // one per rule of the chosen choice

    const StageConfig &
    stage(size_t i) const
    {
        PB_ASSERT(i < stages.size(), "stage " << i << " unconfigured");
        return stages[i];
    }
};

} // namespace compiler
} // namespace petabricks

#endif // PETABRICKS_COMPILER_BACKEND_H
