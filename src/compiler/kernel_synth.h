/**
 * @file
 * OpenCL kernel generation from point rules (Section 3.1, phases 2-3).
 *
 * Phase 2 produces the basic variant: every work-item computes exactly
 * one output cell, reading inputs through global memory (the paper
 * notes this one-cell-per-item structure beat the NVIDIA SDK's
 * multi-output convolution sample on their Desktop).
 *
 * Phase 3 produces the local-memory variant for rules with a constant
 * bounding box greater than one: work-items first cooperate to load the
 * group's input tile into the scratchpad (a strided multi-phase load),
 * barrier, then compute with all window reads served from local memory.
 *
 * Synthesized kernel launch-argument convention:
 *   buffers: [out, in0, in1, ...] — full matrices, row-major;
 *   ints:    [outW, outH, outX0, outY0,
 *             in0W, in0H, in1W, in1H, ..., params...]
 * Work-item (gx, gy) computes output cell (outX0+gx, outY0+gy), which
 * is how the executor maps a *part* of the output onto the GPU when the
 * GPU-CPU ratio splits the work.
 */

#ifndef PETABRICKS_COMPILER_KERNEL_SYNTH_H
#define PETABRICKS_COMPILER_KERNEL_SYNTH_H

#include "lang/rule.h"
#include "ocl/kernel.h"

namespace petabricks {
namespace compiler {

/** The kernels generated for one rule. */
struct SynthesizedKernel
{
    ocl::KernelPtr global;
    /** Non-null only for local-memory candidates. */
    ocl::KernelPtr local;
};

/**
 * Generate the OpenCL variants for @p rule (which must be a point
 * rule that passed the admissibility analysis).
 */
SynthesizedKernel synthesizeKernels(const lang::RulePtr &rule);

/**
 * synthesizeKernels() through a process-wide memo keyed by rule
 * identity: rule definitions are built once per benchmark and shared
 * by every configuration, so the synthesis cost is paid once per rule
 * per process instead of once per executor (engine::EnginePool fans
 * batches across executor instances). Thread-safe and size-bounded;
 * returns by value (the two kernel shared_ptrs), so eviction never
 * invalidates a caller.
 */
SynthesizedKernel synthesizeKernelsCached(const lang::RulePtr &rule);

/** Build the launch arguments for a synthesized kernel. */
ocl::KernelArgs makeKernelArgs(
    const lang::RuleDef &rule, ocl::BufferPtr out,
    std::vector<ocl::BufferPtr> inputs, int64_t outW, int64_t outH,
    const Region &outRegion,
    const std::vector<std::pair<int64_t, int64_t>> &inputExtents,
    const lang::ParamEnv &params);

} // namespace compiler
} // namespace petabricks

#endif // PETABRICKS_COMPILER_KERNEL_SYNTH_H
