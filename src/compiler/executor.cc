#include "compiler/executor.h"

#include "compiler/rule_cost.h"
#include "support/error.h"

namespace petabricks {
namespace compiler {

namespace {

using lang::Binding;
using lang::RulePtr;
using lang::Transform;
using runtime::Task;
using runtime::TaskClass;
using runtime::TaskContext;
using runtime::TaskPtr;

SlotSizes
sizesOf(const Transform &transform, const Binding &binding)
{
    SlotSizes sizes;
    for (const lang::MatrixSlot &slot : transform.slots()) {
        const MatrixD &m = binding.matrix(slot.name);
        sizes[slot.name] = {m.width(), m.height()};
    }
    return sizes;
}

/** Split @p region into up to @p parts row bands. */
std::vector<Region>
rowChunks(const Region &region, int parts)
{
    std::vector<Region> chunks;
    if (region.empty())
        return chunks;
    int64_t n = std::min<int64_t>(parts, region.h);
    for (int64_t i = 0; i < n; ++i) {
        int64_t y0 = region.y + region.h * i / n;
        int64_t y1 = region.y + region.h * (i + 1) / n;
        if (y1 > y0)
            chunks.emplace_back(region.x, y0, region.w, y1 - y0);
    }
    return chunks;
}

} // namespace

void
runPointRuleOnHost(const lang::RuleDef &rule, Binding &binding,
                   const Region &region)
{
    MatrixD &out = binding.matrix(rule.outputSlot());
    std::vector<lang::CellReader> readers;
    readers.reserve(rule.accesses().size());
    for (const lang::AccessPattern &access : rule.accesses()) {
        const MatrixD &in = binding.matrix(access.inputSlot);
        readers.emplace_back(in.data(), in.width(), 0, 0);
    }
    lang::PointArgs pt;
    pt.inputs = &readers;
    pt.params = &binding.params;
    for (int64_t y = region.y; y < region.y + region.h; ++y) {
        for (int64_t x = region.x; x < region.x + region.w; ++x) {
            pt.x = x;
            pt.y = y;
            out.at(x, y) = rule.pointBody()(pt);
        }
    }
}

SynthesizedKernel
TransformExecutor::kernelsFor(const RulePtr &rule)
{
    // Process-wide memo: every executor (engine::EnginePool fans
    // batches across instances) and every configuration shares one
    // synthesis per rule.
    return synthesizeKernelsCached(rule);
}

void
TransformExecutor::execute(const Transform &transform, Binding &binding,
                           const TransformConfig &config)
{
    transform.validateBinding(binding);
    SlotSizes sizes = sizesOf(transform, binding);
    std::vector<StagePlan> plans = planStages(transform, config, sizes);

    // Per-slot join task the consumers of that slot depend on.
    std::map<std::string, TaskPtr> slotReady;
    std::vector<TaskPtr> allTasks;

    auto dependOnInputs = [&](const TaskPtr &task, const RulePtr &rule) {
        for (const std::string &input : rule->inputSlots()) {
            auto it = slotReady.find(input);
            if (it != slotReady.end())
                task->dependsOn(it->second);
        }
    };

    for (const StagePlan &plan : plans) {
        const RulePtr &rule = plan.rule;
        TaskPtr stageJoin = Task::join(rule->name() + ":done");

        // ---- CPU part -------------------------------------------------
        if (plan.hasCpuPart()) {
            Region cpuRegion = rule->isPointRule()
                                   ? plan.cpuRegion()
                                   : Region(0, 0, plan.outW, plan.outH);
            if (rule->isPointRule()) {
                for (const Region &chunk :
                     rowChunks(cpuRegion, plan.config.cpuSplit)) {
                    TaskPtr task = Task::cpu(
                        rule->name() + ":cpu",
                        [this, rule, &binding, chunk] {
                            // Lazy copy-out check before consuming any
                            // possibly device-resident input.
                            if (rt_.hasGpu()) {
                                for (const auto &acc : rule->accesses()) {
                                    MatrixD &in =
                                        binding.matrix(acc.inputSlot);
                                    rt_.gpuMemory().ensureOnHost(
                                        in, in.fullRegion());
                                }
                            }
                            runPointRuleOnHost(*rule, binding, chunk);
                            if (rt_.hasGpu()) {
                                // Device copies of this band are stale.
                                rt_.gpuMemory().invalidateRegion(
                                    binding.matrix(rule->outputSlot()),
                                    chunk);
                            }
                        });
                    dependOnInputs(task, rule);
                    stageJoin->dependsOn(task);
                    allTasks.push_back(std::move(task));
                }
            } else {
                int threads = rt_.workerCount();
                TaskPtr task = Task::cpu(
                    rule->name() + ":native",
                    [this, rule, &binding, cpuRegion, threads] {
                        if (rt_.hasGpu()) {
                            for (const std::string &slot :
                                 rule->inputSlots()) {
                                MatrixD &in = binding.matrix(slot);
                                rt_.gpuMemory().ensureOnHost(
                                    in, in.fullRegion());
                            }
                        }
                        lang::RuleDef::RegionRunArgs args;
                        args.region = cpuRegion;
                        args.output = binding.matrix(rule->outputSlot());
                        for (const std::string &slot : rule->inputSlots())
                            args.inputs.push_back(binding.matrix(slot));
                        args.params = &binding.params;
                        args.threads = threads;
                        rule->regionBody()(args);
                        if (rt_.hasGpu()) {
                            rt_.gpuMemory().invalidateRegion(
                                binding.matrix(rule->outputSlot()),
                                cpuRegion);
                        }
                    });
                dependOnInputs(task, rule);
                stageJoin->dependsOn(task);
                allTasks.push_back(std::move(task));
            }
        }

        // ---- GPU part -------------------------------------------------
        if (plan.hasGpuPart()) {
            PB_ASSERT(rt_.hasGpu(), "GPU placement on CPU-only runtime");
            const SynthesizedKernel &kernels = kernelsFor(rule);
            ocl::KernelPtr kernel =
                plan.config.backend == Backend::OpenClLocal
                    ? kernels.local
                    : kernels.global;
            PB_ASSERT(kernel != nullptr, "missing kernel variant");

            Region gpuRegion = plan.gpuRegion();

            // Prepare: allocate consolidated buffers, update metadata.
            TaskPtr prepare = std::make_shared<Task>(
                rule->name() + ":prepare", TaskClass::Gpu,
                [this, rule, &binding](TaskContext &) -> TaskPtr {
                    rt_.gpuMemory().prepare(
                        binding.matrix(rule->outputSlot()));
                    for (const std::string &slot : rule->inputSlots())
                        rt_.gpuMemory().prepare(binding.matrix(slot));
                    return nullptr;
                });
            dependOnInputs(prepare, rule);
            allTasks.push_back(prepare);

            // Copy-in: one task per input, non-blocking writes with the
            // memory table deduplicating already-resident regions.
            std::vector<TaskPtr> copyIns;
            for (size_t i = 0; i < rule->accesses().size(); ++i) {
                const lang::AccessPattern &access = rule->accesses()[i];
                MatrixD &in = binding.matrix(access.inputSlot);
                Region needed = inputRegionFor(access, gpuRegion,
                                               in.width(), in.height());
                if (needed.empty())
                    continue;
                TaskPtr copyIn = std::make_shared<Task>(
                    rule->name() + ":copyin:" + access.inputSlot,
                    TaskClass::Gpu,
                    [this, &binding, slot = access.inputSlot,
                     needed](TaskContext &) -> TaskPtr {
                        rt_.gpuMemory().copyIn(binding.matrix(slot),
                                               needed);
                        return nullptr;
                    });
                copyIn->dependsOn(prepare);
                copyIns.push_back(copyIn);
                allTasks.push_back(copyIn);
            }

            // Execute: initiate the asynchronous kernel, then the eager
            // non-blocking read for must-copy-out regions.
            auto readEvent = std::make_shared<ocl::EventPtr>();
            CopyOutPolicy policy = plan.copyOut;
            TaskPtr executeTask = std::make_shared<Task>(
                rule->name() + ":execute", TaskClass::Gpu,
                [this, rule, &binding, kernel, gpuRegion, plan, policy,
                 readEvent](TaskContext &) -> TaskPtr {
                    auto &table = rt_.gpuMemory();
                    MatrixD &outM = binding.matrix(rule->outputSlot());
                    std::vector<ocl::BufferPtr> inputBufs;
                    std::vector<std::pair<int64_t, int64_t>> extents;
                    for (const std::string &slot : rule->inputSlots()) {
                        MatrixD &in = binding.matrix(slot);
                        inputBufs.push_back(table.buffer(in));
                        extents.emplace_back(in.width(), in.height());
                    }
                    ocl::KernelArgs args = makeKernelArgs(
                        *rule, table.buffer(outM), std::move(inputBufs),
                        outM.width(), outM.height(), gpuRegion, extents,
                        binding.params);
                    ocl::NDRange range = groupShapeFor(
                        *rule, gpuRegion, plan.config.localWorkSize);
                    rt_.gpuCommandQueue().enqueueKernel(kernel, args,
                                                        range);
                    table.markDeviceWritten(outM, gpuRegion);
                    if (policy == CopyOutPolicy::MustCopyOut)
                        *readEvent = table.copyOut(outM, gpuRegion);
                    return nullptr;
                });
            executeTask->dependsOn(prepare);
            for (const TaskPtr &copyIn : copyIns)
                executeTask->dependsOn(copyIn);
            allTasks.push_back(executeTask);

            if (policy == CopyOutPolicy::MustCopyOut) {
                // Copy-out completion: poll the non-blocking read; the
                // GPU manager requeues us while it is still in flight.
                TaskPtr completion = std::make_shared<Task>(
                    rule->name() + ":copyout",
                    TaskClass::Gpu,
                    [readEvent](TaskContext &ctx) -> TaskPtr {
                        PB_ASSERT(*readEvent != nullptr,
                                  "copy-out ran before execute");
                        if (!(*readEvent)->isComplete())
                            ctx.requeue();
                        return nullptr;
                    });
                completion->dependsOn(executeTask);
                stageJoin->dependsOn(completion);
                allTasks.push_back(completion);
            } else {
                // Reused / may-copy-out: downstream GPU work is ordered
                // by the in-order command queue; nothing to wait for
                // beyond the execute task itself.
                stageJoin->dependsOn(executeTask);
            }
        }

        slotReady[rule->outputSlot()] = stageJoin;
        allTasks.push_back(stageJoin);
    }

    for (const TaskPtr &task : allTasks)
        rt_.spawn(task);
    rt_.wait();
    if (rt_.hasGpu())
        rt_.gpuCommandQueue().finish();
}

void
TransformExecutor::syncOutputs(const Transform &transform,
                               Binding &binding)
{
    if (!rt_.hasGpu())
        return;
    for (const lang::MatrixSlot &slot : transform.slots()) {
        if (slot.role != lang::SlotRole::Output)
            continue;
        MatrixD &m = binding.matrix(slot.name);
        rt_.gpuMemory().ensureOnHost(m, m.fullRegion());
    }
}

} // namespace compiler
} // namespace petabricks
