/**
 * @file
 * Config-invariant precomputation for model-mode evaluation.
 *
 * The autotuner prices thousands of configurations per generation, and
 * every one of them used to rebuild the same scaffolding from scratch:
 * the choice dependency graph and its execution order, per-rule
 * admissibility, the string-keyed slot-extent map, per-rule input
 * extents, and the shared-bandwidth CPU spec. All of that depends only
 * on (transform, slot sizes, params, machine) — never on the candidate
 * configuration — so an EvaluationContext computes it once per
 * evaluateBatch/generation and the per-config inner loop
 * (simulateTransform(ctx, config)) touches nothing but dense arrays.
 *
 * Thread safety: a built context is immutable, so one context may be
 * shared by all threads of a parallel batch (engine::ModelEngine's
 * pool); per-evaluation scratch lives in thread-local workspaces inside
 * the simulator.
 */

#ifndef PETABRICKS_COMPILER_EVAL_CONTEXT_H
#define PETABRICKS_COMPILER_EVAL_CONTEXT_H

#include <memory>
#include <vector>

#include "compiler/admissibility.h"
#include "compiler/data_movement.h"
#include "compiler/rule_cost.h"
#include "sim/machine.h"
#include "support/slot_table.h"

namespace petabricks {
namespace compiler {

/** Config-invariant data of one rule, in execution-order position. */
struct RuleEvalInfo
{
    /** Index into the choice's rule list (StagePlan::ruleIndex). */
    size_t ruleIndex = 0;

    lang::RulePtr rule;

    int outputSlotId = -1;
    std::vector<int> inputSlotIds; // aligned with rule->inputSlots()

    /** Output slot extents (every rule). */
    int64_t outW = 0;
    int64_t outH = 0;

    bool isPointRule = false;

    /** Input extents + flops per point, cached for point rules. */
    SlotExtents extents;
    double flopsPerPoint = 0.0;

    /** Phase 1-2 conversion analysis (planStages' per-config work). */
    Admissibility admissibility;

    /** Region rules: native cost of the whole output, priced once
     * (regionCost + CostModel::cpuSeconds are config-invariant). */
    bool regionSequential = false;
    double regionSeconds = 0.0;

    /** True if the output slot is a transform output (may-copy-out). */
    bool writesTransformOutput = false;

    /** Execution-order positions of later rules reading this rule's
     * output — the copy-out classification's reader scan, which is
     * structural and therefore config-invariant. */
    std::vector<size_t> readersAfter;
};

/** Precomputed structure of one algorithmic choice. */
struct ChoiceEvalInfo
{
    /** Rule indices in a valid execution order. */
    std::vector<size_t> order;

    /** Per-rule info, aligned with @ref order. */
    std::vector<RuleEvalInfo> rules;
};

/** See file comment. */
class EvaluationContext
{
  public:
    /**
     * Precompute everything @p transform evaluations share.
     *
     * @param transform kept alive by the context.
     * @param sizes extents of every slot at the evaluated input size.
     * @param params bound transform parameters.
     * @param machine profile configurations are priced on (copied).
     */
    EvaluationContext(std::shared_ptr<const lang::Transform> transform,
                      const SlotSizes &sizes, lang::ParamEnv params,
                      const sim::MachineProfile &machine);

    const lang::Transform &transform() const { return *transform_; }
    const sim::MachineProfile &machine() const { return machine_; }
    const lang::ParamEnv &params() const { return params_; }
    const SlotTable &slots() const { return slots_; }

    const ChoiceEvalInfo &
    choice(size_t index) const
    {
        PB_ASSERT(index < choices_.size(),
                  "choice " << index << " out of range");
        return choices_[index];
    }

    /** Slot ids of the transform's outputs (final lazy copy-out). */
    const std::vector<int> &outputSlotIds() const { return outputSlots_; }

    /** machine().cpu with bandwidth split across concurrent workers
     * (the per-chunk pricing spec the simulator derives per call). */
    const sim::DeviceSpec &cpuSharedSpec() const { return cpuShared_; }

    /**
     * Process-unique id of this context instance. Thread-local
     * evaluation workspaces key their memo tables on it, so a stale
     * workspace can never serve results from a different context (a
     * freed context's address may be reused; its id never is).
     */
    uint64_t contextId() const { return contextId_; }

  private:
    std::shared_ptr<const lang::Transform> transform_;
    lang::ParamEnv params_;
    sim::MachineProfile machine_;
    SlotTable slots_;
    std::vector<std::pair<int64_t, int64_t>> extents_; // by slot id
    std::vector<int> outputSlots_;
    std::vector<ChoiceEvalInfo> choices_;
    sim::DeviceSpec cpuShared_;
    uint64_t contextId_ = 0;
};

using EvaluationContextPtr = std::shared_ptr<const EvaluationContext>;

} // namespace compiler
} // namespace petabricks

#endif // PETABRICKS_COMPILER_EVAL_CONTEXT_H
