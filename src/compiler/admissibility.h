/**
 * @file
 * OpenCL conversion admissibility (paper Section 3.1, phases 1-2).
 *
 * Phase 1 analyzes the choice dependency graph: the dependency
 * direction of each rule's output must fit the OpenCL execution model —
 * data-parallel and sequential patterns map, wavefront does not.
 *
 * Phase 2 inspects the rule body for unconvertible constructs: calls to
 * external libraries, inline native code, and (modeled here by a flag,
 * as in the paper it is detected "by attempting to compile the
 * resulting transform") OpenCL-implementation-specific failures.
 */

#ifndef PETABRICKS_COMPILER_ADMISSIBILITY_H
#define PETABRICKS_COMPILER_ADMISSIBILITY_H

#include <string>

#include "lang/choice_graph.h"

namespace petabricks {
namespace compiler {

/** Outcome of the conversion analysis for one rule. */
struct Admissibility
{
    /** True if an OpenCL (global memory) kernel can be generated. */
    bool convertible = false;

    /**
     * True if additionally the phase-3 local-memory variant exists:
     * some input has a constant per-point bounding box larger than one.
     */
    bool localMemCandidate = false;

    /** Human-readable reason when not convertible. */
    std::string reason;
};

/** Analyze rule @p ruleIndex of @p graph. */
Admissibility analyzeRule(const lang::ChoiceDependencyGraph &graph,
                          size_t ruleIndex);

/** Count the synthetic OpenCL kernels a transform generates (Figure 8):
 * one per convertible rule plus one per local-memory candidate,
 * deduplicated by rule name across choices. */
int countSynthesizedKernels(const lang::Transform &transform);

} // namespace compiler
} // namespace petabricks

#endif // PETABRICKS_COMPILER_ADMISSIBILITY_H
