#include "compiler/rule_cost.h"

#include <algorithm>

#include "support/error.h"

namespace petabricks {
namespace compiler {

namespace {

/** CPU caches absorb essentially all window overlap for these sizes.
 * GPU hit rates are per rule (RuleDef::gpuCacheHitRate): they measure
 * how much of the redundant-load overlap the device caches absorb; the
 * remainder is what explicit local-memory staging eliminates. */
constexpr double kCpuCacheHitRate = 1.0;

/** Per-point bounding-box area, resolving full-extent dims. */
int64_t
bboxArea(const lang::AccessPattern &access, int64_t inputW, int64_t inputH)
{
    int64_t w = access.x.full ? inputW : access.x.extent;
    int64_t h = access.y.full ? inputH : access.y.extent;
    return std::max<int64_t>(w, 1) * std::max<int64_t>(h, 1);
}

/** Global read bytes with a cache model absorbing redundant loads. */
double
cachedReadBytes(const lang::RuleDef &rule, const Region &outRegion,
                const SlotExtents &extents, double hitRate)
{
    double unique = 0.0;
    double total = 0.0;
    const auto &accesses = rule.accesses();
    for (size_t i = 0; i < accesses.size(); ++i) {
        auto [inW, inH] = extents.inputs[i];
        Region needed = inputRegionFor(accesses[i], outRegion, inW, inH);
        unique += static_cast<double>(needed.area()) * kElemBytes;
        total += static_cast<double>(outRegion.area()) *
                 bboxArea(accesses[i], inW, inH) * kElemBytes;
    }
    double redundant = std::max(0.0, total - unique);
    return unique + redundant * (1.0 - hitRate);
}

} // namespace

Region
inputRegionFor(const lang::AccessPattern &access, const Region &outRegion,
               int64_t inputW, int64_t inputH)
{
    int64_t x0, x1, y0, y1;
    if (access.x.full) {
        x0 = 0;
        x1 = inputW;
    } else {
        x0 = access.x.stride * outRegion.x + access.x.offset;
        x1 = access.x.stride * (outRegion.x + outRegion.w - 1) +
             access.x.offset + access.x.extent;
    }
    if (access.y.full) {
        y0 = 0;
        y1 = inputH;
    } else {
        y0 = access.y.stride * outRegion.y + access.y.offset;
        y1 = access.y.stride * (outRegion.y + outRegion.h - 1) +
             access.y.offset + access.y.extent;
    }
    x0 = std::clamp<int64_t>(x0, 0, inputW);
    x1 = std::clamp<int64_t>(x1, 0, inputW);
    y0 = std::clamp<int64_t>(y0, 0, inputH);
    y1 = std::clamp<int64_t>(y1, 0, inputH);
    return Region(x0, y0, x1 - x0, y1 - y0);
}

sim::CostReport
pointRuleGlobalCost(const lang::RuleDef &rule, const Region &outRegion,
                    const SlotExtents &extents,
                    const lang::ParamEnv &params, const ocl::NDRange &range)
{
    return pointRuleGlobalCostCached(rule, outRegion, extents,
                                     rule.flopsPerPoint(params), range);
}

sim::CostReport
pointRuleGlobalCostCached(const lang::RuleDef &rule,
                          const Region &outRegion,
                          const SlotExtents &extents, double flopsPerPoint,
                          const ocl::NDRange &range)
{
    PB_ASSERT(rule.isPointRule(), "cost of non-point rule");
    PB_ASSERT(extents.inputs.size() == rule.accesses().size(),
              "extents/access arity mismatch");
    sim::CostReport cost;
    double area = static_cast<double>(outRegion.area());
    cost.flops = area * flopsPerPoint;
    cost.globalBytesRead = cachedReadBytes(rule, outRegion, extents,
                                           rule.gpuCacheHitRate());
    cost.globalBytesWritten = area * kElemBytes;
    cost.workItems = static_cast<double>(range.items());
    cost.invocations = 1;
    return cost;
}

sim::CostReport
pointRuleLocalCost(const lang::RuleDef &rule, const Region &outRegion,
                   const SlotExtents &extents,
                   const lang::ParamEnv &params, const ocl::NDRange &range)
{
    return pointRuleLocalCostCached(rule, outRegion, extents,
                                    rule.flopsPerPoint(params), range);
}

sim::CostReport
pointRuleLocalCostCached(const lang::RuleDef &rule, const Region &outRegion,
                         const SlotExtents &extents, double flopsPerPoint,
                         const ocl::NDRange &range)
{
    PB_ASSERT(rule.isPointRule(), "cost of non-point rule");
    sim::CostReport cost;
    double area = static_cast<double>(outRegion.area());
    cost.flops = area * flopsPerPoint;
    cost.globalBytesWritten = area * kElemBytes;
    cost.workItems = static_cast<double>(range.items());
    cost.invocations = 1;

    double groups = static_cast<double>(range.groups());
    bool anyStaged = false;
    const auto &accesses = rule.accesses();
    for (size_t i = 0; i < accesses.size(); ++i) {
        auto [inW, inH] = extents.inputs[i];
        const lang::AccessPattern &access = accesses[i];
        int64_t bbox = access.constantBoundingBoxArea();
        if (bbox > 1) {
            // Staged: one cooperative tile load per group, then all
            // per-point reads hit the scratchpad.
            anyStaged = true;
            double tileW = static_cast<double>(std::min<int64_t>(
                access.x.stride * (range.localW - 1) + access.x.extent,
                inW));
            double tileH = static_cast<double>(std::min<int64_t>(
                access.y.stride * (range.localH - 1) + access.y.extent,
                inH));
            double tileBytes = tileW * tileH * kElemBytes;
            cost.globalBytesRead += groups * tileBytes;
            // Stores into local memory plus per-point reads from it.
            cost.localBytes += groups * tileBytes;
            cost.localBytes += area * static_cast<double>(bbox) *
                               kElemBytes;
        } else {
            // Bounding box of one (or non-constant): read from global
            // memory exactly as the basic variant does.
            Region needed =
                inputRegionFor(access, outRegion, inW, inH);
            double unique =
                static_cast<double>(needed.area()) * kElemBytes;
            double total = area * bboxArea(access, inW, inH) * kElemBytes;
            double redundant = std::max(0.0, total - unique);
            cost.globalBytesRead +=
                unique + redundant * (1.0 - rule.gpuCacheHitRate());
        }
    }
    if (anyStaged)
        cost.barriers = groups; // one barrier between load and compute
    return cost;
}

sim::CostReport
pointRuleCpuCost(const lang::RuleDef &rule, const Region &outRegion,
                 const SlotExtents &extents, const lang::ParamEnv &params)
{
    return pointRuleCpuCostCached(rule, outRegion, extents,
                                  rule.flopsPerPoint(params));
}

sim::CostReport
pointRuleCpuCostCached(const lang::RuleDef &rule, const Region &outRegion,
                       const SlotExtents &extents, double flopsPerPoint)
{
    PB_ASSERT(rule.isPointRule(), "cost of non-point rule");
    sim::CostReport cost;
    double area = static_cast<double>(outRegion.area());
    cost.flops = area * flopsPerPoint;
    cost.globalBytesRead =
        cachedReadBytes(rule, outRegion, extents, kCpuCacheHitRate);
    cost.globalBytesWritten = area * kElemBytes;
    cost.invocations = 1;
    return cost;
}

ocl::NDRange
groupShapeFor(const lang::RuleDef &rule, const Region &outRegion,
              int totalItems)
{
    bool windowInY = false;
    for (const lang::AccessPattern &access : rule.accesses()) {
        if (!access.y.full &&
            (access.y.extent > 1 || access.y.stride > 1))
            windowInY = true;
    }
    int64_t lh = 1;
    if (windowInY) {
        while (lh < 16 && lh * lh < totalItems)
            lh *= 2;
    }
    int64_t lw = std::max<int64_t>(1, totalItems / lh);
    return ocl::NDRange(outRegion.w, outRegion.h, lw, lh);
}

int64_t
localMemElemsFor(const lang::RuleDef &rule, const ocl::NDRange &range)
{
    int64_t elems = 0;
    for (const lang::AccessPattern &access : rule.accesses()) {
        if (access.constantBoundingBoxArea() > 1) {
            elems += (access.x.stride * (range.localW - 1) +
                      access.x.extent) *
                     (access.y.stride * (range.localH - 1) +
                      access.y.extent);
        }
    }
    return elems;
}

} // namespace compiler
} // namespace petabricks
