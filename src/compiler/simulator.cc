#include "compiler/simulator.h"

#include "compiler/rule_cost.h"
#include "ocl/device.h"
#include "support/error.h"

namespace petabricks {
namespace compiler {

namespace {

using sim::ScheduleSimulator;
using sim::SimResource;
using sim::SimTaskId;

/** Modeled device residency for copy-in deduplication. */
class ResidencyModel
{
  public:
    /** Bytes that actually need transferring to make @p region valid. */
    double
    bytesToCopyIn(const std::string &slot, const Region &region)
    {
        std::vector<Region> uncovered{region};
        for (const Region &valid : valid_[slot]) {
            std::vector<Region> next;
            for (const Region &hole : uncovered)
                for (const Region &part : subtractRegion(hole, valid))
                    next.push_back(part);
            uncovered.swap(next);
            if (uncovered.empty())
                break;
        }
        double bytes = 0.0;
        for (const Region &part : uncovered)
            bytes += static_cast<double>(part.area()) * kElemBytes;
        if (!uncovered.empty())
            valid_[slot].push_back(region);
        return bytes;
    }

    void
    markWritten(const std::string &slot, const Region &region)
    {
        valid_[slot].push_back(region);
        stale_[slot].push_back(region);
    }

    void
    markCopiedOut(const std::string &slot, const Region &region)
    {
        std::vector<Region> still;
        for (const Region &s : stale_[slot])
            for (const Region &part : subtractRegion(s, region))
                still.push_back(part);
        stale_[slot] = std::move(still);
    }

    /** Device-fresh bytes of @p slot never copied back. */
    double
    staleBytes(const std::string &slot) const
    {
        auto it = stale_.find(slot);
        if (it == stale_.end())
            return 0.0;
        double bytes = 0.0;
        for (const Region &s : it->second)
            bytes += static_cast<double>(s.area()) * kElemBytes;
        return bytes;
    }

    const std::vector<Region> &
    staleRegions(const std::string &slot)
    {
        return stale_[slot];
    }

  private:
    std::map<std::string, std::vector<Region>> valid_;
    std::map<std::string, std::vector<Region>> stale_;
};

/** Split @p region into up to @p parts row bands (mirrors executor). */
std::vector<Region>
rowChunks(const Region &region, int parts)
{
    std::vector<Region> chunks;
    if (region.empty())
        return chunks;
    int64_t n = std::min<int64_t>(parts, region.h);
    for (int64_t i = 0; i < n; ++i) {
        int64_t y0 = region.y + region.h * i / n;
        int64_t y1 = region.y + region.h * (i + 1) / n;
        if (y1 > y0)
            chunks.emplace_back(region.x, y0, region.w, y1 - y0);
    }
    return chunks;
}

} // namespace

SimOutcome
simulateTransform(const lang::Transform &transform,
                  const TransformConfig &config, const SlotSizes &sizes,
                  const lang::ParamEnv &params,
                  const sim::MachineProfile &machine)
{
    std::vector<StagePlan> plans = planStages(transform, config, sizes);
    for (const StagePlan &plan : plans) {
        PB_ASSERT(!plan.hasGpuPart() || machine.hasOpenCL,
                  "OpenCL placement on machine without OpenCL");
    }

    ScheduleSimulator sched(machine);
    ResidencyModel residency;
    SimOutcome outcome;

    // Concurrent CPU chunk tasks share the memory system: price each
    // chunk against a per-worker slice of the machine's bandwidth.
    sim::DeviceSpec cpuShared = machine.cpu;
    cpuShared.memBandwidthGBs /=
        std::max(1, std::min(machine.workerThreads, machine.cpu.cores));

    // Join task id per slot, as in the real executor.
    std::map<std::string, SimTaskId> slotReady;
    auto depsOf = [&](const lang::RulePtr &rule) {
        std::vector<SimTaskId> deps;
        for (const std::string &input : rule->inputSlots()) {
            auto it = slotReady.find(input);
            if (it != slotReady.end())
                deps.push_back(it->second);
        }
        return deps;
    };

    for (const StagePlan &plan : plans) {
        const lang::RulePtr &rule = plan.rule;
        std::vector<SimTaskId> deps = depsOf(rule);
        std::vector<SimTaskId> stageParts;

        SlotExtents extents;
        extents.outputW = plan.outW;
        extents.outputH = plan.outH;
        if (rule->isPointRule()) {
            for (const lang::AccessPattern &access : rule->accesses()) {
                auto it = sizes.find(access.inputSlot);
                PB_ASSERT(it != sizes.end(), "no extent for slot '"
                                                 << access.inputSlot
                                                 << "'");
                extents.inputs.push_back(it->second);
            }
        }

        // ---- CPU part ------------------------------------------------
        if (plan.hasCpuPart()) {
            if (rule->isPointRule()) {
                for (const Region &chunk :
                     rowChunks(plan.cpuRegion(), plan.config.cpuSplit)) {
                    sim::CostReport cost =
                        pointRuleCpuCost(*rule, chunk, extents, params);
                    double sec =
                        sim::CostModel::cpuSeconds(cpuShared, cost, 1);
                    stageParts.push_back(sched.addTask(
                        SimResource::CpuWorker, sec, deps,
                        rule->name() + ":cpu"));
                }
            } else {
                Region whole(0, 0, plan.outW, plan.outH);
                sim::CostReport cost = rule->regionCost(whole, params);
                bool sequential = cost.sequentialFraction >= 0.99;
                double sec = sim::CostModel::cpuSeconds(
                    machine.cpu, cost,
                    sequential ? 1 : machine.workerThreads);
                stageParts.push_back(sched.addTask(
                    sequential ? SimResource::CpuWorker
                               : SimResource::CpuPool,
                    sec, deps, rule->name() + ":native"));
            }
        }

        // ---- GPU part ------------------------------------------------
        if (plan.hasGpuPart()) {
            Region gpuRegion = plan.gpuRegion();
            ocl::NDRange range = groupShapeFor(
                *rule, gpuRegion, plan.config.localWorkSize);

            // Copy-in transfers (deduplicated against residency).
            std::vector<SimTaskId> copyIns;
            for (size_t i = 0; i < rule->accesses().size(); ++i) {
                const lang::AccessPattern &access = rule->accesses()[i];
                auto [inW, inH] = extents.inputs[i];
                Region needed =
                    inputRegionFor(access, gpuRegion, inW, inH);
                if (needed.empty())
                    continue;
                double bytes =
                    residency.bytesToCopyIn(access.inputSlot, needed);
                if (bytes <= 0.0)
                    continue;
                outcome.bytesToDevice += bytes;
                copyIns.push_back(sched.addTask(
                    SimResource::Transfer,
                    machine.transfer.seconds(bytes), deps,
                    rule->name() + ":copyin"));
            }

            // A launch whose local-memory demand exceeds the device
            // fails, exactly as clEnqueueNDRangeKernel would.
            if (plan.config.backend == Backend::OpenClLocal) {
                int64_t localBytes =
                    localMemElemsFor(*rule, range) *
                    static_cast<int64_t>(sizeof(double));
                if (localBytes > ocl::Device::kDefaultLocalMemBytes)
                    PB_FATAL("local work size "
                             << plan.config.localWorkSize << " needs "
                             << localBytes
                             << "B of local memory for rule '"
                             << rule->name() << "'");
            }

            // Kernel execution on the in-order GPU queue.
            sim::CostReport kcost =
                plan.config.backend == Backend::OpenClLocal
                    ? pointRuleLocalCost(*rule, gpuRegion, extents,
                                         params, range)
                    : pointRuleGlobalCost(*rule, gpuRegion, extents,
                                          params, range);
            double ksec = sim::CostModel::kernelSeconds(
                machine.ocl, kcost, plan.config.localWorkSize);
            std::vector<SimTaskId> kdeps = deps;
            kdeps.insert(kdeps.end(), copyIns.begin(), copyIns.end());
            SimTaskId kernel =
                sched.addTask(SimResource::GpuQueue, ksec, kdeps,
                              rule->name() + ":kernel");
            ++outcome.kernelLaunches;
            residency.markWritten(rule->outputSlot(), gpuRegion);

            if (plan.copyOut == CopyOutPolicy::MustCopyOut) {
                double bytes =
                    static_cast<double>(gpuRegion.area()) * kElemBytes;
                outcome.bytesFromDevice += bytes;
                SimTaskId copyOut = sched.addTask(
                    SimResource::Transfer,
                    machine.transfer.seconds(bytes), {kernel},
                    rule->name() + ":copyout");
                residency.markCopiedOut(rule->outputSlot(), gpuRegion);
                stageParts.push_back(copyOut);
            } else {
                // Reused or may-copy-out: downstream consumption is
                // ordered by the in-order queue.
                stageParts.push_back(kernel);
            }
        }

        slotReady[rule->outputSlot()] = sched.addTask(
            SimResource::None, 0.0, stageParts, rule->name() + ":done");
    }

    // Final lazy copy-out: the caller consumes the transform outputs,
    // triggering the inserted may-copy-out checks.
    std::vector<SimTaskId> tail;
    for (const lang::MatrixSlot &slot : transform.slots()) {
        if (slot.role != lang::SlotRole::Output)
            continue;
        double bytes = residency.staleBytes(slot.name);
        if (bytes <= 0.0)
            continue;
        outcome.bytesFromDevice += bytes;
        std::vector<SimTaskId> deps;
        auto it = slotReady.find(slot.name);
        if (it != slotReady.end())
            deps.push_back(it->second);
        tail.push_back(sched.addTask(SimResource::Transfer,
                                     machine.transfer.seconds(bytes),
                                     deps, slot.name + ":lazy-copyout"));
    }
    (void)tail;

    outcome.seconds = sched.run();
    outcome.gpuBusySeconds = sched.gpuBusySeconds();
    outcome.cpuBusySeconds = sched.cpuBusySeconds();
    return outcome;
}

} // namespace compiler
} // namespace petabricks
